#pragma once

// Shared strict argument parsing for the deproto CLIs. Every numeric flag
// must parse completely: "abc", "12x", "" and out-of-range values are
// rejected with a clear per-flag error instead of atof's silent 0.

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace deproto::cli {

/// Whole-string unsigned integer: decimal digits only (no signs, spaces,
/// or trailing junk), rejecting overflow.
inline bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

inline bool parse_size(const std::string& text, std::size_t* out) {
  std::uint64_t v = 0;
  if (!parse_u64(text, &v)) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

/// Whole-string finite double in plain decimal/scientific notation.
/// Leading whitespace, hex floats, "inf", and "nan" are all rejected --
/// strtod accepts them, but a NaN rate would slip past every downstream
/// range check and "0x2" is never what a flag value meant.
inline bool parse_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  for (const char c : text) {
    const bool decimal = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                         c == 'E' || c == '+' || c == '-';
    if (!decimal) return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size() || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

/// Report a malformed or missing flag value on stderr; returns false so
/// call sites can `return value_error(...)`.
inline bool value_error(const char* flag, const char* what,
                        const std::string& value) {
  std::fprintf(stderr, "error: %s for %s: '%s'\n", what, flag, value.c_str());
  return false;
}

}  // namespace deproto::cli
