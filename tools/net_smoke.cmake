# Net-backend smoke: run the epidemic over real UDP loopback sockets via
# the registry's epidemic-net scenario and assert (a) the run converges
# (absorbed, dominant state = infected) and (b) the network metrics were
# actually measured -- nonzero RTT samples with a positive mean, zero
# decode errors. A sandbox that forbids socket(2) or a broken loopback
# path fails this in seconds rather than silently degrading the backend.
#
#   cmake -DDEPROTO_RUN=<path/to/deproto-run> -P tools/net_smoke.cmake
#
# Scratch space lives next to the binary under test (the build tree, never
# the source checkout) and is recreated from empty on every invocation.

if(NOT DEFINED DEPROTO_RUN)
  message(FATAL_ERROR "pass -DDEPROTO_RUN=<path to deproto-run>")
endif()

get_filename_component(bin_dir "${DEPROTO_RUN}" DIRECTORY)
set(work "${bin_dir}/net-smoke")
file(REMOVE_RECURSE "${work}")
file(MAKE_DIRECTORY "${work}")

execute_process(
  COMMAND "${DEPROTO_RUN}" epidemic-net --json "${work}/result.json"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "epidemic-net run failed (exit ${rc}):\n${stdout}\n${stderr}")
endif()

file(READ "${work}/result.json" result)

# Convergence verdict: the epidemic absorbed into the infected state.
if(NOT result MATCHES "\"absorbed\": *true")
  message(FATAL_ERROR "epidemic-net did not absorb:\n${result}")
endif()
if(NOT result MATCHES "\"dominant_state\": *1")
  message(FATAL_ERROR "epidemic-net absorbed into the wrong state:\n${result}")
endif()

# Measured network metrics: the run went over real sockets.
if(NOT result MATCHES "\"rtt_samples\": *[1-9]")
  message(FATAL_ERROR "no RTT samples were measured:\n${result}")
endif()
if(NOT result MATCHES "\"rtt_ms_mean\": *0*\\.?[0-9]*[1-9]")
  message(FATAL_ERROR "measured mean RTT is not positive:\n${result}")
endif()
if(NOT result MATCHES "\"decode_errors\": *0[,}]")
  message(FATAL_ERROR "datagrams failed to decode:\n${result}")
endif()

message(STATUS
  "net smoke: epidemic-net converged over UDP loopback with measured RTTs")
