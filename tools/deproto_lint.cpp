// deproto-lint: the static protocol verifier as a CLI. Checks registered
// scenarios or ScenarioSpec JSON files without running a single period:
// probability-mass conservation, reachability and absorbing-state
// structure, mean-field consistency against the source ODE, fixed-point
// existence and stability, and the spec-level lint rules (see
// analysis/verifier.hpp for the rule catalog).
//
//   deproto-lint <scenario> [<scenario>...]   lint registered scenarios
//   deproto-lint --registry                   lint every registered scenario
//   deproto-lint --spec spec.json             lint a ScenarioSpec file
//
// Options:
//   --exact        additionally build the exact finite-N Markov chain
//                  (analysis/exact_chain.hpp) and report the exact.* rules
//   --exact-n N    population size of the exact chain (default 32)
//   --exact-max-states M
//                  state-space budget C(N+S-1, S-1) must fit (default 20000)
//   --json         machine-readable reports on stdout (one object with a
//                  "reports" array of analysis::Report values)
//   --strict       exit nonzero on warnings too, not just errors
//   --no-suppress  ignore the specs' lint_suppress lists
//   --quiet        per-scenario summary lines only, no findings
//
// Exit codes: 0 = no blocking findings, 1 = error findings (or warnings
// under --strict), 2 = usage / unreadable input.

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "api/registry.hpp"

namespace {

using deproto::analysis::Finding;
using deproto::analysis::Report;
using deproto::analysis::Severity;
using deproto::api::Json;
using deproto::api::ScenarioSpec;

struct CliOptions {
  std::vector<std::string> scenarios;
  std::vector<std::string> spec_files;
  bool registry = false;
  bool json = false;
  bool strict = false;
  bool no_suppress = false;
  bool quiet = false;
  bool exact = false;
  std::size_t exact_n = 0;           // 0: keep the analyzer default
  std::size_t exact_max_states = 0;  // 0: keep the analyzer default
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (<scenario>... | --registry | --spec f.json) "
               "[--json] [--strict] [--no-suppress] [--quiet] [--exact] "
               "[--exact-n N] [--exact-max-states M]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--registry") {
      opts->registry = true;
    } else if (arg == "--spec") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --spec needs a file\n");
        return false;
      }
      opts->spec_files.push_back(argv[++i]);
    } else if (arg == "--json") {
      opts->json = true;
    } else if (arg == "--strict") {
      opts->strict = true;
    } else if (arg == "--no-suppress") {
      opts->no_suppress = true;
    } else if (arg == "--quiet") {
      opts->quiet = true;
    } else if (arg == "--exact") {
      opts->exact = true;
    } else if (arg == "--exact-n" || arg == "--exact-max-states") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a number\n", arg.c_str());
        return false;
      }
      char* end = nullptr;
      const unsigned long long v = std::strtoull(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || v == 0) {
        std::fprintf(stderr, "error: %s needs a positive integer, got %s\n",
                     arg.c_str(), argv[i]);
        return false;
      }
      (arg == "--exact-n" ? opts->exact_n : opts->exact_max_states) =
          static_cast<std::size_t>(v);
      opts->exact = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return false;
    } else {
      opts->scenarios.push_back(arg);
    }
  }
  return opts->registry || !opts->scenarios.empty() ||
         !opts->spec_files.empty();
}

bool load_spec_file(const std::string& path, ScenarioSpec* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    *out = ScenarioSpec::from_json(Json::parse(buffer.str()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    return false;
  }
  if (out->name.empty()) out->name = path;
  return true;
}

void print_report(const Report& report, bool quiet) {
  if (!quiet) {
    for (const Finding& f : report.findings) {
      std::printf("%s\n", deproto::analysis::to_string(f).c_str());
    }
  }
  std::printf("%s: %zu error%s, %zu warning%s, %zu finding%s suppressed\n",
              report.scenario.empty() ? "(spec)" : report.scenario.c_str(),
              report.errors(), report.errors() == 1 ? "" : "s",
              report.warnings(), report.warnings() == 1 ? "" : "s",
              report.suppressed, report.suppressed == 1 ? "" : "s");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, &opts)) return usage(argv[0]);

  std::vector<ScenarioSpec> specs;
  if (opts.registry) {
    for (const std::string& name : deproto::api::registry_names()) {
      specs.push_back(deproto::api::registry_get(name));
    }
  }
  for (const std::string& name : opts.scenarios) {
    const ScenarioSpec* spec = deproto::api::registry_find(name);
    if (spec == nullptr) {
      std::fprintf(stderr, "error: unknown scenario '%s' (try --registry)\n",
                   name.c_str());
      return 2;
    }
    specs.push_back(*spec);
  }
  for (const std::string& path : opts.spec_files) {
    ScenarioSpec spec;
    if (!load_spec_file(path, &spec)) return 2;
    specs.push_back(std::move(spec));
  }

  deproto::analysis::VerifyOptions verify;
  verify.apply_suppressions = !opts.no_suppress;
  verify.exact = opts.exact;
  if (opts.exact_n > 0) verify.exact_chain.n = opts.exact_n;
  if (opts.exact_max_states > 0) {
    verify.exact_chain.max_states = opts.exact_max_states;
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  Json reports = Json::array();
  for (const ScenarioSpec& spec : specs) {
    const Report report = deproto::analysis::analyze_spec(spec, verify);
    errors += report.errors();
    warnings += report.warnings();
    if (opts.json) {
      reports.push(report.to_json());
    } else {
      print_report(report, opts.quiet);
    }
  }

  const bool failed = errors > 0 || (opts.strict && warnings > 0);
  if (opts.json) {
    const Json out = Json::object()
                         .set("ok", Json::boolean(!failed))
                         .set("reports", std::move(reports));
    std::printf("%s\n", out.dump(2).c_str());
  } else if (specs.size() > 1) {
    std::printf("linted %zu scenarios: %zu error%s, %zu warning%s\n",
                specs.size(), errors, errors == 1 ? "" : "s", warnings,
                warnings == 1 ? "" : "s");
  }
  return failed ? 1 : 0;
}
