// deproto-run: execute registered (or JSON-specified) experiment scenarios
// through the deproto::api::Experiment facade.
//
//   deproto-run --list                     show the scenario registry
//   deproto-run <scenario> [options]       run one registered scenario
//   deproto-run --spec spec.json [options] run a ScenarioSpec from a file
//   deproto-run --smoke                    run every scenario at small N
//
// Options:
//   --n <N>            override the group size (initial counts rescale)
//   --periods <k>      override the simulation length
//   --seed <s>         override the simulation seed
//   --backend <b>      override the execution backend (sync | event)
//   --json <file>      write the structured ExperimentResult as JSON
//   --spec-out <file>  write the (resolved) ScenarioSpec as JSON
//   --quiet            suppress the population table
//
// Every scenario runs on either backend: the fault plan (massive failures,
// crash-recovery, churn) programs the unified sim::Simulator interface.
//
// Example:
//   deproto-run endemic-churn --backend event --n 1000 --json churn.json

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "cli_util.hpp"
#include "core/synthesis.hpp"
#include "ode/parser.hpp"

namespace {

using deproto::api::Experiment;
using deproto::api::ExperimentResult;
using deproto::api::ScenarioSpec;

struct CliOptions {
  std::string scenario;
  std::string spec_file;
  bool list = false;
  bool smoke = false;
  bool quiet = false;
  std::optional<std::size_t> n;
  std::optional<std::size_t> periods;
  std::optional<std::uint64_t> seed;
  std::optional<deproto::api::Backend> backend;
  std::string json_out;
  std::string spec_out;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --list | --smoke | (<scenario> | --spec f.json) "
               "[--n N] [--periods k] [--seed s] [--backend sync|event] "
               "[--json out.json] [--spec-out out.json] [--quiet]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag, std::string* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for %s\n", flag);
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--list") {
      options->list = true;
    } else if (arg == "--smoke") {
      options->smoke = true;
    } else if (arg == "--quiet") {
      options->quiet = true;
    } else if (arg == "--spec") {
      if (!next("--spec", &options->spec_file)) return false;
    } else if (arg == "--json") {
      if (!next("--json", &options->json_out)) return false;
    } else if (arg == "--spec-out") {
      if (!next("--spec-out", &options->spec_out)) return false;
    } else if (arg == "--n") {
      std::size_t n = 0;
      if (!next("--n", &value)) return false;
      if (!deproto::cli::parse_size(value, &n) || n == 0) {
        return deproto::cli::value_error("--n", "invalid group size", value);
      }
      options->n = n;
    } else if (arg == "--periods") {
      std::size_t periods = 0;
      if (!next("--periods", &value)) return false;
      if (!deproto::cli::parse_size(value, &periods)) {
        return deproto::cli::value_error("--periods", "invalid period count",
                                         value);
      }
      options->periods = periods;
    } else if (arg == "--seed") {
      std::uint64_t seed = 0;
      if (!next("--seed", &value)) return false;
      if (!deproto::cli::parse_u64(value, &seed)) {
        return deproto::cli::value_error("--seed", "invalid seed", value);
      }
      options->seed = seed;
    } else if (arg == "--backend") {
      if (!next("--backend", &value)) return false;
      try {
        options->backend = deproto::api::backend_from_name(value);
      } catch (const deproto::api::SpecError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return false;
      }
    } else if (!arg.empty() && arg[0] != '-') {
      if (!options->scenario.empty()) {
        std::fprintf(stderr, "error: more than one scenario given\n");
        return false;
      }
      options->scenario = arg;
    } else {
      std::fprintf(stderr, "error: unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void list_registry() {
  std::printf("%-24s %-6s %8s %8s  %s\n", "scenario", "backend", "N",
              "periods", "description");
  for (const std::string& name : deproto::api::registry_names()) {
    const ScenarioSpec* spec = deproto::api::registry_find(name);
    std::printf("%-24s %-6s %8zu %8zu  %s\n", spec->name.c_str(),
                deproto::api::backend_name(spec->backend), spec->n,
                spec->periods, spec->description.c_str());
  }
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << content << "\n";
  return static_cast<bool>(out);
}

void print_result(const ScenarioSpec& spec, const ExperimentResult& result,
                  bool quiet) {
  std::printf("scenario: %s (backend=%s, N=%zu, periods=%zu, seed=%llu)\n",
              spec.name.empty() ? "<unnamed>" : spec.name.c_str(),
              deproto::api::backend_name(spec.backend), spec.n, spec.periods,
              static_cast<unsigned long long>(spec.seed));
  std::printf(
      "taxonomy: complete=%s, completely-partitionable=%s, "
      "restricted-polynomial=%s\n",
      result.taxonomy.complete ? "yes" : "no",
      result.taxonomy.completely_partitionable ? "yes" : "no",
      result.taxonomy.restricted_polynomial ? "yes" : "no");
  std::printf("machine: %zu states, p=%.4g, mean field %s\n",
              result.state_names.size(), result.p,
              result.mean_field_verified ? "verified" : "MISMATCH");

  if (!quiet) {
    std::printf("%10s", "period");
    for (const std::string& name : result.state_names) {
      std::printf(" %12s", name.c_str());
    }
    std::printf(" %12s\n", "alive");
    const std::size_t periods = result.series.size();
    const std::size_t step = std::max<std::size_t>(1, periods / 20);
    for (std::size_t t = 0; t <= periods; t += step) {
      std::printf("%10zu", t);
      for (const std::size_t c : result.counts_at(t)) {
        std::printf(" %12zu", c);
      }
      const std::size_t alive =
          t == 0 ? spec.n : result.series[t - 1].total_alive;
      std::printf(" %12zu\n", alive);
      if (t != periods && t + step > periods) {
        t = periods - step;  // always print the final period
      }
    }
  }

  std::printf("final: alive=%zu, dominant=%s (%.1f%%)%s", result.final_alive,
              result.state_names[result.convergence.dominant_state].c_str(),
              100.0 * result.convergence.dominant_fraction,
              result.convergence.absorbed ? ", absorbed" : "");
  if (result.convergence.settle_time >= 0.0) {
    std::printf(", settled since period %.0f",
                result.convergence.settle_time);
  }
  std::printf("\n");
  if (result.probes_total > 0) {
    std::printf("probes: %llu total",
                static_cast<unsigned long long>(result.probes_total));
    if (result.tokens.generated > 0) {
      std::printf("; tokens: %llu generated, %llu delivered, %llu dropped",
                  static_cast<unsigned long long>(result.tokens.generated),
                  static_cast<unsigned long long>(result.tokens.delivered),
                  static_cast<unsigned long long>(result.tokens.dropped));
    }
    std::printf("\n");
  }
  if (result.messages_sent > 0) {
    std::printf("messages: %llu sent, %llu dropped\n",
                static_cast<unsigned long long>(result.messages_sent),
                static_cast<unsigned long long>(result.messages_dropped));
  }
}

ScenarioSpec apply_overrides(ScenarioSpec spec, const CliOptions& options) {
  if (options.n.has_value()) spec = spec.scaled_to(*options.n);
  if (options.periods.has_value()) spec.periods = *options.periods;
  if (options.seed.has_value()) spec.seed = *options.seed;
  if (options.backend.has_value()) spec.backend = *options.backend;
  return spec;
}

int run_one(const ScenarioSpec& spec, const CliOptions& options) {
  Experiment experiment(spec);
  const ExperimentResult result = experiment.run();
  print_result(spec, result, options.quiet);
  if (!options.json_out.empty() &&
      !write_file(options.json_out, result.to_json().dump(2))) {
    return 1;
  }
  if (!options.spec_out.empty() &&
      !write_file(options.spec_out, spec.to_json().dump(2))) {
    return 1;
  }
  return 0;
}

/// The registry-rot guard: list, then run every scenario at N <= 500 and
/// <= 20 periods on BOTH backends -- the full {scenario} x {sync, event}
/// matrix the unified Simulator interface promises. Registered as a CTest
/// smoke test.
int run_smoke() {
  list_registry();
  std::size_t runs = 0;
  for (const std::string& name : deproto::api::registry_names()) {
    for (const deproto::api::Backend backend :
         {deproto::api::Backend::Sync, deproto::api::Backend::Event}) {
      ScenarioSpec spec = deproto::api::registry_get(name);
      spec.backend = backend;
      spec = spec.scaled_to(std::min<std::size_t>(spec.n, 500));
      spec.periods = std::min<std::size_t>(spec.periods, 20);
      // Keep scheduled faults inside the shortened run so they execute.
      for (deproto::sim::MassiveFailure& f : spec.faults.massive_failures) {
        f.time = std::min(f.time, static_cast<double>(spec.periods) / 2.0);
      }
      std::printf("\n-- smoke: %s [%s] --\n", name.c_str(),
                  deproto::api::backend_name(backend));
      Experiment experiment(spec);
      const ExperimentResult result = experiment.run();
      if (!result.mean_field_verified) {
        std::fprintf(stderr, "error: %s: mean-field verification failed\n",
                     name.c_str());
        return 1;
      }
      if (result.series.size() < spec.periods) {
        std::fprintf(stderr, "error: %s [%s]: recorded %zu of %zu periods\n",
                     name.c_str(), deproto::api::backend_name(backend),
                     result.series.size(), spec.periods);
        return 1;
      }
      std::printf("ok: %zu periods, final alive=%zu\n", result.series.size(),
                  result.final_alive);
      ++runs;
    }
  }
  std::printf("\nsmoke: all %zu scenario/backend combinations ran\n", runs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, &options)) return usage(argv[0]);

  try {
    if (options.smoke) return run_smoke();
    if (options.list) {
      list_registry();
      return 0;
    }
    if (options.scenario.empty() == options.spec_file.empty()) {
      return usage(argv[0]);  // exactly one of scenario / --spec
    }

    ScenarioSpec spec;
    if (!options.spec_file.empty()) {
      std::ifstream in(options.spec_file);
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n",
                     options.spec_file.c_str());
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      spec = ScenarioSpec::from_json(deproto::api::Json::parse(buffer.str()));
    } else {
      spec = deproto::api::registry_get(options.scenario);
    }
    return run_one(apply_overrides(std::move(spec), options), options);
  } catch (const deproto::api::JsonError& e) {
    std::fprintf(stderr, "json error: %s\n", e.what());
  } catch (const deproto::api::SpecError& e) {
    std::fprintf(stderr, "spec error: %s\n", e.what());
  } catch (const deproto::ode::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
  } catch (const deproto::core::SynthesisError& e) {
    std::fprintf(stderr, "synthesis error: %s\n", e.what());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
  }
  return 1;
}
