// deproto-run: execute registered (or JSON-specified) experiment scenarios
// and parameter sweeps through the deproto::api facade.
//
//   deproto-run --list                     show scenarios + sweep presets
//   deproto-run <scenario> [options]       run one registered scenario
//   deproto-run --spec spec.json [options] run a ScenarioSpec from a file
//   deproto-run --sweep <preset|file>      run a SweepSpec (see --list)
//   deproto-run --smoke                    scenario x backend matrix
//
// Options:
//   --n <N>            override the group size (initial counts rescale)
//   --periods <k>      override the simulation length
//   --seed <s>         override the simulation seed
//   --backend <b>      override the execution backend
//                      (sync | event | count | net | auto; auto picks count
//                      at N >= 100000, sync below; net runs real UDP
//                      sockets on loopback, N <= 1024)
//   --threads <T>      sweep/smoke worker threads (0 = all cores)
//   --dispatch <W>     sweep/smoke: execute jobs across W worker
//                      *processes* (fork/exec of this binary with
//                      --worker) instead of in-process threads; output
//                      is byte-identical to --threads 1, and workers
//                      that crash or hang are replaced with their jobs
//                      reassigned
//   --worker           internal: run the worker loop (job frames on
//                      stdin, result frames on stdout); spawned by
//                      --dispatch, exposed for tests and debugging
//   --worker-heartbeat-ms <ms>  dispatch: how often workers report
//                      liveness (default 500; 0 disables heartbeats
//                      and hang detection)
//   --repeat <k>       replicates: lifts a scenario into a sweep, or
//                      overrides a sweep's replicate count
//   --bisect <field>   adaptive threshold search instead of one run:
//                      bisect the numeric axis field (any
//                      sweep_axis_fields() name, e.g. runtime.
//                      message_loss or faults.churn.max_rate) for the
//                      value where the convergence verdict flips from
//                      absorbed to not -- the destabilization threshold.
//                      With --sweep, runs the sweep first and seeds the
//                      bracket from its per-point absorbed means
//                      (api::bracket_from_sweep), so the refine starts
//                      from the already-run grid instead of cold
//   --bisect-lo <v>    bisection bracket (defaults 0 .. 1); the verdict
//   --bisect-hi <v>    is expected to hold at lo and fail at hi. With
//                      --sweep these override the grid-seeded bracket
//   --bisect-iters <k> midpoint evaluations after the endpoint checks
//                      (default 12)
//   --bisect-tol <t>   stop early once hi - lo <= t (default 0: iterate
//                      to --bisect-iters)
//   --json <file>      single run: the ExperimentResult as JSON;
//                      sweep: the deterministic aggregated SweepResult
//                      (timing goes to stdout, not into the file)
//   --jsonl <file>     sweep: stream one result line per job, in job
//                      order (byte-identical for any --threads)
//   --cache <dir>      sweep/smoke: content-addressed result cache --
//                      jobs whose spec already has a memoized result
//                      replay it instead of executing (defaults to
//                      $DEPROTO_CACHE_DIR when set)
//   --no-cache         ignore --cache and $DEPROTO_CACHE_DIR
//   --cache-gc         after the run, delete cache entries it did not
//                      touch (stale points from edited sweeps)
//   --cache-max-bytes <b>  bound the cache directory: evict the least
//                      recently used entries as new results are stored
//   --spec-out <file>  write the (resolved) Scenario/SweepSpec as JSON
//   --quiet            suppress the population table / per-job lines
//
// Every scenario runs on any backend, and the sweep engine guarantees
// results are ordered and aggregated by job index: the same sweep run
// with --threads 1 and --threads 8 writes byte-identical --json/--jsonl
// output.
//
// Examples:
//   deproto-run endemic-churn --backend event --n 1000 --json churn.json
//   deproto-run --sweep fig11-convergence-vs-n --threads 8 --json out.json
//   deproto-run lv-majority --repeat 5 --threads 2

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "api/result_cache.hpp"
#include "api/suite_runner.hpp"
#include "api/sweep.hpp"
#include "cli_util.hpp"
#include "core/synthesis.hpp"
#include "dist/worker.hpp"
#include "ode/parser.hpp"

namespace {

using deproto::api::Experiment;
using deproto::api::ExperimentResult;
using deproto::api::JobOutcome;
using deproto::api::ResultCache;
using deproto::api::ScenarioSpec;
using deproto::api::SuiteOptions;
using deproto::api::SuiteRunner;
using deproto::api::SweepJob;
using deproto::api::SweepResult;
using deproto::api::SweepSpec;

struct CliOptions {
  std::string scenario;
  std::string spec_file;
  std::string sweep;
  bool list = false;
  bool smoke = false;
  bool quiet = false;
  std::optional<std::size_t> n;
  std::optional<std::size_t> periods;
  std::optional<std::uint64_t> seed;
  std::optional<deproto::api::Backend> backend;
  std::size_t threads = 0;  // 0 = all cores
  std::size_t dispatch = 0;  // 0 = in-process pool; N = worker processes
  bool worker = false;
  int worker_heartbeat_ms = -1;  // -1 = flag not given
  std::optional<std::size_t> repeat;
  std::string bisect;  // axis field; empty = no bisection
  std::optional<double> bisect_lo;  // default 0, or the sweep-seeded lo
  std::optional<double> bisect_hi;  // default 1, or the sweep-seeded hi
  std::size_t bisect_iters = 12;
  double bisect_tol = 0.0;
  std::string json_out;
  std::string jsonl_out;
  std::string spec_out;
  std::string cache_dir;  // --cache, else $DEPROTO_CACHE_DIR
  bool no_cache = false;
  bool cache_gc = false;
  std::optional<std::uint64_t> cache_max_bytes;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --list | --smoke | --worker | (<scenario> | "
               "--spec f.json | --sweep preset|f.json) [--n N] [--periods k] "
               "[--seed s] [--backend sync|event|count|net|auto] [--threads T] "
               "[--dispatch W] [--worker-heartbeat-ms ms] [--repeat k] "
               "[--bisect field [--bisect-lo v] [--bisect-hi v] "
               "[--bisect-iters k] [--bisect-tol t]] "
               "[--json out.json] [--jsonl out.jsonl] [--cache dir] "
               "[--no-cache] [--cache-gc] [--cache-max-bytes b] "
               "[--spec-out out.json] [--quiet]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag, std::string* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for %s\n", flag);
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--list") {
      options->list = true;
    } else if (arg == "--smoke") {
      options->smoke = true;
    } else if (arg == "--quiet") {
      options->quiet = true;
    } else if (arg == "--spec") {
      if (!next("--spec", &options->spec_file)) return false;
    } else if (arg == "--sweep") {
      if (!next("--sweep", &options->sweep)) return false;
    } else if (arg == "--json") {
      if (!next("--json", &options->json_out)) return false;
    } else if (arg == "--jsonl") {
      if (!next("--jsonl", &options->jsonl_out)) return false;
    } else if (arg == "--cache") {
      if (!next("--cache", &options->cache_dir)) return false;
    } else if (arg == "--no-cache") {
      options->no_cache = true;
    } else if (arg == "--cache-gc") {
      options->cache_gc = true;
    } else if (arg == "--cache-max-bytes") {
      std::uint64_t max_bytes = 0;
      if (!next("--cache-max-bytes", &value)) return false;
      if (!deproto::cli::parse_u64(value, &max_bytes)) {
        return deproto::cli::value_error("--cache-max-bytes",
                                         "invalid byte count", value);
      }
      options->cache_max_bytes = max_bytes;
    } else if (arg == "--spec-out") {
      if (!next("--spec-out", &options->spec_out)) return false;
    } else if (arg == "--threads") {
      std::size_t threads = 0;
      if (!next("--threads", &value)) return false;
      if (!deproto::cli::parse_size(value, &threads)) {
        return deproto::cli::value_error("--threads", "invalid thread count",
                                         value);
      }
      options->threads = threads;
    } else if (arg == "--dispatch") {
      std::size_t workers = 0;
      if (!next("--dispatch", &value)) return false;
      if (!deproto::cli::parse_size(value, &workers) || workers == 0) {
        return deproto::cli::value_error("--dispatch",
                                         "invalid worker count", value);
      }
      options->dispatch = workers;
    } else if (arg == "--worker") {
      options->worker = true;
    } else if (arg == "--worker-heartbeat-ms") {
      std::uint64_t ms = 0;
      if (!next("--worker-heartbeat-ms", &value)) return false;
      if (!deproto::cli::parse_u64(value, &ms) || ms > 3600 * 1000) {
        return deproto::cli::value_error("--worker-heartbeat-ms",
                                         "invalid interval", value);
      }
      options->worker_heartbeat_ms = static_cast<int>(ms);
    } else if (arg == "--repeat") {
      std::size_t repeat = 0;
      if (!next("--repeat", &value)) return false;
      if (!deproto::cli::parse_size(value, &repeat) || repeat == 0) {
        return deproto::cli::value_error("--repeat",
                                         "invalid replicate count", value);
      }
      options->repeat = repeat;
    } else if (arg == "--bisect") {
      if (!next("--bisect", &options->bisect)) return false;
    } else if (arg == "--bisect-lo") {
      double lo = 0.0;
      if (!next("--bisect-lo", &value)) return false;
      if (!deproto::cli::parse_double(value, &lo)) {
        return deproto::cli::value_error("--bisect-lo", "invalid bound",
                                         value);
      }
      options->bisect_lo = lo;
    } else if (arg == "--bisect-hi") {
      double hi = 0.0;
      if (!next("--bisect-hi", &value)) return false;
      if (!deproto::cli::parse_double(value, &hi)) {
        return deproto::cli::value_error("--bisect-hi", "invalid bound",
                                         value);
      }
      options->bisect_hi = hi;
    } else if (arg == "--bisect-iters") {
      if (!next("--bisect-iters", &value)) return false;
      if (!deproto::cli::parse_size(value, &options->bisect_iters)) {
        return deproto::cli::value_error("--bisect-iters",
                                         "invalid iteration count", value);
      }
    } else if (arg == "--bisect-tol") {
      if (!next("--bisect-tol", &value)) return false;
      if (!deproto::cli::parse_double(value, &options->bisect_tol) ||
          options->bisect_tol < 0.0) {
        return deproto::cli::value_error("--bisect-tol", "invalid tolerance",
                                         value);
      }
    } else if (arg == "--n") {
      std::size_t n = 0;
      if (!next("--n", &value)) return false;
      if (!deproto::cli::parse_size(value, &n) || n == 0) {
        return deproto::cli::value_error("--n", "invalid group size", value);
      }
      options->n = n;
    } else if (arg == "--periods") {
      std::size_t periods = 0;
      if (!next("--periods", &value)) return false;
      if (!deproto::cli::parse_size(value, &periods)) {
        return deproto::cli::value_error("--periods", "invalid period count",
                                         value);
      }
      options->periods = periods;
    } else if (arg == "--seed") {
      std::uint64_t seed = 0;
      if (!next("--seed", &value)) return false;
      if (!deproto::cli::parse_u64(value, &seed)) {
        return deproto::cli::value_error("--seed", "invalid seed", value);
      }
      options->seed = seed;
    } else if (arg == "--backend") {
      if (!next("--backend", &value)) return false;
      try {
        options->backend = deproto::api::backend_from_name(value);
      } catch (const deproto::api::SpecError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return false;
      }
    } else if (!arg.empty() && arg[0] != '-') {
      if (!options->scenario.empty()) {
        std::fprintf(stderr, "error: more than one scenario given\n");
        return false;
      }
      options->scenario = arg;
    } else {
      std::fprintf(stderr, "error: unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void list_registry() {
  std::printf("%-24s %-6s %8s %8s  %s\n", "scenario", "backend", "N",
              "periods", "description");
  for (const std::string& name : deproto::api::registry_names()) {
    const ScenarioSpec* spec = deproto::api::registry_find(name);
    std::printf("%-24s %-6s %8zu %8zu  %s\n", spec->name.c_str(),
                deproto::api::backend_name(spec->backend), spec->n,
                spec->periods, spec->description.c_str());
  }
  std::printf("\n%-24s %-6s %8s %8s  %s\n", "sweep preset", "mode", "points",
              "jobs", "description");
  for (const std::string& name : deproto::api::sweep_registry_names()) {
    const SweepSpec* sweep = deproto::api::sweep_registry_find(name);
    std::printf("%-24s %-6s %8zu %8zu  %s\n", sweep->name.c_str(),
                deproto::api::sweep_mode_name(sweep->mode),
                sweep->point_count(), sweep->job_count(),
                sweep->description.c_str());
  }
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << content << "\n";
  return static_cast<bool>(out);
}

void print_result(const ScenarioSpec& spec, const ExperimentResult& result,
                  bool quiet) {
  std::printf("scenario: %s (backend=%s, N=%zu, periods=%zu, seed=%llu)\n",
              spec.name.empty() ? "<unnamed>" : spec.name.c_str(),
              deproto::api::backend_name(spec.backend), spec.n, spec.periods,
              static_cast<unsigned long long>(spec.seed));
  std::printf(
      "taxonomy: complete=%s, completely-partitionable=%s, "
      "restricted-polynomial=%s\n",
      result.taxonomy.complete ? "yes" : "no",
      result.taxonomy.completely_partitionable ? "yes" : "no",
      result.taxonomy.restricted_polynomial ? "yes" : "no");
  std::printf("machine: %zu states, p=%.4g, mean field %s\n",
              result.state_names.size(), result.p,
              result.mean_field_verified ? "verified" : "MISMATCH");

  if (!quiet) {
    std::printf("%10s", "period");
    for (const std::string& name : result.state_names) {
      std::printf(" %12s", name.c_str());
    }
    std::printf(" %12s\n", "alive");
    const std::size_t periods = result.series.size();
    const std::size_t step = std::max<std::size_t>(1, periods / 20);
    for (std::size_t t = 0; t <= periods; t += step) {
      std::printf("%10zu", t);
      for (const std::size_t c : result.counts_at(t)) {
        std::printf(" %12zu", c);
      }
      const std::size_t alive =
          t == 0 ? spec.n : result.series[t - 1].total_alive;
      std::printf(" %12zu\n", alive);
      if (t != periods && t + step > periods) {
        t = periods - step;  // always print the final period
      }
    }
  }

  std::printf("final: alive=%zu, dominant=%s (%.1f%%)%s", result.final_alive,
              result.state_names[result.convergence.dominant_state].c_str(),
              100.0 * result.convergence.dominant_fraction,
              result.convergence.absorbed ? ", absorbed" : "");
  if (result.convergence.settle_time >= 0.0) {
    std::printf(", settled since period %.0f",
                result.convergence.settle_time);
  }
  std::printf("\n");
  if (result.probes_total > 0) {
    std::printf("probes: %llu total",
                static_cast<unsigned long long>(result.probes_total));
    if (result.tokens.generated > 0) {
      std::printf("; tokens: %llu generated, %llu delivered, %llu dropped",
                  static_cast<unsigned long long>(result.tokens.generated),
                  static_cast<unsigned long long>(result.tokens.delivered),
                  static_cast<unsigned long long>(result.tokens.dropped));
    }
    std::printf("\n");
  }
  if (result.messages_sent > 0) {
    std::printf("messages: %llu sent, %llu dropped\n",
                static_cast<unsigned long long>(result.messages_sent),
                static_cast<unsigned long long>(result.messages_dropped));
  }
}

ScenarioSpec apply_overrides(ScenarioSpec spec, const CliOptions& options) {
  if (options.n.has_value()) spec = spec.scaled_to(*options.n);
  if (options.periods.has_value()) spec.periods = *options.periods;
  if (options.seed.has_value()) spec.seed = *options.seed;
  if (options.backend.has_value()) spec.backend = *options.backend;
  return spec;
}

int run_one(const ScenarioSpec& spec, const CliOptions& options) {
  Experiment experiment(spec);
  const ExperimentResult result = experiment.run();
  print_result(spec, result, options.quiet);
  if (!options.quiet) {
    std::printf("elapsed: %.3fs\n", result.elapsed_seconds);
  }
  // The JSON artifact is the deterministic form (timing stays on
  // stdout), so rerunning the same spec rewrites an identical file.
  if (!options.json_out.empty() &&
      !write_file(options.json_out,
                  result.to_json(/*include_timing=*/false).dump(2))) {
    return 1;
  }
  if (!options.spec_out.empty() &&
      !write_file(options.spec_out, spec.to_json().dump(2))) {
    return 1;
  }
  return 0;
}

/// --bisect: adaptive threshold search on one numeric axis field. The
/// verdict is the run's convergence flag (ExperimentResult::convergence.
/// absorbed), so the reported threshold is the field value beyond which
/// runs stop absorbing -- the destabilization point of e.g.
/// runtime.message_loss or faults.churn.max_rate for this scenario.
/// The refine step shared by the cold path (run_bisect) and the
/// sweep-seeded path (run_sweep + --bisect): bisect the absorbed verdict
/// over the given bracket and report.
deproto::api::BisectResult refine_threshold(
    const ScenarioSpec& spec, const CliOptions& options,
    const deproto::api::BisectOptions& bisect) {
  const deproto::api::BisectResult result =
      deproto::api::bisect_axis_threshold(
          spec, options.bisect,
          [](const ExperimentResult& r) { return r.convergence.absorbed; },
          bisect);
  if (result.bracketed) {
    std::printf(
        "threshold %.12g (absorbed up to %.12g, lost from %.12g), "
        "%zu runs\n",
        result.threshold, result.lo, result.hi, result.evaluations);
  } else {
    std::printf(
        "no flip in bracket: verdict is one-sided over [%.12g, %.12g], "
        "%zu runs\n",
        bisect.lo, bisect.hi, result.evaluations);
  }
  return result;
}

int run_bisect(const ScenarioSpec& spec, const CliOptions& options) {
  deproto::api::BisectOptions bisect;
  bisect.lo = options.bisect_lo.value_or(0.0);
  bisect.hi = options.bisect_hi.value_or(1.0);
  bisect.max_iterations = options.bisect_iters;
  bisect.tolerance = options.bisect_tol;
  if (!options.quiet) {
    std::printf("bisect %s on %s over [%.12g, %.12g]\n",
                options.bisect.c_str(), spec.name.c_str(), bisect.lo,
                bisect.hi);
  }
  const deproto::api::BisectResult result =
      refine_threshold(spec, options, bisect);
  if (!options.json_out.empty()) {
    const deproto::api::Json j =
        deproto::api::Json::object()
            .set("scenario", deproto::api::Json::string(spec.name))
            .set("field", deproto::api::Json::string(options.bisect))
            .set("lo", deproto::api::Json::number(result.lo))
            .set("hi", deproto::api::Json::number(result.hi))
            .set("threshold", deproto::api::Json::number(result.threshold))
            .set("evaluations",
                 deproto::api::Json::number(result.evaluations))
            .set("bracketed", deproto::api::Json::boolean(result.bracketed));
    if (!write_file(options.json_out, j.dump(2))) return 1;
  }
  if (!options.spec_out.empty() &&
      !write_file(options.spec_out, spec.to_json().dump(2))) {
    return 1;
  }
  return 0;
}

std::string coords_label(const deproto::api::SweepCoords& coords) {
  std::string label;
  for (const auto& [field, value] : coords) {
    if (!label.empty()) label += " ";
    label += field + "=" + deproto::api::sweep_value_label(value);
  }
  return label;
}

/// Resolve the result cache from --cache / $DEPROTO_CACHE_DIR; nullptr
/// when caching is off (no directory named, or --no-cache). Throws
/// SpecError (caught in main) when the directory cannot be created or
/// --cache-gc was asked for with no cache to collect.
std::unique_ptr<ResultCache> open_cache(const CliOptions& options) {
  std::string dir = options.no_cache ? std::string() : options.cache_dir;
  if (dir.empty() && !options.no_cache) {
    if (const char* env = std::getenv("DEPROTO_CACHE_DIR")) dir = env;
  }
  if (dir.empty()) {
    if (options.cache_gc) {
      throw deproto::api::SpecError(
          "--cache-gc needs a cache (--cache <dir> or $DEPROTO_CACHE_DIR)");
    }
    if (options.cache_max_bytes.has_value()) {
      throw deproto::api::SpecError(
          "--cache-max-bytes needs a cache (--cache <dir> or "
          "$DEPROTO_CACHE_DIR)");
    }
    return nullptr;
  }
  return std::make_unique<ResultCache>(dir);
}

/// Wire the execution engine (in-process pool vs --dispatch worker
/// processes) plus the cache into `suite`, returning the parent-side
/// cache handle. In dispatch mode SuiteOptions::cache stays null -- each
/// worker opens the same directory itself via a forwarded --cache flag,
/// and the LRU bound is enforced worker-side too -- so the parent handle
/// only resolves/creates the directory and prints the summary line.
std::unique_ptr<ResultCache> configure_execution(const CliOptions& options,
                                                 SuiteOptions* suite) {
  std::unique_ptr<ResultCache> cache = open_cache(options);
  if (options.dispatch == 0) {
    suite->threads = options.threads;
    suite->cache = cache.get();
    if (cache != nullptr && options.cache_max_bytes.has_value()) {
      cache->set_max_bytes(*options.cache_max_bytes);
    }
    return cache;
  }
  if (options.threads != 0) {
    throw deproto::api::SpecError(
        "--dispatch shards jobs across worker processes; it cannot be "
        "combined with --threads");
  }
  if (options.cache_gc) {
    throw deproto::api::SpecError(
        "--cache-gc tracks entry touches in-process and cannot see "
        "worker-process touches; run it without --dispatch");
  }
  suite->dispatch.workers = options.dispatch;
  if (options.worker_heartbeat_ms >= 0) {
    suite->dispatch.heartbeat_ms = options.worker_heartbeat_ms;
  }
  if (cache != nullptr) {
    suite->dispatch.extra_worker_args = {"--cache", cache->dir().string()};
    if (options.cache_max_bytes.has_value()) {
      suite->dispatch.extra_worker_args.push_back("--cache-max-bytes");
      suite->dispatch.extra_worker_args.push_back(
          std::to_string(*options.cache_max_bytes));
    }
  } else {
    // Keep an ambient $DEPROTO_CACHE_DIR from resurfacing in workers.
    suite->dispatch.extra_worker_args = {"--no-cache"};
  }
  return cache;
}

/// The per-run dispatcher counter line (mirrors the "cache:" summary).
void print_dispatch(const SweepResult& result) {
  if (!result.dispatch_enabled) return;
  std::printf(
      "dispatch: %zu workers, %zu jobs dispatched (%zu retried, %zu "
      "reassigned), %zu worker restarts, %zu frames\n",
      result.dispatch.workers, result.dispatch.jobs_dispatched,
      result.dispatch.jobs_retried, result.dispatch.jobs_reassigned,
      result.dispatch.worker_restarts, result.dispatch.frames_received);
}

/// The hit/miss line after a cached run ("cache: 12/12 hits, ..."), plus
/// the optional --cache-gc sweep of entries this run did not touch.
void finish_cache(const SweepResult& result, ResultCache* cache,
                  bool cache_gc) {
  if (cache == nullptr) return;
  const std::size_t lookups = result.cache.hits + result.cache.misses;
  std::printf("cache: %zu/%zu hits, %zu misses (%zu corrupt), %zu stored, "
              "%zu skipped [%s]\n",
              result.cache.hits, lookups, result.cache.misses,
              result.cache.corrupt, result.cache.stores,
              result.cache.skipped, cache->dir().string().c_str());
  if (cache->max_bytes() > 0) {
    std::printf("cache-lru: %zu evicted (bound %llu bytes)\n",
                cache->evictions(),
                static_cast<unsigned long long>(cache->max_bytes()));
  }
  if (cache_gc) {
    std::printf("cache-gc: pruned %zu stale entries\n", cache->gc_unused());
  }
}

/// Execute a sweep through SuiteRunner: per-job progress lines and every
/// sink in job-index order, per-point aggregates, then throughput. The
/// --json document is the deterministic SweepResult form (no timing), so
/// --threads 1 and --threads 8 write byte-identical files.
int run_sweep(SweepSpec sweep, const CliOptions& options) {
  sweep.base = apply_overrides(std::move(sweep.base), options);
  if (options.repeat.has_value()) sweep.replicates = *options.repeat;

  const std::size_t total_jobs = sweep.job_count();
  std::printf("sweep: %s  (%zu points x %zu replicates = %zu jobs)\n",
              sweep.name.empty() ? "<unnamed>" : sweep.name.c_str(),
              sweep.point_count(), sweep.replicates, total_jobs);

  std::ofstream jsonl;
  SuiteOptions suite;
  // Aggregates + sinks are the product here; each job's per-period
  // series is dropped as soon as it flushes, so long sweeps never hold
  // more than the out-of-order window in memory.
  suite.store_results = false;
  const std::unique_ptr<ResultCache> cache =
      configure_execution(options, &suite);
  if (!options.jsonl_out.empty()) {
    jsonl.open(options.jsonl_out);
    if (!jsonl) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.jsonl_out.c_str());
      return 1;
    }
    suite.jsonl = &jsonl;
  }
  if (!options.quiet) {
    suite.on_result = [total_jobs](const JobOutcome& outcome) {
      const std::string status =
          outcome.ok ? (outcome.cached ? "ok (cached)" : "ok")
                     : "FAILED: " + outcome.error;
      std::printf("  [%3zu/%zu] %-44s %s (%.2fs)\n", outcome.job.index + 1,
                  total_jobs, outcome.job.spec.name.c_str(), status.c_str(),
                  outcome.elapsed_seconds);
    };
  }

  const SweepResult result = SuiteRunner(suite).run(sweep);
  if (result.jsonl_failed || (suite.jsonl != nullptr && !jsonl.good())) {
    std::fprintf(stderr, "error: writing %s failed (disk full?)\n",
                 options.jsonl_out.c_str());
    return 1;
  }

  std::printf("\n%-44s %4s %12s %12s %10s\n", "point", "reps",
              "settle-time", "dominant", "alive");
  for (const deproto::api::PointSummary& point : result.points) {
    const deproto::api::Aggregate* settle = point.metric("settle_time");
    const deproto::api::Aggregate* dominant =
        point.metric("dominant_fraction");
    const deproto::api::Aggregate* alive = point.metric("final_alive");
    std::printf("%-44s %4zu %6.1f ±%4.1f %11.3f %10.0f\n",
                coords_label(point.coords).c_str(), point.replicates,
                settle != nullptr ? settle->mean : 0.0,
                settle != nullptr ? settle->stddev : 0.0,
                dominant != nullptr ? dominant->mean : 0.0,
                alive != nullptr ? alive->mean : 0.0);
  }
  std::printf("total: %zu jobs (%zu failed) in %.2fs -- %.2f jobs/s on "
              "%zu thread%s\n",
              result.jobs_total, result.jobs_failed, result.elapsed_seconds,
              result.jobs_per_second(), result.threads,
              result.threads == 1 ? "" : "s");
  print_dispatch(result);
  finish_cache(result, cache.get(), options.cache_gc);

  for (const JobOutcome& outcome : result.jobs) {
    if (!outcome.ok) {
      std::fprintf(stderr, "error: job %zu (%s): %s\n", outcome.job.index,
                   outcome.job.spec.name.c_str(), outcome.error.c_str());
    }
  }
  if (!options.json_out.empty() &&
      !write_file(options.json_out,
                  result.to_json(/*include_timing=*/false).dump(2))) {
    return 1;
  }
  if (!options.spec_out.empty() &&
      !write_file(options.spec_out, sweep.to_json().dump(2))) {
    return 1;
  }
  if (result.jobs_failed != 0) return 1;

  if (!options.bisect.empty()) {
    // Sweep-seeded threshold refinement: the grid already localized the
    // flip of the absorbed verdict, so seed the bisection bracket from
    // the per-point absorbed means instead of starting at [0, 1].
    const std::optional<deproto::api::BisectOptions> seeded =
        deproto::api::bracket_from_sweep(result, options.bisect);
    const bool explicit_bracket =
        options.bisect_lo.has_value() && options.bisect_hi.has_value();
    if (!seeded.has_value() && !explicit_bracket) {
      std::fprintf(stderr,
                   "error: the sweep gives no bracket for %s (not a "
                   "numeric axis of the grid, or the absorbed verdict "
                   "does not flip monotonically across it); pass "
                   "--bisect-lo/--bisect-hi to bisect anyway\n",
                   options.bisect.c_str());
      return 1;
    }
    deproto::api::BisectOptions bisect =
        seeded.value_or(deproto::api::BisectOptions{});
    if (options.bisect_lo.has_value()) bisect.lo = *options.bisect_lo;
    if (options.bisect_hi.has_value()) bisect.hi = *options.bisect_hi;
    bisect.max_iterations = options.bisect_iters;
    bisect.tolerance = options.bisect_tol;
    std::printf("\nbisect %s on %s over [%.12g, %.12g]%s\n",
                options.bisect.c_str(), sweep.base.name.c_str(), bisect.lo,
                bisect.hi,
                seeded.has_value() && !explicit_bracket
                    ? " (bracket seeded from the grid)"
                    : "");
    (void)refine_threshold(sweep.base, options, bisect);
  }
  return 0;
}

/// The registry-rot guard: list, then run every scenario at N <= 500 and
/// <= 20 periods on EVERY backend -- the full {scenario} x {sync, event,
/// count} matrix the unified Simulator interface promises -- through the
/// SuiteRunner engine (so the smoke also exercises the pool + ordered
/// sinks). Registered as a CTest smoke test.
int run_smoke(const CliOptions& options) {
  list_registry();

  std::vector<SweepJob> jobs;
  for (const std::string& name : deproto::api::registry_names()) {
    for (const deproto::api::Backend backend :
         {deproto::api::Backend::Sync, deproto::api::Backend::Event,
          deproto::api::Backend::Count}) {
      ScenarioSpec spec = deproto::api::registry_get(name);
      spec.backend = backend;
      spec = spec.scaled_to(std::min<std::size_t>(spec.n, 500));
      spec.periods = std::min<std::size_t>(spec.periods, 20);
      // Keep scheduled faults inside the shortened run so they execute.
      for (deproto::sim::MassiveFailure& f : spec.faults.massive_failures) {
        f.time = std::min(f.time, static_cast<double>(spec.periods) / 2.0);
      }
      SweepJob job;
      job.index = jobs.size();
      job.point = jobs.size();  // every combination is its own point
      job.coords.emplace_back("scenario", deproto::api::Json::string(name));
      job.coords.emplace_back(
          "backend", deproto::api::Json::string(
                         deproto::api::backend_name(backend)));
      spec.name = name + "/" + deproto::api::backend_name(backend);
      job.spec = std::move(spec);
      jobs.push_back(std::move(job));
    }
  }

  SuiteOptions suite;
  const std::unique_ptr<ResultCache> cache =
      configure_execution(options, &suite);
  std::ofstream jsonl;
  if (!options.jsonl_out.empty()) {
    jsonl.open(options.jsonl_out);
    if (!jsonl) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.jsonl_out.c_str());
      return 1;
    }
    suite.jsonl = &jsonl;
  }
  std::printf("\n");
  const std::size_t expected = jobs.size();
  suite.on_result = [expected](const JobOutcome& outcome) {
    std::printf("smoke [%2zu/%zu] %-44s %s\n", outcome.job.index + 1,
                expected, outcome.job.spec.name.c_str(),
                outcome.ok ? (outcome.cached ? "ok (cached)" : "ok")
                           : outcome.error.c_str());
  };
  const SweepResult result =
      SuiteRunner(suite).run_jobs(std::move(jobs), "registry-smoke");
  if (result.jsonl_failed || (suite.jsonl != nullptr && !jsonl.good())) {
    std::fprintf(stderr, "error: writing %s failed (disk full?)\n",
                 options.jsonl_out.c_str());
    return 1;
  }
  print_dispatch(result);
  finish_cache(result, cache.get(), options.cache_gc);
  if (!options.json_out.empty() &&
      !write_file(options.json_out,
                  result.to_json(/*include_timing=*/false).dump(2))) {
    return 1;
  }

  bool failed = result.jobs_failed > 0;
  for (const JobOutcome& outcome : result.jobs) {
    if (!outcome.ok) continue;
    if (!outcome.result.mean_field_verified) {
      std::fprintf(stderr, "error: %s: mean-field verification failed\n",
                   outcome.job.spec.name.c_str());
      failed = true;
    }
    if (outcome.result.series.size() < outcome.job.spec.periods) {
      std::fprintf(stderr, "error: %s: recorded %zu of %zu periods\n",
                   outcome.job.spec.name.c_str(),
                   outcome.result.series.size(), outcome.job.spec.periods);
      failed = true;
    }
  }
  if (failed) return 1;
  std::printf("\nsmoke: all %zu scenario/backend combinations ran "
              "(%.2fs, %.2f jobs/s on %zu thread%s)\n",
              expected, result.elapsed_seconds, result.jobs_per_second(),
              result.threads, result.threads == 1 ? "" : "s");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, &options)) return usage(argv[0]);

  try {
    if (options.worker) {
      // Worker mode owns stdin/stdout as the frame channel; it composes
      // with --cache/--no-cache/--cache-max-bytes (forwarded by the
      // dispatcher) and nothing else.
      if (options.list || options.smoke || !options.scenario.empty() ||
          !options.spec_file.empty() || !options.sweep.empty() ||
          options.dispatch != 0) {
        std::fprintf(
            stderr,
            "error: --worker is a standalone mode (frames on stdin/stdout)\n");
        return 2;
      }
      const std::unique_ptr<ResultCache> cache = open_cache(options);
      if (cache != nullptr && options.cache_max_bytes.has_value()) {
        cache->set_max_bytes(*options.cache_max_bytes);
      }
      deproto::dist::WorkerOptions worker;
      worker.heartbeat_ms = std::max(0, options.worker_heartbeat_ms);
      worker.cache = cache.get();
      return deproto::dist::run_worker(worker);
    }
    if (options.smoke) return run_smoke(options);
    if (options.list) {
      list_registry();
      return 0;
    }
    const int sources = (options.scenario.empty() ? 0 : 1) +
                        (options.spec_file.empty() ? 0 : 1) +
                        (options.sweep.empty() ? 0 : 1);
    if (sources != 1) {
      return usage(argv[0]);  // exactly one of scenario / --spec / --sweep
    }

    if (!options.sweep.empty()) {
      // A registered preset name, or a SweepSpec JSON file.
      if (const SweepSpec* preset =
              deproto::api::sweep_registry_find(options.sweep)) {
        return run_sweep(*preset, options);
      }
      std::ifstream in(options.sweep);
      if (!in) {
        std::fprintf(stderr,
                     "error: %s is neither a sweep preset (--list) nor a "
                     "readable file\n",
                     options.sweep.c_str());
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      return run_sweep(
          SweepSpec::from_json(deproto::api::Json::parse(buffer.str())),
          options);
    }

    ScenarioSpec spec;
    if (!options.spec_file.empty()) {
      std::ifstream in(options.spec_file);
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n",
                     options.spec_file.c_str());
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      spec = ScenarioSpec::from_json(deproto::api::Json::parse(buffer.str()));
    } else {
      spec = deproto::api::registry_get(options.scenario);
    }
    if (!options.bisect.empty()) {
      if (options.repeat.has_value() || !options.jsonl_out.empty() ||
          options.threads != 0 || options.dispatch != 0 ||
          !options.cache_dir.empty() || options.cache_gc ||
          options.cache_max_bytes.has_value()) {
        std::fprintf(stderr,
                     "error: --bisect runs a sequential threshold search; "
                     "it composes with scenario/--spec and the run "
                     "overrides only\n");
        return 1;
      }
      return run_bisect(apply_overrides(std::move(spec), options), options);
    }
    if (options.repeat.has_value()) {
      // --repeat lifts the single scenario into a replicate-only sweep:
      // same spec, split-derived seeds, aggregated output.
      SweepSpec sweep;
      sweep.name = spec.name + "-x" + std::to_string(*options.repeat);
      sweep.base = std::move(spec);
      sweep.replicates = *options.repeat;
      return run_sweep(std::move(sweep), options);
    }
    // Pool/sink/cache flags only make sense for sweeps; rejecting them
    // beats silently never creating the file (or cache) the caller asked
    // for. An ambient $DEPROTO_CACHE_DIR is simply unused here.
    if (!options.jsonl_out.empty() || options.threads != 0 ||
        options.dispatch != 0 || !options.cache_dir.empty() ||
        options.cache_gc || options.cache_max_bytes.has_value()) {
      std::fprintf(stderr,
                   "error: --jsonl/--threads/--dispatch/--cache/--cache-gc/"
                   "--cache-max-bytes apply to --sweep, --smoke, or "
                   "--repeat runs only\n");
      return 1;
    }
    return run_one(apply_overrides(std::move(spec), options), options);
  } catch (const deproto::api::JsonError& e) {
    std::fprintf(stderr, "json error: %s\n", e.what());
  } catch (const deproto::api::SpecError& e) {
    std::fprintf(stderr, "spec error: %s\n", e.what());
  } catch (const deproto::ode::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
  } catch (const deproto::core::SynthesisError& e) {
    std::fprintf(stderr, "synthesis error: %s\n", e.what());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
  }
  return 1;
}
