// deproto-synth: synthesize a distributed protocol from a differential
// equation system given as text (see src/ode/parser.hpp for the grammar).
//
//   deproto-synth [options] [file]       (reads stdin when no file given)
//
// Options:
//   --p <value>        normalizing constant p (default: auto)
//   --loss <f>         compensate coins for a failure rate f in [0, 1)
//   --auto-rewrite     complete the system / expand constants as needed
//   --no-tokenizing    restrict to Flipping + One-Time-Sampling
//   --simulate <N>     run the machine on N processes and print populations
//   --periods <k>      simulation length (default 100)
//   --seed <s>         simulation seed (default 1)
//
// Example:
//   printf "x' = -x*y\ny' = x*y\n" | deproto-synth --simulate 1000

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/mean_field.hpp"
#include "core/synthesis.hpp"
#include "ode/parser.hpp"
#include "ode/taxonomy.hpp"
#include "sim/runtime.hpp"
#include "sim/sync_sim.hpp"

namespace {

struct CliOptions {
  deproto::core::SynthesisOptions synthesis;
  std::string file;
  std::size_t simulate_n = 0;
  std::size_t periods = 100;
  std::uint64_t seed = 1;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--p v] [--loss f] [--auto-rewrite] "
               "[--no-tokenizing] [--simulate N] [--periods k] [--seed s] "
               "[file]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    double value = 0.0;
    if (arg == "--p" && next_value(&value)) {
      options->synthesis.p = value;
    } else if (arg == "--loss" && next_value(&value)) {
      options->synthesis.failure_rate = value;
    } else if (arg == "--auto-rewrite") {
      options->synthesis.auto_rewrite = true;
    } else if (arg == "--no-tokenizing") {
      options->synthesis.allow_tokenizing = false;
    } else if (arg == "--simulate" && next_value(&value)) {
      options->simulate_n = static_cast<std::size_t>(value);
    } else if (arg == "--periods" && next_value(&value)) {
      options->periods = static_cast<std::size_t>(value);
    } else if (arg == "--seed" && next_value(&value)) {
      options->seed = static_cast<std::uint64_t>(value);
    } else if (!arg.empty() && arg[0] != '-') {
      options->file = arg;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, &options)) return usage(argv[0]);

  std::string text;
  if (options.file.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(options.file);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", options.file.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  try {
    const deproto::ode::EquationSystem sys =
        deproto::ode::parse_system(text);
    std::printf("parsed system:\n%s\n", sys.to_string().c_str());

    const deproto::ode::TaxonomyReport taxonomy =
        deproto::ode::classify(sys);
    std::printf("taxonomy: complete=%s, completely-partitionable=%s, "
                "restricted-polynomial=%s\n",
                taxonomy.complete ? "yes" : "no",
                taxonomy.completely_partitionable ? "yes" : "no",
                taxonomy.restricted_polynomial ? "yes" : "no");
    if (!taxonomy.detail.empty()) {
      std::printf("  %s\n", taxonomy.detail.c_str());
    }

    const deproto::core::SynthesisResult result =
        deproto::core::synthesize(sys, options.synthesis);
    std::printf("\n%s\n", result.machine.to_string().c_str());
    for (const std::string& note : result.notes) {
      std::printf("note: %s\n", note.c_str());
    }
    std::printf("\nmean field == p * source (f=%.3g): %s\n",
                options.synthesis.failure_rate,
                deproto::core::verifies_equivalence(
                    result.machine, result.source,
                    options.synthesis.failure_rate)
                    ? "verified"
                    : "MISMATCH");

    if (options.simulate_n > 0) {
      deproto::sim::RuntimeOptions runtime;
      runtime.message_loss = options.synthesis.failure_rate;
      deproto::sim::MachineExecutor executor(result.machine, runtime);
      deproto::sim::SyncSimulator simulator(options.simulate_n, executor,
                                            options.seed);
      // Spread processes evenly over the states to start.
      const std::size_t m = result.machine.num_states();
      std::vector<std::size_t> counts(m, options.simulate_n / m);
      simulator.seed_states(counts);

      std::printf("\nsimulating %zu processes for %zu periods:\n",
                  options.simulate_n, options.periods);
      std::printf("%10s", "period");
      for (const std::string& name : result.machine.state_names()) {
        std::printf(" %12s", name.c_str());
      }
      std::printf("\n");
      const std::size_t step = std::max<std::size_t>(1, options.periods / 20);
      for (std::size_t t = 0; t <= options.periods; t += step) {
        std::printf("%10zu", t);
        for (std::size_t s = 0; s < m; ++s) {
          std::printf(" %12zu", simulator.group().count(s));
        }
        std::printf("\n");
        if (t < options.periods) {
          simulator.run(std::min(step, options.periods - t));
        }
      }
    }
  } catch (const deproto::ode::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  } catch (const deproto::core::SynthesisError& e) {
    std::fprintf(stderr, "synthesis error: %s\n", e.what());
    return 1;
  }
  return 0;
}
