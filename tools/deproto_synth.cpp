// deproto-synth: synthesize a distributed protocol from a differential
// equation system given as text (see src/ode/parser.hpp for the grammar).
// A thin presentation layer over deproto::api::Experiment, which owns the
// parse -> classify -> synthesize -> verify -> simulate pipeline.
//
//   deproto-synth [options] [file]       (reads stdin when no file given)
//
// Options:
//   --p <value>        normalizing constant p (default: auto)
//   --loss <f>         compensate coins for a failure rate f in [0, 1)
//   --auto-rewrite     complete the system / expand constants as needed
//   --no-tokenizing    restrict to Flipping + One-Time-Sampling
//   --simulate <N>     run the machine on N processes and print populations
//   --periods <k>      simulation length (default 100)
//   --seed <s>         simulation seed (default 1)
//
// Numeric flags are validated strictly: malformed values ("abc", "12x")
// and unknown flags are reported by name instead of silently accepted.
//
// Example:
//   printf "x' = -x*y\ny' = x*y\n" | deproto-synth --simulate 1000

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "api/experiment.hpp"
#include "cli_util.hpp"
#include "core/synthesis.hpp"
#include "ode/parser.hpp"

namespace {

struct CliOptions {
  deproto::api::ScenarioSpec spec;
  std::string file;
  std::size_t simulate_n = 0;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--p v] [--loss f] [--auto-rewrite] "
               "[--no-tokenizing] [--simulate N] [--periods k] [--seed s] "
               "[file]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, CliOptions* options) {
  options->spec.periods = 100;
  options->spec.seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag, std::string* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for %s\n", flag);
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--p") {
      double p = 0.0;
      if (!next_value("--p", &value)) return false;
      if (!deproto::cli::parse_double(value, &p)) {
        return deproto::cli::value_error("--p", "invalid number", value);
      }
      options->spec.synthesis.p = p;
    } else if (arg == "--loss") {
      double loss = 0.0;
      if (!next_value("--loss", &value)) return false;
      if (!deproto::cli::parse_double(value, &loss) || loss < 0.0 ||
          loss >= 1.0) {
        return deproto::cli::value_error("--loss",
                                         "invalid failure rate (want [0, 1))",
                                         value);
      }
      options->spec.synthesis.failure_rate = loss;
    } else if (arg == "--auto-rewrite") {
      options->spec.synthesis.auto_rewrite = true;
    } else if (arg == "--no-tokenizing") {
      options->spec.synthesis.allow_tokenizing = false;
    } else if (arg == "--simulate") {
      if (!next_value("--simulate", &value)) return false;
      if (!deproto::cli::parse_size(value, &options->simulate_n) ||
          options->simulate_n == 0) {
        return deproto::cli::value_error("--simulate",
                                         "invalid process count", value);
      }
    } else if (arg == "--periods") {
      std::size_t periods = 0;
      if (!next_value("--periods", &value)) return false;
      if (!deproto::cli::parse_size(value, &periods)) {
        return deproto::cli::value_error("--periods", "invalid period count",
                                         value);
      }
      options->spec.periods = periods;
    } else if (arg == "--seed") {
      std::uint64_t seed = 0;
      if (!next_value("--seed", &value)) return false;
      if (!deproto::cli::parse_u64(value, &seed)) {
        return deproto::cli::value_error("--seed", "invalid seed", value);
      }
      options->spec.seed = seed;
    } else if (!arg.empty() && arg[0] != '-') {
      options->file = arg;
    } else {
      std::fprintf(stderr, "error: unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, &options)) return usage(argv[0]);

  std::string text;
  if (options.file.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(options.file);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", options.file.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  try {
    options.spec.source.ode_text = text;
    options.spec.runtime.message_loss = options.spec.synthesis.failure_rate;
    options.spec.n = options.simulate_n > 0 ? options.simulate_n : 1;

    deproto::api::Experiment experiment(options.spec);
    // Stage-wise so parse/taxonomy diagnostics print even when the later
    // synthesis stage rejects the system.
    const deproto::api::Experiment::Resolved& res = experiment.resolved();
    std::printf("parsed system:\n%s\n", res.source.to_string().c_str());

    std::printf("taxonomy: complete=%s, completely-partitionable=%s, "
                "restricted-polynomial=%s\n",
                res.taxonomy.complete ? "yes" : "no",
                res.taxonomy.completely_partitionable ? "yes" : "no",
                res.taxonomy.restricted_polynomial ? "yes" : "no");
    if (!res.taxonomy.detail.empty()) {
      std::printf("  %s\n", res.taxonomy.detail.c_str());
    }

    const deproto::api::Experiment::Artifacts& art = experiment.artifacts();
    std::printf("\n%s\n", art.synthesis.machine.to_string().c_str());
    for (const std::string& note : art.synthesis.notes) {
      std::printf("note: %s\n", note.c_str());
    }
    std::printf("\nmean field == p * source (f=%.3g): %s\n",
                options.spec.synthesis.failure_rate,
                art.mean_field_verified ? "verified" : "MISMATCH");

    if (options.simulate_n > 0) {
      const deproto::api::ExperimentResult result = experiment.run();
      const std::size_t periods = options.spec.periods;
      std::printf("\nsimulating %zu processes for %zu periods:\n",
                  options.simulate_n, periods);
      std::printf("%10s", "period");
      for (const std::string& name : result.state_names) {
        std::printf(" %12s", name.c_str());
      }
      std::printf("\n");
      const std::size_t step = std::max<std::size_t>(1, periods / 20);
      for (std::size_t t = 0; t <= periods; t += step) {
        std::printf("%10zu", t);
        for (const std::size_t count : result.counts_at(t)) {
          std::printf(" %12zu", count);
        }
        std::printf("\n");
      }
    }
  } catch (const deproto::ode::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  } catch (const deproto::core::SynthesisError& e) {
    std::fprintf(stderr, "synthesis error: %s\n", e.what());
    return 1;
  } catch (const deproto::api::SpecError& e) {
    std::fprintf(stderr, "spec error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
