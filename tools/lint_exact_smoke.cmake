# Exact-verifier smoke: run deproto-lint --exact over every registered
# scenario at a small-N-feasible population and assert (a) the gate holds
# (exit 0: warnings allowed, error findings are not) and (b) the exact
# pass actually ran -- the output must carry exact.* findings, including
# the absorption verdicts the epidemic and lv-majority families are known
# to produce, rather than silently skipping every chain on budget.
#
#   cmake -DDEPROTO_LINT=<path/to/deproto-lint> -P tools/lint_exact_smoke.cmake
#
# n = 16 keeps every registry machine comfortably inside the default
# state-space budget (3-state machines give C(18, 2) = 153 lattice
# points) while still exhibiting the interesting finite-N behavior: the
# endemic family is provably absorbed into extinction at this size, which
# is a warning, not an error, so the gate stays green.

if(NOT DEFINED DEPROTO_LINT)
  message(FATAL_ERROR "pass -DDEPROTO_LINT=<path to deproto-lint>")
endif()

execute_process(
  COMMAND "${DEPROTO_LINT}" --registry --exact --exact-n 16
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "deproto-lint --exact over the registry failed (exit ${rc}):\n"
    "${stdout}\n${stderr}")
endif()

# The exact tier must have produced verdicts, not budget skips.
if(NOT stdout MATCHES "exact\\.absorbing-class")
  message(FATAL_ERROR
    "no exact.absorbing-class findings in the registry lint:\n${stdout}")
endif()
if(NOT stdout MATCHES "exact\\.hitting-time")
  message(FATAL_ERROR
    "no exact.hitting-time findings in the registry lint:\n${stdout}")
endif()
if(stdout MATCHES "exact\\.state-budget")
  message(FATAL_ERROR
    "exact pass hit the state budget at n = 16; the smoke is supposed to "
    "run every registry machine exactly:\n${stdout}")
endif()

message(STATUS
  "lint exact smoke: registry linted clean with exact.* verdicts at n = 16")
