# Cached-sweep smoke: run the CI sweep preset twice against one cache
# directory and assert the warm run (a) reports every job as a cache hit
# and (b) writes --json/--jsonl artifacts byte-identical to the cold run.
# This is the determinism-contract-extended-to-replays check, runnable as
# one command from CTest and the CI jobs:
#
#   cmake -DDEPROTO_RUN=<path/to/deproto-run> -P tools/cached_sweep_smoke.cmake
#
# Scratch space lives next to the binary under test (the build tree, never
# the source checkout -- in script mode CMAKE_CURRENT_BINARY_DIR is just
# the invoking cwd) and is recreated from empty on every invocation.

if(NOT DEFINED DEPROTO_RUN)
  message(FATAL_ERROR "pass -DDEPROTO_RUN=<path to deproto-run>")
endif()

get_filename_component(bin_dir "${DEPROTO_RUN}" DIRECTORY)
set(work "${bin_dir}/cached-sweep-smoke")
file(REMOVE_RECURSE "${work}")
file(MAKE_DIRECTORY "${work}")

set(sweep_args --sweep smoke-epidemic-scaling --threads 2
    --cache "${work}/cache" --quiet)

foreach(pass cold warm)
  execute_process(
    COMMAND "${DEPROTO_RUN}" ${sweep_args}
            --json "${work}/${pass}.json" --jsonl "${work}/${pass}.jsonl"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${pass} cached sweep failed (exit ${rc}):\n${stdout}\n${stderr}")
  endif()
  set(${pass}_stdout "${stdout}")
endforeach()

# The cold run executes everything; the warm run must replay everything.
if(NOT cold_stdout MATCHES "cache: 0/8 hits, 8 misses \\(0 corrupt\\), 8 stored")
  message(FATAL_ERROR "cold run did not miss+store all 8 jobs:\n${cold_stdout}")
endif()
if(NOT warm_stdout MATCHES "cache: 8/8 hits, 0 misses \\(0 corrupt\\), 0 stored")
  message(FATAL_ERROR "warm run was not all cache hits:\n${warm_stdout}")
endif()

# Byte-identical artifacts: cached and fresh results are indistinguishable
# to every sink.
foreach(artifact json jsonl)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${work}/cold.${artifact}" "${work}/warm.${artifact}"
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
      "warm .${artifact} differs from cold (cache replay broke determinism)")
  endif()
endforeach()

message(STATUS "cached sweep smoke: warm run all hits, artifacts byte-identical")
