# Dispatch-sweep smoke: the multi-process dispatcher's determinism
# contract end to end, from the CLI. One sweep preset runs three ways --
# cold through `--dispatch 3` workers sharing a cache directory, then
# single-threaded in-process over that same (worker-written) cache, then
# single-threaded with no cache at all -- and every --json/--jsonl
# artifact must be byte-identical: sharding across processes, replaying
# worker-stored cache entries, and plain in-process execution are
# indistinguishable to every sink. Runnable as one command from CTest and
# the CI jobs:
#
#   cmake -DDEPROTO_RUN=<path/to/deproto-run> -P tools/dispatch_sweep_smoke.cmake
#
# Scratch space lives next to the binary under test (the build tree, never
# the source checkout) and is recreated from empty on every invocation.

if(NOT DEFINED DEPROTO_RUN)
  message(FATAL_ERROR "pass -DDEPROTO_RUN=<path to deproto-run>")
endif()

get_filename_component(bin_dir "${DEPROTO_RUN}" DIRECTORY)
set(work "${bin_dir}/dispatch-sweep-smoke")
file(REMOVE_RECURSE "${work}")
file(MAKE_DIRECTORY "${work}")

set(sweep_args --sweep fig11-convergence-vs-n --backend count --quiet)

set(dispatch_exec_args --dispatch 3 --cache "${work}/cache")
set(warm_exec_args --threads 1 --cache "${work}/cache")
set(plain_exec_args --threads 1 --no-cache)

foreach(pass dispatch warm plain)
  execute_process(
    COMMAND "${DEPROTO_RUN}" ${sweep_args} ${${pass}_exec_args}
            --json "${work}/${pass}.json" --jsonl "${work}/${pass}.jsonl"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${pass} sweep failed (exit ${rc}):\n${stdout}\n${stderr}")
  endif()
  set(${pass}_stdout "${stdout}")
endforeach()

# The dispatch run shards all 12 jobs across 3 healthy workers and stores
# every result into the shared cache; the warm in-process run must replay
# all of them (cross-process cache reuse).
if(NOT dispatch_stdout MATCHES "dispatch: 3 workers, 12 jobs dispatched")
  message(FATAL_ERROR
    "dispatch run did not report 3 workers / 12 jobs:\n${dispatch_stdout}")
endif()
if(NOT dispatch_stdout MATCHES "0 worker restarts")
  message(FATAL_ERROR
    "dispatch run restarted workers on a healthy sweep:\n${dispatch_stdout}")
endif()
if(NOT dispatch_stdout MATCHES "cache: 0/12 hits, 12 misses \\(0 corrupt\\), 12 stored")
  message(FATAL_ERROR
    "dispatch run did not miss+store all 12 jobs:\n${dispatch_stdout}")
endif()
if(NOT warm_stdout MATCHES "cache: 12/12 hits, 0 misses \\(0 corrupt\\), 0 stored")
  message(FATAL_ERROR
    "warm run did not replay the worker-written cache:\n${warm_stdout}")
endif()

# Byte-identical artifacts across all three execution modes.
foreach(pass warm plain)
  foreach(artifact json jsonl)
    execute_process(
      COMMAND "${CMAKE_COMMAND}" -E compare_files
              "${work}/dispatch.${artifact}" "${work}/${pass}.${artifact}"
      RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
      message(FATAL_ERROR
        "${pass} .${artifact} differs from dispatch (multi-process sharding "
        "broke determinism)")
    endif()
  endforeach()
endforeach()

message(STATUS
  "dispatch sweep smoke: 3-worker run byte-identical to in-process, "
  "cache shared across processes")
