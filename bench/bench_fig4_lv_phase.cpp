// Figure 4: phase portrait of the LV protocol. The paper's seven initial
// points; every x0 > y0 start must converge to (1000, 0, 0), every x0 < y0
// start to (0, 1000, 0), and x0 = y0 flows to the (333.3, 333.3, 333.3)
// saddle.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "numerics/phase_portrait.hpp"
#include "numerics/stability.hpp"
#include "ode/catalog.hpp"

namespace {

constexpr double kN = 1000.0;

const std::vector<deproto::num::Vec> kInitialPoints{
    {0.1, 0.2, 0.7},  // blank square
    {0.2, 0.1, 0.7},  // dark square
    {0.3, 0.5, 0.2},  // blank circle
    {0.5, 0.3, 0.2},  // dark circle
    {0.1, 0.8, 0.1},  // blank triangle
    {0.8, 0.1, 0.1},  // dark triangle
    {0.1, 0.1, 0.8},  // blank inverted triangle (x = y)
};

void BM_Figure4_LvPhasePortrait(benchmark::State& state) {
  static bench_util::PrintOnce once;
  const auto sys = deproto::ode::catalog::lv_partitionable();

  deproto::num::PhasePortrait portrait;
  for (auto _ : state) {
    deproto::num::PhasePortraitOptions opts;
    opts.t_end = 40.0;
    opts.observe_dt = 0.05;
    portrait = deproto::num::compute_phase_portrait(sys, kInitialPoints,
                                                    opts);
    benchmark::DoNotOptimize(portrait);
  }

  if (once()) {
    bench_util::banner("Figure 4: LV phase portrait (N=1000)");
    std::vector<std::vector<std::string>> rows;
    for (const auto& traj : portrait.trajectories) {
      const auto& s = traj.initial;
      const auto& e = traj.points.back();
      const char* expected = s[0] > s[1]   ? "(1000,0)"
                             : s[0] < s[1] ? "(0,1000)"
                                           : "(333,333)";
      rows.push_back({"(" + bench_util::fmt(s[0] * kN, 0) + "," +
                          bench_util::fmt(s[1] * kN, 0) + "," +
                          bench_util::fmt(s[2] * kN, 0) + ")",
                      bench_util::fmt(e[0] * kN, 1),
                      bench_util::fmt(e[1] * kN, 1), expected});
    }
    bench_util::table({"start (X,Y,Z)", "X(end)", "Y(end)", "theorem 4"},
                      rows);

    // Fixed-point classification (Theorem 4).
    const auto lv2 = deproto::ode::catalog::lv_original();
    bench_util::note(
        "(0,1): " + deproto::num::to_string(
                        deproto::num::classify_equilibrium(lv2, {0.0, 1.0})
                            .type));
    bench_util::note(
        "(1,0): " + deproto::num::to_string(
                        deproto::num::classify_equilibrium(lv2, {1.0, 0.0})
                            .type));
    bench_util::note(
        "(0,0): " + deproto::num::to_string(
                        deproto::num::classify_equilibrium(lv2, {0.0, 0.0})
                            .type));
    bench_util::note(
        "(1/3,1/3): " +
        deproto::num::to_string(
            deproto::num::classify_equilibrium(lv2, {1.0 / 3, 1.0 / 3})
                .type));

    std::printf("%s",
                deproto::num::render_ascii(portrait, {0, 1}, 1.0, 72, 26)
                    .c_str());
    bench_util::note("two basins split by x = y; saddle at the centroid");
  }
}
BENCHMARK(BM_Figure4_LvPhasePortrait)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
