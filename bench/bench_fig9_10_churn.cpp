// Figures 9 and 10: endemic replication under host churn. N = 2000, b = 32,
// gamma = 0.1, alpha = 0.005, 6-minute protocol period (10 periods/hour),
// hourly churn of 10-25% of system size injected from (synthetic) Overnet
// availability traces; hosts lose replicas on departure and rejoin
// receptive. Figure 9 plots populations (hours 150-170); Figure 10 plots
// per-period state transitions. Expected shape: stable stasher count, low
// file flux throughout.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "protocols/analysis.hpp"
#include "protocols/endemic_replication.hpp"
#include "sim/sync_sim.hpp"

namespace {

using deproto::proto::EndemicReplication;

constexpr std::size_t kN = 2000;
constexpr double kHours = 172.0;
constexpr double kPeriodsPerHour = 10.0;

void BM_Figures9And10_Churn(benchmark::State& state) {
  static bench_util::PrintOnce once;
  const deproto::proto::EndemicParams params{
      .b = 32, .gamma = 0.1, .alpha = 0.005};

  std::vector<std::vector<std::string>> pop_rows, flux_rows;
  deproto::sim::WindowSummary stash_all{};
  double churn_per_day = 0.0;

  for (auto _ : state) {
    EndemicReplication protocol(params);
    deproto::sim::SyncSimulator simulator(kN, protocol, /*seed=*/9);
    deproto::sim::Rng churn_rng(1234);
    const auto trace = deproto::sim::ChurnTrace::synthetic_overnet(
        kN, kHours, 0.10, 0.25, 0.5, churn_rng);
    churn_per_day = trace.departures_per_host_day(kN, kHours);
    simulator.attach_churn(trace, kPeriodsPerHour);

    const auto expected = deproto::proto::endemic_expectation(kN, params);
    const auto rx = static_cast<std::size_t>(expected.receptives);
    const auto sy = static_cast<std::size_t>(expected.stashers);
    simulator.seed_states({rx, sy, kN - rx - sy});

    const auto periods =
        static_cast<std::size_t>(kHours * kPeriodsPerHour);
    simulator.run(periods);

    pop_rows.clear();
    flux_rows.clear();
    const auto& samples = simulator.metrics().samples();
    for (double hour = 150.0; hour <= 170.0; hour += 2.0) {
      const auto k = static_cast<std::size_t>(hour * kPeriodsPerHour);
      const auto& s = samples[k];
      pop_rows.push_back(
          {bench_util::fmt(hour, 0),
           std::to_string(s.alive_in_state[EndemicReplication::kStash]),
           std::to_string(s.alive_in_state[EndemicReplication::kReceptive]),
           std::to_string(s.alive_in_state[EndemicReplication::kAverse]),
           std::to_string(s.total_alive)});
      flux_rows.push_back(
          {bench_util::fmt(hour, 0),
           std::to_string(s.transitions[EndemicReplication::kReceptive * 3 +
                                        EndemicReplication::kStash]),
           std::to_string(s.transitions[EndemicReplication::kStash * 3 +
                                        EndemicReplication::kAverse]),
           std::to_string(s.transitions[EndemicReplication::kAverse * 3 +
                                        EndemicReplication::kReceptive])});
    }
    stash_all = simulator.metrics().summarize_state(
        EndemicReplication::kStash, 500, periods);
    benchmark::DoNotOptimize(stash_all);
  }

  if (once()) {
    bench_util::banner(
        "Figure 9: endemic under churn (N=2000, b=32, g=0.1, a=0.005; "
        "hourly churn 10-25%)");
    bench_util::note("synthetic Overnet trace: " +
                     bench_util::fmt(churn_per_day, 1) +
                     " departures/host/day (published Overnet: 6.4 "
                     "rejoins/day)");
    bench_util::table(
        {"hour", "Stash:Alive", "Rcptv:Alive", "Avers:Alive", "alive"},
        pop_rows);
    bench_util::note("stash count over the whole run: min " +
                     bench_util::fmt(stash_all.min, 0) + ", median " +
                     bench_util::fmt(stash_all.median, 0) + ", max " +
                     bench_util::fmt(stash_all.max, 0) +
                     "  (paper shape: stays stable and low)");

    bench_util::banner("Figure 10: state transitions per period");
    bench_util::table(
        {"hour", "Rcptv->Stash", "Stash->Avers", "Avers->Rcptv"}, flux_rows);
    bench_util::note("paper shape: transition counts stay bounded; the "
                     "protocol is churn-resistant");
  }
}
BENCHMARK(BM_Figures9And10_Churn)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
