// Figures 9 and 10: endemic replication under host churn. N = 2000, b = 32,
// gamma = 0.1, alpha = 0.005, 6-minute protocol period (10 periods/hour),
// hourly churn of 10-25% of system size injected from (synthetic) Overnet
// availability traces; hosts lose replicas on departure and rejoin
// receptive. Figure 9 plots populations (hours 150-170); Figure 10 plots
// per-period state transitions. Expected shape: stable stasher count, low
// file flux throughout.
//
// Ported from a hand-rolled SyncSimulator loop onto the api::Experiment
// facade: the whole setup -- the eq. (1) system at beta = 2b with the
// push-pull optimization, equilibrium seeding, and the Overnet churn
// attachment -- is one declarative ScenarioSpec; the bench launches it and
// reads the same per-period population and transition metrics off the
// unified sim::Simulator interface.

#include <benchmark/benchmark.h>

#include "api/experiment.hpp"
#include "bench_util.hpp"
#include "protocols/analysis.hpp"
#include "sim/churn.hpp"

namespace {

constexpr std::size_t kN = 2000;
constexpr double kHours = 172.0;
constexpr double kPeriodsPerHour = 10.0;

// Synthesized endemic machine state order (catalog eq. 1): x receptive,
// y stash, z averse -- the same indices the hand-written protocol used.
constexpr std::size_t kReceptive = 0;
constexpr std::size_t kStash = 1;
constexpr std::size_t kAverse = 2;

void BM_Figures9And10_Churn(benchmark::State& state) {
  static bench_util::PrintOnce once;
  const deproto::proto::EndemicParams params{
      .b = 32, .gamma = 0.1, .alpha = 0.005};

  // The scenario, declaratively: beta = 2b endemic system with push+pull,
  // seeded at the analytic equilibrium, synthetic Overnet churn attached
  // via the fault plan (trace seed 1234, 10-25% hourly).
  deproto::api::ScenarioSpec spec;
  spec.name = "fig9-10-endemic-churn";
  spec.source.catalog = "endemic";
  spec.source.params = {2.0 * params.b, params.gamma, params.alpha};
  spec.synthesis.push_pull.push_back(deproto::core::PushPullSpec{"x", "y"});
  spec.n = kN;
  spec.seed = 9;
  spec.periods = static_cast<std::size_t>(kHours * kPeriodsPerHour);
  const auto expected = deproto::proto::endemic_expectation(kN, params);
  const auto rx = static_cast<std::size_t>(expected.receptives);
  const auto sy = static_cast<std::size_t>(expected.stashers);
  spec.initial_counts = {rx, sy, kN - rx - sy};
  spec.faults.churn.enabled = true;
  spec.faults.churn.hours = kHours;
  spec.faults.churn.min_rate = 0.10;
  spec.faults.churn.max_rate = 0.25;
  spec.faults.churn.mean_downtime_hours = 0.5;
  spec.faults.churn.seed = 1234;
  spec.faults.churn.periods_per_hour = kPeriodsPerHour;

  std::vector<std::vector<std::string>> pop_rows, flux_rows;
  deproto::sim::WindowSummary stash_all{};
  double churn_per_day = 0.0;

  for (auto _ : state) {
    deproto::api::Experiment experiment(spec);
    deproto::api::ExperimentRun run = experiment.launch();
    run.advance(spec.periods);

    // The same trace the fault plan attaches (same seed and parameters),
    // rebuilt for the published-rate comparison note.
    deproto::sim::Rng churn_rng(spec.faults.churn.seed);
    const auto trace = deproto::sim::ChurnTrace::synthetic_overnet(
        kN, kHours, spec.faults.churn.min_rate, spec.faults.churn.max_rate,
        spec.faults.churn.mean_downtime_hours, churn_rng);
    churn_per_day = trace.departures_per_host_day(kN, kHours);

    pop_rows.clear();
    flux_rows.clear();
    const auto& samples = run.simulator().metrics().samples();
    for (double hour = 150.0; hour <= 170.0; hour += 2.0) {
      const auto k = static_cast<std::size_t>(hour * kPeriodsPerHour);
      const auto& s = samples[k];
      pop_rows.push_back({bench_util::fmt(hour, 0),
                          std::to_string(s.alive_in_state[kStash]),
                          std::to_string(s.alive_in_state[kReceptive]),
                          std::to_string(s.alive_in_state[kAverse]),
                          std::to_string(s.total_alive)});
      flux_rows.push_back(
          {bench_util::fmt(hour, 0),
           std::to_string(s.transitions[kReceptive * 3 + kStash]),
           std::to_string(s.transitions[kStash * 3 + kAverse]),
           std::to_string(s.transitions[kAverse * 3 + kReceptive])});
    }
    stash_all = run.simulator().metrics().summarize_state(kStash, 500,
                                                          spec.periods);
    benchmark::DoNotOptimize(stash_all);
  }

  if (once()) {
    bench_util::banner(
        "Figure 9: endemic under churn (N=2000, b=32, g=0.1, a=0.005; "
        "hourly churn 10-25%)");
    bench_util::note("synthetic Overnet trace: " +
                     bench_util::fmt(churn_per_day, 1) +
                     " departures/host/day (published Overnet: 6.4 "
                     "rejoins/day)");
    bench_util::table(
        {"hour", "Stash:Alive", "Rcptv:Alive", "Avers:Alive", "alive"},
        pop_rows);
    bench_util::note("stash count over the whole run: min " +
                     bench_util::fmt(stash_all.min, 0) + ", median " +
                     bench_util::fmt(stash_all.median, 0) + ", max " +
                     bench_util::fmt(stash_all.max, 0) +
                     "  (paper shape: stays stable and low)");

    bench_util::banner("Figure 10: state transitions per period");
    bench_util::table(
        {"hour", "Rcptv->Stash", "Stash->Avers", "Avers->Rcptv"}, flux_rows);
    bench_util::note("paper shape: transition counts stay bounded; the "
                     "protocol is churn-resistant");
  }
}
BENCHMARK(BM_Figures9And10_Churn)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
