// Dispatch overhead: what `--dispatch N` costs over the in-process
// thread pool for the same sweep. The dispatcher forks workers, frames
// every spec and result as JSON over pipes, and re-parses on both ends,
// so its per-sweep overhead (process spawn + framing + serialization) is
// the price of crash isolation; this bench pins it against the
// `--threads` engine on an identical job list so a regression in the
// wire path or the fork loop shows up as a ratio, not an anecdote. This
// binary doubles as its own worker (the dispatcher execs /proc/self/exe
// with --worker), exactly like the dispatcher integration tests.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "api/suite_runner.hpp"
#include "api/sweep.hpp"
#include "dist/worker.hpp"

namespace {

constexpr std::size_t kN = 2000;
constexpr std::size_t kPeriods = 50;
constexpr std::size_t kJobs = 8;

deproto::api::SweepSpec bench_sweep() {
  deproto::api::SweepSpec sweep;
  sweep.name = "bench-dispatch-overhead";
  sweep.base.name = "bench-epidemic";
  sweep.base.source.catalog = "epidemic";
  sweep.base.n = kN;
  sweep.base.periods = kPeriods;
  sweep.base.seed = 7;
  sweep.base.initial_counts = {kN - 1, 1};
  sweep.replicates = kJobs;
  return sweep;
}

void report(benchmark::State& state) {
  state.counters["jobs"] = kJobs;
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(kJobs) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_InProcessThreads(benchmark::State& state) {
  const deproto::api::SweepSpec sweep = bench_sweep();
  deproto::api::SuiteOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  options.store_results = false;
  for (auto _ : state) {
    const deproto::api::SweepResult result =
        deproto::api::SuiteRunner(options).run(sweep);
    benchmark::DoNotOptimize(result.jobs_failed);
  }
  report(state);
}
BENCHMARK(BM_InProcessThreads)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_DispatchWorkers(benchmark::State& state) {
  const deproto::api::SweepSpec sweep = bench_sweep();
  deproto::api::SuiteOptions options;
  options.dispatch.workers = static_cast<std::size_t>(state.range(0));
  options.store_results = false;
  for (auto _ : state) {
    const deproto::api::SweepResult result =
        deproto::api::SuiteRunner(options).run(sweep);
    benchmark::DoNotOptimize(result.jobs_failed);
  }
  report(state);
}
BENCHMARK(BM_DispatchWorkers)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Worker re-entry: the dispatcher spawns this binary with --worker.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--worker") {
      deproto::dist::WorkerOptions options;
      for (int j = 1; j + 1 < argc; ++j) {
        if (std::string(argv[j]) == "--worker-heartbeat-ms") {
          options.heartbeat_ms = std::atoi(argv[j + 1]);
        }
      }
      return deproto::dist::run_worker(options);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
