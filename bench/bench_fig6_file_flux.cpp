// Figure 6: file flux rate (receptive -> stash transfers per protocol
// period) for the Figure 5 experiment. Expected shape: the flux stays low
// (single digits per period for ~100 stashers at gamma = 1e-3) and is not
// drastically affected by the massive failure at t = 5000.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "protocols/analysis.hpp"
#include "protocols/endemic_replication.hpp"
#include "sim/sync_sim.hpp"

namespace {

using deproto::proto::EndemicReplication;

constexpr std::size_t kN = 100000;
constexpr std::size_t kFailAt = 1000;  // window-relative (t = 5000 absolute)
constexpr std::size_t kPeriods = 6000;

void BM_Figure6_FileFlux(benchmark::State& state) {
  static bench_util::PrintOnce once;
  const deproto::proto::EndemicParams params{
      .b = 2, .gamma = 1e-3, .alpha = 1e-6};

  std::vector<std::vector<std::string>> rows;
  double flux_before = 0.0, flux_after = 0.0;

  for (auto _ : state) {
    EndemicReplication protocol(params);
    deproto::sim::SyncSimulator simulator(kN, protocol, /*seed=*/42);
    const auto expected = deproto::proto::endemic_expectation(kN, params);
    const auto rx = static_cast<std::size_t>(expected.receptives);
    const auto sy = static_cast<std::size_t>(expected.stashers);
    simulator.seed_states({rx, sy, kN - rx - sy});
    simulator.schedule_massive_failure(kFailAt, 0.5);
    simulator.run(kPeriods);

    rows.clear();
    const auto& metrics = simulator.metrics();
    for (std::size_t k = 0; k < kPeriods; k += 250) {
      // Expected flux is ~0.1 transfers/period, so report each 250-period
      // bucket's mean and max (the paper's scatter shows the spikes).
      const auto bucket = metrics.summarize_flux(
          EndemicReplication::kReceptive, EndemicReplication::kStash, k,
          k + 250);
      rows.push_back({bench_util::fmt(static_cast<double>(k + 4000), 0),
                      bench_util::fmt(bucket.mean, 3),
                      bench_util::fmt(bucket.max, 0)});
    }
    flux_before = metrics
                      .summarize_flux(EndemicReplication::kReceptive,
                                      EndemicReplication::kStash, 0, kFailAt)
                      .mean;
    flux_after = metrics
                     .summarize_flux(EndemicReplication::kReceptive,
                                     EndemicReplication::kStash,
                                     kFailAt + 500, kPeriods)
                     .mean;
    benchmark::DoNotOptimize(flux_after);
  }

  if (once()) {
    bench_util::banner(
        "Figure 6: file flux rate (transfers/period), massive failure at "
        "t=5000");
    bench_util::table({"time", "Rcptv->Stash (mean/period)", "max"}, rows);
    bench_util::note("mean flux before failure: " +
                     bench_util::fmt(flux_before, 3) +
                     "  after: " + bench_util::fmt(flux_after, 3));
    bench_util::note(
        "analytic flux = gamma * Y: before " +
        bench_util::fmt(1e-3 * 99.9, 3) + ", after " +
        bench_util::fmt(1e-3 * 50.0, 3) +
        "  (paper shape: no drastic change, overhead stays low)");
  }
}
BENCHMARK(BM_Figure6_FileFlux)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
