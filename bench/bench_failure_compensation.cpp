// Section 3, "The Effect of Failures": running a synthesized machine over a
// lossy network multiplies every sampling term by (1-f)^{|T|-1}, shifting
// the equilibrium; compensating the coin biases by (1/(1-f))^{|T|-1}
// restores the modeled equations (up to the global p renormalization).
// We run the pure endemic machine at f in {0, 0.1, 0.25, 0.5}, with and
// without compensation, and compare stasher populations against eq. (2).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/failure_compensation.hpp"
#include "core/mean_field.hpp"
#include "core/synthesis.hpp"
#include "numerics/newton.hpp"
#include "ode/catalog.hpp"
#include "ode/rewriting.hpp"
#include "sim/runtime.hpp"
#include "sim/sync_sim.hpp"

namespace {

constexpr std::size_t kN = 10000;
constexpr double kBeta = 4.0, kGamma = 0.4, kAlpha = 0.05;

/// Predicted equilibrium stash fraction of an arbitrary machine under loss
/// f: find the interior equilibrium of its realized mean field.
double predicted_stash_fraction(
    const deproto::core::ProtocolStateMachine& machine, double f) {
  const auto realized = deproto::core::mean_field(machine, f);
  const auto reduced = deproto::ode::eliminate_last(realized, 1.0);
  double best = 0.0;
  for (const auto& eq : deproto::num::find_equilibria(reduced)) {
    if (eq[0] > 1e-6 && eq[1] > 1e-6) best = eq[1];
  }
  return best;
}

double simulated_stash_fraction(
    const deproto::core::ProtocolStateMachine& machine, double f,
    std::uint64_t seed) {
  deproto::sim::RuntimeOptions options;
  options.message_loss = f;
  deproto::sim::MachineExecutor executor(machine, options);
  deproto::sim::SyncSimulator simulator(kN, executor, seed);
  simulator.seed_states({kN / 2, kN / 2, 0});
  simulator.run(1500);
  const auto stash = simulator.metrics().summarize_state(1, 500, 1500);
  return stash.median / static_cast<double>(kN);
}

void BM_FailureCompensation(benchmark::State& state) {
  static bench_util::PrintOnce once;
  const auto source = deproto::ode::catalog::endemic(kBeta, kGamma, kAlpha);
  const auto synth = deproto::core::synthesize(source);

  std::vector<std::vector<std::string>> rows;
  for (auto _ : state) {
    rows.clear();
    const double y_inf = (1.0 - kGamma / kBeta) / (1.0 + kGamma / kAlpha);
    for (double f : {0.0, 0.1, 0.25, 0.5}) {
      const auto compensated =
          deproto::core::compensate_for_failures(synth.machine, f);
      rows.push_back(
          {bench_util::fmt(f, 2),
           bench_util::fmt(predicted_stash_fraction(synth.machine, f), 4),
           bench_util::fmt(simulated_stash_fraction(synth.machine, f, 5), 4),
           bench_util::fmt(simulated_stash_fraction(compensated, f, 6), 4),
           bench_util::fmt(y_inf, 4)});
    }
    benchmark::DoNotOptimize(rows.size());
  }

  if (once()) {
    bench_util::banner(
        "Section 3 failure factor: endemic machine under message loss f "
        "(N=10000, beta=4, gamma=0.4, alpha=0.05)");
    bench_util::table({"f", "predicted y (uncomp.)", "measured y (uncomp.)",
                       "measured y (compensated)", "eq.(2) y_inf"},
                      rows);
    bench_util::note(
        "uncompensated, only the sampling (beta) term slows by (1-f), so "
        "the equilibrium shifts: x_inf = gamma/(beta(1-f)) and the stash "
        "fraction falls below eq.(2); compensation multiplies the sampling "
        "coin by 1/(1-f) and restores the modeled equations (all coins "
        "then renormalize through p)");
  }
}
BENCHMARK(BM_FailureCompensation)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
