// Ablation A1: the value of the averse state. The third state enforces a
// refractory interval (mean 1/alpha periods) after a deletion before a host
// will store the file again (Section 4.1.2: it "helps the protocol perform
// even when some processes are chronically averse"). We sweep the averse
// dwell time via alpha (alpha -> 1 degenerates toward a 2-state SIS-like
// protocol) and measure (a) file-transfer overhead per stored replica and
// (b) robustness when half the group is chronically averse.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "protocols/analysis.hpp"
#include "protocols/endemic_replication.hpp"
#include "sim/sync_sim.hpp"

namespace {

using deproto::proto::EndemicReplication;

constexpr std::size_t kN = 10000;
constexpr std::size_t kPeriods = 2000;

struct AblationRow {
  double alpha;
  double stashers;
  double flux;
  double flux_per_stasher;
  double stash_with_chronic;  // half the group pinned averse
};

AblationRow run(double alpha, std::uint64_t seed) {
  AblationRow row{};
  row.alpha = alpha;
  const deproto::proto::EndemicParams params{
      .b = 2, .gamma = 0.1, .alpha = alpha};

  {
    EndemicReplication protocol(params);
    deproto::sim::SyncSimulator simulator(kN, protocol, seed);
    const auto expected = deproto::proto::endemic_expectation(kN, params);
    const auto rx = static_cast<std::size_t>(expected.receptives);
    const auto sy = static_cast<std::size_t>(expected.stashers);
    simulator.seed_states({rx, sy, kN - rx - sy});
    simulator.run(kPeriods);
    row.stashers = simulator.metrics()
                       .summarize_state(EndemicReplication::kStash, 200,
                                        kPeriods)
                       .median;
    row.flux = simulator.metrics()
                   .summarize_flux(EndemicReplication::kReceptive,
                                   EndemicReplication::kStash, 200, kPeriods)
                   .mean;
    row.flux_per_stasher = row.stashers > 0 ? row.flux / row.stashers : 0.0;
  }

  {
    // Chronically averse half: crash-resistant hosts that never leave the
    // averse state, modeled by crashing them (they refuse all contacts,
    // which is behaviorally identical for the other hosts' sampling).
    EndemicReplication protocol(params);
    deproto::sim::SyncSimulator simulator(kN, protocol, seed + 1);
    const auto expected = deproto::proto::endemic_expectation(kN, params);
    const auto rx = static_cast<std::size_t>(expected.receptives);
    const auto sy = static_cast<std::size_t>(expected.stashers);
    simulator.seed_states({rx, sy, kN - rx - sy});
    simulator.schedule_massive_failure(0, 0.5);
    simulator.run(kPeriods);
    row.stash_with_chronic =
        simulator.metrics()
            .summarize_state(EndemicReplication::kStash, 500, kPeriods)
            .median;
  }
  return row;
}

void BM_AblationAverseState(benchmark::State& state) {
  static bench_util::PrintOnce once;
  std::vector<AblationRow> rows;
  for (auto _ : state) {
    rows.clear();
    for (double alpha : {0.5, 0.1, 0.01, 0.001}) {
      rows.push_back(run(alpha, 17));
    }
    benchmark::DoNotOptimize(rows.size());
  }

  if (once()) {
    bench_util::banner(
        "Ablation A1: averse-state dwell time 1/alpha (N=10000, b=2, "
        "g=0.1); alpha -> 1 degenerates to a 2-state protocol");
    std::vector<std::vector<std::string>> printable;
    for (const AblationRow& r : rows) {
      printable.push_back({bench_util::fmt(r.alpha, 3),
                           bench_util::fmt(r.stashers, 1),
                           bench_util::fmt(r.flux, 2),
                           bench_util::fmt(r.flux_per_stasher, 4),
                           bench_util::fmt(r.stash_with_chronic, 1)});
    }
    bench_util::table({"alpha", "stashers", "transfers/period",
                       "transfers/period/stasher",
                       "stashers (50% chronically averse)"},
                      printable);
    bench_util::note(
        "small alpha trades replica count for a long refractory period: "
        "per-replica transfer overhead is flat (~gamma) while the stash "
        "population and its absolute bandwidth shrink by orders of "
        "magnitude. With half the group chronically refusing (crashed), "
        "the equilibrium scales down but persists -- except at the "
        "smallest alpha, where y_inf drops to ~47 hosts and stochastic "
        "extinction becomes likely over long runs, exactly the regime the "
        "Section 4.1.3 longevity analysis warns about (size y_inf = "
        "c*log2(N) with c >= 5)");
  }
}
BENCHMARK(BM_AblationAverseState)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
