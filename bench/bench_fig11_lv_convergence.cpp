// Figure 11: LV protocol convergence. A 100,000-process group starting
// with 60,000 in state x and 40,000 in state y (p = 0.01) converges to
// everyone in the initial-majority state x in under 500 periods.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "protocols/analysis.hpp"
#include "protocols/lv_majority.hpp"
#include "sim/sync_sim.hpp"

namespace {

using deproto::proto::LvMajority;

constexpr std::size_t kN = 100000;

void BM_Figure11_LvConvergence(benchmark::State& state) {
  static bench_util::PrintOnce once;
  std::vector<std::vector<std::string>> rows;
  std::size_t converged_at = 0;   // full unanimity
  std::size_t effectively_at = 0; // minority (y + z) down to O(1): <= 10

  for (auto _ : state) {
    LvMajority protocol({.p = 0.01});
    deproto::sim::SyncSimulator simulator(kN, protocol, /*seed=*/11);
    simulator.seed_states({60000, 40000, 0});

    rows.clear();
    converged_at = 0;
    effectively_at = 0;
    for (std::size_t t = 0; t <= 1000; t += 50) {
      const auto& g = simulator.group();
      rows.push_back({std::to_string(t),
                      std::to_string(g.count(LvMajority::kX)),
                      std::to_string(g.count(LvMajority::kY)),
                      std::to_string(g.count(LvMajority::kZ))});
      if (effectively_at == 0 &&
          g.count(LvMajority::kY) + g.count(LvMajority::kZ) <= 10) {
        effectively_at = t;
      }
      if (converged_at == 0 && LvMajority::converged(g)) converged_at = t;
      if (t < 1000) simulator.run(50);
    }
    benchmark::DoNotOptimize(converged_at);
  }

  if (once()) {
    bench_util::banner(
        "Figure 11: LV convergence (N=100000, start 60000/40000, p=0.01)");
    bench_util::table({"time", "State X", "State Y", "State Z"}, rows);
    bench_util::note("minority down to O(1) processes by t = " +
                     std::to_string(effectively_at) +
                     "  (paper: convergence in < 500 rounds; 8 minutes at "
                     "1 s periods)");
    if (converged_at > 0) {
      bench_util::note("full unanimity (every process in X) by t = " +
                       std::to_string(converged_at));
    }
    bench_util::note(
        "linearized estimate, minority below one process: t ~ " +
        bench_util::fmt(
            deproto::proto::lv_periods_to_one_process(kN, 0.4, 0.01), 0) +
        " periods");
  }
}
BENCHMARK(BM_Figure11_LvConvergence)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
