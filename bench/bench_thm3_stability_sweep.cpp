// Theorem 3 sweep: for every (alpha, gamma, b) with alpha, gamma in (0, 1]
// and beta = 2b > gamma, the second equilibrium of eq. (2) is stable
// (tau < 0, Delta > 0). The sweep also reports which of the three
// eigenvalue cases of Section 4.1.3 applies across the parameter grid, and
// times the analysis pipeline (equilibrium + Jacobian + classification).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "numerics/stability.hpp"
#include "ode/catalog.hpp"
#include "protocols/analysis.hpp"

namespace {

using deproto::proto::EndemicParams;

void BM_Theorem3Sweep(benchmark::State& state) {
  static bench_util::PrintOnce once;
  const std::vector<double> gammas{1.0, 0.5, 0.1, 0.01, 0.001};
  const std::vector<double> alphas{1.0, 0.1, 0.01, 0.001, 1e-6};
  const std::vector<unsigned> bs{1, 2, 4, 16, 32};

  std::size_t stable = 0, total = 0, complex_case = 0, real_case = 0;
  for (auto _ : state) {
    stable = total = complex_case = real_case = 0;
    for (double gamma : gammas) {
      for (double alpha : alphas) {
        for (unsigned b : bs) {
          const EndemicParams params{.b = b, .gamma = gamma, .alpha = alpha};
          if (deproto::proto::endemic_beta(params) <= gamma) continue;
          ++total;
          const auto report = deproto::proto::endemic_stability(params);
          if (report.stable && report.trace < 0.0 &&
              report.determinant > 0.0) {
            ++stable;
          }
          if (deproto::proto::endemic_eigen_case(params) ==
              deproto::num::EigenCase::ComplexConjugate) {
            ++complex_case;
          } else {
            ++real_case;
          }
        }
      }
    }
    benchmark::DoNotOptimize(stable);
  }

  if (once()) {
    bench_util::banner(
        "Theorem 3 sweep: stability of the second endemic equilibrium");
    bench_util::table(
        {"grid points", "stable (tau<0, Delta>0)", "spiral case",
         "real-eigenvalue case"},
        {{std::to_string(total), std::to_string(stable),
          std::to_string(complex_case), std::to_string(real_case)}});
    bench_util::note(total == stable
                         ? "every admissible parameter point is stable, as "
                           "Theorem 3 proves"
                         : "VIOLATION of Theorem 3 detected!");

    // Show the paper's own parameter settings.
    std::vector<std::vector<std::string>> rows;
    struct Named {
      const char* name;
      EndemicParams params;
    };
    for (const Named& n :
         {Named{"Figure 2 (b=2, g=1, a=0.01)",
                {.b = 2, .gamma = 1.0, .alpha = 0.01}},
          Named{"Figure 5 (b=2, g=1e-3, a=1e-6)",
                {.b = 2, .gamma = 1e-3, .alpha = 1e-6}},
          Named{"Figures 7/8 (b=2, g=0.1, a=0.001)",
                {.b = 2, .gamma = 0.1, .alpha = 0.001}},
          Named{"Figures 9/10 (b=32, g=0.1, a=0.005)",
                {.b = 32, .gamma = 0.1, .alpha = 0.005}}}) {
      const auto report = deproto::proto::endemic_stability(n.params);
      rows.push_back(
          {n.name, bench_util::fmt_sci(report.trace),
           bench_util::fmt_sci(report.determinant),
           bench_util::fmt_sci(report.discriminant),
           deproto::num::to_string(report.type)});
    }
    bench_util::table({"setting", "tau", "Delta", "tau^2-4Delta", "type"},
                      rows);
  }
}
BENCHMARK(BM_Theorem3Sweep)->Unit(benchmark::kMicrosecond);

void BM_ClassifyEquilibriumLatency(benchmark::State& state) {
  // Microbenchmark: one full classify pipeline on the endemic system.
  const auto sys = deproto::ode::catalog::endemic(4.0, 1.0, 0.01);
  const deproto::num::Vec point{0.25, 0.75 / 101.0, 0.75 / 1.01};
  for (auto _ : state) {
    auto report = deproto::num::classify_on_simplex(sys, point);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ClassifyEquilibriumLatency);

}  // namespace

BENCHMARK_MAIN();
