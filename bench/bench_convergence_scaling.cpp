// Convergence-complexity claims: the epidemic reaches everyone in O(log N)
// rounds (Section 1), and the LV protocol reaches an O(1) minority in
// O(log N) periods (Section 4.2.2). We sweep N and report rounds alongside
// log2(N).

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hpp"
#include "protocols/epidemic.hpp"
#include "protocols/lv_majority.hpp"
#include "sim/sync_sim.hpp"

namespace {

std::size_t lv_periods_to_converge(std::size_t n, double p,
                                   std::uint64_t seed) {
  deproto::proto::LvMajority protocol({.p = p});
  deproto::sim::SyncSimulator simulator(n, protocol, seed);
  simulator.seed_states({n * 6 / 10, n - n * 6 / 10, 0});
  std::size_t t = 0;
  while (!deproto::proto::LvMajority::converged(simulator.group()) &&
         t < 100000) {
    simulator.run(5);
    t += 5;
  }
  return t;
}

std::vector<std::vector<std::string>> epidemic_rows;
std::vector<std::vector<std::string>> lv_rows;

void BM_EpidemicScaling(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double rounds = 0.0;
  int trials = 0;
  for (auto _ : state) {
    rounds += static_cast<double>(
        deproto::proto::epidemic_rounds_to_full_infection(
            n, 7 + static_cast<std::uint64_t>(trials)));
    ++trials;
  }
  rounds /= trials;
  epidemic_rows.push_back(
      {std::to_string(n), bench_util::fmt(rounds, 1),
       bench_util::fmt(std::log2(static_cast<double>(n)), 1),
       bench_util::fmt(rounds / std::log2(static_cast<double>(n)), 2)});
  state.counters["rounds"] = rounds;
}
BENCHMARK(BM_EpidemicScaling)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

void BM_LvScaling(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double periods = 0.0;
  int trials = 0;
  for (auto _ : state) {
    periods += static_cast<double>(lv_periods_to_converge(
        n, 0.05, 3 + static_cast<std::uint64_t>(trials)));
    ++trials;
  }
  periods /= trials;
  lv_rows.push_back(
      {std::to_string(n), bench_util::fmt(periods, 1),
       bench_util::fmt(std::log2(static_cast<double>(n)), 1),
       bench_util::fmt(periods / std::log2(static_cast<double>(n)), 2)});
  state.counters["periods"] = periods;
}
BENCHMARK(BM_LvScaling)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

void BM_PrintScalingTables(benchmark::State& state) {
  static bench_util::PrintOnce once;
  for (auto _ : state) {
    benchmark::DoNotOptimize(epidemic_rows.size());
  }
  if (once()) {
    bench_util::banner("Epidemic: rounds to full infection is O(log N)");
    bench_util::table({"N", "rounds", "log2(N)", "ratio"}, epidemic_rows);
    bench_util::banner(
        "LV (p=0.05, 60/40 start): periods to unanimity is O(log N)");
    bench_util::table({"N", "periods", "log2(N)", "ratio"}, lv_rows);
    bench_util::note("paper shape: both ratios stay ~constant as N grows");
  }
}
BENCHMARK(BM_PrintScalingTables)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
