// Figure 8: replica untraceability and load balancing. N = 1000, b = 2,
// gamma = 0.1. The plot records which hosts are stashers at the end of
// every period for t in [1000, 1200]. We quantify the figure's two claims:
// no significant horizontal lines (no host stores a replica for very long)
// and no correlation in time or host id (an attacker cannot predict the
// replica set). The paper quotes 88.63 stashers and one new stasher every
// 40.6 s, which matches alpha = 0.01 rather than the stated 0.001; we run
// both and report the discrepancy.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <set>

#include "bench_util.hpp"
#include "protocols/analysis.hpp"
#include "protocols/endemic_replication.hpp"
#include "sim/sync_sim.hpp"

namespace {

using deproto::proto::EndemicReplication;

constexpr std::size_t kN = 1000;
constexpr std::size_t kWarmup = 1000;
constexpr std::size_t kWindow = 200;

struct Fig8Stats {
  double mean_stashers = 0.0;
  double mean_spell = 0.0;      // consecutive periods a host stays stasher
  double max_spell = 0.0;
  double turnover = 0.0;        // fraction of the stash set replaced / period
  double creations_per_period = 0.0;
  std::size_t distinct_hosts = 0;
};

Fig8Stats run(double alpha, std::uint64_t seed) {
  const deproto::proto::EndemicParams params{
      .b = 2, .gamma = 0.1, .alpha = alpha};
  EndemicReplication protocol(params);
  deproto::sim::SyncSimulator simulator(kN, protocol, seed);
  simulator.metrics().enable_host_history(EndemicReplication::kStash);
  const auto expected = deproto::proto::endemic_expectation(kN, params);
  const auto rx = static_cast<std::size_t>(expected.receptives);
  const auto sy = static_cast<std::size_t>(expected.stashers);
  simulator.seed_states({rx, sy, kN - rx - sy});
  simulator.run(kWarmup + kWindow);

  const auto& history = simulator.metrics().host_history();
  Fig8Stats stats;
  std::set<deproto::sim::ProcessId> everyone;
  std::vector<int> spell(kN, 0);
  std::vector<double> spells;
  double turnover_sum = 0.0;
  std::set<deproto::sim::ProcessId> prev;
  std::size_t count_sum = 0;

  for (std::size_t t = kWarmup; t < kWarmup + kWindow; ++t) {
    const std::set<deproto::sim::ProcessId> now(history[t].begin(),
                                                history[t].end());
    count_sum += now.size();
    everyone.insert(now.begin(), now.end());
    if (!prev.empty()) {
      std::size_t left = 0;
      for (auto pid : prev) {
        if (!now.count(pid)) ++left;
      }
      turnover_sum +=
          static_cast<double>(left) / static_cast<double>(prev.size());
      std::size_t created = 0;
      for (auto pid : now) {
        if (!prev.count(pid)) ++created;
      }
      stats.creations_per_period += static_cast<double>(created);
    }
    for (deproto::sim::ProcessId pid = 0; pid < kN; ++pid) {
      if (now.count(pid)) {
        ++spell[pid];
      } else if (spell[pid] > 0) {
        spells.push_back(spell[pid]);
        spell[pid] = 0;
      }
    }
    prev = now;
  }
  for (int s : spell) {
    if (s > 0) spells.push_back(s);
  }
  stats.mean_stashers =
      static_cast<double>(count_sum) / static_cast<double>(kWindow);
  stats.turnover = turnover_sum / static_cast<double>(kWindow - 1);
  stats.creations_per_period /= static_cast<double>(kWindow - 1);
  stats.distinct_hosts = everyone.size();
  if (!spells.empty()) {
    stats.max_spell = *std::max_element(spells.begin(), spells.end());
    double sum = 0.0;
    for (double s : spells) sum += s;
    stats.mean_spell = sum / static_cast<double>(spells.size());
  }
  return stats;
}

void BM_Figure8_Untraceability(benchmark::State& state) {
  static bench_util::PrintOnce once;
  Fig8Stats stated{}, quoted{};
  for (auto _ : state) {
    stated = run(0.001, 1);
    quoted = run(0.01, 1);
    benchmark::DoNotOptimize(stated);
  }

  if (once()) {
    bench_util::banner(
        "Figure 8: untraceability & load balancing (N=1000, b=2, g=0.1; "
        "t in [1000,1200])");
    auto row = [](const char* label, const Fig8Stats& s,
                  double expected_y, double expected_interval) {
      return std::vector<std::string>{
          label,
          bench_util::fmt(s.mean_stashers, 1),
          bench_util::fmt(expected_y, 1),
          bench_util::fmt(s.mean_spell, 1),
          bench_util::fmt(s.max_spell, 0),
          bench_util::fmt(100.0 * s.turnover, 1) + "%",
          std::to_string(s.distinct_hosts),
          s.creations_per_period > 0
              ? bench_util::fmt(360.0 / s.creations_per_period, 1)
              : "inf",
          bench_util::fmt(expected_interval, 1)};
    };
    const deproto::proto::EndemicParams p_stated{.b = 2, .gamma = 0.1,
                                                 .alpha = 0.001};
    const deproto::proto::EndemicParams p_quoted{.b = 2, .gamma = 0.1,
                                                 .alpha = 0.01};
    bench_util::table(
        {"alpha", "stashers", "eq.(2)", "mean spell", "max spell",
         "turnover/period", "distinct hosts in 200T", "s/new stasher",
         "paper"},
        {row("0.001 (stated)", stated,
             deproto::proto::endemic_expectation(kN, p_stated).stashers,
             deproto::proto::stasher_creation_interval_seconds(kN, p_stated,
                                                               360.0)),
         row("0.01 (quoted)", quoted,
             deproto::proto::endemic_expectation(kN, p_quoted).stashers,
             deproto::proto::stasher_creation_interval_seconds(kN, p_quoted,
                                                               360.0))});
    bench_util::note(
        "paper quotes 88.63 stashers / 40.6 s per new stasher, matching "
        "alpha = 0.01; the stated alpha = 0.001 gives ~9.7 stashers "
        "(paper-internal inconsistency, see EXPERIMENTS.md)");
    if (stated.mean_stashers < 0.5) {
      bench_util::note(
          "note: the alpha=0.001 run went extinct before the window -- "
          "with y_inf ~ 9.7 the per-period extinction probability is "
          "2^-9.7 ~ 1.2e-3 (Section 4.1.3), so extinction within ~1200 "
          "periods is likely; this is exactly why the paper sizes "
          "y_inf = c*log2(N) with c >= 5 for durable storage");
    }
    bench_util::note(
        "mean storage spell ~ 1/gamma = 10 periods, far shorter than the "
        "200-period window: no significant horizontal lines (good load "
        "balancing / untraceable replicas)");
  }
}
BENCHMARK(BM_Figure8_Untraceability)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
