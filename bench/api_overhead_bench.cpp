// Facade overhead: api::Experiment must add no measurable per-period cost
// over hand-wiring MachineExecutor + SyncSimulator directly. Both sides
// run the same synthesized endemic machine (steady-state workload, so
// per-period cost is constant) from the same seed; synthesis is hoisted
// out of the timed region on both paths, leaving launch + run + collect.

#include <benchmark/benchmark.h>

#include "api/experiment.hpp"
#include "bench_util.hpp"
#include "core/synthesis.hpp"
#include "ode/catalog.hpp"
#include "sim/runtime.hpp"
#include "sim/simulator.hpp"
#include "sim/sync_sim.hpp"

namespace {

constexpr std::size_t kN = 2000;
constexpr std::size_t kPeriods = 200;

deproto::api::ScenarioSpec bench_spec() {
  deproto::api::ScenarioSpec spec;
  spec.name = "bench-endemic";
  spec.source.catalog = "endemic";
  spec.source.params = {4.0, 0.2, 0.05};
  spec.synthesis.push_pull.push_back(deproto::core::PushPullSpec{"x", "y"});
  spec.n = kN;
  spec.periods = kPeriods;
  spec.seed = 11;
  spec.initial_counts = {100, 380, 1520};
  return spec;
}

void BM_DirectWiring(benchmark::State& state) {
  const deproto::core::SynthesisResult synth = deproto::core::synthesize(
      deproto::ode::catalog::endemic(4.0, 0.2, 0.05),
      {.push_pull = {deproto::core::PushPullSpec{"x", "y"}}});
  for (auto _ : state) {
    deproto::sim::MachineExecutor executor(synth.machine);
    deproto::sim::SyncSimulator simulator(kN, executor, 11);
    simulator.seed_states({100, 380, 1520});
    simulator.run(kPeriods);
    benchmark::DoNotOptimize(simulator.group().count(1));
    benchmark::DoNotOptimize(simulator.metrics().samples().size());
  }
  state.counters["periods"] = kPeriods;
  state.counters["time/period"] = benchmark::Counter(
      static_cast<double>(kPeriods) * state.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_DirectWiring)->Unit(benchmark::kMillisecond);

void BM_VirtualSimulatorInterface(benchmark::State& state) {
  // Same direct wiring, but programmed and run through the abstract
  // sim::Simulator base (what the facade does since the interface
  // unification): the virtual dispatch is once per run_for call, not per
  // period, so it must be indistinguishable from BM_DirectWiring.
  const deproto::core::SynthesisResult synth = deproto::core::synthesize(
      deproto::ode::catalog::endemic(4.0, 0.2, 0.05),
      {.push_pull = {deproto::core::PushPullSpec{"x", "y"}}});
  for (auto _ : state) {
    deproto::sim::MachineExecutor executor(synth.machine);
    deproto::sim::SyncSimulator concrete(kN, executor, 11);
    deproto::sim::Simulator& simulator = concrete;
    simulator.seed_states({100, 380, 1520});
    simulator.run_for(kPeriods);
    benchmark::DoNotOptimize(simulator.group().count(1));
    benchmark::DoNotOptimize(simulator.metrics().samples().size());
  }
  state.counters["periods"] = kPeriods;
  state.counters["time/period"] = benchmark::Counter(
      static_cast<double>(kPeriods) * state.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_VirtualSimulatorInterface)->Unit(benchmark::kMillisecond);

void BM_ExperimentFacade(benchmark::State& state) {
  deproto::api::Experiment experiment(bench_spec());
  (void)experiment.artifacts();  // hoist synthesis, like the direct path
  for (auto _ : state) {
    const deproto::api::ExperimentResult result = experiment.run();
    benchmark::DoNotOptimize(result.final_counts[1]);
    benchmark::DoNotOptimize(result.series.size());
  }
  state.counters["periods"] = kPeriods;
  state.counters["time/period"] = benchmark::Counter(
      static_cast<double>(kPeriods) * state.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_ExperimentFacade)->Unit(benchmark::kMillisecond);

void BM_PrintOverheadReport(benchmark::State& state) {
  static bench_util::PrintOnce once;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kN);
  }
  if (once()) {
    bench_util::banner("Experiment facade overhead (endemic, N=2000)");
    bench_util::note(
        "compare the time/period counters of BM_DirectWiring, "
        "BM_VirtualSimulatorInterface, and BM_ExperimentFacade: the "
        "abstract Simulator dispatch is once per run_for call (not per "
        "period) and the facade's extra work is result assembly "
        "(O(periods) copies), both amortized to noise per period");
  }
}
BENCHMARK(BM_PrintOverheadReport)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
