// Extension of Figure 7 (and of the paper's open question (3), citing
// Kurtz [15]): beyond the *means*, the linear-noise approximation predicts
// the stationary *fluctuations* of the finite-N protocol around the
// equilibrium. We compare predicted vs measured standard deviations of the
// stash and receptive populations across group sizes -- both scale as
// sqrt(N), quantifying exactly how fast the finite group approaches the
// infinite-group equations.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hpp"
#include "core/fluctuations.hpp"
#include "core/synthesis.hpp"
#include "ode/catalog.hpp"
#include "sim/runtime.hpp"
#include "sim/sync_sim.hpp"

namespace {

constexpr double kBeta = 4.0, kGamma = 0.4, kAlpha = 0.05;

struct Measured {
  double mean = 0.0;
  double stddev = 0.0;
};

Measured measure(const deproto::core::ProtocolStateMachine& machine,
                 const deproto::num::Vec& eq, std::size_t n,
                 std::size_t state, std::uint64_t seed) {
  deproto::sim::MachineExecutor executor(machine);
  deproto::sim::SyncSimulator simulator(n, executor, seed);
  simulator.seed_states(
      {static_cast<std::size_t>(eq[0] * static_cast<double>(n)),
       static_cast<std::size_t>(eq[1] * static_cast<double>(n))});
  simulator.run(4500);
  const auto& samples = simulator.metrics().samples();
  double sum = 0.0, sum2 = 0.0;
  std::size_t used = 0;
  for (std::size_t k = 500; k < samples.size(); ++k) {
    const double v = static_cast<double>(samples[k].alive_in_state[state]);
    sum += v;
    sum2 += v * v;
    ++used;
  }
  Measured out;
  out.mean = sum / static_cast<double>(used);
  out.stddev = std::sqrt(std::max(
      0.0, sum2 / static_cast<double>(used) - out.mean * out.mean));
  return out;
}

void BM_FiniteSizeFluctuations(benchmark::State& state) {
  static bench_util::PrintOnce once;
  const auto synth = deproto::core::synthesize(
      deproto::ode::catalog::endemic(kBeta, kGamma, kAlpha));
  const double x = kGamma / kBeta;
  const double y = (1.0 - x) / (1.0 + kGamma / kAlpha);
  const deproto::num::Vec eq{x, y, 1.0 - x - y};

  std::vector<std::vector<std::string>> rows;
  for (auto _ : state) {
    rows.clear();
    for (std::size_t n : {2000UL, 8000UL, 32000UL}) {
      const auto prediction = deproto::core::stationary_fluctuations(
          synth.machine, eq, static_cast<double>(n));
      const Measured stash = measure(synth.machine, eq, n, 1, 77);
      rows.push_back(
          {std::to_string(n),
           bench_util::fmt(y * static_cast<double>(n), 1),
           bench_util::fmt(stash.mean, 1),
           bench_util::fmt(prediction.count_stddev[1], 1),
           bench_util::fmt(stash.stddev, 1),
           bench_util::fmt(
               prediction.count_stddev[1] /
                   std::sqrt(static_cast<double>(n)),
               3)});
    }
    benchmark::DoNotOptimize(rows.size());
  }

  if (once()) {
    bench_util::banner(
        "Finite-size fluctuations (endemic, beta=4, gamma=0.4, "
        "alpha=0.05): linear-noise prediction vs simulation");
    bench_util::table({"N", "stash mean (eq.2)", "stash mean (sim)",
                       "stddev (predicted)", "stddev (measured)",
                       "stddev/sqrt(N)"},
                      rows);
    bench_util::note(
        "the stddev/sqrt(N) column is constant: fluctuations shrink "
        "relative to the mean as 1/sqrt(N), formalizing the rate at which "
        "the finite protocol approaches its differential equations "
        "(Kurtz-style answer to the paper's open question (3))");
  }
}
BENCHMARK(BM_FiniteSizeFluctuations)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
