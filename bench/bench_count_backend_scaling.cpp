// Period throughput of the three execution backends as N grows. The
// per-node backends pay O(N) work per period (the event backend adds
// queue scheduling on top), while the count backend advances a period in
// O(states + actions) -- flat in N. The table quantifies the gigascale
// claim behind the count backend: >= 100x the sync backend's period
// throughput at N >= 10^6, and N = 10^8 still runs at per-period costs
// the per-node backends pay near N = 10^3.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "api/spec.hpp"
#include "bench_util.hpp"

namespace {

constexpr std::size_t kPeriods = 20;

/// Seconds to advance a fresh fig11-style LV majority run (p = 0.01,
/// 60/40 split) kPeriods periods on `backend` at size n. Launch work
/// (synthesis + simulator construction + seeding) stays outside the
/// timed window.
double seconds_for_periods(deproto::api::Backend backend, std::size_t n) {
  deproto::api::ScenarioSpec spec =
      deproto::api::registry_get("lv-majority").scaled_to(n);
  spec.synthesis.p = 0.01;
  spec.backend = backend;
  spec.periods = kPeriods;
  deproto::api::Experiment experiment(spec);
  deproto::api::ExperimentRun run = experiment.launch();
  const auto start = std::chrono::steady_clock::now();
  run.advance(kPeriods);
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(run.simulator().now());
  return std::chrono::duration<double>(stop - start).count();
}

// (backend label, N) -> microseconds per period, for the summary table.
std::map<std::pair<std::string, std::size_t>, double> us_per_period;

void BM_PeriodThroughput(benchmark::State& state,
                         deproto::api::Backend backend) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double seconds = 0.0;
  std::size_t trials = 0;
  for (auto _ : state) {
    seconds += seconds_for_periods(backend, n);
    ++trials;
  }
  const double us = 1e6 * seconds / static_cast<double>(trials * kPeriods);
  us_per_period[{deproto::api::backend_name(backend), n}] = us;
  state.counters["us_per_period"] = us;
}

BENCHMARK_CAPTURE(BM_PeriodThroughput, sync, deproto::api::Backend::Sync)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);
// The event backend schedules per-process timers; above N = 10^5 one
// 20-period run is minutes, so its curve stops there.
BENCHMARK_CAPTURE(BM_PeriodThroughput, event, deproto::api::Backend::Event)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(10000)
    ->Arg(100000);
BENCHMARK_CAPTURE(BM_PeriodThroughput, count, deproto::api::Backend::Count)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Arg(10000000)
    ->Arg(100000000);

void BM_PrintScalingTable(benchmark::State& state) {
  static bench_util::PrintOnce once;
  for (auto _ : state) {
    benchmark::DoNotOptimize(us_per_period.size());
  }
  if (!once()) return;

  std::vector<std::vector<std::string>> rows;
  for (const auto& [key, us] : us_per_period) {
    rows.push_back({key.first, std::to_string(key.second),
                    bench_util::fmt(us, 2), bench_util::fmt_sci(1e6 / us, 2)});
  }
  bench_util::banner("Period throughput by backend (LV majority, p=0.01)");
  bench_util::table({"backend", "N", "us/period", "periods/s"}, rows);

  std::vector<std::vector<std::string>> speedups;
  for (const auto& [key, us] : us_per_period) {
    if (key.first != "sync") continue;
    const auto count = us_per_period.find({"count", key.second});
    if (count == us_per_period.end()) continue;
    speedups.push_back({std::to_string(key.second),
                        bench_util::fmt(us / count->second, 1)});
  }
  bench_util::banner("Count-backend speedup over sync (same N)");
  bench_util::table({"N", "speedup"}, speedups);
  bench_util::note(
      "gigascale claim: the count backend is >= 100x sync at N >= 10^6, "
      "and its us/period stays flat as N grows");
}
BENCHMARK(BM_PrintScalingTable)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
