// Figures 5: endemic protocol under massive failure. N = 100,000, b = 2,
// alpha = 1e-6, gamma = 1e-3. The system starts at equilibrium; at t = 5000
// a random 50% of hosts crash. Expected shape (paper): the stasher count
// drops by ~2x (from ~100 to ~50) and stabilizes quickly; the receptive
// count returns to its pre-failure absolute value because halving the alive
// population also halves the effective contact rate b, doubling x_inf.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "protocols/analysis.hpp"
#include "protocols/endemic_replication.hpp"
#include "sim/sync_sim.hpp"

namespace {

using deproto::proto::EndemicReplication;

constexpr std::size_t kN = 100000;
constexpr std::size_t kFailAt = 5000;
constexpr std::size_t kEnd = 10000;
constexpr std::size_t kStart = 4000;  // plotted window starts here

void BM_Figure5_MassiveFailure(benchmark::State& state) {
  static bench_util::PrintOnce once;
  const deproto::proto::EndemicParams params{
      .b = 2, .gamma = 1e-3, .alpha = 1e-6};

  std::vector<std::vector<std::string>> rows;
  double stash_before = 0.0, stash_after = 0.0, rcptv_before = 0.0,
         rcptv_after = 0.0;

  for (auto _ : state) {
    EndemicReplication protocol(params);
    deproto::sim::SyncSimulator simulator(kN, protocol, /*seed=*/20040725);
    const auto expected = deproto::proto::endemic_expectation(kN, params);
    const auto rx = static_cast<std::size_t>(expected.receptives);
    const auto sy = static_cast<std::size_t>(expected.stashers);
    simulator.seed_states({rx, sy, kN - rx - sy});
    simulator.schedule_massive_failure(kFailAt - kStart, 0.5);
    simulator.run(kEnd - kStart);

    rows.clear();
    const auto& samples = simulator.metrics().samples();
    for (std::size_t k = 0; k < samples.size(); k += 250) {
      rows.push_back(
          {bench_util::fmt(static_cast<double>(k + kStart), 0),
           std::to_string(samples[k].alive_in_state[EndemicReplication::kStash]),
           std::to_string(
               samples[k].alive_in_state[EndemicReplication::kReceptive]),
           std::to_string(samples[k].total_alive)});
    }
    const auto before = simulator.metrics().summarize_state(
        EndemicReplication::kStash, 0, kFailAt - kStart);
    const auto after = simulator.metrics().summarize_state(
        EndemicReplication::kStash, kFailAt - kStart + 1000,
        kEnd - kStart);
    stash_before = before.median;
    stash_after = after.median;
    rcptv_before = simulator.metrics()
                       .summarize_state(EndemicReplication::kReceptive, 0,
                                        kFailAt - kStart)
                       .median;
    rcptv_after = simulator.metrics()
                      .summarize_state(EndemicReplication::kReceptive,
                                       kFailAt - kStart + 1000,
                                       kEnd - kStart)
                      .median;
    benchmark::DoNotOptimize(stash_after);
  }

  if (once()) {
    bench_util::banner(
        "Figure 5: endemic massive failure (N=100000, b=2, a=1e-6, "
        "g=1e-3, 50% crash at t=5000)");
    bench_util::table({"time", "Stash:Alive", "Rcptv:Alive", "alive"}, rows);
    bench_util::note("stash median before failure: " +
                     bench_util::fmt(stash_before, 1) +
                     "   after: " + bench_util::fmt(stash_after, 1) +
                     "   (paper shape: drops by ~2x from ~100)");
    bench_util::note("rcptv median before failure: " +
                     bench_util::fmt(rcptv_before, 1) +
                     "   after: " + bench_util::fmt(rcptv_after, 1) +
                     "   (paper shape: roughly unchanged, ~25)");
  }
}
BENCHMARK(BM_Figure5_MassiveFailure)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
