// Section 4.1.3, probabilistic safety: the replica-longevity estimates.
// P(all y_inf stashers die before creating a new one) = (1/2)^{y_inf}; with
// 6-minute periods the paper quotes 1.28e10 years for (N=1024, 50 replicas)
// and 1.45e25 years for (N=2^20, 100 replicas).

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hpp"
#include "protocols/analysis.hpp"

namespace {

void BM_LongevityTable(benchmark::State& state) {
  static bench_util::PrintOnce once;
  double years = 0.0;
  for (auto _ : state) {
    years = deproto::proto::longevity_years(100.0, 6.0);
    benchmark::DoNotOptimize(years);
  }

  if (once()) {
    bench_util::banner(
        "Section 4.1.3: probabilistic safety / object longevity "
        "(6-minute periods)");
    std::vector<std::vector<std::string>> rows;
    struct Row {
      double n;
      double replicas;
      const char* paper;
    };
    for (const Row& r :
         {Row{1024.0, 50.0, "1.28e10 yr"},
          Row{1048576.0, 100.0, "1.45e25 yr"},
          Row{1024.0, 20.0, "-"},
          Row{1048576.0, 40.0, "-"},
          Row{100000.0, 100.0, "-"}}) {
      const double c = r.replicas / std::log2(r.n);
      rows.push_back(
          {bench_util::fmt(r.n, 0), bench_util::fmt(r.replicas, 0),
           bench_util::fmt(c, 2),
           bench_util::fmt_sci(
               deproto::proto::extinction_probability(r.replicas)),
           bench_util::fmt_sci(
               deproto::proto::longevity_years(r.replicas, 6.0)),
           r.paper});
    }
    bench_util::table({"N", "replicas y_inf", "c = y/log2(N)",
                       "P(extinct)/period", "longevity (years)", "paper"},
                      rows);
    bench_util::note("with y_inf = c*log2(N), extinction probability is "
                     "N^-c per period");
  }
}
BENCHMARK(BM_LongevityTable);

void BM_RealityCheck(benchmark::State& state) {
  static bench_util::PrintOnce once;
  const deproto::proto::EndemicParams params{
      .b = 2, .gamma = 1e-3, .alpha = 1e-6};
  deproto::proto::RealityCheck rc{};
  for (auto _ : state) {
    rc = deproto::proto::reality_check(100000, params, 6.0, 88.2);
    benchmark::DoNotOptimize(rc);
  }

  if (once()) {
    bench_util::banner(
        "Section 5.1 reality check (N=100000, b=2, g=1e-3, 88.2 KB files, "
        "6-minute periods)");
    bench_util::table(
        {"quantity", "computed", "paper"},
        {{"fraction of time a host stores the file",
          bench_util::fmt(100.0 * rc.stash_fraction, 2) + " %", "0.1 %"},
         {"storage spell", bench_util::fmt(rc.spell_hours, 0) + " h",
          "100 h (a little over four days)"},
         {"time between spells per host",
          bench_util::fmt(rc.interval_hours, 0) + " h", "~100,000 h"},
         {"transfers per period (system-wide)",
          bench_util::fmt(rc.transfers_per_period, 2), "-"},
         {"bandwidth per file per host",
          bench_util::fmt_sci(rc.bandwidth_bps) + " bps", "3.92e-3 bps"}});
    bench_util::note("bandwidth counts both transfer endpoints, matching "
                     "the paper's figure");
  }
}
BENCHMARK(BM_RealityCheck);

}  // namespace

BENCHMARK_MAIN();
