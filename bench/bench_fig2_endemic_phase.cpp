// Figure 2: phase portrait of the endemic protocol -- a stable spiral.
// N = 1000, alpha = 0.01, beta = 4, gamma = 1.0, started from the paper's
// seven initial points (X, Y, Z). We regenerate the (X, Y) trajectories,
// confirm every one converges to the second equilibrium of eq. (2), and
// classify the equilibrium (expected: stable spiral).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "numerics/phase_portrait.hpp"
#include "numerics/stability.hpp"
#include "ode/catalog.hpp"
#include "protocols/analysis.hpp"

namespace {

constexpr double kN = 1000.0;
constexpr double kBeta = 4.0;
constexpr double kGamma = 1.0;
constexpr double kAlpha = 0.01;

const std::vector<deproto::num::Vec> kInitialPoints{
    // The paper's Figure 2 start points, as fractions of N = 1000.
    {0.999, 0.001, 0.0},   // blank square
    {0.0, 0.001, 0.999},   // dark square
    {0.0, 1.0, 0.0},       // blank circle
    {0.5, 0.5, 0.0},       // dark circle
    {0.5, 0.001, 0.499},   // blank triangle
    {0.001, 0.5, 0.499},   // dark triangle
    {0.333, 0.333, 0.334}  // blank inverted triangle
};

void BM_Figure2_EndemicPhasePortrait(benchmark::State& state) {
  static bench_util::PrintOnce once;
  const auto sys = deproto::ode::catalog::endemic(kBeta, kGamma, kAlpha);

  deproto::num::PhasePortrait portrait;
  for (auto _ : state) {
    deproto::num::PhasePortraitOptions opts;
    opts.t_end = 4000.0;
    opts.observe_dt = 2.0;
    opts.integrate.dt_max = 1.0;
    portrait = deproto::num::compute_phase_portrait(sys, kInitialPoints,
                                                    opts);
    benchmark::DoNotOptimize(portrait);
  }

  if (once()) {
    bench_util::banner(
        "Figure 2: endemic phase portrait (N=1000, a=0.01, b=4, g=1.0)");
    const deproto::proto::EndemicParams params{
        .b = 2, .gamma = kGamma, .alpha = kAlpha};
    const auto eq = deproto::proto::endemic_equilibrium(params);
    bench_util::note("analytic second equilibrium (X,Y,Z) = (" +
                     bench_util::fmt(eq.x * kN, 1) + ", " +
                     bench_util::fmt(eq.y * kN, 1) + ", " +
                     bench_util::fmt(eq.z * kN, 1) + ")");
    const auto report = deproto::num::classify_on_simplex(
        sys, {eq.x, eq.y, eq.z});
    bench_util::note("equilibrium type: " +
                     deproto::num::to_string(report.type) +
                     "  (paper: stable spiral)");

    std::vector<std::vector<std::string>> rows;
    for (const auto& traj : portrait.trajectories) {
      const auto& first = traj.points.front();
      const auto& last = traj.points.back();
      rows.push_back({"(" + bench_util::fmt(first[0] * kN, 0) + "," +
                          bench_util::fmt(first[1] * kN, 0) + "," +
                          bench_util::fmt(first[2] * kN, 0) + ")",
                      bench_util::fmt(last[0] * kN, 1),
                      bench_util::fmt(last[1] * kN, 1),
                      bench_util::fmt(last[2] * kN, 1)});
    }
    bench_util::table({"start (X,Y,Z)", "X(end)", "Y(end)", "Z(end)"}, rows);

    std::printf("%s",
                deproto::num::render_ascii(portrait, {0, 1}, 1.0, 72, 26)
                    .c_str());
    bench_util::note("axes: X = num susceptibles / N (right), "
                     "Y = num infectives / N (up); spiral into the "
                     "equilibrium reproduces the paper's stable spiral");
  }
}
BENCHMARK(BM_Figure2_EndemicPhasePortrait)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
