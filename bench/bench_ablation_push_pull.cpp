// Ablation A2: the Section 4.1.2 push optimization. The same contact rate
// beta = 4 can be realized as pull-only with b = 4 probes per receptive, or
// as push+pull with b = 2 probes per receptive *and* stasher. We compare
// message cost at equilibrium and the time for a single replica to grow to
// the equilibrium population, plus the pure synthesized machine (p = 1/4)
// as the unoptimized reference.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "protocols/analysis.hpp"
#include "protocols/endemic_replication.hpp"
#include "sim/sync_sim.hpp"

namespace {

using deproto::proto::EndemicReplication;

constexpr std::size_t kN = 10000;
constexpr double kGamma = 0.1;
constexpr double kAlpha = 0.01;

struct Variant {
  const char* name;
  deproto::proto::EndemicParams params;
};

struct Outcome {
  double stashers = 0.0;
  double probes_per_period = 0.0;  // steady-state sampling messages
  std::size_t growth_periods = 0;  // 1 stasher -> half of y_inf
};

Outcome run(const Variant& v, std::uint64_t seed) {
  Outcome out;
  EndemicReplication protocol(v.params);
  deproto::sim::SyncSimulator simulator(kN, protocol, seed);
  simulator.seed_states({kN - 1, 1, 0});
  const auto expected = deproto::proto::endemic_expectation(kN, v.params);

  const auto target = static_cast<std::size_t>(expected.stashers / 2.0);
  std::size_t t = 0;
  while (simulator.group().count(EndemicReplication::kStash) < target &&
         t < 20000) {
    simulator.run(1);
    ++t;
  }
  out.growth_periods = t;
  simulator.run(1000);
  out.stashers = simulator.metrics()
                     .summarize_state(EndemicReplication::kStash,
                                      t + 200, t + 1000)
                     .median;
  // Steady-state message cost: receptives send b probes; stashers send b
  // pushes when enabled.
  const double rcptv = simulator.metrics()
                           .summarize_state(EndemicReplication::kReceptive,
                                            t + 200, t + 1000)
                           .median;
  out.probes_per_period =
      static_cast<double>(v.params.b) *
      (rcptv + (v.params.push_enabled ? out.stashers : 0.0));
  return out;
}

void BM_AblationPushPull(benchmark::State& state) {
  static bench_util::PrintOnce once;
  const std::vector<Variant> variants{
      {"pull-only, b=4",
       {.b = 4, .gamma = kGamma, .alpha = kAlpha, .push_enabled = false}},
      {"push+pull, b=2 (paper)",
       {.b = 2, .gamma = kGamma, .alpha = kAlpha, .push_enabled = true}},
  };

  std::vector<Outcome> outcomes;
  for (auto _ : state) {
    outcomes.clear();
    for (const Variant& v : variants) outcomes.push_back(run(v, 23));
    benchmark::DoNotOptimize(outcomes.size());
  }

  if (once()) {
    bench_util::banner(
        "Ablation A2: pull-only (b=4) vs push+pull (b=2), equal contact "
        "rate beta=4 (N=10000, g=0.1, a=0.01)");
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < variants.size(); ++i) {
      rows.push_back({variants[i].name,
                      bench_util::fmt(outcomes[i].stashers, 1),
                      std::to_string(outcomes[i].growth_periods),
                      bench_util::fmt(outcomes[i].probes_per_period, 1)});
    }
    bench_util::table(
        {"variant", "stashers (median)", "periods: 1 -> y_inf/2",
         "sampling msgs/period (steady)"},
        rows);
    bench_util::note(
        "both variants hold the same eq.(2) population (beta = 4). "
        "Steady-state message cost favors pull-only here: at equilibrium "
        "stashers outnumber receptives ~4:1, so charging b probes to every "
        "stasher dominates. The push side pays off during cold start "
        "(growth from a single replica) and whenever receptives are "
        "plentiful -- e.g. right after churn floods the group with "
        "rejoined receptive hosts. Separately, the pure synthesized "
        "machine without the b = beta/2 trick must run at p = 1/beta = "
        "0.25, slowing *all* dynamics 4x (see core/synthesis)");
  }
}
BENCHMARK(BM_AblationPushPull)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
