// Figure 7: accuracy of the continuous-time analysis. For N in {12500,
// 25000, 50000, 100000} with b = 2, gamma = 0.1, alpha = 0.001, the median
// (and min/max) measured populations of receptives and stashers over a
// 2000-period window must match the analytic equilibrium of eq. (2).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "protocols/analysis.hpp"
#include "protocols/endemic_replication.hpp"
#include "sim/sync_sim.hpp"

namespace {

using deproto::proto::EndemicReplication;

constexpr std::size_t kWarmup = 200;
constexpr std::size_t kWindow = 2000;

void BM_Figure7_AnalysisAccuracy(benchmark::State& state) {
  static bench_util::PrintOnce once;
  const deproto::proto::EndemicParams params{
      .b = 2, .gamma = 0.1, .alpha = 0.001};
  const auto n = static_cast<std::size_t>(state.range(0));

  deproto::sim::WindowSummary stash{}, rcptv{};
  deproto::proto::EndemicExpectation expected{};

  for (auto _ : state) {
    EndemicReplication protocol(params);
    deproto::sim::SyncSimulator simulator(n, protocol, /*seed=*/7 + n);
    expected = deproto::proto::endemic_expectation(n, params);
    const auto rx = static_cast<std::size_t>(expected.receptives);
    const auto sy = static_cast<std::size_t>(expected.stashers);
    simulator.seed_states({rx, sy, n - rx - sy});
    simulator.run(kWarmup + kWindow);
    stash = simulator.metrics().summarize_state(EndemicReplication::kStash,
                                                kWarmup, kWarmup + kWindow);
    rcptv = simulator.metrics().summarize_state(
        EndemicReplication::kReceptive, kWarmup, kWarmup + kWindow);
    benchmark::DoNotOptimize(stash);
  }

  static std::vector<std::vector<std::string>> rows;
  rows.push_back({std::to_string(n),
                  bench_util::fmt(expected.receptives, 1),
                  bench_util::fmt(rcptv.median, 1),
                  bench_util::fmt(rcptv.min, 0),
                  bench_util::fmt(rcptv.max, 0),
                  bench_util::fmt(expected.stashers, 1),
                  bench_util::fmt(stash.median, 1),
                  bench_util::fmt(stash.min, 0),
                  bench_util::fmt(stash.max, 0)});
  if (n == 100000 && once()) {
    bench_util::banner(
        "Figure 7: analysis vs measured (b=2, g=0.1, a=0.001; median over "
        "2000 periods)");
    bench_util::table({"N", "#Rcptv(analysis)", "#Rcptv(measured)", "min",
                       "max", "#Stshr(analysis)", "#Stshr(measured)", "min",
                       "max"},
                      rows);
    bench_util::note("paper shape: measured medians track analysis closely "
                     "at every N");
  }
}
BENCHMARK(BM_Figure7_AnalysisAccuracy)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(12500)
    ->Arg(25000)
    ->Arg(50000)
    ->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
