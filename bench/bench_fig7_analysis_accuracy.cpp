// Figure 7: accuracy of the continuous-time analysis. For N in {12500,
// 25000, 50000, 100000} with b = 2, gamma = 0.1, alpha = 0.001, the median
// (and min/max) measured populations of receptives and stashers over a
// 2000-period window must match the analytic equilibrium of eq. (2).
//
// Ported from a hand-rolled per-N SyncSimulator loop onto the sweep API:
// the registry's "fig7-accuracy-vs-n" preset (N zipped with seed) expands
// into one job per N, and SuiteRunner executes them with results ordered
// by job index, so the reported table is identical no matter how many
// worker threads the host offers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "api/registry.hpp"
#include "api/suite_runner.hpp"
#include "bench_util.hpp"
#include "protocols/analysis.hpp"
#include "sim/metrics.hpp"

namespace {

// Synthesized endemic machine state order (catalog eq. 1): x receptive,
// y stash, z averse.
constexpr std::size_t kReceptive = 0;
constexpr std::size_t kStash = 1;

/// One state's population over series[first, last), summarized with the
/// same conventions as MetricsCollector::summarize_state.
deproto::sim::WindowSummary summarize(
    const std::vector<deproto::api::PeriodPoint>& series, std::size_t state,
    std::size_t first, std::size_t last) {
  std::vector<double> values;
  values.reserve(last - first);
  for (std::size_t i = first; i < last && i < series.size(); ++i) {
    values.push_back(static_cast<double>(series[i].counts[state]));
  }
  return deproto::sim::summarize_window(std::move(values));
}

void BM_Figure7_AnalysisAccuracy(benchmark::State& state) {
  static bench_util::PrintOnce once;

  std::vector<std::vector<std::string>> rows;
  for (auto _ : state) {
    const deproto::api::SweepSpec sweep =
        deproto::api::sweep_registry_get("fig7-accuracy-vs-n");
    const deproto::api::SweepResult result =
        deproto::api::SuiteRunner().run(sweep);

    rows.clear();
    for (const deproto::api::JobOutcome& outcome : result.jobs) {
      if (!outcome.ok) continue;
      // Physics and measurement window come from the job's own spec, so
      // retuning the preset retunes the "analysis" columns with it. The
      // catalog convention is params = {beta, gamma, alpha}, beta = 2b.
      const std::vector<double>& cat = outcome.job.spec.source.params;
      const deproto::proto::EndemicParams params{
          .b = static_cast<unsigned>(cat.at(0) / 2.0),
          .gamma = cat.at(1),
          .alpha = cat.at(2)};
      const std::size_t periods = outcome.job.spec.periods;
      const std::size_t window = std::min<std::size_t>(2000, periods);
      const std::size_t warmup = periods - window;
      const std::size_t n = outcome.job.spec.n;
      const auto expected =
          deproto::proto::endemic_expectation(n, params);
      const deproto::sim::WindowSummary stash = summarize(
          outcome.result.series, kStash, warmup, warmup + window);
      const deproto::sim::WindowSummary rcptv = summarize(
          outcome.result.series, kReceptive, warmup, warmup + window);
      rows.push_back({std::to_string(n),
                      bench_util::fmt(expected.receptives, 1),
                      bench_util::fmt(rcptv.median, 1),
                      bench_util::fmt(rcptv.min, 0),
                      bench_util::fmt(rcptv.max, 0),
                      bench_util::fmt(expected.stashers, 1),
                      bench_util::fmt(stash.median, 1),
                      bench_util::fmt(stash.min, 0),
                      bench_util::fmt(stash.max, 0)});
    }
    benchmark::DoNotOptimize(rows);
  }

  if (once()) {
    bench_util::banner(
        "Figure 7: analysis vs measured (b=2, g=0.1, a=0.001; median over "
        "2000 periods)");
    bench_util::table({"N", "#Rcptv(analysis)", "#Rcptv(measured)", "min",
                       "max", "#Stshr(analysis)", "#Stshr(measured)", "min",
                       "max"},
                      rows);
    bench_util::note("paper shape: measured medians track analysis closely "
                     "at every N");
  }
}
BENCHMARK(BM_Figure7_AnalysisAccuracy)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
