// Exact finite-N model checker throughput: how fast the lattice
// enumeration + kernel convolution scales with n (states/sec), and what
// the downstream linear-algebra passes (SCC classification is part of
// construction; absorption solve, hitting-time solve, stationary
// distribution) cost on top. These bound the largest --exact-n a lint
// gate can afford and the per-candidate price of a future CEGAR loop
// that uses ExactChain as its rejection oracle.

#include <benchmark/benchmark.h>

#include <cstddef>

#include "analysis/exact_chain.hpp"
#include "analysis/exact_checks.hpp"
#include "api/registry.hpp"
#include "api/spec.hpp"
#include "core/synthesis.hpp"

namespace {

using namespace deproto;

core::ProtocolStateMachine scenario_machine(const char* name) {
  const api::ScenarioSpec spec = api::registry_get(name);
  return core::synthesize(spec.resolve_source(), spec.synthesis).machine;
}

analysis::ExactChainOptions chain_options(std::size_t n) {
  analysis::ExactChainOptions options;
  options.n = n;
  options.max_states = 200000;
  return options;
}

/// Build the chain (enumeration + kernel + Tarjan classes) for the
/// 3-state lv-majority machine; counter = lattice states per second.
void BM_ExactChainBuild(benchmark::State& state) {
  const core::ProtocolStateMachine machine = scenario_machine("lv-majority");
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::size_t chain_states = 0;
  for (auto _ : state) {
    const analysis::ExactChain chain(machine, chain_options(n));
    chain_states = chain.num_chain_states();
    benchmark::DoNotOptimize(chain_states);
  }
  state.counters["states"] =
      benchmark::Counter(static_cast<double>(chain_states));
  state.counters["states_per_sec"] =
      benchmark::Counter(static_cast<double>(chain_states),
                         benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ExactChainBuild)->Arg(16)->Arg(32)->Arg(48);

/// Absorption probabilities from a split seed: the Gauss-Seidel solve
/// over the transient block, the quantity the pinning test checks.
void BM_ExactAbsorptionSolve(benchmark::State& state) {
  const core::ProtocolStateMachine machine = scenario_machine("lv-majority");
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const analysis::ExactChain chain(machine, chain_options(n));
  const std::size_t start = chain.seeded_index({n / 2 + 1, n - n / 2 - 1});
  for (auto _ : state) {
    const auto absorb = chain.absorption_probabilities(start);
    benchmark::DoNotOptimize(absorb.data());
  }
  state.counters["states"] = benchmark::Counter(
      static_cast<double>(chain.num_chain_states()));
}
BENCHMARK(BM_ExactAbsorptionSolve)->Arg(16)->Arg(32)->Arg(48);

/// Expected hitting time from the same seed (second Gauss-Seidel pass).
void BM_ExactHittingTimeSolve(benchmark::State& state) {
  const core::ProtocolStateMachine machine = scenario_machine("lv-majority");
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const analysis::ExactChain chain(machine, chain_options(n));
  const std::size_t start = chain.seeded_index({n / 2 + 1, n - n / 2 - 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.expected_absorption_time(start));
  }
}
BENCHMARK(BM_ExactHittingTimeSolve)->Arg(16)->Arg(32);

/// check_exact end to end on the endemic scenario (chain build, class
/// analysis, mean-field comparison, CLT comparison): the full lint-tier
/// cost per scenario, i.e. what `deproto-lint --exact` pays per registry
/// entry at a given --exact-n.
void BM_ExactCheckEndemic(benchmark::State& state) {
  const core::ProtocolStateMachine machine = scenario_machine("endemic");
  analysis::ExactCheckOptions options;
  options.n = static_cast<std::size_t>(state.range(0));
  const api::ScenarioSpec spec =
      api::registry_get("endemic").scaled_to(options.n);
  for (auto _ : state) {
    const auto findings = deproto::analysis::check_exact(
        machine, spec.initial_counts, options, spec.runtime.message_loss,
        spec.runtime.tokens);
    benchmark::DoNotOptimize(findings.data());
  }
}
BENCHMARK(BM_ExactCheckEndemic)->Arg(16)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
