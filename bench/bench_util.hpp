#pragma once

// Shared console-reporting helpers for the experiment harness. Every bench
// regenerates one table or figure of the paper and prints the same
// rows/series the paper reports, then times the underlying computation via
// google-benchmark.

#include <cstdio>
#include <string>
#include <vector>

namespace bench_util {

inline void banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// Print a fixed-width table: header row then data rows.
inline void table(const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) {
    width[c] = header[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("  ");
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  for (const auto& row : rows) print_row(row);
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_sci(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

/// Guard so a bench prints its report exactly once even if google-benchmark
/// re-runs the function.
class PrintOnce {
 public:
  bool operator()() {
    const bool first = !printed_;
    printed_ = true;
    return first;
  }

 private:
  bool printed_ = false;
};

}  // namespace bench_util
