// Ablation A3: token routing (Section 6's "Limitations of Tokenizing").
// Directory routing (full membership knowledge, e.g. via SWIM) always
// delivers while the target state is non-empty; a TTL-bounded random walk
// trades membership maintenance for a delivery probability of roughly
// 1 - (1 - x)^TTL. We sweep the TTL on the invitation system and measure
// delivery rate and convergence, confirming the paper's observation that
// the modified behavior is the original equations with a multiplicative
// effectiveness factor.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/synthesis.hpp"
#include "ode/catalog.hpp"
#include "sim/runtime.hpp"
#include "sim/sync_sim.hpp"

namespace {

constexpr std::size_t kN = 5000;

struct TtlOutcome {
  double delivery_rate = 0.0;
  std::size_t periods_to_90pct = 0;
};

TtlOutcome run(bool directory, unsigned ttl, std::uint64_t seed) {
  const auto synth =
      deproto::core::synthesize(deproto::ode::catalog::invitation(0.2));
  deproto::sim::RuntimeOptions options;
  options.tokens.mode = directory
                            ? deproto::sim::TokenRouting::Mode::Directory
                            : deproto::sim::TokenRouting::Mode::RandomWalkTtl;
  options.tokens.ttl = ttl;
  deproto::sim::MachineExecutor executor(synth.machine, options);
  deproto::sim::SyncSimulator simulator(kN, executor, seed);
  simulator.seed_states({kN * 3 / 4, kN / 4});

  TtlOutcome out;
  std::size_t t = 0;
  while (simulator.group().count(1) < kN * 9 / 10 && t < 3000) {
    simulator.run(1);
    ++t;
  }
  out.periods_to_90pct = t;
  const auto& stats = executor.token_stats();
  out.delivery_rate =
      stats.generated > 0
          ? static_cast<double>(stats.delivered) /
                static_cast<double>(stats.generated)
          : 0.0;
  return out;
}

void BM_AblationTokenTtl(benchmark::State& state) {
  static bench_util::PrintOnce once;
  std::vector<std::vector<std::string>> rows;

  for (auto _ : state) {
    rows.clear();
    const TtlOutcome dir = run(true, 0, 31);
    rows.push_back({"directory (SWIM-style)", "-",
                    bench_util::fmt(100.0 * dir.delivery_rate, 1) + "%",
                    std::to_string(dir.periods_to_90pct)});
    for (unsigned ttl : {1U, 2U, 4U, 8U, 16U}) {
      const TtlOutcome walk = run(false, ttl, 31);
      rows.push_back({"random walk", std::to_string(ttl),
                      bench_util::fmt(100.0 * walk.delivery_rate, 1) + "%",
                      std::to_string(walk.periods_to_90pct)});
    }
    benchmark::DoNotOptimize(rows.size());
  }

  if (once()) {
    bench_util::banner(
        "Ablation A3: Tokenizing routing -- directory vs TTL random walk "
        "(invitation system, c=0.2, N=5000, x0=75%)");
    bench_util::table(
        {"routing", "TTL", "tokens delivered", "periods to 90% converted"},
        rows);
    bench_util::note(
        "short TTLs drop tokens before meeting a target (delivery ~ "
        "1-(1-x)^TTL averaged over the run), slowing convergence exactly "
        "as Section 6 predicts: the realized system is the source "
        "equations scaled by the token-effectiveness factor");
  }
}
BENCHMARK(BM_AblationTokenTtl)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
