// Net backend hot path: every protocol interaction on the real-network
// backend pays encode + sendto + recvfrom + decode per datagram, so the
// codec and the loopback syscall pair bound how far period_ms can shrink
// before the wall clock, not the protocol, dominates. Encode/decode are
// pure compute (tens of ns); the loopback round trip is the syscall
// floor that the measured RTTs sit on.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.hpp"
#include "net/packet.hpp"
#include "net/socket.hpp"

namespace {

using namespace deproto;

net::Packet sample_packet() {
  net::Packet p;
  p.type = net::PacketType::Push;
  p.state = 2;
  p.sender = 17;
  p.seq = 123456789;
  p.tag = 42;
  p.arg0 = 1;
  p.arg1 = 2;
  p.arg2 = net::coin_to_q32(0.375);
  return p;
}

void BM_EncodePacket(benchmark::State& state) {
  const net::Packet p = sample_packet();
  for (auto _ : state) {
    const std::string bytes = net::encode_packet(p);
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(BM_EncodePacket);

void BM_DecodePacket(benchmark::State& state) {
  const std::string bytes = net::encode_packet(sample_packet());
  for (auto _ : state) {
    net::Packet out;
    const net::DecodeStatus status =
        net::decode_packet(bytes.data(), bytes.size(), &out);
    benchmark::DoNotOptimize(status);
    benchmark::DoNotOptimize(out.seq);
  }
}
BENCHMARK(BM_DecodePacket);

void BM_SequenceTrackerObserve(benchmark::State& state) {
  // In-order stream from a rotating set of peers: the per-datagram
  // bookkeeping cost in its common (no reorder) case.
  net::SequenceTracker tracker;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    ++seq;
    benchmark::DoNotOptimize(
        tracker.observe(static_cast<std::uint32_t>(seq % 64), seq));
  }
}
BENCHMARK(BM_SequenceTrackerObserve);

void BM_LoopbackDatagramRoundTrip(benchmark::State& state) {
  // encode -> sendto -> recvfrom -> decode between two bound loopback
  // sockets: the kernel round trip the net backend's measured RTTs
  // cannot go below.
  net::UdpSocket a = net::UdpSocket::bind_loopback();
  net::UdpSocket b = net::UdpSocket::bind_loopback();
  const sockaddr_in to_b = net::loopback_endpoint(b.port());
  const net::Packet p = sample_packet();
  char buf[64];
  for (auto _ : state) {
    const std::string bytes = net::encode_packet(p);
    a.send_to(to_b, bytes.data(), bytes.size());
    long n;
    while ((n = b.recv_from(buf, sizeof(buf))) < 0) {
      // Non-blocking socket: spin until the kernel delivers.
    }
    net::Packet out;
    benchmark::DoNotOptimize(
        net::decode_packet(buf, static_cast<std::size_t>(n), &out));
  }
}
BENCHMARK(BM_LoopbackDatagramRoundTrip);

void BM_PrintNetCodecReport(benchmark::State& state) {
  static bench_util::PrintOnce once;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::kPacketSize);
  }
  if (once()) {
    bench_util::banner("Net backend codec + loopback floor");
    bench_util::note(
        "encode/decode are fixed-size little-endian packing (no "
        "allocation beyond the 40-byte string) and should sit in the "
        "tens of ns; BM_LoopbackDatagramRoundTrip is the sendto+recvfrom "
        "syscall pair and bounds the measured RTT floor of --backend net");
  }
}
BENCHMARK(BM_PrintNetCodecReport)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
