// Baseline comparison A4 (the migratory-replication motivation of Section
// 4.1): endemic replication vs (a) the Section 4.1.1 hand-off strategy and
// (b) static/reactive placement, under three stresses:
//   1. crash-recovery background failures,
//   2. a massive failure burst,
//   3. a targeted attack (adversary snapshots the replica set, then
//      destroys exactly those hosts a few periods later).
// Expected shape: hand-off goes extinct under (1); static dies under (3)
// every time and often under (2); endemic survives all three w.h.p.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "protocols/baselines.hpp"
#include "protocols/endemic_replication.hpp"
#include "sim/sync_sim.hpp"

namespace {

using deproto::proto::EndemicReplication;
using deproto::proto::HandoffMigration;
using deproto::proto::StaticReplication;

constexpr std::size_t kN = 1000;
constexpr std::size_t kReplicas = 8;
constexpr int kTrials = 10;
constexpr std::size_t kHorizon = 1500;

enum class Stress { Churn, MassiveFailure, TargetedAttack };

template <typename Protocol>
bool survives(Protocol& protocol, std::size_t holder_state, Stress stress,
              std::uint64_t seed, const std::vector<std::size_t>& seeding) {
  deproto::sim::SyncSimulator simulator(kN, protocol, seed);
  simulator.seed_states(seeding);
  switch (stress) {
    case Stress::Churn:
      simulator.set_crash_recovery(0.005, 20.0);
      simulator.run(kHorizon);
      break;
    case Stress::MassiveFailure:
      simulator.schedule_massive_failure(100, 0.5);
      simulator.run(kHorizon);
      break;
    case Stress::TargetedAttack: {
      simulator.run(100);
      const auto snapshot = simulator.group().members(holder_state);
      simulator.run(10);  // attack preparation delay
      for (deproto::sim::ProcessId pid : snapshot) {
        if (simulator.group().alive(pid)) {
          protocol.on_crash(pid);
          simulator.group().crash(pid);
        }
      }
      simulator.run(kHorizon - 110);
      break;
    }
  }
  return simulator.group().count(holder_state) > 0;
}

int count_survivals(Stress stress, const char* which) {
  int survived = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto seed = static_cast<std::uint64_t>(100 + t);
    if (std::string(which) == "endemic") {
      EndemicReplication protocol({.b = 4, .gamma = 0.1, .alpha = 0.05});
      if (survives(protocol, EndemicReplication::kStash, stress, seed,
                   {kN - 2 * kReplicas, kReplicas, kReplicas})) {
        ++survived;
      }
    } else if (std::string(which) == "handoff") {
      HandoffMigration protocol({.handoff_prob = 0.1});
      if (survives(protocol, HandoffMigration::kHolder, stress, seed,
                   {kN - kReplicas, kReplicas})) {
        ++survived;
      }
    } else {
      StaticReplication protocol(
          {.replicas = kReplicas, .detection_delay = 3});
      if (survives(protocol, StaticReplication::kHolder, stress, seed,
                   {kN - kReplicas, kReplicas})) {
        ++survived;
      }
    }
  }
  return survived;
}

void BM_BaselineMigration(benchmark::State& state) {
  static bench_util::PrintOnce once;
  std::vector<std::vector<std::string>> rows;

  for (auto _ : state) {
    rows.clear();
    for (const char* which : {"endemic", "handoff", "static"}) {
      rows.push_back(
          {which,
           std::to_string(count_survivals(Stress::Churn, which)) + "/" +
               std::to_string(kTrials),
           std::to_string(count_survivals(Stress::MassiveFailure, which)) +
               "/" + std::to_string(kTrials),
           std::to_string(count_survivals(Stress::TargetedAttack, which)) +
               "/" + std::to_string(kTrials)});
    }
    benchmark::DoNotOptimize(rows.size());
  }

  if (once()) {
    bench_util::banner(
        "Baseline A4: object survival over " + std::to_string(kHorizon) +
        " periods, " + std::to_string(kReplicas) + " initial replicas, "
        "N=1000 (trials surviving)");
    bench_util::table({"strategy", "crash-recovery churn",
                       "50% massive failure", "targeted attack"},
                      rows);
    bench_util::note(
        "paper shape: hand-off loses the object under background churn "
        "(Section 4.1.1); static placement is destroyed by the targeted "
        "attack (drawback (2)); endemic migratory replication survives "
        "all three stresses");
  }
}
BENCHMARK(BM_BaselineMigration)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
