// Figure 12: LV protocol under massive failure. Same setup as Figure 11,
// but a random 50% of processes crash at t = 100. Expected shape:
// convergence still occurs, delayed (paper: t = 862 vs < 500 unfailed).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "protocols/lv_majority.hpp"
#include "sim/sync_sim.hpp"

namespace {

using deproto::proto::LvMajority;

constexpr std::size_t kN = 100000;

std::size_t periods_to_converge(bool with_failure, std::uint64_t seed,
                                std::vector<std::vector<std::string>>* rows) {
  LvMajority protocol({.p = 0.01});
  deproto::sim::SyncSimulator simulator(kN, protocol, seed);
  simulator.seed_states({60000, 40000, 0});
  if (with_failure) simulator.schedule_massive_failure(100, 0.5);
  std::size_t t = 0;
  while (!LvMajority::converged(simulator.group()) && t < 3000) {
    if (rows && t % 125 == 0) {
      const auto& g = simulator.group();
      rows->push_back({std::to_string(t),
                       std::to_string(g.count(LvMajority::kX)),
                       std::to_string(g.count(LvMajority::kY)),
                       std::to_string(g.count(LvMajority::kZ))});
    }
    simulator.run(25);
    t += 25;
  }
  if (rows) {
    const auto& g = simulator.group();
    rows->push_back({std::to_string(t),
                     std::to_string(g.count(LvMajority::kX)),
                     std::to_string(g.count(LvMajority::kY)),
                     std::to_string(g.count(LvMajority::kZ))});
  }
  return t;
}

void BM_Figure12_LvMassiveFailure(benchmark::State& state) {
  static bench_util::PrintOnce once;
  std::vector<std::vector<std::string>> rows;
  std::size_t with_failure = 0, without_failure = 0;

  for (auto _ : state) {
    rows.clear();
    without_failure = periods_to_converge(false, 12, nullptr);
    with_failure = periods_to_converge(true, 12, &rows);
    benchmark::DoNotOptimize(with_failure);
  }

  if (once()) {
    bench_util::banner(
        "Figure 12: LV massive failure (50% crash at t=100)");
    bench_util::table({"time", "State X", "State Y", "State Z"}, rows);
    bench_util::note("convergence without failure: t = " +
                     std::to_string(without_failure) +
                     "; with 50% failure at t=100: t = " +
                     std::to_string(with_failure));
    bench_util::note(
        "paper shape: convergence still occurs, delayed (paper: t = 862); "
        "the initial majority still wins");
  }
}
BENCHMARK(BM_Figure12_LvMassiveFailure)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
