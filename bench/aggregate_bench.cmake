# Usage: cmake -P aggregate_bench.cmake <output.json> <bench1.json> ...
#
# Merges the per-bench google-benchmark JSON reports into one top-level JSON
# object keyed by bench name, and validates the result parses before writing.

if(CMAKE_ARGC LESS 5)
  message(FATAL_ERROR
    "usage: cmake -P aggregate_bench.cmake <output.json> <bench1.json> ...")
endif()

set(output "${CMAKE_ARGV3}")
math(EXPR last "${CMAKE_ARGC} - 1")

set(merged "{\n  \"benches\": {")
set(separator "")
foreach(i RANGE 4 ${last})
  set(path "${CMAKE_ARGV${i}}")
  if(NOT EXISTS "${path}")
    message(FATAL_ERROR "bench report missing: ${path}")
  endif()
  get_filename_component(name "${path}" NAME_WE)
  file(READ "${path}" report)
  string(APPEND merged "${separator}\n    \"${name}\": ${report}")
  set(separator ",")
endforeach()
string(APPEND merged "\n  }\n}\n")

string(JSON count ERROR_VARIABLE parse_error LENGTH "${merged}" "benches")
if(parse_error)
  message(FATAL_ERROR "aggregated JSON is malformed: ${parse_error}")
endif()

file(WRITE "${output}" "${merged}")
message(STATUS "wrote ${output} (${count} benches)")
