// End-to-end dispatcher tests. This binary is its own worker: main()
// re-enters dist::run_worker when spawned with --worker (the dispatcher
// execs /proc/self/exe by default), and fault-injection flags forwarded
// via DispatchOptions::extra_worker_args make a worker SIGKILL itself,
// SIGSTOP (go silent), or spray garbage on stdout -- once, gated by a
// marker file, so the respawned replacement behaves. The contracts under
// test: --dispatch output is byte-identical to --threads 1, every fault
// ends in reassignment (not a hang or a crash of the dispatcher), retry
// budgets produce structured per-job failures, and per-worker cache
// stats merge into the suite totals.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/experiment.hpp"
#include "api/json.hpp"
#include "api/registry.hpp"
#include "api/result_cache.hpp"
#include "api/suite_runner.hpp"
#include "api/sweep.hpp"
#include "dist/worker.hpp"

namespace deproto::dist {
namespace {

namespace fs = std::filesystem;
using api::Json;
using api::JobOutcome;
using api::ScenarioSpec;
using api::SuiteOptions;
using api::SuiteRunner;
using api::SweepJob;
using api::SweepResult;

/// True exactly once per marker path across all worker incarnations: the
/// first worker to claim the marker misbehaves, its replacement runs
/// clean. O_EXCL makes the claim atomic between racing workers.
bool claim_marker(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

std::vector<SweepJob> make_jobs(std::size_t count) {
  std::vector<SweepJob> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    ScenarioSpec spec = api::registry_get("epidemic").scaled_to(150);
    spec.periods = 4;
    spec.seed = 100 + i;
    spec.name = "job-" + std::to_string(i);
    SweepJob job;
    job.index = i;
    job.point = i;
    job.coords.emplace_back("seed", Json::number(spec.seed));
    job.spec = std::move(spec);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

struct RunOutput {
  SweepResult result;
  std::string json;   // to_json(false).dump(2)
  std::string jsonl;
};

RunOutput run_jobs_with(SuiteOptions options, std::size_t count) {
  std::ostringstream jsonl;
  options.jsonl = &jsonl;
  RunOutput out;
  out.result = SuiteRunner(options).run_jobs(make_jobs(count), "dist-test");
  out.json = out.result.to_json(false).dump(2);
  out.jsonl = jsonl.str();
  return out;
}

SuiteOptions dispatch_options(std::size_t workers,
                              std::vector<std::string> extra_args = {}) {
  SuiteOptions options;
  options.dispatch.workers = workers;
  options.dispatch.heartbeat_ms = 25;
  options.dispatch.extra_worker_args = std::move(extra_args);
  return options;
}

fs::path fresh_dir() {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir =
      fs::path(testing::TempDir()) / "deproto-dispatcher-test" /
      (std::string(info->test_suite_name()) + "." + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(DispatcherTest, MatchesSingleThreadedRunByteForByte) {
  SuiteOptions threaded;
  threaded.threads = 1;
  const RunOutput reference = run_jobs_with(threaded, 8);
  ASSERT_EQ(reference.result.jobs_failed, 0U);

  const RunOutput dispatched = run_jobs_with(dispatch_options(4), 8);
  EXPECT_EQ(dispatched.result.jobs_failed, 0U);
  EXPECT_TRUE(dispatched.result.dispatch_enabled);
  EXPECT_EQ(dispatched.result.dispatch.workers, 4U);
  EXPECT_EQ(dispatched.result.dispatch.jobs_dispatched, 8U);
  EXPECT_EQ(dispatched.result.dispatch.worker_restarts, 0U);
  // The deterministic merge contract: same JSON document, same JSONL
  // bytes, no matter which worker finished which job when.
  EXPECT_EQ(dispatched.json, reference.json);
  EXPECT_EQ(dispatched.jsonl, reference.jsonl);
}

TEST(DispatcherTest, StoreResultsParsesBodiesBackIntoOutcomes) {
  SuiteOptions options = dispatch_options(2);
  options.store_results = true;
  std::size_t on_result_calls = 0;
  options.on_result = [&on_result_calls](const JobOutcome& outcome) {
    EXPECT_TRUE(outcome.ok);
    ++on_result_calls;
  };
  const RunOutput out = run_jobs_with(options, 4);
  EXPECT_EQ(on_result_calls, 4U);
  ASSERT_EQ(out.result.jobs.size(), 4U);
  for (std::size_t i = 0; i < 4; ++i) {
    const JobOutcome& outcome = out.result.jobs[i];
    EXPECT_EQ(outcome.job.index, i);
    EXPECT_TRUE(outcome.ok);
    // The parsed-back body matches a direct in-process execution.
    const api::ExperimentResult direct =
        api::Experiment(outcome.job.spec).run();
    EXPECT_EQ(outcome.result.to_json(false).dump(),
              direct.to_json(false).dump());
  }
}

TEST(DispatcherTest, SigkilledWorkerIsReplacedAndOutputIsIdentical) {
  SuiteOptions threaded;
  threaded.threads = 1;
  const RunOutput reference = run_jobs_with(threaded, 8);

  // The first worker to pick up a job SIGKILLs itself mid-execution --
  // the hard-landing version of "a cluster node died".
  const std::string marker = (fresh_dir() / "crashed").string();
  const RunOutput dispatched =
      run_jobs_with(dispatch_options(3, {"--test-crash-once", marker}), 8);

  EXPECT_EQ(dispatched.result.jobs_failed, 0U);
  EXPECT_GE(dispatched.result.dispatch.worker_restarts, 1U);
  EXPECT_GE(dispatched.result.dispatch.jobs_reassigned, 1U);
  EXPECT_GE(dispatched.result.dispatch.jobs_retried, 1U);
  EXPECT_EQ(dispatched.json, reference.json);
  EXPECT_EQ(dispatched.jsonl, reference.jsonl);
}

TEST(DispatcherTest, StdoutNoiseCorruptsTheStreamAndJobIsReassigned) {
  SuiteOptions threaded;
  threaded.threads = 1;
  const RunOutput reference = run_jobs_with(threaded, 6);

  // One worker printf-s over its frame channel; framing is lost, the
  // dispatcher must kill it and reassign, never crash or hang.
  const std::string marker = (fresh_dir() / "noised").string();
  const RunOutput dispatched =
      run_jobs_with(dispatch_options(2, {"--test-noise-once", marker}), 6);

  EXPECT_EQ(dispatched.result.jobs_failed, 0U);
  EXPECT_GE(dispatched.result.dispatch.worker_restarts, 1U);
  EXPECT_GE(dispatched.result.dispatch.jobs_reassigned, 1U);
  EXPECT_EQ(dispatched.json, reference.json);
  EXPECT_EQ(dispatched.jsonl, reference.jsonl);
}

TEST(DispatcherTest, SilentWorkerTripsHeartbeatTimeout) {
  SuiteOptions threaded;
  threaded.threads = 1;
  const RunOutput reference = run_jobs_with(threaded, 6);

  // SIGSTOP freezes the whole worker -- job loop and heartbeat thread --
  // which is indistinguishable from a hung process. Only the heartbeat
  // timeout can catch it.
  const std::string marker = (fresh_dir() / "stopped").string();
  SuiteOptions options =
      dispatch_options(2, {"--test-hang-once", marker});
  options.dispatch.heartbeat_ms = 20;
  options.dispatch.heartbeat_timeout_ms = 300;
  const RunOutput dispatched = run_jobs_with(options, 6);

  EXPECT_EQ(dispatched.result.jobs_failed, 0U);
  EXPECT_GE(dispatched.result.dispatch.worker_restarts, 1U);
  EXPECT_GE(dispatched.result.dispatch.jobs_reassigned, 1U);
  EXPECT_EQ(dispatched.json, reference.json);
  EXPECT_EQ(dispatched.jsonl, reference.jsonl);
}

TEST(DispatcherTest, RetryBudgetExhaustionRecordsStructuredFailure) {
  // Job 2 kills every worker that touches it, forever (no marker): after
  // max_retries + 1 dispatches the job is recorded as failed with the
  // worker's fate in the error, and the other jobs still complete.
  SuiteOptions options =
      dispatch_options(2, {"--test-crash-job", "2"});
  options.dispatch.max_retries = 1;
  const RunOutput out = run_jobs_with(options, 5);

  EXPECT_EQ(out.result.jobs_failed, 1U);
  ASSERT_EQ(out.result.jobs.size(), 5U);
  const JobOutcome& failed = out.result.jobs[2];
  EXPECT_FALSE(failed.ok);
  EXPECT_NE(failed.error.find("retry budget exhausted"), std::string::npos)
      << failed.error;
  EXPECT_NE(failed.error.find("dispatch: worker"), std::string::npos);
  for (const std::size_t i : {0U, 1U, 3U, 4U}) {
    EXPECT_TRUE(out.result.jobs[i].ok) << i;
  }
  EXPECT_GE(out.result.dispatch.jobs_retried, 1U);
}

TEST(DispatcherTest, UnstartableWorkerBinaryFailsFastWithoutRestartLoop) {
  SuiteOptions options = dispatch_options(2);
  options.dispatch.worker_exe = "/nonexistent/deproto-worker";
  options.dispatch.heartbeat_timeout_ms = 300;  // handshake deadline
  const RunOutput out = run_jobs_with(options, 3);

  // exec fails -> pre-Hello death -> slots abandoned, jobs failed; a
  // binary that cannot start must not be respawned in a loop.
  EXPECT_EQ(out.result.jobs_failed, 3U);
  EXPECT_EQ(out.result.dispatch.worker_restarts, 0U);
  for (const JobOutcome& outcome : out.result.jobs) {
    EXPECT_FALSE(outcome.ok);
    EXPECT_NE(outcome.error.find("never completed"), std::string::npos)
        << outcome.error;
  }
}

TEST(DispatcherTest, MergesPerWorkerCacheStatsAcrossProcesses) {
  const fs::path dir = fresh_dir();
  // Cold: every job misses and stores in some worker; the suite totals
  // must see the union of all workers' deltas, not one worker's view.
  const RunOutput cold = run_jobs_with(
      dispatch_options(3, {"--cache", dir.string()}), 6);
  EXPECT_EQ(cold.result.jobs_failed, 0U);
  EXPECT_TRUE(cold.result.cache_enabled);
  EXPECT_EQ(cold.result.cache.hits, 0U);
  EXPECT_EQ(cold.result.cache.misses, 6U);
  EXPECT_EQ(cold.result.cache.stores, 6U);

  // Warm: replayed from the shared directory, byte-identical output.
  const RunOutput warm = run_jobs_with(
      dispatch_options(3, {"--cache", dir.string()}), 6);
  EXPECT_EQ(warm.result.cache.hits, 6U);
  EXPECT_EQ(warm.result.cache.misses, 0U);
  EXPECT_EQ(warm.result.cache.stores, 0U);
  EXPECT_EQ(warm.json, cold.json);
  EXPECT_EQ(warm.jsonl, cold.jsonl);

  // And the cache composes across engines: an in-process --threads run
  // over the same directory is all hits and byte-identical too.
  api::ResultCache shared(dir);
  SuiteOptions threaded;
  threaded.threads = 1;
  threaded.cache = &shared;
  const RunOutput local = run_jobs_with(threaded, 6);
  EXPECT_EQ(local.result.cache.hits, 6U);
  EXPECT_EQ(local.json, cold.json);
  EXPECT_EQ(local.jsonl, cold.jsonl);
}

TEST(DispatcherTest, DispatchCountersLiveInTimingJsonOnly) {
  const RunOutput out = run_jobs_with(dispatch_options(2), 4);
  // Deterministic form: no execution-environment accounting, or a
  // dispatched artifact could never equal a threaded one.
  EXPECT_EQ(out.json.find("\"dispatch\""), std::string::npos);

  const Json timing = out.result.to_json(true);
  ASSERT_TRUE(timing.contains("dispatch"));
  const Json& dispatch = timing.at("dispatch");
  EXPECT_EQ(dispatch.at("workers").as_size(), 2U);
  EXPECT_EQ(dispatch.at("jobs_dispatched").as_size(), 4U);
  EXPECT_EQ(dispatch.at("worker_busy_seconds").elements().size(), 2U);

  // The timing form round-trips the counters.
  const SweepResult restored = SweepResult::from_json(timing);
  EXPECT_TRUE(restored.dispatch_enabled);
  EXPECT_EQ(restored.dispatch, out.result.dispatch);
}

TEST(DispatcherTest, CacheOptionAndDispatchAreMutuallyExclusive) {
  const fs::path dir = fresh_dir();
  api::ResultCache cache(dir);
  SuiteOptions options = dispatch_options(2);
  options.cache = &cache;  // in-process handle + worker processes: no
  EXPECT_THROW((void)SuiteRunner(options).run_jobs(make_jobs(2), "bad"),
               api::SpecError);
}

TEST(DispatcherTest, ZeroJobsCompletesWithoutSpawningWorkers) {
  SuiteOptions options = dispatch_options(4);
  std::ostringstream jsonl;
  options.jsonl = &jsonl;
  const SweepResult result =
      SuiteRunner(options).run_jobs({}, "empty");
  EXPECT_EQ(result.jobs_total, 0U);
  EXPECT_EQ(result.dispatch.workers, 0U);
  EXPECT_EQ(result.dispatch.jobs_dispatched, 0U);
  EXPECT_TRUE(jsonl.str().empty());
}

}  // namespace
}  // namespace deproto::dist

/// Worker re-entry + fault injection. The dispatcher spawns
/// `/proc/self/exe --worker [--worker-heartbeat-ms N] <extra args>`; in
/// a test binary that path is this binary, so main() routes --worker
/// into dist::run_worker before gtest ever initializes.
int main(int argc, char** argv) {
  bool worker = false;
  int heartbeat_ms = 0;
  std::string cache_dir;
  std::string crash_once, noise_once, hang_once;
  long crash_job = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    if (arg == "--worker") {
      worker = true;
    } else if (arg == "--worker-heartbeat-ms") {
      heartbeat_ms = std::atoi(next().c_str());
    } else if (arg == "--cache") {
      cache_dir = next();
    } else if (arg == "--test-crash-once") {
      crash_once = next();
    } else if (arg == "--test-noise-once") {
      noise_once = next();
    } else if (arg == "--test-hang-once") {
      hang_once = next();
    } else if (arg == "--test-crash-job") {
      crash_job = std::atol(next().c_str());
    }
  }

  if (worker) {
    std::unique_ptr<deproto::api::ResultCache> cache;
    if (!cache_dir.empty()) {
      cache = std::make_unique<deproto::api::ResultCache>(cache_dir);
    }
    deproto::dist::WorkerOptions options;
    options.heartbeat_ms = heartbeat_ms;
    options.cache = cache.get();
    options.before_job = [&](std::size_t job_index) {
      if (!crash_once.empty() && deproto::dist::claim_marker(crash_once)) {
        ::kill(::getpid(), SIGKILL);
      }
      if (crash_job >= 0 &&
          job_index == static_cast<std::size_t>(crash_job)) {
        ::kill(::getpid(), SIGKILL);
      }
      if (!hang_once.empty() && deproto::dist::claim_marker(hang_once)) {
        ::kill(::getpid(), SIGSTOP);  // frozen until the dispatcher
                                      // SIGKILLs us
      }
      if (!noise_once.empty() && deproto::dist::claim_marker(noise_once)) {
        const char noise[] = "stray printf over the frame channel\n";
        (void)!::write(STDOUT_FILENO, noise, sizeof(noise) - 1);
      }
    };
    return deproto::dist::run_worker(options);
  }

  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
