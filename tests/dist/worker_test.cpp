// The worker half of the dispatcher, driven in-process over real pipes:
// handshake, job execution (byte-identical to a direct Experiment run),
// failure reporting, the shared-cache warm path, heartbeats, clean
// shutdown on Shutdown/EOF, and the per-job memory budget -- a long job
// must stream its series into the result dump instead of materializing a
// PeriodPoint tree, so worker RSS stays bounded.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "api/experiment.hpp"
#include "api/json.hpp"
#include "api/registry.hpp"
#include "api/result_cache.hpp"
#include "api/spec.hpp"
#include "dist/wire.hpp"
#include "dist/worker.hpp"

namespace deproto::dist {
namespace {

namespace fs = std::filesystem;
using api::Json;
using api::ScenarioSpec;

ScenarioSpec tiny_spec() {
  ScenarioSpec spec = api::registry_get("epidemic").scaled_to(150);
  spec.periods = 4;
  return spec;
}

/// run_worker on a background thread, talking to the test over two real
/// pipes -- the same transport shape the dispatcher forks with, minus the
/// process boundary (so ASan still sees both sides).
class WorkerHarness {
 public:
  explicit WorkerHarness(WorkerOptions options = {}) {
    int down[2];  // test -> worker (the worker's stdin)
    int up[2];    // worker -> test (the worker's stdout)
    EXPECT_EQ(::pipe(down), 0);
    EXPECT_EQ(::pipe(up), 0);
    options.read_fd = down[0];
    options.write_fd = up[1];
    worker_read_ = down[0];
    worker_write_ = up[1];
    test_read_ = up[0];
    test_write_ = down[1];
    transport_ = std::make_unique<FdTransport>(test_read_, test_write_);
    thread_ = std::thread(
        [this, options] { exit_code_ = run_worker(options); });
  }

  ~WorkerHarness() {
    close_to_worker();
    join();
    ::close(worker_read_);
    ::close(worker_write_);
    ::close(test_read_);
  }

  Transport& transport() { return *transport_; }

  bool send(FrameType type, std::string payload = "") {
    Frame frame;
    frame.type = type;
    frame.payload = std::move(payload);
    return transport_->send(frame);
  }

  /// Bypass the framing layer: raw bytes straight into the worker's
  /// stdin, the shape of a stray printf landing on the frame channel.
  void send_raw(const std::string& bytes) {
    EXPECT_EQ(::write(test_write_, bytes.data(), bytes.size()),
              static_cast<long>(bytes.size()));
  }

  bool send_job(std::size_t index, const ScenarioSpec& spec) {
    return send(FrameType::Job, Json::object()
                                    .set("job", Json::number(index))
                                    .set("spec", spec.to_json())
                                    .dump());
  }

  /// Next frame from the worker; nullopt on EOF or corrupt bytes.
  std::optional<Frame> recv() {
    char buf[4096];
    while (true) {
      Frame frame;
      const FrameDecoder::Status status = decoder_.next(&frame);
      if (status == FrameDecoder::Status::Frame) return frame;
      if (status == FrameDecoder::Status::Corrupt) return std::nullopt;
      const long n = transport_->read_some(buf, sizeof(buf));
      if (n <= 0) return std::nullopt;
      decoder_.feed(buf, static_cast<std::size_t>(n));
    }
  }

  /// Skip heartbeats (timing-dependent) until a frame of `type` arrives.
  std::optional<Frame> recv_until(FrameType type) {
    while (std::optional<Frame> frame = recv()) {
      if (frame->type == type) return frame;
      if (frame->type != FrameType::Heartbeat) return std::nullopt;
    }
    return std::nullopt;
  }

  /// Close the test->worker pipe (EOF for the worker's read loop).
  void close_to_worker() {
    if (eof_sent_) return;
    eof_sent_ = true;
    ::close(test_write_);
  }

  int join() {
    if (thread_.joinable()) thread_.join();
    return exit_code_;
  }

 private:
  std::unique_ptr<FdTransport> transport_;
  FrameDecoder decoder_;
  std::thread thread_;
  int worker_read_ = -1;
  int worker_write_ = -1;
  int test_read_ = -1;
  int test_write_ = -1;
  int exit_code_ = -1;
  bool eof_sent_ = false;
};

/// Split a Result frame payload into its header line and raw body.
struct ResultPayload {
  Json header;
  std::string body;
};

ResultPayload split_result(const Frame& frame) {
  const std::size_t newline = frame.payload.find('\n');
  EXPECT_NE(newline, std::string::npos);
  ResultPayload out;
  out.header = Json::parse(frame.payload.substr(0, newline));
  out.body = frame.payload.substr(newline + 1);
  return out;
}

/// VmHWM (peak resident set) of this process, in bytes.
std::size_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::size_t kib = 0;
      fields >> kib;
      return kib * 1024;
    }
  }
  return 0;
}

fs::path fresh_dir() {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::path(testing::TempDir()) / "deproto-worker-test" /
                       (std::string(info->test_suite_name()) + "." +
                        info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(WorkerTest, HelloThenResultByteIdenticalToDirectRun) {
  const ScenarioSpec spec = tiny_spec();
  WorkerHarness worker;

  const std::optional<Frame> hello = worker.recv();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->type, FrameType::Hello);
  const Json hello_json = Json::parse(hello->payload);
  EXPECT_EQ(hello_json.at("pid").as_size(),
            static_cast<std::size_t>(::getpid()));
  EXPECT_FALSE(hello_json.at("cache_enabled").as_bool());

  ASSERT_TRUE(worker.send_job(7, spec));
  const std::optional<Frame> result = worker.recv_until(FrameType::Result);
  ASSERT_TRUE(result.has_value());
  const ResultPayload payload = split_result(*result);
  EXPECT_EQ(payload.header.at("job").as_size(), 7U);
  EXPECT_TRUE(payload.header.at("ok").as_bool());
  EXPECT_FALSE(payload.header.at("cached").as_bool());
  EXPECT_GT(payload.header.at("elapsed_seconds").as_number(), 0.0);

  // The streamed body is the exact canonical dump a direct in-process
  // run produces -- this is the byte-for-byte determinism the dispatcher
  // relies on to splice bodies into sinks without re-serializing.
  const api::ExperimentResult direct = api::Experiment(spec).run();
  EXPECT_EQ(payload.body, direct.to_json(false).dump());

  // The pre-extracted metrics match what the suite computes from the
  // parsed result (spot-check two).
  const Json& metrics = payload.header.at("metrics");
  EXPECT_EQ(metrics.at("final_alive").as_number(),
            static_cast<double>(direct.final_alive));
  EXPECT_EQ(metrics.at("dominant_fraction").as_number(),
            direct.convergence.dominant_fraction);

  ASSERT_TRUE(worker.send(FrameType::Shutdown));
  EXPECT_EQ(worker.join(), 0);
}

TEST(WorkerTest, ExecutesManyJobsInOrderAndExitsZeroOnEof) {
  WorkerHarness worker;
  ASSERT_TRUE(worker.recv_until(FrameType::Hello).has_value());
  for (std::size_t i = 0; i < 3; ++i) {
    ScenarioSpec spec = tiny_spec();
    spec.seed = 100 + i;
    ASSERT_TRUE(worker.send_job(i, spec));
    const std::optional<Frame> result = worker.recv_until(FrameType::Result);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(split_result(*result).header.at("job").as_size(), i);
  }
  worker.close_to_worker();  // EOF, not Shutdown: still a clean exit
  EXPECT_EQ(worker.join(), 0);
}

TEST(WorkerTest, FailedJobReportsErrorWithoutBody) {
  ScenarioSpec spec = tiny_spec();
  spec.backend = api::Backend::Event;
  spec.clock_drift = -2.0;  // rejected at launch
  WorkerHarness worker;
  ASSERT_TRUE(worker.recv_until(FrameType::Hello).has_value());
  ASSERT_TRUE(worker.send_job(0, spec));
  const std::optional<Frame> result = worker.recv_until(FrameType::Result);
  ASSERT_TRUE(result.has_value());
  const ResultPayload payload = split_result(*result);
  EXPECT_FALSE(payload.header.at("ok").as_bool());
  EXPECT_FALSE(payload.header.at("error").as_string().empty());
  EXPECT_TRUE(payload.body.empty());

  // A failed job must not poison the loop: the next job still runs.
  ASSERT_TRUE(worker.send_job(1, tiny_spec()));
  const std::optional<Frame> next = worker.recv_until(FrameType::Result);
  ASSERT_TRUE(next.has_value());
  EXPECT_TRUE(split_result(*next).header.at("ok").as_bool());
  ASSERT_TRUE(worker.send(FrameType::Shutdown));
  EXPECT_EQ(worker.join(), 0);
}

TEST(WorkerTest, CacheReplaysStoredResultAndReportsCumulativeStats) {
  const fs::path dir = fresh_dir();
  api::ResultCache cache(dir);
  WorkerOptions options;
  options.cache = &cache;
  WorkerHarness worker(options);

  const std::optional<Frame> hello = worker.recv_until(FrameType::Hello);
  ASSERT_TRUE(hello.has_value());
  EXPECT_TRUE(Json::parse(hello->payload).at("cache_enabled").as_bool());

  const ScenarioSpec spec = tiny_spec();
  ASSERT_TRUE(worker.send_job(0, spec));
  std::optional<Frame> frame = worker.recv_until(FrameType::Result);
  ASSERT_TRUE(frame.has_value());
  const ResultPayload cold = split_result(*frame);
  EXPECT_FALSE(cold.header.at("cached").as_bool());
  EXPECT_EQ(cold.header.at("cache").at("misses").as_size(), 1U);
  EXPECT_EQ(cold.header.at("cache").at("stores").as_size(), 1U);

  // Same spec again: replayed from the entry, body byte-identical, and
  // the "cache" object is this worker's *cumulative* stats (the
  // dispatcher diffs successive reports).
  ASSERT_TRUE(worker.send_job(1, spec));
  frame = worker.recv_until(FrameType::Result);
  ASSERT_TRUE(frame.has_value());
  const ResultPayload warm = split_result(*frame);
  EXPECT_TRUE(warm.header.at("cached").as_bool());
  EXPECT_EQ(warm.body, cold.body);
  EXPECT_EQ(warm.header.at("metrics").dump(), cold.header.at("metrics").dump());
  EXPECT_EQ(warm.header.at("cache").at("hits").as_size(), 1U);
  EXPECT_EQ(warm.header.at("cache").at("misses").as_size(), 1U);

  ASSERT_TRUE(worker.send(FrameType::Shutdown));
  EXPECT_EQ(worker.join(), 0);
}

TEST(WorkerTest, HeartbeatsFlowWhileIdle) {
  WorkerOptions options;
  options.heartbeat_ms = 5;
  WorkerHarness worker(options);
  ASSERT_TRUE(worker.recv_until(FrameType::Hello).has_value());
  const std::optional<Frame> beat = worker.recv();
  ASSERT_TRUE(beat.has_value());
  EXPECT_EQ(beat->type, FrameType::Heartbeat);
  EXPECT_EQ(Json::parse(beat->payload).at("job").as_number(), -1.0);
  ASSERT_TRUE(worker.send(FrameType::Shutdown));
  EXPECT_EQ(worker.join(), 0);
}

TEST(WorkerTest, CorruptInputFailsTheWorkerNotTheProcess) {
  WorkerHarness worker;
  ASSERT_TRUE(worker.recv_until(FrameType::Hello).has_value());
  Frame garbage;
  garbage.type = FrameType::Job;
  garbage.payload = "this is not a job object";
  ASSERT_TRUE(worker.transport().send(garbage));
  EXPECT_EQ(worker.join(), 1);  // bad job payload: fail loudly
}

TEST(WorkerTest, RawGarbageOnStdinIsCorruptAndFatal) {
  WorkerHarness worker;
  ASSERT_TRUE(worker.recv_until(FrameType::Hello).has_value());
  worker.send_raw("warning: library chatter where frames belong\n");
  EXPECT_EQ(worker.join(), 1);
}

TEST(WorkerTest, UnexpectedFrameTypeIsAProtocolError) {
  WorkerHarness worker;
  ASSERT_TRUE(worker.recv_until(FrameType::Hello).has_value());
  ASSERT_TRUE(worker.send(FrameType::Hello, "{}"));  // workers never get one
  EXPECT_EQ(worker.join(), 1);
}

TEST(WorkerTest, LongJobStreamsSeriesWithBoundedMemory) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer shadow memory distorts VmHWM";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "sanitizer shadow memory distorts VmHWM";
#endif
#endif
  // A 10^6-period job on the count backend. Streamed, the worker holds
  // the columnar text plus one dump (tens of MB); materialized as a
  // PeriodPoint vector + JSON tree it would spike several hundred MB.
  ScenarioSpec spec = api::registry_get("epidemic");
  spec.backend = api::Backend::Count;
  spec.periods = 1'000'000;

  const std::size_t before = peak_rss_bytes();
  ASSERT_GT(before, 0U);
  WorkerHarness worker;
  ASSERT_TRUE(worker.recv_until(FrameType::Hello).has_value());
  ASSERT_TRUE(worker.send_job(0, spec));
  const std::optional<Frame> result = worker.recv_until(FrameType::Result);
  ASSERT_TRUE(result.has_value());
  const ResultPayload payload = split_result(*result);
  EXPECT_TRUE(payload.header.at("ok").as_bool());
  // The body really is the full 10^6-period document...
  EXPECT_GT(payload.body.size(), 1'000'000U);
  // ...but producing it stayed within the streaming budget. The bound is
  // loose (the test process also holds the received frame) yet far below
  // the tree-materializing failure mode.
  const std::size_t after = peak_rss_bytes();
  EXPECT_LT(after - before, 256U * 1024 * 1024)
      << "worker RSS grew by " << (after - before) / (1024 * 1024) << " MiB";
  ASSERT_TRUE(worker.send(FrameType::Shutdown));
  EXPECT_EQ(worker.join(), 0);
}

}  // namespace
}  // namespace deproto::dist
