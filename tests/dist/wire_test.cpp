// The framing protocol's contract: frames round-trip byte-exactly
// through encode_frame/FrameDecoder under any feed chunking, and every
// way a stream can lie about itself -- bad magic, wrong version, unknown
// type, oversized length, mid-frame truncation, plain garbage (a worker
// printf-ing to stdout) -- is detected as Corrupt, stickily, instead of
// being resynced past or crashing the decoder.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/wire.hpp"

namespace deproto::dist {
namespace {

Frame job_frame(const std::string& payload) {
  Frame frame;
  frame.type = FrameType::Job;
  frame.payload = payload;
  return frame;
}

/// Overwrite the little-endian u32 at `offset` in encoded frame bytes.
void patch_u32(std::string* bytes, std::size_t offset, std::uint32_t value) {
  ASSERT_GE(bytes->size(), offset + 4);
  (*bytes)[offset + 0] = static_cast<char>(value & 0xff);
  (*bytes)[offset + 1] = static_cast<char>((value >> 8) & 0xff);
  (*bytes)[offset + 2] = static_cast<char>((value >> 16) & 0xff);
  (*bytes)[offset + 3] = static_cast<char>((value >> 24) & 0xff);
}

TEST(WireTest, EncodeLaysOutHeaderLittleEndian) {
  const std::string bytes = encode_frame(job_frame("abc"));
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + 3);
  EXPECT_EQ(bytes.substr(0, 4), "DPWF");
  // version = 1, type = Job (2), length = 3, all little-endian u32.
  const unsigned char* b =
      reinterpret_cast<const unsigned char*>(bytes.data());
  EXPECT_EQ(b[4] | (b[5] << 8) | (b[6] << 16) | (b[7] << 24), kWireVersion);
  EXPECT_EQ(b[8], 2);
  EXPECT_EQ(b[12], 3);
  EXPECT_EQ(bytes.substr(kFrameHeaderSize), "abc");
}

TEST(WireTest, RoundTripsFramesUnderAnyChunking) {
  std::vector<Frame> frames;
  frames.push_back(Frame{FrameType::Hello, R"({"pid":42})"});
  frames.push_back(job_frame(std::string(100 * 1024, 'x')));  // multi-chunk
  frames.push_back(Frame{FrameType::Heartbeat, R"({"job":-1})"});
  frames.push_back(Frame{FrameType::Shutdown, ""});  // empty payload

  std::string stream;
  for (const Frame& frame : frames) stream += encode_frame(frame);

  // Feed the whole stream in chunk sizes 1 (worst case), 7, and all-at-
  // once; the decoded sequence must be identical each time.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  stream.size()}) {
    FrameDecoder decoder;
    std::vector<Frame> decoded;
    for (std::size_t i = 0; i < stream.size(); i += chunk) {
      decoder.feed(stream.data() + i, std::min(chunk, stream.size() - i));
      Frame frame;
      while (decoder.next(&frame) == FrameDecoder::Status::Frame) {
        decoded.push_back(frame);
      }
    }
    EXPECT_EQ(decoded, frames) << "chunk=" << chunk;
    EXPECT_FALSE(decoder.corrupt());
    EXPECT_EQ(decoder.buffered(), 0U);
  }
}

TEST(WireTest, TruncatedFrameIsNeedMoreNotCorrupt) {
  const std::string bytes = encode_frame(job_frame("payload"));
  FrameDecoder decoder;
  Frame frame;
  // Every strict prefix of a valid frame is NeedMore: truncation means
  // "keep reading", and only ever escalates when bytes contradict the
  // framing, not when they are merely incomplete.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    FrameDecoder fresh;
    fresh.feed(bytes.data(), len);
    EXPECT_EQ(fresh.next(&frame), FrameDecoder::Status::NeedMore) << len;
    EXPECT_FALSE(fresh.corrupt()) << len;
  }
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::Frame);
}

TEST(WireTest, BadMagicIsCorrupt) {
  std::string bytes = encode_frame(job_frame("{}"));
  bytes[0] = 'X';
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.next(&frame, &error), FrameDecoder::Status::Corrupt);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(WireTest, StdoutNoiseIsCorrupt) {
  // The realistic corruption: a worker (or a library it links) printf-ed
  // to stdout, so the dispatcher reads text where a header should be.
  const std::string noise = "warning: something happened\n";
  FrameDecoder decoder;
  decoder.feed(noise.data(), noise.size());
  Frame frame;
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::Corrupt);
}

TEST(WireTest, WrongVersionIsCorrupt) {
  std::string bytes = encode_frame(job_frame("{}"));
  patch_u32(&bytes, 4, kWireVersion + 1);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.next(&frame, &error), FrameDecoder::Status::Corrupt);
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(WireTest, UnknownTypeIsCorrupt) {
  EXPECT_TRUE(frame_type_known(1));
  EXPECT_TRUE(frame_type_known(5));
  EXPECT_FALSE(frame_type_known(0));
  EXPECT_FALSE(frame_type_known(6));

  std::string bytes = encode_frame(job_frame("{}"));
  patch_u32(&bytes, 8, 99);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.next(&frame, &error), FrameDecoder::Status::Corrupt);
  EXPECT_NE(error.find("type"), std::string::npos) << error;
}

TEST(WireTest, OversizedLengthIsCorruptNotAnAllocation) {
  // A length field above kMaxFramePayload must be rejected from the
  // header alone -- the decoder never tries to buffer 4 GiB first.
  std::string bytes = encode_frame(job_frame("{}"));
  patch_u32(&bytes, 12, 0xffffffffu);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.next(&frame, &error), FrameDecoder::Status::Corrupt);
  EXPECT_NE(error.find("exceeds"), std::string::npos) << error;
}

TEST(WireTest, CorruptionIsStickyEvenAcrossValidBytes) {
  // Once framing is lost there is no resync: a valid frame fed after the
  // violation must NOT be handed out, because nothing guarantees the
  // stream positions align with frame boundaries anymore.
  std::string bad = encode_frame(job_frame("{}"));
  bad[1] = '?';
  FrameDecoder decoder;
  decoder.feed(bad.data(), bad.size());
  Frame frame;
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::Corrupt);

  const std::string good = encode_frame(job_frame("{}"));
  decoder.feed(good.data(), good.size());
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::Corrupt);
  EXPECT_TRUE(decoder.corrupt());
}

TEST(WireTest, EncodeRejectsOversizedPayloads) {
  Frame frame;
  frame.type = FrameType::Result;
  frame.payload.resize(static_cast<std::size_t>(kMaxFramePayload) + 1);
  EXPECT_THROW((void)encode_frame(frame), std::length_error);
}

TEST(WireTest, FrameTypeNamesAreStable) {
  EXPECT_STREQ(frame_type_name(FrameType::Hello), "hello");
  EXPECT_STREQ(frame_type_name(FrameType::Job), "job");
  EXPECT_STREQ(frame_type_name(FrameType::Result), "result");
  EXPECT_STREQ(frame_type_name(FrameType::Heartbeat), "heartbeat");
  EXPECT_STREQ(frame_type_name(FrameType::Shutdown), "shutdown");
}

}  // namespace
}  // namespace deproto::dist
