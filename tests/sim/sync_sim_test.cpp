#include "sim/sync_sim.hpp"

#include <gtest/gtest.h>

namespace deproto::sim {
namespace {

/// Minimal protocol: state 0 members flip to state 1 with probability q.
class FlipProtocol final : public PeriodicProtocol {
 public:
  explicit FlipProtocol(double q, std::size_t rejoin = 0)
      : q_(q), rejoin_(rejoin) {}
  [[nodiscard]] std::size_t num_states() const override { return 2; }
  [[nodiscard]] std::size_t rejoin_state() const override { return rejoin_; }
  void on_crash(ProcessId) override { ++crashes_seen_; }

  void execute_period(Group& group, Rng& rng,
                      MetricsCollector& /*metrics*/) override {
    const std::size_t k = rng.binomial(group.count(0), q_);
    for (std::size_t i = 0; i < k; ++i) {
      group.transition(group.random_member(0, rng), 1);
    }
  }

  int crashes_seen() const { return crashes_seen_; }

 private:
  double q_;
  std::size_t rejoin_;
  int crashes_seen_ = 0;
};

TEST(SyncSimTest, RunsPeriodsAndRecordsMetrics) {
  FlipProtocol protocol(0.5);
  SyncSimulator simulator(100, protocol, 1);
  simulator.run(10);
  EXPECT_EQ(simulator.current_period(), 10U);
  EXPECT_EQ(simulator.metrics().samples().size(), 10U);
  // With q = 0.5 per period, state 0 is (nearly) empty after 10 periods.
  EXPECT_LT(simulator.group().count(0), 5U);
}

TEST(SyncSimTest, TransitionsAutomaticallyCounted) {
  FlipProtocol protocol(1.0);  // everyone flips in period 0
  SyncSimulator simulator(50, protocol, 2);
  simulator.run(1);
  EXPECT_EQ(simulator.metrics().samples()[0].transitions[0 * 2 + 1], 50U);
}

TEST(SyncSimTest, SeedStatesDistributes) {
  FlipProtocol protocol(0.0);
  SyncSimulator simulator(100, protocol, 3);
  simulator.seed_states({60, 40});
  EXPECT_EQ(simulator.group().count(0), 60U);
  EXPECT_EQ(simulator.group().count(1), 40U);
  EXPECT_THROW(simulator.seed_states({200, 0}), std::invalid_argument);
}

TEST(SyncSimTest, MassiveFailureCrashesFraction) {
  FlipProtocol protocol(0.0);
  SyncSimulator simulator(1000, protocol, 4);
  simulator.schedule_massive_failure(3, 0.5);
  simulator.run(3);
  EXPECT_EQ(simulator.group().total_alive(), 1000U);
  simulator.run(1);
  EXPECT_EQ(simulator.group().total_alive(), 500U);
  EXPECT_EQ(protocol.crashes_seen(), 500);
}

TEST(SyncSimTest, ChurnPlaybackCrashesAndRecovers) {
  FlipProtocol protocol(0.0, /*rejoin=*/1);
  SyncSimulator simulator(10, protocol, 5);
  // Host 3 leaves at hour 0.1 and rejoins at hour 0.5 (periods: x10).
  simulator.attach_churn(ChurnTrace::from_events({
                             ChurnEvent{0.1, 3, false},
                             ChurnEvent{0.5, 3, true},
                         }),
                         10.0);
  simulator.run(2);  // departure (t = 1.0 periods) applied, rejoin not yet
  EXPECT_FALSE(simulator.group().alive(3));
  simulator.run(4);  // covers the rejoin at t = 5.0 periods
  EXPECT_TRUE(simulator.group().alive(3));
  // Rejoined into the protocol's rejoin_state.
  EXPECT_EQ(simulator.group().state_of(3), 1U);
}

TEST(SyncSimTest, ChurnDepartureOnly) {
  FlipProtocol protocol(0.0);
  SyncSimulator simulator(10, protocol, 6);
  simulator.attach_churn(
      ChurnTrace::from_events({ChurnEvent{0.05, 7, false}}), 10.0);
  simulator.run(1);
  EXPECT_FALSE(simulator.group().alive(7));
  EXPECT_EQ(simulator.group().total_alive(), 9U);
}

TEST(SyncSimTest, CrashRecoveryKeepsPopulationRoughlyConstant) {
  FlipProtocol protocol(0.0, /*rejoin=*/0);
  SyncSimulator simulator(2000, protocol, 7);
  simulator.set_crash_recovery(0.01, 10.0);
  simulator.run(300);
  // Steady state: ~1% crash per period, ~10 period downtime => ~10% down.
  const double alive =
      static_cast<double>(simulator.group().total_alive()) / 2000.0;
  EXPECT_GT(alive, 0.8);
  EXPECT_LT(alive, 0.98);
}

TEST(SyncSimTest, CrashStopWithoutRecoveryDrains) {
  FlipProtocol protocol(0.0);
  SyncSimulator simulator(500, protocol, 8);
  simulator.set_crash_recovery(0.05, 0.0);  // permanent crashes
  simulator.run(200);
  EXPECT_LT(simulator.group().total_alive(), 10U);
}

TEST(SyncSimTest, ValidatesArguments) {
  FlipProtocol protocol(0.0);
  SyncSimulator simulator(10, protocol, 9);
  EXPECT_THROW(simulator.schedule_massive_failure(1, 1.5),
               std::invalid_argument);
  EXPECT_THROW(simulator.set_crash_recovery(2.0, 1.0),
               std::invalid_argument);
  ChurnTrace trace;
  EXPECT_THROW(simulator.attach_churn(trace, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace deproto::sim
