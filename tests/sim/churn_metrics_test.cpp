#include <gtest/gtest.h>

#include <sstream>

#include "sim/churn.hpp"
#include "sim/metrics.hpp"

namespace deproto::sim {
namespace {

TEST(ChurnTest, FromEventsSorts) {
  ChurnTrace trace = ChurnTrace::from_events({
      ChurnEvent{5.0, 1, true},
      ChurnEvent{1.0, 1, false},
  });
  ASSERT_EQ(trace.events().size(), 2U);
  EXPECT_FALSE(trace.events()[0].up);
  EXPECT_TRUE(trace.events()[1].up);
}

TEST(ChurnTest, SyntheticOvernetRatesWithinBand) {
  Rng rng(42);
  const std::size_t n = 2000;
  const double hours = 24.0;
  const ChurnTrace trace =
      ChurnTrace::synthetic_overnet(n, hours, 0.10, 0.25, 0.5, rng);
  // Departures per hour within the configured band (loosened for the
  // already-down filter).
  std::vector<int> per_hour(static_cast<std::size_t>(hours), 0);
  for (const ChurnEvent& e : trace.events()) {
    if (!e.up) ++per_hour[static_cast<std::size_t>(e.time_hours)];
  }
  for (int count : per_hour) {
    EXPECT_GE(count, static_cast<int>(0.05 * n));
    EXPECT_LE(count, static_cast<int>(0.26 * n));
  }
}

TEST(ChurnTest, EventsSortedAndDownBeforeUpPerHost) {
  Rng rng(7);
  const ChurnTrace trace =
      ChurnTrace::synthetic_overnet(100, 12.0, 0.10, 0.25, 0.5, rng);
  double last = 0.0;
  for (const ChurnEvent& e : trace.events()) {
    EXPECT_GE(e.time_hours, last);
    last = e.time_hours;
  }
  // Per host, events alternate down/up.
  std::vector<int> state(100, 1);  // 1 = up
  for (const ChurnEvent& e : trace.events()) {
    if (e.up) {
      EXPECT_EQ(state[e.host], 0) << "rejoin while up, host " << e.host;
      state[e.host] = 1;
    } else {
      EXPECT_EQ(state[e.host], 1) << "departure while down, host " << e.host;
      state[e.host] = 0;
    }
  }
}

TEST(ChurnTest, DeparturesPerHostDayStatistic) {
  Rng rng(21);
  const std::size_t n = 500;
  const ChurnTrace trace =
      ChurnTrace::synthetic_overnet(n, 48.0, 0.10, 0.25, 0.3, rng);
  const double rate = trace.departures_per_host_day(n, 48.0);
  // ~17.5% churn/hour * 24h would be ~4.2 if hosts never stayed down;
  // the published Overnet figure is 6.4. Accept a broad sane band.
  EXPECT_GT(rate, 1.0);
  EXPECT_LT(rate, 10.0);
}

TEST(MetricsTest, RecordsPopulationsAndTransitions) {
  Group g(10, 2);
  MetricsCollector metrics(2);
  metrics.begin_period(0.0);
  g.transition(0, 1);
  metrics.record_transition(0, 1);
  g.transition(1, 1);
  metrics.record_transition(0, 1);
  metrics.end_period(g);

  ASSERT_EQ(metrics.samples().size(), 1U);
  const PeriodSample& s = metrics.samples()[0];
  EXPECT_EQ(s.alive_in_state[0], 8U);
  EXPECT_EQ(s.alive_in_state[1], 2U);
  EXPECT_EQ(s.transitions[0 * 2 + 1], 2U);
  EXPECT_EQ(s.total_alive, 10U);
}

TEST(MetricsTest, EndWithoutBeginThrows) {
  Group g(2, 2);
  MetricsCollector metrics(2);
  EXPECT_THROW(metrics.end_period(g), std::logic_error);
}

TEST(MetricsTest, WindowSummaries) {
  Group g(10, 2);
  MetricsCollector metrics(2);
  // Periods with 0, 1, 2, 3 processes in state 1.
  for (int k = 0; k < 4; ++k) {
    metrics.begin_period(k);
    if (k > 0) {
      g.transition(static_cast<ProcessId>(k - 1), 1);
      metrics.record_transition(0, 1);
    }
    metrics.end_period(g);
  }
  const WindowSummary all = metrics.summarize_state(1, 0, 4);
  EXPECT_DOUBLE_EQ(all.min, 0.0);
  EXPECT_DOUBLE_EQ(all.max, 3.0);
  EXPECT_DOUBLE_EQ(all.median, 1.5);
  EXPECT_DOUBLE_EQ(all.mean, 1.5);
  const WindowSummary flux = metrics.summarize_flux(0, 1, 0, 4);
  EXPECT_DOUBLE_EQ(flux.max, 1.0);
  EXPECT_DOUBLE_EQ(flux.min, 0.0);
}

TEST(MetricsTest, HostHistoryTracksMembership) {
  Group g(5, 2);
  MetricsCollector metrics(2);
  metrics.enable_host_history(1);
  metrics.begin_period(0.0);
  g.transition(2, 1);
  metrics.end_period(g);
  ASSERT_EQ(metrics.host_history().size(), 1U);
  ASSERT_EQ(metrics.host_history()[0].size(), 1U);
  EXPECT_EQ(metrics.host_history()[0][0], 2U);
}

TEST(MetricsTest, CsvOutputs) {
  Group g(4, 2);
  MetricsCollector metrics(2);
  metrics.begin_period(0.0);
  g.transition(0, 1);
  metrics.record_transition(0, 1);
  metrics.end_period(g);

  std::ostringstream pop;
  metrics.write_population_csv(pop, {"idle", "busy"});
  EXPECT_NE(pop.str().find("time,idle,busy,alive"), std::string::npos);
  EXPECT_NE(pop.str().find("0,3,1,4"), std::string::npos);

  std::ostringstream flux;
  metrics.write_flux_csv(flux, {"idle", "busy"});
  EXPECT_NE(flux.str().find("idle->busy"), std::string::npos);
}

}  // namespace
}  // namespace deproto::sim
