#include "sim/count_sim.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <stdexcept>

#include "core/action.hpp"
#include "core/state_machine.hpp"

namespace deproto::sim {
namespace {

/// Minimal two-state machine: state 0 flips to state 1 with probability q
/// (the count analogue of sync_sim_test's FlipProtocol).
core::ProtocolStateMachine flip_machine(double q) {
  core::ProtocolStateMachine machine({"a", "b"});
  core::FlippingAction flip;
  flip.from_state = 0;
  flip.to_state = 1;
  flip.coin_bias = q;
  flip.rate_constant = q;
  machine.add_action(flip);
  return machine;
}

std::size_t sum_counts(const CountSimulator& simulator) {
  std::size_t total = 0;
  for (std::size_t s = 0; s < simulator.num_states(); ++s) {
    total += simulator.count(s);
  }
  return total;
}

TEST(CountSimTest, RunsPeriodsConservesPopulationAndRecordsMetrics) {
  CountSimulator simulator(1000, flip_machine(0.3), 1);
  simulator.run(10);
  EXPECT_EQ(simulator.current_period(), 10U);
  EXPECT_EQ(simulator.metrics().samples().size(), 10U);
  EXPECT_EQ(simulator.total_alive(), 1000U);
  EXPECT_EQ(sum_counts(simulator), 1000U);
  // With q = 0.3 per period, state 0 decays to ~28 expected survivors.
  EXPECT_LT(simulator.count(0), 200U);
}

TEST(CountSimTest, CertainFlipMovesEveryoneAndCountsTransitions) {
  CountSimulator simulator(50, flip_machine(1.0), 2);
  simulator.run(1);
  EXPECT_EQ(simulator.count(0), 0U);
  EXPECT_EQ(simulator.count(1), 50U);
  EXPECT_EQ(simulator.metrics().samples()[0].transitions[0 * 2 + 1], 50U);
  EXPECT_EQ(simulator.metrics().samples()[0].total_alive, 50U);
}

TEST(CountSimTest, OnePeriodIsABinomialDraw) {
  // One period moves Binomial(N, q) processes: at N = 10000, q = 0.3 the
  // draw is 3000 +- 46, so a 500-wide window is > 10 sigma.
  CountSimulator simulator(10000, flip_machine(0.3), 3);
  simulator.run(1);
  EXPECT_NEAR(static_cast<double>(simulator.count(1)), 3000.0, 500.0);
}

TEST(CountSimTest, SeedStatesDistributesAndRemainderStaysInStateZero) {
  CountSimulator simulator(100, flip_machine(0.0), 4);
  simulator.seed_states({0, 40});
  EXPECT_EQ(simulator.count(0), 60U);  // unseeded remainder
  EXPECT_EQ(simulator.count(1), 40U);
  EXPECT_THROW(simulator.seed_states({200, 0}), std::invalid_argument);
  EXPECT_THROW(simulator.seed_states({0, 0, 0}), std::invalid_argument);
}

TEST(CountSimTest, GroupAccessThrowsAndPerNodeIsFalse) {
  CountSimulator simulator(10, flip_machine(0.0), 5);
  EXPECT_FALSE(simulator.per_node());
  EXPECT_THROW((void)simulator.group(), std::logic_error);
}

TEST(CountSimTest, MassiveFailureRemovesRoundedFractionAtItsPeriod) {
  CountSimulator simulator(1000, flip_machine(0.0), 6);
  simulator.schedule_massive_failure(3, 0.5);
  simulator.run(3);
  EXPECT_EQ(simulator.total_alive(), 1000U);
  simulator.run(1);
  EXPECT_EQ(simulator.total_alive(), 500U);
  EXPECT_EQ(sum_counts(simulator), 500U);
}

TEST(CountSimTest, MassiveFailureRemovesAcrossStates) {
  CountSimulator simulator(1000, flip_machine(0.0), 7);
  simulator.seed_states({500, 500});
  simulator.schedule_massive_failure(0, 0.9);
  simulator.run(1);
  EXPECT_EQ(simulator.total_alive(), 100U);
  EXPECT_EQ(sum_counts(simulator), 100U);
  // Victims are spread over both buckets, not taken from one side only.
  EXPECT_GT(simulator.count(0), 0U);
  EXPECT_GT(simulator.count(1), 0U);
}

TEST(CountSimTest, ScheduledCrashAndRecoveryAreAnonymousButCounted) {
  CountSimulator simulator(10, flip_machine(0.0), 8);
  simulator.schedule_crash(/*pid=*/3, /*time=*/2.0, /*recover_time=*/5.0);
  simulator.run(2);
  EXPECT_EQ(simulator.total_alive(), 10U);
  simulator.run(1);  // crash quantizes to the period-3 start
  EXPECT_EQ(simulator.total_alive(), 9U);
  simulator.run(3);  // rejoin at t = 5 revives one process into state 0
  EXPECT_EQ(simulator.total_alive(), 10U);
  EXPECT_EQ(sum_counts(simulator), 10U);
}

TEST(CountSimTest, ChurnPlaybackCrashesAndRevives) {
  CountSimulator simulator(10, flip_machine(0.0), 9);
  // One departure at hour 0.1 and a rejoin at hour 0.5 (periods: x10);
  // churn events act within their covering period, like the sync backend.
  simulator.attach_churn(ChurnTrace::from_events({
                             ChurnEvent{0.1, 3, false},
                             ChurnEvent{0.5, 3, true},
                         }),
                         10.0);
  simulator.run(2);
  EXPECT_EQ(simulator.total_alive(), 9U);
  simulator.run(4);
  EXPECT_EQ(simulator.total_alive(), 10U);
}

TEST(CountSimTest, BackgroundCrashRecoveryKeepsPopulationBounded) {
  CountSimulator simulator(200, flip_machine(0.1), 10);
  simulator.set_crash_recovery(/*crash_prob=*/0.2,
                               /*mean_downtime_periods=*/2.0);
  simulator.run(30);
  // Crashes and revivals balance: some processes are down, none are lost.
  EXPECT_GT(simulator.total_alive(), 0U);
  EXPECT_LT(simulator.total_alive(), 200U);
  EXPECT_EQ(sum_counts(simulator), simulator.total_alive());
  EXPECT_THROW(simulator.set_crash_recovery(1.5, 1.0),
               std::invalid_argument);
}

TEST(CountSimTest, SameSeedSameTrajectory) {
  CountSimulator a(5000, flip_machine(0.2), 11);
  CountSimulator b(5000, flip_machine(0.2), 11);
  a.run(20);
  b.run(20);
  for (std::size_t s = 0; s < a.num_states(); ++s) {
    EXPECT_EQ(a.count(s), b.count(s)) << s;
  }
  EXPECT_EQ(a.probes_total(), b.probes_total());
}

TEST(CountSimTest, RunForRoundsUpToWholePeriods) {
  CountSimulator simulator(100, flip_machine(0.0), 12);
  simulator.run_for(2.3);
  EXPECT_EQ(simulator.current_period(), 3U);
}

TEST(CountSimTest, RejectsBadMessageLoss) {
  CountSimOptions options;
  options.message_loss = 1.5;
  EXPECT_THROW(CountSimulator(10, flip_machine(0.0), 13, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace deproto::sim
