#include "sim/group.hpp"

#include <gtest/gtest.h>

namespace deproto::sim {
namespace {

TEST(GroupTest, InitialStateAllAlive) {
  const Group g(10, 3, 1);
  EXPECT_EQ(g.size(), 10U);
  EXPECT_EQ(g.num_states(), 3U);
  EXPECT_EQ(g.count(1), 10U);
  EXPECT_EQ(g.count(0), 0U);
  EXPECT_EQ(g.total_alive(), 10U);
  EXPECT_TRUE(g.alive(0));
  EXPECT_EQ(g.state_of(7), 1U);
}

TEST(GroupTest, ConstructionValidation) {
  EXPECT_THROW(Group(0, 2), std::invalid_argument);
  EXPECT_THROW(Group(5, 0), std::invalid_argument);
  EXPECT_THROW(Group(5, 2, 7), std::invalid_argument);
}

TEST(GroupTest, TransitionMovesBetweenBuckets) {
  Group g(5, 2);
  g.transition(3, 1);
  EXPECT_EQ(g.count(0), 4U);
  EXPECT_EQ(g.count(1), 1U);
  EXPECT_EQ(g.state_of(3), 1U);
  // Self-transition is a no-op.
  g.transition(3, 1);
  EXPECT_EQ(g.count(1), 1U);
}

TEST(GroupTest, BucketsStayConsistentUnderManyTransitions) {
  Group g(50, 3);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const auto pid = static_cast<ProcessId>(rng.uniform_int(50));
    g.transition(pid, rng.uniform_int(3));
  }
  std::size_t total = g.count(0) + g.count(1) + g.count(2);
  EXPECT_EQ(total, 50U);
  // Each process is in the bucket its state claims.
  for (std::size_t s = 0; s < 3; ++s) {
    for (ProcessId pid : g.members(s)) {
      EXPECT_EQ(g.state_of(pid), s);
    }
  }
}

TEST(GroupTest, CrashRemovesFromBucketKeepsState) {
  Group g(4, 2);
  g.transition(2, 1);
  g.crash(2);
  EXPECT_FALSE(g.alive(2));
  EXPECT_EQ(g.count(1), 0U);
  EXPECT_EQ(g.total_alive(), 3U);
  EXPECT_EQ(g.state_of(2), 1U);  // last known state
  g.crash(2);                    // idempotent
  EXPECT_EQ(g.total_alive(), 3U);
}

TEST(GroupTest, TransitionOfCrashedProcessThrows) {
  Group g(4, 2);
  g.crash(1);
  EXPECT_THROW(g.transition(1, 1), std::logic_error);
}

TEST(GroupTest, RecoverReinserts) {
  Group g(4, 3);
  g.crash(1);
  g.recover(1, 2);
  EXPECT_TRUE(g.alive(1));
  EXPECT_EQ(g.state_of(1), 2U);
  EXPECT_EQ(g.count(2), 1U);
  EXPECT_EQ(g.total_alive(), 4U);
  EXPECT_THROW(g.recover(1, 0), std::logic_error);  // already alive
}

TEST(GroupTest, RandomMemberOnlyFromRequestedState) {
  Group g(30, 2);
  Rng rng(2);
  for (ProcessId pid = 0; pid < 10; ++pid) g.transition(pid, 1);
  for (int i = 0; i < 200; ++i) {
    const ProcessId m = g.random_member(1, rng);
    EXPECT_LT(m, 10U);
  }
  Group empty(3, 2);
  EXPECT_THROW((void)empty.random_member(1, rng), std::logic_error);
}

TEST(GroupTest, RandomTargetExcludesSelfButNotCrashed) {
  Group g(10, 1);
  Rng rng(3);
  g.crash(5);
  bool saw_crashed = false;
  for (int i = 0; i < 2000; ++i) {
    const ProcessId t = g.random_target(2, rng);
    EXPECT_NE(t, 2U);  // never self
    if (t == 5) saw_crashed = true;
  }
  // The maximal membership includes crashed processes (fruitless contacts).
  EXPECT_TRUE(saw_crashed);
}

TEST(GroupTest, CrashRandomAliveCrashesExactly) {
  Group g(100, 2);
  Rng rng(4);
  const auto victims = g.crash_random_alive(40, rng);
  EXPECT_EQ(victims.size(), 40U);
  EXPECT_EQ(g.total_alive(), 60U);
  // Requesting more than alive crashes everyone.
  g.crash_random_alive(1000, rng);
  EXPECT_EQ(g.total_alive(), 0U);
}

TEST(GroupTest, TransitionObserverFires) {
  Group g(5, 2);
  int calls = 0;
  g.set_transition_observer(
      [&](ProcessId pid, std::size_t from, std::size_t to) {
        ++calls;
        EXPECT_EQ(pid, 4U);
        EXPECT_EQ(from, 0U);
        EXPECT_EQ(to, 1U);
      });
  g.transition(4, 1);
  g.set_transition_observer(nullptr);
  g.transition(4, 0);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace deproto::sim
