#include "sim/swim.hpp"

#include <gtest/gtest.h>

namespace deproto::sim {
namespace {

struct Harness {
  EventQueue queue;
  Rng rng;
  Network network;
  SwimMembership swim;

  Harness(std::size_t n, double loss, SwimOptions options = {},
          std::uint64_t seed = 1)
      : rng(seed),
        network(queue, rng,
                NetworkOptions{loss, 0.01, 0.05}),
        swim(n, queue, network, rng, options) {}
};

TEST(SwimTest, AllAliveViewsStayAccurate) {
  Harness h(24, 0.0);
  h.queue.run_until(30.0);
  EXPECT_DOUBLE_EQ(h.swim.view_accuracy(), 1.0);
  EXPECT_EQ(h.swim.false_positives(), 0U);
}

TEST(SwimTest, CrashDetectedAndDisseminated) {
  Harness h(24, 0.0);
  h.queue.run_until(5.0);
  h.swim.crash(7);
  h.queue.run_until(60.0);
  // Every up node eventually believes node 7 dead.
  for (ProcessId observer = 0; observer < 24; ++observer) {
    if (observer == 7) continue;
    EXPECT_EQ(h.swim.view(observer, 7), SwimMembership::MemberState::Dead)
        << "observer " << observer;
  }
  EXPECT_DOUBLE_EQ(h.swim.view_accuracy(), 1.0);
}

TEST(SwimTest, DetectionLatencyIsBounded) {
  Harness h(16, 0.0);
  h.queue.run_until(3.0);
  h.swim.crash(3);
  // Randomized round-robin + 3-period suspicion: well under 40 periods for
  // the first observer, then dissemination is O(log N) periods.
  double detected_at = -1.0;
  for (double t = 4.0; t <= 60.0; t += 1.0) {
    h.queue.run_until(t);
    bool anyone = false;
    for (ProcessId observer = 0; observer < 16; ++observer) {
      if (observer != 3 &&
          h.swim.view(observer, 3) == SwimMembership::MemberState::Dead) {
        anyone = true;
      }
    }
    if (anyone) {
      detected_at = t;
      break;
    }
  }
  ASSERT_GT(detected_at, 0.0);
  EXPECT_LT(detected_at, 40.0);
}

TEST(SwimTest, NoFalsePositivesWithoutLoss) {
  Harness h(32, 0.0);
  h.queue.run_until(80.0);
  EXPECT_EQ(h.swim.false_positives(), 0U);
}

TEST(SwimTest, RefutationRescuesSuspectedNode) {
  // With message loss, suspicions happen; the incarnation-numbered Alive
  // refutation must keep *live* nodes from staying marked dead. The
  // suspicion timeout gives the subject time to hear about and refute the
  // suspicion (SWIM's design rationale for the suspicion mechanism).
  SwimOptions options;
  options.suspicion_periods = 8;
  Harness h(24, 0.15, options, 3);
  h.queue.run_until(200.0);
  EXPECT_GT(h.swim.refutations(), 0U);
  // Accuracy stays high despite 15% loss.
  EXPECT_GT(h.swim.view_accuracy(), 0.9);
}

TEST(SwimTest, RestartRejoinsWithFreshIncarnation) {
  Harness h(16, 0.0);
  h.queue.run_until(3.0);
  h.swim.crash(5);
  h.queue.run_until(40.0);
  ASSERT_EQ(h.swim.view(0, 5), SwimMembership::MemberState::Dead);
  h.swim.restart(5);
  h.queue.run_until(120.0);
  // The rejoin announcement (higher incarnation) overrides Dead.
  std::size_t believers = 0;
  for (ProcessId observer = 0; observer < 16; ++observer) {
    if (observer != 5 &&
        h.swim.view(observer, 5) == SwimMembership::MemberState::Alive) {
      ++believers;
    }
  }
  EXPECT_GT(believers, 12U);
}

TEST(SwimTest, AliveViewExcludesSelfAndDead) {
  Harness h(8, 0.0);
  h.queue.run_until(2.0);
  h.swim.crash(2);
  h.queue.run_until(40.0);
  const auto view = h.swim.alive_view(0);
  EXPECT_EQ(view.size(), 6U);  // 8 minus self minus the dead node
  for (ProcessId pid : view) {
    EXPECT_NE(pid, 0U);
    EXPECT_NE(pid, 2U);
  }
}

TEST(SwimTest, ValidatesGroupSize) {
  EventQueue queue;
  Rng rng(1);
  Network network(queue, rng);
  EXPECT_THROW(SwimMembership(1, queue, network, rng),
               std::invalid_argument);
}

TEST(SwimTest, TokenDirectoryUseCase) {
  // Section 6 integration sketch: route tokens to a target drawn from the
  // executor's SWIM view instead of an omniscient directory. After a crash
  // wave, views converge and tokens stop being routed to dead hosts.
  Harness h(20, 0.0);
  h.queue.run_until(5.0);
  for (ProcessId pid : {3U, 9U, 15U}) h.swim.crash(pid);
  h.queue.run_until(80.0);
  Rng pick(9);
  for (int k = 0; k < 50; ++k) {
    const auto view = h.swim.alive_view(0);
    ASSERT_FALSE(view.empty());
    const ProcessId target = view[pick.uniform_int(view.size())];
    EXPECT_TRUE(h.swim.node_up(target));  // never a dead token receiver
  }
}

}  // namespace
}  // namespace deproto::sim
