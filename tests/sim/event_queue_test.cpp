#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace deproto::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.executed(), 3U);
}

TEST(EventQueueTest, FifoAtEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ClockAdvancesWithEvents) {
  EventQueue q;
  q.schedule(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  q.step();
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1U);
}

TEST(EventQueueTest, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_in(1.0, recurse);
  };
  q.schedule(0.0, recurse);
  q.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueueTest, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.step();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueueTest, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace deproto::sim
