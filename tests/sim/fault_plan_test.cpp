// The shared fault-plan quantization rules: every backend (sync, event,
// count) delegates to these helpers, so pinning them here pins the
// cross-backend parity the equivalence suite relies on.

#include "sim/fault_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace deproto::sim::fault_plan {
namespace {

TEST(FaultPlanTest, ValidatorsAcceptBoundsAndRejectOutside) {
  EXPECT_NO_THROW(validate_failure_fraction(0.0));
  EXPECT_NO_THROW(validate_failure_fraction(1.0));
  EXPECT_THROW(validate_failure_fraction(-0.1), std::invalid_argument);
  EXPECT_THROW(validate_failure_fraction(1.1), std::invalid_argument);

  EXPECT_NO_THROW(validate_crash_recovery(0.0, 0.0));
  EXPECT_NO_THROW(validate_crash_recovery(1.0, 10.0));
  EXPECT_THROW(validate_crash_recovery(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(validate_crash_recovery(1.1, 1.0), std::invalid_argument);
  EXPECT_THROW(validate_crash_recovery(0.5, -1.0), std::invalid_argument);

  EXPECT_NO_THROW(validate_periods_per_hour(0.5));
  EXPECT_THROW(validate_periods_per_hour(0.0), std::invalid_argument);
  EXPECT_THROW(validate_periods_per_hour(-1.0), std::invalid_argument);
}

TEST(FaultPlanTest, FailureVictimsRoundToNearest) {
  // llround semantics: half rounds away from zero. Both per-node backends
  // historically used llround, so the count backend must too.
  EXPECT_EQ(failure_victims(0.5, 1000), 500U);
  EXPECT_EQ(failure_victims(0.5, 1001), 501U);  // 500.5 -> 501
  EXPECT_EQ(failure_victims(0.25, 10), 3U);     // 2.5 -> 3
  EXPECT_EQ(failure_victims(0.0, 12345), 0U);
  EXPECT_EQ(failure_victims(1.0, 12345), 12345U);
}

TEST(FaultPlanTest, TraceInPeriodsConvertsHoursAndPreservesOrder) {
  const ChurnTrace trace = ChurnTrace::from_events({
      ChurnEvent{0.1, 3, false},
      ChurnEvent{0.5, 3, true},
      ChurnEvent{2.0, 7, false},
  });
  const std::vector<ChurnEvent> events = trace_in_periods(trace, 10.0);
  ASSERT_EQ(events.size(), 3U);
  EXPECT_DOUBLE_EQ(events[0].time_hours, 1.0);  // now in periods
  EXPECT_DOUBLE_EQ(events[1].time_hours, 5.0);
  EXPECT_DOUBLE_EQ(events[2].time_hours, 20.0);
  EXPECT_EQ(events[0].host, 3U);
  EXPECT_FALSE(events[0].up);
  EXPECT_TRUE(events[1].up);
}

TEST(FaultPlanTest, TraceInPeriodsClampsStaleEventsToMinTime) {
  // The event backend replays a trace attached mid-run: events already in
  // the past fire "now" instead of being lost or applied retroactively.
  const ChurnTrace trace = ChurnTrace::from_events({
      ChurnEvent{0.1, 1, false},
      ChurnEvent{1.0, 2, false},
  });
  const std::vector<ChurnEvent> events = trace_in_periods(trace, 10.0, 4.5);
  ASSERT_EQ(events.size(), 2U);
  EXPECT_DOUBLE_EQ(events[0].time_hours, 4.5);   // 1.0 clamped up
  EXPECT_DOUBLE_EQ(events[1].time_hours, 10.0);  // already past min_time
}

TEST(FaultPlanTest, TraceInPeriodsRejectsBadRate) {
  EXPECT_THROW((void)trace_in_periods(ChurnTrace(), 0.0),
               std::invalid_argument);
}

TEST(FaultPlanTest, RecoveryDelayIsOnePeriodPlusExponentialTail) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(recovery_delay(rng, 5.0), 1.0);
  }
}

TEST(FaultPlanTest, FirstPeriodAtOrAfterCeilsAndClampsNegative) {
  EXPECT_EQ(first_period_at_or_after(-3.0), 0U);
  EXPECT_EQ(first_period_at_or_after(0.0), 0U);
  EXPECT_EQ(first_period_at_or_after(2.0), 2U);
  EXPECT_EQ(first_period_at_or_after(2.25), 3U);
}

}  // namespace
}  // namespace deproto::sim::fault_plan
