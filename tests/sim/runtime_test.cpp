#include "sim/runtime.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/mean_field.hpp"
#include "core/synthesis.hpp"
#include "numerics/integrator.hpp"
#include "ode/catalog.hpp"
#include "sim/sync_sim.hpp"

namespace deproto::sim {
namespace {

TEST(MachineExecutorTest, SynthesizedEpidemicInfectsEveryone) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  MachineExecutor executor(result.machine);
  SyncSimulator simulator(500, executor, 1);
  simulator.seed_states({499, 1});
  simulator.run(40);
  EXPECT_EQ(simulator.group().count(1), 500U);
}

TEST(MachineExecutorTest, ProbeCountMatchesMessageComplexity) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  MachineExecutor executor(result.machine);
  SyncSimulator simulator(100, executor, 2);
  simulator.seed_states({100, 0});  // everyone susceptible, nobody infected
  simulator.run(1);
  // Every susceptible sends exactly 1 probe per period.
  EXPECT_EQ(executor.probes_last_period(), 100U);
}

TEST(MachineExecutorTest, LvExecutorTracksOdeTrajectory) {
  // Mean-field check at protocol scale: the interpreted LV machine's
  // population fractions follow the ODE within a few percent at N = 4000.
  const double p = 0.05;
  const auto result =
      core::synthesize(ode::catalog::lv_partitionable(), {.p = p});
  MachineExecutor executor(result.machine);
  const std::size_t n = 4000;
  SyncSimulator simulator(n, executor, 3);
  simulator.seed_states({n * 6 / 10, n * 4 / 10, 0});

  // ODE reference: p-scaled system over the same horizon.
  const auto scaled = ode::catalog::lv_partitionable().scaled(p);
  num::Vec x{0.6, 0.4, 0.0};
  const num::OdeFunction f = num::ode_function(scaled);

  const std::size_t horizon = 60;
  simulator.run(horizon);
  num::integrate_fixed(f, x, 0.0, static_cast<double>(horizon), 0.01);

  for (std::size_t s = 0; s < 3; ++s) {
    const double simulated =
        static_cast<double>(simulator.group().count(s)) /
        static_cast<double>(n);
    EXPECT_NEAR(simulated, x[s], 0.05) << "state " << s;
  }
}

TEST(MachineExecutorTest, MessageLossSlowsSpread) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  auto run_infected_after = [&](double loss, std::uint64_t seed) {
    RuntimeOptions options;
    options.message_loss = loss;
    MachineExecutor executor(result.machine, options);
    SyncSimulator simulator(2000, executor, seed);
    simulator.seed_states({1000, 1000});
    simulator.run(1);
    return simulator.group().count(1);
  };
  // One period from a 50/50 start: conversions with loss f shrink by ~(1-f).
  double no_loss = 0.0, with_loss = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    no_loss += static_cast<double>(run_infected_after(0.0, seed)) - 1000.0;
    with_loss += static_cast<double>(run_infected_after(0.5, seed)) - 1000.0;
  }
  EXPECT_NEAR(with_loss / no_loss, 0.5, 0.1);
}

TEST(MachineExecutorTest, TokenizingDirectoryDeliversOrDrops) {
  // invitation: y-processes invite x-processes to become y.
  const auto result = core::synthesize(ode::catalog::invitation(1.0));
  MachineExecutor executor(result.machine);
  SyncSimulator simulator(100, executor, 4);
  simulator.seed_states({50, 50});
  simulator.run(30);
  // Every x eventually converted; tokens generated and delivered.
  EXPECT_EQ(simulator.group().count(1), 100U);
  EXPECT_GT(executor.token_stats().delivered, 0U);
  // Once x is empty, further tokens drop.
  simulator.run(5);
  EXPECT_GT(executor.token_stats().dropped, 0U);
}

TEST(MachineExecutorTest, TokenTtlWalkConvergesSlower) {
  const auto result = core::synthesize(ode::catalog::invitation(1.0));
  RuntimeOptions directory;
  RuntimeOptions walk;
  walk.tokens.mode = TokenRouting::Mode::RandomWalkTtl;
  walk.tokens.ttl = 1;  // a single hop: hits an x-process w.p. |x|/N

  MachineExecutor fast(result.machine, directory);
  MachineExecutor slow(result.machine, walk);
  SyncSimulator sim_fast(400, fast, 5);
  SyncSimulator sim_slow(400, slow, 5);
  sim_fast.seed_states({200, 200});
  sim_slow.seed_states({200, 200});
  // One period: directory tokens always land while x's remain; the single
  // hop of the TTL walk misses roughly half the time.
  sim_fast.run(1);
  sim_slow.run(1);
  EXPECT_GT(sim_fast.group().count(1),
            sim_slow.group().count(1) + 40U);
  EXPECT_GT(slow.token_stats().dropped, 0U);
  // Directory routing only drops when the target state is empty.
  EXPECT_GT(fast.token_stats().delivered, slow.token_stats().delivered);
}

TEST(MachineExecutorTest, EndemicPushPullVariantHoldsEquilibrium) {
  // Moderate rates (per-period transition probabilities well below 1, the
  // regime the mean-field analysis assumes): beta = 4, gamma = 0.2,
  // alpha = 0.02 -> equilibrium x = 0.05, y ~ 0.0864.
  core::SynthesisOptions options;
  options.push_pull.push_back(core::PushPullSpec{"x", "y"});
  const auto result =
      core::synthesize(ode::catalog::endemic(4.0, 0.2, 0.02), options);
  MachineExecutor executor(result.machine);
  const std::size_t n = 4000;
  SyncSimulator simulator(n, executor, 6);
  const double x_inf = 0.05, y_inf = 0.95 / 11.0;
  const auto sx = static_cast<std::size_t>(x_inf * n);
  const auto sy = static_cast<std::size_t>(y_inf * n);
  simulator.seed_states({sx, sy, n - sx - sy});
  simulator.run(400);
  // Stays near the equilibrium (Theorem 3's self-stabilization). The
  // finite-fanout pull saturates slightly below the bilinear rate, so allow
  // a generous band around the analytic point.
  const double y_frac =
      static_cast<double>(simulator.group().count(1)) / n;
  EXPECT_GT(y_frac, 0.3 * y_inf);
  EXPECT_LT(y_frac, 2.5 * y_inf);
}

}  // namespace
}  // namespace deproto::sim
