#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "core/synthesis.hpp"
#include "ode/catalog.hpp"

namespace deproto::sim {
namespace {

TEST(EventSimTest, AsynchronousEpidemicStillInfectsEveryone) {
  // No global clock: per-process periods have arbitrary phase and 5% drift,
  // probes ride on a lossy, latency-jittered network.
  const auto result = core::synthesize(ode::catalog::epidemic());
  EventSimOptions options;
  options.clock_drift = 0.05;
  options.network.loss = 0.05;
  EventSimulator simulator(300, result.machine, 1, options);
  simulator.seed_states({299, 1});
  simulator.run_until(60.0);
  EXPECT_EQ(simulator.group().count(1), 300U);
  EXPECT_GT(simulator.network().sent(), 0U);
  EXPECT_GT(simulator.network().dropped(), 0U);
}

TEST(EventSimTest, MetricsSampledEveryPeriod) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  EventSimulator simulator(50, result.machine, 2);
  simulator.seed_states({49, 1});
  simulator.run_until(10.0);
  // Samples at t = 0, 1, ..., 10.
  EXPECT_EQ(simulator.metrics().samples().size(), 11U);
  EXPECT_NEAR(simulator.metrics().samples().back().time, 10.0, 1e-9);
}

TEST(EventSimTest, MassiveFailureReducesAliveCount) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  EventSimulator simulator(200, result.machine, 3);
  simulator.seed_states({199, 1});
  simulator.schedule_massive_failure(5.0, 0.5);
  simulator.run_until(10.0);
  EXPECT_EQ(simulator.group().total_alive(), 100U);
}

TEST(EventSimTest, CrashStopsTicksRecoveryRestartsThem) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  EventSimulator simulator(10, result.machine, 4);
  simulator.seed_states({9, 1});
  simulator.schedule_crash(0, 1.0, /*recover_time=*/3.0);
  simulator.run_until(2.0);
  EXPECT_FALSE(simulator.group().alive(0));
  simulator.run_until(20.0);
  EXPECT_TRUE(simulator.group().alive(0));
  // The recovered process rejoined the epidemic and got infected again.
  EXPECT_EQ(simulator.group().count(1), 10U);
}

TEST(EventSimTest, LvConvergesToMajorityAsynchronously) {
  const auto result =
      core::synthesize(ode::catalog::lv_partitionable(), {.p = 0.1});
  EventSimOptions options;
  options.clock_drift = 0.1;
  options.network.loss = 0.02;
  EventSimulator simulator(400, result.machine, 5, options);
  simulator.seed_states({280, 120, 0});
  simulator.run_until(200.0);
  // Majority x wins.
  EXPECT_EQ(simulator.group().count(0), 400U);
}

TEST(EventSimTest, TokenWalkModeWorksOverMessages) {
  const auto result = core::synthesize(ode::catalog::invitation(1.0));
  EventSimOptions options;
  options.tokens.mode = TokenRouting::Mode::RandomWalkTtl;
  options.tokens.ttl = 16;
  EventSimulator simulator(100, result.machine, 6, options);
  simulator.seed_states({50, 50});
  simulator.run_until(60.0);
  EXPECT_GT(simulator.group().count(1), 95U);
}

TEST(EventSimTest, ValidatesDrift) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  EventSimOptions options;
  options.clock_drift = 0.9;
  EXPECT_THROW(EventSimulator(10, result.machine, 7, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace deproto::sim
