#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace deproto::sim {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, Uniform01Range) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(7));
  EXPECT_EQ(seen.size(), 7U);
  EXPECT_EQ(*seen.rbegin(), 6U);
  EXPECT_THROW((void)rng.uniform_int(0), std::invalid_argument);
}

TEST(RngTest, UniformIntExcludingNeverReturnsSelf) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_NE(rng.uniform_int_excluding(10, 4), 4U);
  }
  // Still covers the other 9 values.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int_excluding(10, 4));
  EXPECT_EQ(seen.size(), 9U);
}

TEST(RngTest, BernoulliEdgesAndMean) {
  Rng rng(11);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int heads = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.3, 0.02);
}

TEST(RngTest, BinomialMeanAndVariance) {
  Rng rng(13);
  const std::uint64_t n = 1000;
  const double p = 0.2;
  double sum = 0.0, sum2 = 0.0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    const double k = static_cast<double>(rng.binomial(n, p));
    sum += k;
    sum2 += k * k;
  }
  const double mean = sum / trials;
  const double var = sum2 / trials - mean * mean;
  EXPECT_NEAR(mean, 200.0, 2.0);
  EXPECT_NEAR(var, 160.0, 20.0);
  EXPECT_EQ(rng.binomial(0, 0.5), 0U);
  EXPECT_EQ(rng.binomial(10, 1.0), 10U);
}

TEST(RngTest, BinomialMatchesExactPmfOnEverySamplerPath) {
  // Pearson chi-square against the exact pmf, one case per code path of
  // the hand-rolled sampler: waiting-time inversion (n*p < 30), BTPE
  // rejection (n*p >= 30), and the p > 1/2 symmetry flip. The seed is
  // fixed and the bound is ~3x the bin count, so only a genuinely wrong
  // sampler (mis-picked hat region, shifted mode) trips it.
  struct Case {
    std::uint64_t n;
    double p;
  };
  for (const Case c : {Case{200, 0.05}, Case{1000, 0.2}, Case{1000, 0.85}}) {
    Rng rng(101);
    const int trials = 20000;
    std::vector<int> hist(c.n + 1, 0);
    for (int i = 0; i < trials; ++i) ++hist[rng.binomial(c.n, c.p)];
    std::vector<double> expected(c.n + 1);
    for (std::uint64_t k = 0; k <= c.n; ++k) {
      const double log_pmf =
          std::lgamma(static_cast<double>(c.n) + 1.0) -
          std::lgamma(static_cast<double>(k) + 1.0) -
          std::lgamma(static_cast<double>(c.n - k) + 1.0) +
          static_cast<double>(k) * std::log(c.p) +
          static_cast<double>(c.n - k) * std::log1p(-c.p);
      expected[k] = trials * std::exp(log_pmf);
    }
    // Pool k-values with expectation < 5 (the usual chi-square floor)
    // into one tail bin.
    double chi2 = 0.0, pooled_obs = 0.0, pooled_exp = 0.0;
    int bins = 0;
    for (std::uint64_t k = 0; k <= c.n; ++k) {
      if (expected[k] < 5.0) {
        pooled_obs += hist[k];
        pooled_exp += expected[k];
        continue;
      }
      const double d = hist[k] - expected[k];
      chi2 += d * d / expected[k];
      ++bins;
    }
    if (pooled_exp > 0.0) {
      const double d = pooled_obs - pooled_exp;
      chi2 += d * d / pooled_exp;
      ++bins;
    }
    EXPECT_GT(bins, 10) << "n=" << c.n << " p=" << c.p;
    EXPECT_LT(chi2, 3.0 * bins) << "n=" << c.n << " p=" << c.p;
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential_mean(2.5);
  EXPECT_NEAR(sum / trials, 2.5, 0.1);
  EXPECT_THROW((void)rng.exponential_mean(0.0), std::invalid_argument);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  for (std::uint64_t k : {1ULL, 5ULL, 50ULL, 100ULL}) {
    const auto sample = rng.sample_without_replacement(100, k);
    EXPECT_EQ(sample.size(), k);
    const std::set<std::uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (std::uint64_t v : sample) EXPECT_LT(v, 100U);
  }
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4),
               std::invalid_argument);
}

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  // Each element of [0, 10) should appear in a 3-sample about 30% of runs.
  Rng rng(23);
  std::vector<int> hits(10, 0);
  const int trials = 10000;
  for (int t = 0; t < trials; ++t) {
    for (std::uint64_t v : rng.sample_without_replacement(10, 3)) {
      ++hits[v];
    }
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.3, 0.03);
  }
}

TEST(RngTest, SplitStreamsAreIndependentAndStable) {
  Rng base(99);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  Rng s1_again = base.split(1);
  EXPECT_DOUBLE_EQ(s1.uniform01(), s1_again.uniform01());
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s1.uniform01() == s2.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace deproto::sim
