#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace deproto::sim {
namespace {

TEST(NetworkTest, RejectsInvalidOptions) {
  EventQueue queue;
  Rng rng(1);
  EXPECT_THROW(Network(queue, rng, {.loss = -0.1}), std::invalid_argument);
  EXPECT_THROW(Network(queue, rng, {.loss = 1.0}), std::invalid_argument);
  // Extra parens: the brace initializer's comma would otherwise split the
  // macro arguments.
  EXPECT_THROW(
      (Network(queue, rng, {.latency_min = 0.5, .latency_max = 0.1})),
      std::invalid_argument);
  EXPECT_THROW(Network(queue, rng, {.latency_min = -0.01}),
               std::invalid_argument);
}

TEST(NetworkTest, OnLostFiresAtTheWouldBeDeliveryTime) {
  // A degenerate latency band pins every arrival -- delivered or lost --
  // to exactly send_time + L: the timeout surrogate must not fire early
  // (a receiver cannot know about a loss before the silence is
  // distinguishable from latency).
  EventQueue queue;
  Rng rng(7);
  const double kLatency = 0.25;
  Network network(
      queue, rng,
      {.loss = 0.5, .latency_min = kLatency, .latency_max = kLatency});
  std::vector<double> delivered_at;
  std::vector<double> lost_at;
  for (int k = 0; k < 64; ++k) {
    const double sent_at = queue.now();
    network.send(
        [&, sent_at] { delivered_at.push_back(queue.now() - sent_at); },
        [&, sent_at] { lost_at.push_back(queue.now() - sent_at); });
    queue.run_until(queue.now() + 0.01);  // stagger send times
  }
  queue.run_all();
  ASSERT_FALSE(delivered_at.empty());
  ASSERT_FALSE(lost_at.empty());
  for (const double dt : delivered_at) EXPECT_DOUBLE_EQ(dt, kLatency);
  for (const double dt : lost_at) EXPECT_DOUBLE_EQ(dt, kLatency);
}

TEST(NetworkTest, CountersAreMonotoneAndConsistent) {
  EventQueue queue;
  Rng rng(11);
  Network network(queue, rng, {.loss = 0.3});
  std::uint64_t last_sent = 0;
  std::uint64_t last_dropped = 0;
  for (int k = 0; k < 500; ++k) {
    network.send([] {}, [] {});
    EXPECT_EQ(network.sent(), last_sent + 1);  // exactly one per send
    EXPECT_GE(network.dropped(), last_dropped);
    EXPECT_LE(network.dropped() - last_dropped, 1U);
    last_sent = network.sent();
    last_dropped = network.dropped();
  }
  EXPECT_EQ(network.sent(), 500U);
  EXPECT_GT(network.dropped(), 0U);
  EXPECT_LT(network.dropped(), 500U);
  // Delivered + lost callbacks account for every message once drained.
  queue.run_all();
}

TEST(NetworkTest, ZeroLatencyBandDeliversAtSendTime) {
  EventQueue queue;
  Rng rng(3);
  Network network(queue, rng,
                  {.loss = 0.0, .latency_min = 0.0, .latency_max = 0.0});
  int delivered = 0;
  double delivered_time = -1.0;
  queue.schedule(1.5, [&] {
    network.send([&] {
      ++delivered;
      delivered_time = queue.now();
    });
  });
  queue.run_all();
  EXPECT_EQ(delivered, 1);
  EXPECT_DOUBLE_EQ(delivered_time, 1.5);  // no artificial minimum delay
  EXPECT_EQ(network.sent(), 1U);
  EXPECT_EQ(network.dropped(), 0U);
}

TEST(NetworkTest, LossySendsWithoutLostHandlerStillCount) {
  EventQueue queue;
  Rng rng(5);
  Network network(queue, rng, {.loss = 0.5});
  int delivered = 0;
  for (int k = 0; k < 200; ++k) network.send([&] { ++delivered; });
  queue.run_all();
  EXPECT_EQ(network.sent(), 200U);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered),
            network.sent() - network.dropped());
}

}  // namespace
}  // namespace deproto::sim
