// The unified Simulator interface: both backends are programmable through
// the same fault/scheduling/seeding surface, the event backend honors
// rejoin_state()/on_crash() (it used to hard-code recovery into state 0),
// and hand-written PeriodicProtocols run on the event backend via the
// timer-driven adapter.

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "core/synthesis.hpp"
#include "ode/catalog.hpp"
#include "protocols/epidemic.hpp"
#include "protocols/lv_majority.hpp"
#include "sim/event_sim.hpp"
#include "sim/sync_sim.hpp"

namespace deproto::sim {
namespace {

/// Minimal protocol with observable fault hooks: state 0 flips to 1 with
/// probability q; rejoiners land in `rejoin`; crashes are counted.
class FlipProtocol final : public PeriodicProtocol {
 public:
  explicit FlipProtocol(double q, std::size_t rejoin = 0)
      : q_(q), rejoin_(rejoin) {}
  [[nodiscard]] std::size_t num_states() const override { return 2; }
  [[nodiscard]] std::size_t rejoin_state() const override { return rejoin_; }
  void on_crash(ProcessId) override { ++crashes_seen_; }

  void execute_period(Group& group, Rng& rng,
                      MetricsCollector& /*metrics*/) override {
    const std::size_t k = rng.binomial(group.count(0), q_);
    for (std::size_t i = 0; i < k; ++i) {
      group.transition(group.random_member(0, rng), 1);
    }
    ++periods_executed_;
  }

  [[nodiscard]] int crashes_seen() const { return crashes_seen_; }
  [[nodiscard]] int periods_executed() const { return periods_executed_; }

 private:
  double q_;
  std::size_t rejoin_;
  int crashes_seen_ = 0;
  int periods_executed_ = 0;
};

/// The point of the interface: one fault program, any backend.
void program_faults(Simulator& simulator) {
  simulator.seed_states({90, 10});
  simulator.schedule_massive_failure(2.0, 0.5);
  simulator.schedule_crash(0, 4.0, /*recover_time=*/6.0);
  simulator.run_for(10.0);
}

TEST(SimulatorInterfaceTest, OneFaultProgramDrivesEitherBackend) {
  FlipProtocol sync_protocol(0.0);
  SyncSimulator sync(100, sync_protocol, 1);
  program_faults(sync);

  FlipProtocol event_protocol(0.0);
  EventSimulator event(100, event_protocol, 1);
  program_faults(event);

  for (Simulator* simulator : {static_cast<Simulator*>(&sync),
                               static_cast<Simulator*>(&event)}) {
    // 50 crashed at t=2; pid 0 crashed at t=4 and recovered at t=6 (so a
    // net change only if pid 0 survived the massive failure).
    EXPECT_GE(simulator->group().total_alive(), 50U);
    EXPECT_LE(simulator->group().total_alive(), 51U);
    EXPECT_GE(simulator->now(), 10.0);
    EXPECT_GE(simulator->metrics().samples().size(), 10U);
  }
  EXPECT_GE(sync_protocol.crashes_seen(), 50);
  EXPECT_GE(event_protocol.crashes_seen(), 50);
}

TEST(SimulatorInterfaceTest, SyncScheduleCrashRecoversIntoRejoinState) {
  FlipProtocol protocol(0.0, /*rejoin=*/1);
  SyncSimulator simulator(10, protocol, 2);
  simulator.schedule_crash(3, 1.0, /*recover_time=*/4.0);
  simulator.run(3);
  EXPECT_FALSE(simulator.group().alive(3));
  simulator.run(3);
  EXPECT_TRUE(simulator.group().alive(3));
  EXPECT_EQ(simulator.group().state_of(3), 1U);
  EXPECT_EQ(protocol.crashes_seen(), 1);
}

TEST(SimulatorInterfaceTest, EventRecoveryHonorsRejoinState) {
  // The pre-unification EventSimulator hard-coded recover_state = 0;
  // LvMajority rejoins undecided (state kZ = 2). All-undecided seeding
  // keeps the dynamics static, so the recovered state is exactly the
  // rejoin state.
  proto::LvMajority protocol({});
  EventSimulator simulator(50, protocol, 3);
  simulator.seed_states({0, 0, 50});
  simulator.schedule_crash(7, 0.5, /*recover_time=*/1.5);
  simulator.run_for(1.0);
  EXPECT_FALSE(simulator.group().alive(7));
  simulator.run_for(1.0);
  EXPECT_TRUE(simulator.group().alive(7));
  EXPECT_EQ(simulator.group().state_of(7), proto::LvMajority::kZ);
}

TEST(SimulatorInterfaceTest, EventMachineModeRecoversIntoStateZero) {
  // Raw synthesized machines have no rejoin hook; state 0 is the contract
  // (matching MachineExecutor's PeriodicProtocol default on sync).
  const auto result = core::synthesize(ode::catalog::epidemic());
  EventSimulator simulator(20, result.machine, 4);
  simulator.seed_states({0, 20});  // everyone infected
  simulator.schedule_crash(5, 0.5, /*recover_time=*/1.5);
  simulator.run_for(2.0);
  EXPECT_TRUE(simulator.group().alive(5));
  // Rejoined susceptible (state 0), not in its pre-crash infected state;
  // its first post-recovery action falls after t = 2, so the state is
  // still untouched here.
  EXPECT_EQ(simulator.group().state_of(5), 0U);
}

TEST(SimulatorInterfaceTest, SyncScheduleCrashQuantizesLikeMassiveFailure) {
  // The contract: a fault at time t fires at the start of the first period
  // >= t -- the same boundary schedule_massive_failure uses and the moment
  // the event backend crashes the process at whole-period times.
  FlipProtocol protocol(0.0);
  SyncSimulator simulator(10, protocol, 13);
  simulator.schedule_crash(2, 4.0);
  simulator.run(4);  // periods 0..3: the crash is not due yet
  EXPECT_TRUE(simulator.group().alive(2));
  simulator.run(1);  // period 4 starts at t = 4.0
  EXPECT_FALSE(simulator.group().alive(2));
}

TEST(SimulatorInterfaceTest, AttachChurnReplacesThePreviousTrace) {
  // Same last-trace-wins semantics on both backends: re-attaching after
  // (say) correcting the rate must not replay the abandoned trace.
  const ChurnTrace first =
      ChurnTrace::from_events({ChurnEvent{0.2, 2, false}});
  const ChurnTrace second =
      ChurnTrace::from_events({ChurnEvent{0.2, 5, false}});

  FlipProtocol sync_protocol(0.0);
  SyncSimulator sync(10, sync_protocol, 14);
  sync.attach_churn(first, 10.0);
  sync.attach_churn(second, 10.0);
  sync.run_for(5.0);

  FlipProtocol event_protocol(0.0);
  EventSimulator event(10, event_protocol, 14);
  event.attach_churn(first, 10.0);
  event.attach_churn(second, 10.0);
  event.run_for(5.0);

  for (Simulator* simulator : {static_cast<Simulator*>(&sync),
                               static_cast<Simulator*>(&event)}) {
    EXPECT_TRUE(simulator->group().alive(2));
    EXPECT_FALSE(simulator->group().alive(5));
    EXPECT_EQ(simulator->group().total_alive(), 9U);
  }
}

TEST(SimulatorInterfaceTest, EventChurnPlaybackCrashesAndRecovers) {
  FlipProtocol protocol(0.0, /*rejoin=*/1);
  EventSimulator simulator(10, protocol, 5);
  // Host 3 leaves at hour 0.1 and rejoins at hour 0.5 (periods: x10).
  simulator.attach_churn(ChurnTrace::from_events({
                             ChurnEvent{0.1, 3, false},
                             ChurnEvent{0.5, 3, true},
                         }),
                         10.0);
  simulator.run_for(2.0);  // departure at t=1.0 applied, rejoin not yet
  EXPECT_FALSE(simulator.group().alive(3));
  EXPECT_EQ(protocol.crashes_seen(), 1);
  simulator.run_for(4.0);  // covers the rejoin at t=5.0
  EXPECT_TRUE(simulator.group().alive(3));
  EXPECT_EQ(simulator.group().state_of(3), 1U);
}

TEST(SimulatorInterfaceTest, EventCrashRecoveryKeepsPopulationRoughlyConstant) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  EventSimulator simulator(2000, result.machine, 6);
  simulator.seed_states({1999, 1});
  simulator.set_crash_recovery(0.01, 10.0);
  simulator.run_for(300.0);
  // Same steady state the sync backend reaches: ~1% crash/period with ~11
  // period downtime => ~10% down.
  const double alive =
      static_cast<double>(simulator.group().total_alive()) / 2000.0;
  EXPECT_GT(alive, 0.8);
  EXPECT_LT(alive, 0.98);
}

TEST(SimulatorInterfaceTest, SyncDisarmedCrashRecoveryStillDrainsRecoveries) {
  // Disarming only stops new crashes; hosts already down when the process
  // is disarmed still recover (the event backend's queued recoveries fire
  // regardless, so the sync backend must match).
  FlipProtocol protocol(0.0);
  SyncSimulator simulator(200, protocol, 15);
  simulator.set_crash_recovery(0.2, 3.0);
  simulator.run(10);
  EXPECT_LT(simulator.group().total_alive(), 200U);
  simulator.set_crash_recovery(0.0, 0.0);
  simulator.run(60);  // far past every pending recovery time
  EXPECT_EQ(simulator.group().total_alive(), 200U);
}

TEST(SimulatorInterfaceTest, EventCrashRecoveryReconfiguresWithoutStacking) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  EventSimulator simulator(200, result.machine, 16);
  simulator.seed_states({199, 1});
  simulator.set_crash_recovery(0.3, 0.0);  // crash-stop
  simulator.run_for(3.0);
  simulator.set_crash_recovery(0.0, 0.0);  // disarm: crashes stop
  const std::size_t frozen = simulator.group().total_alive();
  EXPECT_LT(frozen, 200U);
  simulator.run_for(10.0);
  EXPECT_EQ(simulator.group().total_alive(), frozen);
  // Rapid re-arms supersede (never stack) the tick chain: the population
  // keeps decaying at the single configured 30%/period rate, not at a
  // multiple of it.
  simulator.set_crash_recovery(0.3, 0.0);
  simulator.set_crash_recovery(0.3, 0.0);
  simulator.set_crash_recovery(0.3, 0.0);
  simulator.run_for(4.0);
  const double expected =
      static_cast<double>(frozen) * 0.7 * 0.7 * 0.7 * 0.7;
  EXPECT_GT(static_cast<double>(simulator.group().total_alive()),
            0.35 * expected);  // stacked chains would decay ~20x further
  EXPECT_LT(simulator.group().total_alive(), frozen);
}

TEST(SimulatorInterfaceTest, EventCrashStopWithoutRecoveryDrains) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  EventSimulator simulator(500, result.machine, 7);
  simulator.seed_states({499, 1});
  simulator.set_crash_recovery(0.05, 0.0);  // permanent crashes
  simulator.run_for(200.0);
  EXPECT_LT(simulator.group().total_alive(), 10U);
}

TEST(SimulatorInterfaceTest, EventValidatesFaultArguments) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  EventSimulator simulator(10, result.machine, 8);
  EXPECT_THROW(simulator.schedule_massive_failure(1.0, 1.5),
               std::invalid_argument);
  EXPECT_THROW(simulator.set_crash_recovery(2.0, 1.0),
               std::invalid_argument);
  ChurnTrace trace;
  EXPECT_THROW(simulator.attach_churn(trace, 0.0), std::invalid_argument);
}

TEST(SimulatorInterfaceTest, HandWrittenEpidemicRunsOnEventBackend) {
  // The timer-driven PeriodicProtocol adapter: the Section 1 pull epidemic
  // (a hand-written protocol, not a synthesized machine) completes on the
  // asynchronous backend.
  proto::PullEpidemic protocol;
  EventSimulator simulator(300, protocol, 9);
  simulator.seed_states({299, 1});
  simulator.run_for(40.0);
  EXPECT_EQ(simulator.group().count(proto::PullEpidemic::kInfected), 300U);
}

TEST(SimulatorInterfaceTest, DriverModeExecutesOnePeriodPerTimeUnit) {
  FlipProtocol protocol(0.5);
  EventSimOptions options;
  options.clock_drift = 0.0;  // exactly one period per time unit
  EventSimulator simulator(100, protocol, 10, options);
  simulator.run_for(20.0);
  EXPECT_EQ(protocol.periods_executed(), 20);
  EXPECT_LT(simulator.group().count(0), 5U);
}

TEST(SimulatorInterfaceTest, RunForAdvancesNow) {
  FlipProtocol protocol(0.0);
  SyncSimulator sync(10, protocol, 11);
  sync.run_for(3.0);
  EXPECT_DOUBLE_EQ(sync.now(), 3.0);
  sync.run_for(2.5);  // sync rounds partial periods up to whole rounds
  EXPECT_DOUBLE_EQ(sync.now(), 6.0);

  const auto result = core::synthesize(ode::catalog::epidemic());
  EventSimulator event(10, result.machine, 12);
  event.run_for(3.0);
  EXPECT_DOUBLE_EQ(event.now(), 3.0);
  event.run_for(2.5);  // event time is genuinely fractional
  EXPECT_DOUBLE_EQ(event.now(), 5.5);
}

}  // namespace
}  // namespace deproto::sim
