#include "ode/taxonomy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ode/catalog.hpp"

namespace deproto::ode {
namespace {

TEST(TaxonomyTest, EpidemicIsCompletelyPartitionableAndRestricted) {
  const EquationSystem sys = catalog::epidemic();
  EXPECT_TRUE(is_complete(sys));
  EXPECT_TRUE(is_completely_partitionable(sys));
  EXPECT_TRUE(is_restricted_polynomial(sys));
}

TEST(TaxonomyTest, EndemicIsCompletelyPartitionableAndRestricted) {
  const EquationSystem sys = catalog::endemic(4.0, 1.0, 0.01);
  const TaxonomyReport report = classify(sys);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.completely_partitionable);
  EXPECT_TRUE(report.restricted_polynomial);
  EXPECT_EQ(report.partition.size(), 3U);  // three {+T, -T} pairs
}

TEST(TaxonomyTest, LvOriginalIsNotComplete) {
  const EquationSystem sys = catalog::lv_original();
  EXPECT_FALSE(is_complete(sys));
  const TaxonomyReport report = classify(sys);
  EXPECT_FALSE(report.completely_partitionable);
  EXPECT_NE(report.detail.find("not complete"), std::string::npos);
}

TEST(TaxonomyTest, LvPartitionableIsExactlyThat) {
  const EquationSystem sys = catalog::lv_partitionable();
  const TaxonomyReport report = classify(sys);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.completely_partitionable);
  EXPECT_TRUE(report.restricted_polynomial);
  EXPECT_EQ(report.partition.size(), 4U);  // the two -3xy pair separately
}

TEST(TaxonomyTest, InvitationIsPartitionableButNotRestricted) {
  const EquationSystem sys = catalog::invitation(0.2);
  EXPECT_TRUE(is_completely_partitionable(sys));
  // -c*y on the rhs of x-dot has i_x = 0.
  EXPECT_FALSE(is_restricted_polynomial(sys));
}

TEST(TaxonomyTest, ConstantFlowIsPartitionable) {
  const EquationSystem sys = catalog::constant_flow(0.3);
  EXPECT_TRUE(is_completely_partitionable(sys));
  EXPECT_FALSE(is_restricted_polynomial(sys));
}

TEST(TaxonomyTest, SirIsCompleteButLogisticIsNot) {
  EXPECT_TRUE(is_complete(catalog::sir(0.5, 0.1)));
  EXPECT_FALSE(is_complete(catalog::logistic(1.0)));
}

TEST(TaxonomyTest, CompleteButNotPartitionable) {
  // x-dot = -x^2, y-dot = +x*y: sums to zero only at no point; actually
  // build a complete system whose terms do not pair: x-dot = -2xy,
  // y-dot = +xy + x y (same monomial, but 2 + (-2) pair only if
  // coefficients match one-to-one: -2xy vs two +1xy -- not pairable).
  EquationSystem sys({"x", "y"});
  sys.add_term("x", -2.0, {{"x", 1}, {"y", 1}});
  sys.add_term("y", +1.0, {{"x", 1}, {"y", 1}});
  sys.add_term("y", +1.0, {{"x", 1}, {"y", 1}});
  EXPECT_TRUE(is_complete(sys));
  EXPECT_FALSE(is_completely_partitionable(sys));
  const PartitionResult partition = partition_terms(sys);
  EXPECT_EQ(partition.pairs.size(), 0U);
  EXPECT_EQ(partition.unpaired.size(), 3U);
}

// Property: every partition pair is a genuine {+T, -T} pair -- same
// monomial, coefficients summing to zero, negative side is negative.
class PartitionWitnessTest
    : public ::testing::TestWithParam<EquationSystem> {};

TEST_P(PartitionWitnessTest, PairsSumToZero) {
  const EquationSystem& sys = GetParam();
  const TaxonomyReport report = classify(sys);
  ASSERT_TRUE(report.completely_partitionable);
  // Every term is used exactly once.
  std::size_t used = 0;
  for (const PartitionPair& pair : report.partition) {
    const Term& neg = sys.rhs(pair.negative.equation)[pair.negative.term];
    const Term& pos = sys.rhs(pair.positive.equation)[pair.positive.term];
    EXPECT_LT(neg.coefficient(), 0.0);
    EXPECT_GT(pos.coefficient(), 0.0);
    EXPECT_TRUE(neg.same_monomial(pos));
    EXPECT_NEAR(neg.coefficient() + pos.coefficient(), 0.0, 1e-12);
    used += 2;
  }
  EXPECT_EQ(used, sys.total_terms());
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, PartitionWitnessTest,
    ::testing::Values(catalog::epidemic(), catalog::endemic(4.0, 1.0, 0.01),
                      catalog::endemic(2.0, 0.1, 0.001),
                      catalog::lv_partitionable(), catalog::sir(0.5, 0.1),
                      catalog::invitation(0.25), catalog::constant_flow(0.5)));

}  // namespace
}  // namespace deproto::ode
