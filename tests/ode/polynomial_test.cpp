#include "ode/polynomial.hpp"

#include <gtest/gtest.h>

namespace deproto::ode {
namespace {

TEST(PolynomialTest, EvaluateSumsTerms) {
  // x^2 - 2y at (3, 4) = 9 - 8 = 1.
  const Polynomial p{Term(1.0, {2}), Term(-2.0, {0, 1})};
  const std::vector<double> point{3.0, 4.0};
  EXPECT_DOUBLE_EQ(evaluate(p, point), 1.0);
}

TEST(PolynomialTest, SimplifiedMergesLikeTerms) {
  const Polynomial p{Term(1.0, {1, 1}), Term(2.0, {1, 1}), Term(-1.0, {2})};
  const Polynomial s = simplified(p);
  ASSERT_EQ(s.size(), 2U);
  EXPECT_DOUBLE_EQ(evaluate(s, std::vector<double>{2.0, 3.0}),
                   evaluate(p, std::vector<double>{2.0, 3.0}));
}

TEST(PolynomialTest, SimplifiedDropsCancellingTerms) {
  const Polynomial p{Term(1.0, {1}), Term(-1.0, {1})};
  EXPECT_TRUE(simplified(p).empty());
}

TEST(PolynomialTest, SimplifiedKeepsSeparateMonomials) {
  const Polynomial p{Term(1.0, {1, 0}), Term(1.0, {0, 1})};
  EXPECT_EQ(simplified(p).size(), 2U);
}

TEST(PolynomialTest, SumConcatenatesWithoutMerging) {
  const Polynomial p{Term(1.0, {1})};
  const Polynomial q{Term(2.0, {1})};
  EXPECT_EQ(sum(p, q).size(), 2U);
}

TEST(PolynomialTest, EquivalentDetectsAlgebraicEquality) {
  const Polynomial p{Term(1.0, {1}), Term(1.0, {1})};
  const Polynomial q{Term(2.0, {1})};
  EXPECT_TRUE(equivalent(p, q));
  const Polynomial r{Term(2.0000001, {1})};
  EXPECT_FALSE(equivalent(p, r, 1e-9));
}

TEST(PolynomialTest, NegatedAndScaled) {
  const Polynomial p{Term(1.0, {1}), Term(-3.0, {0, 1})};
  EXPECT_TRUE(equivalent(negated(negated(p)), p));
  EXPECT_TRUE(equivalent(scaled(p, 2.0), sum(p, p)));
}

TEST(PolynomialTest, DerivativeTermwise) {
  // d/dy (x*y + y^2 - 7) = x + 2y.
  const Polynomial p{Term(1.0, {1, 1}), Term(1.0, {0, 2}), Term(-7.0, {})};
  const Polynomial d = derivative(p, 1);
  const Polynomial expected{Term(1.0, {1, 0}), Term(2.0, {0, 1})};
  EXPECT_TRUE(equivalent(d, expected));
}

TEST(PolynomialTest, ToStringOfEmptyIsZero) {
  const std::vector<std::string> names{"x"};
  EXPECT_EQ(to_string(Polynomial{}, names), "0");
}

}  // namespace
}  // namespace deproto::ode
