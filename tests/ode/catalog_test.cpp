#include "ode/catalog.hpp"

#include <gtest/gtest.h>

#include "ode/taxonomy.hpp"

namespace deproto::ode {
namespace {

TEST(CatalogTest, EpidemicMatchesEquationZero) {
  const EquationSystem sys = catalog::epidemic();
  // x-dot = -xy at the canonical starting point.
  std::vector<double> x{0.999, 0.001};
  std::vector<double> d(2);
  sys.evaluate(x, d);
  EXPECT_NEAR(d[0], -0.000999, 1e-12);
  EXPECT_NEAR(d[1], +0.000999, 1e-12);
}

TEST(CatalogTest, EpidemicRawNormalizesToEpidemic) {
  const EquationSystem raw = catalog::epidemic_raw(64.0);
  std::vector<double> counts{32.0, 32.0};
  std::vector<double> d(2);
  raw.evaluate(counts, d);
  EXPECT_NEAR(d[0], -16.0, 1e-12);  // -xy/N = -32*32/64
}

TEST(CatalogTest, EndemicStructure) {
  const EquationSystem sys = catalog::endemic(4.0, 1.0, 0.01);
  EXPECT_EQ(sys.names(), (std::vector<std::string>{"x", "y", "z"}));
  // At (x, y, z) = (0.25, 0.5, 0.25):
  //   x-dot = -4*0.25*0.5 + 0.01*0.25 = -0.4975
  //   y-dot = +0.5       - 1.0*0.5    = 0.0
  //   z-dot = +0.5       - 0.0025     = 0.4975
  std::vector<double> x{0.25, 0.5, 0.25};
  std::vector<double> d(3);
  sys.evaluate(x, d);
  EXPECT_NEAR(d[0], -0.4975, 1e-12);
  EXPECT_NEAR(d[1], 0.0, 1e-12);
  EXPECT_NEAR(d[2], +0.4975, 1e-12);
}

TEST(CatalogTest, LvOriginalRhs) {
  const EquationSystem sys = catalog::lv_original();
  // x-dot = 3x(1 - x - 2y).
  std::vector<double> x{0.2, 0.3};
  std::vector<double> d(2);
  sys.evaluate(x, d);
  EXPECT_NEAR(d[0], 3.0 * 0.2 * (1.0 - 0.2 - 0.6), 1e-12);
  EXPECT_NEAR(d[1], 3.0 * 0.3 * (1.0 - 0.3 - 0.4), 1e-12);
}

TEST(CatalogTest, LvPartitionableAgreesWithOriginalOnSimplex) {
  const EquationSystem part = catalog::lv_partitionable();
  const EquationSystem orig = catalog::lv_original();
  for (double x0 : {0.1, 0.3, 0.5}) {
    for (double y0 : {0.1, 0.2, 0.4}) {
      std::vector<double> p3{x0, y0, 1.0 - x0 - y0};
      std::vector<double> p2{x0, y0};
      std::vector<double> d3(3), d2(2);
      part.evaluate(p3, d3);
      orig.evaluate(p2, d2);
      EXPECT_NEAR(d3[0], d2[0], 1e-12);
      EXPECT_NEAR(d3[1], d2[1], 1e-12);
      EXPECT_NEAR(d3[2], -(d2[0] + d2[1]), 1e-12);
    }
  }
}

TEST(CatalogTest, EndemicLinearizedIsMatrixA) {
  const double sigma = 2.0, alpha = 0.01, gamma = 1.0;
  const EquationSystem sys =
      catalog::endemic_linearized(sigma, alpha, gamma);
  // t-dot = -(sigma+alpha) t - sigma(gamma+alpha) u; u-dot = t.
  std::vector<double> p{1.0, 1.0};
  std::vector<double> d(2);
  sys.evaluate(p, d);
  EXPECT_NEAR(d[0], -(sigma + alpha) - sigma * (gamma + alpha), 1e-12);
  EXPECT_NEAR(d[1], 1.0, 1e-12);
}

TEST(CatalogTest, SirAndLogisticShapes) {
  EXPECT_EQ(catalog::sir(0.5, 0.1).num_vars(), 3U);
  EXPECT_EQ(catalog::logistic(2.0).num_vars(), 1U);
  EXPECT_TRUE(is_completely_partitionable(catalog::sir(0.5, 0.1)));
}

TEST(CatalogTest, InvitationAndConstantFlowShapes) {
  EXPECT_EQ(catalog::invitation(0.1).num_vars(), 2U);
  EXPECT_EQ(catalog::constant_flow(0.1).num_vars(), 2U);
}

}  // namespace
}  // namespace deproto::ode
