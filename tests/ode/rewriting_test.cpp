#include "ode/rewriting.hpp"

#include <gtest/gtest.h>

#include "ode/catalog.hpp"
#include "ode/taxonomy.hpp"

namespace deproto::ode {
namespace {

TEST(RewritingTest, CompleteAddsSlackClosingTheSystem) {
  const EquationSystem lv = catalog::lv_original();
  const EquationSystem closed = complete(lv, "z");
  EXPECT_EQ(closed.num_vars(), 3U);
  EXPECT_TRUE(is_complete(closed));
  // The original right-hand sides are untouched.
  EXPECT_TRUE(equivalent(closed.rhs(0), lv.rhs(0)));
  EXPECT_TRUE(equivalent(closed.rhs(1), lv.rhs(1)));
}

TEST(RewritingTest, CompleteRejectsNameCollision) {
  EXPECT_THROW((void)complete(catalog::epidemic(), "x"),
               std::invalid_argument);
}

TEST(RewritingTest, CompletedLvMatchesPartitionableFormOnTheSimplex) {
  // Eq. (7) restricted to z = 1 - x - y must reproduce eq. (6).
  const EquationSystem reduced =
      eliminate_last(catalog::lv_partitionable(), 1.0);
  EXPECT_TRUE(equivalent(reduced, catalog::lv_original()));
}

TEST(RewritingTest, NormalizeScalesByDegree) {
  // x-dot = -(1/N) x y over numbers becomes x-dot = -x y over fractions.
  const double N = 1000.0;
  const EquationSystem normalized = normalize(catalog::epidemic_raw(N), N);
  EXPECT_TRUE(equivalent(normalized, catalog::epidemic()));
}

TEST(RewritingTest, NormalizeRejectsBadN) {
  EXPECT_THROW((void)normalize(catalog::epidemic(), 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)normalize(catalog::epidemic(), -5.0),
               std::invalid_argument);
}

TEST(RewritingTest, ExpandConstantsPreservesValueOnTheSimplex) {
  const EquationSystem sys = catalog::constant_flow(0.3);
  const EquationSystem expanded = expand_constants(sys);
  // No bare constants remain.
  for (std::size_t v = 0; v < expanded.num_vars(); ++v) {
    for (const Term& t : expanded.rhs(v)) {
      EXPECT_FALSE(t.is_constant());
    }
  }
  // On Sum x = 1 the two systems agree.
  const std::vector<double> point{0.4, 0.6};
  std::vector<double> a(2), b(2);
  sys.evaluate(point, a);
  expanded.evaluate(point, b);
  EXPECT_NEAR(a[0], b[0], 1e-12);
  EXPECT_NEAR(a[1], b[1], 1e-12);
}

TEST(RewritingTest, ReduceOrderPaperExample) {
  // x-ddot + x-dot = x  ==>  x-dot = u; u-dot = x - u; z-dot = -x.
  const EquationSystem sys =
      reduce_order(catalog::second_order_example(), true, "z");
  ASSERT_EQ(sys.num_vars(), 3U);
  EXPECT_EQ(sys.name(0), "x");
  EXPECT_EQ(sys.name(1), "x_1");
  EXPECT_EQ(sys.name(2), "z");
  EXPECT_TRUE(is_complete(sys));

  // d(x)/dt = x_1.
  EXPECT_TRUE(equivalent(sys.rhs(0), Polynomial{Term(1.0, {0, 1})}));
  // d(x_1)/dt = x - x_1.
  EXPECT_TRUE(equivalent(sys.rhs(1),
                         Polynomial{Term(1.0, {1, 0}), Term(-1.0, {0, 1})}));
  // d(z)/dt = -x  (the -x_1 and +x_1 contributions cancel).
  EXPECT_TRUE(
      equivalent(simplified(sys.rhs(2)), Polynomial{Term(-1.0, {1, 0})}));
}

TEST(RewritingTest, ReduceOrderWithoutSlack) {
  const EquationSystem sys =
      reduce_order(catalog::second_order_example(), false);
  EXPECT_EQ(sys.num_vars(), 2U);
  EXPECT_FALSE(is_complete(sys));
}

TEST(RewritingTest, ReduceOrderThirdOrderChain) {
  // x''' = -x  ==>  x-dot = x_1, x_1-dot = x_2, x_2-dot = -x.
  HigherOrderEquation eq;
  eq.order = 3;
  eq.rhs.push_back(Term(-1.0, {1U}));
  const EquationSystem sys = reduce_order(eq, false);
  ASSERT_EQ(sys.num_vars(), 3U);
  EXPECT_TRUE(equivalent(sys.rhs(0), Polynomial{Term(1.0, {0, 1, 0})}));
  EXPECT_TRUE(equivalent(sys.rhs(1), Polynomial{Term(1.0, {0, 0, 1})}));
  EXPECT_TRUE(equivalent(sys.rhs(2), Polynomial{Term(-1.0, {1, 0, 0})}));
}

TEST(RewritingTest, ReduceOrderRejectsTooHighDerivatives) {
  HigherOrderEquation eq;
  eq.order = 2;
  eq.rhs.push_back(Term(1.0, {0, 0, 1}));  // references x'' in g
  EXPECT_THROW((void)reduce_order(eq), std::invalid_argument);
}

TEST(RewritingTest, EliminateLastExpandsPowers) {
  // x-dot = z^2 over (x, z) with z = 1 - x:
  // reduced: x-dot = (1-x)^2 = 1 - 2x + x^2.
  EquationSystem sys({"x", "z"});
  sys.add_term("x", 1.0, {{"z", 2}});
  sys.add_term("z", -1.0, {{"z", 2}});
  const EquationSystem reduced = eliminate_last(sys, 1.0);
  ASSERT_EQ(reduced.num_vars(), 1U);
  const Polynomial expected{Term(1.0, {}), Term(-2.0, {1}), Term(1.0, {2})};
  EXPECT_TRUE(equivalent(reduced.rhs(0), expected));
}

TEST(RewritingTest, EliminateThenEvaluateAgreesWithFullSystem) {
  const EquationSystem full = catalog::endemic(4.0, 1.0, 0.01);
  const EquationSystem reduced = eliminate_last(full, 1.0);
  const std::vector<double> xy{0.3, 0.2};
  const std::vector<double> xyz{0.3, 0.2, 0.5};
  std::vector<double> dr(2), df(3);
  reduced.evaluate(xy, dr);
  full.evaluate(xyz, df);
  EXPECT_NEAR(dr[0], df[0], 1e-12);
  EXPECT_NEAR(dr[1], df[1], 1e-12);
}

}  // namespace
}  // namespace deproto::ode
