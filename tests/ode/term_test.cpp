#include "ode/term.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace deproto::ode {
namespace {

TEST(TermTest, DefaultIsZeroConstant) {
  const Term t;
  EXPECT_DOUBLE_EQ(t.coefficient(), 0.0);
  EXPECT_TRUE(t.is_constant());
  EXPECT_EQ(t.total_degree(), 0U);
}

TEST(TermTest, EvaluateMonomial) {
  // -2 * x * y^2 at (3, 5): -2 * 3 * 25 = -150.
  const Term t(-2.0, {1, 2});
  const std::vector<double> point{3.0, 5.0};
  EXPECT_DOUBLE_EQ(t.evaluate(point), -150.0);
}

TEST(TermTest, EvaluateConstant) {
  const Term t(7.5, {});
  const std::vector<double> point{1.0, 2.0};
  EXPECT_DOUBLE_EQ(t.evaluate(point), 7.5);
}

TEST(TermTest, EvaluateThrowsOnShortPoint) {
  const Term t(1.0, {0, 0, 1});
  const std::vector<double> point{1.0};
  EXPECT_THROW((void)t.evaluate(point), std::out_of_range);
}

TEST(TermTest, ExponentBeyondVectorIsZero) {
  const Term t(1.0, {2});
  EXPECT_EQ(t.exponent(0), 2U);
  EXPECT_EQ(t.exponent(5), 0U);
}

TEST(TermTest, TotalDegreeCountsOccurrences) {
  // x^2 * y: |T| = 3 -- the paper's variable-occurrence count.
  const Term t(1.0, {2, 1});
  EXPECT_EQ(t.total_degree(), 3U);
  EXPECT_EQ(t.variable_occurrences(), 3U);
  EXPECT_EQ(t.distinct_variables(), 2U);
}

TEST(TermTest, SameMonomialIgnoresTrailingZeros) {
  const Term a(2.0, {1, 1});
  const Term b(-2.0, {1, 1, 0, 0});
  const Term c(2.0, {1, 2});
  EXPECT_TRUE(a.same_monomial(b));
  EXPECT_FALSE(a.same_monomial(c));
}

TEST(TermTest, NegatedFlipsSign) {
  const Term t(3.0, {1});
  EXPECT_DOUBLE_EQ(t.negated().coefficient(), -3.0);
  EXPECT_TRUE(t.negated().same_monomial(t));
}

TEST(TermTest, ScaledMultipliesCoefficient) {
  const Term t(3.0, {1});
  EXPECT_DOUBLE_EQ(t.scaled(0.5).coefficient(), 1.5);
}

TEST(TermTest, DerivativePowerRule) {
  // d/dx (4 x^3 y) = 12 x^2 y.
  const Term t(4.0, {3, 1});
  const Term d = t.derivative(0);
  EXPECT_DOUBLE_EQ(d.coefficient(), 12.0);
  EXPECT_EQ(d.exponent(0), 2U);
  EXPECT_EQ(d.exponent(1), 1U);
}

TEST(TermTest, DerivativeOfMissingVariableIsZero) {
  const Term t(4.0, {3});
  EXPECT_DOUBLE_EQ(t.derivative(1).coefficient(), 0.0);
}

TEST(TermTest, WithExtraExponentGrowsVector) {
  const Term t(1.0, {1});
  const Term u = t.with_extra_exponent(2, 3);
  EXPECT_EQ(u.exponent(2), 3U);
  EXPECT_EQ(u.exponent(0), 1U);
}

TEST(TermTest, NonFiniteCoefficientThrows) {
  EXPECT_THROW(Term(std::numeric_limits<double>::infinity(), {}),
               std::invalid_argument);
  EXPECT_THROW(Term(std::nan(""), {}), std::invalid_argument);
}

TEST(TermTest, MakeTermAccumulatesPowers) {
  const Term t = make_term(-3.0, {{0, 1}, {2, 2}, {0, 1}});
  EXPECT_DOUBLE_EQ(t.coefficient(), -3.0);
  EXPECT_EQ(t.exponent(0), 2U);
  EXPECT_EQ(t.exponent(2), 2U);
}

TEST(TermTest, ToStringRendersNamesAndPowers) {
  const std::vector<std::string> names{"x", "y"};
  EXPECT_EQ(Term(-0.5, {2, 1}).to_string(names), "-0.5*x^2*y");
  EXPECT_EQ(Term(1.0, {}).to_string(names), "+1");
}

}  // namespace
}  // namespace deproto::ode
