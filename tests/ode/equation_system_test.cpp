#include "ode/equation_system.hpp"

#include <gtest/gtest.h>

#include "ode/catalog.hpp"

namespace deproto::ode {
namespace {

TEST(EquationSystemTest, ConstructionAndLookup) {
  const EquationSystem sys({"x", "y", "z"});
  EXPECT_EQ(sys.num_vars(), 3U);
  EXPECT_EQ(sys.name(1), "y");
  EXPECT_EQ(sys.index_of("z"), std::optional<std::size_t>(2));
  EXPECT_FALSE(sys.index_of("w").has_value());
  EXPECT_EQ(sys.require("x"), 0U);
  EXPECT_THROW((void)sys.require("nope"), std::invalid_argument);
}

TEST(EquationSystemTest, RejectsDuplicateAndEmptyNames) {
  EXPECT_THROW(EquationSystem({"x", "x"}), std::invalid_argument);
  EXPECT_THROW(EquationSystem({""}), std::invalid_argument);
}

TEST(EquationSystemTest, AddVariableExtends) {
  EquationSystem sys({"x"});
  const std::size_t z = sys.add_variable("z");
  EXPECT_EQ(z, 1U);
  EXPECT_EQ(sys.num_vars(), 2U);
  EXPECT_THROW((void)sys.add_variable("x"), std::invalid_argument);
}

TEST(EquationSystemTest, NameBasedTermBuilder) {
  EquationSystem sys({"x", "y"});
  sys.add_term("x", -1.0, {{"x", 1}, {"y", 1}});
  ASSERT_EQ(sys.rhs("x").size(), 1U);
  EXPECT_EQ(sys.rhs("x")[0].exponent(0), 1U);
  EXPECT_EQ(sys.rhs("x")[0].exponent(1), 1U);
}

TEST(EquationSystemTest, AddTermRejectsUnknownVariableIds) {
  EquationSystem sys({"x"});
  EXPECT_THROW(sys.add_term(0, Term(1.0, {0, 1})), std::invalid_argument);
  EXPECT_THROW(sys.add_term(3, Term(1.0, {1})), std::out_of_range);
}

TEST(EquationSystemTest, EvaluateEpidemic) {
  const EquationSystem sys = catalog::epidemic();
  std::vector<double> x{0.75, 0.25};
  std::vector<double> dxdt(2);
  sys.evaluate(x, dxdt);
  EXPECT_DOUBLE_EQ(dxdt[0], -0.1875);  // -xy
  EXPECT_DOUBLE_EQ(dxdt[1], +0.1875);
}

TEST(EquationSystemTest, LexicographicOrderSortsByName) {
  const EquationSystem sys({"y", "x", "a"});
  const auto order = sys.lexicographic_order();
  ASSERT_EQ(order.size(), 3U);
  EXPECT_EQ(sys.name(order[0]), "a");
  EXPECT_EQ(sys.name(order[1]), "x");
  EXPECT_EQ(sys.name(order[2]), "y");
}

TEST(EquationSystemTest, SimplifiedMergesAcrossTerms) {
  EquationSystem sys({"x"});
  sys.add_term("x", 1.0, {{"x", 1}});
  sys.add_term("x", 2.0, {{"x", 1}});
  const EquationSystem s = sys.simplified();
  ASSERT_EQ(s.rhs(0).size(), 1U);
  EXPECT_DOUBLE_EQ(s.rhs(0)[0].coefficient(), 3.0);
}

TEST(EquationSystemTest, ScaledMultipliesAllTerms) {
  const EquationSystem sys = catalog::epidemic();
  const EquationSystem half = sys.scaled(0.5);
  std::vector<double> x{0.5, 0.5};
  std::vector<double> a(2), b(2);
  sys.evaluate(x, a);
  half.evaluate(x, b);
  EXPECT_DOUBLE_EQ(b[0], 0.5 * a[0]);
  EXPECT_DOUBLE_EQ(b[1], 0.5 * a[1]);
}

TEST(EquationSystemTest, EquivalenceIsAlgebraic) {
  EquationSystem a({"x"});
  a.add_term("x", 1.0, {{"x", 1}});
  a.add_term("x", 1.0, {{"x", 1}});
  EquationSystem b({"x"});
  b.add_term("x", 2.0, {{"x", 1}});
  EXPECT_TRUE(equivalent(a, b));

  EquationSystem c({"y"});
  c.add_term("y", 2.0, {{"y", 1}});
  EXPECT_FALSE(equivalent(a, c));  // different variable names
}

TEST(EquationSystemTest, ToStringMentionsEveryVariable) {
  const std::string s = catalog::endemic(4.0, 1.0, 0.01).to_string();
  EXPECT_NE(s.find("dx/dt"), std::string::npos);
  EXPECT_NE(s.find("dy/dt"), std::string::npos);
  EXPECT_NE(s.find("dz/dt"), std::string::npos);
}

TEST(EquationSystemTest, TotalTermsCounts) {
  EXPECT_EQ(catalog::epidemic().total_terms(), 2U);
  EXPECT_EQ(catalog::lv_partitionable().total_terms(), 8U);
}

}  // namespace
}  // namespace deproto::ode
