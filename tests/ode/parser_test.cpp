#include "ode/parser.hpp"

#include <gtest/gtest.h>

#include "ode/catalog.hpp"
#include "ode/taxonomy.hpp"

namespace deproto::ode {
namespace {

TEST(ParserTest, ParsesEpidemic) {
  const EquationSystem sys = parse_system(
      "x' = -x*y\n"
      "y' = x*y\n");
  EXPECT_TRUE(equivalent(sys, catalog::epidemic()));
}

TEST(ParserTest, ParsesEndemicWithCoefficients) {
  const EquationSystem sys = parse_system(
      "x' = -4*x*y + 0.01*z\n"
      "y' = 4*x*y - 1.0*y\n"
      "z' = 1.0*y - 0.01*z\n");
  EXPECT_TRUE(equivalent(sys, catalog::endemic(4.0, 1.0, 0.01)));
}

TEST(ParserTest, DxDtFormAndComments) {
  const EquationSystem sys = parse_system(
      "# the epidemic, eq. (0)\n"
      "dx/dt = -x*y   # susceptibles\n"
      "\n"
      "dy/dt = +x*y   # infectives\n");
  EXPECT_TRUE(equivalent(sys, catalog::epidemic()));
}

TEST(ParserTest, ExponentsAndImplicitCoefficient) {
  const EquationSystem sys = parse_system(
      "x' = -0.5*x^2*y + y^3\n"
      "y' = 0.5*x^2*y - y^3\n");
  EXPECT_EQ(sys.rhs(0)[0].exponent(0), 2U);
  EXPECT_EQ(sys.rhs(0)[1].exponent(1), 3U);
  EXPECT_DOUBLE_EQ(sys.rhs(0)[1].coefficient(), 1.0);
  EXPECT_TRUE(is_completely_partitionable(sys));
}

TEST(ParserTest, ScientificNotationAndBareConstants) {
  const EquationSystem sys = parse_system(
      "x' = -1e-3*x + 2.5e-2\n"
      "y' = 1e-3*x - 2.5e-2\n");
  EXPECT_DOUBLE_EQ(sys.rhs(0)[0].coefficient(), -1e-3);
  EXPECT_TRUE(sys.rhs(0)[1].is_constant());
  EXPECT_DOUBLE_EQ(sys.rhs(0)[1].coefficient(), 2.5e-2);
}

TEST(ParserTest, CoefficientWithoutStar) {
  const EquationSystem sys = parse_system(
      "x' = -2 x\n"
      "y' = 2 x\n");
  EXPECT_DOUBLE_EQ(sys.rhs(0)[0].coefficient(), -2.0);
  EXPECT_EQ(sys.rhs(0)[0].exponent(0), 1U);
}

TEST(ParserTest, RoundTripsThroughToString) {
  // parse(print(sys)) == sys for catalog systems (to_string emits the same
  // grammar).
  for (const EquationSystem& sys :
       {catalog::epidemic(), catalog::endemic(4.0, 1.0, 0.01),
        catalog::lv_partitionable(), catalog::sir(0.5, 0.1)}) {
    const EquationSystem reparsed = parse_system(sys.to_string());
    EXPECT_TRUE(equivalent(reparsed, sys)) << sys.to_string();
  }
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  try {
    (void)parse_system("x' = -x*y\ny' = x*w\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2U);
    EXPECT_NE(std::string(e.what()).find("unknown variable"),
              std::string::npos);
  }
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_system(""), ParseError);
  EXPECT_THROW((void)parse_system("x = -x\n"), ParseError);   // missing '
  EXPECT_THROW((void)parse_system("x' -x\n"), ParseError);    // missing =
  EXPECT_THROW((void)parse_system("x' = \n"), ParseError);    // empty rhs
  EXPECT_THROW((void)parse_system("x' = x x' = y\n"), ParseError);
  EXPECT_THROW((void)parse_system("x' = x\nx' = y\n"), ParseError);  // dup
  EXPECT_THROW((void)parse_system("x' = x^\n"), ParseError);  // bad exp
}

TEST(ParserTest, ParsePolynomialAgainstExistingSystem) {
  const EquationSystem sys = catalog::epidemic();
  const Polynomial p = parse_polynomial("-2*x*y + 0.5*x", sys);
  ASSERT_EQ(p.size(), 2U);
  EXPECT_DOUBLE_EQ(p[0].coefficient(), -2.0);
  EXPECT_DOUBLE_EQ(p[1].coefficient(), 0.5);
  EXPECT_THROW((void)parse_polynomial("x + ", sys), ParseError);
  EXPECT_THROW((void)parse_polynomial("q", sys), ParseError);
}

}  // namespace
}  // namespace deproto::ode
