#include "protocols/epidemic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/sync_sim.hpp"

namespace deproto::proto {
namespace {

TEST(EpidemicTest, FullInfectionFromOneSeed) {
  const std::size_t rounds = epidemic_rounds_to_full_infection(1000, 42);
  EXPECT_GT(rounds, 0U);
  EXPECT_LT(rounds, 60U);
}

TEST(EpidemicTest, InfectionIsMonotone) {
  PullEpidemic protocol;
  sim::SyncSimulator simulator(200, protocol, 1);
  simulator.seed_states({199, 1});
  std::size_t last = 1;
  for (int round = 0; round < 30; ++round) {
    simulator.run(1);
    const std::size_t now = simulator.group().count(PullEpidemic::kInfected);
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(EpidemicTest, NoSpontaneousInfection) {
  PullEpidemic protocol;
  sim::SyncSimulator simulator(100, protocol, 2);
  simulator.run(20);  // zero infectives seeded
  EXPECT_EQ(simulator.group().count(PullEpidemic::kInfected), 0U);
}

TEST(EpidemicTest, HigherFanoutConvergesFaster) {
  double slow = 0.0, fast = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    slow += static_cast<double>(
        epidemic_rounds_to_full_infection(2000, seed, 1));
    fast += static_cast<double>(
        epidemic_rounds_to_full_infection(2000, seed, 4));
  }
  EXPECT_LT(fast, slow);
}

// Property (Section 1): convergence takes O(log N) rounds. Fitting rounds
// against log2(N) should give a roughly constant ratio as N grows 4x.
class LogScalingTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LogScalingTest, RoundsScaleLogarithmically) {
  const std::size_t n = GetParam();
  double rounds = 0.0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    rounds += static_cast<double>(
        epidemic_rounds_to_full_infection(n, 100 + t));
  }
  rounds /= trials;
  const double ratio = rounds / std::log2(static_cast<double>(n));
  // Pull epidemics complete in ~log2(N) + O(log log N) rounds; the ratio
  // stays within a narrow constant band across two decades of N.
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 3.0);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, LogScalingTest,
                         ::testing::Values(256, 1024, 4096, 16384));

TEST(EpidemicTest, SurvivesMassiveFailure) {
  PullEpidemic protocol;
  sim::SyncSimulator simulator(1000, protocol, 3);
  simulator.seed_states({999, 1});
  simulator.schedule_massive_failure(3, 0.5);
  simulator.run(80);
  // All alive processes still get the multicast.
  EXPECT_EQ(simulator.group().count(PullEpidemic::kInfected),
            simulator.group().total_alive());
}

}  // namespace
}  // namespace deproto::proto
