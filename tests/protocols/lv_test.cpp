#include "protocols/lv_majority.hpp"

#include <gtest/gtest.h>

#include "sim/sync_sim.hpp"

namespace deproto::proto {
namespace {

TEST(LvTest, ParameterValidation) {
  EXPECT_THROW(LvMajority({.p = 0.0}), std::invalid_argument);
  EXPECT_THROW(LvMajority({.p = 0.4}), std::invalid_argument);  // 3p > 1
  EXPECT_NO_THROW(LvMajority({.p = 1.0 / 3.0}));
}

TEST(LvTest, DecisionReadout) {
  LvMajority protocol({.p = 0.01});
  sim::SyncSimulator simulator(3, protocol, 1);
  simulator.seed_states({1, 1, 1});
  EXPECT_EQ(LvMajority::decision_of(simulator.group(), 0),
            LvMajority::Decision::Zero);
  EXPECT_EQ(LvMajority::decision_of(simulator.group(), 1),
            LvMajority::Decision::One);
  EXPECT_EQ(LvMajority::decision_of(simulator.group(), 2),
            LvMajority::Decision::Undecided);
  EXPECT_FALSE(LvMajority::converged(simulator.group()));
  EXPECT_EQ(LvMajority::winner(simulator.group()), -1);
}

// The headline property: the initial majority wins w.h.p. Run several seeds
// on a 60/40 split; every run must converge to the majority value 0.
class MajoritySeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MajoritySeedTest, InitialMajorityWins) {
  LvMajority protocol({.p = 0.05});
  sim::SyncSimulator simulator(1000, protocol, GetParam());
  simulator.seed_states({600, 400, 0});
  std::size_t period = 0;
  while (!LvMajority::converged(simulator.group()) && period < 3000) {
    simulator.run(10);
    period += 10;
  }
  ASSERT_TRUE(LvMajority::converged(simulator.group()));
  EXPECT_EQ(LvMajority::winner(simulator.group()), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MajoritySeedTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(LvTest, MirroredStartFavorsOne) {
  LvMajority protocol({.p = 0.05});
  sim::SyncSimulator simulator(1000, protocol, 5);
  simulator.seed_states({400, 600, 0});
  std::size_t period = 0;
  while (!LvMajority::converged(simulator.group()) && period < 3000) {
    simulator.run(10);
    period += 10;
  }
  ASSERT_TRUE(LvMajority::converged(simulator.group()));
  EXPECT_EQ(LvMajority::winner(simulator.group()), 1);
}

TEST(LvTest, TieBreaksToSomeValue) {
  // x0 = y0: the saddle at (1/3, 1/3) is unsustainable at finite N;
  // randomization must eventually break the tie either way.
  LvMajority protocol({.p = 0.1});
  sim::SyncSimulator simulator(300, protocol, 6);
  simulator.seed_states({150, 150, 0});
  std::size_t period = 0;
  while (!LvMajority::converged(simulator.group()) && period < 20000) {
    simulator.run(50);
    period += 50;
  }
  ASSERT_TRUE(LvMajority::converged(simulator.group()));
  EXPECT_NE(LvMajority::winner(simulator.group()), -1);
}

TEST(LvTest, ConvergesDespiteMassiveFailure) {
  // Figure 12 shape at laptop scale: 50% crash mid-run delays but does not
  // prevent convergence to the initial majority.
  LvMajority protocol({.p = 0.05});
  sim::SyncSimulator simulator(2000, protocol, 7);
  simulator.seed_states({1200, 800, 0});
  simulator.schedule_massive_failure(20, 0.5);
  std::size_t period = 0;
  while (!LvMajority::converged(simulator.group()) && period < 5000) {
    simulator.run(10);
    period += 10;
  }
  ASSERT_TRUE(LvMajority::converged(simulator.group()));
  EXPECT_EQ(LvMajority::winner(simulator.group()), 0);
  EXPECT_EQ(simulator.group().total_alive(), 1000U);
}

TEST(LvTest, SelfStabilizesAfterPerturbation) {
  // Self-stabilization (Section 4.2.2): after convergence to all-x, flip a
  // minority of processes to y; the system must re-converge to x.
  LvMajority protocol({.p = 0.1});
  sim::SyncSimulator simulator(500, protocol, 8);
  simulator.seed_states({400, 100, 0});
  std::size_t period = 0;
  while (!LvMajority::converged(simulator.group()) && period < 5000) {
    simulator.run(10);
    period += 10;
  }
  ASSERT_EQ(LvMajority::winner(simulator.group()), 0);
  // Perturb: 100 processes switch to proposing 1.
  for (sim::ProcessId pid = 0; pid < 100; ++pid) {
    simulator.group().transition(pid, LvMajority::kY);
  }
  EXPECT_FALSE(LvMajority::converged(simulator.group()));
  period = 0;
  while (!LvMajority::converged(simulator.group()) && period < 5000) {
    simulator.run(10);
    period += 10;
  }
  ASSERT_TRUE(LvMajority::converged(simulator.group()));
  EXPECT_EQ(LvMajority::winner(simulator.group()), 0);
}

TEST(LvTest, LargerPConvergesFaster) {
  auto periods_to_converge = [](double p, std::uint64_t seed) {
    LvMajority protocol({.p = p});
    sim::SyncSimulator simulator(500, protocol, seed);
    simulator.seed_states({300, 200, 0});
    std::size_t period = 0;
    while (!LvMajority::converged(simulator.group()) && period < 50000) {
      simulator.run(10);
      period += 10;
    }
    return period;
  };
  double slow = 0.0, fast = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    slow += static_cast<double>(periods_to_converge(0.02, 10 + seed));
    fast += static_cast<double>(periods_to_converge(0.2, 10 + seed));
  }
  EXPECT_LT(fast, slow);
}

TEST(LvTest, RejoinsAsUndecided) {
  LvMajority protocol({.p = 0.01});
  EXPECT_EQ(protocol.rejoin_state(), LvMajority::kZ);
}

}  // namespace
}  // namespace deproto::proto
