#include "protocols/baselines.hpp"

#include <gtest/gtest.h>

#include "protocols/endemic_replication.hpp"
#include "sim/sync_sim.hpp"

namespace deproto::proto {
namespace {

TEST(HandoffTest, ReplicasAreMartingaleWithoutFailures) {
  // In a failure-free closed group, hand-offs can only lose replicas to
  // merges; the count never increases.
  HandoffMigration protocol({.handoff_prob = 0.5});
  sim::SyncSimulator simulator(200, protocol, 1);
  simulator.seed_states({190, 10});
  std::size_t last = 10;
  for (int k = 0; k < 50; ++k) {
    simulator.run(1);
    const std::size_t now =
        simulator.group().count(HandoffMigration::kHolder);
    EXPECT_LE(now, last);
    last = now;
  }
}

TEST(HandoffTest, CrashStopDrivesReplicasExtinct) {
  // Section 4.1.1's drawback: with crash-stop failures, every replica
  // eventually lands on a host that dies (or transfers into a void).
  HandoffMigration protocol({.handoff_prob = 0.3});
  sim::SyncSimulator simulator(500, protocol, 2);
  simulator.seed_states({480, 20});
  simulator.set_crash_recovery(0.01, 50.0);  // mild crash-recovery churn
  simulator.run(2000);
  EXPECT_EQ(simulator.group().count(HandoffMigration::kHolder), 0U);
  EXPECT_GT(protocol.replicas_lost(), 0U);
}

TEST(HandoffTest, EndemicSurvivesTheSameStress) {
  // The head-to-head the paper's design motivates: same churn, endemic
  // replication keeps the object alive while hand-off loses it.
  EndemicReplication protocol({.b = 4, .gamma = 0.1, .alpha = 0.05});
  sim::SyncSimulator simulator(500, protocol, 2);
  simulator.seed_states({440, 60, 0});
  simulator.set_crash_recovery(0.01, 50.0);
  simulator.run(2000);
  EXPECT_GT(simulator.group().count(EndemicReplication::kStash), 0U);
}

TEST(StaticReplicationTest, RepairsAfterDetectionDelay) {
  StaticReplication protocol({.replicas = 10, .detection_delay = 3});
  sim::SyncSimulator simulator(200, protocol, 3);
  simulator.seed_states({190, 10});
  // Crash two holders (routing the crash through the protocol's detector,
  // as the simulator does for failures it injects).
  const std::vector<sim::ProcessId> holders =
      simulator.group().members(StaticReplication::kHolder);
  for (int k = 0; k < 2; ++k) {
    protocol.on_crash(holders[static_cast<std::size_t>(k)]);
    simulator.group().crash(holders[static_cast<std::size_t>(k)]);
  }
  EXPECT_EQ(simulator.group().count(StaticReplication::kHolder), 8U);
  simulator.run(10);
  EXPECT_EQ(simulator.group().count(StaticReplication::kHolder), 10U);
  EXPECT_GE(protocol.repairs_done(), 2U);
}

TEST(StaticReplicationTest, MassiveFailureCanBeUnrecoverable) {
  // With k replicas, a failure burst hitting all k holders destroys the
  // object permanently -- the attack scenario migratory replication avoids.
  int extinctions = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    StaticReplication protocol({.replicas = 3, .detection_delay = 5});
    sim::SyncSimulator simulator(30, protocol,
                                 static_cast<std::uint64_t>(t));
    simulator.seed_states({27, 3});
    simulator.schedule_massive_failure(2, 0.8);
    simulator.run(50);
    if (protocol.extinct(simulator.group())) ++extinctions;
  }
  // P(all 3 holders among the 80%) ~ 0.5 per trial; expect many losses.
  EXPECT_GT(extinctions, 4);
}

TEST(StaticReplicationTest, TargetedAttackKillsStaticButNotEndemic) {
  // The paper's security argument (Section 4.1, drawback (2)): an attacker
  // snapshots the current replica holders and destroys exactly those hosts
  // a little later. Static placement dies every time; migratory replication
  // has usually moved on by the time the attack lands.
  int static_extinct = 0, endemic_extinct = 0;
  const int trials = 12;
  const std::size_t n = 400;
  const std::size_t attack_delay = 12;  // periods between snapshot and kill

  for (int t = 0; t < trials; ++t) {
    const auto seed = static_cast<std::uint64_t>(1000 + t);
    // --- static/reactive placement ---
    {
      StaticReplication protocol({.replicas = 8, .detection_delay = 3});
      sim::SyncSimulator simulator(n, protocol, seed);
      simulator.seed_states({n - 8, 8});
      simulator.run(20);
      const auto snapshot =
          simulator.group().members(StaticReplication::kHolder);
      simulator.run(attack_delay);
      for (sim::ProcessId pid : snapshot) {
        if (simulator.group().alive(pid)) {
          protocol.on_crash(pid);
          simulator.group().crash(pid);
        }
      }
      simulator.run(30);
      if (protocol.extinct(simulator.group())) ++static_extinct;
    }
    // --- endemic replication, same replica budget ---
    {
      EndemicReplication protocol({.b = 4, .gamma = 0.2, .alpha = 0.1});
      sim::SyncSimulator simulator(n, protocol, seed);
      simulator.seed_states({n - 16, 8, 8});
      simulator.run(20);
      const auto snapshot =
          simulator.group().members(EndemicReplication::kStash);
      simulator.run(attack_delay);
      for (sim::ProcessId pid : snapshot) {
        if (simulator.group().alive(pid)) simulator.group().crash(pid);
      }
      simulator.run(30);
      if (simulator.group().count(EndemicReplication::kStash) == 0) {
        ++endemic_extinct;
      }
    }
  }
  // Static replicas never move: the snapshot is always exact => extinct.
  EXPECT_EQ(static_extinct, trials);
  // Endemic replicas migrate during the attack delay; most runs survive.
  EXPECT_LT(endemic_extinct, trials / 2);
}

TEST(BaselineValidationTest, ParameterChecks) {
  EXPECT_THROW(HandoffMigration({.handoff_prob = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(StaticReplication({.replicas = 0}), std::invalid_argument);
}

}  // namespace
}  // namespace deproto::proto
