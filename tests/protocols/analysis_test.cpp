#include "protocols/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace deproto::proto {
namespace {

// Figure 5 / reality-check parameters: N = 100000, b = 2, gamma = 1e-3,
// alpha = 1e-6, push enabled (beta = 4).
const EndemicParams kFig5{.b = 2, .gamma = 1e-3, .alpha = 1e-6};
// Figures 7/8 parameters.
const EndemicParams kFig7{.b = 2, .gamma = 0.1, .alpha = 0.001};

TEST(EndemicAnalysisTest, BetaDoublesWithPush) {
  EXPECT_DOUBLE_EQ(endemic_beta(kFig5), 4.0);
  EndemicParams pull_only = kFig5;
  pull_only.push_enabled = false;
  EXPECT_DOUBLE_EQ(endemic_beta(pull_only), 2.0);
}

TEST(EndemicAnalysisTest, EquilibriumMatchesEquationTwoAtFig5Params) {
  // Paper: "the number of stashers ~ 100" in a 100,000-host system.
  const EndemicExpectation e = endemic_expectation(100000, kFig5);
  EXPECT_NEAR(e.stashers, 100.0, 1.0);       // (1-2.5e-4)/1001 * 1e5 = 99.88
  EXPECT_NEAR(e.receptives, 25.0, 0.1);      // gamma/beta * 1e5
  EXPECT_NEAR(e.averse, 99875.0, 5.0);
  // The three fractions fill the simplex.
  const EndemicEquilibrium eq = endemic_equilibrium(kFig5);
  EXPECT_NEAR(eq.x + eq.y + eq.z, 1.0, 1e-12);
}

TEST(EndemicAnalysisTest, EquilibriumIsAFixedPointOfTheOde) {
  const EndemicEquilibrium eq = endemic_equilibrium(kFig7);
  const double beta = endemic_beta(kFig7);
  // x-dot = -beta x y + alpha z = 0 and friends.
  EXPECT_NEAR(-beta * eq.x * eq.y + kFig7.alpha * eq.z, 0.0, 1e-15);
  EXPECT_NEAR(beta * eq.x * eq.y - kFig7.gamma * eq.y, 0.0, 1e-15);
  EXPECT_NEAR(kFig7.gamma * eq.y - kFig7.alpha * eq.z, 0.0, 1e-15);
}

TEST(EndemicAnalysisTest, RequiresBetaAboveGamma) {
  // b = 1 pull-only => beta = 1, equal to gamma: only (1, 0, 0) is stable.
  EXPECT_THROW(
      (void)endemic_equilibrium({.b = 1, .gamma = 1.0, .alpha = 0.1,
                                 .push_enabled = false}),
      std::invalid_argument);
}

TEST(EndemicAnalysisTest, StabilityAlwaysHolds) {
  for (const EndemicParams& params : {kFig5, kFig7}) {
    const num::StabilityReport r = endemic_stability(params);
    EXPECT_LT(r.trace, 0.0);
    EXPECT_GT(r.determinant, 0.0);
    EXPECT_TRUE(r.stable);
  }
}

TEST(EndemicAnalysisTest, EigenCaseComplexAtFigure2Params) {
  // Figure 2: stable spiral -> complex-conjugate case.
  const EndemicParams fig2{.b = 2, .gamma = 1.0, .alpha = 0.01};
  EXPECT_EQ(endemic_eigen_case(fig2), num::EigenCase::ComplexConjugate);
}

TEST(EndemicAnalysisTest, ExtinctionProbabilityHalvesPerStasher) {
  EXPECT_DOUBLE_EQ(extinction_probability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(extinction_probability(1.0), 0.5);
  EXPECT_DOUBLE_EQ(extinction_probability(10.0), std::pow(0.5, 10.0));
  EXPECT_THROW((void)extinction_probability(-1.0), std::invalid_argument);
}

TEST(EndemicAnalysisTest, LongevityTableMatchesPaper) {
  // "If a protocol period is 6 minutes long, N = 1024 and 50 replicas
  // gives us an expected object longevity of 1.28e10 years."
  EXPECT_NEAR(longevity_years(50.0, 6.0) / 1.28e10, 1.0, 0.02);
  // "With N = 2^20 and 100 replicas, we get an object lifetime of
  // 1.45e25 years."
  EXPECT_NEAR(longevity_years(100.0, 6.0) / 1.45e25, 1.0, 0.02);
}

TEST(EndemicAnalysisTest, LongevityIsNcWhenStashersAreLogN) {
  // y_inf = c log2 N  =>  extinction probability N^-c.
  const double n = 4096.0;
  const double c = 3.0;
  EXPECT_NEAR(extinction_probability(c * std::log2(n)),
              std::pow(n, -c), 1e-20);
}

TEST(EndemicAnalysisTest, RealityCheckMatchesSection5) {
  // N = 100,000 hosts: a host stores a given file 0.1% of the time, in
  // spells of ~100 hours, at ~3.9e-3 bps for an 88.2 KB file.
  const RealityCheck rc = reality_check(100000, kFig5, 6.0, 88.2);
  EXPECT_NEAR(rc.stash_fraction, 0.001, 0.0001);
  EXPECT_NEAR(rc.spell_periods, 1000.0, 1e-9);
  EXPECT_NEAR(rc.spell_hours, 100.0, 1e-9);
  EXPECT_NEAR(rc.interval_hours, 100000.0, 2000.0);
  EXPECT_NEAR(rc.bandwidth_bps, 3.92e-3, 0.1e-3);
}

TEST(EndemicAnalysisTest, CreationIntervalFigure8Discrepancy) {
  // The paper quotes "one stasher created every 40.6 seconds" for Figure 8
  // (N = 1000, 6-minute periods) alongside "stable number of stashers
  // 88.63". Equation (2) with the *stated* alpha = 0.001 gives y_inf ~ 9.7;
  // the quoted numbers correspond to alpha = 0.01. We verify the 40.6 s
  // figure under alpha = 0.01 and record the discrepancy.
  const EndemicParams fig8_quoted{.b = 2, .gamma = 0.1, .alpha = 0.01};
  const EndemicExpectation e = endemic_expectation(1000, fig8_quoted);
  EXPECT_NEAR(e.stashers, 88.63, 0.05);
  EXPECT_NEAR(stasher_creation_interval_seconds(1000, fig8_quoted, 360.0),
              40.6, 0.2);
  // And the stated-alpha variant differs by ~an order of magnitude.
  const EndemicExpectation stated = endemic_expectation(1000, kFig7);
  EXPECT_NEAR(stated.stashers, 9.65, 0.05);
}

TEST(LvAnalysisTest, ConvergenceComplexityClosedForm) {
  // (x, y)(t) = (u0 e^{-3pt}, 1 - (6p u0 t + v0) e^{-3pt}).
  const LvConvergence conv{.u0 = 0.1, .v0 = 0.05, .p = 1.0};
  EXPECT_NEAR(conv.x(0.0), 0.1, 1e-12);
  EXPECT_NEAR(conv.y(0.0), 0.95, 1e-12);
  EXPECT_NEAR(conv.x(2.0), 0.1 * std::exp(-6.0), 1e-12);
  EXPECT_NEAR(conv.y(10.0), 1.0, 1e-8);  // converges to all-y
}

TEST(LvAnalysisTest, PeriodsToMinorityIsLogarithmic) {
  // O(log N) periods to reach O(1) minority processes.
  const double p = 0.01;
  const double t1 = lv_periods_to_one_process(1000, 0.4, p);
  const double t2 = lv_periods_to_one_process(1000000, 0.4, p);
  // N x1000 => + log(1000)/(3p) periods.
  EXPECT_NEAR(t2 - t1, std::log(1000.0) / (3.0 * p), 1e-6);
  EXPECT_THROW((void)lv_periods_to_minority(0.0, 0.1, p),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(lv_periods_to_minority(0.1, 0.2, p), 0.0);
}

TEST(LvAnalysisTest, Figure11TimescaleIsRight) {
  // Figure 11: N = 100,000, start (60k, 40k), p = 0.01, converged by
  // t ~ 500. The linearized estimate puts the minority below one process
  // within the same order of magnitude.
  const double t = lv_periods_to_one_process(100000, 0.4, 0.01);
  EXPECT_GT(t, 100.0);
  EXPECT_LT(t, 1000.0);
}

}  // namespace
}  // namespace deproto::proto
