#include "protocols/endemic_replication.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "protocols/analysis.hpp"
#include "sim/sync_sim.hpp"

namespace deproto::proto {
namespace {

/// Start a simulator at the analytic equilibrium of eq. (2).
sim::SyncSimulator at_equilibrium(std::size_t n,
                                  EndemicReplication& protocol,
                                  std::uint64_t seed) {
  sim::SyncSimulator simulator(n, protocol, seed);
  const EndemicExpectation expected =
      endemic_expectation(n, protocol.params());
  const auto rx = static_cast<std::size_t>(expected.receptives);
  const auto sy = static_cast<std::size_t>(expected.stashers);
  simulator.seed_states({rx, sy, n - rx - sy});
  return simulator;
}

TEST(EndemicTest, ParameterValidation) {
  EXPECT_THROW(EndemicReplication({.b = 0}), std::invalid_argument);
  EXPECT_THROW(EndemicReplication({.b = 2, .gamma = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(EndemicReplication({.b = 2, .gamma = 0.1, .alpha = 1.5}),
               std::invalid_argument);
}

TEST(EndemicTest, PopulationsTrackAnalyticEquilibrium) {
  // Figure 7's verification at laptop scale: N = 20000, b = 2, gamma = 0.1,
  // alpha = 0.001; median populations over a window must match eq. (2).
  EndemicReplication protocol({.b = 2, .gamma = 0.1, .alpha = 0.001});
  auto simulator = at_equilibrium(20000, protocol, 1);
  simulator.run(600);
  const EndemicExpectation expected =
      endemic_expectation(20000, protocol.params());
  const auto stash = simulator.metrics().summarize_state(
      EndemicReplication::kStash, 100, 600);
  const auto receptive = simulator.metrics().summarize_state(
      EndemicReplication::kReceptive, 100, 600);
  EXPECT_NEAR(stash.median, expected.stashers, 0.15 * expected.stashers);
  EXPECT_NEAR(receptive.median, expected.receptives,
              0.15 * expected.receptives);
}

TEST(EndemicTest, SafetyReplicasNeverVanish) {
  // With y_inf ~ 100 replicas the extinction probability is 2^-100 per
  // period: the replica population must stay positive over the whole run.
  EndemicReplication protocol({.b = 2, .gamma = 0.1, .alpha = 0.001});
  auto simulator = at_equilibrium(10000, protocol, 2);
  for (int k = 0; k < 50; ++k) {
    simulator.run(10);
    EXPECT_GT(simulator.group().count(EndemicReplication::kStash), 0U);
  }
}

TEST(EndemicTest, LivenessEveryStasherEventuallyDeletes) {
  // gamma = 0.5: a stasher stays ~2 periods. Track one specific stasher.
  EndemicReplication protocol({.b = 2, .gamma = 0.5, .alpha = 0.5});
  sim::SyncSimulator simulator(200, protocol, 3);
  simulator.seed_states({100, 100, 0});
  // All original stashers (pids 100..199) must leave the stash state at
  // some point within a generous horizon.
  std::vector<bool> left(200, false);
  for (int period = 0; period < 200; ++period) {
    simulator.run(1);
    for (sim::ProcessId pid = 100; pid < 200; ++pid) {
      if (simulator.group().state_of(pid) != EndemicReplication::kStash) {
        left[pid] = true;
      }
    }
  }
  for (sim::ProcessId pid = 100; pid < 200; ++pid) {
    EXPECT_TRUE(left[pid]) << "process " << pid << " never deleted";
  }
}

TEST(EndemicTest, FairnessStashDutySpreadsAcrossHosts) {
  EndemicReplication protocol({.b = 2, .gamma = 0.2, .alpha = 0.05});
  auto simulator = at_equilibrium(500, protocol, 4);
  simulator.run(4000);
  const auto& duty = protocol.stash_periods();
  const std::size_t served =
      static_cast<std::size_t>(std::count_if(duty.begin(), duty.end(),
                                             [](std::uint64_t d) {
                                               return d > 0;
                                             }));
  // Symmetric protocol: practically every host bears responsibility.
  EXPECT_GT(served, 450U);
  // And no host hoards: the maximum duty is a small multiple of the mean.
  const double mean =
      static_cast<double>(std::accumulate(duty.begin(), duty.end(), 0ULL)) /
      static_cast<double>(duty.size());
  const double max =
      static_cast<double>(*std::max_element(duty.begin(), duty.end()));
  EXPECT_LT(max, 12.0 * mean);
}

TEST(EndemicTest, MassiveFailureHalvesStashersNotReceptives) {
  // The Figure 5 phenomenon: after 50% of hosts crash, stasher count halves
  // while the receptive count recovers to its old absolute value (fruitless
  // contacts halve the effective b, doubling x_inf as a fraction).
  EndemicReplication protocol({.b = 2, .gamma = 0.1, .alpha = 0.001});
  const std::size_t n = 20000;
  auto simulator = at_equilibrium(n, protocol, 5);
  simulator.run(200);
  const double stash_before = simulator.metrics()
                                  .summarize_state(EndemicReplication::kStash,
                                                   100, 200)
                                  .median;
  simulator.schedule_massive_failure(200, 0.5);
  simulator.run(600);
  const auto stash_after = simulator.metrics().summarize_state(
      EndemicReplication::kStash, 500, 800);
  const auto receptive_after = simulator.metrics().summarize_state(
      EndemicReplication::kReceptive, 500, 800);
  EXPECT_NEAR(stash_after.median, stash_before / 2.0, 0.25 * stash_before);
  const EndemicExpectation expected = endemic_expectation(n, protocol.params());
  EXPECT_NEAR(receptive_after.median, expected.receptives,
              0.3 * expected.receptives);
}

TEST(EndemicTest, PushDisabledStillConvergesButSlower) {
  EndemicReplication with_push({.b = 2, .gamma = 0.1, .alpha = 0.01});
  EndemicReplication no_push(
      {.b = 2, .gamma = 0.1, .alpha = 0.01, .push_enabled = false});
  sim::SyncSimulator sim_push(2000, with_push, 6);
  sim::SyncSimulator sim_nopush(2000, no_push, 6);
  // Start both from a single stasher.
  sim_push.seed_states({1999, 1, 0});
  sim_nopush.seed_states({1999, 1, 0});
  sim_push.run(50);
  sim_nopush.run(50);
  EXPECT_GT(sim_push.group().count(EndemicReplication::kStash) +
                sim_push.group().count(EndemicReplication::kAverse),
            sim_nopush.group().count(EndemicReplication::kStash) +
                sim_nopush.group().count(EndemicReplication::kAverse));
}

TEST(EndemicTest, FluxMatchesGammaTimesStashers) {
  // At equilibrium, receptive->stash transfers per period ~= gamma * Y.
  EndemicReplication protocol({.b = 2, .gamma = 0.1, .alpha = 0.001});
  auto simulator = at_equilibrium(20000, protocol, 7);
  simulator.run(500);
  const auto flux = simulator.metrics().summarize_flux(
      EndemicReplication::kReceptive, EndemicReplication::kStash, 100, 500);
  const EndemicExpectation expected =
      endemic_expectation(20000, protocol.params());
  EXPECT_NEAR(flux.mean, protocol.params().gamma * expected.stashers,
              0.3 * protocol.params().gamma * expected.stashers);
}

TEST(EndemicTest, ChurnResistance) {
  // Figures 9-10 at reduced scale: N = 1000, b = 32, gamma = 0.1,
  // alpha = 0.005, hourly churn of 10-25% (10 periods per hour).
  EndemicReplication protocol({.b = 32, .gamma = 0.1, .alpha = 0.005});
  sim::SyncSimulator simulator(1000, protocol, 8);
  sim::Rng churn_rng(99);
  const auto trace =
      sim::ChurnTrace::synthetic_overnet(1000, 60.0, 0.10, 0.25, 0.5,
                                         churn_rng);
  simulator.attach_churn(trace, 10.0);
  const EndemicExpectation expected =
      endemic_expectation(1000, protocol.params());
  const auto sy = static_cast<std::size_t>(expected.stashers);
  simulator.seed_states({1000 - sy, sy, 0});
  simulator.run(550);
  // The stasher population stays positive and within sane bounds
  // throughout churn.
  const auto stash = simulator.metrics().summarize_state(
      EndemicReplication::kStash, 50, 550);
  EXPECT_GT(stash.min, 0.0);
  EXPECT_LT(stash.max, 6.0 * expected.stashers);
}

TEST(EndemicTest, RejoinStateIsReceptive) {
  EndemicReplication protocol({.b = 2, .gamma = 0.1, .alpha = 0.001});
  EXPECT_EQ(protocol.rejoin_state(), EndemicReplication::kReceptive);
}

}  // namespace
}  // namespace deproto::proto
