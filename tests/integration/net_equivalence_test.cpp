// Loopback equivalence: the net backend executes the same synthesized
// machines as sync/event, but over real UDP datagrams paced by the wall
// clock -- so its steady states must agree with the simulated backends
// and the mean-field recursion within the same finite-size tolerances
// backend_equivalence_test uses. This is the acceptance gate for the
// theory-to-systems jump: if the ODE-derived protocol only converged
// under the simulators' uniform-mixing scheduler, the paper's
// deployability claim would not survive a real network stack.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/mean_field.hpp"

namespace deproto {
namespace {

/// Alive-normalized state fractions averaged over the last `window`
/// series points (same smoothing as backend_equivalence_test).
std::vector<double> tail_fractions(const api::ExperimentResult& result,
                                   std::size_t window) {
  const std::size_t m = result.state_names.size();
  std::vector<double> fractions(m, 0.0);
  const std::size_t first =
      result.series.size() > window ? result.series.size() - window : 0;
  std::size_t used = 0;
  for (std::size_t i = first; i < result.series.size(); ++i) {
    const api::PeriodPoint& point = result.series[i];
    if (point.total_alive == 0) continue;
    for (std::size_t s = 0; s < m; ++s) {
      fractions[s] += static_cast<double>(point.counts[s]) /
                      static_cast<double>(point.total_alive);
    }
    ++used;
  }
  if (used > 0) {
    for (double& f : fractions) f /= static_cast<double>(used);
  }
  return fractions;
}

double max_gap(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t s = 0; s < a.size(); ++s) {
    worst = std::max(worst, std::abs(a[s] - b[s]));
  }
  return worst;
}

std::vector<double> mean_field_endpoint(api::Experiment& experiment) {
  const core::ProtocolStateMachine& machine =
      experiment.artifacts().synthesis.machine;
  const api::ScenarioSpec& spec = experiment.spec();
  const std::size_t m = machine.num_states();
  num::Vec x(m, 0.0);
  for (std::size_t s = 0; s < spec.initial_counts.size(); ++s) {
    x[s] = static_cast<double>(spec.initial_counts[s]) /
           static_cast<double>(spec.n);
  }
  double assigned = 0.0;
  for (double v : x) assigned += v;
  x[0] += 1.0 - assigned;
  for (std::size_t t = 0; t < spec.periods; ++t) {
    const num::Vec drift = core::exact_drift(machine, x);
    for (std::size_t s = 0; s < m; ++s) x[s] += drift[s];
  }
  return {x.begin(), x.end()};
}

TEST(NetEquivalenceTest, EpidemicAbsorbsIdenticallyOnRealSockets) {
  // The absorbing case: every backend, real sockets included, must end
  // with the whole population infected -- the same steady-state fraction
  // (1.0) to the digit, not just within tolerance.
  const api::ScenarioSpec net_spec = api::registry_get("epidemic-net");
  for (const api::Backend backend :
       {api::Backend::Net, api::Backend::Sync, api::Backend::Event}) {
    api::ScenarioSpec spec = net_spec;
    spec.backend = backend;
    spec.periods = 30;  // margin over the ~24-period absorption
    api::Experiment experiment(spec);
    const api::ExperimentResult result = experiment.run();
    const char* label = api::backend_name(backend);
    EXPECT_TRUE(result.convergence.absorbed) << label;
    EXPECT_EQ(result.convergence.dominant_state, 1U) << label;
    EXPECT_DOUBLE_EQ(result.convergence.dominant_fraction, 1.0) << label;
    EXPECT_EQ(result.series.size(), spec.periods) << label;
  }
}

TEST(NetEquivalenceTest, EndemicEquilibriumMatchesSimulatedBackends) {
  // The interior-equilibrium case: endemic replication self-stabilizes at
  // eq. (2) rather than absorbing, so the comparison is a real two-sided
  // tolerance check, with the same bounds backend_equivalence_test grants
  // the simulated backends at this population size.
  const api::ScenarioSpec base = api::registry_get("endemic-net");

  api::ScenarioSpec net_spec = base;
  api::ScenarioSpec sync_spec = base;
  sync_spec.backend = api::Backend::Sync;
  api::ScenarioSpec event_spec = base;
  event_spec.backend = api::Backend::Event;

  api::Experiment net_exp(net_spec);
  api::Experiment sync_exp(sync_spec);
  api::Experiment event_exp(event_spec);
  const api::ExperimentResult net_result = net_exp.run();
  const api::ExperimentResult sync_result = sync_exp.run();
  const api::ExperimentResult event_result = event_exp.run();

  const std::size_t window = 20;
  const std::vector<double> net_tail = tail_fractions(net_result, window);
  const std::vector<double> sync_tail = tail_fractions(sync_result, window);
  const std::vector<double> event_tail =
      tail_fractions(event_result, window);

  // Backend agreement at N = 128: finite-size noise plus the real
  // network's timing jitter.
  EXPECT_LT(max_gap(net_tail, sync_tail), 0.10);
  EXPECT_LT(max_gap(net_tail, event_tail), 0.10);

  // Mean-field agreement, looser (sequencing bias + O(1/N) fluctuations).
  const std::vector<double> mean_field = mean_field_endpoint(sync_exp);
  EXPECT_LT(max_gap(net_tail, mean_field), 0.17);

  // The run really went over the wire: measured RTT samples exist and
  // every datagram decoded.
  ASSERT_TRUE(net_result.net_stats.has_value());
  EXPECT_GT(net_result.net_stats->rtt_samples, 0U);
  EXPECT_GT(net_result.net_stats->rtt_ms_mean(), 0.0);
  EXPECT_EQ(net_result.net_stats->decode_errors, 0U);
  EXPECT_FALSE(sync_result.net_stats.has_value());
}

TEST(NetEquivalenceTest, GigascalePopulationsAreRejectedWithClearError) {
  api::ScenarioSpec spec = api::registry_get("epidemic-net");
  spec.n = 1000000;
  spec.initial_counts = {999999, 1};
  api::Experiment experiment(spec);
  try {
    (void)experiment.launch();
    FAIL() << "expected SpecError for gigascale net backend";
  } catch (const api::SpecError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("socket"), std::string::npos) << message;
    EXPECT_NE(message.find("count"), std::string::npos) << message;
  }
}

}  // namespace
}  // namespace deproto
