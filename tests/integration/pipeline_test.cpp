// Cross-cutting pipeline properties that tie the layers together:
// rewriting inverses, parser round-trips on synthesized artifacts, and the
// endemic variant machine surviving a full asynchronous run.

#include <gtest/gtest.h>

#include "api/experiment.hpp"
#include "core/mean_field.hpp"
#include "core/synthesis.hpp"
#include "ode/catalog.hpp"
#include "ode/parser.hpp"
#include "ode/rewriting.hpp"
#include "ode/taxonomy.hpp"

namespace deproto {
namespace {

TEST(PipelineTest, EliminateLastInvertsComplete) {
  // complete() then eliminate_last() is the identity on the original
  // variables (for systems whose variables sum to 1 on the simplex).
  for (const ode::EquationSystem& sys :
       {ode::catalog::lv_original(), ode::catalog::logistic(0.7)}) {
    const ode::EquationSystem closed = ode::complete(sys, "slack");
    const ode::EquationSystem back = ode::eliminate_last(closed, 1.0);
    EXPECT_TRUE(ode::equivalent(back, sys)) << sys.to_string();
  }
}

TEST(PipelineTest, ParseSynthesizeFromPaperText) {
  // The full user journey: paper equations as text -> taxonomy ->
  // machine -> equivalence, for both case studies.
  const char* endemic_text =
      "x' = -4*x*y + 0.01*z\n"
      "y' = 4*x*y - 1*y\n"
      "z' = 1*y - 0.01*z\n";
  const char* lv_text =
      "x' = 3*x*z - 3*x*y\n"
      "y' = 3*y*z - 3*x*y\n"
      "z' = -3*x*z - 3*y*z + 3*x*y + 3*x*y\n";
  for (const char* text : {endemic_text, lv_text}) {
    const ode::EquationSystem sys = ode::parse_system(text);
    ASSERT_TRUE(ode::is_completely_partitionable(sys));
    const core::SynthesisResult result = core::synthesize(sys);
    EXPECT_TRUE(core::verifies_equivalence(result.machine, sys));
  }
}

TEST(PipelineTest, MachinePrintingIsStableUnderReparse) {
  // to_string of a parsed system re-parses to the same system -- the
  // printed artifacts in DESIGN/EXPERIMENTS are reproducible inputs.
  const ode::EquationSystem sys = ode::parse_system(
      "a' = -0.25*a^2*b + 0.1*c\n"
      "b' = 0.25*a^2*b - 0.3*b\n"
      "c' = 0.3*b - 0.1*c\n");
  const ode::EquationSystem again = ode::parse_system(sys.to_string());
  EXPECT_TRUE(ode::equivalent(sys, again));
}

TEST(PipelineTest, EndemicVariantRunsAsynchronously) {
  // Figure 1's push-pull machine on the fully event-driven simulator:
  // per-process clocks with 10% drift, 5% message loss. The stash
  // population must persist and hover near eq. (2). Declared as a spec
  // and executed through the api::Experiment facade (event backend).
  api::ScenarioSpec spec;
  spec.source.catalog = "endemic";
  spec.source.params = {4.0, 0.2, 0.05};
  spec.synthesis.push_pull.push_back(core::PushPullSpec{"x", "y"});
  spec.backend = api::Backend::Event;
  spec.clock_drift = 0.10;
  spec.runtime.message_loss = 0.05;
  spec.n = 2000;
  spec.seed = 21;
  spec.periods = 300;
  // Equilibrium: x = 0.05, y = 0.95/5 = 0.19.
  spec.initial_counts = {100, 380, 1520};

  api::Experiment experiment(std::move(spec));
  const api::ExperimentResult result = experiment.run();

  const std::size_t stash = result.final_counts[1];
  EXPECT_GT(stash, 100U);   // never collapses
  EXPECT_LT(stash, 900U);   // never takes over
  // Sanity: the asynchronous run really exchanged messages with loss.
  EXPECT_GT(result.messages_dropped, 0U);
}

TEST(PipelineTest, NormalizeThenSynthesizeMatchesDirectPath) {
  // Numbers-notation source (Section 7's normalizing example): normalize
  // to fractions, then synthesize; identical machine to the fraction-
  // notation source.
  const double n = 250.0;
  const auto direct = core::synthesize(ode::catalog::epidemic());
  const auto via_numbers =
      core::synthesize(ode::normalize(ode::catalog::epidemic_raw(n), n));
  EXPECT_EQ(direct.p, via_numbers.p);
  EXPECT_TRUE(ode::equivalent(core::mean_field(direct.machine),
                              core::mean_field(via_numbers.machine)));
}

}  // namespace
}  // namespace deproto
