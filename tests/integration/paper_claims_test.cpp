// The paper's analytic claims checked end-to-end against the numerics
// substrate: Theorem 4's basins of attraction, Theorem 3's spiral, the
// phase-portrait figures' qualitative content.

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/integrator.hpp"
#include "numerics/phase_portrait.hpp"
#include "numerics/stability.hpp"
#include "ode/catalog.hpp"
#include "protocols/analysis.hpp"

namespace deproto {
namespace {

using num::Vec;

/// Integrate the LV system (eq. 7) from (x0, y0) and report the limit.
Vec lv_limit(double x0, double y0, double t_end = 60.0) {
  const auto sys = ode::catalog::lv_partitionable();
  const num::OdeFunction f = num::ode_function(sys);
  Vec x{x0, y0, 1.0 - x0 - y0};
  num::AdaptiveOptions opts;
  opts.abs_tol = opts.rel_tol = 1e-11;
  num::integrate_adaptive(f, x, 0.0, t_end, opts);
  return x;
}

// Theorem 4, clause 1: x0 > y0 converges to (1, 0).
class Theorem4RightBasin
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(Theorem4RightBasin, ConvergesToAllX) {
  const auto [x0, y0] = GetParam();
  ASSERT_GT(x0, y0);
  const Vec limit = lv_limit(x0, y0);
  EXPECT_NEAR(limit[0], 1.0, 1e-3);
  EXPECT_NEAR(limit[1], 0.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    InitialPoints, Theorem4RightBasin,
    ::testing::Values(std::pair{0.2, 0.1}, std::pair{0.5, 0.3},
                      std::pair{0.8, 0.1}, std::pair{0.101, 0.1},
                      std::pair{0.34, 0.33}));

// Theorem 4, clause 2: x0 < y0 converges to (0, 1).
class Theorem4LeftBasin
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(Theorem4LeftBasin, ConvergesToAllY) {
  const auto [x0, y0] = GetParam();
  ASSERT_LT(x0, y0);
  const Vec limit = lv_limit(x0, y0);
  EXPECT_NEAR(limit[0], 0.0, 1e-3);
  EXPECT_NEAR(limit[1], 1.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    InitialPoints, Theorem4LeftBasin,
    ::testing::Values(std::pair{0.1, 0.2}, std::pair{0.3, 0.5},
                      std::pair{0.1, 0.8}, std::pair{0.33, 0.34}));

TEST(Theorem4Test, DiagonalFlowsToTheSaddle) {
  // Clause 3: x0 = y0 flows to (1/3, 1/3) (in infinite precision it stays
  // on the separatrix).
  const Vec limit = lv_limit(0.2, 0.2, 200.0);
  EXPECT_NEAR(limit[0], 1.0 / 3.0, 1e-2);
  EXPECT_NEAR(limit[1], 1.0 / 3.0, 1e-2);
}

TEST(Theorem4Test, LvConvergenceComplexityMatchesOde) {
  // Near (0, 1): x(t) = u0 e^{-3t}. Start at (u0, 1 - u0) and compare.
  const double u0 = 0.01;
  const auto sys = ode::catalog::lv_partitionable();
  const num::OdeFunction f = num::ode_function(sys);
  Vec x{u0, 1.0 - u0, 0.0};
  num::AdaptiveOptions opts;
  opts.abs_tol = opts.rel_tol = 1e-12;
  num::integrate_adaptive(f, x, 0.0, 2.0, opts);
  const proto::LvConvergence conv{.u0 = u0, .v0 = u0, .p = 1.0};
  EXPECT_NEAR(x[0], conv.x(2.0), 0.1 * conv.x(2.0));
}

TEST(Theorem3Test, EndemicSpiralsIntoSecondEquilibrium) {
  // Figure 2's content: from several of the paper's initial points, the
  // system ends at eq. (2), and the approach oscillates (stable spiral).
  const double beta = 4.0, gamma = 1.0, alpha = 0.01;
  const auto sys = ode::catalog::endemic(beta, gamma, alpha);
  const proto::EndemicParams params{.b = 2, .gamma = gamma, .alpha = alpha};
  const proto::EndemicEquilibrium eq = proto::endemic_equilibrium(params);

  // The paper's Figure 2 initial points (as fractions of N = 1000).
  const std::vector<Vec> starts{
      {0.999, 0.001, 0.0}, {0.0, 0.001, 0.999}, {0.0, 1.0, 0.0},
      {0.5, 0.5, 0.0},     {0.5, 0.001, 0.499}, {0.001, 0.5, 0.499},
      {0.333, 0.333, 0.334}};
  num::PhasePortraitOptions opts;
  opts.t_end = 4000.0;
  opts.observe_dt = 5.0;
  opts.integrate.dt_max = 1.0;
  const num::PhasePortrait portrait =
      num::compute_phase_portrait(sys, starts, opts);
  for (const num::Trajectory& traj : portrait.trajectories) {
    const Vec& last = traj.points.back();
    EXPECT_NEAR(last[0], eq.x, 0.02);
    EXPECT_NEAR(last[1], eq.y, 0.01);
  }

  // Oscillation: x(t) crosses its equilibrium value multiple times from the
  // first initial point (damped spiral, not a monotone node).
  const num::Trajectory& spiral = portrait.trajectories[0];
  int crossings = 0;
  for (std::size_t k = 1; k < spiral.points.size(); ++k) {
    const double prev = spiral.points[k - 1][0] - eq.x;
    const double curr = spiral.points[k][0] - eq.x;
    if (prev * curr < 0.0) ++crossings;
  }
  EXPECT_GE(crossings, 3);
}

TEST(Theorem2Test, SafetyIsOnlyProbabilistic) {
  // Theorem 2 (impossibility): crash every stasher simultaneously; the
  // object is gone and the all-receptive saddle holds from then on
  // (y = 0 is invariant).
  const auto sys = ode::catalog::endemic(4.0, 1.0, 0.01);
  const num::OdeFunction f = num::ode_function(sys);
  Vec x{0.99, 0.0, 0.01};  // no stashers anywhere
  num::integrate_fixed(f, x, 0.0, 500.0, 0.1);
  EXPECT_NEAR(x[1], 0.0, 1e-12);
  // Averse thaw back to receptive at rate alpha = 0.01: z ~ e^-5 remains.
  EXPECT_NEAR(x[0], 1.0, 1e-2);
  EXPECT_GT(x[0], 0.999);
}

TEST(EpidemicClaimTest, LogNRoundsFromTheOde) {
  // Section 1: x ~ O(1) after O(log N) rounds. In the ODE, time for x to
  // fall from 1 - 1/N to 1/N is ~ 2 ln N (logistic symmetry).
  const auto sys = ode::catalog::epidemic();
  const num::OdeFunction f = num::ode_function(sys);
  for (double n : {1e3, 1e6}) {
    Vec x{1.0 - 1.0 / n, 1.0 / n};
    const auto t = num::integrate_until(
        f, x, 0.0, 0.05, 100.0,
        [&](const Vec& state, double) { return state[0] <= 1.0 / n; });
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 2.0 * std::log(n - 1.0), 0.5);
  }
}

}  // namespace
}  // namespace deproto
