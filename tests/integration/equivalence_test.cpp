// End-to-end validation of the framework's core claim: a synthesized
// protocol run on a finite group tracks its mean field, with the
// discrepancy shrinking as the group grows (Theorem 1's infinite-group
// equivalence, approached at rate ~1/sqrt(N)).
//
// The protocol is a *discrete-time* stochastic system: its expected
// one-period update is exactly x_{k+1} = x_k + drift(x_k) (the exact_drift
// recursion, which equals the ODE only as rates -> 0). We therefore compare
// simulated population fractions against that recursion; the residual gap
// is pure finite-N fluctuation. Each case is a declarative
// api::ScenarioSpec executed through the api::Experiment facade.

#include <gtest/gtest.h>

#include <cmath>

#include "api/experiment.hpp"
#include "core/mean_field.hpp"
#include "ode/catalog.hpp"

namespace deproto {
namespace {

/// Max over periods of the infinity-norm gap between simulated fractions
/// and the exact mean-field recursion. Synchronous-update semantics make
/// the recursion exact in expectation at any rate; live semantics add an
/// O(rate^2) sequencing bias (tested separately).
double trajectory_gap(api::ScenarioSpec spec, std::size_t n,
                      const std::vector<std::size_t>& seed_counts,
                      std::size_t horizon, std::uint64_t seed,
                      bool simultaneous = true) {
  spec.runtime.simultaneous_updates = simultaneous;
  spec.n = n;
  spec.initial_counts = seed_counts;
  spec.periods = horizon;
  spec.seed = seed;

  api::Experiment experiment(std::move(spec));
  const core::ProtocolStateMachine& machine =
      experiment.artifacts().synthesis.machine;
  const api::ExperimentResult result = experiment.run();

  const std::size_t m = machine.num_states();
  num::Vec x(m, 0.0);
  for (std::size_t s = 0; s < seed_counts.size(); ++s) {
    x[s] = static_cast<double>(seed_counts[s]) / static_cast<double>(n);
  }
  double assigned = 0.0;
  for (double v : x) assigned += v;
  x[0] += 1.0 - assigned;

  double worst = 0.0;
  for (std::size_t t = 0; t < horizon; ++t) {
    const num::Vec drift = core::exact_drift(machine, x);
    for (std::size_t s = 0; s < m; ++s) x[s] += drift[s];
    for (std::size_t s = 0; s < m; ++s) {
      const double simulated =
          static_cast<double>(result.series[t].counts[s]) /
          static_cast<double>(n);
      worst = std::max(worst, std::abs(simulated - x[s]));
    }
  }
  return worst;
}

api::ScenarioSpec catalog_spec(const std::string& id,
                               std::vector<double> params = {}) {
  api::ScenarioSpec spec;
  spec.source.catalog = id;
  spec.source.params = std::move(params);
  return spec;
}

TEST(EquivalenceTest, EpidemicGapShrinksWithN) {
  const api::ScenarioSpec spec = catalog_spec("epidemic");
  double gap_small = 0.0, gap_large = 0.0;
  const int trials = 4;
  for (std::uint64_t t = 0; t < trials; ++t) {
    gap_small += trajectory_gap(spec, 400, {360, 40}, 15, 10 + t);
    gap_large += trajectory_gap(spec, 6400, {5760, 640}, 15, 20 + t);
  }
  // sqrt(6400/400) = 4: expect a clear reduction, with slack for the
  // trajectory's sensitivity to early fluctuations.
  EXPECT_LT(gap_large, gap_small / 1.5);
  EXPECT_LT(gap_large / trials, 0.02);
}

TEST(EquivalenceTest, LvGapSmallAtModerateN) {
  api::ScenarioSpec spec = catalog_spec("lv");
  spec.synthesis.p = 0.05;
  const double gap = trajectory_gap(spec, 5000, {3000, 2000, 0}, 40, 7);
  EXPECT_LT(gap, 0.03);
}

TEST(EquivalenceTest, EndemicPureMachineTracksMeanField) {
  // The pure synthesized endemic machine (p = 1/beta) away from
  // equilibrium.
  const api::ScenarioSpec spec = catalog_spec("endemic", {4.0, 1.0, 0.1});
  const double gap = trajectory_gap(spec, 8000, {7200, 800, 0}, 60, 3);
  EXPECT_LT(gap, 0.04);
}

TEST(EquivalenceTest, TokenizedMachineTracksMeanField) {
  // Theorem 5's subclass: the invitation system uses Tokenizing; the
  // directory-routed runtime must still track the mean field. Horizon kept
  // short of the x-exhaustion point where token-drop saturation kicks in.
  const api::ScenarioSpec spec = catalog_spec("invitation", {0.1});
  const double gap = trajectory_gap(spec, 4000, {3000, 1000}, 10, 11);
  EXPECT_LT(gap, 0.03);
}

TEST(EquivalenceTest, SequencingBiasIsSecondOrder) {
  // Live (Gauss-Seidel) semantics: processes observe targets' states at
  // probe time. The deviation from the simultaneous-update mean field is
  // O(rate^2) per period, so at rates <= 0.1 the live-mode gap stays near
  // the sampling-noise floor. The rate-scaled source goes in as ODE text
  // (there is no catalog id for it) -- the deproto-synth user journey.
  api::ScenarioSpec spec;
  spec.source.ode_text = ode::catalog::epidemic().scaled(0.1).to_string();
  const double gap = trajectory_gap(spec, 4000, {3600, 400}, 60, 13,
                                    /*simultaneous=*/false);
  EXPECT_LT(gap, 0.03);
}

TEST(EquivalenceTest, LiveSemanticsDivergeAtRateOne) {
  // The flip side: at coin bias 1.0 (the raw epidemic), live semantics
  // compound within the period and outrun the simultaneous mean field --
  // the discretization artifact the normalizing constant p exists to tame.
  const api::ScenarioSpec spec = catalog_spec("epidemic");
  const double live = trajectory_gap(spec, 4000, {3600, 400}, 10, 17,
                                     /*simultaneous=*/false);
  const double sync = trajectory_gap(spec, 4000, {3600, 400}, 10, 17,
                                     /*simultaneous=*/true);
  EXPECT_GT(live, 3.0 * sync);
}

}  // namespace
}  // namespace deproto
