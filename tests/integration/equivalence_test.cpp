// End-to-end validation of the framework's core claim: a synthesized
// protocol run on a finite group tracks its mean field, with the
// discrepancy shrinking as the group grows (Theorem 1's infinite-group
// equivalence, approached at rate ~1/sqrt(N)).
//
// The protocol is a *discrete-time* stochastic system: its expected
// one-period update is exactly x_{k+1} = x_k + drift(x_k) (the exact_drift
// recursion, which equals the ODE only as rates -> 0). We therefore compare
// simulated population fractions against that recursion; the residual gap
// is pure finite-N fluctuation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/mean_field.hpp"
#include "core/synthesis.hpp"
#include "ode/catalog.hpp"
#include "sim/runtime.hpp"
#include "sim/sync_sim.hpp"

namespace deproto {
namespace {

/// Max over periods of the infinity-norm gap between simulated fractions
/// and the exact mean-field recursion. Synchronous-update semantics make
/// the recursion exact in expectation at any rate; live semantics add an
/// O(rate^2) sequencing bias (tested separately).
double trajectory_gap(const core::SynthesisResult& synth, std::size_t n,
                      const std::vector<std::size_t>& seed_counts,
                      std::size_t horizon, std::uint64_t seed,
                      bool simultaneous = true) {
  sim::RuntimeOptions options;
  options.simultaneous_updates = simultaneous;
  sim::MachineExecutor executor(synth.machine, options);
  sim::SyncSimulator simulator(n, executor, seed);
  simulator.seed_states(seed_counts);

  const std::size_t m = synth.machine.num_states();
  num::Vec x(m, 0.0);
  for (std::size_t s = 0; s < seed_counts.size(); ++s) {
    x[s] = static_cast<double>(seed_counts[s]) / static_cast<double>(n);
  }
  double assigned = 0.0;
  for (double v : x) assigned += v;
  x[0] += 1.0 - assigned;

  double worst = 0.0;
  for (std::size_t t = 0; t < horizon; ++t) {
    simulator.run(1);
    const num::Vec drift = core::exact_drift(synth.machine, x);
    for (std::size_t s = 0; s < m; ++s) x[s] += drift[s];
    for (std::size_t s = 0; s < m; ++s) {
      const double simulated =
          static_cast<double>(simulator.group().count(s)) /
          static_cast<double>(n);
      worst = std::max(worst, std::abs(simulated - x[s]));
    }
  }
  return worst;
}

TEST(EquivalenceTest, EpidemicGapShrinksWithN) {
  const auto synth = core::synthesize(ode::catalog::epidemic());
  double gap_small = 0.0, gap_large = 0.0;
  const int trials = 4;
  for (std::uint64_t t = 0; t < trials; ++t) {
    gap_small += trajectory_gap(synth, 400, {360, 40}, 15, 10 + t);
    gap_large += trajectory_gap(synth, 6400, {5760, 640}, 15, 20 + t);
  }
  // sqrt(6400/400) = 4: expect a clear reduction, with slack for the
  // trajectory's sensitivity to early fluctuations.
  EXPECT_LT(gap_large, gap_small / 1.5);
  EXPECT_LT(gap_large / trials, 0.02);
}

TEST(EquivalenceTest, LvGapSmallAtModerateN) {
  const auto synth =
      core::synthesize(ode::catalog::lv_partitionable(), {.p = 0.05});
  const double gap = trajectory_gap(synth, 5000, {3000, 2000, 0}, 40, 7);
  EXPECT_LT(gap, 0.03);
}

TEST(EquivalenceTest, EndemicPureMachineTracksMeanField) {
  // The pure synthesized endemic machine (p = 1/beta) away from
  // equilibrium.
  const auto synth = core::synthesize(ode::catalog::endemic(4.0, 1.0, 0.1));
  const double gap = trajectory_gap(synth, 8000, {7200, 800, 0}, 60, 3);
  EXPECT_LT(gap, 0.04);
}

TEST(EquivalenceTest, TokenizedMachineTracksMeanField) {
  // Theorem 5's subclass: the invitation system uses Tokenizing; the
  // directory-routed runtime must still track the mean field. Horizon kept
  // short of the x-exhaustion point where token-drop saturation kicks in.
  const auto synth = core::synthesize(ode::catalog::invitation(0.1));
  const double gap = trajectory_gap(synth, 4000, {3000, 1000}, 10, 11);
  EXPECT_LT(gap, 0.03);
}

TEST(EquivalenceTest, SequencingBiasIsSecondOrder) {
  // Live (Gauss-Seidel) semantics: processes observe targets' states at
  // probe time. The deviation from the simultaneous-update mean field is
  // O(rate^2) per period, so at rates <= 0.1 the live-mode gap stays near
  // the sampling-noise floor.
  auto scaled = ode::catalog::epidemic().scaled(0.1);
  const auto synth = core::synthesize(scaled);
  const double gap = trajectory_gap(synth, 4000, {3600, 400}, 60, 13,
                                    /*simultaneous=*/false);
  EXPECT_LT(gap, 0.03);
}

TEST(EquivalenceTest, LiveSemanticsDivergeAtRateOne) {
  // The flip side: at coin bias 1.0 (the raw epidemic), live semantics
  // compound within the period and outrun the simultaneous mean field --
  // the discretization artifact the normalizing constant p exists to tame.
  const auto synth = core::synthesize(ode::catalog::epidemic());
  const double live = trajectory_gap(synth, 4000, {3600, 400}, 10, 17,
                                     /*simultaneous=*/false);
  const double sync = trajectory_gap(synth, 4000, {3600, 400}, 10, 17,
                                     /*simultaneous=*/true);
  EXPECT_GT(live, 3.0 * sync);
}

}  // namespace
}  // namespace deproto
