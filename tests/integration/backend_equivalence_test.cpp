// Scheduler-independence under faults: every registry scenario with a
// fault plan must reach the same steady state whether executed
// round-synchronously, fully asynchronously (the event backend), or as a
// pure count vector (the count backend), and all three must sit near the
// mean-field recursion's endpoint. This is the paper's central claim
// composed with the unified Simulator fault surface: massive failures,
// background crash-recovery, and churn all run on every backend now, so
// the steady states have to agree up to finite-size noise (plus, for the
// recovery/churn scenarios, the rejoin influx the mean field does not
// model).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/mean_field.hpp"

namespace deproto {
namespace {

/// Alive-normalized state fractions averaged over the last `window` series
/// points (averaging smooths the per-period binomial fluctuations).
std::vector<double> tail_fractions(const api::ExperimentResult& result,
                                   std::size_t window) {
  const std::size_t m = result.state_names.size();
  std::vector<double> fractions(m, 0.0);
  const std::size_t first = result.series.size() > window
                                ? result.series.size() - window
                                : 0;
  std::size_t used = 0;
  for (std::size_t i = first; i < result.series.size(); ++i) {
    const api::PeriodPoint& point = result.series[i];
    if (point.total_alive == 0) continue;
    for (std::size_t s = 0; s < m; ++s) {
      fractions[s] += static_cast<double>(point.counts[s]) /
                      static_cast<double>(point.total_alive);
    }
    ++used;
  }
  if (used > 0) {
    for (double& f : fractions) f /= static_cast<double>(used);
  }
  return fractions;
}

double max_gap(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t s = 0; s < a.size(); ++s) {
    worst = std::max(worst, std::abs(a[s] - b[s]));
  }
  return worst;
}

/// Endpoint of the exact mean-field recursion started from the spec's
/// initial fractions. Faults are not modeled: a uniform massive failure
/// preserves fractions in expectation, while crash-recovery/churn add a
/// rejoin influx the comparison tolerance absorbs.
std::vector<double> mean_field_endpoint(api::Experiment& experiment) {
  const core::ProtocolStateMachine& machine =
      experiment.artifacts().synthesis.machine;
  const api::ScenarioSpec& spec = experiment.spec();
  const std::size_t m = machine.num_states();
  num::Vec x(m, 0.0);
  for (std::size_t s = 0; s < spec.initial_counts.size(); ++s) {
    x[s] = static_cast<double>(spec.initial_counts[s]) /
           static_cast<double>(spec.n);
  }
  double assigned = 0.0;
  for (double v : x) assigned += v;
  x[0] += 1.0 - assigned;
  for (std::size_t t = 0; t < spec.periods; ++t) {
    const num::Vec drift = core::exact_drift(machine, x);
    for (std::size_t s = 0; s < m; ++s) x[s] += drift[s];
  }
  return {x.begin(), x.end()};
}

TEST(BackendEquivalenceTest, FaultScenariosAgreeAcrossBackendsAndMeanField) {
  for (const std::string& name : api::registry_names()) {
    api::ScenarioSpec base = api::registry_get(name);
    if (!base.faults.any()) continue;
    // The -event/-count registry variants carry the same fault plans as
    // their sync siblings (the smoke matrix exercises them); comparing
    // each base scenario across all backends here covers the physics once.
    if (name.ends_with("-event") || name.ends_with("-count")) continue;

    base = base.scaled_to(500);
    // Fire scheduled failures early enough that the post-failure steady
    // state dominates the comparison window.
    for (sim::MassiveFailure& f : base.faults.massive_failures) {
      f.time = std::min(f.time, 50.0);
    }

    api::ScenarioSpec sync_spec = base;
    sync_spec.backend = api::Backend::Sync;
    api::ScenarioSpec event_spec = base;
    event_spec.backend = api::Backend::Event;
    api::ScenarioSpec count_spec = base;
    count_spec.backend = api::Backend::Count;

    api::Experiment sync_exp(sync_spec);
    api::Experiment event_exp(event_spec);
    api::Experiment count_exp(count_spec);
    const api::ExperimentResult sync_result = sync_exp.run();
    const api::ExperimentResult event_result = event_exp.run();
    const api::ExperimentResult count_result = count_exp.run();

    const std::size_t window = 20;
    const std::vector<double> sync_tail =
        tail_fractions(sync_result, window);
    const std::vector<double> event_tail =
        tail_fractions(event_result, window);
    const std::vector<double> count_tail =
        tail_fractions(count_result, window);

    // Backend agreement: finite-size noise plus the event backend's
    // probe-time sequencing (and the count backend's Jacobi/anonymous
    // approximations), at N = 500 over a 20-period window.
    EXPECT_LT(max_gap(sync_tail, event_tail), 0.10) << name;
    EXPECT_LT(max_gap(sync_tail, count_tail), 0.10) << name;

    // Mean-field agreement: looser, because the recursion models neither
    // the rejoin influx (crash-recovery, churn) nor sequencing bias.
    const std::vector<double> mean_field = mean_field_endpoint(sync_exp);
    EXPECT_LT(max_gap(sync_tail, mean_field), 0.17) << name;
    EXPECT_LT(max_gap(event_tail, mean_field), 0.17) << name;
    EXPECT_LT(max_gap(count_tail, mean_field), 0.17) << name;

    // Every backend recorded the full horizon and kept processes alive.
    EXPECT_EQ(sync_result.series.size(), base.periods) << name;
    EXPECT_EQ(event_result.series.size(), base.periods) << name;
    EXPECT_EQ(count_result.series.size(), base.periods) << name;
    EXPECT_GT(event_result.final_alive, 0U) << name;
    EXPECT_GT(count_result.final_alive, 0U) << name;
  }
}

TEST(BackendEquivalenceTest, CleanConvergenceAgreesAcrossAllThreeBackends) {
  // No faults: the LV majority vote must converge to the same absorbing
  // majority at a comparable pace on all three backends (the count
  // backend's settle time is the figure the gigascale sweeps report, so
  // it has to line up with the per-node backends it replaces).
  api::ScenarioSpec base = api::registry_get("lv-majority").scaled_to(2000);
  for (const api::Backend backend :
       {api::Backend::Sync, api::Backend::Event, api::Backend::Count}) {
    api::ScenarioSpec spec = base;
    spec.backend = backend;
    api::Experiment experiment(spec);
    const api::ExperimentResult result = experiment.run();
    const char* label = api::backend_name(backend);
    EXPECT_TRUE(result.convergence.absorbed) << label;
    EXPECT_EQ(result.convergence.dominant_state, 0U) << label;  // state x
    EXPECT_DOUBLE_EQ(result.convergence.dominant_fraction, 1.0) << label;
    // All backends absorb the 60/40 split well before period 200 (the
    // sync baseline settles near period 60; a generous margin absorbs
    // scheduler noise without letting divergent dynamics pass).
    EXPECT_GE(result.convergence.settle_time, 0.0) << label;
    EXPECT_LT(result.convergence.settle_time, 200.0) << label;
  }
}

}  // namespace
}  // namespace deproto
