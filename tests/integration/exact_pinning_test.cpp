// The two tiers validate each other: analysis::ExactChain claims exact
// absorption probabilities and hitting times for the count-backend
// dynamics, and sim::CountSimulator can estimate the same quantities
// empirically. At N <= 64 both are cheap, so this suite pins them
// against each other within binomial/CLT statistical tolerance -- the
// ISSUE 10 acceptance criterion. A disagreement here means either the
// kernel convolution or the sampler drifted from the shared
// core::transition_channels model.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/exact_chain.hpp"
#include "api/registry.hpp"
#include "api/spec.hpp"
#include "core/synthesis.hpp"
#include "sim/count_sim.hpp"

namespace {

using deproto::analysis::CommunicatingClass;
using deproto::analysis::ExactChain;
using deproto::analysis::ExactChainOptions;
using deproto::api::ScenarioSpec;
using deproto::sim::CountSimOptions;
using deproto::sim::CountSimulator;

struct AbsorptionSample {
  std::size_t cls = 0;      // index into chain.classes()
  std::size_t periods = 0;  // first period the chain state was absorbing
};

/// Run one count-backend replicate until the count vector lands in an
/// absorbing chain state (cap: `max_periods`, fails the test if hit).
AbsorptionSample run_until_absorbed(const ScenarioSpec& spec,
                                    const ExactChain& chain,
                                    std::uint64_t seed,
                                    std::size_t max_periods) {
  const auto machine =
      deproto::core::synthesize(spec.resolve_source(), spec.synthesis)
          .machine;
  CountSimOptions options;
  options.message_loss = spec.runtime.message_loss;
  options.tokens = spec.runtime.tokens;
  CountSimulator sim(spec.n, machine, seed, options);
  sim.seed_states(spec.initial_counts);

  std::vector<std::size_t> counts(sim.num_states());
  for (std::size_t period = 0;; ++period) {
    for (std::size_t s = 0; s < counts.size(); ++s) counts[s] = sim.count(s);
    const std::size_t idx = *chain.index_of(counts);
    const CommunicatingClass& cls = chain.classes()[chain.class_of(idx)];
    if (cls.absorbing) return {chain.class_of(idx), period};
    if (period >= max_periods) {
      ADD_FAILURE() << "replicate never absorbed within " << max_periods
                    << " periods (seed " << seed << ")";
      return {chain.class_of(idx), period};
    }
    sim.run(1);
  }
}

TEST(ExactPinningTest, LvMajoritySplitAbsorptionMatchesCountBackend) {
  // lv-majority at N = 24 with a 14/10 seed absorbs into the all-x or
  // all-y corner with a genuinely split probability -- the sharpest
  // cross-check available: a biased kernel would shift the split.
  ScenarioSpec spec =
      deproto::api::registry_get("lv-majority").scaled_to(24);
  const auto machine =
      deproto::core::synthesize(spec.resolve_source(), spec.synthesis)
          .machine;
  ExactChainOptions options;
  options.n = spec.n;
  options.message_loss = spec.runtime.message_loss;
  options.tokens = spec.runtime.tokens;
  const ExactChain chain(machine, options);

  const std::size_t start = chain.seeded_index(spec.initial_counts);
  const std::vector<double> exact = chain.absorption_probabilities(start);

  // Identify the all-x corner's class.
  std::vector<std::size_t> corner(machine.num_states(), 0);
  corner[0] = spec.n;
  const std::size_t all_x = chain.class_of(*chain.index_of(corner));
  const double p_exact = exact[all_x];
  ASSERT_GT(p_exact, 0.05) << "seed choice should leave a real split";
  ASSERT_LT(p_exact, 0.95) << "seed choice should leave a real split";

  const std::size_t replicates = 1500;
  std::size_t hits = 0;
  for (std::size_t r = 0; r < replicates; ++r) {
    const AbsorptionSample sample =
        run_until_absorbed(spec, chain, 0x51C0FFEEu + r, 20000);
    if (sample.cls == all_x) ++hits;
  }
  const double p_hat =
      static_cast<double>(hits) / static_cast<double>(replicates);
  const double sigma =
      std::sqrt(p_exact * (1.0 - p_exact) / static_cast<double>(replicates));
  EXPECT_NEAR(p_hat, p_exact, 4.5 * sigma)
      << "empirical " << p_hat << " vs exact " << p_exact << " (sigma "
      << sigma << ")";
}

TEST(ExactPinningTest, EpidemicHittingTimeMatchesCountBackend) {
  // Epidemic at N = 16 absorbs into all-y with probability 1; the exact
  // expected hitting time must match the empirical mean periods to
  // absorption within CLT tolerance.
  ScenarioSpec spec = deproto::api::registry_get("epidemic").scaled_to(16);
  const auto machine =
      deproto::core::synthesize(spec.resolve_source(), spec.synthesis)
          .machine;
  ExactChainOptions options;
  options.n = spec.n;
  options.message_loss = spec.runtime.message_loss;
  const ExactChain chain(machine, options);

  const std::size_t start = chain.seeded_index(spec.initial_counts);
  const double t_exact = chain.expected_absorption_time(start);
  ASSERT_GT(t_exact, 1.0);

  std::vector<std::size_t> all_y(machine.num_states(), 0);
  all_y[1] = spec.n;
  const std::size_t target = chain.class_of(*chain.index_of(all_y));
  const std::vector<double> exact = chain.absorption_probabilities(start);
  EXPECT_NEAR(exact[target], 1.0, 1e-9);

  const std::size_t replicates = 800;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t r = 0; r < replicates; ++r) {
    const AbsorptionSample sample =
        run_until_absorbed(spec, chain, 0xE51Du + 7919u * r, 20000);
    EXPECT_EQ(sample.cls, target) << "epidemic must absorb into all-y";
    const double t = static_cast<double>(sample.periods);
    sum += t;
    sum_sq += t * t;
  }
  const double mean = sum / static_cast<double>(replicates);
  const double var =
      sum_sq / static_cast<double>(replicates) - mean * mean;
  const double sigma_mean =
      std::sqrt(var / static_cast<double>(replicates));
  EXPECT_NEAR(mean, t_exact, 5.0 * sigma_mean)
      << "empirical " << mean << " vs exact " << t_exact << " (sigma "
      << sigma_mean << ")";
}

}  // namespace
