// Build-integrity test: includes ONLY the umbrella header and exercises one
// symbol from each of the seven layers. If a header drops out of deproto.hpp
// (or deproto.hpp stops compiling standalone), this fails to build.

#include "deproto.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

TEST(UmbrellaHeaderTest, OdeLayerIsReachable) {
  const deproto::ode::Term t;
  EXPECT_TRUE(t.is_constant());
  EXPECT_DOUBLE_EQ(t.coefficient(), 0.0);
}

TEST(UmbrellaHeaderTest, NumericsLayerIsReachable) {
  const std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {10.0, 20.0};
  deproto::num::axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(UmbrellaHeaderTest, CoreLayerIsReachable) {
  const deproto::core::ProtocolStateMachine machine({"x", "y"}, 0.25);
  EXPECT_EQ(machine.num_states(), 2U);
  EXPECT_DOUBLE_EQ(machine.normalizing_p(), 0.25);
}

TEST(UmbrellaHeaderTest, ProtocolsLayerIsReachable) {
  const deproto::proto::LvMajority lv(deproto::proto::LvParams{});
  EXPECT_EQ(lv.num_states(), 3U);
  EXPECT_EQ(lv.rejoin_state(), deproto::proto::LvMajority::kZ);
}

TEST(UmbrellaHeaderTest, SimLayerIsReachable) {
  deproto::sim::Rng rng(42);
  const double u = rng.uniform01();
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
}

TEST(UmbrellaHeaderTest, ApiLayerIsReachable) {
  const deproto::api::Json j = deproto::api::Json::parse(R"({"n":3})");
  EXPECT_EQ(j.at("n").as_size(), 3U);
  EXPECT_FALSE(deproto::api::registry_names().empty());
  EXPECT_EQ(deproto::api::backend_name(deproto::api::Backend::Sync),
            std::string("sync"));
}

TEST(UmbrellaHeaderTest, AnalysisLayerIsReachable) {
  deproto::analysis::Report report;
  report.findings.push_back({deproto::analysis::Severity::Warning,
                             "spec.token-ttl", "runtime.token_ttl", "", 0.0});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warnings(), 1U);
}

TEST(UmbrellaHeaderTest, DistLayerIsReachable) {
  deproto::dist::Frame frame;
  frame.type = deproto::dist::FrameType::Heartbeat;
  frame.payload = "{}";
  const std::string bytes = deproto::dist::encode_frame(frame);
  deproto::dist::FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  deproto::dist::Frame decoded;
  EXPECT_EQ(decoder.next(&decoded), deproto::dist::FrameDecoder::Status::Frame);
  EXPECT_EQ(decoded, frame);
}

}  // namespace
