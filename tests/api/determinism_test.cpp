// The determinism contract, pinned as regression tests:
//   1. the same ScenarioSpec run twice dumps byte-identical result JSON
//      (in the canonical to_json(false) form, which excludes wall-clock);
//   2. the same SweepSpec produces byte-identical aggregated JSON and
//      JSONL whether SuiteRunner uses 1 thread or many.
// Faulty scenarios are exercised on purpose: crash-recovery, churn, and
// massive failures all draw from simulator RNG streams, so any hidden
// shared state or order dependence would show up here first.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "api/suite_runner.hpp"
#include "api/sweep.hpp"

namespace deproto::api {
namespace {

ScenarioSpec shrunk(const std::string& name) {
  ScenarioSpec spec = registry_get(name).scaled_to(300);
  spec.periods = 10;
  for (sim::MassiveFailure& f : spec.faults.massive_failures) {
    f.time = 5.0;
  }
  return spec;
}

TEST(DeterminismTest, SameSpecTwiceIsByteIdentical) {
  // One representative per fault-plan feature, on both backends.
  const std::vector<std::string> scenarios = {
      "epidemic",       "epidemic-event",
      "lv-majority-failure", "endemic-crash-recovery",
      "endemic-churn",  "endemic-churn-event",
  };
  for (const std::string& name : scenarios) {
    const ScenarioSpec spec = shrunk(name);
    const std::string first =
        Experiment(spec).run().to_json(false).dump(2);
    const std::string second =
        Experiment(spec).run().to_json(false).dump(2);
    EXPECT_EQ(first, second) << name;
    // The timing field is genuinely excluded, not just zero.
    EXPECT_EQ(first.find("elapsed_seconds"), std::string::npos) << name;
  }
}

TEST(DeterminismTest, TimingFormDiffersOnlyInElapsed) {
  const ScenarioSpec spec = shrunk("epidemic");
  const ExperimentResult result = Experiment(spec).run();
  EXPECT_GT(result.elapsed_seconds, 0.0);
  const Json timed = result.to_json(true);
  EXPECT_TRUE(timed.contains("elapsed_seconds"));
  // Round trip keeps the elapsed value.
  const ExperimentResult back = ExperimentResult::from_json(timed);
  EXPECT_DOUBLE_EQ(back.elapsed_seconds, result.elapsed_seconds);
  // And the deterministic projections agree.
  EXPECT_EQ(back.to_json(false).dump(), result.to_json(false).dump());
}

TEST(DeterminismTest, ThreadCountNeverChangesSweepOutput) {
  SweepSpec sweep;
  sweep.name = "determinism";
  sweep.base = shrunk("endemic-crash-recovery");
  sweep.axes.push_back(
      SweepAxis{"n", {Json::number(200), Json::number(300)}});
  {
    SweepAxis backend;
    backend.field = "backend";
    backend.values.push_back(Json::string("sync"));
    backend.values.push_back(Json::string("event"));
    sweep.axes.push_back(std::move(backend));
  }
  sweep.replicates = 2;  // 8 jobs

  std::string json_by_threads[2];
  std::string jsonl_by_threads[2];
  const std::size_t thread_counts[2] = {1, 8};
  for (std::size_t i = 0; i < 2; ++i) {
    std::ostringstream jsonl;
    SuiteOptions options;
    options.threads = thread_counts[i];
    options.jsonl = &jsonl;
    const SweepResult result = SuiteRunner(options).run(sweep);
    EXPECT_EQ(result.jobs_failed, 0U);
    json_by_threads[i] = result.to_json(false).dump(2);
    jsonl_by_threads[i] = jsonl.str();
  }
  EXPECT_EQ(json_by_threads[0], json_by_threads[1]);
  EXPECT_EQ(jsonl_by_threads[0], jsonl_by_threads[1]);
  EXPECT_EQ(json_by_threads[0].find("elapsed_seconds"), std::string::npos);
}

TEST(DeterminismTest, CountBackendSweepIsThreadCountInvariant) {
  // The gigascale path: a count-backend sweep (with a fault plan, so the
  // fault RNG streams are in play) writes byte-identical aggregated JSON
  // and JSONL on 1 and 8 worker threads.
  SweepSpec sweep;
  sweep.name = "count-determinism";
  sweep.base = shrunk("endemic-crash-recovery");
  sweep.base.backend = Backend::Count;
  sweep.axes.push_back(
      SweepAxis{"n", {Json::number(200), Json::number(300)}});
  sweep.replicates = 2;  // 4 jobs

  std::string json_by_threads[2];
  std::string jsonl_by_threads[2];
  const std::size_t thread_counts[2] = {1, 8};
  for (std::size_t i = 0; i < 2; ++i) {
    std::ostringstream jsonl;
    SuiteOptions options;
    options.threads = thread_counts[i];
    options.jsonl = &jsonl;
    const SweepResult result = SuiteRunner(options).run(sweep);
    EXPECT_EQ(result.jobs_failed, 0U);
    json_by_threads[i] = result.to_json(false).dump(2);
    jsonl_by_threads[i] = jsonl.str();
  }
  EXPECT_EQ(json_by_threads[0], json_by_threads[1]);
  EXPECT_EQ(jsonl_by_threads[0], jsonl_by_threads[1]);
}

TEST(DeterminismTest, RerunningASweepIsByteIdentical) {
  SweepSpec sweep;
  sweep.base = shrunk("lv-majority-failure");
  sweep.replicates = 3;
  SuiteOptions options;
  options.threads = 4;
  const std::string first =
      SuiteRunner(options).run(sweep).to_json(false).dump(2);
  const std::string second =
      SuiteRunner(options).run(sweep).to_json(false).dump(2);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace deproto::api
