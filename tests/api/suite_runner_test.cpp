// SuiteRunner semantics: the worker pool preserves job-index ordering for
// every sink, aggregates match hand-computed statistics, job failures are
// captured without aborting the suite, and the aggregated document is
// identical no matter how many threads executed the jobs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <sstream>
#include <vector>

#include "api/registry.hpp"
#include "api/suite_runner.hpp"
#include "api/sweep.hpp"

namespace deproto::api {
namespace {

SweepSpec small_sweep() {
  SweepSpec sweep;
  sweep.name = "unit";
  sweep.base = registry_get("epidemic").scaled_to(300);
  sweep.base.periods = 6;
  sweep.axes.push_back(
      SweepAxis{"n", {Json::number(200), Json::number(300)}});
  sweep.replicates = 2;
  return sweep;
}

TEST(AggregateTest, MatchesHandComputedStatistics) {
  const Aggregate a = Aggregate::of({2.0, 4.0, 6.0, 8.0});
  EXPECT_EQ(a.count, 4U);
  EXPECT_DOUBLE_EQ(a.mean, 5.0);
  EXPECT_DOUBLE_EQ(a.min, 2.0);
  EXPECT_DOUBLE_EQ(a.max, 8.0);
  // Population stddev: sqrt((9 + 1 + 1 + 9) / 4).
  EXPECT_DOUBLE_EQ(a.stddev, std::sqrt(5.0));

  const Aggregate empty = Aggregate::of({});
  EXPECT_EQ(empty.count, 0U);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);

  const Aggregate one = Aggregate::of({3.5});
  EXPECT_EQ(one.count, 1U);
  EXPECT_DOUBLE_EQ(one.mean, 3.5);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  EXPECT_EQ(Aggregate::from_json(one.to_json()), one);
}

TEST(SuiteRunnerTest, RunsEveryJobAndAggregatesPerPoint) {
  const SweepResult result = SuiteRunner().run(small_sweep());
  EXPECT_EQ(result.jobs_total, 4U);
  EXPECT_EQ(result.jobs_failed, 0U);
  ASSERT_EQ(result.jobs.size(), 4U);
  ASSERT_EQ(result.points.size(), 2U);
  for (const PointSummary& point : result.points) {
    EXPECT_EQ(point.replicates, 2U);
    const Aggregate* alive = point.metric("final_alive");
    ASSERT_NE(alive, nullptr);
    EXPECT_EQ(alive->count, 2U);
    EXPECT_NE(point.metric("settle_time"), nullptr);
    EXPECT_NE(point.metric("dominant_fraction"), nullptr);
    EXPECT_EQ(point.metric("no_such_metric"), nullptr);
    EXPECT_EQ(point.elapsed.count, 2U);
  }
  // No failures: both points aggregate the epidemic's absorption.
  EXPECT_DOUBLE_EQ(result.points[0].metric("final_alive")->mean, 200.0);
  EXPECT_DOUBLE_EQ(result.points[1].metric("final_alive")->mean, 300.0);
  EXPECT_GT(result.elapsed_seconds, 0.0);
  EXPECT_GT(result.jobs_per_second(), 0.0);
}

TEST(SuiteRunnerTest, OnResultFiresInJobIndexOrder) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::size_t> seen;
    SuiteOptions options;
    options.threads = threads;
    options.on_result = [&seen](const JobOutcome& outcome) {
      seen.push_back(outcome.job.index);
    };
    const SweepResult result = SuiteRunner(options).run(small_sweep());
    EXPECT_EQ(result.threads, threads);
    ASSERT_EQ(seen.size(), 4U) << threads;
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], i) << threads;
    }
  }
}

TEST(SuiteRunnerTest, ThreadCountNeverChangesAggregatedJsonOrJsonl) {
  std::ostringstream jsonl1, jsonl4;
  SuiteOptions one;
  one.threads = 1;
  one.jsonl = &jsonl1;
  SuiteOptions four;
  four.threads = 4;
  four.jsonl = &jsonl4;

  const SweepResult r1 = SuiteRunner(one).run(small_sweep());
  const SweepResult r4 = SuiteRunner(four).run(small_sweep());
  EXPECT_EQ(r1.to_json(false).dump(2), r4.to_json(false).dump(2));
  EXPECT_EQ(jsonl1.str(), jsonl4.str());
  EXPECT_FALSE(jsonl1.str().empty());
}

TEST(SuiteRunnerTest, MoreThreadsThanJobsIsFine) {
  SweepSpec sweep = small_sweep();
  sweep.axes.clear();
  sweep.replicates = 1;  // a single job
  SuiteOptions options;
  options.threads = 16;
  const SweepResult result = SuiteRunner(options).run(sweep);
  EXPECT_EQ(result.jobs_total, 1U);
  EXPECT_EQ(result.threads, 1U);  // clamped to the job count
  EXPECT_EQ(result.jobs_failed, 0U);
}

TEST(SuiteRunnerTest, JobFailuresAreCapturedNotFatal) {
  SweepSpec sweep = small_sweep();
  sweep.replicates = 1;
  // Point 0 (n=200) breaks at launch: more seeded states than machine
  // states. Point 1 stays valid.
  sweep.axes.clear();
  sweep.axes.push_back(
      SweepAxis{"periods", {Json::number(5), Json::number(6)}});
  sweep.base.initial_counts = {100, 100, 100};

  const SweepResult result = SuiteRunner().run(sweep);
  EXPECT_EQ(result.jobs_total, 2U);
  EXPECT_EQ(result.jobs_failed, 2U);
  for (const JobOutcome& outcome : result.jobs) {
    EXPECT_FALSE(outcome.ok);
    EXPECT_FALSE(outcome.error.empty());
  }
  // Failed-only points report zero successful replicates, no metrics.
  ASSERT_EQ(result.points.size(), 2U);
  EXPECT_EQ(result.points[0].replicates, 0U);
  EXPECT_TRUE(result.points[0].metrics.empty());
  // The failures appear in the serialized document, and survive a parse
  // -> re-dump round trip byte-for-byte.
  const Json j = result.to_json(false);
  EXPECT_EQ(j.at("failures").size(), 2U);
  EXPECT_EQ(SweepResult::from_json(j).to_json(false).dump(2), j.dump(2));
}

TEST(SuiteRunnerTest, MixedFailureStillAggregatesTheHealthyPoint) {
  SweepSpec sweep;
  sweep.name = "mixed";
  sweep.base = registry_get("epidemic").scaled_to(200);
  sweep.base.periods = 5;
  SweepAxis axis;
  axis.field = "backend";
  axis.values.push_back(Json::string("sync"));
  axis.values.push_back(Json::string("no-such-backend"));
  // The bad value throws at expansion time -- so validate the expansion
  // error path too, then fix the axis and check partial failure capture
  // via a bad catalog id instead.
  sweep.axes.push_back(axis);
  EXPECT_THROW((void)SuiteRunner().run(sweep), SpecError);

  // Replicates share a spec, so one-bad-one-good needs two points: zip a
  // valid clock drift against one EventSimulator rejects at launch.
  sweep.axes.clear();
  sweep.replicates = 1;
  sweep.mode = SweepMode::Zip;
  SweepAxis seeds;
  seeds.field = "seed";
  seeds.values.push_back(Json::number(1));
  seeds.values.push_back(Json::number(2));
  sweep.axes.push_back(seeds);
  SweepAxis drift;
  drift.field = "clock_drift";
  drift.values.push_back(Json::number(0.05));
  drift.values.push_back(Json::number(-2.0));  // invalid at launch
  sweep.axes.push_back(drift);
  sweep.base.backend = Backend::Event;

  const SweepResult result = SuiteRunner().run(sweep);
  EXPECT_EQ(result.jobs_total, 2U);
  EXPECT_EQ(result.jobs_failed, 1U);
  EXPECT_TRUE(result.jobs[0].ok);
  EXPECT_FALSE(result.jobs[1].ok);
  EXPECT_EQ(result.points[0].replicates, 1U);
  EXPECT_EQ(result.points[1].replicates, 0U);
}

TEST(SuiteRunnerTest, StoreResultsOffDropsSeriesButKeepsAggregates) {
  SuiteOptions options;
  options.store_results = false;
  const SweepResult result = SuiteRunner(options).run(small_sweep());
  EXPECT_EQ(result.jobs_failed, 0U);
  for (const JobOutcome& outcome : result.jobs) {
    EXPECT_TRUE(outcome.ok);  // identity and status survive
    EXPECT_TRUE(outcome.result.series.empty());
  }
  EXPECT_EQ(result.points.size(), 2U);
  EXPECT_NE(result.points[0].metric("final_alive"), nullptr);
}

TEST(SweepResultTest, JsonRoundTripsDeterministicAndTimingForms) {
  const SweepResult result = SuiteRunner().run(small_sweep());

  const SweepResult deterministic =
      SweepResult::from_json(Json::parse(result.to_json(false).dump(2)));
  EXPECT_EQ(deterministic.sweep, result.sweep);
  EXPECT_EQ(deterministic.jobs_total, result.jobs_total);
  EXPECT_EQ(deterministic.jobs_failed, result.jobs_failed);
  ASSERT_EQ(deterministic.points.size(), result.points.size());
  for (std::size_t p = 0; p < result.points.size(); ++p) {
    EXPECT_EQ(deterministic.points[p].point, result.points[p].point);
    EXPECT_EQ(deterministic.points[p].coords, result.points[p].coords);
    EXPECT_EQ(deterministic.points[p].metrics, result.points[p].metrics);
    // Timing is NOT in the deterministic form.
    EXPECT_EQ(deterministic.points[p].elapsed, Aggregate{});
  }
  EXPECT_DOUBLE_EQ(deterministic.elapsed_seconds, 0.0);

  const SweepResult timed =
      SweepResult::from_json(Json::parse(result.to_json(true).dump(2)));
  EXPECT_DOUBLE_EQ(timed.elapsed_seconds, result.elapsed_seconds);
  EXPECT_EQ(timed.threads, result.threads);
  EXPECT_EQ(timed.points[0].elapsed, result.points[0].elapsed);
}

TEST(SuiteRunnerTest, JsonlSinkFailureMarksTheRun) {
  // A full disk does not throw: ostream write failures are silent state.
  // This streambuf refuses every byte, the worst-case sink.
  class RefusingBuf : public std::streambuf {
   protected:
    int_type overflow(int_type) override { return traits_type::eof(); }
  };
  RefusingBuf buf;
  std::ostream sink(&buf);

  SuiteOptions options;
  options.jsonl = &sink;
  const SweepResult result = SuiteRunner(options).run(small_sweep());
  // The jobs themselves succeeded; only the sink is bad -- and the run
  // says so instead of reporting a truncated file as success.
  EXPECT_EQ(result.jobs_failed, 0U);
  EXPECT_TRUE(result.jsonl_failed);
  // The mark survives serialization (both forms) and the round trip;
  // healthy documents carry no such key, so their bytes are unchanged.
  EXPECT_TRUE(result.to_json(false).get_or("jsonl_failed", false));
  EXPECT_TRUE(SweepResult::from_json(result.to_json(false)).jsonl_failed);
  const SweepResult healthy = SuiteRunner().run(small_sweep());
  EXPECT_FALSE(healthy.to_json(false).contains("jsonl_failed"));
}

TEST(SuiteRunnerTest, JsonlLinesAreOnePerJobInOrder) {
  std::ostringstream jsonl;
  SuiteOptions options;
  options.jsonl = &jsonl;
  const SweepResult result = SuiteRunner(options).run(small_sweep());
  (void)result;

  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const Json parsed = Json::parse(line);
    EXPECT_EQ(parsed.at("job").as_size(), count);
    EXPECT_TRUE(parsed.at("ok").as_bool());
    EXPECT_TRUE(parsed.contains("result"));
    // No timing in JSONL by default (byte-identical across threads).
    EXPECT_FALSE(parsed.at("result").contains("elapsed_seconds"));
    ++count;
  }
  EXPECT_EQ(count, 4U);
}

}  // namespace
}  // namespace deproto::api
