// SweepSpec semantics: axis application on every supported field, grid /
// zip expansion order and counts, deterministic replicate-seed derivation
// via sim::Rng splitting, and the JSON round trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <limits>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "api/suite_runner.hpp"
#include "api/sweep.hpp"

namespace deproto::api {
namespace {

ScenarioSpec small_base() {
  ScenarioSpec base = registry_get("epidemic").scaled_to(400);
  base.periods = 8;
  return base;
}

Json num(double v) { return Json::number(v); }

TEST(SweepSpecTest, GridExpandsAsNestedLoops) {
  SweepSpec sweep;
  sweep.base = small_base();
  sweep.axes.push_back(SweepAxis{"n", {num(200), num(400)}});
  sweep.axes.push_back(SweepAxis{"periods", {num(4), num(6), num(8)}});

  EXPECT_EQ(sweep.point_count(), 6U);
  EXPECT_EQ(sweep.job_count(), 6U);
  const std::vector<SweepJob> jobs = sweep.expand();
  ASSERT_EQ(jobs.size(), 6U);
  // First axis outermost: n=200 x {4,6,8}, then n=400 x {4,6,8}.
  EXPECT_EQ(jobs[0].spec.n, 200U);
  EXPECT_EQ(jobs[0].spec.periods, 4U);
  EXPECT_EQ(jobs[2].spec.n, 200U);
  EXPECT_EQ(jobs[2].spec.periods, 8U);
  EXPECT_EQ(jobs[3].spec.n, 400U);
  EXPECT_EQ(jobs[3].spec.periods, 4U);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].point, i);  // replicates == 1
    EXPECT_EQ(jobs[i].replicate, 0U);
    ASSERT_EQ(jobs[i].coords.size(), 2U);
    EXPECT_EQ(jobs[i].coords[0].first, "n");
    EXPECT_EQ(jobs[i].coords[1].first, "periods");
  }
}

TEST(SweepSpecTest, ZipWalksAxesInLockstep) {
  SweepSpec sweep;
  sweep.base = small_base();
  sweep.mode = SweepMode::Zip;
  sweep.axes.push_back(SweepAxis{"n", {num(200), num(300)}});
  sweep.axes.push_back(SweepAxis{"seed", {num(7), num(11)}});

  const std::vector<SweepJob> jobs = sweep.expand();
  ASSERT_EQ(jobs.size(), 2U);
  EXPECT_EQ(jobs[0].spec.n, 200U);
  EXPECT_EQ(jobs[0].spec.seed, 7U);
  EXPECT_EQ(jobs[1].spec.n, 300U);
  EXPECT_EQ(jobs[1].spec.seed, 11U);
}

TEST(SweepSpecTest, ZipRejectsMismatchedAxisLengths) {
  SweepSpec sweep;
  sweep.base = small_base();
  sweep.mode = SweepMode::Zip;
  sweep.axes.push_back(SweepAxis{"n", {num(200), num(300)}});
  sweep.axes.push_back(SweepAxis{"seed", {num(7)}});
  EXPECT_THROW((void)sweep.point_count(), SpecError);
  EXPECT_THROW((void)sweep.expand(), SpecError);
}

TEST(SweepSpecTest, DuplicateAxisFieldsAreRejected) {
  SweepSpec sweep;
  sweep.base = small_base();
  sweep.axes.push_back(SweepAxis{"n", {num(200)}});
  sweep.axes.push_back(SweepAxis{"periods", {num(4)}});
  sweep.axes.push_back(SweepAxis{"n", {num(300)}});  // double-apply slip
  EXPECT_THROW((void)sweep.point_count(), SpecError);
  EXPECT_THROW((void)sweep.expand(), SpecError);
}

TEST(SweepSpecTest, EmptyAxisAndZeroReplicatesAreErrors) {
  SweepSpec sweep;
  sweep.base = small_base();
  sweep.axes.push_back(SweepAxis{"n", {}});
  EXPECT_THROW((void)sweep.expand(), SpecError);

  sweep.axes.clear();
  sweep.replicates = 0;
  EXPECT_THROW((void)sweep.job_count(), SpecError);
}

TEST(SweepSpecTest, NoAxesMeansOnePointOfReplicates) {
  SweepSpec sweep;
  sweep.base = small_base();
  sweep.replicates = 3;
  EXPECT_EQ(sweep.point_count(), 1U);
  const std::vector<SweepJob> jobs = sweep.expand();
  ASSERT_EQ(jobs.size(), 3U);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(jobs[r].point, 0U);
    EXPECT_EQ(jobs[r].replicate, r);
  }
}

TEST(SweepSpecTest, ReplicateSeedsAreSplitDerivedAndStable) {
  // Replicate 0 keeps the point seed so a one-replicate point reproduces
  // a direct Experiment run; later replicates are split-derived,
  // decorrelated, and a pure function of (seed, r).
  EXPECT_EQ(replicate_seed(2004, 0), 2004U);
  EXPECT_NE(replicate_seed(2004, 1), 2004U);
  EXPECT_NE(replicate_seed(2004, 1), replicate_seed(2004, 2));
  EXPECT_NE(replicate_seed(2004, 1), replicate_seed(2005, 1));
  EXPECT_EQ(replicate_seed(2004, 1), replicate_seed(2004, 1));

  SweepSpec sweep;
  sweep.base = small_base();
  sweep.replicates = 2;
  const std::vector<SweepJob> jobs = sweep.expand();
  EXPECT_EQ(jobs[0].spec.seed, sweep.base.seed);
  EXPECT_EQ(jobs[1].spec.seed, replicate_seed(sweep.base.seed, 1));
}

TEST(SweepSpecTest, ReplicateSeedsSurviveSpecJsonRoundTrips) {
  // Derived seeds must stay within JSON double exactness (<= 2^53): job
  // specs travel as JSON to cache keys and dispatch workers, and a seed
  // that rounds in transit would make an out-of-process worker simulate a
  // different replicate than the in-process engine.
  for (std::uint64_t base : {std::uint64_t{0}, std::uint64_t{2004},
                             std::uint64_t{0xdeadbeefcafeULL}}) {
    for (std::size_t r = 0; r < 8; ++r) {
      const std::uint64_t seed = replicate_seed(base, r);
      EXPECT_LE(seed, std::uint64_t{1} << 53) << base << " r" << r;
      ScenarioSpec spec = small_base();
      spec.seed = seed;
      EXPECT_EQ(ScenarioSpec::from_json(spec.to_json()).seed, seed)
          << base << " r" << r;
    }
  }
}

TEST(SweepSpecTest, NAxisRescalesInitialCounts) {
  SweepSpec sweep;
  sweep.base = small_base();  // 400 processes, counts {399, 1}
  sweep.axes.push_back(SweepAxis{"n", {num(200)}});
  const std::vector<SweepJob> jobs = sweep.expand();
  ASSERT_EQ(jobs.size(), 1U);
  EXPECT_EQ(jobs[0].spec.n, 200U);
  // scaled_to keeps seeded states populated: one infective survives.
  ASSERT_EQ(jobs[0].spec.initial_counts.size(), 2U);
  EXPECT_EQ(jobs[0].spec.initial_counts[1], 1U);
  EXPECT_EQ(jobs[0].spec.initial_counts[0], 199U);
}

TEST(SweepSpecTest, AppliesEverySupportedFieldKind) {
  ScenarioSpec spec = registry_get("endemic-churn");
  spec.faults.massive_failures.push_back(sim::MassiveFailure{10.0, 0.25});
  spec.source.params = {4.0, 0.2, 0.05};

  apply_axis_value(spec, "periods", num(42));
  EXPECT_EQ(spec.periods, 42U);
  apply_axis_value(spec, "seed", num(9));
  EXPECT_EQ(spec.seed, 9U);
  apply_axis_value(spec, "backend", Json::string("event"));
  EXPECT_EQ(spec.backend, Backend::Event);
  apply_axis_value(spec, "clock_drift", num(0.1));
  EXPECT_DOUBLE_EQ(spec.clock_drift, 0.1);
  apply_axis_value(spec, "source.params[1]", num(0.3));
  EXPECT_DOUBLE_EQ(spec.source.params[1], 0.3);
  apply_axis_value(spec, "synthesis.p", num(0.02));
  ASSERT_TRUE(spec.synthesis.p.has_value());
  EXPECT_DOUBLE_EQ(*spec.synthesis.p, 0.02);
  apply_axis_value(spec, "synthesis.failure_rate", num(0.15));
  EXPECT_DOUBLE_EQ(spec.synthesis.failure_rate, 0.15);
  apply_axis_value(spec, "runtime.message_loss", num(0.05));
  EXPECT_DOUBLE_EQ(spec.runtime.message_loss, 0.05);
  apply_axis_value(spec, "runtime.token_ttl", num(4));
  EXPECT_EQ(spec.runtime.tokens.ttl, 4U);
  apply_axis_value(spec, "faults.massive_failures[0].time", num(5.5));
  EXPECT_DOUBLE_EQ(spec.faults.massive_failures[0].time, 5.5);
  apply_axis_value(spec, "faults.massive_failures[0].fraction", num(0.4));
  EXPECT_DOUBLE_EQ(spec.faults.massive_failures[0].fraction, 0.4);
  apply_axis_value(spec, "faults.crash_recovery.crash_prob", num(0.02));
  EXPECT_DOUBLE_EQ(spec.faults.crash_recovery.crash_prob, 0.02);
  apply_axis_value(spec, "faults.crash_recovery.mean_downtime_periods",
                   num(5));
  EXPECT_DOUBLE_EQ(spec.faults.crash_recovery.mean_downtime_periods, 5.0);
  apply_axis_value(spec, "faults.churn.enabled", Json::boolean(false));
  EXPECT_FALSE(spec.faults.churn.enabled);
  apply_axis_value(spec, "faults.churn.hours", num(12));
  EXPECT_DOUBLE_EQ(spec.faults.churn.hours, 12.0);
  apply_axis_value(spec, "faults.churn.min_rate", num(0.02));
  EXPECT_DOUBLE_EQ(spec.faults.churn.min_rate, 0.02);
  apply_axis_value(spec, "faults.churn.max_rate", num(0.3));
  EXPECT_DOUBLE_EQ(spec.faults.churn.max_rate, 0.3);
  apply_axis_value(spec, "faults.churn.mean_downtime_hours", num(1.5));
  EXPECT_DOUBLE_EQ(spec.faults.churn.mean_downtime_hours, 1.5);
  apply_axis_value(spec, "faults.churn.seed", num(77));
  EXPECT_EQ(spec.faults.churn.seed, 77U);
  apply_axis_value(spec, "faults.churn.periods_per_hour", num(6));
  EXPECT_DOUBLE_EQ(spec.faults.churn.periods_per_hour, 6.0);
}

TEST(SweepSpecTest, RejectsUnknownFieldsIndicesAndTypes) {
  ScenarioSpec spec = small_base();
  EXPECT_THROW(apply_axis_value(spec, "no.such.field", num(1)), SpecError);
  EXPECT_THROW(apply_axis_value(spec, "source.params[0]", num(1)),
               SpecError);  // base lists no params
  EXPECT_THROW(apply_axis_value(spec, "faults.massive_failures[0].time",
                                num(1)),
               SpecError);  // none scheduled
  EXPECT_THROW(apply_axis_value(spec, "faults.massive_failures[0].bogus",
                                num(1)),
               SpecError);
  EXPECT_THROW(apply_axis_value(spec, "source.params[x]", num(1)),
               SpecError);
  // Type mismatch surfaces as SpecError, not a bare JsonError.
  EXPECT_THROW(apply_axis_value(spec, "backend", num(3)), SpecError);
  EXPECT_THROW(apply_axis_value(spec, "n", Json::string("many")), SpecError);
  // null (NaN through as_number) and non-finite numbers would poison a
  // numeric field -- and alias distinct specs under one cache key, since
  // non-finite values all dump as null.
  EXPECT_THROW(apply_axis_value(spec, "clock_drift", Json::null()),
               SpecError);
  EXPECT_THROW(apply_axis_value(
                   spec, "clock_drift",
                   Json::number(std::numeric_limits<double>::infinity())),
               SpecError);
  EXPECT_THROW(apply_axis_value(
                   spec, "synthesis.p",
                   Json::number(std::numeric_limits<double>::quiet_NaN())),
               SpecError);
}

TEST(SweepSpecTest, JobNamesEncodeCoordinatesAndReplicate) {
  SweepSpec sweep;
  sweep.base = small_base();
  sweep.axes.push_back(SweepAxis{"n", {num(200)}});
  sweep.replicates = 2;
  const std::vector<SweepJob> jobs = sweep.expand();
  ASSERT_EQ(jobs.size(), 2U);
  EXPECT_EQ(jobs[0].spec.name, "epidemic/n=200/r0");
  EXPECT_EQ(jobs[1].spec.name, "epidemic/n=200/r1");
}

TEST(SweepSpecTest, JsonRoundTrips) {
  SweepSpec sweep;
  sweep.name = "round-trip";
  sweep.description = "grid over n and backend";
  sweep.base = small_base();
  sweep.mode = SweepMode::Zip;
  sweep.axes.push_back(SweepAxis{"n", {num(200), num(400)}});
  {
    SweepAxis backend;
    backend.field = "backend";
    backend.values.push_back(Json::string("sync"));
    backend.values.push_back(Json::string("event"));
    sweep.axes.push_back(std::move(backend));
  }
  sweep.replicates = 4;

  EXPECT_EQ(SweepSpec::from_json(sweep.to_json()), sweep);
  EXPECT_EQ(SweepSpec::from_json(Json::parse(sweep.to_json().dump())),
            sweep);
  EXPECT_EQ(SweepSpec::from_json(Json::parse(sweep.to_json().dump(2))),
            sweep);
}

TEST(SweepSpecTest, FromJsonDefaults) {
  // A minimal document: defaults fill in grid mode and one replicate.
  const SweepSpec sweep = SweepSpec::from_json(Json::parse(
      R"({"base": {"source": {"catalog": "epidemic"}, "n": 100}})"));
  EXPECT_EQ(sweep.mode, SweepMode::Grid);
  EXPECT_EQ(sweep.replicates, 1U);
  EXPECT_TRUE(sweep.axes.empty());
  EXPECT_EQ(sweep.base.n, 100U);
  EXPECT_EQ(sweep.job_count(), 1U);
}

TEST(SweepSpecTest, SweepModeNamesRoundTrip) {
  EXPECT_EQ(sweep_mode_from_name("grid"), SweepMode::Grid);
  EXPECT_EQ(sweep_mode_from_name("zip"), SweepMode::Zip);
  EXPECT_THROW((void)sweep_mode_from_name("diagonal"), SpecError);
  EXPECT_STREQ(sweep_mode_name(SweepMode::Grid), "grid");
  EXPECT_STREQ(sweep_mode_name(SweepMode::Zip), "zip");
}

TEST(SweepSpecTest, AxisFieldCatalogIsNonEmptyAndStable) {
  const std::vector<std::string> fields = sweep_axis_fields();
  EXPECT_FALSE(fields.empty());
  // Spot-check the fields the registry presets rely on.
  EXPECT_NE(std::find(fields.begin(), fields.end(), "n"), fields.end());
  EXPECT_NE(std::find(fields.begin(), fields.end(), "backend"),
            fields.end());
  EXPECT_NE(std::find(fields.begin(), fields.end(),
                      "faults.churn.max_rate"),
            fields.end());
}

TEST(BisectAxisTest, FindsAMonotoneFlipToTolerance) {
  // Synthetic monotone predicate with a known flip at 0.37: bisection
  // must land within the requested tolerance of it.
  const double kFlip = 0.37;
  std::size_t calls = 0;
  const auto holds = [&](double v) {
    ++calls;
    return v < kFlip;
  };
  BisectOptions options;
  options.lo = 0.0;
  options.hi = 1.0;
  options.tolerance = 1e-4;
  const BisectResult result = bisect_axis(holds, options);
  EXPECT_TRUE(result.bracketed);
  EXPECT_NEAR(result.threshold, kFlip, 1e-4);
  // The final bracket straddles the flip; the reported threshold is its
  // midpoint (so it may sit within tolerance on either side of kFlip).
  EXPECT_LT(result.lo, kFlip);
  EXPECT_GE(result.hi, kFlip);
  EXPECT_LE(result.lo, result.threshold);
  EXPECT_GE(result.hi, result.threshold);
  EXPECT_EQ(result.evaluations, calls);
  // log2(1 / 1e-4) ~ 14 midpoints + 2 endpoint checks.
  EXPECT_LE(result.evaluations, 2U + 14U);
}

TEST(BisectAxisTest, OneSidedPredicatesReportTheSurvivingEndpoint) {
  const auto always = [](double) { return true; };
  const auto never = [](double) { return false; };
  BisectOptions options;
  options.lo = 2.0;
  options.hi = 5.0;
  const BisectResult held = bisect_axis(always, options);
  EXPECT_FALSE(held.bracketed);
  EXPECT_DOUBLE_EQ(held.threshold, 5.0);
  EXPECT_EQ(held.evaluations, 2U);
  const BisectResult failed = bisect_axis(never, options);
  EXPECT_FALSE(failed.bracketed);
  EXPECT_DOUBLE_EQ(failed.threshold, 2.0);
  EXPECT_EQ(failed.evaluations, 2U);
}

TEST(BisectAxisTest, MaxIterationsCapsTheSearch) {
  BisectOptions options;
  options.lo = 0.0;
  options.hi = 1.0;
  options.max_iterations = 3;
  const BisectResult result =
      bisect_axis([](double v) { return v < 0.37; }, options);
  EXPECT_TRUE(result.bracketed);
  EXPECT_EQ(result.evaluations, 2U + 3U);
  // Three halvings of [0, 1]: bracket width 1/8.
  EXPECT_DOUBLE_EQ(result.hi - result.lo, 0.125);
  EXPECT_NEAR(result.threshold, 0.37, 0.125);
}

TEST(BisectAxisTest, RejectsBadBounds) {
  const auto holds = [](double) { return true; };
  BisectOptions options;
  options.lo = 1.0;
  options.hi = 0.0;
  EXPECT_THROW((void)bisect_axis(holds, options), SpecError);
  options.lo = 0.0;
  options.hi = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)bisect_axis(holds, options), SpecError);
}

TEST(BisectAxisTest, ThresholdVariantDrivesRealExperiments) {
  // Bisect the message-loss axis for "does the epidemic still absorb in
  // 8 periods": loss 0 converges, loss ~1 cannot. The exact flip value
  // is noisy but the machinery -- axis application, experiment runs,
  // predicate evaluation -- must produce a bracketed answer in (0, 1).
  ScenarioSpec base = small_base();
  base.periods = 30;  // loss 0 must comfortably absorb at N = 400
  BisectOptions options;
  options.lo = 0.0;
  options.hi = 0.99;
  options.max_iterations = 4;
  const BisectResult result = bisect_axis_threshold(
      base, "runtime.message_loss",
      [](const ExperimentResult& r) { return r.convergence.absorbed; },
      options);
  EXPECT_TRUE(result.bracketed);
  EXPECT_GT(result.threshold, 0.0);
  EXPECT_LT(result.threshold, 0.99);
  EXPECT_EQ(result.evaluations, 2U + 4U);
}

/// A hand-built SweepResult point: `field` = value, absorbed mean as
/// given (count 3 replicates, like a real aggregate).
PointSummary grid_point(std::size_t index, const std::string& field,
                        double value, double absorbed_mean) {
  PointSummary point;
  point.point = index;
  point.coords.emplace_back(field, Json::number(value));
  Aggregate absorbed;
  absorbed.count = 3;
  absorbed.mean = absorbed_mean;
  point.metrics.emplace_back("absorbed", absorbed);
  return point;
}

TEST(BracketFromSweepTest, SeedsTheTightestBracketAroundTheFlip) {
  SweepResult result;
  result.points.push_back(grid_point(0, "runtime.message_loss", 0.0, 1.0));
  result.points.push_back(grid_point(1, "runtime.message_loss", 0.2, 1.0));
  result.points.push_back(
      grid_point(2, "runtime.message_loss", 0.4, 2.0 / 3.0));
  result.points.push_back(
      grid_point(3, "runtime.message_loss", 0.6, 1.0 / 3.0));
  result.points.push_back(grid_point(4, "runtime.message_loss", 0.8, 0.0));

  const std::optional<BisectOptions> bracket =
      bracket_from_sweep(result, "runtime.message_loss");
  ASSERT_TRUE(bracket.has_value());
  // Majority absorbed through 0.4, minority from 0.6: that pair is the
  // tightest bracket the grid supports.
  EXPECT_DOUBLE_EQ(bracket->lo, 0.4);
  EXPECT_DOUBLE_EQ(bracket->hi, 0.6);
}

TEST(BracketFromSweepTest, OneSidedGridsAndUnknownFieldsGiveNoBracket) {
  SweepResult all_hold;
  all_hold.points.push_back(grid_point(0, "runtime.message_loss", 0.0, 1.0));
  all_hold.points.push_back(grid_point(1, "runtime.message_loss", 0.5, 1.0));
  EXPECT_FALSE(
      bracket_from_sweep(all_hold, "runtime.message_loss").has_value());

  SweepResult all_fail;
  all_fail.points.push_back(grid_point(0, "runtime.message_loss", 0.0, 0.0));
  all_fail.points.push_back(grid_point(1, "runtime.message_loss", 0.5, 0.0));
  EXPECT_FALSE(
      bracket_from_sweep(all_fail, "runtime.message_loss").has_value());

  // Field that is not an axis of this grid.
  EXPECT_FALSE(bracket_from_sweep(all_hold, "clock_drift").has_value());

  // Non-numeric coordinates (a backend axis) never seed a bracket.
  SweepResult strings;
  PointSummary point;
  point.coords.emplace_back("backend", Json::string("sync"));
  Aggregate absorbed;
  absorbed.count = 1;
  absorbed.mean = 1.0;
  point.metrics.emplace_back("absorbed", absorbed);
  strings.points.push_back(point);
  EXPECT_FALSE(bracket_from_sweep(strings, "backend").has_value());
}

TEST(BracketFromSweepTest, NonMonotoneGridsRefuseToBracket) {
  // A failing point *below* a holding one (the verdict depends on some
  // other axis too): [max hold, min fail] would not bracket, so no seed.
  SweepResult result;
  result.points.push_back(grid_point(0, "runtime.message_loss", 0.1, 0.0));
  result.points.push_back(grid_point(1, "runtime.message_loss", 0.3, 1.0));
  result.points.push_back(grid_point(2, "runtime.message_loss", 0.5, 0.0));
  EXPECT_FALSE(
      bracket_from_sweep(result, "runtime.message_loss").has_value());
}

TEST(BracketFromSweepTest, CustomMetricAndThresholdApply) {
  SweepResult result;
  PointSummary low = grid_point(0, "n", 100.0, 0.0);
  Aggregate dominant;
  dominant.count = 2;
  dominant.mean = 0.95;
  low.metrics.emplace_back("dominant_fraction", dominant);
  PointSummary high = grid_point(1, "n", 200.0, 0.0);
  dominant.mean = 0.55;
  high.metrics.emplace_back("dominant_fraction", dominant);
  result.points.push_back(low);
  result.points.push_back(high);

  const std::optional<BisectOptions> bracket =
      bracket_from_sweep(result, "n", "dominant_fraction", 0.9);
  ASSERT_TRUE(bracket.has_value());
  EXPECT_DOUBLE_EQ(bracket->lo, 100.0);
  EXPECT_DOUBLE_EQ(bracket->hi, 200.0);
}

TEST(BracketFromSweepTest, SeededBracketRefinesARealSweep) {
  // End to end: run a tiny message-loss grid through SuiteRunner, seed
  // the bracket from its aggregates, and hand it to
  // bisect_axis_threshold -- the --sweep --bisect path in API form.
  SweepSpec sweep;
  sweep.base = small_base();
  sweep.base.periods = 30;
  sweep.axes.push_back(
      SweepAxis{"runtime.message_loss",
                {num(0.0), num(0.5), num(0.9), num(0.99)}});
  SuiteOptions options;
  options.threads = 1;
  options.store_results = false;
  const SweepResult grid = SuiteRunner(options).run(sweep);
  ASSERT_EQ(grid.jobs_failed, 0U);

  const std::optional<BisectOptions> seeded =
      bracket_from_sweep(grid, "runtime.message_loss");
  ASSERT_TRUE(seeded.has_value()) << "loss 0 absorbs, loss 0.99 cannot";
  EXPECT_LT(seeded->lo, seeded->hi);

  BisectOptions bisect = *seeded;
  bisect.max_iterations = 3;
  const BisectResult refined = bisect_axis_threshold(
      sweep.base, "runtime.message_loss",
      [](const ExperimentResult& r) { return r.convergence.absorbed; },
      bisect);
  EXPECT_TRUE(refined.bracketed)
      << "the grid-certified bracket must hold under re-evaluation";
  EXPECT_GE(refined.threshold, seeded->lo);
  EXPECT_LE(refined.threshold, seeded->hi);
}

}  // namespace
}  // namespace deproto::api
