// The result cache's contract: keys are content addresses of canonical
// spec JSON (stable, salt- and format-sensitive), a warm sweep replays
// byte-identically to the cold run on any thread count while executing
// zero simulations, corrupt entries degrade to misses and heal, failures
// are never memoized, and gc prunes what a run did not touch.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "api/result_cache.hpp"
#include "api/suite_runner.hpp"
#include "api/sweep.hpp"

namespace deproto::api {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty cache directory per test (TempDir is shared across the
/// whole test binary, so scope by test name).
fs::path fresh_dir() {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::path(testing::TempDir()) / "deproto-cache-test" /
                       (std::string(info->test_suite_name()) + "." +
                        info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<fs::path> entry_files(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& dirent : fs::directory_iterator(dir)) {
    if (dirent.is_regular_file() &&
        dirent.path().extension() == ".json") {
      files.push_back(dirent.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

SweepSpec tiny_sweep() {
  SweepSpec sweep;
  sweep.name = "cache-unit";
  sweep.base = registry_get("epidemic").scaled_to(200);
  sweep.base.periods = 5;
  sweep.axes.push_back(
      SweepAxis{"n", {Json::number(150), Json::number(200)}});
  sweep.replicates = 2;  // 4 jobs
  return sweep;
}

struct SweepOutput {
  SweepResult result;
  std::string json;   // deterministic to_json(false)
  std::string jsonl;  // streaming sink
};

SweepOutput run_with(ResultCache* cache, std::size_t threads,
                     const SweepSpec& sweep) {
  std::ostringstream jsonl;
  SuiteOptions options;
  options.threads = threads;
  options.jsonl = &jsonl;
  options.cache = cache;
  SweepOutput out;
  out.result = SuiteRunner(options).run(sweep);
  out.json = out.result.to_json(false).dump(2);
  out.jsonl = jsonl.str();
  return out;
}

TEST(Sha256Test, MatchesNistVectors) {
  // FIPS 180-4 / NIST CAVP short-message vectors.
  EXPECT_EQ(
      sha256_hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      sha256_hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Multi-block message (> 64 bytes) exercises the block loop + the
  // two-block padding tail.
  EXPECT_EQ(
      sha256_hex(std::string(1000, 'a')),
      "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3");
}

TEST(ResultCacheTest, KeyIsStableContentAddressed) {
  const fs::path dir = fresh_dir();
  ResultCache cache(dir);
  const ScenarioSpec spec = registry_get("epidemic");

  const std::string key = cache.key_for(spec);
  EXPECT_EQ(key.size(), 64U);
  EXPECT_EQ(key, cache.key_for(spec));  // pure function of content

  // Any semantic change to the spec renames the key...
  ScenarioSpec reseeded = spec;
  reseeded.seed += 1;
  EXPECT_NE(cache.key_for(reseeded), key);
  // ...and so do the two invalidation knobs (salt; format is compiled in).
  ResultCache salted(dir, "code-rev-2");
  EXPECT_NE(salted.key_for(spec), key);

  // A copy of the same spec (fresh canonicalization path) agrees: the key
  // addresses content, not identity.
  const ScenarioSpec copy = spec;
  EXPECT_EQ(cache.key_for(copy), key);
}

TEST(ResultCacheTest, ColdMissesWarmHitsAndReplaysByteIdentically) {
  const fs::path dir = fresh_dir();
  const SweepSpec sweep = tiny_sweep();

  ResultCache cold_cache(dir);
  const SweepOutput cold = run_with(&cold_cache, 1, sweep);
  EXPECT_EQ(cold.result.jobs_failed, 0U);
  EXPECT_TRUE(cold.result.cache_enabled);
  EXPECT_EQ(cold.result.cache.hits, 0U);
  EXPECT_EQ(cold.result.cache.misses, 4U);
  EXPECT_EQ(cold.result.cache.stores, 4U);
  EXPECT_EQ(entry_files(dir).size(), 4U);

  // Warm replay, across both thread counts: all hits, zero executions,
  // byte-identical deterministic JSON and JSONL. This is the determinism
  // contract extended to cached replays.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ResultCache warm_cache(dir);
    const SweepOutput warm = run_with(&warm_cache, threads, sweep);
    EXPECT_EQ(warm.result.jobs_failed, 0U) << threads;
    EXPECT_EQ(warm.result.cache.hits, 4U) << threads;
    EXPECT_EQ(warm.result.cache.misses, 0U) << threads;
    EXPECT_EQ(warm.result.cache.stores, 0U) << threads;
    EXPECT_EQ(warm.json, cold.json) << threads;
    EXPECT_EQ(warm.jsonl, cold.jsonl) << threads;
    for (const JobOutcome& outcome : warm.result.jobs) {
      EXPECT_TRUE(outcome.cached);
    }
  }
  // Cache accounting is environment state: absent from the deterministic
  // form (or warm vs cold would differ), present in the timing form.
  EXPECT_EQ(cold.json.find("\"cache\""), std::string::npos);
  EXPECT_NE(cold.result.to_json(true).dump().find("\"cache\""),
            std::string::npos);
}

TEST(ResultCacheTest, SaltChangeInvalidatesEveryEntry) {
  const fs::path dir = fresh_dir();
  const SweepSpec sweep = tiny_sweep();
  {
    ResultCache cache(dir);
    const SweepOutput cold = run_with(&cache, 1, sweep);
    EXPECT_EQ(cold.result.cache.stores, 4U);
  }
  // Same directory, new salt: every key renames, so nothing hits and the
  // run re-executes (and stores under the new keys alongside the old).
  ResultCache salted(dir, "v2");
  const SweepOutput rerun = run_with(&salted, 1, sweep);
  EXPECT_EQ(rerun.result.cache.hits, 0U);
  EXPECT_EQ(rerun.result.cache.misses, 4U);
  EXPECT_EQ(rerun.result.cache.stores, 4U);
  EXPECT_EQ(entry_files(dir).size(), 8U);
}

TEST(ResultCacheTest, CorruptEntriesAreMissesAndHeal) {
  const fs::path dir = fresh_dir();
  const SweepSpec sweep = tiny_sweep();
  std::string cold_json;
  {
    ResultCache cache(dir);
    cold_json = run_with(&cache, 1, sweep).json;
  }
  // Sabotage two of the four entries: one truncated mid-document (the
  // crash-during-write shape), one outright garbage.
  const std::vector<fs::path> entries = entry_files(dir);
  ASSERT_EQ(entries.size(), 4U);
  {
    std::ofstream truncated(entries[0], std::ios::trunc);
    truncated << "{\"format\":1,\"salt\":\"\",\"spec\":{\"na";
  }
  {
    std::ofstream garbage(entries[2], std::ios::trunc);
    garbage << "not json at all\n";
  }

  ResultCache repaired(dir);
  const SweepOutput rerun = run_with(&repaired, 1, sweep);
  EXPECT_EQ(rerun.result.jobs_failed, 0U);
  EXPECT_EQ(rerun.result.cache.hits, 2U);
  EXPECT_EQ(rerun.result.cache.misses, 2U);
  EXPECT_EQ(rerun.result.cache.corrupt, 2U);
  EXPECT_EQ(rerun.result.cache.stores, 2U);  // overwritten in place
  EXPECT_EQ(rerun.json, cold_json);          // corruption never leaks out

  // The overwrite healed the entries: a third run is all hits.
  ResultCache healed(dir);
  const SweepOutput third = run_with(&healed, 1, sweep);
  EXPECT_EQ(third.result.cache.hits, 4U);
  EXPECT_EQ(third.result.cache.corrupt, 0U);
  EXPECT_EQ(third.json, cold_json);
}

TEST(ResultCacheTest, WrongFormatVersionIsCorrupt) {
  const fs::path dir = fresh_dir();
  ResultCache cache(dir);
  const ScenarioSpec spec = tiny_sweep().base;
  // Plant an entry under spec's key claiming a future format: the binary
  // must not try to replay a payload shape it does not understand.
  {
    std::ofstream out(dir / (cache.key_for(spec) + ".json"));
    out << R"({"format":999,"salt":"","spec":{},"result":{}})" << "\n";
  }
  EXPECT_FALSE(cache.load(spec).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1U);
  EXPECT_EQ(cache.stats().misses, 1U);
}

TEST(ResultCacheTest, FailedJobsAreSkippedNeverCached) {
  const fs::path dir = fresh_dir();
  // Zip a valid job against one that throws at launch (negative clock
  // drift on the event backend), mirroring the SuiteRunner failure test.
  SweepSpec sweep = tiny_sweep();
  sweep.axes.clear();
  sweep.replicates = 1;
  sweep.mode = SweepMode::Zip;
  sweep.axes.push_back(
      SweepAxis{"seed", {Json::number(1), Json::number(2)}});
  sweep.axes.push_back(
      SweepAxis{"clock_drift", {Json::number(0.05), Json::number(-2.0)}});
  sweep.base.backend = Backend::Event;

  ResultCache cache(dir);
  const SweepOutput cold = run_with(&cache, 1, sweep);
  EXPECT_EQ(cold.result.jobs_failed, 1U);
  EXPECT_EQ(cold.result.cache.misses, 2U);
  EXPECT_EQ(cold.result.cache.stores, 1U);
  EXPECT_EQ(cold.result.cache.skipped, 1U);
  EXPECT_EQ(entry_files(dir).size(), 1U);

  // Warm: the good job hits; the bad job re-runs, re-fails, re-skips.
  ResultCache warm(dir);
  const SweepOutput rerun = run_with(&warm, 1, sweep);
  EXPECT_EQ(rerun.result.cache.hits, 1U);
  EXPECT_EQ(rerun.result.cache.misses, 1U);
  EXPECT_EQ(rerun.result.cache.skipped, 1U);
  EXPECT_EQ(rerun.json, cold.json);
}

TEST(ResultCacheTest, GcRemovesOnlyUntouchedEntries) {
  const fs::path dir = fresh_dir();
  const SweepSpec sweep = tiny_sweep();
  {
    ResultCache cache(dir);
    (void)run_with(&cache, 1, sweep);
  }
  // Two stale files: an entry from an edited-away sweep point and an
  // abandoned tmp from a crashed writer.
  { std::ofstream(dir / (std::string(64, '0') + ".json")) << "{}\n"; }
  { std::ofstream(dir / (std::string(64, '1') + ".tmp.42")) << "{"; }
  ASSERT_EQ(entry_files(dir).size(), 5U);

  ResultCache cache(dir);
  const SweepOutput warm = run_with(&cache, 1, sweep);
  EXPECT_EQ(warm.result.cache.hits, 4U);
  EXPECT_EQ(cache.gc_unused(), 2U);
  EXPECT_EQ(entry_files(dir).size(), 4U);

  // The surviving entries are exactly the live set: all hits again.
  ResultCache after(dir);
  EXPECT_EQ(run_with(&after, 1, sweep).result.cache.hits, 4U);
}

TEST(ResultCacheTest, NonFiniteMetricsReplayByteIdentically) {
  // The canonical-JSON prerequisite, end to end: a NaN metric serializes
  // as null, and the warm replay must re-emit null -- not some finite
  // fallback -- or cold and warm artifacts diverge on exactly the runs
  // the null encoding exists to save.
  const fs::path dir = fresh_dir();
  ScenarioSpec spec = registry_get("epidemic").scaled_to(150);
  spec.periods = 4;

  ResultCache cache(dir);
  Experiment experiment(spec);
  ExperimentResult fresh = experiment.run();
  fresh.convergence.settle_time = std::nan("");
  const std::string cold_dump = fresh.to_json(false).dump(2);
  EXPECT_NE(cold_dump.find("\"settle_time\": null"), std::string::npos);

  cache.store(spec, fresh);
  const std::optional<ExperimentResult> replay = cache.load(spec);
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(std::isnan(replay->convergence.settle_time));
  EXPECT_EQ(replay->to_json(false).dump(2), cold_dump);
}

TEST(ResultCacheTest, StoreLoadRoundTripsTheDeterministicForm) {
  const fs::path dir = fresh_dir();
  ScenarioSpec spec = registry_get("epidemic").scaled_to(150);
  spec.periods = 4;

  ResultCache cache(dir);
  Experiment experiment(spec);
  const ExperimentResult fresh = experiment.run();
  cache.store(spec, fresh);

  const std::optional<ExperimentResult> replay = cache.load(spec);
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->to_json(false).dump(2), fresh.to_json(false).dump(2));
  // Timing is machine state, not content: never memoized.
  EXPECT_DOUBLE_EQ(replay->elapsed_seconds, 0.0);
  EXPECT_EQ(cache.stats(), (CacheStats{1, 0, 0, 1, 0}));
}

TEST(ResultCacheTest, SizeBoundEvictsOldestEntriesFirst) {
  const fs::path dir = fresh_dir();
  ScenarioSpec spec = registry_get("epidemic").scaled_to(150);
  spec.periods = 4;
  ResultCache cache(dir);
  EXPECT_EQ(cache.max_bytes(), 0U);  // unbounded by default
  EXPECT_EQ(cache.evictions(), 0U);
  const ExperimentResult result = Experiment(spec).run();

  // Four entries under distinct keys, with explicitly staggered mtimes
  // (hours apart, so filesystem timestamp granularity cannot reorder the
  // LRU ranking).
  std::vector<std::string> keys;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ScenarioSpec variant = spec;
    variant.seed = 1000 + i;
    cache.store(variant, result);
    keys.push_back(cache.key_for(variant));
    fs::last_write_time(
        dir / (keys.back() + ".json"),
        fs::file_time_type::clock::now() -
            std::chrono::hours(24 - static_cast<int>(i)));
  }
  ASSERT_EQ(entry_files(dir).size(), 4U);
  const std::uintmax_t entry_bytes =
      fs::file_size(dir / (keys[0] + ".json"));

  // Bound the directory to ~2.5 entries; the next store (the newest
  // entry) pushes the total over and the oldest entries are evicted
  // until it fits.
  cache.set_max_bytes(entry_bytes * 5 / 2);
  ScenarioSpec fifth = spec;
  fifth.seed = 2000;
  cache.store(fifth, result);
  keys.push_back(cache.key_for(fifth));

  EXPECT_EQ(cache.evictions(), 3U);
  EXPECT_FALSE(fs::exists(dir / (keys[0] + ".json")));
  EXPECT_FALSE(fs::exists(dir / (keys[1] + ".json")));
  EXPECT_FALSE(fs::exists(dir / (keys[2] + ".json")));
  EXPECT_TRUE(fs::exists(dir / (keys[3] + ".json")));
  EXPECT_TRUE(fs::exists(dir / (keys[4] + ".json")));
}

TEST(ResultCacheTest, LoadRefreshesRecencySoReplayedEntriesSurvive) {
  const fs::path dir = fresh_dir();
  ScenarioSpec spec = registry_get("epidemic").scaled_to(150);
  spec.periods = 4;
  ResultCache cache(dir);
  const ExperimentResult result = Experiment(spec).run();

  std::vector<ScenarioSpec> variants;
  std::vector<std::string> keys;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ScenarioSpec variant = spec;
    variant.seed = 1000 + i;
    cache.store(variant, result);
    keys.push_back(cache.key_for(variant));
    fs::last_write_time(dir / (keys.back() + ".json"),
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(24));
    variants.push_back(std::move(variant));
  }
  // A hit on the first (otherwise oldest) entry bumps its mtime to now.
  ASSERT_TRUE(cache.load(variants[0]).has_value());

  const std::uintmax_t entry_bytes =
      fs::file_size(dir / (keys[0] + ".json"));
  cache.set_max_bytes(entry_bytes * 5 / 2);
  ScenarioSpec fourth = spec;
  fourth.seed = 2000;
  cache.store(fourth, result);

  // The cold entries went; the replayed one and the new store survive.
  EXPECT_EQ(cache.evictions(), 2U);
  EXPECT_TRUE(fs::exists(dir / (keys[0] + ".json")));
  EXPECT_FALSE(fs::exists(dir / (keys[1] + ".json")));
  EXPECT_FALSE(fs::exists(dir / (keys[2] + ".json")));
  EXPECT_TRUE(fs::exists(dir / (cache.key_for(fourth) + ".json")));
}

}  // namespace
}  // namespace deproto::api
