// The scenario registry: the exact list of registered names is API, every
// entry resolves and synthesizes, and lookups behave.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "api/sweep.hpp"
#include "core/mean_field.hpp"

namespace deproto::api {
namespace {

TEST(RegistryTest, ListsExactlyTheRegisteredScenarios) {
  const std::vector<std::string> expected = {
      "epidemic",
      "epidemic-lossy",
      "epidemic-event",
      "epidemic-net",
      "epidemic-count",
      "lv-majority",
      "lv-majority-count",
      "lv-majority-net",
      "lv-majority-failure",
      "lv-majority-failure-event",
      "endemic",
      "endemic-net",
      "endemic-massive-failure",
      "endemic-massive-failure-event",
      "endemic-massive-failure-count",
      "endemic-crash-recovery",
      "endemic-crash-recovery-event",
      "endemic-churn",
      "endemic-churn-event",
  };
  EXPECT_EQ(registry_names(), expected);
}

TEST(RegistryTest, FindAndGetAgree) {
  for (const std::string& name : registry_names()) {
    const ScenarioSpec* found = registry_find(name);
    ASSERT_NE(found, nullptr) << name;
    EXPECT_EQ(found->name, name);
    EXPECT_EQ(registry_get(name), *found);
    EXPECT_FALSE(found->description.empty()) << name;
  }
  EXPECT_EQ(registry_find("no-such-scenario"), nullptr);
  EXPECT_THROW((void)registry_get("no-such-scenario"), SpecError);
}

TEST(RegistryTest, EveryEntrySynthesizesAndVerifies) {
  for (const std::string& name : registry_names()) {
    Experiment experiment(registry_get(name));
    const Experiment::Artifacts& art = experiment.artifacts();
    EXPECT_TRUE(art.taxonomy.completely_partitionable) << name;
    EXPECT_TRUE(art.mean_field_verified) << name;
    EXPECT_GT(art.synthesis.machine.num_states(), 1U) << name;
  }
}

TEST(SweepRegistryTest, ListsExactlyTheRegisteredPresets) {
  const std::vector<std::string> expected = {
      "fig7-accuracy-vs-n",
      "fig11-convergence-vs-n",
      "fig9-10-churn-rate",
      "smoke-epidemic-scaling",
  };
  EXPECT_EQ(sweep_registry_names(), expected);
}

TEST(SweepRegistryTest, FindAndGetAgree) {
  for (const std::string& name : sweep_registry_names()) {
    const SweepSpec* found = sweep_registry_find(name);
    ASSERT_NE(found, nullptr) << name;
    EXPECT_EQ(found->name, name);
    EXPECT_EQ(sweep_registry_get(name), *found);
    EXPECT_FALSE(found->description.empty()) << name;
  }
  EXPECT_EQ(sweep_registry_find("no-such-sweep"), nullptr);
  EXPECT_THROW((void)sweep_registry_get("no-such-sweep"), SpecError);
}

TEST(SweepRegistryTest, PresetsExpandToTheExpectedJobCounts) {
  // Expansion only -- no preset executes here (fig7 alone is minutes of
  // simulation). The job counts are API: paper figures cite them.
  const std::vector<std::pair<std::string, std::size_t>> expected = {
      {"fig7-accuracy-vs-n", 4},        // 4 N-points x 1 replicate
      {"fig11-convergence-vs-n", 12},   // 4 N-points x 3 replicates
      {"fig9-10-churn-rate", 9},        // 3 churn bands x 3 replicates
      {"smoke-epidemic-scaling", 8},    // 2 N x 2 backends x 2 replicates
  };
  for (const auto& [name, jobs] : expected) {
    const SweepSpec sweep = sweep_registry_get(name);
    EXPECT_EQ(sweep.job_count(), jobs) << name;
    const std::vector<SweepJob> expanded = sweep.expand();
    EXPECT_EQ(expanded.size(), jobs) << name;
    // Every expanded job names its coordinates and keeps a resolvable
    // source (cheap; does not launch a simulator).
    for (const SweepJob& job : expanded) {
      EXPECT_FALSE(job.spec.name.empty()) << name;
      EXPECT_NO_THROW((void)job.spec.resolve_source()) << job.spec.name;
    }
  }
}

TEST(SweepRegistryTest, PresetsRoundTripThroughJson) {
  for (const std::string& name : sweep_registry_names()) {
    const SweepSpec sweep = sweep_registry_get(name);
    EXPECT_EQ(SweepSpec::from_json(Json::parse(sweep.to_json().dump(2))),
              sweep)
        << name;
  }
}

TEST(RegistryTest, EveryEntryRunsAtSmallN) {
  // The same contract the deproto-run --smoke CTest enforces, in-process:
  // scaled-down scenarios execute end to end and record every period.
  for (const std::string& name : registry_names()) {
    ScenarioSpec spec = registry_get(name).scaled_to(300);
    spec.periods = 10;
    for (sim::MassiveFailure& f : spec.faults.massive_failures) {
      f.time = 5.0;
    }
    Experiment experiment(spec);
    const ExperimentResult result = experiment.run();
    EXPECT_EQ(result.series.size(), spec.periods) << name;
    EXPECT_EQ(result.scenario, name);
    EXPECT_GT(result.final_alive, 0U) << name;
  }
}

}  // namespace
}  // namespace deproto::api
