// The scenario registry: the exact list of registered names is API, every
// entry resolves and synthesizes, and lookups behave.

#include <gtest/gtest.h>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/mean_field.hpp"

namespace deproto::api {
namespace {

TEST(RegistryTest, ListsExactlyTheRegisteredScenarios) {
  const std::vector<std::string> expected = {
      "epidemic",
      "epidemic-lossy",
      "epidemic-event",
      "lv-majority",
      "lv-majority-failure",
      "lv-majority-failure-event",
      "endemic",
      "endemic-massive-failure",
      "endemic-massive-failure-event",
      "endemic-crash-recovery",
      "endemic-crash-recovery-event",
      "endemic-churn",
      "endemic-churn-event",
  };
  EXPECT_EQ(registry_names(), expected);
}

TEST(RegistryTest, FindAndGetAgree) {
  for (const std::string& name : registry_names()) {
    const ScenarioSpec* found = registry_find(name);
    ASSERT_NE(found, nullptr) << name;
    EXPECT_EQ(found->name, name);
    EXPECT_EQ(registry_get(name), *found);
    EXPECT_FALSE(found->description.empty()) << name;
  }
  EXPECT_EQ(registry_find("no-such-scenario"), nullptr);
  EXPECT_THROW((void)registry_get("no-such-scenario"), SpecError);
}

TEST(RegistryTest, EveryEntrySynthesizesAndVerifies) {
  for (const std::string& name : registry_names()) {
    Experiment experiment(registry_get(name));
    const Experiment::Artifacts& art = experiment.artifacts();
    EXPECT_TRUE(art.taxonomy.completely_partitionable) << name;
    EXPECT_TRUE(art.mean_field_verified) << name;
    EXPECT_GT(art.synthesis.machine.num_states(), 1U) << name;
  }
}

TEST(RegistryTest, EveryEntryRunsAtSmallN) {
  // The same contract the deproto-run --smoke CTest enforces, in-process:
  // scaled-down scenarios execute end to end and record every period.
  for (const std::string& name : registry_names()) {
    ScenarioSpec spec = registry_get(name).scaled_to(300);
    spec.periods = 10;
    for (sim::MassiveFailure& f : spec.faults.massive_failures) {
      f.time = 5.0;
    }
    Experiment experiment(spec);
    const ExperimentResult result = experiment.run();
    EXPECT_EQ(result.series.size(), spec.periods) << name;
    EXPECT_EQ(result.scenario, name);
    EXPECT_GT(result.final_alive, 0U) << name;
  }
}

}  // namespace
}  // namespace deproto::api
