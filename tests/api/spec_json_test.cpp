// ScenarioSpec and ExperimentResult serialization: spec -> JSON -> spec is
// the identity (field-for-field equality), for minimal specs, specs using
// every knob, and every registry entry; results survive a round trip too.

#include <gtest/gtest.h>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "api/spec.hpp"

namespace deproto::api {
namespace {

ScenarioSpec full_spec() {
  ScenarioSpec spec;
  spec.name = "kitchen-sink";
  spec.description = "every knob set off its default";
  spec.source.catalog = "endemic";
  spec.source.params = {4.0, 0.2, 0.05};
  spec.synthesis.p = 0.125;
  spec.synthesis.failure_rate = 0.1;
  spec.synthesis.allow_tokenizing = false;
  spec.synthesis.auto_rewrite = true;
  spec.synthesis.slack_name = "w";
  spec.synthesis.push_pull.push_back(core::PushPullSpec{"x", "y"});
  spec.runtime.message_loss = 0.1;
  spec.runtime.tokens.mode = sim::TokenRouting::Mode::RandomWalkTtl;
  spec.runtime.tokens.ttl = 16;
  spec.runtime.simultaneous_updates = true;
  spec.n = 4321;
  spec.periods = 77;
  spec.seed = 987654321;
  spec.initial_counts = {4000, 300, 21};
  spec.faults.massive_failures = {sim::MassiveFailure{10, 0.5},
                                  sim::MassiveFailure{40, 0.25}};
  spec.faults.crash_recovery = CrashRecoverySpec{0.01, 5.0};
  spec.faults.churn.enabled = true;
  spec.faults.churn.hours = 12.0;
  spec.faults.churn.min_rate = 0.02;
  spec.faults.churn.max_rate = 0.2;
  spec.faults.churn.mean_downtime_hours = 0.25;
  spec.faults.churn.seed = 99;
  spec.faults.churn.periods_per_hour = 6.0;
  return spec;
}

TEST(SpecJsonTest, MinimalSpecRoundTrips) {
  ScenarioSpec spec;
  spec.source.ode_text = "x' = -x*y\ny' = x*y\n";
  const ScenarioSpec back = ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(back, spec);
}

TEST(SpecJsonTest, FullSpecRoundTrips) {
  const ScenarioSpec spec = full_spec();
  const ScenarioSpec back = ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(back, spec);
  // And through actual text, compact and pretty.
  EXPECT_EQ(ScenarioSpec::from_json(Json::parse(spec.to_json().dump())),
            spec);
  EXPECT_EQ(ScenarioSpec::from_json(Json::parse(spec.to_json().dump(2))),
            spec);
}

TEST(SpecJsonTest, EventBackendSpecRoundTrips) {
  ScenarioSpec spec;
  spec.source.catalog = "epidemic";
  spec.backend = Backend::Event;
  spec.clock_drift = 0.12;
  spec.runtime.message_loss = 0.05;
  const ScenarioSpec back = ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(back, spec);
}

TEST(SpecJsonTest, NetBackendSpecRoundTrips) {
  ScenarioSpec spec;
  spec.source.catalog = "epidemic";
  spec.backend = Backend::Net;
  spec.clock_drift = 0.08;
  spec.network.latency_min = 0.01;
  spec.network.latency_max = 0.2;
  spec.network.period_ms = 5.0;
  spec.network.probe_timeout = 0.75;
  const Json j = spec.to_json();
  // clock_drift applies to the net backend (drifting wall-clock timers),
  // so it serializes just as it does for event.
  EXPECT_TRUE(j.contains("clock_drift"));
  EXPECT_TRUE(j.contains("network"));
  EXPECT_EQ(ScenarioSpec::from_json(Json::parse(j.dump())), spec);
  EXPECT_STREQ(backend_name(Backend::Net), "net");
  EXPECT_EQ(backend_from_name("net"), Backend::Net);
}

TEST(SpecJsonTest, DefaultNetworkSpecStaysOffTheWire) {
  // Pre-net specs never carried a "network" key; a default NetworkSpec
  // must keep it that way so existing spec JSON (and the cache keys
  // derived from it) stay byte-identical.
  ScenarioSpec spec;
  spec.source.catalog = "epidemic";
  EXPECT_FALSE(spec.to_json().contains("network"));
  spec.backend = Backend::Event;
  spec.clock_drift = 0.12;
  EXPECT_FALSE(spec.to_json().contains("network"));
}

TEST(SpecJsonTest, RuntimeAndNetworkOptionsValidateAtParseTime) {
  // Bad physical-layer numbers are configuration errors, rejected when
  // the spec is parsed -- not hours later when a simulator constructor
  // finally sees them.
  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(
                   R"({"runtime":{"message_loss":-0.1}})")),
               SpecError);
  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(
                   R"({"runtime":{"message_loss":1.5}})")),
               SpecError);
  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(
                   R"({"network":{"latency_min":0.5,"latency_max":0.1}})")),
               SpecError);
  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(
                   R"({"network":{"latency_min":-0.01}})")),
               SpecError);
  EXPECT_THROW((void)ScenarioSpec::from_json(
                   Json::parse(R"({"network":{"period_ms":0}})")),
               SpecError);
  EXPECT_THROW((void)ScenarioSpec::from_json(
                   Json::parse(R"({"network":{"probe_timeout":-1}})")),
               SpecError);
  // The boundary cases are legal: loss of 0 and 1 - epsilon, a
  // degenerate latency band.
  const ScenarioSpec ok = ScenarioSpec::from_json(Json::parse(
      R"({"runtime":{"message_loss":0.0},
          "network":{"latency_min":0.05,"latency_max":0.05}})"));
  EXPECT_DOUBLE_EQ(ok.network.latency_min, ok.network.latency_max);
}

TEST(SpecJsonTest, CountAndAutoBackendsRoundTrip) {
  for (const Backend backend : {Backend::Count, Backend::Auto}) {
    ScenarioSpec spec;
    spec.source.catalog = "epidemic";
    spec.backend = backend;
    EXPECT_EQ(ScenarioSpec::from_json(Json::parse(spec.to_json().dump())),
              spec);
  }
  EXPECT_STREQ(backend_name(Backend::Count), "count");
  EXPECT_STREQ(backend_name(Backend::Auto), "auto");
  EXPECT_EQ(backend_from_name("count"), Backend::Count);
  EXPECT_EQ(backend_from_name("auto"), Backend::Auto);
}

TEST(SpecJsonTest, AutoBackendResolvesByCrossoverN) {
  EXPECT_EQ(resolve_backend(Backend::Auto, kAutoBackendCrossoverN),
            Backend::Count);
  EXPECT_EQ(resolve_backend(Backend::Auto, kAutoBackendCrossoverN - 1),
            Backend::Sync);
  // Explicit backends pass through untouched at any N.
  EXPECT_EQ(resolve_backend(Backend::Sync, 1000000), Backend::Sync);
  EXPECT_EQ(resolve_backend(Backend::Event, 1000000), Backend::Event);
  EXPECT_EQ(resolve_backend(Backend::Count, 10), Backend::Count);
}

TEST(SpecJsonTest, EveryRegistryEntryRoundTrips) {
  for (const std::string& name : registry_names()) {
    const ScenarioSpec spec = registry_get(name);
    const ScenarioSpec back =
        ScenarioSpec::from_json(Json::parse(spec.to_json().dump(2)));
    EXPECT_EQ(back, spec) << name;
  }
}

TEST(SpecJsonTest, OmittedKeysMeanDefaults) {
  const ScenarioSpec spec = ScenarioSpec::from_json(
      Json::parse(R"({"source":{"catalog":"epidemic"}})"));
  EXPECT_EQ(spec, [] {
    ScenarioSpec def;
    def.source.catalog = "epidemic";
    return def;
  }());
}

TEST(SpecJsonTest, LegacyMassiveFailurePeriodKeyStillLoads) {
  // Specs saved before the unified Simulator interface wrote "period"
  // (whole periods); they must keep loading as fractional "time".
  const ScenarioSpec spec = ScenarioSpec::from_json(Json::parse(
      R"({"source":{"catalog":"epidemic"},
          "faults":{"massive_failures":[{"period":10,"fraction":0.5}]}})"));
  ASSERT_EQ(spec.faults.massive_failures.size(), 1U);
  EXPECT_DOUBLE_EQ(spec.faults.massive_failures[0].time, 10.0);
  EXPECT_DOUBLE_EQ(spec.faults.massive_failures[0].fraction, 0.5);
}

TEST(SpecJsonTest, BadShapesThrow) {
  EXPECT_THROW((void)backend_from_name("threads"), SpecError);
  EXPECT_THROW((void)ScenarioSpec::from_json(
                   Json::parse(R"({"backend":"threads"})")),
               SpecError);
  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(
                   R"({"runtime":{"token_mode":"carrier-pigeon"}})")),
               SpecError);
}

TEST(SpecJsonTest, NullNumericFieldsAreRejectedNotNaN) {
  // Result documents tolerate null metrics (they read back as NaN); spec
  // documents are inputs, where null/NaN is a configuration error --
  // e.g. a NaN clock_drift would sail past the negativity check, and a
  // null token_ttl would hit an undefined double -> unsigned cast.
  EXPECT_THROW((void)ScenarioSpec::from_json(
                   Json::parse(R"({"clock_drift":null})")),
               SpecError);
  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(
                   R"({"synthesis":{"failure_rate":null}})")),
               SpecError);
  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(
                   R"({"source":{"catalog":"lv","params":[null]}})")),
               SpecError);
  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(
                   R"({"faults":{"churn":{"min_rate":null}}})")),
               SpecError);
  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(
                   R"({"runtime":{"token_ttl":null}})")),
               JsonError);  // integral read of null fails in the json layer
}

TEST(SpecJsonTest, ResultRoundTrips) {
  ScenarioSpec spec = registry_get("epidemic");
  spec = spec.scaled_to(400);
  spec.periods = 12;
  Experiment experiment(spec);
  const ExperimentResult result = experiment.run();

  const ExperimentResult back =
      ExperimentResult::from_json(Json::parse(result.to_json().dump(2)));
  EXPECT_EQ(back.scenario, result.scenario);
  EXPECT_EQ(back.state_names, result.state_names);
  EXPECT_EQ(back.taxonomy.complete, result.taxonomy.complete);
  EXPECT_EQ(back.taxonomy.completely_partitionable,
            result.taxonomy.completely_partitionable);
  EXPECT_EQ(back.taxonomy.restricted_polynomial,
            result.taxonomy.restricted_polynomial);
  EXPECT_DOUBLE_EQ(back.p, result.p);
  EXPECT_EQ(back.mean_field_verified, result.mean_field_verified);
  EXPECT_EQ(back.notes, result.notes);
  EXPECT_EQ(back.machine_text, result.machine_text);
  EXPECT_EQ(back.initial_counts, result.initial_counts);
  ASSERT_EQ(back.series.size(), result.series.size());
  for (std::size_t t = 0; t < result.series.size(); ++t) {
    EXPECT_DOUBLE_EQ(back.series[t].time, result.series[t].time);
    EXPECT_EQ(back.series[t].counts, result.series[t].counts);
    EXPECT_EQ(back.series[t].total_alive, result.series[t].total_alive);
  }
  EXPECT_EQ(back.final_counts, result.final_counts);
  EXPECT_EQ(back.final_alive, result.final_alive);
  EXPECT_EQ(back.probes_total, result.probes_total);
  EXPECT_EQ(back.convergence, result.convergence);
}

TEST(SpecJsonTest, ScaledToRescalesInitialCounts) {
  const ScenarioSpec spec = registry_get("epidemic");  // {9999, 1} at 10000
  const ScenarioSpec small = spec.scaled_to(500);
  EXPECT_EQ(small.n, 500U);
  ASSERT_EQ(small.initial_counts.size(), 2U);
  EXPECT_EQ(small.initial_counts[1], 1U);  // nonzero stays nonzero
  EXPECT_LE(small.initial_counts[0] + small.initial_counts[1], 500U);
}

TEST(SpecJsonTest, ScaledToOvershootNeverEmptiesASeededState) {
  ScenarioSpec spec;
  spec.source.catalog = "lv";
  spec.n = 4;
  spec.initial_counts = {1, 1, 2};
  const ScenarioSpec half = spec.scaled_to(3);
  // llround pins each nonzero entry >= 1; the overshoot correction must
  // take from the entry that can spare it, not zero a pinned one.
  EXPECT_EQ(half.initial_counts, (std::vector<std::size_t>{1, 1, 1}));
}

TEST(SpecJsonTest, ScaledToTopsUpRoundingUndershoot) {
  ScenarioSpec spec;
  spec.source.catalog = "lv";
  spec.n = 15;
  spec.initial_counts = {5, 5, 5};
  const ScenarioSpec up = spec.scaled_to(16);
  // Each entry rounds to 5 (sum 15); the missing process goes to a
  // largest entry instead of silently defaulting into state 0.
  std::size_t total = 0;
  for (const std::size_t c : up.initial_counts) total += c;
  EXPECT_EQ(total, 16U);
}

}  // namespace
}  // namespace deproto::api
