// Experiment facade semantics: run() reproduces the legacy hand-wired
// pipelines bit-for-bit at a fixed seed (the refactor moved wiring, not
// behavior), the fault plan reaches the simulator, and the structured
// result is internally consistent.

#include <gtest/gtest.h>

#include "api/experiment.hpp"
#include "api/job_metrics.hpp"
#include "api/registry.hpp"
#include "core/synthesis.hpp"
#include "ode/catalog.hpp"
#include "sim/runtime.hpp"
#include "sim/sync_sim.hpp"

namespace deproto::api {
namespace {

TEST(ExperimentTest, MatchesLegacyQuickstartWiring) {
  // The legacy examples/quickstart.cpp path, hand-wired: synthesize the
  // epidemic, run 10,000 processes from one infective, seed 2004.
  const core::SynthesisResult synth =
      core::synthesize(ode::catalog::epidemic());
  sim::MachineExecutor executor(synth.machine);
  sim::SyncSimulator simulator(10000, executor, /*seed=*/2004);
  simulator.seed_states({9999, 1});
  simulator.run(26);

  const ExperimentResult result =
      Experiment(registry_get("epidemic")).run();

  ASSERT_EQ(result.final_counts.size(), 2U);
  EXPECT_EQ(result.final_counts[0], simulator.group().count(0));
  EXPECT_EQ(result.final_counts[1], simulator.group().count(1));
  EXPECT_EQ(result.final_alive, simulator.group().total_alive());
  // Not just the endpoint: every recorded period matches the legacy
  // metrics stream.
  const auto& legacy = simulator.metrics().samples();
  ASSERT_EQ(result.series.size(), legacy.size());
  for (std::size_t t = 0; t < legacy.size(); ++t) {
    EXPECT_EQ(result.series[t].counts, legacy[t].alive_in_state) << t;
  }
}

TEST(ExperimentTest, MatchesLegacySynthEvenSpreadWiring) {
  // The legacy deproto-synth --simulate path: even spread n/m per state,
  // remainder left in state 0, message loss wired from the failure rate.
  const double loss = 0.1;
  core::SynthesisOptions options;
  options.failure_rate = loss;
  const core::SynthesisResult synth =
      core::synthesize(ode::catalog::epidemic(), options);
  sim::RuntimeOptions runtime;
  runtime.message_loss = loss;
  sim::MachineExecutor executor(synth.machine, runtime);
  sim::SyncSimulator simulator(1001, executor, /*seed=*/5);
  simulator.seed_states({500, 500});  // 1001/2 per state, remainder stays
  simulator.run(30);

  ScenarioSpec spec;
  spec.source.ode_text = "x' = -x*y\ny' = x*y\n";
  spec.synthesis.failure_rate = loss;
  spec.runtime.message_loss = loss;
  spec.n = 1001;
  spec.periods = 30;
  spec.seed = 5;
  const ExperimentResult result = Experiment(std::move(spec)).run();

  EXPECT_EQ(result.initial_counts, (std::vector<std::size_t>{501, 500}));
  EXPECT_EQ(result.final_counts[0], simulator.group().count(0));
  EXPECT_EQ(result.final_counts[1], simulator.group().count(1));
}

TEST(ExperimentTest, LaunchAdvanceEqualsRun) {
  // Chunked advancing through the run handle is RNG-identical to the
  // one-shot run() (run(k) is a loop of single periods).
  const ScenarioSpec spec = registry_get("epidemic").scaled_to(600);
  const ExperimentResult one_shot = Experiment(spec).run();

  Experiment chunked(spec);
  ExperimentRun run = chunked.launch();
  run.advance(5);
  run.advance(20);
  run.advance(spec.periods - 25);
  const ExperimentResult stepped = run.finish();

  EXPECT_EQ(stepped.final_counts, one_shot.final_counts);
  EXPECT_EQ(stepped.series.size(), one_shot.series.size());
  EXPECT_EQ(run.period(), spec.periods);
}

TEST(ExperimentTest, CountsAtCoversInitialAndAllPeriods) {
  ScenarioSpec spec = registry_get("epidemic").scaled_to(400);
  spec.periods = 8;
  Experiment experiment(spec);
  const ExperimentResult result = experiment.run();
  EXPECT_EQ(result.counts_at(0), result.initial_counts);
  EXPECT_EQ(result.counts_at(8), result.final_counts);
  EXPECT_THROW((void)result.counts_at(9), std::out_of_range);
  std::size_t total = 0;
  for (const std::size_t c : result.counts_at(0)) total += c;
  EXPECT_EQ(total, 400U);
}

TEST(ExperimentTest, MassiveFailurePlanReachesTheSimulator) {
  ScenarioSpec spec = registry_get("epidemic").scaled_to(1000);
  spec.periods = 10;
  spec.faults.massive_failures.push_back(sim::MassiveFailure{3, 0.5});
  const ExperimentResult result = Experiment(std::move(spec)).run();
  EXPECT_EQ(result.final_alive, 500U);
  EXPECT_EQ(result.series[2].total_alive, 1000U);  // end of period 2
  EXPECT_EQ(result.series[3].total_alive, 500U);   // failure hit period 3
}

TEST(ExperimentTest, CrashRecoveryPlanReachesTheSimulator) {
  ScenarioSpec spec = registry_get("epidemic").scaled_to(2000);
  spec.periods = 50;
  spec.faults.crash_recovery = CrashRecoverySpec{0.05, 2.0};
  const ExperimentResult result = Experiment(std::move(spec)).run();
  // With 5% crashes/period and mean downtime 2, a steady-state fraction
  // ~ 1/(1 + 0.05*3) of processes is alive; far from both 0 and 2000.
  EXPECT_LT(result.final_alive, 2000U);
  EXPECT_GT(result.final_alive, 1000U);
}

TEST(ExperimentTest, ChurnPlanReachesTheSimulator) {
  ScenarioSpec spec = registry_get("endemic-churn").scaled_to(500);
  spec.periods = 40;
  const ExperimentResult result = Experiment(std::move(spec)).run();
  bool population_moved = false;
  for (const PeriodPoint& point : result.series) {
    if (point.total_alive != 500U) population_moved = true;
  }
  EXPECT_TRUE(population_moved);
}

TEST(ExperimentTest, EventBackendMatchesLegacyEventWiring) {
  const core::SynthesisResult synth =
      core::synthesize(ode::catalog::epidemic());
  sim::EventSimOptions options;
  options.clock_drift = 0.05;
  options.network.loss = 0.05;
  sim::EventSimulator simulator(500, synth.machine, /*seed=*/7, options);
  simulator.seed_states({499, 1});
  simulator.run_until(25.0);

  ScenarioSpec spec = registry_get("epidemic-event").scaled_to(500);
  spec.periods = 25;
  const ExperimentResult result = Experiment(std::move(spec)).run();
  EXPECT_EQ(result.final_counts[1], simulator.group().count(1));
  EXPECT_EQ(result.messages_sent, simulator.network().sent());
  EXPECT_EQ(result.messages_dropped, simulator.network().dropped());
}

TEST(ExperimentTest, EventLossCountersFeedTheSharedLossRateMetric) {
  // The event backend's synthetic message counters are live in the
  // result, and loss_rate = dropped / sent lands in the job-metric
  // vector -- the same column the net backend fills with measured loss.
  ScenarioSpec spec = registry_get("epidemic-event").scaled_to(500);
  spec.periods = 20;
  spec.runtime.message_loss = 0.2;
  const ExperimentResult result = Experiment(std::move(spec)).run();
  EXPECT_GT(result.messages_sent, 0U);
  EXPECT_GT(result.messages_dropped, 0U);
  EXPECT_FALSE(result.net_stats.has_value());  // simulated, not measured

  const auto metrics = detail::result_metrics(result);
  double loss_rate = -1.0;
  bool has_measured_columns = false;
  for (const auto& [name, value] : metrics) {
    if (name == "loss_rate") loss_rate = value;
    if (name == "observed_loss" || name == "rtt_ms_mean") {
      has_measured_columns = true;
    }
  }
  EXPECT_DOUBLE_EQ(loss_rate,
                   static_cast<double>(result.messages_dropped) /
                       static_cast<double>(result.messages_sent));
  EXPECT_NEAR(loss_rate, 0.2, 0.05);  // synthetic loss at its configured rate
  EXPECT_FALSE(has_measured_columns);  // measured columns are net-only
}

TEST(ExperimentTest, NetBackendMeasuresItsNetworkAndRoundTripsResults) {
  ScenarioSpec spec = registry_get("epidemic-net");
  const ExperimentResult result = Experiment(spec).run();
  EXPECT_TRUE(result.convergence.absorbed);
  ASSERT_TRUE(result.net_stats.has_value());
  EXPECT_GT(result.net_stats->rtt_samples, 0U);
  EXPECT_GT(result.net_stats->rtt_ms_mean(), 0.0);
  EXPECT_EQ(result.messages_sent, result.net_stats->datagrams_sent);

  // Measured columns join the job-metric vector.
  const auto metrics = detail::result_metrics(result);
  double rtt_ms_mean = 0.0;
  for (const auto& [name, value] : metrics) {
    if (name == "rtt_ms_mean") rtt_ms_mean = value;
  }
  EXPECT_GT(rtt_ms_mean, 0.0);

  // The "net" block survives the result JSON round trip.
  const ExperimentResult back =
      ExperimentResult::from_json(Json::parse(result.to_json().dump()));
  ASSERT_TRUE(back.net_stats.has_value());
  EXPECT_EQ(back.net_stats->datagrams_sent, result.net_stats->datagrams_sent);
  EXPECT_EQ(back.net_stats->rtt_samples, result.net_stats->rtt_samples);
  EXPECT_NEAR(back.net_stats->rtt_ms_mean(), result.net_stats->rtt_ms_mean(),
              1e-9);
  EXPECT_DOUBLE_EQ(back.net_stats->rtt_ms_max, result.net_stats->rtt_ms_max);
}

TEST(ExperimentTest, SimulatorValidationSurfacesAsSpecError) {
  // Bad spec values that only the simulator layer validates (seed counts
  // above n, failure fraction above 1) must come back as the facade's
  // documented SpecError, not raw std::invalid_argument.
  ScenarioSpec spec = registry_get("epidemic").scaled_to(100);
  spec.initial_counts = {99, 2};  // sums above n
  EXPECT_THROW((void)Experiment(spec).launch(), SpecError);

  ScenarioSpec bad_fraction = registry_get("epidemic").scaled_to(100);
  bad_fraction.faults.massive_failures.push_back(
      sim::MassiveFailure{5, 1.5});
  EXPECT_THROW((void)Experiment(bad_fraction).launch(), SpecError);
}

TEST(ExperimentTest, EventBackendRunsCrashRecoveryPlans) {
  // PR 2 rejected these outright; the unified Simulator interface makes
  // every fault-plan field valid on the event backend too.
  ScenarioSpec spec = registry_get("epidemic-event").scaled_to(1000);
  spec.periods = 40;
  spec.faults.crash_recovery = CrashRecoverySpec{0.05, 2.0};
  const ExperimentResult result = Experiment(std::move(spec)).run();
  // Same steady-state reasoning as the sync crash-recovery test: with 5%
  // crashes/period and mean downtime ~3 periods, well under all-alive but
  // nowhere near drained.
  EXPECT_LT(result.final_alive, 1000U);
  EXPECT_GT(result.final_alive, 500U);
}

TEST(ExperimentTest, EventBackendRunsChurnPlans) {
  ScenarioSpec spec = registry_get("endemic-churn-event").scaled_to(400);
  spec.periods = 40;
  const ExperimentResult result = Experiment(std::move(spec)).run();
  bool population_moved = false;
  for (const PeriodPoint& point : result.series) {
    if (point.total_alive != 400U) population_moved = true;
  }
  EXPECT_TRUE(population_moved);
}

TEST(ExperimentTest, EventBackendAppliesMassiveFailureAtFractionalTime) {
  ScenarioSpec spec = registry_get("epidemic-event").scaled_to(800);
  spec.periods = 10;
  spec.faults.massive_failures.push_back(sim::MassiveFailure{3.5, 0.5});
  const ExperimentResult result = Experiment(std::move(spec)).run();
  EXPECT_EQ(result.series[2].total_alive, 800U);  // sample at t = 3
  EXPECT_EQ(result.series[3].total_alive, 400U);  // sample at t = 4
  EXPECT_EQ(result.final_alive, 400U);
}

TEST(ExperimentTest, CountBackendRunsAndGroupAccessIsSpecError) {
  ScenarioSpec spec = registry_get("epidemic").scaled_to(2000);
  spec.backend = Backend::Count;
  Experiment experiment(spec);
  ExperimentRun run = experiment.launch();
  // Per-node-identity features are a documented SpecError on the count
  // backend, not a raw std::logic_error from the sim layer.
  EXPECT_THROW((void)run.group(), SpecError);
  run.advance(spec.periods);
  const ExperimentResult result = run.finish();
  EXPECT_EQ(result.series.size(), spec.periods);
  EXPECT_EQ(result.final_alive, 2000U);
  EXPECT_EQ(result.convergence.dominant_state, 1U);  // y = infected
  EXPECT_TRUE(result.convergence.absorbed);
}

TEST(ExperimentTest, AutoBackendResolvesAtLaunch) {
  ScenarioSpec small = registry_get("epidemic").scaled_to(500);
  small.backend = Backend::Auto;
  Experiment small_exp(small);
  ExperimentRun small_run = small_exp.launch();
  EXPECT_TRUE(small_run.simulator().per_node());  // sync below crossover

  ScenarioSpec big =
      registry_get("epidemic").scaled_to(kAutoBackendCrossoverN);
  big.backend = Backend::Auto;
  Experiment big_exp(big);
  ExperimentRun big_run = big_exp.launch();
  EXPECT_FALSE(big_run.simulator().per_node());  // count at the crossover
}

TEST(ExperimentTest, ConvergenceSummaryFlagsAbsorption) {
  const ExperimentResult result =
      Experiment(registry_get("epidemic")).run();
  EXPECT_EQ(result.convergence.dominant_state, 1U);  // y = infected
  EXPECT_DOUBLE_EQ(result.convergence.dominant_fraction, 1.0);
  EXPECT_TRUE(result.convergence.absorbed);
  EXPECT_GE(result.convergence.settle_time, 0.0);
}

}  // namespace
}  // namespace deproto::api
