// The hand-rolled JSON layer: construction, typed access, deterministic
// serialization, and a parse round trip over every value type.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "api/json.hpp"

namespace deproto::api {
namespace {

TEST(JsonTest, ScalarConstructionAndAccess) {
  EXPECT_TRUE(Json::null().is_null());
  EXPECT_TRUE(Json::boolean(true).as_bool());
  EXPECT_DOUBLE_EQ(Json::number(2.5).as_number(), 2.5);
  EXPECT_EQ(Json::string("hi").as_string(), "hi");
  EXPECT_EQ(Json::number(std::size_t{42}).as_size(), 42U);
  EXPECT_EQ(Json::number(std::uint64_t{7}).as_u64(), 7U);
}

TEST(JsonTest, TypeMismatchThrows) {
  EXPECT_THROW((void)Json::number(1.0).as_string(), JsonError);
  EXPECT_THROW((void)Json::string("x").as_number(), JsonError);
  EXPECT_THROW((void)Json::null().items(), JsonError);
  EXPECT_THROW((void)Json::number(2.5).as_u64(), JsonError);  // not integral
  EXPECT_THROW((void)Json::number(-1.0).as_u64(), JsonError);
  EXPECT_THROW((void)Json::number(2e19).as_u64(), JsonError);  // >= 2^64
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndReplaces) {
  Json obj = Json::object();
  obj.set("b", Json::number(1.0));
  obj.set("a", Json::number(2.0));
  obj.set("b", Json::number(3.0));  // replace, keep position
  EXPECT_EQ(obj.size(), 2U);
  EXPECT_EQ(obj.dump(), R"({"b":3,"a":2})");
  EXPECT_TRUE(obj.contains("a"));
  EXPECT_FALSE(obj.contains("c"));
  EXPECT_THROW((void)obj.at("c"), JsonError);
  EXPECT_DOUBLE_EQ(obj.get_or("missing", 9.5), 9.5);
}

TEST(JsonTest, DumpFormats) {
  Json doc = Json::object();
  doc.set("xs", Json::array().push(Json::number(1.0)).push(Json::number(2.0)));
  doc.set("s", Json::string("a\"b\n"));
  EXPECT_EQ(doc.dump(), "{\"xs\":[1,2],\"s\":\"a\\\"b\\n\"}");
  EXPECT_EQ(doc.dump(2), "{\n  \"xs\": [\n    1,\n    2\n  ],\n"
                         "  \"s\": \"a\\\"b\\n\"\n}");
}

TEST(JsonTest, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(Json::number(1e6).dump(), "1000000");
  EXPECT_EQ(Json::number(0.25).dump(), "0.25");
  EXPECT_EQ(Json::number(-3.0).dump(), "-3");
}

TEST(JsonTest, NonFiniteNumbersSerializeAsNullAndReadBackAsNaN) {
  // One NaN metric must not abort serialization of a whole document: the
  // canonical encoding is null, and a numeric read of null is NaN.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Json::number(nan).dump(), "null");
  EXPECT_EQ(Json::number(inf).dump(), "null");
  EXPECT_EQ(Json::number(-inf).dump(), "null");

  Json doc = Json::object();
  doc.set("good", Json::number(1.5));
  doc.set("bad", Json::number(nan));
  EXPECT_EQ(doc.dump(), R"({"good":1.5,"bad":null})");

  // Writer -> parser round trip: the field degrades, the document lives.
  const Json back = Json::parse(doc.dump());
  EXPECT_DOUBLE_EQ(back.at("good").as_number(), 1.5);
  EXPECT_TRUE(back.at("bad").is_null());
  EXPECT_TRUE(std::isnan(back.at("bad").as_number()));
  // An explicit null reads as NaN even through get_or -- substituting
  // the fallback would re-dump as a finite number, so parse -> re-dump
  // of a NaN field would not be idempotent (cache replays depend on it).
  EXPECT_TRUE(std::isnan(back.get_or("bad", -1.0)));
  EXPECT_DOUBLE_EQ(back.get_or("absent", -1.0), -1.0);
  // Integral reads of null still fail loudly -- NaN is not a count.
  EXPECT_THROW((void)back.at("bad").as_size(), JsonError);
}

TEST(JsonTest, NegativeZeroNormalizesToZero) {
  // Cache keys hash the compact dump, so the two doubles that compare
  // equal must print identical bytes ("%.0f" alone would emit "-0").
  EXPECT_EQ(Json::number(-0.0).dump(), "0");
  EXPECT_EQ(Json::number(0.0).dump(), "0");
  EXPECT_EQ(Json::number(-0.0).dump(), Json::number(0.0).dump());
  // The parser may hand back -0.0 (strtod keeps the sign); re-dumping
  // canonicalizes it away.
  EXPECT_EQ(Json::parse("-0").dump(), "0");
  EXPECT_EQ(Json::parse("-0.0").dump(), "0");
  EXPECT_EQ(Json::parse("[-0.0,0]").dump(), "[0,0]");
}

TEST(JsonTest, ParseRoundTripsEveryType) {
  const std::string text =
      R"({"a":[1,2.5,true,false,null],"b":{"nested":"stré"},"c":-1e-3})";
  const Json doc = Json::parse(text);
  EXPECT_DOUBLE_EQ(doc.at("c").as_number(), -1e-3);
  EXPECT_EQ(doc.at("a").elements().size(), 5U);
  EXPECT_TRUE(doc.at("a").elements()[4].is_null());
  EXPECT_EQ(doc.at("b").at("nested").as_string(), "str\xc3\xa9");
  // dump -> parse -> equal (deep equality).
  EXPECT_EQ(Json::parse(doc.dump()), doc);
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse(""), JsonError);
  EXPECT_THROW((void)Json::parse("{"), JsonError);
  EXPECT_THROW((void)Json::parse("[1,]"), JsonError);
  EXPECT_THROW((void)Json::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW((void)Json::parse("tru"), JsonError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW((void)Json::parse("1.2.3"), JsonError);
  // Overflowing literals saturate to +-inf in strtod; accepting them
  // would let distinct documents alias under the canonical (null)
  // encoding of non-finite numbers.
  EXPECT_THROW((void)Json::parse("1e999"), JsonError);
  EXPECT_THROW((void)Json::parse("-1e999"), JsonError);
  // Lone surrogates would serialize to invalid UTF-8.
  EXPECT_THROW((void)Json::parse(R"("\ud800")"), JsonError);
  EXPECT_THROW((void)Json::parse(R"("\ud800x")"), JsonError);
}

TEST(JsonTest, ParseAcceptsSurrogatePairs) {
  // 😀 is the surrogate pair for U+1F600 (4-byte UTF-8).
  const Json escaped = Json::parse("\"\\ud83d\\ude00\"");
  EXPECT_EQ(escaped.as_string(), "\xf0\x9f\x98\x80");
  // Literal UTF-8 passes through untouched.
  EXPECT_EQ(Json::parse("\"\xf0\x9f\x98\x80\"").as_string(),
            "\xf0\x9f\x98\x80");
}

}  // namespace
}  // namespace deproto::api
