// The static protocol verifier: every machine-level rule firing on a
// minimal hand-built bad machine, every spec-level lint rule firing on a
// minimal bad spec, the suppression contract, the all-registry lint gate,
// and the RuntimeOptions::verify_static Experiment pre-flight.

#include "analysis/verifier.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/machine_checks.hpp"
#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/action.hpp"
#include "core/state_machine.hpp"
#include "core/synthesis.hpp"
#include "ode/parser.hpp"

namespace {

using deproto::analysis::Finding;
using deproto::analysis::MachineCheckOptions;
using deproto::analysis::Report;
using deproto::analysis::Severity;
using deproto::api::ScenarioSpec;
using deproto::core::ProtocolStateMachine;

ProtocolStateMachine flip_machine(double bias) {
  ProtocolStateMachine machine({"x", "y"});
  deproto::core::FlippingAction flip;
  flip.from_state = 0;
  flip.to_state = 1;
  flip.coin_bias = bias;
  flip.rate_constant = bias;
  machine.add_action(flip);
  return machine;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule,
              Severity severity) {
  for (const Finding& f : findings) {
    if (f.rule == rule && f.severity == severity) return true;
  }
  return false;
}

// ---------------------------------------------------------------- mass.*

TEST(MachineChecksTest, MassLeakCoinBiasAboveOneIsAnError) {
  const auto findings = deproto::analysis::check_mass(flip_machine(1.5), {});
  ASSERT_TRUE(has_rule(findings, "mass.action-bias", Severity::Error));
  EXPECT_DOUBLE_EQ(findings.front().value, 1.5);
}

TEST(MachineChecksTest, NegativeCoinBiasIsAnError) {
  EXPECT_TRUE(has_rule(deproto::analysis::check_mass(flip_machine(-0.1), {}),
                       "mass.action-bias", Severity::Error));
}

TEST(MachineChecksTest, StateBudgetOverOneIsAWarning) {
  ProtocolStateMachine machine({"x", "y", "z"});
  deproto::core::FlippingAction flip;
  flip.from_state = 0;
  flip.coin_bias = 0.7;
  flip.to_state = 1;
  machine.add_action(flip);
  flip.to_state = 2;
  machine.add_action(flip);
  const auto findings = deproto::analysis::check_mass(machine, {});
  ASSERT_TRUE(has_rule(findings, "mass.state-budget", Severity::Warning));
  EXPECT_FALSE(has_rule(findings, "mass.action-bias", Severity::Error))
      << "each bias is individually fine; only their sum breaches";
}

TEST(MachineChecksTest, CleanMachinePassesMassChecks) {
  EXPECT_TRUE(deproto::analysis::check_mass(flip_machine(0.4), {}).empty());
}

// --------------------------------------------------------------- reach.*

TEST(MachineChecksTest, StateNoActionEntersIsDead) {
  ProtocolStateMachine machine({"x", "y", "z"});
  deproto::core::FlippingAction flip;
  flip.from_state = 0;
  flip.to_state = 1;
  flip.coin_bias = 0.5;
  machine.add_action(flip);
  MachineCheckOptions options;
  options.seeded_states = {0};
  const auto findings =
      deproto::analysis::check_reachability(machine, options);
  EXPECT_TRUE(has_rule(findings, "reach.dead-state", Severity::Error));
}

TEST(MachineChecksTest, EnterableButUnseededStatesAreUnreachable) {
  // x -> nothing; y <-> z feed only each other, and only x is seeded, so
  // the y/z cycle can never acquire mass.
  ProtocolStateMachine machine({"x", "y", "z"});
  deproto::core::FlippingAction flip;
  flip.coin_bias = 0.5;
  flip.from_state = 2;
  flip.to_state = 1;
  machine.add_action(flip);
  flip.from_state = 1;
  flip.to_state = 2;
  machine.add_action(flip);
  MachineCheckOptions options;
  options.seeded_states = {0};
  const auto findings =
      deproto::analysis::check_reachability(machine, options);
  EXPECT_TRUE(has_rule(findings, "reach.unreachable", Severity::Warning));
  EXPECT_FALSE(has_rule(findings, "reach.dead-state", Severity::Error));
}

TEST(MachineChecksTest, UnreachableAbsorbingStateGetsItsOwnRule) {
  // x -> y is gated on z being occupied, y -> z is free; nothing is ever
  // in z at the start, so the absorbing z (and y) never fill.
  ProtocolStateMachine machine({"x", "y", "z"});
  deproto::core::SamplingAction sample;
  sample.from_state = 0;
  sample.to_state = 1;
  sample.target_states = {2};
  sample.coin_bias = 0.5;
  machine.add_action(sample);
  deproto::core::FlippingAction flip;
  flip.from_state = 1;
  flip.to_state = 2;
  flip.coin_bias = 0.5;
  machine.add_action(flip);
  MachineCheckOptions options;
  options.seeded_states = {0};
  const auto findings =
      deproto::analysis::check_reachability(machine, options);
  EXPECT_TRUE(
      has_rule(findings, "reach.absorbing-unreachable", Severity::Warning));
  EXPECT_TRUE(has_rule(findings, "reach.unreachable", Severity::Warning));
}

TEST(MachineChecksTest, ReachableAbsorbingStateIsInfoOnly) {
  const auto findings =
      deproto::analysis::check_reachability(flip_machine(0.4), {});
  ASSERT_TRUE(has_rule(findings, "reach.absorbing", Severity::Info));
  for (const Finding& f : findings) {
    EXPECT_EQ(f.severity, Severity::Info);
  }
}

// ---------------------------------------------------------- mean-field.*

TEST(MachineChecksTest, TamperedNormalizingPBreachesResidual) {
  const deproto::ode::EquationSystem source =
      deproto::ode::parse_system("x' = -0.5*x*y\ny' = 0.5*x*y\n");
  deproto::core::SynthesisResult synthesis = deproto::core::synthesize(source);
  const auto clean = deproto::analysis::check_mean_field(
      synthesis.machine, synthesis.source, {});
  ASSERT_TRUE(has_rule(clean, "mean-field.residual", Severity::Info));

  // The machine now claims a time dilation it does not implement: the
  // re-extracted ODE is off from p * source by a factor of 2.
  synthesis.machine.set_normalizing_p(synthesis.machine.normalizing_p() *
                                      2.0);
  const auto breached = deproto::analysis::check_mean_field(
      synthesis.machine, synthesis.source, {});
  ASSERT_TRUE(has_rule(breached, "mean-field.residual", Severity::Error));
  EXPECT_GT(breached.front().value, 0.1);
}

TEST(MachineChecksTest, StateCountMismatchIsAShapeError) {
  const deproto::ode::EquationSystem source({"x", "y", "z"});
  EXPECT_TRUE(has_rule(
      deproto::analysis::check_mean_field(flip_machine(0.4), source, {}),
      "mean-field.shape", Severity::Error));
}

// --------------------------------------------------------- fixed-point.*

TEST(MachineChecksTest, EpidemicFixedPointsAreClassified) {
  const deproto::ode::EquationSystem source =
      deproto::ode::parse_system("x' = -x*y\ny' = x*y\n");
  const deproto::core::SynthesisResult synthesis =
      deproto::core::synthesize(source);
  const auto findings =
      deproto::analysis::check_fixed_points(synthesis.machine, {});
  EXPECT_TRUE(
      has_rule(findings, "fixed-point.classified", Severity::Info));
  EXPECT_FALSE(has_rule(findings, "fixed-point.none", Severity::Warning));
}

TEST(MachineChecksTest, FixedPointPassCanBeDisabled) {
  const deproto::ode::EquationSystem source =
      deproto::ode::parse_system("x' = -x*y\ny' = x*y\n");
  MachineCheckOptions options;
  options.fixed_points = false;
  EXPECT_TRUE(deproto::analysis::check_fixed_points(
                  deproto::core::synthesize(source).machine, options)
                  .empty());
}

// ----------------------------------------------------------------- spec.*

ScenarioSpec epidemic_spec() {
  ScenarioSpec spec;
  spec.name = "test-epidemic";
  spec.source.catalog = "epidemic";
  spec.n = 100;
  spec.periods = 50;
  spec.initial_counts = {99, 1};
  return spec;
}

TEST(VerifierTest, InitialCountsMismatchIsAnError) {
  ScenarioSpec spec = epidemic_spec();
  spec.initial_counts = {10, 1};
  const Report report = deproto::analysis::analyze_spec(spec);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(
      has_rule(report.findings, "spec.initial-counts", Severity::Error));
}

TEST(VerifierTest, NetBackendPopulationCapIsAnError) {
  ScenarioSpec spec = epidemic_spec();
  spec.backend = deproto::api::Backend::Net;
  spec.n = 5000;
  spec.initial_counts = {4999, 1};
  const Report report = deproto::analysis::analyze_spec(spec);
  EXPECT_TRUE(
      has_rule(report.findings, "spec.net-population", Severity::Error));
  EXPECT_TRUE(has_rule(report.findings, "spec.net-probe-timeout",
                       Severity::Warning))
      << "the default 0.5-period probe timeout is under one period";
}

TEST(VerifierTest, TokenTtlBeyondRunLengthIsAWarning) {
  ScenarioSpec spec = epidemic_spec();
  spec.runtime.tokens.mode =
      deproto::sim::TokenRouting::Mode::RandomWalkTtl;
  spec.runtime.tokens.ttl = 500;
  EXPECT_TRUE(has_rule(deproto::analysis::analyze_spec(spec).findings,
                       "spec.token-ttl", Severity::Warning));
}

TEST(VerifierTest, CountBackendWithFaultsIsAWarning) {
  ScenarioSpec spec = epidemic_spec();
  spec.backend = deproto::api::Backend::Count;
  spec.faults.crash_recovery.crash_prob = 0.01;
  spec.faults.crash_recovery.mean_downtime_periods = 5.0;
  EXPECT_TRUE(has_rule(deproto::analysis::analyze_spec(spec).findings,
                       "spec.count-anonymous-faults", Severity::Warning));
}

TEST(VerifierTest, UncompensatedLossIsInfo) {
  ScenarioSpec spec = epidemic_spec();
  spec.runtime.message_loss = 0.1;
  EXPECT_TRUE(has_rule(deproto::analysis::analyze_spec(spec).findings,
                       "spec.uncompensated-loss", Severity::Info));
}

TEST(VerifierTest, UnknownSourceBecomesAFindingNotAThrow) {
  ScenarioSpec spec;
  spec.source.catalog = "no-such-system";
  const Report report = deproto::analysis::analyze_spec(spec);
  EXPECT_TRUE(has_rule(report.findings, "spec.source", Severity::Error));
}

TEST(VerifierTest, UnsynthesizableSystemBecomesAFinding) {
  ScenarioSpec spec;
  spec.source.ode_text = "x' = -x\ny' = 0.5*x\n";  // not complete
  const Report report = deproto::analysis::analyze_spec(spec);
  EXPECT_TRUE(
      has_rule(report.findings, "synthesis.failed", Severity::Error));
}

// ----------------------------------------------------------- suppression

TEST(VerifierTest, SuppressionsMuteWarningsAndCount) {
  ScenarioSpec spec = epidemic_spec();
  spec.backend = deproto::api::Backend::Count;
  spec.faults.crash_recovery.crash_prob = 0.01;
  spec.faults.crash_recovery.mean_downtime_periods = 5.0;
  spec.lint_suppress = {"spec.count-anonymous-faults"};
  const Report report = deproto::analysis::analyze_spec(spec);
  EXPECT_FALSE(has_rule(report.findings, "spec.count-anonymous-faults",
                        Severity::Warning));
  EXPECT_EQ(report.suppressed, 1U);
}

TEST(VerifierTest, ErrorsAreNeverSuppressible) {
  ScenarioSpec spec = epidemic_spec();
  spec.initial_counts = {10, 1};
  spec.lint_suppress = {"spec.initial-counts"};
  const Report report = deproto::analysis::analyze_spec(spec);
  EXPECT_TRUE(
      has_rule(report.findings, "spec.initial-counts", Severity::Error));
  EXPECT_EQ(report.suppressed, 0U);
}

TEST(VerifierTest, NoSuppressOptionShowsMutedFindings) {
  ScenarioSpec spec = epidemic_spec();
  spec.backend = deproto::api::Backend::Count;
  spec.faults.crash_recovery.crash_prob = 0.01;
  spec.faults.crash_recovery.mean_downtime_periods = 5.0;
  spec.lint_suppress = {"spec.count-anonymous-faults"};
  deproto::analysis::VerifyOptions options;
  options.apply_suppressions = false;
  const Report report = deproto::analysis::analyze_spec(spec, options);
  EXPECT_TRUE(has_rule(report.findings, "spec.count-anonymous-faults",
                       Severity::Warning));
  EXPECT_EQ(report.suppressed, 0U);
}

// ------------------------------------------------------- registry + spec

TEST(VerifierTest, EveryRegistryScenarioLintsClean) {
  for (const std::string& name : deproto::api::registry_names()) {
    const Report report =
        deproto::analysis::analyze_spec(deproto::api::registry_get(name));
    EXPECT_EQ(report.errors(), 0U) << name;
    EXPECT_EQ(report.warnings(), 0U)
        << name << ": registry warnings must be fixed or suppressed";
  }
}

TEST(VerifierTest, LintSuppressRoundTripsThroughSpecJson) {
  ScenarioSpec spec = epidemic_spec();
  EXPECT_FALSE(spec.to_json().contains("lint_suppress"))
      << "empty suppressions must not perturb cache keys";
  spec.lint_suppress = {"spec.count-anonymous-faults", "spec.token-ttl"};
  const ScenarioSpec back = ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(back.lint_suppress, spec.lint_suppress);
  EXPECT_EQ(back, spec);
}

TEST(VerifierTest, VerifyStaticRoundTripsAndKeepsCacheKeysStable) {
  ScenarioSpec spec = epidemic_spec();
  const std::string before = spec.to_json().dump();
  EXPECT_EQ(before.find("verify_static"), std::string::npos);
  spec.runtime.verify_static = true;
  const ScenarioSpec back = ScenarioSpec::from_json(spec.to_json());
  EXPECT_TRUE(back.runtime.verify_static);
}

// ------------------------------------------------------------ pre-flight

TEST(VerifierTest, PreFlightBlocksBrokenSpecs) {
  ScenarioSpec spec = epidemic_spec();
  spec.initial_counts = {10, 1};
  spec.runtime.verify_static = true;
  deproto::api::Experiment experiment(spec);
  EXPECT_THROW(
      {
        try {
          (void)experiment.launch();
        } catch (const deproto::api::SpecError& e) {
          EXPECT_NE(std::string(e.what()).find("static verification"),
                    std::string::npos);
          EXPECT_NE(std::string(e.what()).find("spec.initial-counts"),
                    std::string::npos);
          throw;
        }
      },
      deproto::api::SpecError);
}

TEST(VerifierTest, PreFlightPassesCleanSpecsThrough) {
  ScenarioSpec spec = epidemic_spec();
  spec.runtime.verify_static = true;
  deproto::api::Experiment experiment(spec);
  const deproto::api::ExperimentResult result = experiment.run();
  EXPECT_EQ(result.final_counts.size(), 2U);
}

}  // namespace
