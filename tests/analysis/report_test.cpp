// analysis::Report: severity vocabulary, counting/query helpers, and the
// JSON round-trip contract that deproto-lint --json, the Experiment
// pre-flight, and future CEGAR tooling all read.

#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include "api/json.hpp"

namespace {

using deproto::analysis::Finding;
using deproto::analysis::Report;
using deproto::analysis::Severity;
using deproto::api::Json;

Report sample_report() {
  Report report;
  report.scenario = "epidemic";
  report.suppressed = 2;
  report.findings = {
      {Severity::Error, "mass.action-bias", "action 0",
       "coin bias 1.5 outside [0, 1]", 1.5},
      {Severity::Warning, "reach.unreachable", "state z",
       "state is never seeded and not reachable", 2.0},
      {Severity::Info, "mean-field.residual", "mean field",
       "residual 0 against p * source", 0.0},
  };
  return report;
}

TEST(ReportTest, SeverityNamesRoundTrip) {
  for (const Severity s :
       {Severity::Info, Severity::Warning, Severity::Error}) {
    EXPECT_EQ(deproto::analysis::severity_from_name(
                  deproto::analysis::severity_name(s)),
              s);
  }
  EXPECT_THROW((void)deproto::analysis::severity_from_name("fatal"),
               deproto::api::JsonError);
}

TEST(ReportTest, CountsAndVerdict) {
  const Report report = sample_report();
  EXPECT_EQ(report.errors(), 1U);
  EXPECT_EQ(report.warnings(), 1U);
  EXPECT_EQ(report.count(Severity::Info), 1U);
  EXPECT_FALSE(report.ok());

  Report clean;
  clean.findings = {{Severity::Warning, "spec.token-ttl", "", "", 0.0}};
  EXPECT_TRUE(clean.ok()) << "warnings alone must not block a launch";
}

TEST(ReportTest, ByRuleFindsExactMatchesInOrder) {
  Report report = sample_report();
  report.findings.push_back(
      {Severity::Error, "mass.action-bias", "action 3", "second", 2.0});
  const auto matched = report.by_rule("mass.action-bias");
  ASSERT_EQ(matched.size(), 2U);
  EXPECT_EQ(matched[0]->location, "action 0");
  EXPECT_EQ(matched[1]->location, "action 3");
  EXPECT_TRUE(report.by_rule("mass.action").empty())
      << "rule matching is exact, not prefix";
}

TEST(ReportTest, JsonRoundTripPreservesEverything) {
  const Report report = sample_report();
  const Report back = Report::from_json(report.to_json());
  EXPECT_EQ(back, report);
}

TEST(ReportTest, JsonRoundTripSurvivesDumpAndParse) {
  const Report report = sample_report();
  const Report back =
      Report::from_json(Json::parse(report.to_json().dump()));
  EXPECT_EQ(back, report);
}

TEST(ReportTest, JsonCarriesVerdictAndCounts) {
  const Json j = sample_report().to_json();
  EXPECT_FALSE(j.at("ok").as_bool());
  EXPECT_EQ(j.at("errors").as_size(), 1U);
  EXPECT_EQ(j.at("warnings").as_size(), 1U);
  EXPECT_EQ(j.at("suppressed").as_size(), 2U);
  EXPECT_EQ(j.at("findings").elements().size(), 3U);
}

TEST(ReportTest, FindingToStringIsOneReadableLine) {
  const Finding f = {Severity::Error, "mass.action-bias", "action 0",
                     "coin bias 1.5 outside [0, 1]", 1.5};
  EXPECT_EQ(deproto::analysis::to_string(f),
            "error  mass.action-bias  action 0: coin bias 1.5 outside "
            "[0, 1]");
}

TEST(ReportTest, HostileMessageTextSurvivesDumpAndParse) {
  // Finding messages quote user-controlled spec text (scenario names,
  // ODE sources), so the serialized report must survive embedded quotes,
  // backslashes, newlines, tabs, control characters, and non-ASCII
  // UTF-8 byte for byte.
  Report report;
  report.scenario = "naïve \"scenario\"";
  report.findings = {
      {Severity::Warning, "spec.source", "source \"ode\"",
       "line 1:\n\tdx/dt = -βxy \\ (µ ≈ 0.05)\x01\x1f", 0.5},
      {Severity::Info, "exact.absorbing-class",
       "absorbing state (x=0, y=16)", "\"\\\n\r\té本\U0001f600",
       1.0},
  };
  const Report back =
      Report::from_json(Json::parse(report.to_json().dump()));
  EXPECT_EQ(back, report);
  // Pretty-printing indents but must escape identically.
  const Report pretty =
      Report::from_json(Json::parse(report.to_json().dump(2)));
  EXPECT_EQ(pretty, report);
}

TEST(ReportTest, EmptyReportRoundTripsAndIsOk) {
  const Report empty;
  EXPECT_TRUE(empty.ok());
  EXPECT_EQ(empty.errors(), 0U);
  EXPECT_EQ(empty.warnings(), 0U);
  EXPECT_TRUE(empty.by_rule("mass.action-bias").empty());
  const Report back =
      Report::from_json(Json::parse(empty.to_json().dump()));
  EXPECT_EQ(back, empty);
  EXPECT_TRUE(back.findings.empty());
  EXPECT_EQ(back.scenario, "");
  EXPECT_EQ(back.suppressed, 0U);
}

TEST(ReportTest, UnknownSeverityIsAParseErrorNotAGuess) {
  // A forward-compatible reader must not silently coerce severities it
  // does not know (e.g. a future "fatal") into something runnable.
  Json finding = Json::object()
                     .set("severity", Json::string("fatal"))
                     .set("rule", Json::string("mass.action-bias"))
                     .set("location", Json::string("action 0"))
                     .set("message", Json::string("boom"))
                     .set("value", Json::number(1.0));
  Json findings = Json::array();
  findings.push(std::move(finding));
  const Json j = Json::object()
                     .set("scenario", Json::string("epidemic"))
                     .set("findings", std::move(findings))
                     .set("suppressed", Json::number(0));
  EXPECT_THROW((void)Report::from_json(j), deproto::api::JsonError);
}

}  // namespace
