// The exact finite-N model checker: lattice enumeration and budgets, the
// row-stochastic kernel invariant, communicating-class structure, the
// closed-form chains (independent flips, geometric hitting times), the
// exact.* rule family, and the RuntimeOptions::verify_exact pre-flight.

#include "analysis/exact_chain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "analysis/exact_checks.hpp"
#include "analysis/verifier.hpp"
#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/action.hpp"
#include "core/state_machine.hpp"
#include "core/synthesis.hpp"

namespace {

using deproto::analysis::CommunicatingClass;
using deproto::analysis::ExactChain;
using deproto::analysis::ExactChainBudgetError;
using deproto::analysis::ExactChainOptions;
using deproto::analysis::ExactCheckOptions;
using deproto::analysis::Finding;
using deproto::analysis::Severity;
using deproto::core::ProtocolStateMachine;

/// x <-> y with independent per-period coin flips: every process is its
/// own two-state chain, so the stationary count of y is Binomial(n, pi)
/// with pi = a / (a + b) -- an exact closed form to pin the solvers on.
ProtocolStateMachine two_way_flip(double a, double b) {
  ProtocolStateMachine machine({"x", "y"});
  deproto::core::FlippingAction flip;
  flip.from_state = 0;
  flip.to_state = 1;
  flip.coin_bias = a;
  flip.rate_constant = a;
  machine.add_action(flip);
  flip.from_state = 1;
  flip.to_state = 0;
  flip.coin_bias = b;
  flip.rate_constant = b;
  machine.add_action(flip);
  return machine;
}

ProtocolStateMachine synthesized(const std::string& scenario) {
  const deproto::api::ScenarioSpec spec =
      deproto::api::registry_get(scenario);
  return deproto::core::synthesize(spec.resolve_source(), spec.synthesis)
      .machine;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule,
              Severity severity) {
  for (const Finding& f : findings) {
    if (f.rule == rule && f.severity == severity) return true;
  }
  return false;
}

const Finding* find_rule(const std::vector<Finding>& findings,
                         const std::string& rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

// ------------------------------------------------------- lattice + budgets

TEST(ExactChainTest, StateSpaceSizeMatchesBinomialFormula) {
  EXPECT_EQ(ExactChain::state_space_size(1, 7), 1u);   // C(7, 0)
  EXPECT_EQ(ExactChain::state_space_size(2, 8), 9u);   // C(9, 1)
  EXPECT_EQ(ExactChain::state_space_size(3, 4), 15u);  // C(6, 2)
  EXPECT_EQ(ExactChain::state_space_size(3, 16), 153u);
  EXPECT_EQ(ExactChain::state_space_size(0, 5), 0u);
}

TEST(ExactChainTest, StateSpaceSizeSaturatesInsteadOfOverflowing) {
  EXPECT_EQ(ExactChain::state_space_size(20, 1000000000),
            std::numeric_limits<std::size_t>::max());
}

TEST(ExactChainTest, EnumerationCoversTheLatticeSortedAndInvertible) {
  ExactChainOptions options;
  options.n = 5;
  const ExactChain chain(two_way_flip(0.3, 0.1), options);
  ASSERT_EQ(chain.num_chain_states(), 6u);
  for (std::size_t i = 0; i < chain.num_chain_states(); ++i) {
    const std::vector<std::size_t>& counts = chain.state(i);
    EXPECT_EQ(counts[0] + counts[1], 5u);
    EXPECT_EQ(chain.index_of(counts), i);
  }
  EXPECT_FALSE(chain.index_of({4, 4}).has_value()) << "does not sum to n";
}

TEST(ExactChainTest, SeededIndexPadsTheRemainderIntoStateZero) {
  ExactChainOptions options;
  options.n = 8;
  const ExactChain chain(two_way_flip(0.3, 0.1), options);
  const std::size_t idx = chain.seeded_index({0, 3});
  EXPECT_EQ(chain.state(idx), (std::vector<std::size_t>{5, 3}));
  EXPECT_THROW((void)chain.seeded_index({9, 3}), std::invalid_argument);
}

TEST(ExactChainTest, LatticeBudgetThrowsBudgetError) {
  ExactChainOptions options;
  options.n = 32;
  options.max_states = 10;
  EXPECT_THROW(ExactChain(two_way_flip(0.3, 0.1), options),
               ExactChainBudgetError);
}

TEST(ExactChainTest, RowBranchBudgetThrowsBudgetError) {
  ExactChainOptions options;
  options.n = 16;
  options.max_row_branches = 4;
  EXPECT_THROW(ExactChain(synthesized("lv-majority"), options),
               ExactChainBudgetError);
}

// --------------------------------------------------- kernel stochasticity

TEST(ExactChainTest, EpidemicKernelRowsAreStochastic) {
  ExactChainOptions options;
  options.n = 8;
  const ExactChain chain(synthesized("epidemic"), options);
  for (std::size_t i = 0; i < chain.num_chain_states(); ++i) {
    double total = 0.0;
    for (const auto& [col, prob] : chain.row(i)) {
      EXPECT_LT(col, chain.num_chain_states());
      EXPECT_GT(prob, 0.0);
      total += prob;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "row " << i;
  }
}

TEST(ExactChainTest, LvKernelRowsAreStochastic) {
  ExactChainOptions options;
  options.n = 6;
  const ExactChain chain(synthesized("lv-majority"), options);
  for (std::size_t i = 0; i < chain.num_chain_states(); ++i) {
    double total = 0.0;
    for (const auto& [col, prob] : chain.row(i)) total += prob;
    EXPECT_NEAR(total, 1.0, 1e-9) << "row " << i;
  }
}

TEST(ExactChainTest, EndemicPushKernelRowsAreStochastic) {
  ExactChainOptions options;
  options.n = 6;
  options.message_loss = 0.1;
  const ExactChain chain(synthesized("endemic"), options);
  for (std::size_t i = 0; i < chain.num_chain_states(); ++i) {
    double total = 0.0;
    for (const auto& [col, prob] : chain.row(i)) total += prob;
    EXPECT_NEAR(total, 1.0, 1e-9) << "row " << i;
  }
}

TEST(ExactChainTest, DeterministicBiasOneMovesEveryProcess) {
  // coin_bias = 1 exercises the p >= 1 clamp of Rng::binomial: the kernel
  // must be deterministic, exactly like the sampler.
  ProtocolStateMachine machine({"x", "y"});
  deproto::core::FlippingAction flip;
  flip.from_state = 0;
  flip.to_state = 1;
  flip.coin_bias = 1.0;
  flip.rate_constant = 1.0;
  machine.add_action(flip);
  ExactChainOptions options;
  options.n = 4;
  const ExactChain chain(machine, options);
  const std::size_t start = *chain.index_of({4, 0});
  const auto& row = chain.row(start);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0].first, *chain.index_of({0, 4}));
  EXPECT_DOUBLE_EQ(row[0].second, 1.0);
}

// ------------------------------------------------- classes + closed forms

TEST(ExactChainTest, EpidemicClassesAreTheTwoCornersPlusTransients) {
  ExactChainOptions options;
  options.n = 8;
  const ExactChain chain(synthesized("epidemic"), options);
  std::size_t absorbing = 0;
  for (const CommunicatingClass& cls : chain.classes()) {
    if (cls.absorbing) {
      ++absorbing;
      const std::vector<std::size_t>& c = chain.state(cls.members.front());
      EXPECT_TRUE(c[0] == 8 || c[1] == 8) << "absorbing off-corner";
    } else {
      EXPECT_FALSE(cls.recurrent)
          << "epidemic has no non-absorbing recurrent class";
    }
  }
  EXPECT_EQ(absorbing, 2u);

  // Seeded one infected: all-y is certain, all-x unreachable.
  const std::size_t start = *chain.index_of({7, 1});
  const std::vector<double> absorb = chain.absorption_probabilities(start);
  const std::size_t all_y = chain.class_of(*chain.index_of({0, 8}));
  const std::size_t all_x = chain.class_of(*chain.index_of({8, 0}));
  EXPECT_NEAR(absorb[all_y], 1.0, 1e-9);
  EXPECT_NEAR(absorb[all_x], 0.0, 1e-9);
}

TEST(ExactChainTest, GeometricHittingTimeIsOneOverP) {
  // One process, one one-way flip: absorption is a geometric waiting time
  // with mean 1/p.
  ProtocolStateMachine machine({"x", "y"});
  deproto::core::FlippingAction flip;
  flip.from_state = 0;
  flip.to_state = 1;
  flip.coin_bias = 0.25;
  flip.rate_constant = 0.25;
  machine.add_action(flip);
  ExactChainOptions options;
  options.n = 1;
  const ExactChain chain(machine, options);
  const std::size_t start = *chain.index_of({1, 0});
  EXPECT_NEAR(chain.expected_absorption_time(start), 4.0, 1e-8);
  EXPECT_DOUBLE_EQ(
      chain.expected_absorption_time(*chain.index_of({0, 1})), 0.0);
}

TEST(ExactChainTest, IndependentFlipsHaveBinomialStationaryLaw) {
  const double a = 0.3;
  const double b = 0.1;
  const std::size_t n = 10;
  ExactChainOptions options;
  options.n = n;
  const ExactChain chain(two_way_flip(a, b), options);

  // Everything communicates: one recurrent class covering the lattice.
  ASSERT_EQ(chain.classes().size(), 1u);
  EXPECT_TRUE(chain.classes()[0].recurrent);
  EXPECT_FALSE(chain.classes()[0].absorbing);

  const std::vector<double> dist = chain.stationary_distribution();
  const double pi = a / (a + b);
  // Stationary law of the y-count is Binomial(n, pi): check mean and
  // stddev against the closed form.
  const deproto::num::Vec mean = chain.mean_fractions(dist);
  EXPECT_NEAR(mean[1], pi, 1e-8);
  EXPECT_NEAR(mean[0], 1.0 - pi, 1e-8);
  const deproto::num::Vec stddev = chain.count_stddev(dist);
  const double expected =
      std::sqrt(static_cast<double>(n) * pi * (1.0 - pi));
  EXPECT_NEAR(stddev[1], expected, 1e-6);
  EXPECT_NEAR(stddev[0], expected, 1e-6);

  // And the full pmf, not just two moments.
  for (std::size_t y = 0; y <= n; ++y) {
    double pmf = 1.0;
    for (std::size_t k = 0; k < y; ++k) {
      pmf *= pi * static_cast<double>(n - k) / static_cast<double>(k + 1);
    }
    for (std::size_t k = 0; k < n - y; ++k) pmf *= 1.0 - pi;
    EXPECT_NEAR(dist[*chain.index_of({n - y, y})], pmf, 1e-8) << "y=" << y;
  }
}

TEST(ExactChainTest, PeriodicDeterministicChainStillFindsUniformStationary) {
  // Both biases 1 and a single process: the two lattice points swap every
  // period (one recurrent class of period 2). The damped power iteration
  // must still land on the 50/50 stationary distribution instead of
  // oscillating. (At n > 1 the deterministic swap splits the lattice into
  // disjoint 2-cycles {(a,b),(b,a)} -- multiple recurrent classes -- which
  // StationaryDistributionThrowsWithTwoRecurrentClasses already covers.)
  ExactChainOptions options;
  options.n = 1;
  const ExactChain chain(two_way_flip(1.0, 1.0), options);
  ASSERT_EQ(chain.recurrent_classes().size(), 1u);
  const std::vector<double> dist = chain.stationary_distribution();
  EXPECT_NEAR(dist[*chain.index_of({1, 0})], 0.5, 1e-6);
  EXPECT_NEAR(dist[*chain.index_of({0, 1})], 0.5, 1e-6);
}

TEST(ExactChainTest, StationaryDistributionThrowsWithTwoRecurrentClasses) {
  ExactChainOptions options;
  options.n = 6;
  const ExactChain chain(synthesized("epidemic"), options);
  EXPECT_THROW((void)chain.stationary_distribution(), std::logic_error);
}

// ------------------------------------------------------------ exact.* rules

TEST(ExactChecksTest, EpidemicFindingsReportCertainAbsorption) {
  ExactCheckOptions options;
  options.n = 16;
  const auto findings = deproto::analysis::check_exact(
      synthesized("epidemic"), {15, 1}, options);
  EXPECT_TRUE(
      has_rule(findings, "exact.absorbing-class", Severity::Info));
  const Finding* hitting = find_rule(findings, "exact.hitting-time");
  ASSERT_NE(hitting, nullptr);
  EXPECT_GT(hitting->value, 1.0);
  EXPECT_LT(hitting->value, 50.0);
  // The all-y corner IS the stable mean-field fixed point: no trap.
  EXPECT_FALSE(has_rule(findings, "exact.transient-trap", Severity::Warning));
}

TEST(ExactChecksTest, EndemicAtSmallNIsAFiniteNTrap) {
  // The mean field promises an endemic equilibrium; the exact chain
  // proves extinction absorbs the whole population at n = 16. This is
  // the Bournez et al. finite-N gap made visible statically.
  ExactCheckOptions options;
  options.n = 16;
  const auto findings = deproto::analysis::check_exact(
      synthesized("endemic"), {1, 3, 12}, options);
  EXPECT_TRUE(has_rule(findings, "exact.transient-trap", Severity::Warning));
  EXPECT_TRUE(
      has_rule(findings, "exact.meanfield-divergence", Severity::Warning));
}

TEST(ExactChecksTest, IndependentFlipsMatchMeanFieldAndClt) {
  // Non-interacting flips have the exact stationary law Binomial(n, pi):
  // the mean matches the mean field exactly, and in the small-rate regime
  // (where the Poisson-jump diffusion matrix B approximates the binomial
  // per-period noise well) the linear-noise stddev is within ~1%, so both
  // comparisons come back as small-valued infos. (At large per-period
  // rates the checker correctly reports the LNA's own approximation
  // error -- e.g. ~10% at biases 0.3/0.1 -- still far below the 0.5
  // warning tolerance.)
  ExactCheckOptions options;
  options.n = 12;
  const auto findings = deproto::analysis::check_exact(
      two_way_flip(0.03, 0.01), {6, 6}, options);
  const Finding* divergence = find_rule(findings, "exact.meanfield-divergence");
  ASSERT_NE(divergence, nullptr);
  EXPECT_EQ(divergence->severity, Severity::Info);
  EXPECT_LT(divergence->value, 1e-6);
  const Finding* fluct = find_rule(findings, "exact.fluctuation-mismatch");
  ASSERT_NE(fluct, nullptr);
  EXPECT_EQ(fluct->severity, Severity::Info);
  EXPECT_LT(fluct->value, 0.05);
}

TEST(ExactChecksTest, BudgetOverrunBecomesAFindingNotAnException) {
  ExactCheckOptions options;
  options.n = 64;
  options.max_states = 100;
  const auto findings = deproto::analysis::check_exact(
      synthesized("lv-majority"), {38, 26, 0}, options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "exact.state-budget");
  EXPECT_EQ(findings[0].severity, Severity::Info);
}

TEST(ExactChecksTest, RowBudgetOverrunBecomesAFindingNotAnException) {
  ExactCheckOptions options;
  options.n = 16;
  options.max_row_branches = 4;
  const auto findings = deproto::analysis::check_exact(
      synthesized("lv-majority"), {10, 6, 0}, options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "exact.state-budget");
}

// ------------------------------------------- analyze_spec + the pre-flight

TEST(ExactVerifyTest, AnalyzeSpecAppendsExactFindingsOnlyWhenOptedIn) {
  const deproto::api::ScenarioSpec spec =
      deproto::api::registry_get("lv-majority");
  deproto::analysis::VerifyOptions options;
  const deproto::analysis::Report off =
      deproto::analysis::analyze_spec(spec, options);
  EXPECT_EQ(find_rule(off.findings, "exact.absorbing-class"), nullptr);

  options.exact = true;
  options.exact_chain.n = 16;
  const deproto::analysis::Report on =
      deproto::analysis::analyze_spec(spec, options);
  const Finding* cls = find_rule(on.findings, "exact.absorbing-class");
  ASSERT_NE(cls, nullptr);
  EXPECT_TRUE(has_rule(on.findings, "exact.hitting-time", Severity::Info));
}

TEST(ExactVerifyTest, VerifyExactSerializesOnlyWhenEnabled) {
  deproto::api::ScenarioSpec spec = deproto::api::registry_get("epidemic");
  const std::string before = spec.to_json().dump();
  EXPECT_EQ(before.find("verify_exact"), std::string::npos)
      << "cache keys of pre-existing specs must stay byte-stable";
  spec.runtime.verify_exact = true;
  const deproto::api::ScenarioSpec back =
      deproto::api::ScenarioSpec::from_json(spec.to_json());
  EXPECT_TRUE(back.runtime.verify_exact);
}

TEST(ExactVerifyTest, PreFlightBlocksTheEndemicTrapAndPassesEpidemic) {
  deproto::api::ScenarioSpec endemic =
      deproto::api::registry_get("endemic").scaled_to(64);
  endemic.periods = 3;
  endemic.runtime.verify_exact = true;
  deproto::api::Experiment trapped(endemic);
  try {
    (void)trapped.launch();
    FAIL() << "expected the exact pre-flight to refuse the endemic trap";
  } catch (const deproto::api::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("exact.transient-trap"),
              std::string::npos)
        << e.what();
  }

  deproto::api::ScenarioSpec epidemic =
      deproto::api::registry_get("epidemic").scaled_to(64);
  epidemic.periods = 3;
  epidemic.runtime.verify_exact = true;
  deproto::api::Experiment clean(epidemic);
  EXPECT_NO_THROW((void)clean.launch());
}

}  // namespace
