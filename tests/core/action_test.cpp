#include "core/action.hpp"

#include <gtest/gtest.h>

namespace deproto::core {
namespace {

const std::vector<std::string> kStates{"x", "y", "z"};

TEST(ActionTest, FlippingBasics) {
  FlippingAction a;
  a.from_state = 1;
  a.to_state = 2;
  a.coin_bias = 0.25;
  const Action action = a;
  EXPECT_EQ(executor_state(action), 1U);
  EXPECT_EQ(messages_per_period(action), 0U);  // flipping is local
  EXPECT_EQ(term_occurrences(action), 1U);
  EXPECT_NE(to_string(action, kStates).find("flip"), std::string::npos);
}

TEST(ActionTest, SamplingMessageCount) {
  // Term -c x^2 y z in f_x: i_x - 1 = 1 same-state samples plus targets
  // {y, z} => 3 probes per period, |T| = 4.
  SamplingAction a;
  a.from_state = 0;
  a.to_state = 2;
  a.same_state_samples = 1;
  a.target_states = {1, 2};
  const Action action = a;
  EXPECT_EQ(executor_state(action), 0U);
  EXPECT_EQ(messages_per_period(action), 3U);
  EXPECT_EQ(term_occurrences(action), 4U);
}

TEST(ActionTest, TokenizingCountsHandoffMessage) {
  TokenizingAction a;
  a.executor_state = 1;
  a.token_state = 0;
  a.to_state = 1;
  a.same_state_samples = 0;
  a.target_states = {};
  const Action action = a;
  EXPECT_EQ(executor_state(action), 1U);
  EXPECT_EQ(messages_per_period(action), 1U);  // the token itself
  EXPECT_NE(to_string(action, kStates).find("token"), std::string::npos);
}

TEST(ActionTest, PushAndPullFanout) {
  PushAction push;
  push.executor_state = 1;
  push.target_state = 0;
  push.to_state = 1;
  push.fanout = 4;
  EXPECT_EQ(messages_per_period(Action{push}), 4U);
  EXPECT_EQ(executor_state(Action{push}), 1U);

  AnyOfSamplingAction pull;
  pull.from_state = 0;
  pull.match_state = 1;
  pull.to_state = 1;
  pull.fanout = 4;
  EXPECT_EQ(messages_per_period(Action{pull}), 4U);
  EXPECT_EQ(executor_state(Action{pull}), 0U);
}

TEST(ActionTest, ToStringNamesStates) {
  SamplingAction a;
  a.from_state = 0;
  a.to_state = 2;
  a.target_states = {1};
  a.coin_bias = 0.03;
  const std::string text = to_string(Action{a}, kStates);
  EXPECT_NE(text.find("[x]"), std::string::npos);
  EXPECT_NE(text.find("-> z"), std::string::npos);
}

}  // namespace
}  // namespace deproto::core
