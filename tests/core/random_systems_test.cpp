// Property tests over *randomly generated* equation systems: for any
// polynomial, completely partitionable system (built by construction from
// random {+T, -T} pairs), synthesis must succeed and the mean-field
// round-trip must recover p * source. This exercises the Theorem 1/5
// machinery far beyond the catalog systems.

#include <gtest/gtest.h>

#include <random>

#include "core/mean_field.hpp"
#include "core/synthesis.hpp"
#include "ode/taxonomy.hpp"

namespace deproto::core {
namespace {

struct GeneratorParams {
  std::uint64_t seed;
  std::size_t num_vars;
  std::size_t num_pairs;
  unsigned max_degree;     // max exponent of any single variable in a term
  bool force_restricted;   // ensure i_x >= 1 for each negative term
};

/// Build a random completely partitionable polynomial system by sampling
/// `num_pairs` random monomials T with positive coefficients and placing
/// -T on a random equation x (with i_x >= 1 if force_restricted) and +T on
/// another random equation.
ode::EquationSystem random_system(const GeneratorParams& params) {
  std::mt19937_64 rng(params.seed);
  std::vector<std::string> names;
  for (std::size_t v = 0; v < params.num_vars; ++v) {
    names.push_back("v" + std::to_string(v));
  }
  ode::EquationSystem sys(std::move(names));

  std::uniform_int_distribution<std::size_t> var_dist(0,
                                                      params.num_vars - 1);
  std::uniform_int_distribution<unsigned> exp_dist(0, params.max_degree);
  std::uniform_real_distribution<double> coeff_dist(0.05, 3.0);

  for (std::size_t k = 0; k < params.num_pairs; ++k) {
    const std::size_t eq_neg = var_dist(rng);
    std::size_t eq_pos = var_dist(rng);
    // Distinct coefficient per pair keeps the partition witness unique.
    const double c =
        coeff_dist(rng) + static_cast<double>(k) * 0.001;

    std::vector<unsigned> exps(params.num_vars, 0U);
    for (std::size_t v = 0; v < params.num_vars; ++v) {
      exps[v] = exp_dist(rng);
    }
    if (params.force_restricted && exps[eq_neg] == 0) {
      exps[eq_neg] = 1;
    }
    // A term with no variables at all would be a bare constant; give it a
    // variable so the pure mapping rules apply.
    unsigned total = 0;
    for (unsigned e : exps) total += e;
    if (total == 0) exps[eq_neg] = 1;

    sys.add_term(eq_neg, ode::Term(-c, exps));
    sys.add_term(eq_pos, ode::Term(+c, exps));
  }
  return sys;
}

class RandomSystemTest : public ::testing::TestWithParam<GeneratorParams> {};

TEST_P(RandomSystemTest, GeneratedSystemIsCompletelyPartitionable) {
  const ode::EquationSystem sys = random_system(GetParam());
  const ode::TaxonomyReport report = ode::classify(sys);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.completely_partitionable);
  if (GetParam().force_restricted) {
    EXPECT_TRUE(report.restricted_polynomial);
  }
}

TEST_P(RandomSystemTest, SynthesisRoundTripsThroughMeanField) {
  const ode::EquationSystem sys = random_system(GetParam());
  SynthesisOptions options;
  options.allow_tokenizing = !GetParam().force_restricted;
  const SynthesisResult result = synthesize(sys, options);
  EXPECT_GT(result.p, 0.0);
  EXPECT_LE(result.p, 1.0);
  EXPECT_TRUE(verifies_equivalence(result.machine, sys, 0.0, 1e-7))
      << "system:\n"
      << sys.to_string() << "machine:\n"
      << result.machine.to_string();
}

TEST_P(RandomSystemTest, RoundTripSurvivesFailureCompensation) {
  const ode::EquationSystem sys = random_system(GetParam());
  SynthesisOptions options;
  options.allow_tokenizing = !GetParam().force_restricted;
  options.failure_rate = 0.3;
  const SynthesisResult result = synthesize(sys, options);
  EXPECT_TRUE(verifies_equivalence(result.machine, sys, 0.3, 1e-7));
}

TEST_P(RandomSystemTest, MessageComplexityBoundHolds) {
  // Section 3: messages per period for state x = sum over negative terms
  // of f_x of (occurrences - 1). Verify against the machine (pure
  // Flipping/Sampling mapping only).
  const GeneratorParams params = GetParam();
  if (!params.force_restricted) return;  // tokens charge the executor
  const ode::EquationSystem sys = random_system(params);
  const SynthesisResult result = synthesize(sys);
  for (std::size_t v = 0; v < sys.num_vars(); ++v) {
    std::size_t expected = 0;
    for (const ode::Term& t : sys.rhs(v)) {
      if (t.coefficient() < 0) {
        expected += t.variable_occurrences() - 1;
      }
    }
    EXPECT_EQ(result.machine.messages_per_period(v), expected)
        << "state " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RestrictedPolynomial, RandomSystemTest,
    ::testing::Values(
        GeneratorParams{1, 2, 2, 1, true}, GeneratorParams{2, 3, 3, 1, true},
        GeneratorParams{3, 3, 5, 2, true}, GeneratorParams{4, 4, 6, 2, true},
        GeneratorParams{5, 5, 8, 1, true}, GeneratorParams{6, 4, 10, 3, true},
        GeneratorParams{7, 6, 12, 2, true},
        GeneratorParams{8, 3, 4, 4, true}));

INSTANTIATE_TEST_SUITE_P(
    GeneralPolynomial, RandomSystemTest,
    ::testing::Values(
        GeneratorParams{11, 2, 2, 1, false},
        GeneratorParams{12, 3, 4, 2, false},
        GeneratorParams{13, 4, 6, 2, false},
        GeneratorParams{14, 5, 9, 2, false},
        GeneratorParams{15, 4, 12, 3, false},
        GeneratorParams{16, 6, 10, 1, false}));

TEST(RandomSystemEdgeCases, SingleVariableSelfLoop) {
  // -T and +T on the same equation: a self-loop action; still mappable and
  // the mean field contribution cancels.
  ode::EquationSystem sys({"x"});
  sys.add_term(0, ode::Term(-0.5, {1U}));
  sys.add_term(0, ode::Term(+0.5, {1U}));
  const SynthesisResult result = synthesize(sys);
  EXPECT_TRUE(verifies_equivalence(result.machine, sys));
}

TEST(RandomSystemEdgeCases, HighDegreeTermSamplesManyTargets) {
  // -c x^3 y^2 z: 3-1+2+1 = 5 probes, |T| = 6.
  ode::EquationSystem sys({"x", "y", "z"});
  sys.add_term("x", -0.5, {{"x", 3}, {"y", 2}, {"z", 1}});
  sys.add_term("y", +0.5, {{"x", 3}, {"y", 2}, {"z", 1}});
  const SynthesisResult result = synthesize(sys);
  const auto& a = std::get<SamplingAction>(result.machine.actions()[0]);
  EXPECT_EQ(a.same_state_samples, 2U);
  EXPECT_EQ(a.target_states.size(), 3U);
  EXPECT_EQ(result.machine.messages_per_period(0), 5U);
  EXPECT_TRUE(verifies_equivalence(result.machine, sys));
}

}  // namespace
}  // namespace deproto::core
