#include "core/failure_compensation.hpp"

#include <gtest/gtest.h>

#include "core/mean_field.hpp"
#include "core/synthesis.hpp"
#include "ode/catalog.hpp"

namespace deproto::core {
namespace {

TEST(FailureFactorTest, Values) {
  EXPECT_DOUBLE_EQ(failure_factor(1, 0.5), 1.0);   // flipping: |T| = 1
  EXPECT_DOUBLE_EQ(failure_factor(2, 0.5), 2.0);   // one probe
  EXPECT_DOUBLE_EQ(failure_factor(3, 0.5), 4.0);   // two probes
  EXPECT_DOUBLE_EQ(failure_factor(2, 0.0), 1.0);   // no loss, no factor
  EXPECT_THROW((void)failure_factor(2, 1.0), std::invalid_argument);
  EXPECT_THROW((void)failure_factor(2, -0.1), std::invalid_argument);
}

TEST(FailureCompensationTest, PostHocCompensationMatchesSynthesisTime) {
  // compensate_for_failures(synthesize(sys), f) must model the same system
  // as synthesize(sys, {.failure_rate = f}).
  const double f = 0.25;
  const auto source = ode::catalog::endemic(4.0, 1.0, 0.01);
  const ProtocolStateMachine post =
      compensate_for_failures(synthesize(source).machine, f);
  const ode::EquationSystem realized = mean_field(post, f);
  // Realized dynamics must be a positive scalar multiple of the source.
  const double p = post.normalizing_p();
  EXPECT_TRUE(ode::equivalent(realized, source.scaled(p), 1e-9))
      << realized.to_string();
}

TEST(FailureCompensationTest, FlippingCoinsUntouchedBeforeRenormalization) {
  // Compensating a machine whose sampling coin has headroom must leave the
  // flip biases unchanged.
  const auto source = ode::catalog::endemic(4.0, 1.0, 0.01);
  const auto machine = synthesize(source).machine;  // p = 0.25, coins <= .25
  const ProtocolStateMachine out = compensate_for_failures(machine, 0.5);
  // sampling coin would become 0.25*4*2 = 2.0 > 1 -> everything scales by
  // 1/2; flips go from 0.25 -> 0.125 and 0.0025 -> 0.00125.
  EXPECT_NEAR(out.normalizing_p(), 0.125, 1e-12);
  for (const Action& a : out.actions()) {
    if (const auto* flip = std::get_if<FlippingAction>(&a)) {
      EXPECT_LT(flip->coin_bias, 0.2);
    }
    if (const auto* sample = std::get_if<SamplingAction>(&a)) {
      EXPECT_NEAR(sample->coin_bias, 1.0, 1e-12);  // saturated at 1
    }
  }
}

TEST(FailureCompensationTest, NoOpAtZeroLoss) {
  const auto machine = synthesize(ode::catalog::epidemic()).machine;
  const ProtocolStateMachine out = compensate_for_failures(machine, 0.0);
  EXPECT_DOUBLE_EQ(out.normalizing_p(), machine.normalizing_p());
  const auto& a = std::get<SamplingAction>(out.actions()[0]);
  const auto& b = std::get<SamplingAction>(machine.actions()[0]);
  EXPECT_DOUBLE_EQ(a.coin_bias, b.coin_bias);
}

}  // namespace
}  // namespace deproto::core
