#include "core/synthesis.hpp"

#include <gtest/gtest.h>

#include "ode/catalog.hpp"

namespace deproto::core {
namespace {

TEST(SynthesisTest, EpidemicYieldsCanonicalPullProtocol) {
  // Eq. (0) must synthesize into exactly the canonical epidemic: one
  // one-time-sampling action, executed by susceptibles, sampling a single
  // target, matching the infected state, with coin bias p*c = 1.
  const SynthesisResult result = synthesize(ode::catalog::epidemic());
  EXPECT_DOUBLE_EQ(result.p, 1.0);
  ASSERT_EQ(result.machine.actions().size(), 1U);
  const auto& a = std::get<SamplingAction>(result.machine.actions()[0]);
  EXPECT_EQ(a.from_state, result.machine.state_index("x"));
  EXPECT_EQ(a.to_state, result.machine.state_index("y"));
  EXPECT_EQ(a.same_state_samples, 0U);
  ASSERT_EQ(a.target_states.size(), 1U);
  EXPECT_EQ(a.target_states[0], result.machine.state_index("y"));
  EXPECT_DOUBLE_EQ(a.coin_bias, 1.0);
  // Message complexity (Section 3): occurrences (2) - negative terms (1).
  EXPECT_EQ(result.machine.messages_per_period(0), 1U);
}

TEST(SynthesisTest, LvMachineMatchesFigure3) {
  const SynthesisResult result =
      synthesize(ode::catalog::lv_partitionable(), {.p = 0.01});
  const auto& m = result.machine;
  const std::size_t x = *m.state_index("x");
  const std::size_t y = *m.state_index("y");
  const std::size_t z = *m.state_index("z");

  // x and y each run one action; z runs two (Figure 3).
  EXPECT_EQ(m.actions_of(x).size(), 1U);
  EXPECT_EQ(m.actions_of(y).size(), 1U);
  EXPECT_EQ(m.actions_of(z).size(), 2U);

  // x: sample one target; if in y and coin 3p heads -> z.
  const auto& ax = std::get<SamplingAction>(m.actions()[m.actions_of(x)[0]]);
  EXPECT_EQ(ax.to_state, z);
  ASSERT_EQ(ax.target_states.size(), 1U);
  EXPECT_EQ(ax.target_states[0], y);
  EXPECT_DOUBLE_EQ(ax.coin_bias, 0.03);

  // y: sample one target; if in x -> z.
  const auto& ay = std::get<SamplingAction>(m.actions()[m.actions_of(y)[0]]);
  EXPECT_EQ(ay.to_state, z);
  EXPECT_EQ(ay.target_states[0], x);

  // z: one action moves to x on meeting x, the other to y on meeting y.
  bool to_x = false, to_y = false;
  for (std::size_t idx : m.actions_of(z)) {
    const auto& az = std::get<SamplingAction>(m.actions()[idx]);
    if (az.to_state == x && az.target_states[0] == x) to_x = true;
    if (az.to_state == y && az.target_states[0] == y) to_y = true;
    EXPECT_DOUBLE_EQ(az.coin_bias, 0.03);
  }
  EXPECT_TRUE(to_x);
  EXPECT_TRUE(to_y);
}

TEST(SynthesisTest, EndemicPureMachineNeedsSmallP) {
  // beta = 4 > 1 forces p = 1/4 so the sampling coin stays a probability.
  const SynthesisResult result =
      synthesize(ode::catalog::endemic(4.0, 1.0, 0.01));
  EXPECT_DOUBLE_EQ(result.p, 0.25);
  // Actions: sampling (beta term), flip (gamma), flip (alpha).
  std::size_t flips = 0, samplings = 0;
  for (const Action& a : result.machine.actions()) {
    if (std::holds_alternative<FlippingAction>(a)) ++flips;
    if (std::holds_alternative<SamplingAction>(a)) ++samplings;
  }
  EXPECT_EQ(flips, 2U);
  EXPECT_EQ(samplings, 1U);
  // gamma flip bias = p * 1.0 = 0.25.
  for (const Action& a : result.machine.actions()) {
    if (const auto* flip = std::get_if<FlippingAction>(&a)) {
      EXPECT_LE(flip->coin_bias, 0.25 + 1e-12);
    }
  }
}

TEST(SynthesisTest, EndemicPushPullKeepsFullRate) {
  // The Section 4.1.2 optimization: -4xy as pull+push with b = 2, leaving
  // p = 1 (the flips run at full alpha/gamma rates).
  SynthesisOptions options;
  options.push_pull.push_back(PushPullSpec{"x", "y"});
  const SynthesisResult result =
      synthesize(ode::catalog::endemic(4.0, 1.0, 0.01), options);
  EXPECT_DOUBLE_EQ(result.p, 1.0);

  bool pull_found = false, push_found = false;
  for (const Action& a : result.machine.actions()) {
    if (const auto* pull = std::get_if<AnyOfSamplingAction>(&a)) {
      EXPECT_EQ(pull->fanout, 2U);
      EXPECT_DOUBLE_EQ(pull->coin_bias, 1.0);
      pull_found = true;
    }
    if (const auto* push = std::get_if<PushAction>(&a)) {
      EXPECT_EQ(push->fanout, 2U);
      push_found = true;
    }
  }
  EXPECT_TRUE(pull_found);
  EXPECT_TRUE(push_found);
}

TEST(SynthesisTest, PushPullRequiresEvenIntegerBeta) {
  SynthesisOptions options;
  options.push_pull.push_back(PushPullSpec{"x", "y"});
  EXPECT_THROW(
      (void)synthesize(ode::catalog::endemic(3.0, 1.0, 0.01), options),
      SynthesisError);
}

TEST(SynthesisTest, InvitationUsesTokenizing) {
  const SynthesisResult result = synthesize(ode::catalog::invitation(0.2));
  ASSERT_EQ(result.machine.actions().size(), 1U);
  const auto& a = std::get<TokenizingAction>(result.machine.actions()[0]);
  EXPECT_EQ(a.executor_state, result.machine.state_index("y"));
  EXPECT_EQ(a.token_state, result.machine.state_index("x"));
  EXPECT_EQ(a.to_state, result.machine.state_index("y"));
  EXPECT_EQ(a.same_state_samples, 0U);
  EXPECT_TRUE(a.target_states.empty());
}

TEST(SynthesisTest, TokenizingCanBeDisabled) {
  SynthesisOptions options;
  options.allow_tokenizing = false;
  EXPECT_THROW((void)synthesize(ode::catalog::invitation(0.2), options),
               SynthesisError);
}

TEST(SynthesisTest, ConstantTermsNeedAutoRewrite) {
  EXPECT_THROW((void)synthesize(ode::catalog::constant_flow(0.3)),
               SynthesisError);
  SynthesisOptions options;
  options.auto_rewrite = true;
  const SynthesisResult result =
      synthesize(ode::catalog::constant_flow(0.3), options);
  EXPECT_GE(result.machine.actions().size(), 2U);  // flip + tokenizing
}

TEST(SynthesisTest, IncompleteSystemNeedsAutoRewrite) {
  EXPECT_THROW((void)synthesize(ode::catalog::logistic(1.0)),
               SynthesisError);
  SynthesisOptions options;
  options.auto_rewrite = true;
  const SynthesisResult result =
      synthesize(ode::catalog::logistic(1.0), options);
  EXPECT_EQ(result.source.num_vars(), 2U);  // slack z added
  EXPECT_TRUE(result.taxonomy.completely_partitionable);
}

TEST(SynthesisTest, NonPartitionableSystemIsRejected) {
  // Complete but unmatched coefficients: -2xy vs two +1xy terms.
  ode::EquationSystem sys({"x", "y"});
  sys.add_term("x", -2.0, {{"x", 1}, {"y", 1}});
  sys.add_term("y", +1.0, {{"x", 1}, {"y", 1}});
  sys.add_term("y", +1.0, {{"x", 1}, {"y", 1}});
  EXPECT_THROW((void)synthesize(sys), SynthesisError);
}

TEST(SynthesisTest, ExplicitPValidated) {
  EXPECT_THROW((void)synthesize(ode::catalog::epidemic(), {.p = 0.0}),
               SynthesisError);
  EXPECT_THROW((void)synthesize(ode::catalog::epidemic(), {.p = 1.5}),
               SynthesisError);
  // p too large for endemic's beta = 4 coin.
  EXPECT_THROW(
      (void)synthesize(ode::catalog::endemic(4.0, 1.0, 0.01), {.p = 0.5}),
      SynthesisError);
  // A smaller p is always admissible.
  const SynthesisResult r =
      synthesize(ode::catalog::endemic(4.0, 1.0, 0.01), {.p = 0.1});
  EXPECT_DOUBLE_EQ(r.p, 0.1);
}

TEST(SynthesisTest, SecondOrderExampleSynthesizesAfterReduction) {
  // Section 7 pipeline: x-ddot + x-dot = x -> first-order complete system
  // -> machine. The system has negative terms with i_x = 0 (e.g. z-dot =
  // -x), so Tokenizing is required.
  const ode::EquationSystem sys =
      ode::reduce_order(ode::catalog::second_order_example());
  const SynthesisResult result = synthesize(sys);
  EXPECT_EQ(result.machine.num_states(), 3U);
  EXPECT_GE(result.machine.actions().size(), 3U);
}

TEST(SynthesisTest, NotesDocumentEveryDecision) {
  const SynthesisResult result =
      synthesize(ode::catalog::endemic(4.0, 1.0, 0.01));
  // One note per partition pair plus the p note.
  EXPECT_EQ(result.notes.size(), 4U);
  bool mentions_p = false;
  for (const std::string& note : result.notes) {
    if (note.find("normalizing constant") != std::string::npos) {
      mentions_p = true;
    }
  }
  EXPECT_TRUE(mentions_p);
}

TEST(SynthesisTest, MessageComplexityBound) {
  // Section 3: messages sent by a process in state x per period = total
  // variable occurrences in negative terms of f_x minus the number of
  // negative terms. For LV state z: terms -3xz, -3yz => (2-1) + (2-1) = 2.
  const SynthesisResult result =
      synthesize(ode::catalog::lv_partitionable(), {.p = 0.01});
  const std::size_t z = *result.machine.state_index("z");
  EXPECT_EQ(result.machine.messages_per_period(z), 2U);
  EXPECT_EQ(result.machine.max_messages_per_period(), 2U);
}

}  // namespace
}  // namespace deproto::core
