#include "core/state_machine.hpp"

#include <gtest/gtest.h>

namespace deproto::core {
namespace {

ProtocolStateMachine make_machine() {
  ProtocolStateMachine m({"x", "y", "z"}, 0.5);
  FlippingAction flip;
  flip.from_state = 1;
  flip.to_state = 2;
  flip.coin_bias = 0.5;
  m.add_action(flip);
  SamplingAction sample;
  sample.from_state = 0;
  sample.to_state = 1;
  sample.target_states = {1};
  sample.coin_bias = 1.0;
  m.add_action(sample);
  return m;
}

TEST(StateMachineTest, StatesAndLookup) {
  const ProtocolStateMachine m = make_machine();
  EXPECT_EQ(m.num_states(), 3U);
  EXPECT_EQ(m.state_name(1), "y");
  EXPECT_EQ(m.state_index("z"), std::optional<std::size_t>(2));
  EXPECT_FALSE(m.state_index("w").has_value());
  EXPECT_THROW((void)m.state_name(9), std::out_of_range);
}

TEST(StateMachineTest, ActionsGroupedByExecutor) {
  const ProtocolStateMachine m = make_machine();
  EXPECT_EQ(m.actions().size(), 2U);
  EXPECT_EQ(m.actions_of(0).size(), 1U);  // the sampling action
  EXPECT_EQ(m.actions_of(1).size(), 1U);  // the flip
  EXPECT_TRUE(m.actions_of(2).empty());
}

TEST(StateMachineTest, MessageComplexityPerState) {
  const ProtocolStateMachine m = make_machine();
  EXPECT_EQ(m.messages_per_period(0), 1U);
  EXPECT_EQ(m.messages_per_period(1), 0U);
  EXPECT_EQ(m.max_messages_per_period(), 1U);
}

TEST(StateMachineTest, NormalizingPValidated) {
  EXPECT_THROW(ProtocolStateMachine({"x"}, 0.0), std::invalid_argument);
  EXPECT_THROW(ProtocolStateMachine({"x"}, 1.5), std::invalid_argument);
  EXPECT_THROW(ProtocolStateMachine(std::vector<std::string>{}),
               std::invalid_argument);
}

TEST(StateMachineTest, AddActionValidatesState) {
  ProtocolStateMachine m({"x"});
  FlippingAction flip;
  flip.from_state = 7;
  flip.to_state = 0;
  EXPECT_THROW(m.add_action(flip), std::out_of_range);
}

TEST(StateMachineTest, ToStringListsStatesAndP) {
  const std::string text = make_machine().to_string();
  EXPECT_NE(text.find("p = 0.5"), std::string::npos);
  EXPECT_NE(text.find("state x"), std::string::npos);
  EXPECT_NE(text.find("state z"), std::string::npos);
}

}  // namespace
}  // namespace deproto::core
