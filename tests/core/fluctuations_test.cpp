#include "core/fluctuations.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/synthesis.hpp"
#include "ode/catalog.hpp"
#include "sim/runtime.hpp"
#include "sim/sync_sim.hpp"

namespace deproto::core {
namespace {

/// Measured stddev of a state's population over a long stationary run.
double measured_stddev(const ProtocolStateMachine& machine,
                       const num::Vec& equilibrium, std::size_t n,
                       std::size_t state, std::uint64_t seed) {
  sim::MachineExecutor executor(machine);
  sim::SyncSimulator simulator(n, executor, seed);
  std::vector<std::size_t> counts;
  for (std::size_t s = 0; s + 1 < equilibrium.size(); ++s) {
    counts.push_back(static_cast<std::size_t>(
        equilibrium[s] * static_cast<double>(n)));
  }
  simulator.seed_states(counts);
  simulator.run(500);  // settle
  const std::size_t horizon = 6000;
  simulator.run(horizon);
  const auto& samples = simulator.metrics().samples();
  double sum = 0.0, sum2 = 0.0;
  std::size_t used = 0;
  for (std::size_t k = 500; k < samples.size(); ++k) {
    const double v = static_cast<double>(samples[k].alive_in_state[state]);
    sum += v;
    sum2 += v * v;
    ++used;
  }
  const double mean = sum / static_cast<double>(used);
  return std::sqrt(std::max(0.0, sum2 / static_cast<double>(used) -
                                     mean * mean));
}

TEST(FluctuationsTest, DiffusionMatrixIsPsd) {
  const auto synth = synthesize(ode::catalog::endemic(4.0, 0.4, 0.05));
  // Equilibrium: x = gamma/beta = 0.1, y = (1-x)/(1+gamma/alpha) = 0.1.
  const num::Vec point{0.1, 0.1, 0.8};
  const num::Matrix b = diffusion_matrix(synth.machine, point);
  EXPECT_EQ(b.rows(), 2U);
  EXPECT_NEAR(b(0, 1), b(1, 0), 1e-12);
  EXPECT_GE(b(0, 0), 0.0);
  EXPECT_GE(b(1, 1), 0.0);
  EXPECT_GE(b.determinant(), -1e-12);
}

TEST(FluctuationsTest, StddevScalesAsSqrtN) {
  const auto synth = synthesize(ode::catalog::endemic(4.0, 0.4, 0.05));
  const num::Vec point{0.1, 0.1, 0.8};
  const auto at_n = [&](double n) {
    return stationary_fluctuations(synth.machine, point, n)
        .count_stddev[1];
  };
  // Count stddev grows as sqrt(N): quadrupling N doubles it.
  EXPECT_NEAR(at_n(40000.0) / at_n(10000.0), 2.0, 1e-9);
}

TEST(FluctuationsTest, UnstablePointRejected) {
  const auto synth = synthesize(ode::catalog::lv_partitionable(),
                                {.p = 0.3});
  // The centroid saddle is not stable: the Lyapunov solve must refuse.
  EXPECT_THROW((void)stationary_fluctuations(
                   synth.machine, {1.0 / 3, 1.0 / 3, 1.0 / 3}, 1000.0),
               std::runtime_error);
}

TEST(FluctuationsTest, PredictsEndemicStashVariance) {
  // The headline: predicted stationary stddev of the stash count matches
  // simulation within ~25% (LNA + binomial-vs-poisson approximations).
  const double beta = 4.0, gamma = 0.4, alpha = 0.05;
  const auto synth = synthesize(ode::catalog::endemic(beta, gamma, alpha));
  const double x = gamma / beta;
  const double y = (1.0 - x) / (1.0 + gamma / alpha);
  const num::Vec point{x, y, 1.0 - x - y};
  const std::size_t n = 10000;

  const auto report =
      stationary_fluctuations(synth.machine, point, static_cast<double>(n));
  const double predicted = report.count_stddev[1];
  const double measured = measured_stddev(synth.machine, point, n, 1, 5);
  EXPECT_GT(predicted, 0.0);
  EXPECT_NEAR(measured / predicted, 1.0, 0.25)
      << "predicted " << predicted << " measured " << measured;
}

TEST(FluctuationsTest, EpidemicHasNoStableInteriorPoint) {
  // The epidemic's only interior rest points are the endpoints; at the
  // absorbing all-infected state the fluctuation question degenerates
  // (diffusion vanishes with x = 0).
  const auto synth = synthesize(ode::catalog::epidemic());
  const num::Matrix b =
      diffusion_matrix(synth.machine, num::Vec{0.0, 1.0});
  EXPECT_DOUBLE_EQ(b(0, 0), 0.0);
}

TEST(FluctuationsTest, ValidatesArguments) {
  const auto synth = synthesize(ode::catalog::endemic(4.0, 0.4, 0.05));
  EXPECT_THROW((void)stationary_fluctuations(synth.machine,
                                             {0.1, 0.1, 0.8}, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)diffusion_matrix(synth.machine, {0.1, 0.1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace deproto::core
