#include "core/mean_field.hpp"

#include <gtest/gtest.h>

#include "core/synthesis.hpp"
#include "ode/catalog.hpp"
#include "ode/rewriting.hpp"

namespace deproto::core {
namespace {

// ---------------------------------------------------------------------------
// The mechanical content of Theorems 1 and 5: synthesize() then mean_field()
// recovers p * (source system), for every mappable system in the catalog.
// ---------------------------------------------------------------------------

struct RoundTripCase {
  std::string name;
  ode::EquationSystem system;
};

class RoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(RoundTripTest, MeanFieldEqualsScaledSource) {
  const ode::EquationSystem& source = GetParam().system;
  const SynthesisResult result = synthesize(source);
  EXPECT_TRUE(verifies_equivalence(result.machine, source))
      << "derived:\n"
      << mean_field(result.machine).to_string() << "expected p*source, p = "
      << result.p << "\n"
      << source.scaled(result.p).to_string();
}

TEST_P(RoundTripTest, ExactDriftMatchesMeanFieldPolynomial) {
  const ode::EquationSystem& source = GetParam().system;
  const SynthesisResult result = synthesize(source);
  const ode::EquationSystem derived = mean_field(result.machine);
  // Probe a few interior simplex points.
  const std::size_t m = source.num_vars();
  for (double skew : {0.0, 0.2, 0.4}) {
    num::Vec x(m, (1.0 - skew) / static_cast<double>(m));
    x[0] += skew;
    const num::Vec drift = exact_drift(result.machine, x);
    std::vector<double> expected(m);
    derived.evaluate(x, expected);
    for (std::size_t v = 0; v < m; ++v) {
      EXPECT_NEAR(drift[v], expected[v], 1e-12) << "var " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, RoundTripTest,
    ::testing::Values(
        RoundTripCase{"epidemic", ode::catalog::epidemic()},
        RoundTripCase{"endemic_fig2", ode::catalog::endemic(4.0, 1.0, 0.01)},
        RoundTripCase{"endemic_fig7",
                      ode::catalog::endemic(2.0, 0.1, 0.001)},
        RoundTripCase{"lv", ode::catalog::lv_partitionable()},
        RoundTripCase{"sir", ode::catalog::sir(0.5, 0.1)},
        RoundTripCase{"invitation", ode::catalog::invitation(0.25)},
        RoundTripCase{"second_order",
                      ode::reduce_order(ode::catalog::second_order_example())}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Failure compensation (Section 3, "The Effect of Failures").
// ---------------------------------------------------------------------------

TEST(MeanFieldFailureTest, UncompensatedMachineSlowsUnderLoss) {
  // Without compensation, a failure rate f multiplies each sampling term by
  // (1-f)^{|T|-1}: the epidemic's xy term (|T| = 2) slows by (1-f).
  const SynthesisResult result = synthesize(ode::catalog::epidemic());
  const double f = 0.25;
  const ode::EquationSystem degraded = mean_field(result.machine, f);
  const ode::EquationSystem expected =
      ode::catalog::epidemic().scaled(1.0 - f);
  EXPECT_TRUE(ode::equivalent(degraded, expected));
}

TEST(MeanFieldFailureTest, SynthesisTimeCompensationRestoresSource) {
  // Synthesizing with failure_rate = f bakes (1/(1-f))^{|T|-1} into the
  // coins; running under loss f then realizes exactly p * source.
  const double f = 0.25;
  const SynthesisResult result =
      synthesize(ode::catalog::epidemic(), {.failure_rate = f});
  EXPECT_TRUE(verifies_equivalence(result.machine,
                                   ode::catalog::epidemic(), f));
}

TEST(MeanFieldFailureTest, CompensationShrinksPWhenCoinSaturates) {
  // Epidemic coin is already at bias 1.0 (p = 1); compensating for f
  // requires bias 1/(1-f) > 1, so p must drop to keep coins <= 1.
  const double f = 0.2;
  const SynthesisResult result =
      synthesize(ode::catalog::epidemic(), {.failure_rate = f});
  EXPECT_NEAR(result.p, 1.0 - f, 1e-12);
}

TEST(MeanFieldFailureTest, HighOrderTermGetsLargerFactor) {
  // A term x*y^2 (|T| = 3) needs (1/(1-f))^2.
  ode::EquationSystem sys({"x", "y"});
  sys.add_term("x", -0.5, {{"x", 1}, {"y", 2}});
  sys.add_term("y", +0.5, {{"x", 1}, {"y", 2}});
  const double f = 0.3;
  const SynthesisResult result = synthesize(sys, {.failure_rate = f});
  EXPECT_TRUE(verifies_equivalence(result.machine, sys, f, 1e-9));
  const auto& a = std::get<SamplingAction>(result.machine.actions()[0]);
  EXPECT_NEAR(a.coin_bias,
              result.p * 0.5 / ((1.0 - f) * (1.0 - f)), 1e-12);
}

// ---------------------------------------------------------------------------
// Push-pull variant (Section 4.1.2).
// ---------------------------------------------------------------------------

TEST(MeanFieldPushPullTest, EndemicVariantModelsSourceAtFullRate) {
  // With the push optimization, mean field == source system (p = 1,
  // beta = 2b): "This does not change the differential equations modeled."
  SynthesisOptions options;
  options.push_pull.push_back(PushPullSpec{"x", "y"});
  const ode::EquationSystem source = ode::catalog::endemic(4.0, 1.0, 0.01);
  const SynthesisResult result = synthesize(source, options);
  EXPECT_DOUBLE_EQ(result.p, 1.0);
  EXPECT_TRUE(ode::equivalent(mean_field(result.machine), source));
}

TEST(MeanFieldPushPullTest, ExactDriftUsesFiniteFanoutPullProbability) {
  // The pull side fires with probability 1 - (1-y)^b, not b*y; at large y
  // the exact drift is smaller than the linearized mean field.
  SynthesisOptions options;
  options.push_pull.push_back(PushPullSpec{"x", "y"});
  const SynthesisResult result =
      synthesize(ode::catalog::endemic(4.0, 1.0, 0.01), options);
  const num::Vec x{0.3, 0.6, 0.1};
  const num::Vec drift = exact_drift(result.machine, x);
  std::vector<double> linear(3);
  mean_field(result.machine).evaluate(x, linear);
  EXPECT_LT(drift[1], linear[1]);  // stash inflow saturates
  // Conservation holds either way.
  EXPECT_NEAR(drift[0] + drift[1] + drift[2], 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Structural properties of the derived system.
// ---------------------------------------------------------------------------

TEST(MeanFieldTest, DerivedSystemIsAlwaysComplete) {
  for (const auto& source :
       {ode::catalog::epidemic(), ode::catalog::lv_partitionable(),
        ode::catalog::invitation(0.1)}) {
    const SynthesisResult result = synthesize(source);
    EXPECT_TRUE(ode::is_complete(mean_field(result.machine)));
  }
}

TEST(MeanFieldTest, TokenizingDriftVanishesWhenTokenStateEmpty) {
  // exact_drift honors the "drop token when x is empty" rule.
  const SynthesisResult result = synthesize(ode::catalog::invitation(0.2));
  const num::Vec no_x{0.0, 1.0};
  const num::Vec drift = exact_drift(result.machine, no_x);
  EXPECT_DOUBLE_EQ(drift[0], 0.0);
  EXPECT_DOUBLE_EQ(drift[1], 0.0);
}

TEST(MeanFieldTest, RejectsBadFailureRate) {
  const SynthesisResult result = synthesize(ode::catalog::epidemic());
  EXPECT_THROW((void)mean_field(result.machine, 1.0), std::invalid_argument);
  EXPECT_THROW((void)mean_field(result.machine, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace deproto::core
