#include "numerics/phase_portrait.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ode/catalog.hpp"

namespace deproto::num {
namespace {

TEST(PhasePortraitTest, TrajectoriesRecorded) {
  const auto sys = ode::catalog::epidemic();
  PhasePortraitOptions opts;
  opts.t_end = 5.0;
  opts.observe_dt = 0.5;
  const PhasePortrait portrait =
      compute_phase_portrait(sys, {Vec{0.99, 0.01}, Vec{0.5, 0.5}}, opts);
  ASSERT_EQ(portrait.trajectories.size(), 2U);
  for (const Trajectory& traj : portrait.trajectories) {
    EXPECT_GE(traj.points.size(), 8U);
    EXPECT_EQ(traj.points.size(), traj.times.size());
  }
}

TEST(PhasePortraitTest, CompleteSystemStaysOnSimplex) {
  const auto sys = ode::catalog::lv_partitionable();
  PhasePortraitOptions opts;
  opts.t_end = 10.0;
  const PhasePortrait portrait =
      compute_phase_portrait(sys, {Vec{0.6, 0.4, 0.0}, Vec{0.1, 0.2, 0.7}},
                             opts);
  for (const Trajectory& traj : portrait.trajectories) {
    for (const Vec& p : traj.points) {
      EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-7);
    }
  }
}

TEST(PhasePortraitTest, EndemicTrajectoryConvergesToSecondEquilibrium) {
  // Figure 2 parameters; any interior start spirals into eq. (2).
  const double beta = 4.0, gamma = 1.0, alpha = 0.01;
  const auto sys = ode::catalog::endemic(beta, gamma, alpha);
  PhasePortraitOptions opts;
  opts.t_end = 3000.0;
  opts.observe_dt = 10.0;
  opts.integrate.dt_max = 1.0;
  const PhasePortrait portrait =
      compute_phase_portrait(sys, {Vec{0.999, 0.001, 0.0}}, opts);
  const Vec& last = portrait.trajectories[0].points.back();
  const double x_inf = gamma / beta;
  const double y_inf = (1.0 - x_inf) / (1.0 + gamma / alpha);
  EXPECT_NEAR(last[0], x_inf, 0.01);
  EXPECT_NEAR(last[1], y_inf, 0.005);
}

TEST(PhasePortraitTest, AsciiRenderShowsMarks) {
  const auto sys = ode::catalog::epidemic();
  PhasePortraitOptions opts;
  opts.t_end = 5.0;
  const PhasePortrait portrait =
      compute_phase_portrait(sys, {Vec{0.9, 0.1}}, opts);
  const std::string art = render_ascii(portrait, {0, 1}, 1.0, 40, 12);
  EXPECT_NE(art.find('o'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 12);
}

TEST(PhasePortraitTest, GnuplotOutputScalesByN) {
  const auto sys = ode::catalog::epidemic();
  PhasePortraitOptions opts;
  opts.t_end = 1.0;
  opts.observe_dt = 0.5;
  const PhasePortrait portrait =
      compute_phase_portrait(sys, {Vec{1.0, 0.0}}, opts);
  std::ostringstream out;
  write_gnuplot(portrait, out, {0, 1}, 1000.0);
  // x stays at 1.0 (no infective), scaled to 1000.
  EXPECT_NE(out.str().find("1000 0"), std::string::npos);
}

}  // namespace
}  // namespace deproto::num
