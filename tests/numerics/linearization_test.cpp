#include "numerics/linearization.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/integrator.hpp"
#include "ode/catalog.hpp"

namespace deproto::num {
namespace {

TEST(LinearizationTest, MatrixAShape) {
  const Matrix a = endemic_matrix_A(2.0, 0.01, 1.0);
  EXPECT_NEAR(a(0, 0), -2.01, 1e-12);
  EXPECT_NEAR(a(0, 1), -2.0 * 1.01, 1e-12);
  EXPECT_NEAR(a(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(a(1, 1), 0.0, 1e-12);
}

TEST(LinearizationTest, MatrixAMatchesCatalogLinearizedSystem) {
  const double sigma = 3.0, alpha = 0.05, gamma = 0.7;
  const auto sys = ode::catalog::endemic_linearized(sigma, alpha, gamma);
  const Matrix j = jacobian_at(sys, Vec{0.0, 0.0});
  const Matrix a = endemic_matrix_A(sigma, alpha, gamma);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(j(r, c), a(r, c), 1e-12);
    }
  }
}

TEST(LinearizationTest, EndemicSigmaFractionForm) {
  // sigma = (beta - gamma) / (1 + gamma/alpha).
  EXPECT_NEAR(endemic_sigma(4.0, 1.0, 0.01), 3.0 / 101.0, 1e-12);
  EXPECT_THROW((void)endemic_sigma(4.0, 1.0, 0.0), std::invalid_argument);
}

TEST(LinearizationTest, LinearizeReportsStability) {
  const auto endemic = ode::catalog::endemic(4.0, 1.0, 0.01);
  const double x = 0.25;
  const double y = 0.75 / 101.0;
  const double z = 0.75 / 1.01;
  const Linearization lin = linearize(endemic, Vec{x, y, z});
  EXPECT_TRUE(lin.stability.stable);
  EXPECT_EQ(lin.jacobian.rows(), 3U);
  EXPECT_EQ(lin.reduced_jacobian.rows(), 2U);
}

TEST(LinearizationTest, ComplexCaseDetectedAtFigure2Parameters) {
  const double beta = 4.0, gamma = 1.0, alpha = 0.01;
  const double sigma = endemic_sigma(beta, gamma, alpha);
  const auto sol = endemic_perturbation(sigma, alpha, gamma, 0.1);
  EXPECT_EQ(sol.kase, EigenCase::ComplexConjugate);
  EXPECT_GT(sol.omega, 0.0);
  // u(0) = u0; u decays with the predicted envelope.
  EXPECT_NEAR(sol.u(0.0), 0.1, 1e-12);
  const double t = 10.0;
  EXPECT_LE(std::abs(sol.u(t)), 0.1 * std::exp(-t * (sigma + alpha) / 2.0) +
                                    1e-12);
}

TEST(LinearizationTest, RealDistinctCase) {
  // Large sigma relative to gamma gives tau^2 - 4 Delta > 0.
  const double sigma = 10.0, alpha = 0.01, gamma = 0.1;
  const Matrix a = endemic_matrix_A(sigma, alpha, gamma);
  ASSERT_GT(a.trace() * a.trace() - 4.0 * a.determinant(), 0.0);
  const auto sol = endemic_perturbation(sigma, alpha, gamma, 0.1, 0.0);
  EXPECT_EQ(sol.kase, EigenCase::RealDistinct);
  EXPECT_LT(sol.lambda1, 0.0);
  EXPECT_LT(sol.lambda2, 0.0);
  EXPECT_NEAR(sol.u(0.0), 0.1, 1e-12);
  EXPECT_LT(std::abs(sol.u(50.0)), 1e-3);
}

TEST(LinearizationTest, ClosedFormMatchesIntegratedLinearSystem) {
  // Integrate T-dot = A T and compare u(t) (the second component) with the
  // closed-form solution, complex-conjugate case, udot0 = 0 start:
  // (t, u)(0) = (0, u0).
  const double beta = 4.0, gamma = 1.0, alpha = 0.01;
  const double sigma = endemic_sigma(beta, gamma, alpha);
  const auto sol = endemic_perturbation(sigma, alpha, gamma, 0.05, 0.0);
  ASSERT_EQ(sol.kase, EigenCase::ComplexConjugate);

  const auto sys = ode::catalog::endemic_linearized(sigma, alpha, gamma);
  const OdeFunction f = ode_function(sys);
  Vec state{0.0, 0.05};  // (t, u)
  AdaptiveOptions opts;
  opts.abs_tol = opts.rel_tol = 1e-12;
  // The cos() closed form assumes udot(0) = 0 and drops the sin component;
  // compare over a horizon where the envelope argument dominates.
  for (double t_end : {1.0, 2.0, 5.0}) {
    Vec s = state;
    integrate_adaptive(f, s, 0.0, t_end, opts);
    const double envelope =
        0.05 * std::exp(-t_end * (sigma + alpha) / 2.0);
    EXPECT_NEAR(s[1], sol.u(t_end), 0.3 * envelope + 1e-9);
  }
}

TEST(LinearizationTest, RealEqualCaseExactDiscriminantZero) {
  // Construct parameters with tau^2 == 4 Delta: pick sigma = alpha (then
  // disc = (sigma+alpha)^2 - 4 sigma (gamma+alpha) = 4 sigma^2 - 4 sigma
  // (gamma + alpha); zero iff sigma == gamma + alpha).
  const double alpha = 0.3, gamma = 0.2;
  const double sigma = gamma + alpha;  // forces repeated eigenvalues if
                                       // sigma == alpha too -- check disc:
  const Matrix a = endemic_matrix_A(sigma, alpha, gamma);
  const double disc = a.trace() * a.trace() - 4.0 * a.determinant();
  if (std::abs(disc) < 1e-12) {
    const auto sol = endemic_perturbation(sigma, alpha, gamma, 1.0);
    EXPECT_EQ(sol.kase, EigenCase::RealEqual);
  } else {
    // Parameters did not hit the degenerate manifold; the solver must pick
    // the sign of the discriminant consistently.
    const auto sol = endemic_perturbation(sigma, alpha, gamma, 1.0);
    EXPECT_EQ(sol.kase, disc > 0 ? EigenCase::RealDistinct
                                 : EigenCase::ComplexConjugate);
  }
}

}  // namespace
}  // namespace deproto::num
