#include "numerics/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ode/catalog.hpp"

namespace deproto::num {
namespace {

// dx/dt = -x: closed form x(t) = x0 e^{-t}.
const OdeFunction kDecay = [](const Vec& x, Vec& d, double) {
  d.resize(1);
  d[0] = -x[0];
};

// Harmonic oscillator: x'' = -x as a 2d system.
const OdeFunction kOscillator = [](const Vec& x, Vec& d, double) {
  d.resize(2);
  d[0] = x[1];
  d[1] = -x[0];
};

TEST(IntegratorTest, EulerStepMatchesFirstOrder) {
  Vec x{1.0};
  euler_step(kDecay, x, 0.0, 0.1);
  EXPECT_NEAR(x[0], 0.9, 1e-12);
}

TEST(IntegratorTest, Rk4DecayAccuracy) {
  Vec x{1.0};
  integrate_fixed(kDecay, x, 0.0, 1.0, 0.01);
  EXPECT_NEAR(x[0], std::exp(-1.0), 1e-9);
}

// Property: RK4 global error scales as O(dt^4): halving dt cuts the error
// by roughly 16.
class Rk4OrderTest : public ::testing::TestWithParam<double> {};

TEST_P(Rk4OrderTest, FourthOrderConvergence) {
  const double dt = GetParam();
  auto error_at = [&](double step) {
    Vec x{1.0};
    integrate_fixed(kDecay, x, 0.0, 2.0, step);
    return std::abs(x[0] - std::exp(-2.0));
  };
  const double e1 = error_at(dt);
  const double e2 = error_at(dt / 2.0);
  EXPECT_GT(e1 / e2, 10.0);  // ideal 16; allow slack for roundoff
  EXPECT_LT(e1 / e2, 24.0);
}

INSTANTIATE_TEST_SUITE_P(StepSizes, Rk4OrderTest,
                         ::testing::Values(0.2, 0.1, 0.05));

TEST(IntegratorTest, AdaptiveRkf45MatchesClosedForm) {
  Vec x{1.0};
  AdaptiveOptions opts;
  opts.abs_tol = 1e-10;
  opts.rel_tol = 1e-10;
  integrate_adaptive(kDecay, x, 0.0, 3.0, opts, nullptr,
                     AdaptiveStepper::Rkf45);
  EXPECT_NEAR(x[0], std::exp(-3.0), 1e-8);
}

TEST(IntegratorTest, AdaptiveDopri5MatchesClosedForm) {
  Vec x{1.0};
  AdaptiveOptions opts;
  opts.abs_tol = 1e-10;
  opts.rel_tol = 1e-10;
  const std::size_t steps =
      integrate_adaptive(kDecay, x, 0.0, 3.0, opts, nullptr,
                         AdaptiveStepper::Dopri5);
  EXPECT_NEAR(x[0], std::exp(-3.0), 1e-8);
  EXPECT_GT(steps, 0U);
}

TEST(IntegratorTest, OscillatorEnergyConservedByDopri5) {
  Vec x{1.0, 0.0};
  AdaptiveOptions opts;
  opts.abs_tol = 1e-11;
  opts.rel_tol = 1e-11;
  integrate_adaptive(kOscillator, x, 0.0, 8.0 * M_PI, opts);
  const double energy = x[0] * x[0] + x[1] * x[1];
  EXPECT_NEAR(energy, 1.0, 1e-6);
  EXPECT_NEAR(x[0], 1.0, 1e-6);  // back to the start after 4 full cycles
}

TEST(IntegratorTest, ObserverSeesMonotoneTime) {
  Vec x{1.0};
  double last = -1.0;
  std::size_t calls = 0;
  integrate_fixed(kDecay, x, 0.0, 1.0, 0.1, [&](const Vec&, double t) {
    EXPECT_GT(t, last - 1e-15);
    last = t;
    ++calls;
  });
  EXPECT_EQ(calls, 11U);  // t0 + 10 steps
  EXPECT_NEAR(last, 1.0, 1e-12);
}

TEST(IntegratorTest, EpidemicLogisticClosedForm) {
  // Eq. (0) with x + y = 1 collapses to dy/dt = y(1-y):
  // y(t) = y0 / (y0 + (1-y0) e^{-t}).
  const OdeFunction f = ode_function(ode::catalog::epidemic());
  const double y0 = 0.01;
  Vec x{1.0 - y0, y0};
  AdaptiveOptions opts;
  opts.abs_tol = 1e-12;
  opts.rel_tol = 1e-12;
  integrate_adaptive(f, x, 0.0, 5.0, opts);
  const double expected = y0 / (y0 + (1.0 - y0) * std::exp(-5.0));
  EXPECT_NEAR(x[1], expected, 1e-8);
  EXPECT_NEAR(x[0] + x[1], 1.0, 1e-10);  // completeness conserves the sum
}

TEST(IntegratorTest, IntegrateUntilFindsThresholdCrossing) {
  // x(t) = e^{-t} crosses 0.5 at t = ln 2.
  Vec x{1.0};
  const auto t = integrate_until(
      kDecay, x, 0.0, 0.05, 10.0,
      [](const Vec& state, double) { return state[0] <= 0.5; });
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, std::log(2.0), 1e-3);
}

TEST(IntegratorTest, IntegrateUntilTimesOut) {
  Vec x{1.0};
  const auto t = integrate_until(
      kDecay, x, 0.0, 0.1, 1.0,
      [](const Vec& state, double) { return state[0] < 0.0; });
  EXPECT_FALSE(t.has_value());
}

TEST(IntegratorTest, BadStepSizesThrow) {
  Vec x{1.0};
  EXPECT_THROW(integrate_fixed(kDecay, x, 0.0, 1.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace deproto::num
