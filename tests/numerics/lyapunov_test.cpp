#include "numerics/lyapunov.hpp"

#include <gtest/gtest.h>

namespace deproto::num {
namespace {

TEST(KroneckerTest, SmallProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix k = kronecker(a, b);
  ASSERT_EQ(k.rows(), 4U);
  EXPECT_DOUBLE_EQ(k(0, 1), 1.0);  // a00 * b01
  EXPECT_DOUBLE_EQ(k(0, 3), 2.0);  // a01 * b01
  EXPECT_DOUBLE_EQ(k(3, 0), 3.0);  // a10 * b10
  EXPECT_DOUBLE_EQ(k(2, 3), 4.0);  // a11 * b01
}

TEST(KroneckerTest, IdentityIdentity) {
  const Matrix k = kronecker(Matrix::identity(2), Matrix::identity(3));
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(k(i, i), 1.0);
  }
}

TEST(ContinuousLyapunovTest, ScalarCase) {
  // a x + x a + q = 0 => x = -q / (2a).
  const Matrix x =
      solve_continuous_lyapunov(Matrix{{-2.0}}, Matrix{{4.0}});
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
}

TEST(ContinuousLyapunovTest, ResidualVanishes) {
  const Matrix a{{-1.0, 0.5}, {0.0, -3.0}};
  const Matrix q{{2.0, 0.2}, {0.2, 1.0}};
  const Matrix x = solve_continuous_lyapunov(a, q);
  const Matrix residual = a * x + x * a.transposed() + q;
  EXPECT_LT(residual.norm_max(), 1e-10);
  // Solution of a Lyapunov equation with symmetric positive Q and Hurwitz A
  // is symmetric positive definite.
  EXPECT_NEAR(x(0, 1), x(1, 0), 1e-12);
  EXPECT_GT(x(0, 0), 0.0);
  EXPECT_GT(x.determinant(), 0.0);
}

TEST(DiscreteLyapunovTest, ScalarCase) {
  // x = m^2 x + q => x = q / (1 - m^2).
  const Matrix x = solve_discrete_lyapunov(Matrix{{0.5}}, Matrix{{3.0}});
  EXPECT_NEAR(x(0, 0), 4.0, 1e-12);
}

TEST(DiscreteLyapunovTest, ResidualVanishes) {
  const Matrix m{{0.9, 0.05}, {-0.1, 0.8}};
  const Matrix q{{1.0, 0.1}, {0.1, 2.0}};
  const Matrix x = solve_discrete_lyapunov(m, q);
  const Matrix residual = m * x * m.transposed() + q - x;
  EXPECT_LT(residual.norm_max(), 1e-9);
}

TEST(DiscreteLyapunovTest, AgreesWithSimulatedLinearRecursion) {
  // Iterate X_{k+1} = M X_k M^T + Q to its fixed point and compare.
  const Matrix m{{0.7, 0.2}, {0.0, 0.6}};
  const Matrix q{{0.5, 0.0}, {0.0, 0.25}};
  Matrix x(2, 2);
  for (int k = 0; k < 300; ++k) {
    x = m * x * m.transposed() + q;
  }
  const Matrix solved = solve_discrete_lyapunov(m, q);
  EXPECT_LT((x - solved).norm_max(), 1e-9);
}

TEST(LyapunovTest, ShapeMismatchThrows) {
  EXPECT_THROW(
      (void)solve_continuous_lyapunov(Matrix{{1.0}}, Matrix(2, 2)),
      std::invalid_argument);
  EXPECT_THROW((void)solve_discrete_lyapunov(Matrix(2, 3), Matrix(2, 2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace deproto::num
