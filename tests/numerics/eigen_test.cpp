#include "numerics/eigen.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace deproto::num {
namespace {

void expect_contains_real(const std::vector<Complex>& values, double real,
                          double tol = 1e-8) {
  const bool found = std::any_of(values.begin(), values.end(), [&](Complex z) {
    return std::abs(z.real() - real) < tol && std::abs(z.imag()) < tol;
  });
  EXPECT_TRUE(found) << "eigenvalue " << real << " not found";
}

TEST(EigenTest, TwoByTwoRealEigenvalues) {
  const Matrix a{{3.0, 0.0}, {0.0, -2.0}};
  auto [l1, l2] = eigenvalues_2x2(a);
  EXPECT_NEAR(std::max(l1.real(), l2.real()), 3.0, 1e-12);
  EXPECT_NEAR(std::min(l1.real(), l2.real()), -2.0, 1e-12);
  EXPECT_DOUBLE_EQ(l1.imag(), 0.0);
}

TEST(EigenTest, TwoByTwoComplexPair) {
  // Rotation-like matrix: eigenvalues a +- bi.
  const Matrix a{{1.0, -2.0}, {2.0, 1.0}};
  auto [l1, l2] = eigenvalues_2x2(a);
  EXPECT_NEAR(l1.real(), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(l1.imag()), 2.0, 1e-12);
  EXPECT_NEAR(l2.imag(), -l1.imag(), 1e-12);
}

TEST(EigenTest, CharacteristicPolynomialOfDiagonal) {
  const Matrix a{{1.0, 0.0, 0.0}, {0.0, 2.0, 0.0}, {0.0, 0.0, 3.0}};
  // (l-1)(l-2)(l-3) = l^3 - 6l^2 + 11l - 6.
  const std::vector<double> c = characteristic_polynomial(a);
  ASSERT_EQ(c.size(), 4U);
  EXPECT_NEAR(c[0], 1.0, 1e-12);
  EXPECT_NEAR(c[1], -6.0, 1e-12);
  EXPECT_NEAR(c[2], 11.0, 1e-12);
  EXPECT_NEAR(c[3], -6.0, 1e-12);
}

TEST(EigenTest, PolynomialRootsQuadratic) {
  // l^2 - 5l + 6: roots 2 and 3.
  const auto roots = polynomial_roots({1.0, -5.0, 6.0});
  ASSERT_EQ(roots.size(), 2U);
  expect_contains_real(roots, 2.0);
  expect_contains_real(roots, 3.0);
}

TEST(EigenTest, PolynomialRootsComplex) {
  // l^2 + 1: roots +-i.
  const auto roots = polynomial_roots({1.0, 0.0, 1.0});
  ASSERT_EQ(roots.size(), 2U);
  EXPECT_NEAR(std::abs(roots[0].imag()), 1.0, 1e-8);
  EXPECT_NEAR(roots[0].real(), 0.0, 1e-8);
}

TEST(EigenTest, PolynomialRootsRejectNonMonic) {
  EXPECT_THROW((void)polynomial_roots({2.0, 1.0}), std::invalid_argument);
}

TEST(EigenTest, ThreeByThreeKnownSpectrum) {
  // Upper-triangular: eigenvalues on the diagonal.
  const Matrix a{{4.0, 1.0, -2.0}, {0.0, -1.0, 3.0}, {0.0, 0.0, 2.5}};
  const auto values = eigenvalues(a);
  ASSERT_EQ(values.size(), 3U);
  expect_contains_real(values, 4.0);
  expect_contains_real(values, -1.0);
  expect_contains_real(values, 2.5);
}

TEST(EigenTest, RepeatedEigenvalueConverges) {
  // The LV Jacobian at (0, 1): [[-3, 0], [-6, -3]] -- defective, repeated -3.
  const Matrix a{{-3.0, 0.0}, {-6.0, -3.0}};
  auto [l1, l2] = eigenvalues_2x2(a);
  EXPECT_NEAR(l1.real(), -3.0, 1e-10);
  EXPECT_NEAR(l2.real(), -3.0, 1e-10);
  EXPECT_NEAR(l1.imag(), 0.0, 1e-10);
}

TEST(EigenTest, EigenvectorInverseIteration) {
  const Matrix a{{2.0, 1.0}, {1.0, 2.0}};  // eigenpairs: 3 -> (1,1)/sqrt2
  const Vec v = eigenvector(a, 3.0);
  EXPECT_NEAR(std::abs(v[0]), std::abs(v[1]), 1e-8);
  // A v = 3 v.
  const Vec av = a * v;
  EXPECT_NEAR(av[0], 3.0 * v[0], 1e-6);
  EXPECT_NEAR(av[1], 3.0 * v[1], 1e-6);
}

TEST(EigenTest, SpectralAbscissa) {
  const Matrix stable{{-1.0, 0.0}, {0.0, -4.0}};
  EXPECT_NEAR(spectral_abscissa(stable), -1.0, 1e-10);
  const Matrix saddle{{-1.0, 0.0}, {0.0, 2.0}};
  EXPECT_NEAR(spectral_abscissa(saddle), 2.0, 1e-10);
}

TEST(EigenTest, FourByFourSpectrum) {
  Matrix a(4, 4);
  a(0, 0) = 1.0;
  a(1, 1) = -2.0;
  a(2, 2) = 0.5;
  a(3, 3) = 7.0;
  a(0, 1) = 3.0;  // triangular perturbation keeps the spectrum
  a(1, 2) = -1.0;
  const auto values = eigenvalues(a);
  ASSERT_EQ(values.size(), 4U);
  expect_contains_real(values, 1.0, 1e-6);
  expect_contains_real(values, -2.0, 1e-6);
  expect_contains_real(values, 0.5, 1e-6);
  expect_contains_real(values, 7.0, 1e-6);
}

}  // namespace
}  // namespace deproto::num
