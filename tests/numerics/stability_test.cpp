#include "numerics/stability.hpp"

#include <gtest/gtest.h>

#include "numerics/linearization.hpp"
#include "ode/catalog.hpp"

namespace deproto::num {
namespace {

TEST(StabilityTest, CanonicalPlanarTypes) {
  EXPECT_EQ(classify_matrix(Matrix{{-1.0, 0.0}, {0.0, -2.0}}).type,
            EquilibriumType::StableNode);
  EXPECT_EQ(classify_matrix(Matrix{{1.0, 0.0}, {0.0, 2.0}}).type,
            EquilibriumType::UnstableNode);
  EXPECT_EQ(classify_matrix(Matrix{{1.0, 0.0}, {0.0, -2.0}}).type,
            EquilibriumType::Saddle);
  EXPECT_EQ(classify_matrix(Matrix{{-0.1, -1.0}, {1.0, -0.1}}).type,
            EquilibriumType::StableSpiral);
  EXPECT_EQ(classify_matrix(Matrix{{0.1, -1.0}, {1.0, 0.1}}).type,
            EquilibriumType::UnstableSpiral);
  EXPECT_EQ(classify_matrix(Matrix{{0.0, -1.0}, {1.0, 0.0}}).type,
            EquilibriumType::Center);
  EXPECT_EQ(classify_matrix(Matrix{{-3.0, 0.0}, {-6.0, -3.0}}).type,
            EquilibriumType::StableDegenerate);
  EXPECT_EQ(classify_matrix(Matrix{{0.0, 0.0}, {0.0, -1.0}}).type,
            EquilibriumType::NonIsolated);
}

TEST(StabilityTest, StableFlagMatchesTypes) {
  EXPECT_TRUE(classify_matrix(Matrix{{-1.0, 0.0}, {0.0, -2.0}}).stable);
  EXPECT_FALSE(classify_matrix(Matrix{{0.0, -1.0}, {1.0, 0.0}}).stable);
  EXPECT_FALSE(classify_matrix(Matrix{{1.0, 0.0}, {0.0, -2.0}}).stable);
}

TEST(StabilityTest, TraceDetDiscriminantReported) {
  const StabilityReport r = classify_matrix(Matrix{{-2.0, 1.0}, {0.0, -3.0}});
  EXPECT_NEAR(r.trace, -5.0, 1e-12);
  EXPECT_NEAR(r.determinant, 6.0, 1e-12);
  EXPECT_NEAR(r.discriminant, 25.0 - 24.0, 1e-12);
}

TEST(StabilityTest, LvFixedPointsMatchTheorem4) {
  const auto lv = ode::catalog::lv_original();
  // (0, 1) and (1, 0): stable (degenerate node, repeated eigenvalue -3).
  EXPECT_TRUE(classify_equilibrium(lv, Vec{0.0, 1.0}).stable);
  EXPECT_TRUE(classify_equilibrium(lv, Vec{1.0, 0.0}).stable);
  // (0, 0): unstable (a star node: J = 3I, repeated eigenvalue +3).
  const auto origin = classify_equilibrium(lv, Vec{0.0, 0.0});
  EXPECT_FALSE(origin.stable);
  EXPECT_EQ(origin.type, EquilibriumType::UnstableDegenerate);
  // (1/3, 1/3): saddle.
  EXPECT_EQ(classify_equilibrium(lv, Vec{1.0 / 3.0, 1.0 / 3.0}).type,
            EquilibriumType::Saddle);
}

TEST(StabilityTest, LvOnSimplexMatchesPlanarClassification) {
  const auto lv3 = ode::catalog::lv_partitionable();
  EXPECT_TRUE(classify_on_simplex(lv3, Vec{0.0, 1.0, 0.0}).stable);
  EXPECT_EQ(classify_on_simplex(lv3, Vec{1.0 / 3, 1.0 / 3, 1.0 / 3}).type,
            EquilibriumType::Saddle);
}

TEST(StabilityTest, ToStringCoversAllTypes) {
  EXPECT_EQ(to_string(EquilibriumType::StableSpiral), "stable spiral");
  EXPECT_EQ(to_string(EquilibriumType::Saddle), "saddle point");
  EXPECT_FALSE(to_string(EquilibriumType::NonIsolated).empty());
}

// Theorem 3 as a property: for every (alpha, gamma, beta) with
// alpha, gamma in (0, 1], beta > gamma, the matrix A of eq. (4) has
// tau < 0 and Delta > 0, i.e. the second equilibrium is always stable.
struct Theorem3Params {
  double beta, gamma, alpha;
};

class Theorem3Sweep : public ::testing::TestWithParam<Theorem3Params> {};

TEST_P(Theorem3Sweep, SecondEquilibriumAlwaysStable) {
  const auto [beta, gamma, alpha] = GetParam();
  const double sigma = endemic_sigma(beta, gamma, alpha);
  ASSERT_GT(sigma, 0.0);
  const StabilityReport r =
      classify_matrix(endemic_matrix_A(sigma, alpha, gamma));
  EXPECT_LT(r.trace, 0.0);
  EXPECT_GT(r.determinant, 0.0);
  EXPECT_TRUE(r.stable);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, Theorem3Sweep,
    ::testing::Values(Theorem3Params{4.0, 1.0, 0.01},     // Figure 2
                      Theorem3Params{4.0, 0.001, 1e-6},   // Figure 5
                      Theorem3Params{4.0, 0.1, 0.001},    // Figures 7-8
                      Theorem3Params{64.0, 0.1, 0.005},   // Figures 9-10
                      Theorem3Params{2.0, 0.5, 0.5},
                      Theorem3Params{8.0, 1.0, 1.0},
                      Theorem3Params{2.0, 1.0, 0.2},
                      Theorem3Params{100.0, 0.9, 0.3}));

TEST(StabilityTest, EndemicFirstEquilibriumIsSaddleOnSimplex) {
  // Corollary to Theorem 3: (1, 0, 0) (all receptive) is a saddle -- stable
  // along y = 0, unstable once a single stasher exists.
  const auto endemic = ode::catalog::endemic(4.0, 1.0, 0.01);
  const auto report = classify_on_simplex(endemic, Vec{1.0, 0.0, 0.0});
  EXPECT_EQ(report.type, EquilibriumType::Saddle);
}

TEST(StabilityTest, EndemicSecondEquilibriumSpiralAtFigure2Parameters) {
  // Figure 2's caption: "the non-trivial equilibrium point above is a
  // stable spiral" (N = 1000, alpha = 0.01, beta = 4, gamma = 1).
  const double beta = 4.0, gamma = 1.0, alpha = 0.01;
  const auto endemic = ode::catalog::endemic(beta, gamma, alpha);
  const double x = gamma / beta;
  const double y = (1.0 - x) / (1.0 + gamma / alpha);
  const double z = (1.0 - x) / (1.0 + alpha / gamma);
  const auto report = classify_on_simplex(endemic, Vec{x, y, z});
  EXPECT_EQ(report.type, EquilibriumType::StableSpiral);
  EXPECT_TRUE(report.stable);
}

}  // namespace
}  // namespace deproto::num
