#include <gtest/gtest.h>

#include <cmath>

#include "numerics/jacobian.hpp"
#include "numerics/newton.hpp"
#include "ode/catalog.hpp"
#include "ode/rewriting.hpp"

namespace deproto::num {
namespace {

TEST(JacobianTest, SymbolicJacobianOfEpidemic) {
  // f = (-xy, +xy): J = [[-y, -x], [y, x]].
  const auto sys = ode::catalog::epidemic();
  const Matrix j = jacobian_at(sys, Vec{0.25, 0.5});
  EXPECT_NEAR(j(0, 0), -0.5, 1e-12);
  EXPECT_NEAR(j(0, 1), -0.25, 1e-12);
  EXPECT_NEAR(j(1, 0), +0.5, 1e-12);
  EXPECT_NEAR(j(1, 1), +0.25, 1e-12);
}

TEST(JacobianTest, SymbolicEntriesMatchFiniteDifferences) {
  const auto sys = ode::catalog::endemic(4.0, 1.0, 0.01);
  const Vec point{0.3, 0.25, 0.45};
  const Matrix j = jacobian_at(sys, point);
  const double h = 1e-7;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      Vec hi = point, lo = point;
      hi[c] += h;
      lo[c] -= h;
      Vec fhi(3), flo(3);
      sys.evaluate(hi, fhi);
      sys.evaluate(lo, flo);
      const double fd = (fhi[i] - flo[i]) / (2.0 * h);
      EXPECT_NEAR(j(i, c), fd, 1e-6);
    }
  }
}

TEST(JacobianTest, CompleteSystemJacobianColumnsSumToZero) {
  // Rows of a complete system's Jacobian sum to zero down each column
  // (d/dx_j of Sum_i f_i == 0) -- the spurious neutral direction the
  // reduced Jacobian removes.
  const auto sys = ode::catalog::lv_partitionable();
  const Matrix j = jacobian_at(sys, Vec{0.2, 0.3, 0.5});
  for (std::size_t c = 0; c < 3; ++c) {
    double col = 0.0;
    for (std::size_t r = 0; r < 3; ++r) col += j(r, c);
    EXPECT_NEAR(col, 0.0, 1e-12);
  }
}

TEST(JacobianTest, ReducedJacobianMatchesEliminatedSystem) {
  const auto full = ode::catalog::endemic(4.0, 1.0, 0.01);
  const auto reduced_sys = ode::eliminate_last(full, 1.0);
  const Vec point3{0.3, 0.25, 0.45};
  const Vec point2{0.3, 0.25};
  const Matrix a = reduced_jacobian_at(full, point3);
  const Matrix b = jacobian_at(reduced_sys, point2);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(a(r, c), b(r, c), 1e-12);
    }
  }
}

TEST(NewtonTest, SolvesQuadraticRoot) {
  // f(x) = x^2 - 4 has roots +-2.
  ode::EquationSystem sys({"x"});
  sys.add_term("x", 1.0, {{"x", 2}});
  sys.add_term("x", -4.0, {});
  const auto root = newton_solve(sys, Vec{3.0});
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR((*root)[0], 2.0, 1e-10);
}

TEST(NewtonTest, FindsAllFourLvEquilibria) {
  // Theorem 4's fixed points of eq. (6): (0,0), (0,1), (1,0), (1/3,1/3).
  const auto equilibria = find_equilibria(ode::catalog::lv_original());
  ASSERT_EQ(equilibria.size(), 4U);
  auto has = [&](double x, double y) {
    for (const Vec& e : equilibria) {
      if (std::abs(e[0] - x) < 1e-6 && std::abs(e[1] - y) < 1e-6) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(0.0, 0.0));
  EXPECT_TRUE(has(0.0, 1.0));
  EXPECT_TRUE(has(1.0, 0.0));
  EXPECT_TRUE(has(1.0 / 3.0, 1.0 / 3.0));
}

TEST(NewtonTest, FindsEndemicEquilibriaOnSimplex) {
  // Reduce the endemic system to (x, y) and find eq. (2)'s two points.
  const double beta = 4.0, gamma = 1.0, alpha = 0.01;
  const auto reduced =
      ode::eliminate_last(ode::catalog::endemic(beta, gamma, alpha), 1.0);
  const auto equilibria = find_equilibria(reduced);
  const double x_inf = gamma / beta;
  const double y_inf = (1.0 - x_inf) / (1.0 + gamma / alpha);
  bool trivial = false, nontrivial = false;
  for (const Vec& e : equilibria) {
    if (std::abs(e[0] - 1.0) < 1e-6 && std::abs(e[1]) < 1e-6) trivial = true;
    if (std::abs(e[0] - x_inf) < 1e-6 && std::abs(e[1] - y_inf) < 1e-6) {
      nontrivial = true;
    }
  }
  EXPECT_TRUE(trivial);     // (N, 0, 0) in fraction form
  EXPECT_TRUE(nontrivial);  // the eq. (2) second equilibrium
}

TEST(NewtonTest, ReturnsNulloptWhenHopeless) {
  // f(x) = x^2 + 1 has no real root.
  ode::EquationSystem sys({"x"});
  sys.add_term("x", 1.0, {{"x", 2}});
  sys.add_term("x", 1.0, {});
  EXPECT_FALSE(newton_solve(sys, Vec{1.0}).has_value());
}

}  // namespace
}  // namespace deproto::num
