#include "numerics/matrix.hpp"

#include <gtest/gtest.h>

namespace deproto::num {
namespace {

TEST(MatrixTest, BraceConstructionAndIndexing) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m.cols(), 2U);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_THROW((void)m(2, 0), std::out_of_range);
  EXPECT_THROW(Matrix({{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(MatrixTest, IdentityAndMultiply) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix prod = a * Matrix::identity(2);
  EXPECT_DOUBLE_EQ(prod(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(prod(1, 1), 4.0);

  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix ab = a * b;  // column swap
  EXPECT_DOUBLE_EQ(ab(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(ab(0, 1), 1.0);
}

TEST(MatrixTest, MatrixVectorProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vec v{1.0, 1.0};
  const Vec av = a * v;
  EXPECT_DOUBLE_EQ(av[0], 3.0);
  EXPECT_DOUBLE_EQ(av[1], 7.0);
}

TEST(MatrixTest, AddSubtractScale) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  const Matrix b{{0.0, 2.0}, {2.0, 0.0}};
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 2.0);
  EXPECT_DOUBLE_EQ((a - b)(1, 0), -2.0);
  EXPECT_DOUBLE_EQ(a.scaled(5.0)(0, 0), 5.0);
}

TEST(MatrixTest, TraceAndTranspose) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.trace(), 5.0);
  EXPECT_DOUBLE_EQ(a.transposed()(0, 1), 3.0);
}

TEST(MatrixTest, Determinants) {
  EXPECT_DOUBLE_EQ((Matrix{{3.0}}).determinant(), 3.0);
  EXPECT_DOUBLE_EQ((Matrix{{1.0, 2.0}, {3.0, 4.0}}).determinant(), -2.0);
  const Matrix m3{{2.0, 0.0, 1.0}, {1.0, 1.0, 0.0}, {0.0, 3.0, 1.0}};
  EXPECT_NEAR(m3.determinant(), 2.0 * 1.0 + 1.0 * 3.0, 1e-12);  // = 5
  // 4x4 via LU: block-diagonal of two 2x2s with dets -2 and -2.
  Matrix m4(4, 4);
  m4(0, 0) = 1; m4(0, 1) = 2; m4(1, 0) = 3; m4(1, 1) = 4;
  m4(2, 2) = 1; m4(2, 3) = 2; m4(3, 2) = 3; m4(3, 3) = 4;
  EXPECT_NEAR(m4.determinant(), 4.0, 1e-9);
}

TEST(MatrixTest, SolveRoundTrip) {
  const Matrix a{{4.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}};
  const Vec x_true{1.0, -2.0, 3.0};
  const Vec b = a * x_true;
  const Vec x = a.solve(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(MatrixTest, SolveSingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW((void)a.solve(Vec{1.0, 1.0}), std::runtime_error);
}

TEST(MatrixTest, SolveNeedsPivoting) {
  // Zero on the leading diagonal forces a row swap.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vec x = a.solve(Vec{5.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(MatrixTest, NormMax) {
  const Matrix a{{1.0, -9.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.norm_max(), 9.0);
}

}  // namespace
}  // namespace deproto::num
