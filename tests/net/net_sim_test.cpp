#include "net/net_sim.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <stdexcept>

#include "core/synthesis.hpp"
#include "ode/catalog.hpp"

namespace deproto::net {
namespace {

/// Short wall-clock periods keep every test here under a couple of
/// seconds of real time; the protocols only care about periods, not ms.
/// The probe timeout is stretched to 2 periods: at 3 ms periods the
/// default 0.5 would be a 1.5 ms reply deadline, which a loaded CI host
/// (ctest -j runs suites in parallel) can miss, surfacing scheduling
/// jitter as spurious loss.
NetSimOptions fast_options() {
  NetSimOptions options;
  options.period_ms = 3.0;
  options.probe_timeout = 2.0;
  return options;
}

TEST(NetSimTest, RejectsBadPopulationsAndOptions) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  EXPECT_THROW(NetSimulator(1, result.machine, 1), std::invalid_argument);
  EXPECT_THROW(
      NetSimulator(NetSimulator::kMaxNodes + 1, result.machine, 1),
      std::invalid_argument);
  NetSimOptions bad = fast_options();
  bad.period_ms = 0.0;
  EXPECT_THROW(NetSimulator(4, result.machine, 1, bad),
               std::invalid_argument);
  bad = fast_options();
  bad.probe_timeout = -1.0;
  EXPECT_THROW(NetSimulator(4, result.machine, 1, bad),
               std::invalid_argument);
  bad = fast_options();
  bad.message_loss = 1.0;
  EXPECT_THROW(NetSimulator(4, result.machine, 1, bad),
               std::invalid_argument);
}

TEST(NetSimTest, EpidemicOverRealSocketsInfectsEveryone) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  NetSimulator simulator(64, result.machine, 1, fast_options());
  simulator.seed_states({63, 1});
  simulator.run_for(35.0);
  EXPECT_EQ(simulator.group().count(1), 64U);

  // The gossip really happened as datagrams with measured RTTs.
  const NetStats stats = simulator.net_stats();
  EXPECT_GT(stats.datagrams_sent, 0U);
  EXPECT_GT(stats.datagrams_received, 0U);
  EXPECT_GT(stats.probes_sent, 0U);
  EXPECT_GT(stats.rtt_samples, 0U);
  EXPECT_GT(stats.rtt_ms_mean(), 0.0);
  EXPECT_GE(stats.rtt_ms_max, stats.rtt_ms_min);
  EXPECT_EQ(stats.decode_errors, 0U);
}

TEST(NetSimTest, MetricsSampledEveryPeriodLikeEventBackend) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  NetSimulator simulator(8, result.machine, 2, fast_options());
  simulator.seed_states({7, 1});
  simulator.run_for(10.0);
  // Samples at t = 0, 1, ..., 10.
  EXPECT_EQ(simulator.metrics().samples().size(), 11U);
  EXPECT_NEAR(simulator.metrics().samples().back().time, 10.0, 1e-9);
  EXPECT_NEAR(simulator.now(), 10.0, 1e-9);
}

TEST(NetSimTest, EveryNodeHasItsOwnBoundPort) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  NetSimulator simulator(16, result.machine, 3, fast_options());
  for (std::size_t pid = 0; pid < 16; ++pid) {
    EXPECT_NE(simulator.port_of(pid), 0) << pid;
    for (std::size_t other = 0; other < pid; ++other) {
      EXPECT_NE(simulator.port_of(pid), simulator.port_of(other));
    }
  }
}

TEST(NetSimTest, EmulatedLossShowsUpAsProbeTimeouts) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  NetSimOptions options = fast_options();
  options.message_loss = 0.4;
  NetSimulator simulator(32, result.machine, 4, options);
  simulator.seed_states({16, 16});
  simulator.run_for(12.0);
  const NetStats stats = simulator.net_stats();
  EXPECT_GT(stats.emulated_drops, 0U);
  EXPECT_GT(stats.probe_timeouts, 0U);
  // Two loss legs (request + reply) at 0.4 each: observed loss must land
  // well above zero and below one.
  EXPECT_GT(stats.observed_loss(), 0.2);
  EXPECT_LT(stats.observed_loss(), 0.95);
}

TEST(NetSimTest, KilledNodeIsAbsorbedAsChurnWithoutHanging) {
  // The SIGKILL drill of the acceptance criteria: a node vanishes without
  // any goodbye; its socket closes mid-run. Peers must keep gossiping
  // (probes to the dead port time out like loss) and the run must finish.
  const auto result = core::synthesize(ode::catalog::epidemic());
  NetSimulator simulator(24, result.machine, 5, fast_options());
  simulator.seed_states({23, 1});
  simulator.run_for(3.0);
  simulator.kill_node(3);
  simulator.kill_node(7);
  EXPECT_EQ(simulator.port_of(3), 0);
  EXPECT_FALSE(simulator.group().alive(3));
  simulator.run_for(22.0);
  EXPECT_EQ(simulator.total_alive(), 22U);
  // Everyone still alive converged despite the dead ports.
  EXPECT_EQ(simulator.group().count(1), 22U);
}

TEST(NetSimTest, MassiveFailureAndTargetedCrashRecovery) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  NetSimulator simulator(40, result.machine, 6, fast_options());
  simulator.seed_states({39, 1});
  simulator.schedule_massive_failure(2.0, 0.5);
  simulator.run_for(4.0);
  EXPECT_EQ(simulator.total_alive(), 20U);

  // A crashed node's socket is gone; recovery rebinds and rejoins.
  NetSimulator recovering(10, result.machine, 7, fast_options());
  recovering.seed_states({9, 1});
  recovering.schedule_crash(0, 1.0, /*recover_time=*/3.0);
  recovering.run_for(2.0);
  EXPECT_FALSE(recovering.group().alive(0));
  EXPECT_EQ(recovering.port_of(0), 0);
  recovering.run_for(18.0);
  EXPECT_TRUE(recovering.group().alive(0));
  EXPECT_NE(recovering.port_of(0), 0);
  // The rejoined node caught the epidemic again.
  EXPECT_EQ(recovering.group().count(1), 10U);
  EXPECT_GT(recovering.net_stats().joins, 0U);
}

TEST(NetSimTest, ChurnTraceMapsToLeavesAndJoins) {
  const auto result = core::synthesize(ode::catalog::epidemic());
  NetSimulator simulator(12, result.machine, 8, fast_options());
  simulator.seed_states({11, 1});
  const sim::ChurnTrace trace = sim::ChurnTrace::from_events(
      {{0.1, 2, /*up=*/false}, {0.2, 5, /*up=*/false}, {0.5, 2, /*up=*/true}});
  simulator.attach_churn(trace, /*periods_per_hour=*/10.0);
  simulator.run_for(20.0);
  EXPECT_TRUE(simulator.group().alive(2));   // left at t=1, back at t=5
  EXPECT_FALSE(simulator.group().alive(5));  // left at t=2, never back
  EXPECT_EQ(simulator.total_alive(), 11U);
  const NetStats stats = simulator.net_stats();
  EXPECT_GT(stats.leaves, 0U);  // graceful departures were gossiped
}

TEST(NetSimTest, WatchFdWeavesExternalTrafficIntoTheLoop) {
  // The persistent_store hook: an external pipe becomes readable mid-run
  // and its callback fires from inside run_for's poll loop.
  const auto result = core::synthesize(ode::catalog::epidemic());
  NetSimulator simulator(8, result.machine, 9, fast_options());
  simulator.seed_states({7, 1});
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  int seen = 0;
  simulator.watch_fd(fds[0], [&] {
    char buf[16];
    seen += static_cast<int>(read(fds[0], buf, sizeof(buf)));
  });
  ASSERT_EQ(write(fds[1], "ping", 4), 4);
  simulator.run_for(5.0);
  EXPECT_EQ(seen, 4);
  close(fds[0]);
  close(fds[1]);
}

TEST(NetSimTest, TokenRoutingDeliversOverDatagrams) {
  const auto result = core::synthesize(ode::catalog::invitation(1.0));
  NetSimOptions options = fast_options();
  options.tokens.mode = sim::TokenRouting::Mode::RandomWalkTtl;
  options.tokens.ttl = 16;
  NetSimulator simulator(48, result.machine, 10, options);
  simulator.seed_states({24, 24});
  simulator.run_for(30.0);
  EXPECT_GT(simulator.group().count(1), 40U);
  EXPECT_GT(simulator.token_stats().generated, 0U);
  EXPECT_GT(simulator.token_stats().delivered, 0U);
}

}  // namespace
}  // namespace deproto::net
