#include "net/packet.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace deproto::net {
namespace {

Packet sample_packet() {
  Packet p;
  p.type = PacketType::Push;
  p.state = 3;
  p.sender = 42;
  p.seq = 0x0102030405060708ULL;
  p.tag = 99;
  p.arg0 = 7;
  p.arg1 = 2;
  p.arg2 = coin_to_q32(0.25);
  return p;
}

TEST(PacketTest, EncodeDecodeRoundTripsEveryField) {
  const Packet p = sample_packet();
  const std::string bytes = encode_packet(p);
  ASSERT_EQ(bytes.size(), kPacketSize);
  Packet out;
  ASSERT_EQ(decode_packet(bytes.data(), bytes.size(), &out),
            DecodeStatus::Ok);
  EXPECT_EQ(out, p);
}

TEST(PacketTest, EncodedLayoutIsLittleEndianWithMagicFirst) {
  const std::string bytes = encode_packet(sample_packet());
  EXPECT_EQ(std::memcmp(bytes.data(), kPacketMagic, 4), 0);
  // u16 version at offset 4, LE.
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), kPacketVersion & 0xFF);
  EXPECT_EQ(static_cast<unsigned char>(bytes[5]), kPacketVersion >> 8);
  // u32 sender at offset 8, LE.
  EXPECT_EQ(static_cast<unsigned char>(bytes[8]), 42);
  EXPECT_EQ(static_cast<unsigned char>(bytes[9]), 0);
  // u64 seq at offset 12: LSB first.
  EXPECT_EQ(static_cast<unsigned char>(bytes[12]), 0x08);
  EXPECT_EQ(static_cast<unsigned char>(bytes[19]), 0x01);
}

TEST(PacketTest, DecodeFailsClosedPerCorruption) {
  const std::string good = encode_packet(sample_packet());
  Packet out;

  EXPECT_EQ(decode_packet(good.data(), 10, &out), DecodeStatus::Truncated);
  EXPECT_EQ(decode_packet(good.data(), 0, &out), DecodeStatus::Truncated);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(decode_packet(bad_magic.data(), bad_magic.size(), &out),
            DecodeStatus::BadMagic);

  std::string bad_version = good;
  bad_version[4] = 0x7F;
  EXPECT_EQ(decode_packet(bad_version.data(), bad_version.size(), &out),
            DecodeStatus::BadVersion);

  std::string bad_type = good;
  bad_type[6] = 0;  // below the first PacketType
  EXPECT_EQ(decode_packet(bad_type.data(), bad_type.size(), &out),
            DecodeStatus::BadType);
  bad_type[6] = 77;  // above the last
  EXPECT_EQ(decode_packet(bad_type.data(), bad_type.size(), &out),
            DecodeStatus::BadType);

  const std::string long_datagram = good + "tail";
  EXPECT_EQ(decode_packet(long_datagram.data(), long_datagram.size(), &out),
            DecodeStatus::BadLength);
}

TEST(PacketTest, EveryKnownTypeHasANameAndSurvivesDecode) {
  for (const PacketType type :
       {PacketType::Probe, PacketType::ProbeReply, PacketType::Push,
        PacketType::Token, PacketType::Join, PacketType::JoinAck,
        PacketType::Leave}) {
    EXPECT_TRUE(packet_type_known(static_cast<std::uint8_t>(type)));
    EXPECT_STRNE(packet_type_name(type), "unknown");
    Packet p;
    p.type = type;
    const std::string bytes = encode_packet(p);
    Packet out;
    EXPECT_EQ(decode_packet(bytes.data(), bytes.size(), &out),
              DecodeStatus::Ok);
    EXPECT_EQ(out.type, type);
  }
}

TEST(PacketTest, CoinBiasSurvivesQ32RoundTrip) {
  for (const double bias : {0.0, 0.1, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(q32_to_coin(coin_to_q32(bias)), bias, 1e-9) << bias;
  }
  // Out-of-range biases clamp instead of wrapping.
  EXPECT_EQ(coin_to_q32(-0.5), 0U);
  EXPECT_EQ(q32_to_coin(coin_to_q32(2.0)), q32_to_coin(coin_to_q32(1.0)));
}

TEST(SequenceTrackerTest, InOrderStreamCountsCleanly) {
  SequenceTracker tracker;
  for (std::uint64_t seq = 1; seq <= 100; ++seq) {
    EXPECT_EQ(tracker.observe(7, seq), SequenceTracker::Arrival::InOrder);
  }
  EXPECT_EQ(tracker.received(), 100U);
  EXPECT_EQ(tracker.reordered(), 0U);
  EXPECT_EQ(tracker.duplicates(), 0U);
}

TEST(SequenceTrackerTest, DetectsReorderingDuplicatesAndStaleness) {
  SequenceTracker tracker;
  EXPECT_EQ(tracker.observe(1, 1), SequenceTracker::Arrival::InOrder);
  EXPECT_EQ(tracker.observe(1, 3), SequenceTracker::Arrival::InOrder);
  // 2 arrives after 3: late but fresh.
  EXPECT_EQ(tracker.observe(1, 2), SequenceTracker::Arrival::Reordered);
  // 3 again: duplicate.
  EXPECT_EQ(tracker.observe(1, 3), SequenceTracker::Arrival::Duplicate);
  // Jump far ahead, then present something older than the window.
  EXPECT_EQ(tracker.observe(1, 200), SequenceTracker::Arrival::InOrder);
  EXPECT_EQ(tracker.observe(1, 100), SequenceTracker::Arrival::Stale);
  EXPECT_EQ(tracker.reordered(), 2U);  // the late 2 and the stale 100
  EXPECT_EQ(tracker.duplicates(), 1U);
}

TEST(SequenceTrackerTest, PeersTrackIndependently) {
  SequenceTracker tracker;
  EXPECT_EQ(tracker.observe(1, 5), SequenceTracker::Arrival::InOrder);
  // Same seq from another sender is not a duplicate.
  EXPECT_EQ(tracker.observe(2, 5), SequenceTracker::Arrival::InOrder);
  EXPECT_EQ(tracker.duplicates(), 0U);
}

}  // namespace
}  // namespace deproto::net
