// Persistent distributed file store (the Section 4.1 application): each
// file is kept alive by its own endemic-replication instance. The demo
// inserts three files into a 5,000-host group, subjects the system to
// Overnet-style churn and a targeted attack on one file's replica set, and
// shows that every file survives with bounded per-host bandwidth.
//
// Build & run:  ./examples/persistent_store

#include <cstdio>
#include <string>
#include <vector>

#include "protocols/analysis.hpp"
#include "protocols/endemic_replication.hpp"
#include "sim/sync_sim.hpp"

namespace {

struct File {
  std::string name;
  deproto::proto::EndemicReplication protocol;
  deproto::sim::SyncSimulator simulator;

  File(std::string file_name, std::size_t hosts,
       deproto::proto::EndemicParams params, std::uint64_t seed)
      : name(std::move(file_name)),
        protocol(params),
        simulator(hosts, protocol, seed) {}
};

}  // namespace

int main() {
  using namespace deproto;
  constexpr std::size_t kHosts = 5000;
  const proto::EndemicParams params{.b = 4, .gamma = 0.1, .alpha = 0.02};
  const auto expected = proto::endemic_expectation(kHosts, params);
  std::printf(
      "endemic file store: %zu hosts, b=%u, gamma=%.2f, alpha=%.2f\n"
      "analytic equilibrium per file: %.0f receptive, %.0f stashers, "
      "%.0f averse\n\n",
      kHosts, params.b, params.gamma, params.alpha, expected.receptives,
      expected.stashers, expected.averse);

  // One protocol instance per file (the paper: "each file has a
  // responsibility migration protocol running on its behalf").
  std::vector<File> files;
  files.reserve(3);
  files.emplace_back("alpha.dat", kHosts, params, 101);
  files.emplace_back("beta.dat", kHosts, params, 202);
  files.emplace_back("gamma.dat", kHosts, params, 303);

  // Insert: the uploader pushes the file to 8 hosts. A single initial
  // replica would escape the saddle w.p. ~ 1 - gamma/(beta*x) (the lone
  // stasher's deletion coin can fire before it spreads); 8 replicas make
  // the insertion loss probability negligible.
  for (File& f : files) f.simulator.seed_states({kHosts - 8, 8, 0});

  // All files see the same churn process; beta.dat additionally suffers a
  // targeted attack at hour 30: the attacker snapshots its replica set and
  // destroys those hosts 1 hour (10 periods) later.
  for (File& f : files) {
    sim::Rng churn_rng(7);
    const auto trace = sim::ChurnTrace::synthetic_overnet(
        kHosts, 60.0, 0.05, 0.15, 0.5, churn_rng);
    f.simulator.attach_churn(trace, 10.0);
  }

  std::printf("%6s  %14s  %14s  %14s\n", "hour", files[0].name.c_str(),
              files[1].name.c_str(), files[2].name.c_str());
  std::vector<sim::ProcessId> attack_snapshot;
  for (int hour = 0; hour <= 60; ++hour) {
    if (hour == 30) {
      attack_snapshot = files[1].simulator.group().members(
          proto::EndemicReplication::kStash);
    }
    if (hour == 31) {
      std::size_t killed = 0;
      for (sim::ProcessId pid : attack_snapshot) {
        if (files[1].simulator.group().alive(pid)) {
          files[1].simulator.group().crash(pid);
          ++killed;
        }
      }
      std::printf("  -- targeted attack on %s: destroyed %zu of the %zu "
                  "snapshotted replica hosts --\n",
                  files[1].name.c_str(), killed, attack_snapshot.size());
    }
    if (hour % 5 == 0) {
      std::printf("%6d  %14zu  %14zu  %14zu\n", hour,
                  files[0].simulator.group().count(1),
                  files[1].simulator.group().count(1),
                  files[2].simulator.group().count(1));
    }
    for (File& f : files) f.simulator.run(10);  // 10 periods per hour
  }

  std::printf("\nsurvival: ");
  bool all = true;
  for (File& f : files) {
    const bool alive = f.simulator.group().count(1) > 0;
    all = all && alive;
    std::printf("%s=%s  ", f.name.c_str(), alive ? "alive" : "LOST");
  }
  const auto rc = proto::reality_check(kHosts, params, 6.0, 88.2);
  std::printf("\nper-file per-host bandwidth at equilibrium: %.2e bps "
              "(6-minute periods, 88.2 KB files)\n",
              rc.bandwidth_bps);
  std::printf("fairness: each host is responsible %.2f%% of the time, in "
              "spells of ~%.0f periods\n",
              100.0 * rc.stash_fraction, rc.spell_periods);
  return all ? 0 : 1;
}
