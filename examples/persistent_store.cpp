// Persistent distributed file store (the Section 4.1 application), now as
// a real networked service: a server process keeps one file alive with the
// endemic-replication protocol running over actual UDP loopback sockets
// (net::NetSimulator -- one socket per host), and answers store queries on
// a separate client-facing UDP port woven into the same event loop. Real
// client processes query the store concurrently while replica hosts are
// SIGKILL-style destroyed mid-run; the file must survive both the attack
// and a client being killed without warning.
//
// Modes:
//   ./examples/persistent_store                 self-demo: forks a server
//       and three concurrent clients, SIGKILLs one client mid-run, and
//       verifies the file survived and the surviving clients were served
//   ./examples/persistent_store --serve         run a server (prints
//       "PORT <p>" on stdout; speak the text protocol below to it)
//   ./examples/persistent_store --client <port> run one query client
//
// Query protocol (one text command per datagram):
//   GET <name>  ->  OK <name> replicas=<r> alive=<a>
//   STATS       ->  STATS datagrams=<d> rtt_ms_mean=<m> observed_loss=<l>
//   SHUTDOWN    ->  BYE   (server finishes its minimum horizon and exits)

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/synthesis.hpp"
#include "net/net_sim.hpp"
#include "net/socket.hpp"
#include "ode/catalog.hpp"
#include "protocols/analysis.hpp"

namespace {

using namespace deproto;

constexpr std::size_t kHosts = 64;
constexpr std::size_t kStash = 1;  // machine state y = stashing the file
constexpr const char* kFileName = "alpha.dat";
// b = 4 contacts per period -> beta = 2b in the ODE parameterization.
constexpr proto::EndemicParams kParams{.b = 4, .gamma = 0.1, .alpha = 0.02};

/// The store server: endemic replication over kHosts real UDP sockets,
/// plus one more socket for client queries. Announces "PORT <p>\n" on
/// `announce_fd`, runs at least 60 protocol periods (so the mid-run
/// attack and the recovery after it are both visible), at most 120.
int run_server(int announce_fd) {
  const auto expected = proto::endemic_expectation(kHosts, kParams);
  const auto synth = core::synthesize(ode::catalog::endemic(
      2.0 * kParams.b, kParams.gamma, kParams.alpha));

  net::NetSimOptions options;
  options.period_ms = 25.0;
  net::NetSimulator store(kHosts, synth.machine, /*seed=*/101, options);
  // Insert: the uploader pushes the file to 8 hosts -- a single initial
  // replica would escape the saddle only w.p. ~ 1 - gamma/(beta*x).
  store.seed_states({kHosts - 8, 8, 0});

  net::UdpSocket query = net::UdpSocket::bind_loopback();
  bool shutdown_requested = false;
  std::uint64_t queries_served = 0;
  store.watch_fd(query.fd(), [&] {
    char buf[256];
    sockaddr_in from{};
    long n;
    while ((n = query.recv_from(buf, sizeof(buf) - 1, &from)) > 0) {
      buf[n] = '\0';
      std::string reply;
      if (std::strncmp(buf, "GET", 3) == 0) {
        reply = std::string("OK ") + kFileName +
                " replicas=" + std::to_string(store.group().count(kStash)) +
                " alive=" + std::to_string(store.total_alive()) + "\n";
      } else if (std::strncmp(buf, "STATS", 5) == 0) {
        const net::NetStats s = store.net_stats();
        reply = "STATS datagrams=" + std::to_string(s.datagrams_sent) +
                " rtt_ms_mean=" + std::to_string(s.rtt_ms_mean()) +
                " observed_loss=" + std::to_string(s.observed_loss()) + "\n";
      } else if (std::strncmp(buf, "SHUTDOWN", 8) == 0) {
        shutdown_requested = true;
        reply = "BYE\n";
      } else {
        reply = "ERR unknown command\n";
      }
      query.send_to(from, reply.data(), reply.size());
      ++queries_served;
    }
  });

  const std::string hello = "PORT " + std::to_string(query.port()) + "\n";
  if (write(announce_fd, hello.data(), hello.size()) < 0) return 1;

  std::printf("server: %s on %zu UDP hosts, query port %u\n"
              "server: analytic equilibrium: %.0f receptive, %.0f "
              "stashers, %.0f averse\n",
              kFileName, kHosts, query.port(), expected.receptives,
              expected.stashers, expected.averse);

  bool attacked = false;
  for (int period = 1;
       period <= 120 && !(shutdown_requested && period >= 60); ++period) {
    store.run_for(1.0);
    if (!attacked && period >= 40) {
      // Targeted attack: snapshot the replica set and SIGKILL six of its
      // hosts -- sockets close with no goodbye, peers see silence.
      attacked = true;
      std::size_t killed = 0;
      for (const sim::ProcessId pid : store.group().members(kStash)) {
        if (killed == 6) break;
        store.kill_node(pid);
        ++killed;
      }
      std::printf("server: attack destroyed %zu replica hosts "
                  "(replicas now %zu, alive %zu)\n",
                  killed, store.group().count(kStash), store.total_alive());
    }
  }

  const std::size_t replicas = store.group().count(kStash);
  const net::NetStats stats = store.net_stats();
  const auto rc = proto::reality_check(kHosts, kParams, 6.0, 88.2);
  std::printf("server: %s %s with %zu replicas on %zu alive hosts\n"
              "server: %llu datagrams, rtt mean %.3f ms, %llu client "
              "queries served\n"
              "server: per-host bandwidth at equilibrium: %.2e bps "
              "(6-minute periods, 88.2 KB files)\n",
              kFileName, replicas > 0 ? "survives" : "LOST", replicas,
              store.total_alive(),
              static_cast<unsigned long long>(stats.datagrams_sent),
              stats.rtt_ms_mean(),
              static_cast<unsigned long long>(queries_served),
              rc.bandwidth_bps);
  return replicas > 0 && queries_served > 0 ? 0 : 1;
}

/// One query client: fires GET (and an occasional STATS) at the store,
/// waits up to 500 ms per reply. Succeeds when most queries are answered
/// and the file was seen replicated.
int run_client(std::uint16_t port, int id, std::size_t num_queries) {
  net::UdpSocket sock = net::UdpSocket::bind_loopback();
  const sockaddr_in server = net::loopback_endpoint(port);
  std::size_t answered = 0;
  bool saw_replicas = false;
  for (std::size_t i = 0; i < num_queries; ++i) {
    const std::string cmd =
        i % 8 == 7 ? "STATS" : std::string("GET ") + kFileName;
    sock.send_to(server, cmd.data(), cmd.size());
    std::vector<pollfd> fds = {{sock.fd(), POLLIN, 0}};
    if (net::poll_sockets(fds, 500) > 0) {
      char buf[256];
      const long n = sock.recv_from(buf, sizeof(buf) - 1);
      if (n > 0) {
        buf[n] = '\0';
        ++answered;
        const char* r = std::strstr(buf, "replicas=");
        if (r != nullptr && std::atoi(r + 9) > 0) saw_replicas = true;
      }
    }
    usleep(20000);  // ~20 ms between queries
  }
  std::printf("client %d: %zu/%zu queries answered, file %s\n", id,
              answered, num_queries,
              saw_replicas ? "replicated" : "NOT SEEN");
  return answered >= num_queries / 2 && saw_replicas ? 0 : 1;
}

/// Self-demo: server + three concurrent client processes, one of which is
/// SIGKILLed mid-run (the store must not care).
int run_demo(const char* self) {
  int port_pipe[2];
  if (pipe(port_pipe) != 0) return 1;

  std::fflush(stdout);  // children inherit the buffer; keep it empty
  const pid_t server_pid = fork();
  if (server_pid == 0) {
    close(port_pipe[0]);
    const int rc = run_server(port_pipe[1]);
    std::fflush(stdout);  // _exit skips stdio flushing
    _exit(rc);
  }
  close(port_pipe[1]);

  char line[64] = {};
  std::size_t got = 0;
  while (got < sizeof(line) - 1) {
    const ssize_t n = read(port_pipe[0], line + got, sizeof(line) - 1 - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
    if (std::strchr(line, '\n') != nullptr) break;
  }
  close(port_pipe[0]);
  unsigned port = 0;
  if (std::sscanf(line, "PORT %u", &port) != 1 || port == 0) {
    std::fprintf(stderr, "%s: server failed to announce a port\n", self);
    kill(server_pid, SIGKILL);
    return 1;
  }
  std::printf("demo: store is serving on UDP port %u\n", port);
  std::fflush(stdout);

  pid_t clients[3];
  for (int id = 0; id < 3; ++id) {
    clients[id] = fork();
    if (clients[id] == 0) {
      const int rc = run_client(static_cast<std::uint16_t>(port), id, 24);
      std::fflush(stdout);
      _exit(rc);
    }
  }

  // The crash drill: client 2 dies without warning a quarter second in.
  usleep(250000);
  kill(clients[2], SIGKILL);
  std::printf("demo: SIGKILLed client 2 mid-run\n");

  bool ok = true;
  for (int id = 0; id < 2; ++id) {
    int status = 0;
    waitpid(clients[id], &status, 0);
    ok = ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
  waitpid(clients[2], nullptr, 0);  // killed; exit status irrelevant

  // Ask the server to wind down, then collect its verdict.
  {
    net::UdpSocket sock = net::UdpSocket::bind_loopback();
    const char kBye[] = "SHUTDOWN";
    sock.send_to(net::loopback_endpoint(static_cast<std::uint16_t>(port)),
                 kBye, sizeof(kBye) - 1);
  }
  int status = 0;
  waitpid(server_pid, &status, 0);
  ok = ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;

  std::printf("demo: %s\n", ok ? "file served and survived" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--serve") == 0) {
    return run_server(/*announce_fd=*/1);
  }
  if (argc >= 3 && std::strcmp(argv[1], "--client") == 0) {
    return run_client(static_cast<std::uint16_t>(std::atoi(argv[2])),
                      /*id=*/0, /*num_queries=*/24);
  }
  return run_demo(argv[0]);
}
