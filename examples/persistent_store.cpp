// Persistent distributed file store (the Section 4.1 application): each
// file is kept alive by its own endemic-replication instance. The demo
// inserts three files into a 5,000-host group, subjects the system to
// Overnet-style churn and a targeted attack on one file's replica set, and
// shows that every file survives with bounded per-host bandwidth.
//
// Each file is one api::ScenarioSpec -- the synthesized Figure-1 machine
// (endemic system with the push-pull optimization, b = beta/2 = 4) plus a
// churn attachment in the fault plan -- launched through api::Experiment.
// The targeted attack needs mid-run access to one file's group, so the
// demo steps the launched runs by hand, hour by hour.
//
// Build & run:  ./examples/persistent_store

#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "protocols/analysis.hpp"

namespace {

struct File {
  std::string name;
  deproto::api::Experiment experiment;
  deproto::api::ExperimentRun run;

  File(std::string file_name, deproto::api::ScenarioSpec spec)
      : name(std::move(file_name)),
        experiment(std::move(spec)),
        run(experiment.launch()) {}
};

}  // namespace

int main() {
  using namespace deproto;
  constexpr std::size_t kHosts = 5000;
  // b = 4 contacts per period with the push action enabled -> beta = 2b.
  const proto::EndemicParams params{.b = 4, .gamma = 0.1, .alpha = 0.02};
  const auto expected = proto::endemic_expectation(kHosts, params);
  std::printf(
      "endemic file store: %zu hosts, b=%u, gamma=%.2f, alpha=%.2f\n"
      "analytic equilibrium per file: %.0f receptive, %.0f stashers, "
      "%.0f averse\n\n",
      kHosts, params.b, params.gamma, params.alpha, expected.receptives,
      expected.stashers, expected.averse);

  // One scenario instance per file (the paper: "each file has a
  // responsibility migration protocol running on its behalf"). All files
  // see the same churn process (same churn seed); only the simulation
  // seed differs. Insert: the uploader pushes the file to 8 hosts -- a
  // single initial replica would escape the saddle only w.p.
  // ~ 1 - gamma/(beta*x), so 8 make the insertion loss negligible.
  api::ScenarioSpec base;
  base.source.catalog = "endemic";
  base.source.params = {2.0 * params.b, params.gamma, params.alpha};
  base.synthesis.push_pull.push_back(core::PushPullSpec{"x", "y"});
  base.n = kHosts;
  base.periods = 600;  // 60 hours at 10 periods per hour
  base.initial_counts = {kHosts - 8, 8, 0};
  base.faults.churn.enabled = true;
  base.faults.churn.hours = 60.0;
  base.faults.churn.min_rate = 0.05;
  base.faults.churn.max_rate = 0.15;
  base.faults.churn.mean_downtime_hours = 0.5;
  base.faults.churn.seed = 7;
  base.faults.churn.periods_per_hour = 10.0;

  // deque, not vector: each File's ExperimentRun points back at its
  // Experiment, so Files must never relocate as the store grows.
  std::deque<File> files;
  const std::uint64_t seeds[] = {101, 202, 303};
  const char* names[] = {"alpha.dat", "beta.dat", "gamma.dat"};
  for (std::size_t i = 0; i < 3; ++i) {
    api::ScenarioSpec spec = base;
    spec.name = names[i];
    spec.seed = seeds[i];
    files.emplace_back(names[i], std::move(spec));
  }

  constexpr std::size_t kStash = 1;  // machine state y

  // beta.dat additionally suffers a targeted attack at hour 30: the
  // attacker snapshots its replica set and destroys those hosts 1 hour
  // (10 periods) later.
  std::printf("%6s  %14s  %14s  %14s\n", "hour", files[0].name.c_str(),
              files[1].name.c_str(), files[2].name.c_str());
  std::vector<sim::ProcessId> attack_snapshot;
  for (int hour = 0; hour <= 60; ++hour) {
    if (hour == 30) {
      attack_snapshot = files[1].run.group().members(kStash);
    }
    if (hour == 31) {
      std::size_t killed = 0;
      for (sim::ProcessId pid : attack_snapshot) {
        if (files[1].run.group().alive(pid)) {
          files[1].run.group().crash(pid);
          ++killed;
        }
      }
      std::printf("  -- targeted attack on %s: destroyed %zu of the %zu "
                  "snapshotted replica hosts --\n",
                  files[1].name.c_str(), killed, attack_snapshot.size());
    }
    if (hour % 5 == 0) {
      std::printf("%6d  %14zu  %14zu  %14zu\n", hour,
                  files[0].run.group().count(kStash),
                  files[1].run.group().count(kStash),
                  files[2].run.group().count(kStash));
    }
    for (File& f : files) f.run.advance(10);  // 10 periods per hour
  }

  std::printf("\nsurvival: ");
  bool all = true;
  for (File& f : files) {
    const bool alive = f.run.group().count(kStash) > 0;
    all = all && alive;
    std::printf("%s=%s  ", f.name.c_str(), alive ? "alive" : "LOST");
  }
  const auto rc = proto::reality_check(kHosts, params, 6.0, 88.2);
  std::printf("\nper-file per-host bandwidth at equilibrium: %.2e bps "
              "(6-minute periods, 88.2 KB files)\n",
              rc.bandwidth_bps);
  std::printf("fairness: each host is responsible %.2f%% of the time, in "
              "spells of ~%.0f periods\n",
              100.0 * rc.stash_fraction, rc.spell_periods);
  return all ? 0 : 1;
}
