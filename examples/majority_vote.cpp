// LOCKSS-style repair voting (the Section 4.2 application): replicas of a
// document disagree -- version A or version B -- and the group must settle
// on the majority version without any coordinator, tolerating crashes.
// Probabilistic majority selection via the LV protocol: the decision
// variable may be read at any time and the protocol self-stabilizes, so a
// later wave of writes flips the group to the new majority.
//
// Build & run:  ./examples/majority_vote

#include <cstdio>

#include "protocols/lv_majority.hpp"
#include "sim/sync_sim.hpp"

namespace {

const char* decision_name(deproto::proto::LvMajority::Decision d) {
  using D = deproto::proto::LvMajority::Decision;
  switch (d) {
    case D::Zero: return "version A";
    case D::One: return "version B";
    default: return "undecided";
  }
}

void report(const deproto::sim::Group& group, std::size_t period) {
  using LV = deproto::proto::LvMajority;
  std::printf("%8zu %12zu %12zu %12zu  %s\n", period, group.count(LV::kX),
              group.count(LV::kY), group.count(LV::kZ),
              LV::converged(group)
                  ? (LV::winner(group) == 0 ? "<- agreed on version A"
                                            : "<- agreed on version B")
                  : "");
}

}  // namespace

int main() {
  using namespace deproto;
  using LV = proto::LvMajority;
  constexpr std::size_t kN = 20000;

  proto::LvMajority protocol({.p = 0.05});
  sim::SyncSimulator simulator(kN, protocol, /*seed=*/1234);

  // Round 1: 55% of the replicas hold version A (state x), 45% version B.
  simulator.seed_states({11000, 9000, 0});
  std::printf("phase 1: 55%%/45%% split, plus a 30%% crash at period 20\n");
  std::printf("%8s %12s %12s %12s\n", "period", "version A", "version B",
              "undecided");
  simulator.schedule_massive_failure(20, 0.3);
  std::size_t period = 0;
  while (!LV::converged(simulator.group()) && period < 5000) {
    if (period % 20 == 0) report(simulator.group(), period);
    simulator.run(10);
    period += 10;
  }
  report(simulator.group(), period);

  // A host can read its running decision variable at any moment:
  std::printf("\nhost 17's decision variable: %s\n\n",
              decision_name(LV::decision_of(simulator.group(), 17)));

  // Phase 2: a new document version lands on 70% of the (alive) replicas.
  // Because the protocol runs forever, it simply re-converges -- the
  // self-stabilization the paper contrasts with one-shot consensus.
  std::printf("phase 2: fresh writes flip 70%% of alive replicas to "
              "version B\n");
  {
    auto& group = simulator.group();
    std::size_t flipped = 0;
    const std::size_t target = group.total_alive() * 7 / 10;
    for (sim::ProcessId pid = 0; pid < kN && flipped < target; ++pid) {
      if (group.alive(pid) && group.state_of(pid) != LV::kY) {
        group.transition(pid, LV::kY);
        ++flipped;
      }
    }
  }
  period = 0;
  while (!LV::converged(simulator.group()) && period < 5000) {
    if (period % 20 == 0) report(simulator.group(), period);
    simulator.run(10);
    period += 10;
  }
  report(simulator.group(), period);

  std::printf("\nfinal agreement: %s (initial majority of the second "
              "round)\n",
              LV::winner(simulator.group()) == 1 ? "version B" : "version A");
  return LV::winner(simulator.group()) == 1 ? 0 : 1;
}
