// LOCKSS-style repair voting (the Section 4.2 application): replicas of a
// document disagree -- version A or version B -- and the group must settle
// on the majority version without any coordinator, tolerating crashes.
// Probabilistic majority selection via the LV protocol: the decision
// variable may be read at any time and the protocol self-stabilizes, so a
// later wave of writes flips the group to the new majority.
//
// The protocol machine is synthesized from the rewritten Lotka-Volterra
// system (eq. 7) by the api::Experiment facade; because the vote is
// convergence-driven (run until unanimous, then keep running), the example
// uses Experiment::launch() and steps the returned run by hand instead of
// the one-shot Experiment::run().
//
// Build & run:  ./examples/majority_vote

#include <cstdio>

#include "api/experiment.hpp"
#include "protocols/lv_majority.hpp"

namespace {

const char* decision_name(deproto::proto::LvMajority::Decision d) {
  using D = deproto::proto::LvMajority::Decision;
  switch (d) {
    case D::Zero: return "version A";
    case D::One: return "version B";
    default: return "undecided";
  }
}

void report(const deproto::sim::Group& group, std::size_t period) {
  using LV = deproto::proto::LvMajority;
  std::printf("%8zu %12zu %12zu %12zu  %s\n", period, group.count(LV::kX),
              group.count(LV::kY), group.count(LV::kZ),
              LV::converged(group)
                  ? (LV::winner(group) == 0 ? "<- agreed on version A"
                                            : "<- agreed on version B")
                  : "");
}

}  // namespace

int main() {
  using namespace deproto;
  using LV = proto::LvMajority;
  constexpr std::size_t kN = 20000;

  // The LV majority scenario: eq. (7) synthesized at p = 0.05, a 55%/45%
  // split over 20,000 replicas, and a 30% massive failure at period 20.
  api::ScenarioSpec spec;
  spec.name = "repair-vote";
  spec.source.catalog = "lv";
  spec.synthesis.p = 0.05;
  spec.n = kN;
  spec.seed = 1234;
  spec.periods = 5000;  // upper bound; the loop stops at convergence
  spec.initial_counts = {11000, 9000, 0};
  spec.faults.massive_failures.push_back(sim::MassiveFailure{20, 0.3});

  api::Experiment experiment(spec);
  api::ExperimentRun run = experiment.launch();

  std::printf("phase 1: 55%%/45%% split, plus a 30%% crash at period 20\n");
  std::printf("%8s %12s %12s %12s\n", "period", "version A", "version B",
              "undecided");
  std::size_t period = 0;
  while (!LV::converged(run.group()) && period < 5000) {
    if (period % 20 == 0) report(run.group(), period);
    run.advance(10);
    period += 10;
  }
  report(run.group(), period);

  // A host can read its running decision variable at any moment:
  std::printf("\nhost 17's decision variable: %s\n\n",
              decision_name(LV::decision_of(run.group(), 17)));

  // Phase 2: a new document version lands on 70% of the (alive) replicas.
  // Because the protocol runs forever, it simply re-converges -- the
  // self-stabilization the paper contrasts with one-shot consensus.
  std::printf("phase 2: fresh writes flip 70%% of alive replicas to "
              "version B\n");
  {
    sim::Group& group = run.group();
    std::size_t flipped = 0;
    const std::size_t target = group.total_alive() * 7 / 10;
    for (sim::ProcessId pid = 0; pid < kN && flipped < target; ++pid) {
      if (group.alive(pid) && group.state_of(pid) != LV::kY) {
        group.transition(pid, LV::kY);
        ++flipped;
      }
    }
  }
  period = 0;
  while (!LV::converged(run.group()) && period < 5000) {
    if (period % 20 == 0) report(run.group(), period);
    run.advance(10);
    period += 10;
  }
  report(run.group(), period);

  std::printf("\nfinal agreement: %s (initial majority of the second "
              "round)\n",
              LV::winner(run.group()) == 1 ? "version B" : "version A");
  return LV::winner(run.group()) == 1 ? 0 : 1;
}
