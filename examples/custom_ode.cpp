// Bring your own differential equations (Sections 6 and 7): this example
// walks two systems that need rewriting before they map.
//
//   A. A second-order equation, x-ddot + x-dot = x: order reduction to a
//      first-order complete system, then synthesis (needs Tokenizing).
//   B. A "recruitment with burnout" model with a bare-constant term:
//      completion + constant expansion, then synthesis, then runs over a
//      lossy network -- with and without Section 3 failure compensation --
//      each described as a declarative api::ScenarioSpec and executed by
//      api::Experiment.
//
// Build & run:  ./examples/custom_ode

#include <cstdio>

#include "api/experiment.hpp"
#include "core/mean_field.hpp"
#include "core/synthesis.hpp"
#include "ode/catalog.hpp"
#include "ode/rewriting.hpp"

int main() {
  using namespace deproto;

  // ----- A. Higher-order rewriting (Section 7) -----------------------------
  std::printf("A. second-order example  x'' + x' = x\n");
  const ode::HigherOrderEquation second = ode::catalog::second_order_example();
  const ode::EquationSystem reduced = ode::reduce_order(second, true, "z");
  std::printf("reduced to first order (+ slack z):\n%s",
              reduced.to_string().c_str());

  const core::SynthesisResult synth_a = core::synthesize(reduced);
  std::printf("\nsynthesized machine (p = %.3f):\n%s",
              synth_a.p, synth_a.machine.to_string().c_str());
  std::printf("round-trip mean field == p * source: %s\n\n",
              core::verifies_equivalence(synth_a.machine, reduced)
                  ? "verified"
                  : "MISMATCH");

  // ----- B. Constants, tokenizing, and failure compensation ----------------
  // Recruiters (y) convert idle processes (x) by invitation; recruits burn
  // out at a constant system-wide rate c (a bare-constant drain term):
  //   x-dot = -k*x*y + c         y-dot = +k*x*y - c
  std::printf("B. recruitment with burnout (constant term + tokenizing)\n");
  ode::EquationSystem recruit({"x", "y"});
  recruit.add_term("x", -0.4, {{"x", 1}, {"y", 1}});
  recruit.add_term("x", +0.05, {});
  recruit.add_term("y", +0.4, {{"x", 1}, {"y", 1}});
  recruit.add_term("y", -0.05, {});
  std::printf("%s", recruit.to_string().c_str());

  // One declarative spec: the system as text, auto-rewriting on (expands
  // +/-c into c * (x + y)), a 20% lossy network, 20,000 processes split
  // 50/50, 800 periods. The compensated variant only flips failure_rate.
  const double loss = 0.2;
  api::ScenarioSpec spec;
  spec.name = "recruitment";
  spec.source.ode_text = recruit.to_string();
  spec.synthesis.auto_rewrite = true;
  spec.runtime.message_loss = loss;
  spec.n = 20000;
  spec.seed = 99;
  spec.periods = 800;
  spec.initial_counts = {10000, 10000};

  api::Experiment uncompensated_experiment(spec);
  const api::Experiment::Artifacts& art = uncompensated_experiment.artifacts();
  std::printf("\nafter auto-rewriting, machine (p = %.3f):\n%s",
              art.synthesis.p, art.synthesis.machine.to_string().c_str());
  for (const std::string& note : art.synthesis.notes) {
    std::printf("  note: %s\n", note.c_str());
  }

  // Run twice: once uncompensated, once with the Section 3 failure factor
  // applied (synthesis.failure_rate folds (1/(1-f))^{|T|-1} into the coins).
  api::ScenarioSpec compensated_spec = spec;
  compensated_spec.name = "recruitment-compensated";
  compensated_spec.synthesis.failure_rate = loss;
  api::Experiment compensated_experiment(compensated_spec);

  auto recruited_fraction = [](const api::ExperimentResult& result) {
    return static_cast<double>(result.final_counts[1]) /
           static_cast<double>(result.final_alive);
  };
  const double uncompensated =
      recruited_fraction(uncompensated_experiment.run());
  const double compensated = recruited_fraction(compensated_experiment.run());

  // Analytic equilibrium of the source: k*x*y = c with x + y = 1.
  // 0.4*y*(1-y) = 0.05 -> y = (1 +- sqrt(1 - 0.5))/2; stable root ~ 0.854.
  std::printf("\nrecruited fraction with 20%% message loss:\n");
  std::printf("  uncompensated: %.3f   compensated: %.3f   "
              "source-equation equilibrium: 0.854\n",
              uncompensated, compensated);
  std::printf("  (the failure factor (1/(1-f))^{|T|-1} restores the "
              "modeled equations)\n");
  return 0;
}
