// Bring your own differential equations (Sections 6 and 7): this example
// walks two systems that need rewriting before they map.
//
//   A. A second-order equation, x-ddot + x-dot = x: order reduction to a
//      first-order complete system, then synthesis (needs Tokenizing).
//   B. A "recruitment with burnout" model with a bare-constant term:
//      completion + constant expansion, then synthesis, then a run with
//      failure compensation over a lossy network.
//
// Build & run:  ./examples/custom_ode

#include <cstdio>

#include "core/failure_compensation.hpp"
#include "core/mean_field.hpp"
#include "core/synthesis.hpp"
#include "ode/catalog.hpp"
#include "ode/rewriting.hpp"
#include "sim/runtime.hpp"
#include "sim/sync_sim.hpp"

int main() {
  using namespace deproto;

  // ----- A. Higher-order rewriting (Section 7) -----------------------------
  std::printf("A. second-order example  x'' + x' = x\n");
  const ode::HigherOrderEquation second = ode::catalog::second_order_example();
  const ode::EquationSystem reduced = ode::reduce_order(second, true, "z");
  std::printf("reduced to first order (+ slack z):\n%s",
              reduced.to_string().c_str());

  const core::SynthesisResult synth_a = core::synthesize(reduced);
  std::printf("\nsynthesized machine (p = %.3f):\n%s",
              synth_a.p, synth_a.machine.to_string().c_str());
  std::printf("round-trip mean field == p * source: %s\n\n",
              core::verifies_equivalence(synth_a.machine, reduced)
                  ? "verified"
                  : "MISMATCH");

  // ----- B. Constants, tokenizing, and failure compensation ----------------
  // Recruiters (y) convert idle processes (x) by invitation; recruits burn
  // out at a constant system-wide rate c (a bare-constant drain term):
  //   x-dot = -k*x*y + c         y-dot = +k*x*y - c
  std::printf("B. recruitment with burnout (constant term + tokenizing)\n");
  ode::EquationSystem recruit({"x", "y"});
  recruit.add_term("x", -0.4, {{"x", 1}, {"y", 1}});
  recruit.add_term("x", +0.05, {});
  recruit.add_term("y", +0.4, {{"x", 1}, {"y", 1}});
  recruit.add_term("y", -0.05, {});
  std::printf("%s", recruit.to_string().c_str());

  core::SynthesisOptions options;
  options.auto_rewrite = true;  // expands +/-c into c * (x + y)
  const core::SynthesisResult synth_b = core::synthesize(recruit, options);
  std::printf("\nafter auto-rewriting, machine (p = %.3f):\n%s",
              synth_b.p, synth_b.machine.to_string().c_str());
  for (const std::string& note : synth_b.notes) {
    std::printf("  note: %s\n", note.c_str());
  }

  // Run over a network that drops 20% of probes, twice: once uncompensated,
  // once with the Section 3 failure factor applied.
  const double loss = 0.2;
  auto run = [&](const core::ProtocolStateMachine& machine) {
    sim::RuntimeOptions rt;
    rt.message_loss = loss;
    sim::MachineExecutor executor(machine, rt);
    sim::SyncSimulator simulator(20000, executor, 99);
    simulator.seed_states({10000, 10000});
    simulator.run(800);
    return static_cast<double>(simulator.group().count(1)) / 20000.0;
  };
  const double uncompensated = run(synth_b.machine);
  const double compensated =
      run(core::compensate_for_failures(synth_b.machine, loss));

  // Analytic equilibrium of the source: k*x*y = c with x + y = 1.
  // 0.4*y*(1-y) = 0.05 -> y = (1 +- sqrt(1 - 0.5))/2; stable root ~ 0.854.
  std::printf("\nrecruited fraction with 20%% message loss:\n");
  std::printf("  uncompensated: %.3f   compensated: %.3f   "
              "source-equation equilibrium: 0.854\n",
              uncompensated, compensated);
  std::printf("  (the failure factor (1/(1-f))^{|T|-1} restores the "
              "modeled equations)\n");
  return 0;
}
