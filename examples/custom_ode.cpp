// Bring your own differential equations (Sections 6 and 7): this example
// walks two systems that need rewriting before they map.
//
//   A. A second-order equation, x-ddot + x-dot = x: order reduction to a
//      first-order complete system, then synthesis (needs Tokenizing).
//   B. A "recruitment with burnout" model with a bare-constant term:
//      completion + constant expansion, then synthesis, then runs over a
//      lossy network -- with and without Section 3 failure compensation --
//      expressed as ONE api::SweepSpec (an axis over
//      synthesis.failure_rate) and executed by api::SuiteRunner instead
//      of two hand-wired Experiment calls.
//
// Build & run:  ./examples/custom_ode

#include <cstdio>

#include "api/experiment.hpp"
#include "api/suite_runner.hpp"
#include "api/sweep.hpp"
#include "core/mean_field.hpp"
#include "core/synthesis.hpp"
#include "ode/catalog.hpp"
#include "ode/rewriting.hpp"

int main() {
  using namespace deproto;

  // ----- A. Higher-order rewriting (Section 7) -----------------------------
  std::printf("A. second-order example  x'' + x' = x\n");
  const ode::HigherOrderEquation second = ode::catalog::second_order_example();
  const ode::EquationSystem reduced = ode::reduce_order(second, true, "z");
  std::printf("reduced to first order (+ slack z):\n%s",
              reduced.to_string().c_str());

  const core::SynthesisResult synth_a = core::synthesize(reduced);
  std::printf("\nsynthesized machine (p = %.3f):\n%s",
              synth_a.p, synth_a.machine.to_string().c_str());
  std::printf("round-trip mean field == p * source: %s\n\n",
              core::verifies_equivalence(synth_a.machine, reduced)
                  ? "verified"
                  : "MISMATCH");

  // ----- B. Constants, tokenizing, and failure compensation ----------------
  // Recruiters (y) convert idle processes (x) by invitation; recruits burn
  // out at a constant system-wide rate c (a bare-constant drain term):
  //   x-dot = -k*x*y + c         y-dot = +k*x*y - c
  std::printf("B. recruitment with burnout (constant term + tokenizing)\n");
  ode::EquationSystem recruit({"x", "y"});
  recruit.add_term("x", -0.4, {{"x", 1}, {"y", 1}});
  recruit.add_term("x", +0.05, {});
  recruit.add_term("y", +0.4, {{"x", 1}, {"y", 1}});
  recruit.add_term("y", -0.05, {});
  std::printf("%s", recruit.to_string().c_str());

  // One declarative sweep: the system as text, auto-rewriting on (expands
  // +/-c into c * (x + y)), a 20% lossy network, 20,000 processes split
  // 50/50, 800 periods -- and ONE axis, synthesis.failure_rate in
  // {0, loss}, instead of two hand-wired Experiment runs. SuiteRunner
  // executes both points (in parallel when the host has cores to spare)
  // and reports results in job order.
  const double loss = 0.2;
  api::SweepSpec sweep;
  sweep.name = "recruitment-compensation";
  sweep.base.name = "recruitment";
  sweep.base.source.ode_text = recruit.to_string();
  sweep.base.synthesis.auto_rewrite = true;
  sweep.base.runtime.message_loss = loss;
  sweep.base.n = 20000;
  sweep.base.seed = 99;
  sweep.base.periods = 800;
  sweep.base.initial_counts = {10000, 10000};
  sweep.axes.push_back(api::SweepAxis{
      "synthesis.failure_rate",
      {api::Json::number(0.0), api::Json::number(loss)}});

  api::Experiment preview(sweep.base);
  const api::Experiment::Artifacts& art = preview.artifacts();
  std::printf("\nafter auto-rewriting, machine (p = %.3f):\n%s",
              art.synthesis.p, art.synthesis.machine.to_string().c_str());
  for (const std::string& note : art.synthesis.notes) {
    std::printf("  note: %s\n", note.c_str());
  }

  // Point 0 is uncompensated; point 1 folds the Section 3 failure factor
  // (1/(1-f))^{|T|-1} into the coins.
  const api::SweepResult swept = api::SuiteRunner().run(sweep);
  if (swept.jobs_failed > 0) {
    for (const api::JobOutcome& outcome : swept.jobs) {
      if (!outcome.ok) {
        std::fprintf(stderr, "sweep job %s failed: %s\n",
                     outcome.job.spec.name.c_str(), outcome.error.c_str());
      }
    }
    return 1;
  }
  auto recruited_fraction = [&](std::size_t point) {
    const api::Aggregate* fraction =
        swept.points[point].metric("final_fraction_y");
    return fraction != nullptr ? fraction->mean : 0.0;
  };
  const double uncompensated = recruited_fraction(0);
  const double compensated = recruited_fraction(1);

  // Analytic equilibrium of the source: k*x*y = c with x + y = 1.
  // 0.4*y*(1-y) = 0.05 -> y = (1 +- sqrt(1 - 0.5))/2; stable root ~ 0.854.
  std::printf("\nrecruited fraction with 20%% message loss:\n");
  std::printf("  uncompensated: %.3f   compensated: %.3f   "
              "source-equation equilibrium: 0.854\n",
              uncompensated, compensated);
  std::printf("  (the failure factor (1/(1-f))^{|T|-1} restores the "
              "modeled equations)\n");
  return 0;
}
