// Quickstart: the full pipeline on the paper's motivating example, driven
// through the deproto::api::Experiment facade. One declarative ScenarioSpec
// (here: the registry's "epidemic" scenario) replaces the hand-wired
// parse -> classify -> synthesize -> verify -> simulate glue:
//
//   1. The spec names the source system (the epidemic, eq. 0) and the run
//      parameters (N, seed, periods, initial populations).
//   2. Experiment::artifacts() classifies the system against the Section 2
//      taxonomy and synthesizes a protocol (Section 3 mapping rules).
//   3. It also verifies the protocol's mean field equals the source
//      equations (Theorem 1).
//   4. Experiment::run() executes the machine on a simulated group and
//      returns the per-period populations as a structured result.
//
// Build & run:  ./examples/quickstart

#include <cmath>
#include <cstdio>

#include "api/experiment.hpp"
#include "api/registry.hpp"

int main() {
  using namespace deproto;

  // The registry's epidemic scenario: x' = -xy, y' = +xy on 10,000
  // processes, one initial infective, seed 2004.
  api::Experiment experiment(api::registry_get("epidemic"));
  const api::Experiment::Artifacts& art = experiment.artifacts();

  // 1. The source equations: x susceptible, y infected, fractions of N.
  std::printf("source system:\n%s\n", art.source.to_string().c_str());

  // 2. Taxonomy (Section 2): complete? completely partitionable?
  std::printf("complete: %s, completely partitionable: %s, "
              "restricted polynomial: %s\n\n",
              art.taxonomy.complete ? "yes" : "no",
              art.taxonomy.completely_partitionable ? "yes" : "no",
              art.taxonomy.restricted_polynomial ? "yes" : "no");

  // 3. Synthesis (Section 3): one One-Time-Sampling action -- exactly the
  //    canonical pull epidemic used in Clearinghouse.
  std::printf("synthesized machine:\n%s\n",
              art.synthesis.machine.to_string().c_str());
  for (const std::string& note : art.synthesis.notes) {
    std::printf("  note: %s\n", note.c_str());
  }

  // 4. Theorem 1, mechanically: the machine's mean field over protocol
  //    periods is p * f(X).
  std::printf("\nmean field == p * source: %s\n\n",
              art.mean_field_verified ? "verified" : "MISMATCH");

  // 5. Run 10,000 processes from a single infective.
  const api::ExperimentResult result = experiment.run();
  std::printf("%8s %14s %14s\n", "period", "susceptible", "infected");
  for (int period = 0; period <= 24; period += 2) {
    const auto& counts = result.counts_at(static_cast<std::size_t>(period));
    std::printf("%8d %14zu %14zu\n", period, counts[0], counts[1]);
  }
  std::printf("\nO(log2 N) = %.1f rounds predicted; everyone infected: %s\n",
              std::log2(10000.0),
              result.final_counts[1] == 10000 ? "yes" : "nearly");

  // 6. Scheduler independence: the same spec runs unchanged on the fully
  //    asynchronous event backend (drifting per-process clocks, real
  //    request/response messages, no global rounds) -- flip one field.
  api::ScenarioSpec async_spec = experiment.spec().scaled_to(2000);
  async_spec.backend = api::Backend::Event;
  async_spec.periods = 30;
  const api::ExperimentResult async_result =
      api::Experiment(std::move(async_spec)).run();
  std::printf("\nsame spec, event backend (N=2000, no global clock): "
              "%zu of %zu infected after %zu periods\n",
              async_result.final_counts[1], async_result.final_alive,
              async_result.series.size());
  return 0;
}
