// Quickstart: the full pipeline on the paper's motivating example.
//
//   1. Write down a differential equation system (the epidemic, eq. 0).
//   2. Classify it against the Section 2 taxonomy.
//   3. Synthesize a distributed protocol (Section 3 mapping rules).
//   4. Verify the protocol's mean field equals the source equations.
//   5. Run it on a simulated group and watch the infection take over.
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "core/mean_field.hpp"
#include "core/synthesis.hpp"
#include "ode/catalog.hpp"
#include "ode/taxonomy.hpp"
#include "sim/runtime.hpp"
#include "sim/sync_sim.hpp"

int main() {
  using namespace deproto;

  // 1. The source equations: x susceptible, y infected, fractions of N.
  ode::EquationSystem epidemic({"x", "y"});
  epidemic.add_term("x", -1.0, {{"x", 1}, {"y", 1}});  // x-dot = -xy
  epidemic.add_term("y", +1.0, {{"x", 1}, {"y", 1}});  // y-dot = +xy
  std::printf("source system:\n%s\n", epidemic.to_string().c_str());

  // 2. Taxonomy (Section 2): complete? completely partitionable?
  const ode::TaxonomyReport taxonomy = ode::classify(epidemic);
  std::printf("complete: %s, completely partitionable: %s, "
              "restricted polynomial: %s\n\n",
              taxonomy.complete ? "yes" : "no",
              taxonomy.completely_partitionable ? "yes" : "no",
              taxonomy.restricted_polynomial ? "yes" : "no");

  // 3. Synthesis (Section 3): one One-Time-Sampling action -- exactly the
  //    canonical pull epidemic used in Clearinghouse.
  const core::SynthesisResult synth = core::synthesize(epidemic);
  std::printf("synthesized machine:\n%s\n", synth.machine.to_string().c_str());
  for (const std::string& note : synth.notes) {
    std::printf("  note: %s\n", note.c_str());
  }

  // 4. Theorem 1, mechanically: the machine's mean field over protocol
  //    periods is p * f(X).
  const bool equivalent = core::verifies_equivalence(synth.machine, epidemic);
  std::printf("\nmean field == p * source: %s\n\n",
              equivalent ? "verified" : "MISMATCH");

  // 5. Run 10,000 processes from a single infective.
  sim::MachineExecutor executor(synth.machine);
  sim::SyncSimulator simulator(10000, executor, /*seed=*/2004);
  simulator.seed_states({9999, 1});
  std::printf("%8s %14s %14s\n", "period", "susceptible", "infected");
  for (int period = 0; period <= 24; period += 2) {
    std::printf("%8d %14zu %14zu\n", period, simulator.group().count(0),
                simulator.group().count(1));
    simulator.run(2);
  }
  std::printf("\nO(log2 N) = %.1f rounds predicted; everyone infected: %s\n",
              std::log2(10000.0),
              simulator.group().count(1) == 10000 ? "yes" : "nearly");
  return 0;
}
