#pragma once

// The cluster dispatcher's framing protocol: length-prefixed, versioned
// frames carrying JSON payloads between the dispatcher and its worker
// processes (spec JSON down; result JSON, heartbeats, and hello/handshake
// up). A frame is a fixed 16-byte header -- 4 magic bytes ("DPWF"), a
// little-endian u32 protocol version, frame type, and payload length --
// followed by the payload bytes. The decoder is incremental (feed bytes
// as they arrive, poll for complete frames) and fails closed: a bad
// magic, unknown version or type, or an oversized length marks the whole
// stream corrupt -- framing is lost, there is no resync -- so the
// dispatcher can kill that worker and reassign its job instead of
// guessing at byte boundaries.
//
// Transport is an interface: FdTransport drives the pipe pair the
// dispatcher forks workers with today; a socket transport for real
// multi-host clusters plugs in behind the same two calls.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace deproto::dist {

/// First 4 bytes of every frame, in order: 'D' 'P' 'W' 'F'.
inline constexpr char kWireMagic[4] = {'D', 'P', 'W', 'F'};

/// Bumped on any incompatible change to the header layout, frame types,
/// or payload conventions. A dispatcher never interprets frames from a
/// worker speaking another version; the mismatch surfaces as a corrupt
/// stream on the first header.
inline constexpr std::uint32_t kWireVersion = 1;

/// Upper bound on one payload. Result documents scale with the recorded
/// series (a 10^6-period job dumps tens of megabytes), so the bound is
/// generous; anything above it is a framing error, not a workload.
inline constexpr std::uint32_t kMaxFramePayload = 256u * 1024u * 1024u;

/// Fixed header size: magic + version + type + length.
inline constexpr std::size_t kFrameHeaderSize = 16;

enum class FrameType : std::uint32_t {
  /// Worker -> dispatcher, once after startup: {"pid": <pid>}. Receipt
  /// marks the worker ready for its first job.
  Hello = 1,
  /// Dispatcher -> worker: {"job": <index>, "spec": <ScenarioSpec JSON>}.
  Job = 2,
  /// Worker -> dispatcher, one per executed job. The payload is a compact
  /// header JSON line, '\n', then the raw ExperimentResult::to_json(false)
  /// dump (absent after a failed job); see dist/worker.hpp. The two-part
  /// layout lets the dispatcher splice the (potentially huge) result text
  /// into its JSONL sink without parsing it into a tree.
  Result = 3,
  /// Worker -> dispatcher, every heartbeat interval: {"job": <index>} for
  /// the job being executed, or {"job": -1} when idle. Any frame refreshes
  /// the dispatcher's liveness clock; heartbeats exist so a worker stuck
  /// inside one long job still refreshes it.
  Heartbeat = 4,
  /// Dispatcher -> worker: drain and exit cleanly. No payload.
  Shutdown = 5,
};

/// True for the FrameType values this version defines; the decoder
/// rejects everything else.
[[nodiscard]] bool frame_type_known(std::uint32_t value);
[[nodiscard]] const char* frame_type_name(FrameType type);

struct Frame {
  FrameType type = FrameType::Hello;
  std::string payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Header + payload as wire bytes. Throws std::length_error when the
/// payload exceeds kMaxFramePayload (the sender's bug, not the peer's).
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Incremental frame parser over an untrusted byte stream. feed() bytes
/// as they arrive; next() yields complete frames. Corruption is sticky:
/// once the stream violates the framing invariants every further next()
/// reports Corrupt, because a length-prefixed stream that lied once has
/// no trustworthy byte boundaries left.
class FrameDecoder {
 public:
  enum class Status {
    Frame,     ///< *out was filled with the next complete frame
    NeedMore,  ///< no complete frame buffered; feed() more bytes
    Corrupt,   ///< framing invariant violated; stream is unusable
  };

  void feed(const char* data, std::size_t n);

  /// Extract the next complete frame. On Corrupt, `error` (when non-null)
  /// gets a one-line diagnosis of the first violation.
  Status next(Frame* out, std::string* error = nullptr);

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - consumed_;
  }
  [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }

 private:
  [[nodiscard]] Status fail(std::string why, std::string* error);

  std::string buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool corrupt_ = false;
  std::string corrupt_why_;
};

/// One frame-carrying byte stream to a peer. send() must be safe to call
/// from multiple threads (the worker's heartbeat thread interleaves with
/// its result writes); reads are single-consumer.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocking, whole-frame write. False when the peer is gone (EPIPE /
  /// closed fd); callers treat that as peer death, never retry.
  virtual bool send(const Frame& frame) = 0;

  /// Read up to `n` raw bytes into `out`. Returns the byte count, 0 on
  /// end-of-stream, -1 on error or (for non-blocking fds) would-block.
  virtual long read_some(char* out, std::size_t n) = 0;

  /// The fd to poll for readability, or -1 when the transport does not
  /// expose one.
  [[nodiscard]] virtual int poll_fd() const = 0;
};

/// Transport over a pair of file descriptors -- the worker's stdin/stdout
/// pipes today, any fd-shaped stream (socketpair, TCP) tomorrow. Does not
/// own the fds unless told to.
class FdTransport final : public Transport {
 public:
  FdTransport(int read_fd, int write_fd, bool owns_fds = false);
  ~FdTransport() override;

  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  bool send(const Frame& frame) override;
  long read_some(char* out, std::size_t n) override;
  [[nodiscard]] int poll_fd() const override { return read_fd_; }

 private:
  int read_fd_;
  int write_fd_;
  bool owns_fds_;
  std::mutex send_mu_;  // frames from concurrent senders never interleave
};

}  // namespace deproto::dist
