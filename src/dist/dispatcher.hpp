#pragma once

// The dispatcher half of the cluster sweep engine: forks N worker
// processes (api::DispatchOptions), shards a SweepJob list across them
// with pull scheduling -- each worker gets its next job the moment it
// reports the previous one -- and merges completions back into the same
// strictly job-index-ordered sinks the in-process thread pool feeds.
// JSONL output and SweepResult::to_json(false) are byte-identical to a
// --threads 1 run of the same sweep: result bodies travel as canonical
// dumps and are spliced into the merge verbatim (api::Json::raw), never
// re-serialized, and per-job metrics ride in result headers so the
// dispatcher aggregates without parsing bodies.
//
// Fault tolerance: a worker that exits, breaks its pipe, emits a corrupt
// frame, or goes silent past the heartbeat timeout is SIGKILLed and
// reaped; its in-flight job returns to the queue (up to max_retries
// re-dispatches, then the job is recorded as failed with the worker's
// fate in the error) and a replacement worker is spawned. Workers that
// die before completing the Hello handshake are abandoned instead of
// respawned -- a binary that cannot start must not restart-loop -- and if
// every slot is lost the remaining jobs are marked failed rather than
// hanging the dispatcher.

#include <string>
#include <vector>

#include "api/suite_runner.hpp"
#include "api/sweep.hpp"

namespace deproto::dist {

/// Execute `jobs` across options.dispatch.workers worker processes.
/// Called by SuiteRunner::run_jobs when dispatch is enabled; same
/// contract (ordering, sinks, point-contiguity, SweepResult shape), plus
/// SweepResult::dispatch carries the execution counters and
/// SweepResult::cache the summed per-worker cache deltas.
[[nodiscard]] api::SweepResult run_dispatched(std::vector<api::SweepJob> jobs,
                                              const std::string& suite_name,
                                              const api::SuiteOptions& options);

}  // namespace deproto::dist
