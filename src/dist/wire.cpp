#include "dist/wire.hpp"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <utility>

namespace deproto::dist {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

bool frame_type_known(std::uint32_t value) {
  return value >= static_cast<std::uint32_t>(FrameType::Hello) &&
         value <= static_cast<std::uint32_t>(FrameType::Shutdown);
}

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::Hello:
      return "hello";
    case FrameType::Job:
      return "job";
    case FrameType::Result:
      return "result";
    case FrameType::Heartbeat:
      return "heartbeat";
    case FrameType::Shutdown:
      return "shutdown";
  }
  return "unknown";
}

std::string encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw std::length_error("dist::encode_frame: payload of " +
                            std::to_string(frame.payload.size()) +
                            " bytes exceeds kMaxFramePayload");
  }
  std::string out;
  out.reserve(kFrameHeaderSize + frame.payload.size());
  out.append(kWireMagic, sizeof(kWireMagic));
  put_u32(out, kWireVersion);
  put_u32(out, static_cast<std::uint32_t>(frame.type));
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (corrupt_ || n == 0) return;
  // Drop the already-consumed prefix before it grows unbounded.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ >= 64 * 1024) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

FrameDecoder::Status FrameDecoder::fail(std::string why, std::string* error) {
  if (!corrupt_) {
    corrupt_ = true;
    corrupt_why_ = std::move(why);
  }
  if (error != nullptr) *error = corrupt_why_;
  return Status::Corrupt;
}

FrameDecoder::Status FrameDecoder::next(Frame* out, std::string* error) {
  if (corrupt_) return fail("", error);
  if (buffered() < kFrameHeaderSize) return Status::NeedMore;
  const char* header = buffer_.data() + consumed_;
  if (std::memcmp(header, kWireMagic, sizeof(kWireMagic)) != 0) {
    return fail("bad frame magic", error);
  }
  const std::uint32_t version = get_u32(header + 4);
  if (version != kWireVersion) {
    return fail("unsupported wire version " + std::to_string(version), error);
  }
  const std::uint32_t type = get_u32(header + 8);
  if (!frame_type_known(type)) {
    return fail("unknown frame type " + std::to_string(type), error);
  }
  const std::uint32_t length = get_u32(header + 12);
  if (length > kMaxFramePayload) {
    return fail("frame payload of " + std::to_string(length) +
                    " bytes exceeds kMaxFramePayload",
                error);
  }
  if (buffered() < kFrameHeaderSize + length) return Status::NeedMore;
  out->type = static_cast<FrameType>(type);
  out->payload.assign(header + kFrameHeaderSize, length);
  consumed_ += kFrameHeaderSize + length;
  return Status::Frame;
}

FdTransport::FdTransport(int read_fd, int write_fd, bool owns_fds)
    : read_fd_(read_fd), write_fd_(write_fd), owns_fds_(owns_fds) {}

FdTransport::~FdTransport() {
  if (owns_fds_) {
    if (read_fd_ >= 0) ::close(read_fd_);
    if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
  }
}

bool FdTransport::send(const Frame& frame) {
  const std::string bytes = encode_frame(frame);
  std::lock_guard<std::mutex> lock(send_mu_);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::write(write_fd_, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && errno == EAGAIN) {
      // Writable fd briefly full (pipe buffer): wait it out rather than
      // tear a frame in half.
      struct pollfd pfd {};
      pfd.fd = write_fd_;
      pfd.events = POLLOUT;
      ::poll(&pfd, 1, -1);
      continue;
    }
    return false;  // EPIPE and friends: peer is gone
  }
  return true;
}

long FdTransport::read_some(char* out, std::size_t n) {
  while (true) {
    const ssize_t got = ::read(read_fd_, out, n);
    if (got >= 0) return static_cast<long>(got);
    if (errno == EINTR) continue;
    return -1;
  }
}

}  // namespace deproto::dist
