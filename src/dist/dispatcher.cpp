#include "dist/dispatcher.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "api/job_metrics.hpp"
#include "api/json.hpp"
#include "dist/wire.hpp"

namespace deproto::dist {

namespace {

using api::Json;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Ignore SIGPIPE for the dispatcher's lifetime (a worker dying mid-send
/// must surface as EPIPE on the write, not kill this process), restoring
/// the previous disposition on the way out.
class SigpipeGuard {
 public:
  SigpipeGuard() { previous_ = ::signal(SIGPIPE, SIG_IGN); }
  ~SigpipeGuard() { ::signal(SIGPIPE, previous_); }

 private:
  void (*previous_)(int);
};

api::CacheStats cache_stats_from_json(const Json& j) {
  api::CacheStats stats;
  stats.hits = j.at("hits").as_size();
  stats.misses = j.at("misses").as_size();
  stats.corrupt = j.at("corrupt").as_size();
  stats.stores = j.at("stores").as_size();
  stats.skipped = j.at("skipped").as_size();
  return stats;
}

struct WorkerSlot {
  pid_t pid = -1;
  int read_fd = -1;   // worker stdout (non-blocking, polled)
  int write_fd = -1;  // worker stdin (blocking; job frames are small)
  FrameDecoder decoder;
  bool alive = false;
  bool abandoned = false;  // startup failure / restart budget exhausted
  bool hello_seen = false;
  long current_job = -1;  // in-flight job index, -1 when idle
  Clock::time_point last_frame;  // doubles as spawn time before Hello
  Clock::time_point job_start;
  double busy_seconds = 0.0;     // accumulated across incarnations
  api::CacheStats cache_stats;   // this incarnation's cumulative report
  bool cache_enabled = false;
};

class Dispatcher {
 public:
  Dispatcher(std::vector<api::SweepJob> jobs, const std::string& suite_name,
             const api::SuiteOptions& options)
      : jobs_(std::move(jobs)), options_(options) {
    out_.sweep = suite_name;
    out_.jobs_total = jobs_.size();
    out_.threads = 1;  // the merge loop; worker count lives in dispatch
    out_.dispatch_enabled = true;
    out_.jobs.resize(jobs_.size());
    done_.assign(jobs_.size(), 0);
    attempts_.assign(jobs_.size(), 0);
    metrics_by_job_.resize(jobs_.size());
    raw_bodies_.resize(jobs_.size());
    // The sinks below parse result bodies only when something in this
    // process actually needs the tree; a plain JSONL sweep splices raw
    // bytes end to end.
    need_parse_ = options_.store_results || options_.on_result != nullptr ||
                  (options_.jsonl != nullptr && options_.jsonl_timing);
    timeout_ms_ = options_.dispatch.heartbeat_timeout_ms;
    if (timeout_ms_ <= 0 && options_.dispatch.heartbeat_ms > 0) {
      // Derived default: generous enough that scheduling hiccups never
      // look like hangs, tight enough that a stuck worker is caught in
      // seconds.
      timeout_ms_ = std::max(5000, 20 * options_.dispatch.heartbeat_ms);
    }
    worker_argv_ = build_worker_argv();
  }

  api::SweepResult run() {
    const auto suite_start = Clock::now();
    for (std::size_t i = 0; i < jobs_.size(); ++i) pending_.push_back(i);

    const std::size_t n_slots =
        std::min(options_.dispatch.workers, std::max<std::size_t>(
                                                jobs_.size(), 1));
    slots_.resize(jobs_.empty() ? 0 : n_slots);
    // Restart budget: every legitimate retry chain is covered, but a
    // worker that dies endlessly while idle cannot spin the dispatcher
    // forever.
    restart_budget_ =
        slots_.size() *
        (static_cast<std::size_t>(std::max(0, options_.dispatch.max_retries)) +
         2);
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (!spawn(s)) slots_[s].abandoned = true;
    }

    std::vector<struct pollfd> pfds;
    std::vector<std::size_t> pfd_slot;
    while (completed_ < jobs_.size()) {
      pfds.clear();
      pfd_slot.clear();
      for (std::size_t s = 0; s < slots_.size(); ++s) {
        if (!slots_[s].alive) continue;
        struct pollfd pfd {};
        pfd.fd = slots_[s].read_fd;
        pfd.events = POLLIN;
        pfds.push_back(pfd);
        pfd_slot.push_back(s);
      }
      if (pfds.empty()) {
        fail_remaining("no live workers remain");
        break;
      }
      const int ready = ::poll(pfds.data(), pfds.size(), 100);
      if (ready < 0 && errno != EINTR) {
        fail_remaining("poll failed");
        break;
      }
      for (std::size_t i = 0; i < pfds.size(); ++i) {
        if (pfds[i].revents == 0) continue;
        read_available(pfd_slot[i]);
      }
      check_timeouts();
    }

    shutdown_workers();

    out_.dispatch.workers = slots_.size();
    for (const WorkerSlot& slot : slots_) {
      out_.dispatch.worker_busy_seconds.push_back(slot.busy_seconds);
      accumulate_cache(slot.cache_stats);
      if (slot.cache_enabled) out_.cache_enabled = true;
    }
    out_.cache = cache_total_;
    api::detail::aggregate_points(out_, metrics_by_job_);
    if (options_.jsonl != nullptr && !options_.jsonl->flush().good()) {
      out_.jsonl_failed = true;
    }
    out_.elapsed_seconds = seconds_since(suite_start);
    return std::move(out_);
  }

 private:
  std::vector<std::string> build_worker_argv() const {
    std::vector<std::string> argv;
    argv.push_back(options_.dispatch.worker_exe.empty()
                       ? "/proc/self/exe"
                       : options_.dispatch.worker_exe);
    argv.push_back("--worker");
    if (options_.dispatch.heartbeat_ms > 0) {
      argv.push_back("--worker-heartbeat-ms");
      argv.push_back(std::to_string(options_.dispatch.heartbeat_ms));
    }
    for (const std::string& arg : options_.dispatch.extra_worker_args) {
      argv.push_back(arg);
    }
    return argv;
  }

  bool spawn(std::size_t s) {
    WorkerSlot& slot = slots_[s];
    int down[2];  // dispatcher -> worker stdin
    int up[2];    // worker stdout -> dispatcher
    if (::pipe2(down, O_CLOEXEC) != 0) return false;
    if (::pipe2(up, O_CLOEXEC) != 0) {
      ::close(down[0]);
      ::close(down[1]);
      return false;
    }
    // argv built pre-fork: no allocation between fork and exec.
    std::vector<char*> argv;
    argv.reserve(worker_argv_.size() + 1);
    for (const std::string& arg : worker_argv_) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(down[0]);
      ::close(down[1]);
      ::close(up[0]);
      ::close(up[1]);
      return false;
    }
    if (pid == 0) {
      ::dup2(down[0], STDIN_FILENO);
      ::dup2(up[1], STDOUT_FILENO);  // stderr stays on the terminal
      ::execv(argv[0], argv.data());
      _exit(127);  // surfaces as a pre-Hello death -> slot abandonment
    }
    ::close(down[0]);
    ::close(up[1]);
    ::fcntl(up[0], F_SETFL, O_NONBLOCK);
    slot.pid = pid;
    slot.read_fd = up[0];
    slot.write_fd = down[1];
    slot.decoder = FrameDecoder{};
    slot.alive = true;
    slot.hello_seen = false;
    slot.current_job = -1;
    slot.last_frame = Clock::now();
    slot.cache_stats = api::CacheStats{};
    slot.cache_enabled = false;
    if (options_.dispatch.on_worker_spawn) {
      options_.dispatch.on_worker_spawn(s, static_cast<long>(pid));
    }
    return true;
  }

  bool send_frame(WorkerSlot& slot, const Frame& frame) {
    const std::string bytes = encode_frame(frame);
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::write(slot.write_fd, bytes.data() + off, bytes.size() - off);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;  // EPIPE and friends: the worker is gone
    }
    return true;
  }

  void read_available(std::size_t s) {
    WorkerSlot& slot = slots_[s];
    char buf[64 * 1024];
    while (slot.alive) {
      const ssize_t n = ::read(slot.read_fd, buf, sizeof(buf));
      if (n > 0) {
        slot.decoder.feed(buf, static_cast<std::size_t>(n));
        drain_frames(s);
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0) {
        handle_death(s, "exited");
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      handle_death(s, "read error");
      break;
    }
  }

  void drain_frames(std::size_t s) {
    WorkerSlot& slot = slots_[s];
    while (slot.alive) {
      Frame frame;
      std::string error;
      const FrameDecoder::Status status = slot.decoder.next(&frame, &error);
      if (status == FrameDecoder::Status::NeedMore) break;
      if (status == FrameDecoder::Status::Corrupt) {
        handle_death(s, "sent a corrupt frame (" + error + ")");
        break;
      }
      slot.last_frame = Clock::now();
      ++out_.dispatch.frames_received;
      switch (frame.type) {
        case FrameType::Hello:
          slot.hello_seen = true;
          assign_next(s);
          break;
        case FrameType::Heartbeat:
          break;  // any frame refreshes last_frame; nothing else to do
        case FrameType::Result:
          handle_result(s, frame);
          break;
        default:
          handle_death(s, std::string("sent an unexpected ") +
                              frame_type_name(frame.type) + " frame");
          break;
      }
    }
  }

  void handle_result(std::size_t s, const Frame& frame) {
    WorkerSlot& slot = slots_[s];
    if (slot.current_job < 0) {
      handle_death(s, "sent a result with no job in flight");
      return;
    }
    const std::size_t idx = static_cast<std::size_t>(slot.current_job);

    // Validate everything before committing: a malformed report is a
    // protocol violation, handled exactly like a death (kill + reassign),
    // so jobs_[idx] stays intact for the retry.
    api::JobOutcome outcome;
    std::vector<std::pair<std::string, double>> metrics;
    std::string body;
    try {
      const std::size_t split = frame.payload.find('\n');
      if (split == std::string::npos) {
        throw api::SpecError("missing header/body separator");
      }
      const Json header = Json::parse(frame.payload.substr(0, split));
      if (header.at("job").as_size() != idx) {
        throw api::SpecError("result for the wrong job");
      }
      body = frame.payload.substr(split + 1);
      outcome.ok = header.at("ok").as_bool();
      outcome.elapsed_seconds = header.get_or("elapsed_seconds", 0.0);
      outcome.cached = header.get_or("cached", false);
      if (outcome.ok) {
        metrics = api::detail::metrics_from_json(header.at("metrics"));
        if (need_parse_) {
          outcome.result = api::ExperimentResult::from_json(Json::parse(body));
          outcome.result.elapsed_seconds = outcome.elapsed_seconds;
        }
      } else {
        outcome.error = header.get_or("error", std::string("unknown error"));
      }
      if (header.contains("cache")) {
        slot.cache_stats = cache_stats_from_json(header.at("cache"));
        slot.cache_enabled = true;
      }
    } catch (const std::exception& e) {
      handle_death(s, std::string("sent an invalid result (") + e.what() +
                          ")");
      return;
    }

    slot.busy_seconds += seconds_since(slot.job_start);
    slot.current_job = -1;
    outcome.job = std::move(jobs_[idx]);
    metrics_by_job_[idx] = std::move(metrics);
    if (outcome.ok) raw_bodies_[idx] = std::move(body);
    out_.jobs[idx] = std::move(outcome);
    done_[idx] = 1;
    ++completed_;

    // Assignment before flush: the worker starts its next job while this
    // process does sink I/O, and a worker killed during that I/O still
    // has an in-flight job to reassign.
    assign_next(s);
    flush_prefix();
  }

  void assign_next(std::size_t s) {
    WorkerSlot& slot = slots_[s];
    if (!slot.alive || !slot.hello_seen || slot.current_job >= 0) return;
    if (pending_.empty()) return;
    const std::size_t idx = pending_.front();
    pending_.pop_front();
    ++attempts_[idx];
    ++out_.dispatch.jobs_dispatched;
    if (attempts_[idx] > 1) ++out_.dispatch.jobs_retried;
    Frame job;
    job.type = FrameType::Job;
    job.payload = Json::object()
                      .set("job", Json::number(idx))
                      .set("spec", jobs_[idx].spec.to_json())
                      .dump();
    slot.current_job = static_cast<long>(idx);
    slot.job_start = Clock::now();
    if (!send_frame(slot, job)) {
      handle_death(s, "rejected a job (broken pipe)");
    }
  }

  void handle_death(std::size_t s, const std::string& reason) {
    WorkerSlot& slot = slots_[s];
    if (!slot.alive) return;
    slot.alive = false;
    const pid_t pid = slot.pid;
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int wstatus = 0;
      ::waitpid(pid, &wstatus, 0);
    }
    if (slot.read_fd >= 0) ::close(slot.read_fd);
    if (slot.write_fd >= 0) ::close(slot.write_fd);
    slot.read_fd = slot.write_fd = -1;
    slot.pid = -1;
    // Fold this incarnation's cache accounting in before it is reset; a
    // killed worker's hits/stores still happened.
    accumulate_cache(slot.cache_stats);
    if (slot.cache_enabled) out_.cache_enabled = true;
    slot.cache_stats = api::CacheStats{};

    if (slot.current_job >= 0) {
      const std::size_t idx = static_cast<std::size_t>(slot.current_job);
      slot.busy_seconds += seconds_since(slot.job_start);
      slot.current_job = -1;
      ++out_.dispatch.jobs_reassigned;
      if (attempts_[idx] > options_.dispatch.max_retries) {
        record_failure(idx, "dispatch: worker (pid " + std::to_string(pid) +
                                ") " + reason + " while executing this job; "
                                "retry budget exhausted after " +
                                std::to_string(attempts_[idx]) +
                                " dispatch(es)");
      } else {
        pending_.push_front(idx);
      }
    }

    if (!slot.hello_seen) {
      // Died before completing the handshake: the worker binary cannot
      // start (bad exe, exec failure, garbage on stdout). Respawning
      // would loop, so the slot is abandoned.
      slot.abandoned = true;
    } else if (completed_ < jobs_.size()) {
      if (out_.dispatch.worker_restarts < restart_budget_ && spawn(s)) {
        ++out_.dispatch.worker_restarts;
      } else {
        slot.abandoned = true;
      }
    }
    flush_prefix();  // a budget-exhausted failure may extend the prefix
  }

  void check_timeouts() {
    const Clock::time_point now = Clock::now();
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      WorkerSlot& slot = slots_[s];
      if (!slot.alive) continue;
      const double silent_ms =
          std::chrono::duration<double, std::milli>(now - slot.last_frame)
              .count();
      if (!slot.hello_seen) {
        // Handshake deadline: even with hang detection off, a worker that
        // never says Hello must not park the dispatcher forever.
        const double limit =
            timeout_ms_ > 0 ? static_cast<double>(timeout_ms_) : 30000.0;
        if (silent_ms > limit) handle_death(s, "never completed handshake");
        continue;
      }
      // Hang detection applies to busy workers only (an idle worker owes
      // no frames when heartbeats are off), and only when a timeout is
      // configured or derivable -- a legitimately long job with
      // heartbeats disabled is never killed by default.
      if (timeout_ms_ > 0 && slot.current_job >= 0 &&
          silent_ms > static_cast<double>(timeout_ms_)) {
        handle_death(s, "went silent (heartbeat timeout)");
      }
    }
  }

  void record_failure(std::size_t idx, const std::string& error) {
    if (done_[idx]) return;
    api::JobOutcome outcome;
    outcome.job = std::move(jobs_[idx]);
    outcome.ok = false;
    outcome.error = error;
    out_.jobs[idx] = std::move(outcome);
    done_[idx] = 1;
    ++completed_;
  }

  void fail_remaining(const std::string& reason) {
    pending_.clear();
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      if (!done_[i]) {
        record_failure(i, "dispatch: " + reason +
                              "; job was never completed");
      }
    }
    flush_prefix();
  }

  void flush_prefix() {
    while (flushed_ < out_.jobs.size() && done_[flushed_]) {
      api::JobOutcome& outcome = out_.jobs[flushed_];
      if (options_.jsonl != nullptr) {
        const std::string* raw = outcome.ok && !raw_bodies_[flushed_].empty()
                                     ? &raw_bodies_[flushed_]
                                     : nullptr;
        *options_.jsonl
            << api::detail::jsonl_line(outcome, options_.jsonl_timing, raw)
                   .dump()
            << '\n';
        if (!options_.jsonl->good()) out_.jsonl_failed = true;
      }
      if (options_.on_result) options_.on_result(outcome);
      if (!options_.store_results) outcome.result = api::ExperimentResult{};
      raw_bodies_[flushed_].clear();
      raw_bodies_[flushed_].shrink_to_fit();
      ++flushed_;
    }
  }

  void shutdown_workers() {
    Frame shutdown;
    shutdown.type = FrameType::Shutdown;
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive) continue;
      send_frame(slot, shutdown);  // best-effort; EOF follows either way
      ::close(slot.write_fd);
      slot.write_fd = -1;
    }
    // Grace period for clean exits, then SIGKILL stragglers. Frames they
    // emit while draining are irrelevant now -- every job is accounted.
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(2000);
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive) continue;
      int wstatus = 0;
      pid_t reaped = 0;
      while ((reaped = ::waitpid(slot.pid, &wstatus, WNOHANG)) == 0 &&
             Clock::now() < deadline) {
        struct timespec ts = {0, 20 * 1000 * 1000};  // 20ms
        ::nanosleep(&ts, nullptr);
      }
      if (reaped == 0) {
        ::kill(slot.pid, SIGKILL);
        ::waitpid(slot.pid, &wstatus, 0);
      }
      if (slot.read_fd >= 0) ::close(slot.read_fd);
      slot.read_fd = -1;
      slot.pid = -1;
      slot.alive = false;
    }
  }

  void accumulate_cache(const api::CacheStats& stats) {
    cache_total_.hits += stats.hits;
    cache_total_.misses += stats.misses;
    cache_total_.corrupt += stats.corrupt;
    cache_total_.stores += stats.stores;
    cache_total_.skipped += stats.skipped;
  }

  std::vector<api::SweepJob> jobs_;
  const api::SuiteOptions& options_;
  api::SweepResult out_;
  std::vector<WorkerSlot> slots_;
  std::vector<std::string> worker_argv_;
  std::deque<std::size_t> pending_;
  std::vector<int> attempts_;
  std::vector<char> done_;
  std::vector<std::vector<std::pair<std::string, double>>> metrics_by_job_;
  std::vector<std::string> raw_bodies_;
  api::CacheStats cache_total_;
  std::size_t completed_ = 0;
  std::size_t flushed_ = 0;
  std::size_t restart_budget_ = 0;
  bool need_parse_ = false;
  int timeout_ms_ = 0;
};

}  // namespace

api::SweepResult run_dispatched(std::vector<api::SweepJob> jobs,
                                const std::string& suite_name,
                                const api::SuiteOptions& options) {
  SigpipeGuard sigpipe;
  return Dispatcher(std::move(jobs), suite_name, options).run();
}

}  // namespace deproto::dist
