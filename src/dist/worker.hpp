#pragma once

// The worker half of the cluster dispatcher: a process entered via
// `deproto-run --worker` that reads Job frames on stdin, executes each
// through the regular api::Experiment pipeline, and writes Result frames
// on stdout, until a Shutdown frame or end-of-stream.
//
// A Result frame's payload is two parts: a compact header JSON line --
//   {"job":N,"ok":true,"elapsed_seconds":...,"cached":false,
//    "metrics":{...},"cache":{...}}                      -- then '\n',
// then the raw canonical result dump (to_json(false).dump(); absent when
// ok is false). The worker pre-extracts the metric vector and serializes
// the series straight into columnar text while the simulation streams
// (ExperimentRun::stream_series), so neither end of the pipe ever holds a
// 10^6-period run as a JSON tree: the worker's RSS stays O(states x
// periods counts + dump text), and the dispatcher splices the dump bytes
// into its sinks verbatim. "cache" is the worker's cumulative CacheStats
// (present only when it has a cache); the dispatcher diffs/merges these
// into the suite-level accounting.

#include <cstddef>
#include <functional>

#include "api/result_cache.hpp"

namespace deproto::dist {

struct WorkerOptions {
  int read_fd = 0;   ///< job frames in (stdin under the dispatcher)
  int write_fd = 1;  ///< result frames out (stdout under the dispatcher)
  /// Heartbeat interval; > 0 starts a thread that emits a Heartbeat frame
  /// every interval (carrying the in-flight job index, -1 when idle) so
  /// the dispatcher can tell "slow job" from "hung worker". 0 disables.
  int heartbeat_ms = 0;
  /// Shared memoization directory, opened by the CLI from the --cache
  /// argv the dispatcher forwarded. Non-owning; may be null.
  api::ResultCache* cache = nullptr;
  /// Test hook, called with the job index before each execution --
  /// integration tests inject crashes/hangs/stdout noise here to exercise
  /// the dispatcher's fault handling.
  std::function<void(std::size_t job_index)> before_job;
};

/// Run the worker loop until Shutdown, end-of-stream, or a protocol
/// error. Returns the process exit code: 0 on clean shutdown (including
/// the dispatcher simply closing the pipe), nonzero on corrupt input or a
/// dead output pipe. Never throws for per-job failures -- those are
/// reported in Result frames with ok == false.
int run_worker(const WorkerOptions& options);

}  // namespace deproto::dist
