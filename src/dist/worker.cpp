#include "dist/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/experiment.hpp"
#include "api/job_metrics.hpp"
#include "api/json.hpp"
#include "api/spec.hpp"
#include "dist/wire.hpp"

namespace deproto::dist {

namespace {

using api::Json;

/// Accumulates the columnar "series" object of a result document as raw
/// text while points stream past, matching ExperimentResult::to_json's
/// serialization byte for byte (same json_number_text encoder, same
/// compact layout) without ever holding the PeriodPoint tree.
class SeriesTextBuilder {
 public:
  void add(const api::PeriodPoint& point) {
    if (counts_.size() < point.counts.size()) {
      counts_.resize(point.counts.size());
    }
    if (!time_.empty()) {
      time_ += ',';
      alive_ += ',';
      for (std::string& column : counts_) column += ',';
    }
    time_ += api::json_number_text(point.time);
    alive_ += api::json_number_text(static_cast<double>(point.total_alive));
    for (std::size_t s = 0; s < point.counts.size(); ++s) {
      counts_[s] += api::json_number_text(
          static_cast<double>(point.counts[s]));
    }
  }

  /// The series object with the accumulated columns spliced in raw.
  /// `num_states` pads the counts array when no point ever streamed (a
  /// zero-period run still serializes one empty column per state).
  [[nodiscard]] Json to_json(std::size_t num_states) const {
    std::string columns = "[";
    const std::size_t cols = std::max(counts_.size(), num_states);
    for (std::size_t s = 0; s < cols; ++s) {
      if (s > 0) columns += ',';
      columns += '[';
      if (s < counts_.size()) columns += counts_[s];
      columns += ']';
    }
    columns += ']';
    return Json::object()
        .set("time", Json::raw("[" + time_ + "]"))
        .set("alive", Json::raw("[" + alive_ + "]"))
        .set("counts", Json::raw(std::move(columns)));
  }

 private:
  std::string time_;
  std::string alive_;
  std::vector<std::string> counts_;
};

/// One executed (or replayed) job, ready to frame.
struct JobReport {
  Json header = Json::object();
  std::string body;  // raw result dump; empty when the job failed
};

Json cache_stats_json(const api::CacheStats& stats) {
  return Json::object()
      .set("hits", Json::number(stats.hits))
      .set("misses", Json::number(stats.misses))
      .set("corrupt", Json::number(stats.corrupt))
      .set("stores", Json::number(stats.stores))
      .set("skipped", Json::number(stats.skipped));
}

JobReport execute_job(const WorkerOptions& options, std::size_t job_index,
                      const Json& spec_json) {
  JobReport report;
  report.header.set("job", Json::number(job_index));

  bool ok = false;
  bool cached = false;
  std::string error;
  Json metrics = Json::object();
  const auto start = std::chrono::steady_clock::now();
  try {
    const api::ScenarioSpec spec = api::ScenarioSpec::from_json(spec_json);
    if (options.cache != nullptr) {
      if (std::optional<api::CachedEntry> entry =
              options.cache->load_entry(spec)) {
        report.body = std::move(entry->result_dump);
        metrics = std::move(entry->metrics);
        ok = true;
        cached = true;
      }
    }
    if (!ok) {
      api::Experiment experiment(spec);
      api::ExperimentRun run = experiment.launch();
      // Stream the series into columnar text as it happens: the full
      // PeriodPoint tree never exists in this process, which is the
      // per-job memory budget -- RSS is bounded by the dump text, not by
      // O(periods) of sample objects.
      SeriesTextBuilder series;
      run.stream_series(
          [&series](const api::PeriodPoint& point) { series.add(point); });
      run.advance(spec.periods);
      api::ExperimentResult result = run.finish();
      Json doc = result.to_json(/*include_timing=*/false);
      doc.set("series", series.to_json(result.state_names.size()));
      report.body = doc.dump();
      metrics = api::detail::metrics_to_json(
          api::detail::result_metrics(result));
      if (options.cache != nullptr) {
        options.cache->store_dump(spec, report.body, metrics);
      }
      ok = true;
    }
  } catch (const std::exception& e) {
    ok = false;
    report.body.clear();
    error = e.what();
    if (options.cache != nullptr) options.cache->note_skipped();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  report.header.set("ok", Json::boolean(ok));
  if (!ok) report.header.set("error", Json::string(error));
  report.header.set("elapsed_seconds", Json::number(elapsed));
  report.header.set("cached", Json::boolean(cached));
  if (ok) report.header.set("metrics", std::move(metrics));
  if (options.cache != nullptr) {
    report.header.set("cache", cache_stats_json(options.cache->stats()));
  }
  return report;
}

/// Emits Heartbeat frames every interval until stopped; shares the
/// transport with the main loop (FdTransport::send is frame-atomic).
class HeartbeatThread {
 public:
  HeartbeatThread(Transport& transport, int interval_ms,
                  const std::atomic<long>& current_job)
      : transport_(transport),
        interval_ms_(interval_ms),
        current_job_(current_job) {
    if (interval_ms_ > 0) thread_ = std::thread([this] { loop(); });
  }

  ~HeartbeatThread() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_));
      if (stop_) return;
      Frame beat;
      beat.type = FrameType::Heartbeat;
      beat.payload = Json::object()
                         .set("job", Json::number(static_cast<double>(
                                         current_job_.load())))
                         .dump();
      transport_.send(beat);  // a dead pipe ends the worker via the main
                              // loop's own send failure; ignore it here
    }
  }

  Transport& transport_;
  int interval_ms_;
  const std::atomic<long>& current_job_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace

int run_worker(const WorkerOptions& options) {
  // A dispatcher that died mid-read must surface as a failed send, not a
  // fatal SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  FdTransport transport(options.read_fd, options.write_fd);
  std::atomic<long> current_job{-1};
  HeartbeatThread heartbeat(transport, options.heartbeat_ms, current_job);

  Frame hello;
  hello.type = FrameType::Hello;
  hello.payload =
      Json::object()
          .set("pid", Json::number(static_cast<double>(::getpid())))
          .set("cache_enabled", Json::boolean(options.cache != nullptr))
          .dump();
  if (!transport.send(hello)) return 1;

  FrameDecoder decoder;
  char buf[64 * 1024];
  while (true) {
    Frame frame;
    std::string error;
    const FrameDecoder::Status status = decoder.next(&frame, &error);
    if (status == FrameDecoder::Status::Corrupt) {
      std::fprintf(stderr, "deproto-run --worker: corrupt input: %s\n",
                   error.c_str());
      return 1;
    }
    if (status == FrameDecoder::Status::NeedMore) {
      const long n = transport.read_some(buf, sizeof(buf));
      if (n == 0) return 0;  // dispatcher closed the pipe: clean exit
      if (n < 0) return 1;
      decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }

    if (frame.type == FrameType::Shutdown) return 0;
    if (frame.type != FrameType::Job) {
      std::fprintf(stderr, "deproto-run --worker: unexpected %s frame\n",
                   frame_type_name(frame.type));
      return 1;
    }

    JobReport report;
    try {
      const Json job = Json::parse(frame.payload);
      const std::size_t index = job.at("job").as_size();
      current_job.store(static_cast<long>(index));
      if (options.before_job) options.before_job(index);
      report = execute_job(options, index, job.at("spec"));
    } catch (const std::exception& e) {
      // Unparseable job payload: the dispatcher sent garbage (or a future
      // protocol). Fail loudly; it will reassign and account for us.
      std::fprintf(stderr, "deproto-run --worker: bad job frame: %s\n",
                   e.what());
      return 1;
    }
    current_job.store(-1);

    Frame result;
    result.type = FrameType::Result;
    result.payload = report.header.dump();
    result.payload += '\n';
    result.payload += report.body;
    if (!transport.send(result)) return 1;
  }
}

}  // namespace deproto::dist
