#include "sim/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deproto::sim::fault_plan {

void validate_failure_fraction(double fraction) {
  if (!(fraction >= 0.0 && fraction <= 1.0)) {
    throw std::invalid_argument("schedule_massive_failure: bad fraction");
  }
}

void validate_crash_recovery(double crash_prob,
                             double mean_downtime_periods) {
  if (!(crash_prob >= 0.0 && crash_prob <= 1.0) ||
      mean_downtime_periods < 0.0) {
    throw std::invalid_argument("set_crash_recovery: bad parameters");
  }
}

void validate_periods_per_hour(double periods_per_hour) {
  if (!(periods_per_hour > 0.0)) {
    throw std::invalid_argument("attach_churn: bad periods_per_hour");
  }
}

std::size_t failure_victims(double fraction, std::size_t total_alive) {
  return static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(total_alive)));
}

std::vector<ChurnEvent> trace_in_periods(const ChurnTrace& trace,
                                         double periods_per_hour,
                                         double min_time) {
  validate_periods_per_hour(periods_per_hour);
  std::vector<ChurnEvent> events;
  events.reserve(trace.events().size());
  for (ChurnEvent e : trace.events()) {
    e.time_hours =
        std::max(e.time_hours * periods_per_hour, min_time);  // now periods
    events.push_back(e);
  }
  return events;
}

double recovery_delay(Rng& rng, double mean_downtime_periods) {
  return 1.0 + rng.exponential_mean(mean_downtime_periods);
}

std::size_t first_period_at_or_after(double time) {
  if (!(time > 0.0)) return 0;
  return static_cast<std::size_t>(std::ceil(time));
}

}  // namespace deproto::sim::fault_plan
