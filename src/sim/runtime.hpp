#pragma once

// Generic interpreter: execute any synthesized ProtocolStateMachine over a
// simulated group, one protocol period at a time. Supports all five action
// kinds, message-loss injection, and both token routing modes of Section 6
// (full-membership directory, or TTL-bounded random walk).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/state_machine.hpp"
#include "sim/protocol.hpp"

namespace deproto::sim {

struct TokenRouting {
  enum class Mode {
    /// The executor knows which processes are in the target state (e.g. via
    /// a SWIM-style membership service) and hands the token straight to one
    /// of them; the token drops only when the state is empty.
    Directory,
    /// The token performs a random walk with a time-to-live; it drops when
    /// the TTL expires before meeting a process in the target state.
    RandomWalkTtl,
  };
  Mode mode = Mode::Directory;
  unsigned ttl = 8;

  friend bool operator==(const TokenRouting&, const TokenRouting&) = default;
};

struct RuntimeOptions {
  /// Per-connection-attempt failure probability f: every sampling probe
  /// (and push contact) independently fails with this probability.
  double message_loss = 0.0;
  TokenRouting tokens;
  /// Synchronous-update semantics: all actions read the states as of the
  /// period start (a "Jacobi" sweep), so the expected one-period update
  /// equals core::exact_drift exactly at any rate. The default (false)
  /// is the live "Gauss-Seidel" semantics of a real deployment, where a
  /// process observes the target's state at probe time; the two agree to
  /// O(rate^2) per period.
  bool simultaneous_updates = false;
  /// Opt-in pre-flight: run the static protocol verifier (analysis layer)
  /// before launching and refuse to run a machine with error-severity
  /// findings. Consumed by api::Experiment, ignored by the executor; off
  /// by default so existing specs, cache keys, and runs are untouched.
  bool verify_static = false;
  /// Opt-in pre-flight, one tier up: additionally build the exact
  /// finite-N Markov chain (analysis/exact_chain.hpp, at the analyzer's
  /// default small n) and refuse to launch on error findings *or* an
  /// exact.transient-trap -- a protocol the exact chain provably parks
  /// somewhere the mean field never predicted. Implies the static pass.
  /// Consumed by api::Experiment, ignored by the executor.
  bool verify_exact = false;

  friend bool operator==(const RuntimeOptions&,
                         const RuntimeOptions&) = default;
};

struct TokenStats {
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
};

class MachineExecutor final : public PeriodicProtocol {
 public:
  explicit MachineExecutor(core::ProtocolStateMachine machine,
                           RuntimeOptions options = {});

  [[nodiscard]] std::size_t num_states() const override {
    return machine_.num_states();
  }

  void execute_period(Group& group, Rng& rng,
                      MetricsCollector& metrics) override;

  [[nodiscard]] const core::ProtocolStateMachine& machine() const noexcept {
    return machine_;
  }
  [[nodiscard]] const TokenStats& token_stats() const noexcept {
    return tokens_;
  }

  /// Sampling probes sent in the last period / in total.
  [[nodiscard]] std::uint64_t probes_last_period() const noexcept {
    return probes_last_;
  }
  [[nodiscard]] std::uint64_t probes_total() const noexcept {
    return probes_total_;
  }

 private:
  /// Probe a target: returns its state, or nullopt if the connection
  /// attempt failed (message loss or crashed target).
  [[nodiscard]] std::optional<std::size_t> probe(const Group& group,
                                                 ProcessId self, Rng& rng);

  void route_token(Group& group, Rng& rng, std::size_t token_state,
                   std::size_t to_state);

  core::ProtocolStateMachine machine_;
  RuntimeOptions options_;
  TokenStats tokens_;
  std::uint64_t probes_last_ = 0;
  std::uint64_t probes_total_ = 0;
  std::vector<ProcessId> order_;  // scratch: per-period iteration order
  // Period-start snapshot used by simultaneous_updates mode.
  std::vector<std::uint8_t> snap_state_;
  std::vector<std::uint8_t> snap_alive_;
};

}  // namespace deproto::sim
