#pragma once

// Discrete-event kernel: a time-ordered queue of closures with stable
// FIFO tie-breaking at equal timestamps.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

namespace deproto::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  void schedule(double t, Handler fn);

  /// Schedule `fn` `delay` time units from now.
  void schedule_in(double delay, Handler fn) { schedule(now_ + delay, fn); }

  [[nodiscard]] double now() const noexcept { return now_; }
  /// Timestamp of the earliest pending event; +infinity when empty (so
  /// callers pacing the queue against an external clock -- the net
  /// backend's wall-clock loop -- can min() it against their horizon).
  [[nodiscard]] double next_time() const noexcept {
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : heap_.top().time;
  }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Pop and run the earliest event. Returns false when the queue is empty.
  bool step();

  /// Run events until the queue empties or the next event is later than
  /// `t_end`; the clock then advances to t_end.
  void run_until(double t_end);

  /// Drain everything (use only when the event population is finite).
  void run_all();

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace deproto::sim
