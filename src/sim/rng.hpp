#pragma once

// Seeded randomness for the simulators. The paper's implementation used the
// Mersenne Twister; we use std::mt19937_64 with explicit seeding so every
// experiment is reproducible, plus stream splitting so per-process RNGs are
// decorrelated.

#include <cstdint>
#include <random>
#include <vector>

namespace deproto::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01();

  /// Uniform integer in [0, n). n must be positive.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [0, n) excluding `self` (n must be >= 2).
  [[nodiscard]] std::uint64_t uniform_int_excluding(std::uint64_t n,
                                                    std::uint64_t self);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Binomial(n, p) sample. Hand-rolled (waiting-time inversion / BTPE
  /// rejection) rather than std::binomial_distribution: the libstdc++
  /// implementation races on glibc's global `signgam` via lgamma() when
  /// sweep workers draw concurrently, and its engine->variate mapping is
  /// implementation-defined (ours is stable across standard libraries).
  [[nodiscard]] std::uint64_t binomial(std::uint64_t n, double p);

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential_mean(double mean);

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// k distinct values from [0, n), in random order. k <= n.
  [[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(
      std::uint64_t n, std::uint64_t k);

  /// Deterministically derive an independent stream (for per-process RNGs).
  [[nodiscard]] Rng split(std::uint64_t stream_id) const;

  /// Access the raw engine (for std::shuffle).
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  /// binomial() after the p <= 1/2 reduction: picks inversion vs BTPE.
  [[nodiscard]] std::uint64_t binomial_sample(std::uint64_t n, double p);

  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace deproto::sim
