#include "sim/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace deproto::sim {

namespace {

/// splitmix64: the recommended seeder for Mersenne Twister streams.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// The binomial sampler is hand-rolled rather than delegated to
// std::binomial_distribution for two load-bearing reasons:
//
//  * Thread safety. libstdc++'s implementation calls std::lgamma() both
//    when a distribution is (re)parameterized and inside its rejection
//    loop, and glibc's lgamma writes the process-global `signgam` --
//    concurrent SuiteRunner workers race on it (flagged by TSan). The
//    sampler below touches no shared state.
//  * Determinism. The engine -> variate mapping of the standard
//    distributions is implementation-defined, so cached sweep results
//    would silently change across standard libraries. This mapping is
//    ours and therefore stable.
//
// Small n*p uses the exact waiting-time (geometric-gap) inversion; large
// n*p uses the BTPE rejection scheme of Kachitvichyanukul & Schmeiser,
// "Binomial random variate generation" (CACM 31(2), 1988), which samples
// from a piecewise triangle/parallelogram/exponential hat over the scaled
// pmf. Both paths require p <= 1/2; the caller flips larger p.

/// Exact inversion for small n*p: successes are counted by summing
/// geometric(p) gaps until the n trials are exhausted. Expected cost is
/// n*p + 1 uniforms. Requires 0 < p <= 1/2.
std::uint64_t binomial_inversion(std::uint64_t n, double p, Rng& rng) {
  const double log_q = std::log1p(-p);  // < 0
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;
  for (;;) {
    const double u = 1.0 - rng.uniform01();  // (0, 1]: keep log() finite
    // Gap to the next success is 1 + floor(log(u)/log(1-p)) trials.
    const double gap = std::floor(std::log(u) / log_q);
    if (gap >= static_cast<double>(n - trials)) return successes;
    trials += static_cast<std::uint64_t>(gap) + 1;
    ++successes;
  }
}

/// One Stirling-series tail term of log(Gamma(x)): the published BTPE
/// acceptance test assembles the log pmf ratio from four of these.
double btpe_stirling_tail(double x) {
  const double x2 = x * x;
  return (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / x2) / x2) / x2) / x2) /
         x / 166320.0;
}

/// BTPE rejection sampler. Requires n*p >= 30 and 0 < p <= 1/2 (the
/// hat-function constants below are only valid there). Step numbering in
/// the comments follows the 1988 paper.
std::uint64_t binomial_btpe(std::uint64_t n_int, double p, Rng& rng) {
  const double n = static_cast<double>(n_int);
  const double r = p;
  const double q = 1.0 - r;
  const double fm = n * r + r;
  const double m = std::floor(fm);  // mode of the pmf
  const double nrq = n * r * q;
  // Step 0: the hat -- a triangle over the mode flanked by a
  // parallelogram, with exponential tails beyond [xl, xr].
  const double p1 = std::floor(2.195 * std::sqrt(nrq) - 4.6 * q) + 0.5;
  const double xm = m + 0.5;
  const double xl = xm - p1;
  const double xr = xm + p1;
  const double c = 0.134 + 20.5 / (15.3 + m);
  double a = (fm - xl) / (fm - xl * r);
  const double lambda_l = a * (1.0 + 0.5 * a);
  a = (xr - fm) / (xr * q);
  const double lambda_r = a * (1.0 + 0.5 * a);
  const double p2 = p1 * (1.0 + 2.0 * c);
  const double p3 = p2 + c / lambda_l;
  const double p4 = p3 + c / lambda_r;

  for (;;) {
    // Step 1: pick a hat region by u, a vertical coordinate by v.
    const double u = rng.uniform01() * p4;
    double v = rng.uniform01();
    double y;
    if (u <= p1) {
      // Triangular core: accept immediately.
      y = std::floor(xm - p1 * v + u);
      return static_cast<std::uint64_t>(y);
    }
    if (u <= p2) {
      // Step 2: parallelogram beside the triangle.
      const double x = xl + (u - p1) / c;
      v = v * c + 1.0 - std::fabs(m - x + 0.5) / p1;
      if (v > 1.0) continue;
      y = std::floor(x);
    } else if (u <= p3) {
      // Step 3: left exponential tail. v == 0 would send floor() to
      // -infinity; reject it (measure zero).
      y = std::floor(xl + std::log(v) / lambda_l);
      if (y < 0.0 || v == 0.0) continue;
      v = v * (u - p2) * lambda_l;
    } else {
      // Step 4: right exponential tail.
      y = std::floor(xr - std::log(v) / lambda_r);
      if (y > n || v == 0.0) continue;
      v = v * (u - p3) * lambda_r;
    }
    // Step 5: accept iff v <= f(y)/f(m). Near the mode (or deep in a
    // tail) the ratio is a short product; otherwise squeeze on a normal
    // bound first and fall through to the Stirling-series comparison.
    const double k = std::fabs(y - m);
    if (k <= 20.0 || k >= nrq / 2.0 - 1.0) {
      const double s = r / q;
      const double aa = s * (n + 1.0);
      double f = 1.0;
      if (m < y) {
        for (double i = m + 1.0; i <= y; i += 1.0) f *= (aa / i - s);
      } else if (m > y) {
        for (double i = y + 1.0; i <= m; i += 1.0) f /= (aa / i - s);
      }
      if (v <= f) return static_cast<std::uint64_t>(y);
      continue;
    }
    const double rho =
        (k / nrq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / nrq + 0.5);
    const double t = -k * k / (2.0 * nrq);
    const double log_v = std::log(v);
    if (log_v < t - rho) return static_cast<std::uint64_t>(y);  // accept
    if (log_v > t + rho) continue;                              // reject
    // Step 5.3: the exact log pmf ratio via four Stirling tails.
    const double x1 = y + 1.0;
    const double f1 = m + 1.0;
    const double z = n + 1.0 - m;
    const double w = n - y + 1.0;
    // The tails carry the sign of their lgamma in log C(n,m) - log C(n,y).
    const double log_f =
        xm * std::log(f1 / x1) + (n - m + 0.5) * std::log(z / w) +
        (y - m) * std::log(w * r / (x1 * q)) + btpe_stirling_tail(f1) +
        btpe_stirling_tail(z) - btpe_stirling_tail(x1) - btpe_stirling_tail(w);
    if (log_v <= log_f) return static_cast<std::uint64_t>(y);
  }
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  engine_.seed(splitmix64(s));
}

double Rng::uniform01() {
  return std::generate_canonical<double, 53>(engine_);
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_int: n == 0");
  return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
}

std::uint64_t Rng::uniform_int_excluding(std::uint64_t n,
                                         std::uint64_t self) {
  if (n < 2) throw std::invalid_argument("Rng::uniform_int_excluding: n < 2");
  // Draw from [0, n-1) and skip over `self`.
  const std::uint64_t draw =
      std::uniform_int_distribution<std::uint64_t>(0, n - 2)(engine_);
  return draw >= self ? draw + 1 : draw;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Both samplers need p <= 1/2; by symmetry the flipped draw counts the
  // failures instead.
  if (p > 0.5) return n - binomial_sample(n, 1.0 - p);
  return binomial_sample(n, p);
}

std::uint64_t Rng::binomial_sample(std::uint64_t n, double p) {
  if (static_cast<double>(n) * p < 30.0) return binomial_inversion(n, p, *this);
  return binomial_btpe(n, p, *this);
}

double Rng::exponential_mean(double mean) {
  if (!(mean > 0.0)) {
    throw std::invalid_argument("Rng::exponential_mean: mean <= 0");
  }
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an index vector.
    std::vector<std::uint64_t> idx(n);
    for (std::uint64_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint64_t i = 0; i < k; ++i) {
      std::swap(idx[i], idx[i + uniform_int(n - i)]);
    }
    idx.resize(k);
    return idx;
  }
  // Sparse case: rejection sampling.
  std::unordered_set<std::uint64_t> chosen;
  std::vector<std::uint64_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const std::uint64_t v = uniform_int(n);
    if (chosen.insert(v).second) out.push_back(v);
  }
  return out;
}

Rng Rng::split(std::uint64_t stream_id) const {
  std::uint64_t s = seed_ ^ (0xD1B54A32D192ED03ULL * (stream_id + 1));
  return Rng(splitmix64(s));
}

}  // namespace deproto::sim
