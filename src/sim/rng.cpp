#include "sim/rng.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace deproto::sim {

namespace {

/// splitmix64: the recommended seeder for Mersenne Twister streams.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  engine_.seed(splitmix64(s));
}

double Rng::uniform01() {
  return std::generate_canonical<double, 53>(engine_);
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_int: n == 0");
  return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
}

std::uint64_t Rng::uniform_int_excluding(std::uint64_t n,
                                         std::uint64_t self) {
  if (n < 2) throw std::invalid_argument("Rng::uniform_int_excluding: n < 2");
  // Draw from [0, n-1) and skip over `self`.
  const std::uint64_t draw =
      std::uniform_int_distribution<std::uint64_t>(0, n - 2)(engine_);
  return draw >= self ? draw + 1 : draw;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  return std::binomial_distribution<std::uint64_t>(n, p)(engine_);
}

double Rng::exponential_mean(double mean) {
  if (!(mean > 0.0)) {
    throw std::invalid_argument("Rng::exponential_mean: mean <= 0");
  }
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an index vector.
    std::vector<std::uint64_t> idx(n);
    for (std::uint64_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint64_t i = 0; i < k; ++i) {
      std::swap(idx[i], idx[i + uniform_int(n - i)]);
    }
    idx.resize(k);
    return idx;
  }
  // Sparse case: rejection sampling.
  std::unordered_set<std::uint64_t> chosen;
  std::vector<std::uint64_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const std::uint64_t v = uniform_int(n);
    if (chosen.insert(v).second) out.push_back(v);
  }
  return out;
}

Rng Rng::split(std::uint64_t stream_id) const {
  std::uint64_t s = seed_ ^ (0xD1B54A32D192ED03ULL * (stream_id + 1));
  return Rng(splitmix64(s));
}

}  // namespace deproto::sim
