#pragma once

// Fully asynchronous execution backend. In machine mode each process runs
// its own protocol-period timer (arbitrary phase, bounded drift -- the
// paper's clock model), sampling probes are real request/response message
// pairs over the unreliable network, and decisions are taken when the last
// response (or loss surrogate) arrives. This validates that the protocols
// need no global clock, synchronization, or agreement.
//
// A second constructor accepts any hand-written PeriodicProtocol and drives
// it from a (drifting, arbitrary-phase) period timer, so the paper's case
// studies (protocols/epidemic|lv_majority|endemic_replication) and any
// MachineExecutor compose with the event backend's fault surface -- churn
// playback, crash-recovery, targeted crashes -- exactly like synthesized
// machines do.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/state_machine.hpp"
#include "sim/event_queue.hpp"
#include "sim/group.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/protocol.hpp"
#include "sim/runtime.hpp"
#include "sim/simulator.hpp"

namespace deproto::sim {

struct EventSimOptions {
  NetworkOptions network;
  /// Per-process period = 1 * Uniform(1 - drift, 1 + drift).
  double clock_drift = 0.05;
  /// Token routing (shared with the sync runtime's RuntimeOptions):
  /// directory handoff, or TTL-bounded random walks riding on real
  /// messages.
  TokenRouting tokens;
};

class EventSimulator final : public Simulator {
 public:
  /// Machine mode: interpret a synthesized state machine, one independent
  /// timer per process.
  EventSimulator(std::size_t n, core::ProtocolStateMachine machine,
                 std::uint64_t seed, EventSimOptions options = {});

  /// Protocol-driver mode: execute a hand-written PeriodicProtocol one
  /// whole period per tick of a drifting, arbitrary-phase period timer.
  /// The protocol does its own (synchronous) sampling; the network carries
  /// no messages in this mode.
  EventSimulator(std::size_t n, PeriodicProtocol& protocol,
                 std::uint64_t seed, EventSimOptions options = {});

  [[nodiscard]] Group& group() noexcept override { return group_; }
  [[nodiscard]] const Group& group() const noexcept { return group_; }
  [[nodiscard]] MetricsCollector& metrics() noexcept override {
    return metrics_;
  }
  [[nodiscard]] Rng& rng() noexcept override { return rng_; }
  [[nodiscard]] std::size_t num_states() const noexcept override {
    return group_.num_states();
  }
  [[nodiscard]] std::size_t count(std::size_t state) const override {
    return group_.count(state);
  }
  [[nodiscard]] std::size_t total_alive() const noexcept override {
    return group_.total_alive();
  }
  [[nodiscard]] const Network& network() const noexcept { return network_; }
  [[nodiscard]] double now() const noexcept override { return queue_.now(); }

  void schedule_massive_failure(double time, double fraction) override;
  /// Crash one process at `time`; if `recover_time` >= 0, revive it then
  /// into the protocol's rejoin_state() (state 0 for raw machines).
  void schedule_crash(ProcessId pid, double time,
                      double recover_time = -1.0) override;
  void set_crash_recovery(double crash_prob,
                          double mean_downtime_periods) override;
  void attach_churn(const ChurnTrace& trace, double periods_per_hour) override;

  /// Run until absolute time `t_end` (periods); metrics sample each unit.
  void run_until(double t_end);

  /// Simulator interface: run_until(now() + periods).
  void run_for(double periods) override;

  void seed_states(const std::vector<std::size_t>& counts) override;

 private:
  EventSimulator(std::size_t n, std::optional<core::ProtocolStateMachine> mac,
                 PeriodicProtocol* protocol, std::uint64_t seed,
                 EventSimOptions options);

  [[nodiscard]] std::size_t rejoin_state() const {
    return protocol_ != nullptr ? protocol_->rejoin_state() : 0;
  }
  void crash_process(ProcessId pid);
  void note_mass_crashed(ProcessId pid);
  void recover_process(ProcessId pid);
  void arm_timer(ProcessId pid);
  void on_tick(ProcessId pid, std::uint64_t epoch);
  void on_driver_tick();
  void on_crash_recovery_tick(std::uint64_t epoch);
  void run_action(ProcessId pid, std::size_t action_index);
  void route_token_directory(std::size_t token_state, std::size_t to_state);
  void route_token_walk(std::size_t token_state, std::size_t to_state,
                        unsigned ttl_left);
  void sample_metrics();

  std::optional<core::ProtocolStateMachine> machine_;  // machine mode
  PeriodicProtocol* protocol_ = nullptr;               // driver mode
  EventSimOptions options_;
  EventQueue queue_;
  Rng rng_;
  Group group_;
  Network network_;
  MetricsCollector metrics_;
  std::vector<double> period_of_;  // per-process period length
  // Guards against stale timers: bumped on every crash, so a tick armed
  // before the crash is ignored even if the process recovered meanwhile.
  std::vector<std::uint64_t> timer_epoch_;
  double driver_period_ = 1.0;     // driver mode period length
  double crash_prob_ = 0.0;        // background crash-recovery, per period
  double mean_downtime_ = 0.0;     // 0 = crash-stop
  // Bumped by attach_churn: queued events from a replaced trace no-op.
  std::uint64_t churn_epoch_ = 0;
  // Bumped by set_crash_recovery: a superseded tick chain no-ops.
  std::uint64_t recovery_epoch_ = 0;
  double next_sample_ = 0.0;
};

}  // namespace deproto::sim
