#pragma once

// Fully asynchronous execution of a synthesized machine: each process runs
// its own protocol-period timer (arbitrary phase, bounded drift -- the
// paper's clock model), sampling probes are real request/response message
// pairs over the unreliable network, and decisions are taken when the last
// response (or loss surrogate) arrives. This validates that the protocols
// need no global clock, synchronization, or agreement.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/state_machine.hpp"
#include "sim/group.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"

namespace deproto::sim {

struct EventSimOptions {
  NetworkOptions network;
  /// Per-process period = 1 * Uniform(1 - drift, 1 + drift).
  double clock_drift = 0.05;
  /// Sampling mode for tokens (directory only in the event-driven runtime;
  /// random-walk tokens ride on real messages).
  unsigned token_ttl = 8;
  bool token_random_walk = false;
};

class EventSimulator {
 public:
  EventSimulator(std::size_t n, core::ProtocolStateMachine machine,
                 std::uint64_t seed, EventSimOptions options = {});

  [[nodiscard]] Group& group() noexcept { return group_; }
  [[nodiscard]] MetricsCollector& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Network& network() const noexcept { return network_; }
  [[nodiscard]] double now() const noexcept { return queue_.now(); }

  /// Crash `fraction` of alive processes at absolute time t (in periods).
  void schedule_massive_failure(double t, double fraction);
  /// Crash one process at time t; optionally recover it at `recover_t`
  /// (< 0 means never) into state `recover_state`.
  void schedule_crash(ProcessId pid, double t, double recover_t = -1.0,
                      std::size_t recover_state = 0);

  /// Run until absolute time `t_end` (periods); metrics sample each unit.
  void run_until(double t_end);

  /// Distribute initial states: counts[s] processes in state s.
  void seed_states(const std::vector<std::size_t>& counts);

 private:
  void arm_timer(ProcessId pid);
  void on_tick(ProcessId pid);
  void run_action(ProcessId pid, std::size_t action_index);
  void route_token_directory(std::size_t token_state, std::size_t to_state);
  void route_token_walk(std::size_t token_state, std::size_t to_state,
                        unsigned ttl_left);
  void sample_metrics();

  core::ProtocolStateMachine machine_;
  EventSimOptions options_;
  EventQueue queue_;
  Rng rng_;
  Group group_;
  Network network_;
  MetricsCollector metrics_;
  std::vector<double> period_of_;  // per-process period length
  double next_sample_ = 0.0;
};

}  // namespace deproto::sim
