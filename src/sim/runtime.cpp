#include "sim/runtime.hpp"

#include <algorithm>

namespace deproto::sim {

MachineExecutor::MachineExecutor(core::ProtocolStateMachine machine,
                                 RuntimeOptions options)
    : machine_(std::move(machine)), options_(options) {}

std::optional<std::size_t> MachineExecutor::probe(const Group& group,
                                                  ProcessId self, Rng& rng) {
  ++probes_last_;
  const ProcessId target = group.random_target(self, rng);
  if (options_.message_loss > 0.0 && rng.bernoulli(options_.message_loss)) {
    return std::nullopt;  // connection attempt failed
  }
  if (options_.simultaneous_updates) {
    if (!snap_alive_[target]) return std::nullopt;
    return snap_state_[target];
  }
  if (!group.alive(target)) return std::nullopt;  // fruitless contact
  return group.state_of(target);
}

void MachineExecutor::route_token(Group& group, Rng& rng,
                                  std::size_t token_state,
                                  std::size_t to_state) {
  ++tokens_.generated;
  if (options_.tokens.mode == TokenRouting::Mode::Directory) {
    if (group.count(token_state) == 0) {
      ++tokens_.dropped;  // "If no processes are in state x, drop the token"
      return;
    }
    const ProcessId receiver = group.random_member(token_state, rng);
    group.transition(receiver, to_state);
    ++tokens_.delivered;
    return;
  }
  // TTL random walk: each hop visits a uniformly random process; the first
  // hop that lands on an alive process in the token state consumes it.
  for (unsigned hop = 0; hop < options_.tokens.ttl; ++hop) {
    const auto target =
        static_cast<ProcessId>(rng.uniform_int(group.size()));
    if (options_.message_loss > 0.0 && rng.bernoulli(options_.message_loss)) {
      ++tokens_.dropped;  // the token message itself was lost
      return;
    }
    if (group.alive(target) && group.state_of(target) == token_state) {
      group.transition(target, to_state);
      ++tokens_.delivered;
      return;
    }
  }
  ++tokens_.dropped;
}

void MachineExecutor::execute_period(Group& group, Rng& rng,
                                     MetricsCollector& /*metrics*/) {
  probes_last_ = 0;

  // Iterate all processes in a fresh random order each period. A process
  // executes the action list of the state it holds when its turn comes; it
  // stops after its first firing transition (one transition per period --
  // simultaneous firings are O(dt^2) events the mean field ignores).
  const std::size_t n = group.size();
  if (order_.size() != n) {
    order_.resize(n);
    for (ProcessId pid = 0; pid < n; ++pid) order_[pid] = pid;
  }
  std::shuffle(order_.begin(), order_.end(), rng.engine());

  const bool jacobi = options_.simultaneous_updates;
  if (jacobi) {
    snap_state_.resize(n);
    snap_alive_.resize(n);
    for (ProcessId pid = 0; pid < n; ++pid) {
      snap_state_[pid] = static_cast<std::uint8_t>(group.state_of(pid));
      snap_alive_[pid] = group.alive(pid) ? 1 : 0;
    }
  }

  for (ProcessId pid : order_) {
    if (!group.alive(pid)) continue;
    // In Jacobi mode a process acts as its period-start state; if someone
    // already moved it this period, it loses its turn.
    const std::size_t state =
        jacobi ? snap_state_[pid] : group.state_of(pid);
    if (jacobi && group.state_of(pid) != state) continue;

    for (std::size_t action_idx : machine_.actions_of(state)) {
      const core::Action& action = machine_.actions()[action_idx];
      bool transitioned = false;

      std::visit(
          [&](const auto& a) {
            using T = std::decay_t<decltype(a)>;
            if constexpr (std::is_same_v<T, core::FlippingAction>) {
              if (rng.bernoulli(a.coin_bias)) {
                group.transition(pid, a.to_state);
                transitioned = true;
              }
            } else if constexpr (std::is_same_v<T, core::SamplingAction>) {
              bool match = true;
              for (std::size_t k = 0; match && k < a.same_state_samples;
                   ++k) {
                const auto s = probe(group, pid, rng);
                match = s.has_value() && *s == a.from_state;
              }
              for (std::size_t target : a.target_states) {
                if (!match) break;
                const auto s = probe(group, pid, rng);
                match = s.has_value() && *s == target;
              }
              if (match && rng.bernoulli(a.coin_bias)) {
                group.transition(pid, a.to_state);
                transitioned = true;
              }
            } else if constexpr (std::is_same_v<T, core::TokenizingAction>) {
              bool match = true;
              for (std::size_t k = 0; match && k < a.same_state_samples;
                   ++k) {
                const auto s = probe(group, pid, rng);
                match = s.has_value() && *s == a.executor_state;
              }
              for (std::size_t target : a.target_states) {
                if (!match) break;
                const auto s = probe(group, pid, rng);
                match = s.has_value() && *s == target;
              }
              if (match && rng.bernoulli(a.coin_bias)) {
                // The executor does not transition; the token does the work.
                route_token(group, rng, a.token_state, a.to_state);
              }
            } else if constexpr (std::is_same_v<T, core::PushAction>) {
              for (unsigned k = 0; k < a.fanout; ++k) {
                const ProcessId target = group.random_target(pid, rng);
                ++probes_last_;
                if (options_.message_loss > 0.0 &&
                    rng.bernoulli(options_.message_loss)) {
                  continue;
                }
                if (!group.alive(target)) continue;
                const std::size_t observed =
                    jacobi ? snap_state_[target] : group.state_of(target);
                // Live recheck prevents double-converting a target two
                // pushers both saw as convertible in the snapshot.
                if (observed == a.target_state &&
                    group.state_of(target) == a.target_state &&
                    rng.bernoulli(a.coin_bias)) {
                  group.transition(target, a.to_state);
                }
              }
            } else if constexpr (std::is_same_v<T,
                                                core::AnyOfSamplingAction>) {
              bool any = false;
              for (unsigned k = 0; !any && k < a.fanout; ++k) {
                const auto s = probe(group, pid, rng);
                any = s.has_value() && *s == a.match_state;
              }
              if (any && rng.bernoulli(a.coin_bias)) {
                group.transition(pid, a.to_state);
                transitioned = true;
              }
            }
          },
          action);

      if (transitioned) break;
    }
  }
  probes_total_ += probes_last_;
}

}  // namespace deproto::sim
