#include "sim/event_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "sim/fault_plan.hpp"

namespace deproto::sim {

EventSimulator::EventSimulator(std::size_t n,
                               std::optional<core::ProtocolStateMachine> mac,
                               PeriodicProtocol* protocol, std::uint64_t seed,
                               EventSimOptions options)
    : machine_(std::move(mac)),
      protocol_(protocol),
      options_(options),
      queue_(),
      rng_(seed),
      group_(n, machine_.has_value() ? machine_->num_states()
                                     : protocol->num_states()),
      network_(queue_, rng_, options.network),
      metrics_(group_.num_states()) {
  if (!(options_.clock_drift >= 0.0 && options_.clock_drift < 0.5)) {
    throw std::invalid_argument("EventSimulator: bad clock drift");
  }
  if (protocol_ != nullptr) {
    // Driver mode: one whole-group period per tick of a single drifting,
    // arbitrary-phase timer.
    driver_period_ =
        rng_.uniform(1.0 - options_.clock_drift, 1.0 + options_.clock_drift);
    queue_.schedule(rng_.uniform01() * driver_period_,
                    [this] { on_driver_tick(); });
    return;
  }
  period_of_.resize(n);
  timer_epoch_.assign(n, 0);
  for (ProcessId pid = 0; pid < n; ++pid) {
    period_of_[pid] =
        rng_.uniform(1.0 - options_.clock_drift, 1.0 + options_.clock_drift);
    // Arbitrary phase: the first tick falls anywhere in the first period.
    const ProcessId copy = pid;
    queue_.schedule(rng_.uniform01() * period_of_[pid],
                    [this, copy] { on_tick(copy, 0); });
  }
}

EventSimulator::EventSimulator(std::size_t n,
                               core::ProtocolStateMachine machine,
                               std::uint64_t seed, EventSimOptions options)
    : EventSimulator(n, std::optional(std::move(machine)), nullptr, seed,
                     options) {}

EventSimulator::EventSimulator(std::size_t n, PeriodicProtocol& protocol,
                               std::uint64_t seed, EventSimOptions options)
    : EventSimulator(n, std::nullopt, &protocol, seed, options) {}

void EventSimulator::seed_states(const std::vector<std::size_t>& counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (counts.size() > group_.num_states() || total > group_.size()) {
    throw std::invalid_argument("seed_states: bad counts");
  }
  ProcessId pid = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    for (std::size_t k = 0; k < counts[s]; ++k, ++pid) {
      group_.transition(pid, s);
    }
  }
}

void EventSimulator::crash_process(ProcessId pid) {
  if (!group_.alive(pid)) return;
  if (protocol_ != nullptr) protocol_->on_crash(pid);
  group_.crash(pid);
  if (!timer_epoch_.empty()) ++timer_epoch_[pid];
}

void EventSimulator::note_mass_crashed(ProcessId pid) {
  // Bookkeeping for victims Group::crash_random_alive already crashed:
  // fire the protocol hook (after the crash, like the sync backend's
  // massive-failure path) and invalidate any pending timer.
  if (protocol_ != nullptr) protocol_->on_crash(pid);
  if (!timer_epoch_.empty()) ++timer_epoch_[pid];
}

void EventSimulator::recover_process(ProcessId pid) {
  if (group_.alive(pid)) return;
  group_.recover(pid, rejoin_state());
  if (machine_.has_value()) arm_timer(pid);
  // Driver mode: the group-wide period timer keeps running; the revived
  // process simply participates in the next execute_period.
}

void EventSimulator::schedule_massive_failure(double time, double fraction) {
  fault_plan::validate_failure_fraction(fraction);
  queue_.schedule(std::max(time, queue_.now()), [this, fraction] {
    const std::size_t victims =
        fault_plan::failure_victims(fraction, group_.total_alive());
    for (ProcessId pid : group_.crash_random_alive(victims, rng_)) {
      note_mass_crashed(pid);
    }
  });
}

void EventSimulator::schedule_crash(ProcessId pid, double time,
                                    double recover_time) {
  if (pid >= group_.size()) return;  // ignored, like the sync backend
  queue_.schedule(std::max(time, queue_.now()),
                  [this, pid] { crash_process(pid); });
  if (recover_time >= 0.0) {
    queue_.schedule(std::max(recover_time, queue_.now()),
                    [this, pid] { recover_process(pid); });
  }
}

void EventSimulator::set_crash_recovery(double crash_prob,
                                        double mean_downtime_periods) {
  fault_plan::validate_crash_recovery(crash_prob, mean_downtime_periods);
  // Each call starts a fresh tick chain; any chain already in the queue
  // carries a stale epoch and dies at its next tick, so reconfiguring
  // (including disarm + re-arm within one period) never stacks chains.
  const std::uint64_t epoch = ++recovery_epoch_;
  crash_prob_ = crash_prob;
  mean_downtime_ = mean_downtime_periods;
  if (crash_prob_ > 0.0) {
    queue_.schedule_in(1.0, [this, epoch] { on_crash_recovery_tick(epoch); });
  }
}

void EventSimulator::on_crash_recovery_tick(std::uint64_t epoch) {
  if (epoch != recovery_epoch_) return;  // reconfigured; chain abandoned
  const std::size_t crashes =
      rng_.binomial(group_.total_alive(), crash_prob_);
  for (ProcessId pid : group_.crash_random_alive(crashes, rng_)) {
    note_mass_crashed(pid);
    if (mean_downtime_ > 0.0) {
      // Downtime quantization is shared with the sync backend: one period
      // (the crash is only noticed at the next boundary) plus an
      // exponential tail. Recoveries outlive a later disarm, as the sync
      // backend's heap does.
      const ProcessId copy = pid;
      queue_.schedule_in(fault_plan::recovery_delay(rng_, mean_downtime_),
                         [this, copy] { recover_process(copy); });
    }
  }
  queue_.schedule_in(1.0, [this, epoch] { on_crash_recovery_tick(epoch); });
}

void EventSimulator::attach_churn(const ChurnTrace& trace,
                                  double periods_per_hour) {
  // Attaching replaces any earlier trace (the sync backend's semantics):
  // events already in the queue carry the previous epoch and become
  // no-ops, since the queue offers no cancellation.
  const std::uint64_t epoch = ++churn_epoch_;
  for (const ChurnEvent& e :
       fault_plan::trace_in_periods(trace, periods_per_hour, queue_.now())) {
    if (e.host >= group_.size()) continue;
    const double t = e.time_hours;  // already converted to periods
    const ProcessId pid = e.host;
    if (e.up) {
      queue_.schedule(t, [this, pid, epoch] {
        if (epoch == churn_epoch_) recover_process(pid);
      });
    } else {
      queue_.schedule(t, [this, pid, epoch] {
        if (epoch == churn_epoch_) crash_process(pid);
      });
    }
  }
}

void EventSimulator::arm_timer(ProcessId pid) {
  const std::uint64_t epoch = timer_epoch_[pid];
  queue_.schedule_in(period_of_[pid],
                     [this, pid, epoch] { on_tick(pid, epoch); });
}

void EventSimulator::on_tick(ProcessId pid, std::uint64_t epoch) {
  // Stale timers (armed before a crash) die here, even if the process has
  // since recovered (recovery armed a fresh-epoch timer).
  if (epoch != timer_epoch_[pid] || !group_.alive(pid)) return;
  const std::size_t state = group_.state_of(pid);
  for (std::size_t idx : machine_->actions_of(state)) {
    run_action(pid, idx);
  }
  arm_timer(pid);
}

void EventSimulator::on_driver_tick() {
  protocol_->execute_period(group_, rng_, metrics_);
  queue_.schedule_in(driver_period_, [this] { on_driver_tick(); });
}

void EventSimulator::route_token_directory(std::size_t token_state,
                                           std::size_t to_state) {
  if (group_.count(token_state) == 0) return;  // dropped
  const ProcessId receiver = group_.random_member(token_state, rng_);
  network_.send([this, receiver, token_state, to_state] {
    if (group_.alive(receiver) && group_.state_of(receiver) == token_state) {
      group_.transition(receiver, to_state);
    }
  });
}

void EventSimulator::route_token_walk(std::size_t token_state,
                                      std::size_t to_state,
                                      unsigned ttl_left) {
  if (ttl_left == 0) return;  // expired
  const auto target = static_cast<ProcessId>(rng_.uniform_int(group_.size()));
  network_.send([this, target, token_state, to_state, ttl_left] {
    if (group_.alive(target) && group_.state_of(target) == token_state) {
      group_.transition(target, to_state);
      return;
    }
    route_token_walk(token_state, to_state, ttl_left - 1);
  });
}

void EventSimulator::run_action(ProcessId pid, std::size_t action_index) {
  const core::Action& action = machine_->actions()[action_index];

  // Probe r targets; `done(states)` runs when every response (or loss
  // surrogate) has arrived. Lost/crash responses arrive as nullopt.
  auto probe_all =
      [this, pid](std::size_t count,
                  std::function<void(
                      const std::vector<std::optional<std::size_t>>&)>
                      done) {
        auto collected = std::make_shared<
            std::vector<std::optional<std::size_t>>>();
        auto remaining = std::make_shared<std::size_t>(count);
        collected->reserve(count);
        if (count == 0) {
          done({});
          return;
        }
        auto finish = [collected, remaining,
                       done](std::optional<std::size_t> state) {
          collected->push_back(state);
          if (--*remaining == 0) done(*collected);
        };
        for (std::size_t k = 0; k < count; ++k) {
          const ProcessId target = group_.random_target(pid, rng_);
          network_.send(
              [this, target, finish] {
                // The reply carries the target's state at response time;
                // crashed targets never answer (loss surrogate below fires
                // for them too, so model crash as a lost reply).
                if (!group_.alive(target)) {
                  finish(std::nullopt);
                  return;
                }
                const std::size_t remote = group_.state_of(target);
                network_.send([finish, remote] { finish(remote); },
                              [finish] { finish(std::nullopt); });
              },
              [finish] { finish(std::nullopt); });
        }
      };

  std::visit(
      [&](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, core::FlippingAction>) {
          if (rng_.bernoulli(a.coin_bias)) {
            group_.transition(pid, a.to_state);
          }
        } else if constexpr (std::is_same_v<T, core::SamplingAction>) {
          const std::size_t count =
              a.same_state_samples + a.target_states.size();
          auto spec = a;
          probe_all(count, [this, pid, spec](const auto& states) {
            if (!group_.alive(pid) ||
                group_.state_of(pid) != spec.from_state) {
              return;  // moved on or crashed while waiting
            }
            bool match = true;
            std::size_t at = 0;
            for (std::size_t k = 0; match && k < spec.same_state_samples;
                 ++k, ++at) {
              match = states[at].has_value() &&
                      *states[at] == spec.from_state;
            }
            for (std::size_t t : spec.target_states) {
              if (!match) break;
              match = states[at].has_value() && *states[at] == t;
              ++at;
            }
            if (match && rng_.bernoulli(spec.coin_bias)) {
              group_.transition(pid, spec.to_state);
            }
          });
        } else if constexpr (std::is_same_v<T, core::TokenizingAction>) {
          const std::size_t count =
              a.same_state_samples + a.target_states.size();
          auto spec = a;
          probe_all(count, [this, spec](const auto& states) {
            bool match = true;
            std::size_t at = 0;
            for (std::size_t k = 0; match && k < spec.same_state_samples;
                 ++k, ++at) {
              match = states[at].has_value() &&
                      *states[at] == spec.executor_state;
            }
            for (std::size_t t : spec.target_states) {
              if (!match) break;
              match = states[at].has_value() && *states[at] == t;
              ++at;
            }
            if (match && rng_.bernoulli(spec.coin_bias)) {
              if (options_.tokens.mode == TokenRouting::Mode::RandomWalkTtl) {
                route_token_walk(spec.token_state, spec.to_state,
                                 options_.tokens.ttl);
              } else {
                route_token_directory(spec.token_state, spec.to_state);
              }
            }
          });
        } else if constexpr (std::is_same_v<T, core::PushAction>) {
          for (unsigned k = 0; k < a.fanout; ++k) {
            const ProcessId target = group_.random_target(pid, rng_);
            const auto spec = a;
            network_.send([this, target, spec] {
              if (group_.alive(target) &&
                  group_.state_of(target) == spec.target_state &&
                  rng_.bernoulli(spec.coin_bias)) {
                group_.transition(target, spec.to_state);
              }
            });
          }
        } else if constexpr (std::is_same_v<T, core::AnyOfSamplingAction>) {
          auto spec = a;
          probe_all(spec.fanout, [this, pid, spec](const auto& states) {
            if (!group_.alive(pid) ||
                group_.state_of(pid) != spec.from_state) {
              return;
            }
            bool any = false;
            for (const auto& s : states) {
              if (s.has_value() && *s == spec.match_state) any = true;
            }
            if (any && rng_.bernoulli(spec.coin_bias)) {
              group_.transition(pid, spec.to_state);
            }
          });
        }
      },
      action);
}

void EventSimulator::sample_metrics() {
  metrics_.begin_period(queue_.now());
  metrics_.end_period(group_);
}

void EventSimulator::run_until(double t_end) {
  while (next_sample_ <= t_end) {
    queue_.run_until(next_sample_);
    sample_metrics();
    next_sample_ += 1.0;
  }
  queue_.run_until(t_end);
}

void EventSimulator::run_for(double periods) {
  run_until(queue_.now() + periods);
}

}  // namespace deproto::sim
