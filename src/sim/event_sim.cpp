#include "sim/event_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace deproto::sim {

EventSimulator::EventSimulator(std::size_t n,
                               core::ProtocolStateMachine machine,
                               std::uint64_t seed, EventSimOptions options)
    : machine_(std::move(machine)),
      options_(options),
      queue_(),
      rng_(seed),
      group_(n, machine_.num_states()),
      network_(queue_, rng_, options.network),
      metrics_(machine_.num_states()) {
  if (!(options_.clock_drift >= 0.0 && options_.clock_drift < 0.5)) {
    throw std::invalid_argument("EventSimulator: bad clock drift");
  }
  period_of_.resize(n);
  for (ProcessId pid = 0; pid < n; ++pid) {
    period_of_[pid] =
        rng_.uniform(1.0 - options_.clock_drift, 1.0 + options_.clock_drift);
    // Arbitrary phase: the first tick falls anywhere in the first period.
    const ProcessId copy = pid;
    queue_.schedule(rng_.uniform01() * period_of_[pid],
                    [this, copy] { on_tick(copy); });
  }
}

void EventSimulator::seed_states(const std::vector<std::size_t>& counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (counts.size() > group_.num_states() || total > group_.size()) {
    throw std::invalid_argument("seed_states: bad counts");
  }
  ProcessId pid = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    for (std::size_t k = 0; k < counts[s]; ++k, ++pid) {
      group_.transition(pid, s);
    }
  }
}

void EventSimulator::schedule_massive_failure(double t, double fraction) {
  queue_.schedule(t, [this, fraction] {
    const auto victims = static_cast<std::size_t>(
        fraction * static_cast<double>(group_.total_alive()));
    group_.crash_random_alive(victims, rng_);
  });
}

void EventSimulator::schedule_crash(ProcessId pid, double t, double recover_t,
                                    std::size_t recover_state) {
  queue_.schedule(t, [this, pid] {
    if (group_.alive(pid)) group_.crash(pid);
  });
  if (recover_t >= 0.0) {
    queue_.schedule(recover_t, [this, pid, recover_state] {
      if (!group_.alive(pid)) {
        group_.recover(pid, recover_state);
        arm_timer(pid);
      }
    });
  }
}

void EventSimulator::arm_timer(ProcessId pid) {
  queue_.schedule_in(period_of_[pid], [this, pid] { on_tick(pid); });
}

void EventSimulator::on_tick(ProcessId pid) {
  if (group_.alive(pid)) {
    const std::size_t state = group_.state_of(pid);
    for (std::size_t idx : machine_.actions_of(state)) {
      run_action(pid, idx);
    }
    arm_timer(pid);
  }
  // Crashed processes stop ticking; recovery re-arms the timer.
}

void EventSimulator::route_token_directory(std::size_t token_state,
                                           std::size_t to_state) {
  if (group_.count(token_state) == 0) return;  // dropped
  const ProcessId receiver = group_.random_member(token_state, rng_);
  network_.send([this, receiver, token_state, to_state] {
    if (group_.alive(receiver) && group_.state_of(receiver) == token_state) {
      group_.transition(receiver, to_state);
    }
  });
}

void EventSimulator::route_token_walk(std::size_t token_state,
                                      std::size_t to_state,
                                      unsigned ttl_left) {
  if (ttl_left == 0) return;  // expired
  const auto target = static_cast<ProcessId>(rng_.uniform_int(group_.size()));
  network_.send([this, target, token_state, to_state, ttl_left] {
    if (group_.alive(target) && group_.state_of(target) == token_state) {
      group_.transition(target, to_state);
      return;
    }
    route_token_walk(token_state, to_state, ttl_left - 1);
  });
}

void EventSimulator::run_action(ProcessId pid, std::size_t action_index) {
  const core::Action& action = machine_.actions()[action_index];

  // Probe r targets; `done(states)` runs when every response (or loss
  // surrogate) has arrived. Lost/crash responses arrive as nullopt.
  auto probe_all =
      [this, pid](std::size_t count,
                  std::function<void(
                      const std::vector<std::optional<std::size_t>>&)>
                      done) {
        auto collected = std::make_shared<
            std::vector<std::optional<std::size_t>>>();
        auto remaining = std::make_shared<std::size_t>(count);
        collected->reserve(count);
        if (count == 0) {
          done({});
          return;
        }
        auto finish = [collected, remaining,
                       done](std::optional<std::size_t> state) {
          collected->push_back(state);
          if (--*remaining == 0) done(*collected);
        };
        for (std::size_t k = 0; k < count; ++k) {
          const ProcessId target = group_.random_target(pid, rng_);
          network_.send(
              [this, target, finish] {
                // The reply carries the target's state at response time;
                // crashed targets never answer (loss surrogate below fires
                // for them too, so model crash as a lost reply).
                if (!group_.alive(target)) {
                  finish(std::nullopt);
                  return;
                }
                const std::size_t remote = group_.state_of(target);
                network_.send([finish, remote] { finish(remote); },
                              [finish] { finish(std::nullopt); });
              },
              [finish] { finish(std::nullopt); });
        }
      };

  std::visit(
      [&](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, core::FlippingAction>) {
          if (rng_.bernoulli(a.coin_bias)) {
            group_.transition(pid, a.to_state);
          }
        } else if constexpr (std::is_same_v<T, core::SamplingAction>) {
          const std::size_t count =
              a.same_state_samples + a.target_states.size();
          auto spec = a;
          probe_all(count, [this, pid, spec](const auto& states) {
            if (!group_.alive(pid) ||
                group_.state_of(pid) != spec.from_state) {
              return;  // moved on or crashed while waiting
            }
            bool match = true;
            std::size_t at = 0;
            for (std::size_t k = 0; match && k < spec.same_state_samples;
                 ++k, ++at) {
              match = states[at].has_value() &&
                      *states[at] == spec.from_state;
            }
            for (std::size_t t : spec.target_states) {
              if (!match) break;
              match = states[at].has_value() && *states[at] == t;
              ++at;
            }
            if (match && rng_.bernoulli(spec.coin_bias)) {
              group_.transition(pid, spec.to_state);
            }
          });
        } else if constexpr (std::is_same_v<T, core::TokenizingAction>) {
          const std::size_t count =
              a.same_state_samples + a.target_states.size();
          auto spec = a;
          probe_all(count, [this, spec](const auto& states) {
            bool match = true;
            std::size_t at = 0;
            for (std::size_t k = 0; match && k < spec.same_state_samples;
                 ++k, ++at) {
              match = states[at].has_value() &&
                      *states[at] == spec.executor_state;
            }
            for (std::size_t t : spec.target_states) {
              if (!match) break;
              match = states[at].has_value() && *states[at] == t;
              ++at;
            }
            if (match && rng_.bernoulli(spec.coin_bias)) {
              if (options_.token_random_walk) {
                route_token_walk(spec.token_state, spec.to_state,
                                 options_.token_ttl);
              } else {
                route_token_directory(spec.token_state, spec.to_state);
              }
            }
          });
        } else if constexpr (std::is_same_v<T, core::PushAction>) {
          for (unsigned k = 0; k < a.fanout; ++k) {
            const ProcessId target = group_.random_target(pid, rng_);
            const auto spec = a;
            network_.send([this, target, spec] {
              if (group_.alive(target) &&
                  group_.state_of(target) == spec.target_state &&
                  rng_.bernoulli(spec.coin_bias)) {
                group_.transition(target, spec.to_state);
              }
            });
          }
        } else if constexpr (std::is_same_v<T, core::AnyOfSamplingAction>) {
          auto spec = a;
          probe_all(spec.fanout, [this, pid, spec](const auto& states) {
            if (!group_.alive(pid) ||
                group_.state_of(pid) != spec.from_state) {
              return;
            }
            bool any = false;
            for (const auto& s : states) {
              if (s.has_value() && *s == spec.match_state) any = true;
            }
            if (any && rng_.bernoulli(spec.coin_bias)) {
              group_.transition(pid, spec.to_state);
            }
          });
        }
      },
      action);
}

void EventSimulator::sample_metrics() {
  metrics_.begin_period(queue_.now());
  metrics_.end_period(group_);
}

void EventSimulator::run_until(double t_end) {
  while (next_sample_ <= t_end) {
    queue_.run_until(next_sample_);
    sample_metrics();
    next_sample_ += 1.0;
  }
  queue_.run_until(t_end);
}

}  // namespace deproto::sim
