#pragma once

// The unified simulator interface: one fault/scheduling/seeding API over
// all execution backends (round-synchronous SyncSimulator, fully
// asynchronous EventSimulator, and the count-based CountSimulator). This
// is the scheduler-independence claim of the paper made concrete: an
// experiment is programmed once against `Simulator&` -- seeding, massive
// failures, background crash-recovery, churn-trace playback, targeted
// crashes -- and executes unchanged on any backend.
//
// Population observation happens through the count accessors
// (num_states / count / total_alive): those are defined on every backend.
// group() exposes per-node identity and is only available where the
// backend actually materializes one object per process (per_node() true);
// the count backend has no such representation and throws.
//
// Time convention: every time argument is measured in *fractional protocol
// periods* from simulation start. The sync backend quantizes to period
// boundaries (a fault at time t fires at the start of the first period
// >= t, and run_for rounds up to whole rounds); the event backend honors
// fractional times exactly. now() reports the current simulation time in
// the same unit, so `run_for(k)` always advances now() by (at least) k.

#include <cstddef>
#include <vector>

#include "sim/churn.hpp"
#include "sim/group.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"

namespace deproto::sim {

/// A scheduled "massive failure" (Figures 5 and 12): at `time`, crash a
/// uniformly random `fraction` of the processes alive at that moment.
struct MassiveFailure {
  double time = 0.0;      // in fractional periods (sync: period start >= time)
  double fraction = 0.5;  // of currently-alive processes

  friend bool operator==(const MassiveFailure&,
                         const MassiveFailure&) = default;
};

class Simulator {
 public:
  virtual ~Simulator() = default;

  /// Per-node process table. Only available when per_node() is true; the
  /// count backend throws std::logic_error (it has no per-node identity).
  [[nodiscard]] virtual Group& group() = 0;
  [[nodiscard]] virtual MetricsCollector& metrics() noexcept = 0;
  [[nodiscard]] virtual Rng& rng() noexcept = 0;
  /// Current simulation time in fractional periods.
  [[nodiscard]] virtual double now() const noexcept = 0;

  /// Whether this backend materializes one object per process (and thus
  /// supports group(), per-host history, and targeted schedule_crash by
  /// identity). The count backend returns false.
  [[nodiscard]] virtual bool per_node() const noexcept { return true; }

  /// Count-level population observation, defined on every backend: the
  /// number of protocol states, alive processes currently in `state`, and
  /// total alive processes.
  [[nodiscard]] virtual std::size_t num_states() const noexcept = 0;
  [[nodiscard]] virtual std::size_t count(std::size_t state) const = 0;
  [[nodiscard]] virtual std::size_t total_alive() const noexcept = 0;

  /// Distribute initial states: counts[s] processes start in state s
  /// (counts must sum to <= N; remaining processes keep state 0).
  virtual void seed_states(const std::vector<std::size_t>& counts) = 0;

  /// Crash `fraction` of the alive processes at `time`. Throws
  /// std::invalid_argument unless fraction is in [0, 1].
  virtual void schedule_massive_failure(double time, double fraction) = 0;

  /// Crash one process at `time`; if `recover_time` >= 0, revive it then
  /// into the protocol's rejoin_state(). The protocol's on_crash() hook
  /// fires at crash time.
  virtual void schedule_crash(ProcessId pid, double time,
                              double recover_time = -1.0) = 0;

  /// Background crash-recovery failures: each alive process independently
  /// crashes with probability `crash_prob` per period and recovers after
  /// (one period plus) an exponential downtime with the given mean. A mean
  /// of 0 makes crashes permanent (crash-stop). Throws
  /// std::invalid_argument on a probability outside [0, 1] or a negative
  /// mean.
  virtual void set_crash_recovery(double crash_prob,
                                  double mean_downtime_periods) = 0;

  /// Play back a churn trace; `periods_per_hour` converts trace hours to
  /// protocol periods (the paper: 6-minute periods => 10 periods/hour).
  /// Departed hosts fire on_crash(); rejoining hosts enter the protocol's
  /// rejoin_state(). Attaching a new trace replaces any previously
  /// attached one. Throws std::invalid_argument unless
  /// periods_per_hour > 0.
  virtual void attach_churn(const ChurnTrace& trace,
                            double periods_per_hour) = 0;

  /// Advance the simulation by `periods` (the sync backend rounds up to
  /// whole rounds). Metrics record one sample per whole period.
  virtual void run_for(double periods) = 0;
};

}  // namespace deproto::sim
