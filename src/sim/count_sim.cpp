#include "sim/count_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <variant>

#include "core/action.hpp"
#include "core/transition_model.hpp"
#include "numerics/vector.hpp"
#include "sim/fault_plan.hpp"

namespace deproto::sim {

namespace {

/// Raw machines rejoin in state 0 (EventSimulator::rejoin_state() for
/// machine mode); revived processes enter here.
constexpr std::size_t kRejoinState = 0;

/// Probes the per-node executors charge for one attempt of `action`:
/// messages_per_period minus the Tokenizing hand-off message (which the
/// per-node backends account under token stats, not probes).
std::uint64_t probes_of(const core::Action& action) {
  const std::size_t messages = core::messages_per_period(action);
  if (std::holds_alternative<core::TokenizingAction>(action)) {
    return messages - 1;
  }
  return messages;
}

}  // namespace

CountSimulator::CountSimulator(std::size_t n,
                               core::ProtocolStateMachine machine,
                               std::uint64_t seed, CountSimOptions options)
    : machine_(std::move(machine)),
      options_(options),
      rng_(seed),
      metrics_(machine_.num_states()),
      n_(n),
      counts_(machine_.num_states(), 0),
      alive_(n) {
  if (!(options_.message_loss >= 0.0 && options_.message_loss <= 1.0)) {
    throw std::invalid_argument("CountSimulator: bad message_loss");
  }
  counts_[0] = n;
}

Group& CountSimulator::group() {
  throw std::logic_error(
      "CountSimulator::group: the count backend has no per-node group "
      "(use the sync or event backend for per-node-identity features)");
}

void CountSimulator::seed_states(const std::vector<std::size_t>& counts) {
  if (counts.size() > counts_.size()) {
    throw std::invalid_argument("seed_states: too many states");
  }
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (total > alive_) {
    throw std::invalid_argument("seed_states: counts exceed group size");
  }
  std::fill(counts_.begin(), counts_.end(), 0);
  for (std::size_t s = 0; s < counts.size(); ++s) counts_[s] = counts[s];
  counts_[kRejoinState] += alive_ - total;
}

void CountSimulator::schedule_massive_failure(double time, double fraction) {
  fault_plan::validate_failure_fraction(fraction);
  failures_.push_back(PendingFailure{MassiveFailure{time, fraction}, false});
}

void CountSimulator::schedule_crash(ProcessId pid, double time,
                                    double recover_time) {
  // Same scheduling machinery as the sync backend; the host id only
  // bounds-checks at apply time (the victim is anonymous).
  crashes_.push_back(ChurnEvent{time, pid, false});
  if (recover_time >= 0.0) {
    crashes_.push_back(ChurnEvent{recover_time, pid, true});
  }
  std::stable_sort(
      crashes_.begin() + static_cast<std::ptrdiff_t>(crashes_next_),
      crashes_.end(), [](const ChurnEvent& a, const ChurnEvent& b) {
        return a.time_hours < b.time_hours;
      });
}

void CountSimulator::set_crash_recovery(double crash_prob,
                                        double mean_downtime_periods) {
  fault_plan::validate_crash_recovery(crash_prob, mean_downtime_periods);
  crash_prob_ = crash_prob;
  mean_downtime_ = mean_downtime_periods;
}

void CountSimulator::attach_churn(const ChurnTrace& trace,
                                  double periods_per_hour) {
  churn_ = fault_plan::trace_in_periods(trace, periods_per_hour);
  churn_next_ = 0;
  std::sort(churn_.begin(), churn_.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return a.time_hours < b.time_hours;
            });
}

void CountSimulator::remove_random_alive(std::size_t victims) {
  victims = std::min(victims, alive_);
  // Sequential binomial sweep over the state buckets: bucket s receives
  // Binomial(victims_left, c_s / pool_left) victims, clamped so the
  // remainder always fits in the buckets still ahead. For large counts
  // this is the multivariate hypergeometric up to O(1/pool) corrections.
  std::size_t pool = alive_;
  for (std::size_t s = 0; s < counts_.size() && victims > 0; ++s) {
    const std::size_t here = counts_[s];
    if (here == 0) continue;
    std::size_t take;
    if (here >= pool) {
      take = victims;
    } else {
      take = static_cast<std::size_t>(rng_.binomial(
          victims, static_cast<double>(here) / static_cast<double>(pool)));
      take = std::min(take, here);
      const std::size_t rest = pool - here;
      if (victims > take + rest) take = victims - rest;
    }
    counts_[s] -= take;
    alive_ -= take;
    victims -= take;
    pool -= here;
  }
}

void CountSimulator::crash_one_random() {
  std::uint64_t pick = rng_.uniform_int(alive_);
  for (std::size_t s = 0; s < counts_.size(); ++s) {
    if (pick < counts_[s]) {
      --counts_[s];
      --alive_;
      return;
    }
    pick -= counts_[s];
  }
}

void CountSimulator::apply_anonymous_events(
    const std::vector<ChurnEvent>& events, std::size_t& next, double until) {
  while (next < events.size() && events[next].time_hours <= until) {
    const ChurnEvent& e = events[next++];
    if (e.host >= n_) continue;
    if (!e.up) {
      if (alive_ > 0) {
        crash_one_random();
        ++churn_down_;
      }
    } else if (churn_down_ > 0) {
      --churn_down_;
      ++counts_[kRejoinState];
      ++alive_;
    }
  }
}

void CountSimulator::execute_period(double t) {
  metrics_.begin_period(t);
  const std::size_t m = counts_.size();

  // Per-probe hit probabilities: a probe draws uniformly from the N-1
  // other members of the maximal membership, dead targets are fruitless.
  num::Vec hit(m, 0.0);
  if (n_ >= 2) {
    const double denom = static_cast<double>(n_ - 1);
    for (std::size_t s = 0; s < m; ++s) {
      hit[s] = static_cast<double>(counts_[s]) / denom;
    }
  }
  const std::vector<core::TransitionChannel> channels =
      core::transition_channels(machine_, hit, options_.message_loss);

  // Jacobi sweep: all draws read the period-start counts.
  const std::vector<std::size_t> start = counts_;
  std::vector<std::size_t> moved_out(m, 0);
  std::vector<std::size_t> moved_in(m, 0);

  struct TokenBatch {
    std::size_t token_state;
    std::size_t to_state;
    std::size_t generated;
  };
  struct PushBatch {
    std::size_t target_state;
    std::size_t to_state;
    double coin_bias;
    std::uint64_t contacts;
  };
  std::vector<TokenBatch> token_batches;
  std::vector<PushBatch> push_batches;

  for (std::size_t s = 0; s < m; ++s) {
    std::size_t remaining = start[s];
    if (remaining == 0) continue;
    // Sequential binomial chain in actions_of order: a process that fires
    // a self-transition stops executing, so each later action only sees
    // the executors not yet moved (the per-node `break` semantics).
    for (std::size_t idx : machine_.actions_of(s)) {
      const core::TransitionChannel& ch = channels[idx];
      const core::Action& action = machine_.actions()[idx];
      probes_total_ +=
          static_cast<std::uint64_t>(remaining) * probes_of(action);
      if (ch.moves_executor) {
        const std::size_t fired =
            static_cast<std::size_t>(rng_.binomial(remaining, ch.fire_prob));
        if (fired > 0) {
          moved_out[s] += fired;
          moved_in[ch.to] += fired;
          metrics_.record_transitions(s, ch.to, fired);
          remaining -= fired;
        }
      } else if (std::holds_alternative<core::TokenizingAction>(action)) {
        const std::size_t generated =
            static_cast<std::size_t>(rng_.binomial(remaining, ch.fire_prob));
        tokens_.generated += generated;
        if (generated > 0) {
          token_batches.push_back(TokenBatch{ch.from, ch.to, generated});
        }
      } else {
        const auto& push = std::get<core::PushAction>(action);
        const auto contacts =
            static_cast<std::uint64_t>(remaining) * push.fanout;
        if (contacts > 0) {
          push_batches.push_back(PushBatch{push.target_state, push.to_state,
                                           push.coin_bias, contacts});
        }
      }
      if (remaining == 0) break;
    }
  }

  // Conversion targets still available: period-start members that no
  // self-transition moved (token hand-offs and push contacts land on the
  // period-start population, the Jacobi reading of the per-node races).
  std::vector<std::size_t> stayers(m);
  for (std::size_t s = 0; s < m; ++s) stayers[s] = start[s] - moved_out[s];

  for (const TokenBatch& batch : token_batches) {
    std::size_t delivered = 0;
    if (options_.tokens.mode == TokenRouting::Mode::Directory) {
      // Directory hand-off: a token drops only when the state is empty.
      delivered = std::min(batch.generated, stayers[batch.token_state]);
    } else {
      // TTL-bounded random walk: each hop dies to loss with probability
      // f, else lands on a token_state member with probability c / N.
      const double f = options_.message_loss;
      const double q =
          n_ > 0 ? static_cast<double>(start[batch.token_state]) /
                       static_cast<double>(n_)
                 : 0.0;
      double p_deliver = 0.0;
      double surviving = 1.0;
      for (unsigned hop = 0; hop < options_.tokens.ttl; ++hop) {
        p_deliver += surviving * (1.0 - f) * q;
        surviving *= (1.0 - f) * (1.0 - q);
      }
      delivered = std::min(
          static_cast<std::size_t>(rng_.binomial(batch.generated, p_deliver)),
          stayers[batch.token_state]);
    }
    stayers[batch.token_state] -= delivered;
    moved_out[batch.token_state] += delivered;
    moved_in[batch.to_state] += delivered;
    if (delivered > 0) {
      metrics_.record_transitions(batch.token_state, batch.to_state,
                                  delivered);
    }
    tokens_.delivered += delivered;
    tokens_.dropped += batch.generated - delivered;
  }

  for (const PushBatch& batch : push_batches) {
    if (n_ < 2) break;
    const std::size_t candidates = stayers[batch.target_state];
    if (candidates == 0) continue;
    // P(one target converted) = 1 - (1 - (1-f) * coin / (N-1))^contacts:
    // each contact picks one of the N-1 others uniformly, survives loss,
    // and flips the conversion coin.
    const double per_contact = (1.0 - options_.message_loss) *
                               batch.coin_bias /
                               static_cast<double>(n_ - 1);
    const double p_converted =
        1.0 -
        std::pow(1.0 - per_contact, static_cast<double>(batch.contacts));
    const std::size_t converted =
        static_cast<std::size_t>(rng_.binomial(candidates, p_converted));
    if (converted == 0) continue;
    stayers[batch.target_state] -= converted;
    moved_out[batch.target_state] += converted;
    moved_in[batch.to_state] += converted;
    metrics_.record_transitions(batch.target_state, batch.to_state,
                                converted);
  }

  for (std::size_t s = 0; s < m; ++s) {
    counts_[s] = start[s] - moved_out[s] + moved_in[s];
  }
  metrics_.end_period(counts_, alive_);
}

void CountSimulator::run(std::size_t periods) {
  for (std::size_t k = 0; k < periods; ++k) {
    const auto t = static_cast<double>(period_);

    // Scheduled massive failures at the period start (due once time <= t,
    // like the sync backend's quantization).
    for (PendingFailure& pending : failures_) {
      if (pending.applied || pending.failure.time > t) continue;
      pending.applied = true;
      remove_random_alive(
          fault_plan::failure_victims(pending.failure.fraction, alive_));
    }

    // Targeted crashes quantize to the period start; churn keeps its
    // covering-period window (events inside [t, t+1) act this period).
    apply_anonymous_events(crashes_, crashes_next_, t);
    apply_anonymous_events(churn_, churn_next_, t + 1.0);

    // Crash-recovery revivals due at this boundary.
    while (!recoveries_.empty() && recoveries_.begin()->first <= period_) {
      const std::size_t back = recoveries_.begin()->second;
      recoveries_.erase(recoveries_.begin());
      counts_[kRejoinState] += back;
      alive_ += back;
    }
    if (crash_prob_ > 0.0) {
      const auto crashes =
          static_cast<std::size_t>(rng_.binomial(alive_, crash_prob_));
      remove_random_alive(crashes);
      if (mean_downtime_ > 0.0) {
        for (std::size_t i = 0; i < crashes; ++i) {
          const std::size_t due = fault_plan::first_period_at_or_after(
              t + fault_plan::recovery_delay(rng_, mean_downtime_));
          ++recoveries_[due];
        }
      }
    }

    execute_period(t);
    ++period_;
  }
}

void CountSimulator::run_for(double periods) {
  run(static_cast<std::size_t>(std::ceil(periods)));
}

}  // namespace deproto::sim
