#include "sim/group.hpp"

namespace deproto::sim {

Group::Group(std::size_t n, std::size_t num_states,
             std::size_t initial_state) {
  if (n == 0) throw std::invalid_argument("Group: empty group");
  if (num_states == 0 || num_states > 255) {
    throw std::invalid_argument("Group: need 1..255 states");
  }
  if (initial_state >= num_states) {
    throw std::invalid_argument("Group: bad initial state");
  }
  state_.assign(n, static_cast<std::uint8_t>(initial_state));
  alive_.assign(n, 1);
  pos_.resize(n);
  buckets_.resize(num_states);
  buckets_[initial_state].reserve(n);
  for (ProcessId pid = 0; pid < n; ++pid) {
    pos_[pid] = static_cast<std::uint32_t>(buckets_[initial_state].size());
    buckets_[initial_state].push_back(pid);
  }
  total_alive_ = n;
}

void Group::bucket_remove(ProcessId pid) {
  auto& bucket = buckets_[state_[pid]];
  const std::uint32_t at = pos_[pid];
  const ProcessId last = bucket.back();
  bucket[at] = last;
  pos_[last] = at;
  bucket.pop_back();
}

void Group::bucket_insert(ProcessId pid, std::size_t state) {
  auto& bucket = buckets_[state];
  pos_[pid] = static_cast<std::uint32_t>(bucket.size());
  bucket.push_back(pid);
  state_[pid] = static_cast<std::uint8_t>(state);
}

void Group::transition(ProcessId pid, std::size_t to_state) {
  if (!alive(pid)) {
    throw std::logic_error("Group::transition: process is crashed");
  }
  if (to_state >= buckets_.size()) {
    throw std::out_of_range("Group::transition: bad state");
  }
  const std::size_t from = state_[pid];
  if (from == to_state) return;
  bucket_remove(pid);
  bucket_insert(pid, to_state);
  if (observer_) observer_(pid, from, to_state);
}

void Group::crash(ProcessId pid) {
  if (!alive(pid)) return;
  bucket_remove(pid);
  alive_[pid] = 0;
  --total_alive_;
}

void Group::recover(ProcessId pid, std::size_t state) {
  if (alive(pid)) {
    throw std::logic_error("Group::recover: process is alive");
  }
  if (state >= buckets_.size()) {
    throw std::out_of_range("Group::recover: bad state");
  }
  alive_[pid] = 1;
  ++total_alive_;
  bucket_insert(pid, state);
}

ProcessId Group::random_member(std::size_t state, Rng& rng) const {
  const auto& bucket = buckets_.at(state);
  if (bucket.empty()) {
    throw std::logic_error("Group::random_member: state is empty");
  }
  return bucket[rng.uniform_int(bucket.size())];
}

ProcessId Group::random_target(ProcessId self, Rng& rng) const {
  return static_cast<ProcessId>(rng.uniform_int_excluding(size(), self));
}

std::vector<ProcessId> Group::crash_random_alive(std::size_t k, Rng& rng) {
  // Gather alive pids (bucket order is arbitrary but deterministic).
  std::vector<ProcessId> alive_pids;
  alive_pids.reserve(total_alive_);
  for (const auto& bucket : buckets_) {
    alive_pids.insert(alive_pids.end(), bucket.begin(), bucket.end());
  }
  if (k > alive_pids.size()) k = alive_pids.size();
  std::vector<ProcessId> victims;
  victims.reserve(k);
  for (std::uint64_t idx : rng.sample_without_replacement(alive_pids.size(), k)) {
    victims.push_back(alive_pids[idx]);
  }
  for (ProcessId pid : victims) crash(pid);
  return victims;
}

}  // namespace deproto::sim
