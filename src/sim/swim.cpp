#include "sim/swim.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace deproto::sim {

SwimMembership::SwimMembership(std::size_t n, EventQueue& queue,
                               Network& network, Rng& rng,
                               SwimOptions options)
    : n_(n), queue_(queue), network_(network), rng_(rng), options_(options) {
  if (n < 2) throw std::invalid_argument("SwimMembership: need >= 2 nodes");
  nodes_.resize(n);
  up_.assign(n, 1);
  for (ProcessId node = 0; node < n; ++node) {
    nodes_[node].table.assign(n, Entry{});
    for (ProcessId other = 0; other < n; ++other) {
      if (other != node) nodes_[node].ping_order.push_back(other);
    }
    std::shuffle(nodes_[node].ping_order.begin(),
                 nodes_[node].ping_order.end(), rng_.engine());
    // Stagger initial periods across [0, period).
    const ProcessId copy = node;
    queue_.schedule(rng_.uniform01() * options_.period,
                    [this, copy] { on_period(copy); });
  }
}

SwimMembership::MemberState SwimMembership::view(ProcessId observer,
                                                 ProcessId subject) const {
  return nodes_.at(observer).table.at(subject).state;
}

std::vector<ProcessId> SwimMembership::alive_view(ProcessId observer) const {
  std::vector<ProcessId> out;
  const Node& node = nodes_.at(observer);
  for (ProcessId subject = 0; subject < n_; ++subject) {
    if (subject != observer &&
        node.table[subject].state == MemberState::Alive) {
      out.push_back(subject);
    }
  }
  return out;
}

void SwimMembership::crash(ProcessId node) { up_.at(node) = 0; }

void SwimMembership::restart(ProcessId node) {
  if (up_.at(node)) return;
  up_[node] = 1;
  Node& self = nodes_[node];
  self.incarnation += 2;  // beat any suspicion raised while down
  self.table[node] = Entry{MemberState::Alive, self.incarnation, 0.0};
  enqueue_update(node,
                 Update{node, MemberState::Alive, self.incarnation});
  arm_timer(node);
}

double SwimMembership::view_accuracy() const {
  std::size_t correct = 0, total = 0;
  for (ProcessId observer = 0; observer < n_; ++observer) {
    if (!up_[observer]) continue;
    for (ProcessId subject = 0; subject < n_; ++subject) {
      if (subject == observer) continue;
      ++total;
      const bool believed_alive =
          nodes_[observer].table[subject].state != MemberState::Dead;
      if (believed_alive == (up_[subject] != 0)) ++correct;
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

void SwimMembership::arm_timer(ProcessId node) {
  const ProcessId copy = node;
  queue_.schedule_in(options_.period, [this, copy] { on_period(copy); });
}

void SwimMembership::enqueue_update(ProcessId node, Update update) {
  Node& self = nodes_[node];
  // Only the newest update about a subject matters; drop superseded ones.
  std::erase_if(self.gossip, [&](const QueuedUpdate& q) {
    return q.update.subject == update.subject;
  });
  // SWIM retransmits each update O(log N) times before retiring it.
  const auto budget = static_cast<unsigned>(
      3.0 * std::ceil(std::log2(static_cast<double>(n_))) + 1.0);
  self.gossip.push_back(QueuedUpdate{update, budget});
}

std::vector<SwimMembership::Update> SwimMembership::collect_gossip(
    ProcessId from) {
  Node& self = nodes_[from];
  std::vector<Update> updates;
  const std::size_t count =
      std::min(self.gossip.size(), options_.piggyback_updates);
  for (std::size_t k = 0; k < count; ++k) {
    updates.push_back(self.gossip[k].update);
    if (self.gossip[k].budget > 0) --self.gossip[k].budget;
  }
  // Rotate so later messages spread the rest of the queue; retire
  // exhausted updates.
  for (std::size_t k = 0; k < count; ++k) {
    QueuedUpdate front = self.gossip.front();
    self.gossip.pop_front();
    if (front.budget > 0) self.gossip.push_back(front);
  }
  return updates;
}

void SwimMembership::apply_gossip(ProcessId to,
                                  const std::vector<Update>& updates) {
  Node& self = nodes_[to];
  for (const Update& u : updates) {
    if (u.subject == to) {
      // Someone suspects (or declares dead) *this* node: refute with a
      // higher incarnation (SWIM's Alive(i+1) message).
      if (u.state != MemberState::Alive &&
          u.incarnation >= self.incarnation) {
        self.incarnation = u.incarnation + 1;
        self.table[to] = Entry{MemberState::Alive, self.incarnation, 0.0};
        enqueue_update(to, Update{to, MemberState::Alive,
                                  self.incarnation});
        ++refutations_;
      }
      continue;
    }
    Entry& entry = self.table[u.subject];
    // Precedence (SWIM): higher incarnation wins; at equal incarnation,
    // Dead > Suspect > Alive.
    const bool newer = u.incarnation > entry.incarnation;
    const bool same = u.incarnation == entry.incarnation;
    const bool stronger =
        static_cast<int>(u.state) > static_cast<int>(entry.state);
    if (newer || (same && stronger)) {
      const MemberState before = entry.state;
      entry.state = u.state;
      entry.incarnation = u.incarnation;
      if (u.state == MemberState::Suspect &&
          before != MemberState::Suspect) {
        entry.suspect_since = queue_.now();
      }
      if (before != u.state) enqueue_update(to, u);
    }
  }
}

void SwimMembership::on_period(ProcessId node) {
  if (!up_[node]) return;  // crashed nodes stop; restart re-arms
  check_suspicions(node);

  // Randomized round-robin target selection (SWIM's bounded-time
  // detection): walk the shuffled order, skip members we believe dead.
  Node& self = nodes_[node];
  for (std::size_t attempts = 0; attempts < n_; ++attempts) {
    if (self.ping_cursor >= self.ping_order.size()) {
      std::shuffle(self.ping_order.begin(), self.ping_order.end(),
                   rng_.engine());
      self.ping_cursor = 0;
    }
    const ProcessId target = self.ping_order[self.ping_cursor++];
    if (self.table[target].state == MemberState::Dead) continue;
    probe(node, target);
    break;
  }
  arm_timer(node);
}

void SwimMembership::probe(ProcessId node, ProcessId target) {
  auto acked = std::make_shared<bool>(false);
  const auto gossip = collect_gossip(node);

  // Direct ping.
  network_.send([this, node, target, gossip, acked] {
    if (!up_[target]) return;  // no ack from a crashed node
    apply_gossip(target, gossip);
    const auto reply = collect_gossip(target);
    network_.send([this, node, target, reply, acked] {
      if (!up_[node]) return;
      *acked = true;
      apply_gossip(node, reply);
      handle_ack(node, target);
    });
  });

  // Direct timeout: fall back to k indirect ping-reqs.
  queue_.schedule_in(options_.ping_timeout * options_.period,
                     [this, node, target, acked] {
    if (*acked || !up_[node]) return;
    const auto proxies = alive_view(node);
    unsigned sent = 0;
    for (std::size_t k = 0;
         k < proxies.size() && sent < options_.ping_req_fanout; ++k) {
      const ProcessId proxy =
          proxies[rng_.uniform_int(proxies.size())];
      if (proxy == target) continue;
      ++sent;
      network_.send([this, node, proxy, target, acked] {
        if (!up_[proxy]) return;
        network_.send([this, node, proxy, target, acked] {
          if (!up_[target]) return;
          network_.send([this, node, proxy, target, acked] {
            if (!up_[proxy]) return;
            network_.send([this, node, target, acked] {
              if (!up_[node] || *acked) return;
              *acked = true;
              handle_ack(node, target);
            });
          });
        });
      });
    }
    // Final timeout: suspect.
    queue_.schedule_in(options_.ping_req_timeout * options_.period,
                       [this, node, target, acked] {
      if (*acked || !up_[node]) return;
      suspect(node, target);
    });
  });
}

void SwimMembership::handle_ack(ProcessId node, ProcessId target) {
  Entry& entry = nodes_[node].table[target];
  if (entry.state == MemberState::Suspect) {
    entry.state = MemberState::Alive;
    enqueue_update(node, Update{target, MemberState::Alive,
                                entry.incarnation});
  }
}

void SwimMembership::suspect(ProcessId node, ProcessId target) {
  Entry& entry = nodes_[node].table[target];
  if (entry.state != MemberState::Alive) return;
  entry.state = MemberState::Suspect;
  entry.suspect_since = queue_.now();
  enqueue_update(node, Update{target, MemberState::Suspect,
                              entry.incarnation});
}

void SwimMembership::check_suspicions(ProcessId node) {
  Node& self = nodes_[node];
  const double deadline =
      options_.suspicion_periods * options_.period;
  for (ProcessId subject = 0; subject < n_; ++subject) {
    Entry& entry = self.table[subject];
    if (entry.state == MemberState::Suspect &&
        queue_.now() - entry.suspect_since >= deadline) {
      entry.state = MemberState::Dead;
      if (up_[subject]) ++false_positives_;
      enqueue_update(node, Update{subject, MemberState::Dead,
                                  entry.incarnation});
    }
  }
}

}  // namespace deproto::sim
