#pragma once

// Count-based (structure-of-arrays) execution backend: the population is a
// per-state count vector and one period costs O(states + actions) instead
// of O(N). Transitions are batched binomial draws against the same
// per-action firing probabilities the per-node backends realize probe by
// probe (core::transition_channels evaluated at per-probe hit
// probabilities c_s / (N-1)), so for large N the trajectory is the same
// Markov chain up to the approximations below. This is the regime the
// paper's mean-field theory licenses: above a crossover N the population
// is fully described by its counts.
//
// Approximations relative to the per-node backends (all O(1/N) or
// fault-plan bookkeeping, none affecting count-level distributions for
// the scenarios the registry ships):
//   * Jacobi sweeps: every action reads the period-start counts, like
//     RuntimeOptions::simultaneous_updates; the per-node default
//     (Gauss-Seidel) agrees to O(rate^2) per period.
//   * Stop-after-first-firing is modeled by a sequential binomial chain
//     over actions_of(state), thinning the executor pool in action order.
//   * Faults are anonymous: massive failures and background crashes
//     remove multivariate-hypergeometric batches across states; targeted
//     crashes and churn events each hit one uniformly random alive
//     process (there is no per-node identity to target).
//   * probes_total counts full probe fan-out per executor (the per-node
//     backends stop probing at the first mismatched response).
//
// Per-node-identity features (group(), host history, token tracing by
// pid) are unavailable: group() throws, and the API layer surfaces that
// as a SpecError steering such experiments to the per-node backends.

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "core/state_machine.hpp"
#include "sim/churn.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/runtime.hpp"
#include "sim/simulator.hpp"

namespace deproto::sim {

struct CountSimOptions {
  /// Per-connection-attempt failure probability f (as RuntimeOptions).
  double message_loss = 0.0;
  TokenRouting tokens;

  friend bool operator==(const CountSimOptions&,
                         const CountSimOptions&) = default;
};

class CountSimulator final : public Simulator {
 public:
  /// N processes, all alive in state 0, interpreting `machine`.
  CountSimulator(std::size_t n, core::ProtocolStateMachine machine,
                 std::uint64_t seed, CountSimOptions options = {});

  /// Always throws std::logic_error: no per-node representation exists.
  [[nodiscard]] Group& group() override;
  [[nodiscard]] MetricsCollector& metrics() noexcept override {
    return metrics_;
  }
  [[nodiscard]] Rng& rng() noexcept override { return rng_; }
  [[nodiscard]] double now() const noexcept override {
    return static_cast<double>(period_);
  }
  [[nodiscard]] bool per_node() const noexcept override { return false; }
  [[nodiscard]] std::size_t num_states() const noexcept override {
    return counts_.size();
  }
  [[nodiscard]] std::size_t count(std::size_t state) const override {
    return counts_.at(state);
  }
  [[nodiscard]] std::size_t total_alive() const noexcept override {
    return alive_;
  }
  [[nodiscard]] std::size_t current_period() const noexcept {
    return period_;
  }

  [[nodiscard]] const core::ProtocolStateMachine& machine() const noexcept {
    return machine_;
  }
  [[nodiscard]] const TokenStats& token_stats() const noexcept {
    return tokens_;
  }
  /// Probes the per-node backends would have sent, assuming full fan-out.
  [[nodiscard]] std::uint64_t probes_total() const noexcept {
    return probes_total_;
  }

  /// Launch-time seeding (all processes alive): counts[s] processes start
  /// in state s, the unseeded remainder stays in state 0.
  void seed_states(const std::vector<std::size_t>& counts) override;

  void schedule_massive_failure(double time, double fraction) override;

  /// `pid` only bounds-checks against N; the victim is a uniformly random
  /// alive process (counts carry no identity).
  void schedule_crash(ProcessId pid, double time,
                      double recover_time = -1.0) override;

  void set_crash_recovery(double crash_prob,
                          double mean_downtime_periods) override;

  void attach_churn(const ChurnTrace& trace, double periods_per_hour) override;

  /// Run `periods` more rounds; metrics record one sample per round.
  void run(std::size_t periods);

  /// Simulator interface: rounds `periods` up to whole rounds.
  void run_for(double periods) override;

 private:
  /// Remove `victims` uniformly random alive processes: a sequential
  /// binomial approximation of the multivariate hypergeometric across the
  /// state buckets, with feasibility clamps so the total always lands.
  void remove_random_alive(std::size_t victims);
  /// Crash one uniformly random alive process (categorical by counts).
  void crash_one_random();
  void apply_anonymous_events(const std::vector<ChurnEvent>& events,
                              std::size_t& next, double until);
  void execute_period(double t);

  core::ProtocolStateMachine machine_;
  CountSimOptions options_;
  Rng rng_;
  MetricsCollector metrics_;
  std::size_t n_;                    // fixed maximal membership
  std::vector<std::size_t> counts_;  // alive processes per state
  std::size_t alive_;
  std::size_t period_ = 0;

  struct PendingFailure {
    MassiveFailure failure;
    bool applied = false;
  };
  std::vector<PendingFailure> failures_;
  std::vector<ChurnEvent> churn_;    // in periods, sorted
  std::size_t churn_next_ = 0;
  std::vector<ChurnEvent> crashes_;  // schedule_crash events, in periods
  std::size_t crashes_next_ = 0;
  /// Processes taken down by churn/targeted events and not yet revived:
  /// an "up" event revives one of them (anonymously) when nonzero.
  std::size_t churn_down_ = 0;
  double crash_prob_ = 0.0;
  double mean_downtime_ = 0.0;
  /// Crash-recovery revivals bucketed by the period boundary where the
  /// sync backend would notice them: period -> processes due back.
  std::map<std::size_t, std::size_t> recoveries_;

  TokenStats tokens_;
  std::uint64_t probes_total_ = 0;
};

}  // namespace deproto::sim
