#include "sim/network.hpp"

#include <stdexcept>

namespace deproto::sim {

Network::Network(EventQueue& queue, Rng& rng, NetworkOptions options)
    : queue_(queue), rng_(rng), options_(options) {
  if (!(options_.loss >= 0.0 && options_.loss < 1.0)) {
    throw std::invalid_argument("Network: loss must lie in [0, 1)");
  }
  if (!(options_.latency_min >= 0.0 &&
        options_.latency_max >= options_.latency_min)) {
    throw std::invalid_argument("Network: bad latency band");
  }
}

void Network::send(std::function<void()> on_deliver,
                   std::function<void()> on_lost) {
  ++sent_;
  const double latency =
      rng_.uniform(options_.latency_min, options_.latency_max);
  if (options_.loss > 0.0 && rng_.bernoulli(options_.loss)) {
    ++dropped_;
    if (on_lost) queue_.schedule_in(latency, std::move(on_lost));
    return;
  }
  queue_.schedule_in(latency, std::move(on_deliver));
}

}  // namespace deproto::sim
