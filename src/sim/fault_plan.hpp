#pragma once
// Fault-plan quantization and validation rules shared by every execution
// backend (sync, event, count). Each rule used to live duplicated inside
// sync_sim.cpp and event_sim.cpp; a backend that re-derives any of them
// risks drifting from the others in exactly the places the backend
// equivalence suite compares, so they are pinned here once.

#include <cstddef>
#include <vector>

#include "sim/churn.hpp"
#include "sim/rng.hpp"

namespace deproto::sim::fault_plan {

/// Throws std::invalid_argument unless fraction lies in [0, 1].
void validate_failure_fraction(double fraction);

/// Throws std::invalid_argument unless crash_prob lies in [0, 1] and the
/// mean downtime is non-negative.
void validate_crash_recovery(double crash_prob, double mean_downtime_periods);

/// Throws std::invalid_argument unless periods_per_hour is positive.
void validate_periods_per_hour(double periods_per_hour);

/// Massive-failure victim count: fraction of the currently alive
/// population, rounded to nearest (llround).
[[nodiscard]] std::size_t failure_victims(double fraction,
                                          std::size_t total_alive);

/// Convert a churn trace from wall-clock hours into protocol periods,
/// clamping each event to happen no earlier than `min_time` (the event
/// backend passes its current queue time so stale events fire "now"; the
/// sync backend passes 0). Order is preserved; callers needing sorted
/// playback sort afterwards.
[[nodiscard]] std::vector<ChurnEvent> trace_in_periods(
    const ChurnTrace& trace, double periods_per_hour, double min_time = 0.0);

/// Background crash-recovery downtime: one whole period (the crash is
/// only noticed at the next boundary) plus an exponential tail drawn from
/// `rng`. Returns the delay relative to the crash time.
[[nodiscard]] double recovery_delay(Rng& rng, double mean_downtime_periods);

/// First whole-period boundary at or after `time`: the period index where
/// a round-based backend notices an event scheduled at `time`. Negative
/// times clamp to period 0.
[[nodiscard]] std::size_t first_period_at_or_after(double time);

}  // namespace deproto::sim::fault_plan
