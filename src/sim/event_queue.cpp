#include "sim/event_queue.hpp"

namespace deproto::sim {

void EventQueue::schedule(double t, Handler fn) {
  if (t < now_) {
    throw std::invalid_argument("EventQueue::schedule: time in the past");
  }
  heap_.push(Entry{t, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; the handler is moved out via const_cast,
  // which is safe because the entry is popped immediately after.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.time;
  ++executed_;
  entry.fn();
  return true;
}

void EventQueue::run_until(double t_end) {
  while (!heap_.empty() && heap_.top().time <= t_end) {
    step();
  }
  if (now_ < t_end) now_ = t_end;
}

void EventQueue::run_all() {
  while (step()) {
  }
}

}  // namespace deproto::sim
