#pragma once

// SWIM-style weakly-consistent membership (Das, Gupta, Motivala, DSN'02 --
// reference [8] of the paper). Section 6's Tokenizing rule relies on "a
// scalable membership protocol such as SWIM" for the token directory; this
// module provides that substrate over the event-driven network: randomized
// round-robin pinging, indirect ping-req probes, a suspicion mechanism with
// incarnation-numbered refutation, and infection-style dissemination by
// piggybacking updates on protocol messages.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/group.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"

namespace deproto::sim {

struct SwimOptions {
  double period = 1.0;          // protocol period per node (sim time)
  double ping_timeout = 0.25;   // wait for direct ack, in periods
  double ping_req_timeout = 0.35;  // additional wait for indirect acks
  unsigned ping_req_fanout = 3;    // k members asked to probe indirectly
  unsigned suspicion_periods = 3;  // suspect -> declared dead
  std::size_t piggyback_updates = 6;  // gossip entries per message
};

class SwimMembership {
 public:
  enum class MemberState : std::uint8_t { Alive, Suspect, Dead };

  SwimMembership(std::size_t n, EventQueue& queue, Network& network,
                 Rng& rng, SwimOptions options = {});

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Ground truth: is the node process itself up?
  [[nodiscard]] bool node_up(ProcessId node) const {
    return up_.at(node) != 0;
  }

  /// `observer`'s current belief about `subject`.
  [[nodiscard]] MemberState view(ProcessId observer,
                                 ProcessId subject) const;

  /// Members that `observer` currently believes alive (excluding itself).
  [[nodiscard]] std::vector<ProcessId> alive_view(ProcessId observer) const;

  /// Crash / restart the actual node. A restarting node rejoins with a
  /// fresh incarnation and re-announces itself.
  void crash(ProcessId node);
  void restart(ProcessId node);

  /// Fraction of (observer, subject) pairs whose belief matches ground
  /// truth, over up observers.
  [[nodiscard]] double view_accuracy() const;

  /// Nodes ever declared dead while actually up (false positives), and
  /// refutations that rescued a suspected-but-alive node.
  [[nodiscard]] std::uint64_t false_positives() const noexcept {
    return false_positives_;
  }
  [[nodiscard]] std::uint64_t refutations() const noexcept {
    return refutations_;
  }

 private:
  struct Entry {
    MemberState state = MemberState::Alive;
    std::uint32_t incarnation = 0;
    double suspect_since = 0.0;
  };

  struct Update {
    ProcessId subject = 0;
    MemberState state = MemberState::Alive;
    std::uint32_t incarnation = 0;
  };

  /// Queued update plus its remaining piggyback budget (SWIM retransmits
  /// each update O(log N) times, then retires it).
  struct QueuedUpdate {
    Update update;
    unsigned budget = 0;
  };

  struct Node {
    std::vector<Entry> table;           // beliefs about every member
    std::deque<QueuedUpdate> gossip;    // pending piggyback updates
    std::vector<ProcessId> ping_order;  // randomized round-robin
    std::size_t ping_cursor = 0;
    std::uint32_t incarnation = 0;
  };

  void arm_timer(ProcessId node);
  void on_period(ProcessId node);
  void probe(ProcessId node, ProcessId target);
  void handle_ack(ProcessId node, ProcessId target);
  void suspect(ProcessId node, ProcessId target);
  void check_suspicions(ProcessId node);

  /// Deliver a message carrying gossip from `from`'s queue into `to`'s
  /// table; returns whether `to` is up (acks happen at the caller).
  void apply_gossip(ProcessId to, const std::vector<Update>& updates);
  [[nodiscard]] std::vector<Update> collect_gossip(ProcessId from);
  void enqueue_update(ProcessId node, Update update);

  std::size_t n_;
  EventQueue& queue_;
  Network& network_;
  Rng& rng_;
  SwimOptions options_;
  std::vector<Node> nodes_;
  std::vector<std::uint8_t> up_;
  std::uint64_t false_positives_ = 0;
  std::uint64_t refutations_ = 0;
};

}  // namespace deproto::sim
