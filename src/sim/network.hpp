#pragma once

// Unreliable asynchronous network (system model, Section 1): messages
// experience random latency and may be dropped. Latency is expressed in
// protocol-period units.

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace deproto::sim {

struct NetworkOptions {
  double loss = 0.0;          // independent drop probability per message
  double latency_min = 0.02;  // uniform latency band, in periods
  double latency_max = 0.10;
};

class Network {
 public:
  Network(EventQueue& queue, Rng& rng, NetworkOptions options = {});

  /// Send a message: `on_deliver` runs after a random latency unless the
  /// message is dropped, in which case `on_lost` (if provided) runs at the
  /// same moment the delivery would have happened (a timeout surrogate).
  void send(std::function<void()> on_deliver,
            std::function<void()> on_lost = nullptr);

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  EventQueue& queue_;
  Rng& rng_;
  NetworkOptions options_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace deproto::sim
