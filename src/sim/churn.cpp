#include "sim/churn.hpp"

#include <algorithm>

namespace deproto::sim {

ChurnTrace ChurnTrace::from_events(std::vector<ChurnEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return a.time_hours < b.time_hours;
            });
  ChurnTrace trace;
  trace.events_ = std::move(events);
  return trace;
}

ChurnTrace ChurnTrace::synthetic_overnet(std::size_t n, double hours,
                                         double min_rate, double max_rate,
                                         double mean_downtime_hours,
                                         Rng& rng) {
  std::vector<ChurnEvent> events;
  // up_until[h] > t  means host h is up at time t.
  std::vector<double> down_until(n, 0.0);

  for (double hour = 0.0; hour < hours; hour += 1.0) {
    const double rate = rng.uniform(min_rate, max_rate);
    const auto departures =
        static_cast<std::size_t>(rate * static_cast<double>(n));
    // Choose departure candidates among hosts currently up for the whole
    // hour start; duplicates are filtered via the down_until check.
    for (std::uint64_t pick :
         rng.sample_without_replacement(n, std::min(departures, n))) {
      const auto host = static_cast<std::uint32_t>(pick);
      const double leave = hour + rng.uniform01();
      if (down_until[host] > leave) continue;  // already down then
      const double rejoin = leave + rng.exponential_mean(mean_downtime_hours);
      events.push_back(ChurnEvent{leave, host, false});
      if (rejoin < hours) {
        events.push_back(ChurnEvent{rejoin, host, true});
      }
      down_until[host] = rejoin;
    }
  }
  return from_events(std::move(events));
}

double ChurnTrace::departures_per_host_day(std::size_t n,
                                           double hours) const {
  if (n == 0 || hours <= 0.0) return 0.0;
  std::size_t departures = 0;
  for (const ChurnEvent& e : events_) {
    if (!e.up) ++departures;
  }
  return static_cast<double>(departures) /
         (static_cast<double>(n) * hours / 24.0);
}

}  // namespace deproto::sim
