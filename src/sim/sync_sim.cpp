#include "sim/sync_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/fault_plan.hpp"

namespace deproto::sim {

SyncSimulator::SyncSimulator(std::size_t n, PeriodicProtocol& protocol,
                             std::uint64_t seed)
    : group_(n, protocol.num_states()),
      protocol_(protocol),
      rng_(seed),
      metrics_(protocol.num_states()) {}

void SyncSimulator::schedule_massive_failure(double time, double fraction) {
  fault_plan::validate_failure_fraction(fraction);
  failures_.push_back(PendingFailure{MassiveFailure{time, fraction}, false});
}

void SyncSimulator::schedule_crash(ProcessId pid, double time,
                                   double recover_time) {
  // Reuses the churn playback machinery: a targeted crash is a one-host
  // departure (plus optional rejoin), already expressed in periods.
  crashes_.push_back(ChurnEvent{time, pid, false});
  if (recover_time >= 0.0) {
    crashes_.push_back(ChurnEvent{recover_time, pid, true});
  }
  // Stable: equal-time events keep scheduling order (crash before its own
  // recovery), matching the event queue's FIFO tie-breaking.
  std::stable_sort(
      crashes_.begin() + static_cast<std::ptrdiff_t>(crashes_next_),
      crashes_.end(), [](const ChurnEvent& a, const ChurnEvent& b) {
        return a.time_hours < b.time_hours;
      });
}

void SyncSimulator::attach_churn(const ChurnTrace& trace,
                                 double periods_per_hour) {
  churn_ = fault_plan::trace_in_periods(trace, periods_per_hour);
  churn_next_ = 0;
  std::sort(churn_.begin(), churn_.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return a.time_hours < b.time_hours;
            });
}

void SyncSimulator::seed_states(const std::vector<std::size_t>& counts) {
  if (counts.size() > group_.num_states()) {
    throw std::invalid_argument("seed_states: too many states");
  }
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (total > group_.size()) {
    throw std::invalid_argument("seed_states: counts exceed group size");
  }
  ProcessId pid = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    for (std::size_t k = 0; k < counts[s]; ++k, ++pid) {
      if (!group_.alive(pid)) continue;
      group_.transition(pid, s);
    }
  }
}

void SyncSimulator::set_crash_recovery(double crash_prob,
                                       double mean_downtime_periods) {
  fault_plan::validate_crash_recovery(crash_prob, mean_downtime_periods);
  crash_prob_ = crash_prob;
  mean_downtime_ = mean_downtime_periods;
}

void SyncSimulator::apply_churn_until(std::vector<ChurnEvent>& events,
                                      std::size_t& next, double period_time) {
  while (next < events.size() && events[next].time_hours <= period_time) {
    const ChurnEvent& e = events[next++];
    if (e.host >= group_.size()) continue;
    if (!e.up) {
      if (group_.alive(e.host)) {
        protocol_.on_crash(e.host);
        group_.crash(e.host);
      }
    } else {
      if (!group_.alive(e.host)) {
        group_.recover(e.host, protocol_.rejoin_state());
      }
    }
  }
}

void SyncSimulator::run(std::size_t periods) {
  for (std::size_t k = 0; k < periods; ++k) {
    const auto t = static_cast<double>(period_);

    // Scheduled massive failures at the start of the period. A failure is
    // due once its time is <= the period start; anything scheduled "in the
    // past" fires at the next boundary instead of being silently dropped.
    for (PendingFailure& pending : failures_) {
      if (pending.applied || pending.failure.time > t) continue;
      pending.applied = true;
      const std::size_t victims = fault_plan::failure_victims(
          pending.failure.fraction, group_.total_alive());
      for (ProcessId pid : group_.crash_random_alive(victims, rng_)) {
        protocol_.on_crash(pid);
      }
    }

    // Targeted crashes quantize like massive failures: they fire at the
    // start of the first period >= their time (matching the event backend
    // at whole-period times). Churn playback keeps its covering-period
    // semantics: a trace event inside [t, t+1) takes effect during that
    // period, so it is visible in the same period's sample on both
    // backends.
    apply_churn_until(crashes_, crashes_next_, t);
    apply_churn_until(churn_, churn_next_, t + 1.0);

    // Background crash-recovery. Due recoveries drain even after the
    // process is disarmed (crash_prob_ reset to 0): already-crashed hosts
    // still come back, exactly as the event backend's queued recovery
    // events do.
    while (!recoveries_.empty() && recoveries_.top().first <= t) {
      const ProcessId pid = recoveries_.top().second;
      recoveries_.pop();
      if (!group_.alive(pid)) {
        group_.recover(pid, protocol_.rejoin_state());
      }
    }
    if (crash_prob_ > 0.0) {
      const std::size_t crashes =
          rng_.binomial(group_.total_alive(), crash_prob_);
      for (ProcessId pid : group_.crash_random_alive(crashes, rng_)) {
        protocol_.on_crash(pid);
        if (mean_downtime_ > 0.0) {
          recoveries_.emplace(
              t + fault_plan::recovery_delay(rng_, mean_downtime_), pid);
        }
      }
    }

    metrics_.begin_period(t);
    group_.set_transition_observer(
        [this](ProcessId, std::size_t from, std::size_t to) {
          metrics_.record_transition(from, to);
        });
    protocol_.execute_period(group_, rng_, metrics_);
    group_.set_transition_observer(nullptr);
    metrics_.end_period(group_);
    ++period_;
  }
}

void SyncSimulator::run_for(double periods) {
  run(static_cast<std::size_t>(std::ceil(periods)));
}

}  // namespace deproto::sim
