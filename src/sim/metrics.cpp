#include "sim/metrics.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace deproto::sim {

MetricsCollector::MetricsCollector(std::size_t num_states)
    : states_(num_states) {
  if (num_states == 0) {
    throw std::invalid_argument("MetricsCollector: zero states");
  }
  current_.transitions.assign(states_ * states_, 0);
}

void MetricsCollector::enable_host_history(std::size_t state) {
  if (state >= states_) {
    throw std::out_of_range("MetricsCollector::enable_host_history");
  }
  track_hosts_ = true;
  tracked_state_ = state;
}

void MetricsCollector::begin_period(double t) {
  current_.time = t;
  std::fill(current_.transitions.begin(), current_.transitions.end(), 0);
  in_period_ = true;
}

void MetricsCollector::record_transition(std::size_t from, std::size_t to) {
  if (from >= states_ || to >= states_) {
    throw std::out_of_range("MetricsCollector::record_transition");
  }
  ++current_.transitions[from * states_ + to];
}

void MetricsCollector::record_transitions(std::size_t from, std::size_t to,
                                          std::size_t count) {
  if (from >= states_ || to >= states_) {
    throw std::out_of_range("MetricsCollector::record_transitions");
  }
  current_.transitions[from * states_ + to] += count;
}

void MetricsCollector::end_period(const Group& group) {
  if (!in_period_) {
    throw std::logic_error("MetricsCollector::end_period without begin");
  }
  current_.alive_in_state.assign(states_, 0);
  for (std::size_t s = 0; s < states_; ++s) {
    current_.alive_in_state[s] = group.count(s);
  }
  current_.total_alive = group.total_alive();
  if (sink_) {
    sink_(current_);
  } else {
    samples_.push_back(current_);
  }
  if (track_hosts_) {
    host_history_.push_back(group.members(tracked_state_));
  }
  in_period_ = false;
}

void MetricsCollector::end_period(
    const std::vector<std::size_t>& alive_in_state, std::size_t total_alive) {
  if (!in_period_) {
    throw std::logic_error("MetricsCollector::end_period without begin");
  }
  if (alive_in_state.size() != states_) {
    throw std::invalid_argument("MetricsCollector::end_period: bad counts");
  }
  if (track_hosts_) {
    throw std::logic_error(
        "MetricsCollector::end_period: host history needs a per-node "
        "backend");
  }
  current_.alive_in_state = alive_in_state;
  current_.total_alive = total_alive;
  if (sink_) {
    sink_(current_);
  } else {
    samples_.push_back(current_);
  }
  in_period_ = false;
}

void MetricsCollector::set_sample_sink(
    std::function<void(const PeriodSample&)> sink) {
  sink_ = std::move(sink);
}

WindowSummary summarize_window(std::vector<double> values) {
  WindowSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  const std::size_t n = values.size();
  s.median = (n % 2 == 1) ? values[n / 2]
                          : 0.5 * (values[n / 2 - 1] + values[n / 2]);
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(n);
  return s;
}

WindowSummary MetricsCollector::summarize_state(std::size_t state,
                                                std::size_t first,
                                                std::size_t last) const {
  if (state >= states_) {
    throw std::out_of_range("MetricsCollector::summarize_state");
  }
  last = std::min(last, samples_.size());
  std::vector<double> values;
  for (std::size_t i = first; i < last; ++i) {
    values.push_back(static_cast<double>(samples_[i].alive_in_state[state]));
  }
  return summarize_window(std::move(values));
}

WindowSummary MetricsCollector::summarize_flux(std::size_t from,
                                               std::size_t to,
                                               std::size_t first,
                                               std::size_t last) const {
  if (from >= states_ || to >= states_) {
    throw std::out_of_range("MetricsCollector::summarize_flux");
  }
  last = std::min(last, samples_.size());
  std::vector<double> values;
  for (std::size_t i = first; i < last; ++i) {
    values.push_back(
        static_cast<double>(samples_[i].transitions[from * states_ + to]));
  }
  return summarize_window(std::move(values));
}

void MetricsCollector::write_population_csv(
    std::ostream& out, const std::vector<std::string>& names) const {
  out << "time";
  for (std::size_t s = 0; s < states_; ++s) {
    out << ',' << (s < names.size() ? names[s] : "s" + std::to_string(s));
  }
  out << ",alive\n";
  for (const PeriodSample& sample : samples_) {
    out << sample.time;
    for (std::size_t s = 0; s < states_; ++s) {
      out << ',' << sample.alive_in_state[s];
    }
    out << ',' << sample.total_alive << '\n';
  }
}

void MetricsCollector::write_flux_csv(
    std::ostream& out, const std::vector<std::string>& names) const {
  // Determine which (from, to) pairs ever fire.
  std::vector<std::size_t> active;
  for (std::size_t pair = 0; pair < states_ * states_; ++pair) {
    for (const PeriodSample& s : samples_) {
      if (s.transitions[pair] != 0) {
        active.push_back(pair);
        break;
      }
    }
  }
  auto name = [&](std::size_t s) {
    return s < names.size() ? names[s] : "s" + std::to_string(s);
  };
  out << "time";
  for (std::size_t pair : active) {
    out << ',' << name(pair / states_) << "->" << name(pair % states_);
  }
  out << '\n';
  for (const PeriodSample& sample : samples_) {
    out << sample.time;
    for (std::size_t pair : active) out << ',' << sample.transitions[pair];
    out << '\n';
  }
}

}  // namespace deproto::sim
