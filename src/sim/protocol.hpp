#pragma once

// The interface every periodic protocol implements, whether hand-written
// (protocols/) or synthesized-and-interpreted (sim/runtime.hpp). The
// synchronous simulator drives one execute_period call per protocol period.

#include <cstddef>

#include "sim/group.hpp"
#include "sim/metrics.hpp"

namespace deproto::sim {

class PeriodicProtocol {
 public:
  virtual ~PeriodicProtocol() = default;

  /// Number of state-machine states (== Group::num_states()).
  [[nodiscard]] virtual std::size_t num_states() const = 0;

  /// Execute one protocol period for all alive processes.
  virtual void execute_period(Group& group, Rng& rng,
                              MetricsCollector& metrics) = 0;

  /// State given to a process that rejoins after churn/crash-recovery.
  /// Default: state 0 (the endemic protocol's "receptive toward all files").
  [[nodiscard]] virtual std::size_t rejoin_state() const { return 0; }

  /// Hook called when a process crashes (e.g. drop stored replicas).
  virtual void on_crash(ProcessId /*pid*/) {}
};

}  // namespace deproto::sim
