#pragma once

// Host churn (Section 5.1, "Trace-based simulations"). The paper injected
// Overnet availability traces (hourly snapshots, 10-25% hourly churn,
// ~6.4 rejoins/host/day); those traces are not redistributable, so this
// module provides (a) playback of arbitrary up/down event traces and (b) a
// synthetic generator calibrated to the published Overnet statistics.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace deproto::sim {

struct ChurnEvent {
  double time_hours = 0.0;
  std::uint32_t host = 0;
  bool up = false;  // false: departure/failure; true: rejoin
};

class ChurnTrace {
 public:
  ChurnTrace() = default;

  /// Wrap a pre-sorted (or not) list of events; sorts by time.
  static ChurnTrace from_events(std::vector<ChurnEvent> events);

  /// Synthetic Overnet-like availability trace over `hours` hours for `n`
  /// hosts. Every hour, an hourly churn count is drawn uniformly from
  /// [min_rate, max_rate] * n; that many currently-up hosts depart at a
  /// uniformly random moment within the hour (the paper spread its hourly
  /// snapshots across each hour) and rejoin after an exponential downtime
  /// with mean `mean_downtime_hours`.
  static ChurnTrace synthetic_overnet(std::size_t n, double hours,
                                      double min_rate, double max_rate,
                                      double mean_downtime_hours, Rng& rng);

  [[nodiscard]] const std::vector<ChurnEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Mean number of departures per host per day (for comparing the
  /// generator against the published 6.4 rejoins/day statistic).
  [[nodiscard]] double departures_per_host_day(std::size_t n,
                                               double hours) const;

 private:
  std::vector<ChurnEvent> events_;  // sorted by time
};

}  // namespace deproto::sim
