#pragma once

// Per-period measurement: alive population per state, transition (flux)
// counts, and optional per-host membership history (Figure 8's stasher
// scatter). Also summary statistics over period windows (Figure 7 reports
// median/min/max over a 2000-period interval) and CSV writers.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/group.hpp"

namespace deproto::sim {

struct PeriodSample {
  double time = 0.0;                     // in protocol periods
  std::vector<std::size_t> alive_in_state;
  std::size_t total_alive = 0;
  std::vector<std::size_t> transitions;  // S x S, row-major [from*S + to]
};

struct WindowSummary {
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Summary statistics over an arbitrary value window (consumes and sorts
/// the vector). The shared implementation behind summarize_state /
/// summarize_flux, public so series-based consumers (e.g. sweep results,
/// which carry populations without a live MetricsCollector) use the same
/// median/min/max conventions.
[[nodiscard]] WindowSummary summarize_window(std::vector<double> values);

class MetricsCollector {
 public:
  explicit MetricsCollector(std::size_t num_states);

  /// Record which hosts occupy `state` each period (costs O(count) per
  /// period; enable only for small-N experiments like Figure 8).
  void enable_host_history(std::size_t state);

  /// Start accumulating transitions for the period beginning at `t`.
  void begin_period(double t);

  /// Count one state transition within the current period.
  void record_transition(std::size_t from, std::size_t to);

  /// Count `count` state transitions at once (the count backend moves
  /// whole binomial batches per action instead of one process at a time).
  void record_transitions(std::size_t from, std::size_t to,
                          std::size_t count);

  /// Snapshot populations and close the current period.
  void end_period(const Group& group);

  /// Close the current period from a per-state count vector (the count
  /// backend has no Group). Host history needs per-node identity, so this
  /// throws std::logic_error when enable_host_history() is active.
  void end_period(const std::vector<std::size_t>& alive_in_state,
                  std::size_t total_alive);

  /// Streaming mode: every completed period is handed to `sink` instead of
  /// being appended to samples(), so a 10^6-period run retains O(1) sample
  /// state (the per-period S x S transition matrices are the dominant
  /// retained cost otherwise). samples() stays empty while a sink is set;
  /// window summaries and CSV writers are unavailable in this mode. The
  /// sink must not call back into the collector.
  void set_sample_sink(std::function<void(const PeriodSample&)> sink);

  [[nodiscard]] const std::vector<PeriodSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::size_t num_states() const noexcept { return states_; }

  /// Hosts that occupied the tracked state, one vector per recorded period.
  [[nodiscard]] const std::vector<std::vector<ProcessId>>& host_history()
      const noexcept {
    return host_history_;
  }

  /// Summary of alive_in_state[state] over sample indices [first, last).
  [[nodiscard]] WindowSummary summarize_state(std::size_t state,
                                              std::size_t first,
                                              std::size_t last) const;

  /// Summary of transitions[from][to] per period over [first, last).
  [[nodiscard]] WindowSummary summarize_flux(std::size_t from, std::size_t to,
                                             std::size_t first,
                                             std::size_t last) const;

  /// CSV: time, one column per state, total_alive.
  void write_population_csv(std::ostream& out,
                            const std::vector<std::string>& names) const;

  /// CSV: time, one column per (from->to) pair with nonzero total flux.
  void write_flux_csv(std::ostream& out,
                      const std::vector<std::string>& names) const;

 private:
  std::size_t states_;
  std::vector<PeriodSample> samples_;
  std::function<void(const PeriodSample&)> sink_;
  PeriodSample current_;
  bool in_period_ = false;
  bool track_hosts_ = false;
  std::size_t tracked_state_ = 0;
  std::vector<std::vector<ProcessId>> host_history_;
};

}  // namespace deproto::sim
