#pragma once

// Round-synchronous simulator: the execution model of the paper's own
// experiments ("multiple instances running synchronously over a simulated
// network, all on a single machine"). One round == one protocol period;
// time on all plots is measured in periods. Implements the full unified
// Simulator fault surface: scheduled massive failures, targeted crashes,
// background crash-recovery, and churn-trace playback.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/churn.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "sim/simulator.hpp"

namespace deproto::sim {

class SyncSimulator final : public Simulator {
 public:
  /// The group starts with all processes alive in protocol state 0 unless
  /// the caller mutates `group()` before run().
  SyncSimulator(std::size_t n, PeriodicProtocol& protocol,
                std::uint64_t seed);

  [[nodiscard]] Group& group() noexcept override { return group_; }
  [[nodiscard]] const Group& group() const noexcept { return group_; }
  [[nodiscard]] Rng& rng() noexcept override { return rng_; }
  [[nodiscard]] MetricsCollector& metrics() noexcept override {
    return metrics_;
  }
  [[nodiscard]] std::size_t num_states() const noexcept override {
    return group_.num_states();
  }
  [[nodiscard]] std::size_t count(std::size_t state) const override {
    return group_.count(state);
  }
  [[nodiscard]] std::size_t total_alive() const noexcept override {
    return group_.total_alive();
  }
  [[nodiscard]] std::size_t current_period() const noexcept {
    return period_;
  }
  [[nodiscard]] double now() const noexcept override {
    return static_cast<double>(period_);
  }

  /// Crash `fraction` of the alive processes at the start of the first
  /// period >= `time`.
  void schedule_massive_failure(double time, double fraction) override;

  /// Crash `pid` at the start of the first period >= `time`; recovery (if
  /// requested) enters the protocol's rejoin_state().
  void schedule_crash(ProcessId pid, double time,
                      double recover_time = -1.0) override;

  void attach_churn(const ChurnTrace& trace, double periods_per_hour) override;

  void set_crash_recovery(double crash_prob,
                          double mean_downtime_periods) override;

  /// Run `periods` more rounds. Metrics record one sample per round.
  void run(std::size_t periods);

  /// Simulator interface: rounds `periods` up to whole rounds.
  void run_for(double periods) override;

  void seed_states(const std::vector<std::size_t>& counts) override;

 private:
  void apply_churn_until(std::vector<ChurnEvent>& events, std::size_t& next,
                         double period_time);

  Group group_;
  PeriodicProtocol& protocol_;
  Rng rng_;
  MetricsCollector metrics_;
  std::size_t period_ = 0;
  struct PendingFailure {
    MassiveFailure failure;
    bool applied = false;
  };
  std::vector<PendingFailure> failures_;
  std::vector<ChurnEvent> churn_;    // in periods, sorted
  std::size_t churn_next_ = 0;
  std::vector<ChurnEvent> crashes_;  // schedule_crash events, in periods
  std::size_t crashes_next_ = 0;
  double crash_prob_ = 0.0;
  double mean_downtime_ = 0.0;
  // Min-heap of (recovery period, pid) for crash-recovery failures.
  std::priority_queue<std::pair<double, ProcessId>,
                      std::vector<std::pair<double, ProcessId>>,
                      std::greater<>>
      recoveries_;
};

}  // namespace deproto::sim
