#pragma once

// Round-synchronous simulator: the execution model of the paper's own
// experiments ("multiple instances running synchronously over a simulated
// network, all on a single machine"). One round == one protocol period;
// time on all plots is measured in periods. Supports scheduled massive
// failures, crash-recovery, and churn-trace playback.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/churn.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"

namespace deproto::sim {

struct MassiveFailure {
  std::size_t period = 0;   // applied at the start of this period
  double fraction = 0.5;    // of currently-alive processes

  friend bool operator==(const MassiveFailure&,
                         const MassiveFailure&) = default;
};

class SyncSimulator {
 public:
  /// The group starts with all processes alive in protocol state 0 unless
  /// the caller mutates `group()` before run().
  SyncSimulator(std::size_t n, PeriodicProtocol& protocol,
                std::uint64_t seed);

  [[nodiscard]] Group& group() noexcept { return group_; }
  [[nodiscard]] const Group& group() const noexcept { return group_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] MetricsCollector& metrics() noexcept { return metrics_; }
  [[nodiscard]] std::size_t current_period() const noexcept {
    return period_;
  }

  /// Crash `fraction` of the alive processes at the given period.
  void schedule_massive_failure(std::size_t period, double fraction);

  /// Play back a churn trace; `periods_per_hour` converts trace hours to
  /// protocol periods (the paper: 6-minute periods => 10 periods/hour).
  void attach_churn(const ChurnTrace& trace, double periods_per_hour);

  /// Background crash-recovery failures: each alive process independently
  /// crashes with probability `crash_prob` per period and recovers after an
  /// exponential downtime with the given mean (in periods). A mean of 0
  /// makes crashes permanent (crash-stop).
  void set_crash_recovery(double crash_prob, double mean_downtime_periods);

  /// Run `periods` more rounds. Metrics record one sample per round.
  void run(std::size_t periods);

  /// Convenience: distribute alive processes over states by counts
  /// (counts must sum to <= N; remaining processes keep state 0).
  void seed_states(const std::vector<std::size_t>& counts);

 private:
  void apply_churn_until(double period_time);

  Group group_;
  PeriodicProtocol& protocol_;
  Rng rng_;
  MetricsCollector metrics_;
  std::size_t period_ = 0;
  std::vector<MassiveFailure> failures_;
  std::vector<ChurnEvent> churn_;  // in periods, sorted
  std::size_t churn_next_ = 0;
  double crash_prob_ = 0.0;
  double mean_downtime_ = 0.0;
  // Min-heap of (recovery period, pid) for crash-recovery failures.
  std::priority_queue<std::pair<double, ProcessId>,
                      std::vector<std::pair<double, ProcessId>>,
                      std::greater<>>
      recoveries_;
};

}  // namespace deproto::sim
