#pragma once

// The closed group G of N processes (system model of Section 1). Each
// process knows the maximal membership (it can address any of the N-1
// others); sampling therefore draws from all N ids, and contacts to crashed
// processes are simply fruitless. Per-state "bucket" indices give O(1)
// uniform selection of an alive member of a state, O(1) transitions, and
// O(1) population counts -- the operations every protocol period needs.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"

namespace deproto::sim {

using ProcessId = std::uint32_t;

class Group {
 public:
  /// N processes, all alive, all in `initial_state`.
  Group(std::size_t n, std::size_t num_states, std::size_t initial_state = 0);

  [[nodiscard]] std::size_t size() const noexcept { return state_.size(); }
  [[nodiscard]] std::size_t num_states() const noexcept {
    return buckets_.size();
  }

  [[nodiscard]] bool alive(ProcessId pid) const { return alive_.at(pid) != 0; }
  [[nodiscard]] std::size_t state_of(ProcessId pid) const {
    return state_.at(pid);
  }

  /// Number of *alive* processes in `state`.
  [[nodiscard]] std::size_t count(std::size_t state) const {
    return buckets_.at(state).size();
  }
  [[nodiscard]] std::size_t total_alive() const noexcept {
    return total_alive_;
  }

  /// All alive members of `state` (unordered). Valid until the next
  /// transition/crash/recover touching that state.
  [[nodiscard]] const std::vector<ProcessId>& members(std::size_t state) const {
    return buckets_.at(state);
  }

  /// Move an alive process to `to_state`. Fires the transition observer.
  void transition(ProcessId pid, std::size_t to_state);

  /// Crash an alive process (keeps its last state for bookkeeping).
  void crash(ProcessId pid);

  /// Revive a crashed process into `state`.
  void recover(ProcessId pid, std::size_t state);

  /// Uniformly random *alive* member of `state`; throws if none.
  [[nodiscard]] ProcessId random_member(std::size_t state, Rng& rng) const;

  /// Uniformly random id from the maximal membership excluding `self`
  /// (the target may be crashed -- the caller models the fruitless contact).
  [[nodiscard]] ProcessId random_target(ProcessId self, Rng& rng) const;

  /// Crash `k` distinct processes chosen uniformly among the alive ones;
  /// returns the victims. Models the "massive failure" experiments.
  std::vector<ProcessId> crash_random_alive(std::size_t k, Rng& rng);

  /// Observer invoked on every transition(pid, from, to).
  using TransitionObserver =
      std::function<void(ProcessId, std::size_t, std::size_t)>;
  void set_transition_observer(TransitionObserver obs) {
    observer_ = std::move(obs);
  }

 private:
  void bucket_remove(ProcessId pid);
  void bucket_insert(ProcessId pid, std::size_t state);

  std::vector<std::uint8_t> state_;      // last known state per process
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint32_t> pos_;       // index within its bucket
  std::vector<std::vector<ProcessId>> buckets_;  // alive members per state
  std::size_t total_alive_ = 0;
  TransitionObserver observer_;
};

}  // namespace deproto::sim
