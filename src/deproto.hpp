#pragma once

// Umbrella header: the full public surface of the deproto library, in layer
// order. Downstream consumers can `#include "deproto.hpp"` and reach every
// layer; tests/build/umbrella_header_test.cpp keeps this list honest.

// ode: polynomial differential equation systems and their taxonomy
#include "ode/term.hpp"
#include "ode/polynomial.hpp"
#include "ode/equation_system.hpp"
#include "ode/parser.hpp"
#include "ode/rewriting.hpp"
#include "ode/taxonomy.hpp"
#include "ode/catalog.hpp"

// numerics: integration, linearization, and stability analysis
#include "numerics/vector.hpp"
#include "numerics/matrix.hpp"
#include "numerics/eigen.hpp"
#include "numerics/jacobian.hpp"
#include "numerics/newton.hpp"
#include "numerics/integrator.hpp"
#include "numerics/linearization.hpp"
#include "numerics/stability.hpp"
#include "numerics/lyapunov.hpp"
#include "numerics/phase_portrait.hpp"

// core: the equation -> state machine synthesis mapping
#include "core/action.hpp"
#include "core/state_machine.hpp"
#include "core/transition_model.hpp"
#include "core/synthesis.hpp"
#include "core/mean_field.hpp"
#include "core/failure_compensation.hpp"
#include "core/fluctuations.hpp"

// protocols: the paper's case studies and comparison baselines
#include "protocols/epidemic.hpp"
#include "protocols/endemic_replication.hpp"
#include "protocols/lv_majority.hpp"
#include "protocols/baselines.hpp"
#include "protocols/analysis.hpp"

// sim: synchronous, event-driven, and count-based simulation behind one
// interface
#include "sim/rng.hpp"
#include "sim/protocol.hpp"
#include "sim/group.hpp"
#include "sim/network.hpp"
#include "sim/metrics.hpp"
#include "sim/churn.hpp"
#include "sim/fault_plan.hpp"
#include "sim/swim.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/sync_sim.hpp"
#include "sim/event_sim.hpp"
#include "sim/count_sim.hpp"
#include "sim/runtime.hpp"

// net: the real-network runtime -- protocols over UDP loopback sockets
#include "net/packet.hpp"
#include "net/socket.hpp"
#include "net/net_sim.hpp"

// api: the declarative experiment facade over the whole pipeline
#include "api/json.hpp"
#include "api/spec.hpp"
#include "api/experiment.hpp"
#include "api/job_metrics.hpp"
#include "api/result_cache.hpp"
#include "api/sweep.hpp"
#include "api/suite_runner.hpp"
#include "api/registry.hpp"

// analysis: the static protocol verifier -- lint machines and specs
// without running a period
#include "analysis/report.hpp"
#include "analysis/machine_checks.hpp"
#include "analysis/exact_chain.hpp"
#include "analysis/exact_checks.hpp"
#include "analysis/verifier.hpp"

// dist: multi-process cluster sweep dispatch over the api engine
#include "dist/wire.hpp"
#include "dist/worker.hpp"
#include "dist/dispatcher.hpp"
