#include "core/mean_field.hpp"

#include <cmath>
#include <stdexcept>

#include "core/transition_model.hpp"

namespace deproto::core {

namespace {

/// Exponent vector (over machine states) of the monomial a sampling-type
/// action's firing probability is proportional to.
std::vector<unsigned> firing_monomial(std::size_t num_states,
                                      std::size_t executor,
                                      std::size_t same_state_samples,
                                      const std::vector<std::size_t>& targets) {
  std::vector<unsigned> exps(num_states, 0U);
  exps[executor] += 1;  // the executing process itself
  exps[executor] += static_cast<unsigned>(same_state_samples);
  for (std::size_t s : targets) exps[s] += 1;
  return exps;
}

}  // namespace

ode::EquationSystem mean_field(const ProtocolStateMachine& m, double f) {
  if (!(f >= 0.0 && f < 1.0)) {
    throw std::invalid_argument("mean_field: f must lie in [0, 1)");
  }
  ode::EquationSystem sys(m.state_names());
  const std::size_t n = m.num_states();

  for (const Action& action : m.actions()) {
    std::visit(
        [&](const auto& a) {
          using T = std::decay_t<decltype(a)>;
          if constexpr (std::is_same_v<T, FlippingAction>) {
            std::vector<unsigned> exps(n, 0U);
            exps[a.from_state] = 1;
            const double rate = a.coin_bias;
            sys.add_term(a.from_state, ode::Term(-rate, exps));
            sys.add_term(a.to_state, ode::Term(+rate, exps));
          } else if constexpr (std::is_same_v<T, SamplingAction>) {
            const auto probes = a.same_state_samples + a.target_states.size();
            const double rate =
                a.coin_bias *
                std::pow(1.0 - f, static_cast<double>(probes));
            auto exps = firing_monomial(n, a.from_state, a.same_state_samples,
                                        a.target_states);
            sys.add_term(a.from_state, ode::Term(-rate, exps));
            sys.add_term(a.to_state, ode::Term(+rate, std::move(exps)));
          } else if constexpr (std::is_same_v<T, TokenizingAction>) {
            const auto probes = a.same_state_samples + a.target_states.size();
            const double rate =
                a.coin_bias *
                std::pow(1.0 - f, static_cast<double>(probes));
            // The firing monomial is over the *executor*'s term; the token
            // moves a process out of token_state (assumed non-empty).
            auto exps = firing_monomial(n, a.executor_state,
                                        a.same_state_samples,
                                        a.target_states);
            sys.add_term(a.token_state, ode::Term(-rate, exps));
            sys.add_term(a.to_state, ode::Term(+rate, std::move(exps)));
          } else if constexpr (std::is_same_v<T, PushAction>) {
            // Executor y converts sampled processes in target_state x:
            // linearized drift = fanout * q * (1-f) * y * x.
            std::vector<unsigned> exps(n, 0U);
            exps[a.executor_state] += 1;
            exps[a.target_state] += 1;
            const double rate =
                static_cast<double>(a.fanout) * a.coin_bias * (1.0 - f);
            sys.add_term(a.target_state, ode::Term(-rate, exps));
            sys.add_term(a.to_state, ode::Term(+rate, std::move(exps)));
          } else if constexpr (std::is_same_v<T, AnyOfSamplingAction>) {
            // Pull: x converts if any of b sampled targets is in match
            // state; linearized drift = fanout * q * (1-f) * x * y.
            std::vector<unsigned> exps(n, 0U);
            exps[a.from_state] += 1;
            exps[a.match_state] += 1;
            const double rate =
                static_cast<double>(a.fanout) * a.coin_bias * (1.0 - f);
            sys.add_term(a.from_state, ode::Term(-rate, exps));
            sys.add_term(a.to_state, ode::Term(+rate, std::move(exps)));
          }
        },
        action);
  }
  return sys;
}

num::Vec exact_drift(const ProtocolStateMachine& m, const num::Vec& x,
                     double f) {
  if (x.size() != m.num_states()) {
    throw std::invalid_argument("exact_drift: state size mismatch");
  }
  num::Vec drift(m.num_states(), 0.0);
  // Per-action rates (including the token-drop gate) live in the shared
  // transition model; the drift is just their mass balance.
  for (const TransitionChannel& ch : transition_channels(m, x, f)) {
    drift[ch.from] -= ch.rate;
    drift[ch.to] += ch.rate;
  }
  return drift;
}

bool verifies_equivalence(const ProtocolStateMachine& m,
                          const ode::EquationSystem& source, double f,
                          double tol) {
  const ode::EquationSystem derived = mean_field(m, f);
  const ode::EquationSystem expected =
      source.scaled(m.normalizing_p());
  return ode::equivalent(derived, expected, tol);
}

}  // namespace deproto::core
