#pragma once
// Per-period transition-probability extraction shared by every consumer of
// a ProtocolStateMachine's dynamics: the mean-field drift (exact_drift),
// the CLT noise model (fluctuations.cpp), and the count-based simulation
// backend (sim/count_sim.cpp). Each action contributes exactly one channel
// describing who attempts it, what mass moves where, and with what
// per-executor firing probability at a given population point x.

#include <cstddef>
#include <vector>

#include "core/state_machine.hpp"
#include "numerics/vector.hpp"

namespace deproto::core {

/// One action's transition channel at a population point x (fractions of N
/// for the mean-field consumers; per-probe hit probabilities for the count
/// backend). `fire_prob` is the probability that a single executor fires
/// the action this period; `rate` is the expected population fraction
/// moved from -> to, i.e. fire_prob * x[executor] with the token-drop gate
/// applied (a Tokenizing channel's rate is 0 when x[token_state] <= 0).
///
/// For PushAction the "firing" is a conversion of a *target*: `executor`
/// is still the pushing state, but `from` is the converted target state
/// and `fire_prob` is the expected conversions per executor
/// (fanout * coin * (1-f) * x[target], the linearized form exact_drift
/// uses). Count-level consumers that need the per-contact conversion
/// probability should visit the underlying action instead.
struct TransitionChannel {
  std::size_t action = 0;    ///< index into machine.actions()
  std::size_t executor = 0;  ///< state whose members attempt the action
  std::size_t from = 0;      ///< state mass leaves when the action fires
  std::size_t to = 0;        ///< state mass enters when the action fires
  double fire_prob = 0.0;    ///< per-executor firing probability at x
  double rate = 0.0;         ///< expected moved mass (fraction of N)
  bool moves_executor = false;  ///< from == executor (self-transition)
};

/// Evaluate every action of `machine` at the point `x` under message-loss
/// probability `message_loss`. Channels are returned in machine.actions()
/// order, one per action, so channels[i] corresponds to actions()[i] and
/// per-state consumers can index them through actions_of(state).
[[nodiscard]] std::vector<TransitionChannel> transition_channels(
    const ProtocolStateMachine& machine, const num::Vec& x,
    double message_loss = 0.0);

}  // namespace deproto::core
