#pragma once
// Per-period transition-probability extraction shared by every consumer of
// a ProtocolStateMachine's dynamics: the mean-field drift (exact_drift),
// the CLT noise model (fluctuations.cpp), and the count-based simulation
// backend (sim/count_sim.cpp). Each action contributes exactly one channel
// describing who attempts it, what mass moves where, and with what
// per-executor firing probability at a given population point x.

#include <cstddef>
#include <vector>

#include "core/state_machine.hpp"
#include "numerics/vector.hpp"

namespace deproto::core {

/// One action's transition channel at a population point x (fractions of N
/// for the mean-field consumers; per-probe hit probabilities for the count
/// backend). `fire_prob` is the probability that a single executor fires
/// the action this period; `rate` is the expected population fraction
/// moved from -> to, i.e. fire_prob * x[executor] with the token-drop gate
/// applied (a Tokenizing channel's rate is 0 when x[token_state] <= 0).
///
/// For PushAction the "firing" is a conversion of a *target*: `executor`
/// is still the pushing state, but `from` is the converted target state
/// and `fire_prob` is the expected conversions per executor
/// (fanout * coin * (1-f) * x[target], the linearized form exact_drift
/// uses). Count-level consumers that need the per-contact conversion
/// probability should visit the underlying action instead.
struct TransitionChannel {
  std::size_t action = 0;    ///< index into machine.actions()
  std::size_t executor = 0;  ///< state whose members attempt the action
  std::size_t from = 0;      ///< state mass leaves when the action fires
  std::size_t to = 0;        ///< state mass enters when the action fires
  double fire_prob = 0.0;    ///< per-executor firing probability at x
  double rate = 0.0;         ///< expected moved mass (fraction of N)
  bool moves_executor = false;  ///< from == executor (self-transition)
};

/// Evaluate every action of `machine` at the point `x` under message-loss
/// probability `message_loss`. Channels are returned in machine.actions()
/// order, one per action, so channels[i] corresponds to actions()[i] and
/// per-state consumers can index them through actions_of(state).
[[nodiscard]] std::vector<TransitionChannel> transition_channels(
    const ProtocolStateMachine& machine, const num::Vec& x,
    double message_loss = 0.0);

/// Point-free structure of one action's channel: who must be occupied for
/// the action to fire, where mass moves, and the worst-case per-executor
/// firing probability over the whole simplex (every occupancy factor at
/// its maximum 1). This is the static view the analysis layer checks
/// without running a period: `max_fire_prob` bounds `fire_prob` of
/// transition_channels at every feasible x, and `requires_occupied` lists
/// the states whose emptiness gates the channel (executor, sampling
/// targets, and the token state for Tokenizing).
///
/// For PushAction, `max_fire_prob` is the expected conversions per
/// executor (fanout * coin), which legitimately exceeds 1 at fanout > 1:
/// it is a rate bound, not a probability, mirroring TransitionChannel.
struct ChannelShape {
  std::size_t action = 0;    ///< index into machine.actions()
  std::size_t executor = 0;  ///< state whose members attempt the action
  std::size_t from = 0;      ///< state mass leaves when the action fires
  std::size_t to = 0;        ///< state mass enters when the action fires
  double coin_bias = 0.0;    ///< the action's raw coin bias
  double max_fire_prob = 0.0;   ///< sup over the simplex of fire_prob
  bool moves_executor = false;  ///< from == executor (self-transition)
  std::vector<std::size_t> requires_occupied;  ///< gating states, deduped
};

/// The structural channel per action, in machine.actions() order (so
/// shapes[i] corresponds to actions()[i], like transition_channels).
[[nodiscard]] std::vector<ChannelShape> channel_shapes(
    const ProtocolStateMachine& machine);

}  // namespace deproto::core
