#include "core/transition_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <variant>

#include "core/action.hpp"

namespace deproto::core {

namespace {

void require_state(std::vector<std::size_t>& states, std::size_t s) {
  if (std::find(states.begin(), states.end(), s) == states.end()) {
    states.push_back(s);
  }
}

}  // namespace

std::vector<TransitionChannel> transition_channels(
    const ProtocolStateMachine& machine, const num::Vec& x,
    double message_loss) {
  if (x.size() != machine.num_states()) {
    throw std::invalid_argument("transition_channels: state size mismatch");
  }
  const double f = message_loss;
  std::vector<TransitionChannel> channels;
  channels.reserve(machine.actions().size());

  for (std::size_t i = 0; i < machine.actions().size(); ++i) {
    TransitionChannel ch;
    ch.action = i;
    std::visit(
        [&](const auto& a) {
          using T = std::decay_t<decltype(a)>;
          if constexpr (std::is_same_v<T, FlippingAction>) {
            ch.executor = a.from_state;
            ch.from = a.from_state;
            ch.to = a.to_state;
            ch.fire_prob = a.coin_bias;
            ch.rate = a.coin_bias * x[a.from_state];
            ch.moves_executor = true;
          } else if constexpr (std::is_same_v<T, SamplingAction>) {
            double prob = a.coin_bias;
            for (std::size_t k = 0; k < a.same_state_samples; ++k) {
              prob *= (1.0 - f) * x[a.from_state];
            }
            for (std::size_t s : a.target_states) prob *= (1.0 - f) * x[s];
            ch.executor = a.from_state;
            ch.from = a.from_state;
            ch.to = a.to_state;
            ch.fire_prob = prob;
            ch.rate = prob * x[a.from_state];
            ch.moves_executor = true;
          } else if constexpr (std::is_same_v<T, TokenizingAction>) {
            double prob = a.coin_bias;
            for (std::size_t k = 0; k < a.same_state_samples; ++k) {
              prob *= (1.0 - f) * x[a.executor_state];
            }
            for (std::size_t s : a.target_states) prob *= (1.0 - f) * x[s];
            ch.executor = a.executor_state;
            ch.from = a.token_state;
            ch.to = a.to_state;
            ch.fire_prob = prob;
            // Tokens drop when nobody is in token_state.
            ch.rate = x[a.token_state] > 0.0 ? prob * x[a.executor_state]
                                             : 0.0;
            ch.moves_executor = false;
          } else if constexpr (std::is_same_v<T, PushAction>) {
            // Each of the fanout probes from each executor converts an
            // x-target with probability (1-f) * x_target * q.
            ch.executor = a.executor_state;
            ch.from = a.target_state;
            ch.to = a.to_state;
            ch.fire_prob = static_cast<double>(a.fanout) * a.coin_bias *
                           (1.0 - f) * x[a.target_state];
            ch.rate = static_cast<double>(a.fanout) * a.coin_bias *
                      (1.0 - f) * x[a.executor_state] * x[a.target_state];
            ch.moves_executor = false;
          } else if constexpr (std::is_same_v<T, AnyOfSamplingAction>) {
            // Exact any-of-b probability, no linearization.
            const double hit = (1.0 - f) * x[a.match_state];
            const double prob =
                1.0 - std::pow(1.0 - hit, static_cast<double>(a.fanout));
            ch.executor = a.from_state;
            ch.from = a.from_state;
            ch.to = a.to_state;
            ch.fire_prob = a.coin_bias * prob;
            ch.rate = a.coin_bias * prob * x[a.from_state];
            ch.moves_executor = true;
          }
        },
        machine.actions()[i]);
    channels.push_back(ch);
  }
  return channels;
}

std::vector<ChannelShape> channel_shapes(const ProtocolStateMachine& machine) {
  std::vector<ChannelShape> shapes;
  shapes.reserve(machine.actions().size());

  for (std::size_t i = 0; i < machine.actions().size(); ++i) {
    ChannelShape sh;
    sh.action = i;
    std::visit(
        [&](const auto& a) {
          using T = std::decay_t<decltype(a)>;
          if constexpr (std::is_same_v<T, FlippingAction>) {
            sh.executor = a.from_state;
            sh.from = a.from_state;
            sh.to = a.to_state;
            sh.coin_bias = a.coin_bias;
            sh.max_fire_prob = a.coin_bias;
            sh.moves_executor = true;
            require_state(sh.requires_occupied, a.from_state);
          } else if constexpr (std::is_same_v<T, SamplingAction>) {
            sh.executor = a.from_state;
            sh.from = a.from_state;
            sh.to = a.to_state;
            sh.coin_bias = a.coin_bias;
            // Every occupancy factor (same-state samples and targets) is
            // at most 1, so the coin bias bounds the firing probability.
            sh.max_fire_prob = a.coin_bias;
            sh.moves_executor = true;
            require_state(sh.requires_occupied, a.from_state);
            for (const std::size_t s : a.target_states) {
              require_state(sh.requires_occupied, s);
            }
          } else if constexpr (std::is_same_v<T, TokenizingAction>) {
            sh.executor = a.executor_state;
            sh.from = a.token_state;
            sh.to = a.to_state;
            sh.coin_bias = a.coin_bias;
            sh.max_fire_prob = a.coin_bias;
            sh.moves_executor = false;
            require_state(sh.requires_occupied, a.executor_state);
            require_state(sh.requires_occupied, a.token_state);
            for (const std::size_t s : a.target_states) {
              require_state(sh.requires_occupied, s);
            }
          } else if constexpr (std::is_same_v<T, PushAction>) {
            sh.executor = a.executor_state;
            sh.from = a.target_state;
            sh.to = a.to_state;
            sh.coin_bias = a.coin_bias;
            sh.max_fire_prob = static_cast<double>(a.fanout) * a.coin_bias;
            sh.moves_executor = false;
            require_state(sh.requires_occupied, a.executor_state);
            require_state(sh.requires_occupied, a.target_state);
          } else if constexpr (std::is_same_v<T, AnyOfSamplingAction>) {
            sh.executor = a.from_state;
            sh.from = a.from_state;
            sh.to = a.to_state;
            sh.coin_bias = a.coin_bias;
            // 1 - (1 - hit)^fanout <= 1, so the coin bias is the bound.
            sh.max_fire_prob = a.coin_bias;
            sh.moves_executor = true;
            require_state(sh.requires_occupied, a.from_state);
            require_state(sh.requires_occupied, a.match_state);
          }
        },
        machine.actions()[i]);
    shapes.push_back(std::move(sh));
  }
  return shapes;
}

}  // namespace deproto::core
