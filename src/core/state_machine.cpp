#include "core/state_machine.hpp"

#include <sstream>
#include <stdexcept>

namespace deproto::core {

ProtocolStateMachine::ProtocolStateMachine(
    std::vector<std::string> state_names, double normalizing_p)
    : states_(std::move(state_names)),
      by_state_(states_.size()),
      p_(normalizing_p) {
  if (states_.empty()) {
    throw std::invalid_argument("ProtocolStateMachine: no states");
  }
  if (!(p_ > 0.0 && p_ <= 1.0)) {
    throw std::invalid_argument(
        "ProtocolStateMachine: normalizing p must be in (0, 1]");
  }
}

const std::string& ProtocolStateMachine::state_name(std::size_t id) const {
  if (id >= states_.size()) {
    throw std::out_of_range("ProtocolStateMachine::state_name");
  }
  return states_[id];
}

std::optional<std::size_t> ProtocolStateMachine::state_index(
    const std::string& name) const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == name) return i;
  }
  return std::nullopt;
}

void ProtocolStateMachine::add_action(Action action) {
  const std::size_t exec = executor_state(action);
  if (exec >= states_.size()) {
    throw std::out_of_range("ProtocolStateMachine::add_action: bad state");
  }
  by_state_[exec].push_back(actions_.size());
  actions_.push_back(std::move(action));
}

const std::vector<std::size_t>& ProtocolStateMachine::actions_of(
    std::size_t state) const {
  if (state >= by_state_.size()) {
    throw std::out_of_range("ProtocolStateMachine::actions_of");
  }
  return by_state_[state];
}

std::size_t ProtocolStateMachine::messages_per_period(
    std::size_t state) const {
  std::size_t n = 0;
  for (std::size_t idx : actions_of(state)) {
    n += core::messages_per_period(actions_[idx]);
  }
  return n;
}

std::size_t ProtocolStateMachine::max_messages_per_period() const {
  std::size_t best = 0;
  for (std::size_t s = 0; s < states_.size(); ++s) {
    best = std::max(best, messages_per_period(s));
  }
  return best;
}

std::string ProtocolStateMachine::to_string() const {
  std::ostringstream out;
  out << "protocol state machine (p = " << p_ << ")\n";
  for (std::size_t s = 0; s < states_.size(); ++s) {
    out << "state " << states_[s] << " (" << messages_per_period(s)
        << " msg/period):\n";
    for (std::size_t idx : by_state_[s]) {
      out << "  " << core::to_string(actions_[idx], states_) << '\n';
    }
  }
  return out.str();
}

}  // namespace deproto::core
