#pragma once

// The converse map: from a protocol state machine back to the differential
// equations it realizes in an infinite group. This is the mechanical content
// of Theorems 1 and 5 -- synthesize() followed by mean_field() returns
// p * (source system) -- and it doubles as the analysis tool for modified
// machines (failure compensation, push-pull variants).

#include "core/state_machine.hpp"
#include "numerics/vector.hpp"
#include "ode/equation_system.hpp"

namespace deproto::core {

/// Expected per-period drift of the fraction-of-processes vector, as a
/// polynomial equation system over the machine's states.
///
/// `f` is the network failure rate per connection attempt: each sampling
/// probe independently yields nothing with probability f, multiplying the
/// realized rate of a sampling/tokenizing action by (1-f)^{probes}.
///
/// AnyOf (pull) and Push actions produce bilinear terms b * q * x * y --
/// the small-fraction linearization of 1 - (1 - q*y)^b; use exact_drift for
/// the unlinearized finite-fanout value.
[[nodiscard]] ode::EquationSystem mean_field(const ProtocolStateMachine& m,
                                             double f = 0.0);

/// Exact expected drift at the point `x` (fractions summing to 1),
/// including the non-polynomial any-of-b pull probability. Suitable for
/// comparing against simulation at finite fanout.
[[nodiscard]] num::Vec exact_drift(const ProtocolStateMachine& m,
                                   const num::Vec& x, double f = 0.0);

/// Check Theorem 1/5 equivalence: mean_field(machine, f) equals
/// source.scaled(machine.normalizing_p()) up to `tol`.
[[nodiscard]] bool verifies_equivalence(const ProtocolStateMachine& m,
                                        const ode::EquationSystem& source,
                                        double f = 0.0, double tol = 1e-9);

}  // namespace deproto::core
