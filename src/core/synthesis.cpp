#include "core/synthesis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/failure_compensation.hpp"
#include "ode/rewriting.hpp"

namespace deproto::core {

namespace {

/// A provisional action whose coin bias is still expressed as a bare rate
/// constant; p is applied once it is known.
struct PendingCoin {
  std::size_t action_index;   // into machine.actions() construction order
  double rate_constant;       // c
  double failure_factor;      // ff = (1/(1-f))^{|T|-1}
};

bool matches_push_pull(const ode::EquationSystem& sys,
                       const std::vector<PushPullSpec>& specs,
                       std::size_t eq_x, const ode::Term& term,
                       std::size_t* out_y) {
  for (const PushPullSpec& spec : specs) {
    const auto ix = sys.index_of(spec.state_x);
    const auto iy = sys.index_of(spec.state_y);
    if (!ix || !iy) {
      throw SynthesisError("push_pull: unknown state " + spec.state_x + "/" +
                           spec.state_y);
    }
    if (eq_x != *ix) continue;
    // Exactly -beta * x * y?
    if (term.exponent(*ix) == 1 && term.exponent(*iy) == 1 &&
        term.total_degree() == 2) {
      *out_y = *iy;
      return true;
    }
  }
  return false;
}

/// Lexicographic expansion of prod_{y != skip} y^{i_y}: for each variable in
/// name order, append i_y copies of its state id.
std::vector<std::size_t> lexicographic_targets(const ode::EquationSystem& sys,
                                               const ode::Term& term,
                                               std::size_t skip) {
  std::vector<std::size_t> targets;
  for (std::size_t var : sys.lexicographic_order()) {
    if (var == skip) continue;
    for (unsigned k = 0; k < term.exponent(var); ++k) targets.push_back(var);
  }
  return targets;
}

}  // namespace

SynthesisResult synthesize(const ode::EquationSystem& input,
                           const SynthesisOptions& options) {
  ode::EquationSystem sys = input;
  SynthesisResult result{ProtocolStateMachine({"_"}), {}, sys, 1.0, {}};

  // --- Taxonomy gate, with optional rewriting -------------------------------
  if (!ode::is_complete(sys)) {
    if (!options.auto_rewrite) {
      throw SynthesisError(
          "system is not complete (right-hand sides do not sum to zero); "
          "rewrite with ode::complete() or set auto_rewrite");
    }
    sys = ode::complete(sys, options.slack_name);
    result.notes.push_back("auto-rewrite: added slack variable '" +
                           options.slack_name + "' to complete the system");
  }

  // Bare-constant terms block both Sampling and Tokenizing; expand them.
  bool has_constant = false;
  for (std::size_t v = 0; v < sys.num_vars(); ++v) {
    for (const ode::Term& t : sys.rhs(v)) {
      if (t.is_constant() && t.coefficient() != 0.0) has_constant = true;
    }
  }
  if (has_constant) {
    if (!options.auto_rewrite) {
      throw SynthesisError(
          "system has bare-constant terms; rewrite with "
          "ode::expand_constants() or set auto_rewrite");
    }
    sys = ode::expand_constants(sys);
    result.notes.push_back(
        "auto-rewrite: expanded bare constants c into c * (sum of all "
        "variables)");
  }

  result.taxonomy = ode::classify(sys);
  if (!result.taxonomy.complete) {
    throw SynthesisError("system is not complete after rewriting");
  }
  if (!result.taxonomy.completely_partitionable) {
    throw SynthesisError(
        "system is not completely partitionable: " + result.taxonomy.detail);
  }
  result.source = sys;

  // --- Map each {-T, +T} pair to an action ----------------------------------
  ProtocolStateMachine machine(sys.names(), 1.0);
  std::vector<PendingCoin> pending;
  std::vector<std::size_t> push_pull_actions;  // bias stays 1.0

  for (const ode::PartitionPair& pair : result.taxonomy.partition) {
    const std::size_t eq_x = pair.negative.equation;
    const std::size_t to_state = pair.positive.equation;
    const ode::Term& term = sys.rhs(eq_x)[pair.negative.term];
    const double c = -term.coefficient();  // positive rate constant
    const unsigned i_x = term.exponent(eq_x);
    std::ostringstream note;
    note << "term " << term.to_string(sys.names()) << " in d"
         << sys.name(eq_x) << "/dt: ";

    std::size_t y_state = 0;
    if (matches_push_pull(sys, options.push_pull, eq_x, term, &y_state)) {
      // Section 4.1.2: -beta*x*y as pull + push with fanout b = beta/2.
      const double half = c / 2.0;
      const auto b = static_cast<unsigned>(std::llround(half));
      if (std::abs(half - static_cast<double>(b)) > 1e-9 || b == 0) {
        throw SynthesisError(
            "push_pull: beta must be a small even positive integer, got " +
            std::to_string(c));
      }
      AnyOfSamplingAction pull;
      pull.from_state = eq_x;
      pull.match_state = y_state;
      pull.to_state = to_state;
      pull.fanout = b;
      pull.coin_bias = 1.0;
      pull.provenance = pair.negative;
      push_pull_actions.push_back(machine.actions().size());
      machine.add_action(pull);

      PushAction push;
      push.executor_state = y_state;
      push.target_state = eq_x;
      push.to_state = to_state;
      push.fanout = b;
      push.coin_bias = 1.0;
      push.provenance = pair.negative;
      push_pull_actions.push_back(machine.actions().size());
      machine.add_action(push);

      note << "push+pull pair with b = beta/2 = " << b
           << " (effective contact rate ~ 2b)";
      result.notes.push_back(note.str());
      continue;
    }

    if (i_x >= 1 && term.total_degree() == 1) {
      // -c * x: Flipping.
      FlippingAction a;
      a.from_state = eq_x;
      a.to_state = to_state;
      a.rate_constant = c;
      a.coin_bias = c;  // p applied below
      a.provenance = pair.negative;
      pending.push_back({machine.actions().size(), c, 1.0});
      machine.add_action(a);
      note << "Flipping, coin rate " << c << ", -> " << sys.name(to_state);
    } else if (i_x >= 1) {
      // One-Time-Sampling.
      SamplingAction a;
      a.from_state = eq_x;
      a.to_state = to_state;
      a.same_state_samples = i_x - 1;
      a.target_states = lexicographic_targets(sys, term, eq_x);
      a.rate_constant = c;
      a.coin_bias = c;
      a.provenance = pair.negative;
      const double ff =
          failure_factor(term.variable_occurrences(), options.failure_rate);
      pending.push_back({machine.actions().size(), c, ff});
      machine.add_action(a);
      note << "One-Time-Sampling of "
           << (a.same_state_samples + a.target_states.size())
           << " target(s), coin rate " << c << ", -> " << sys.name(to_state);
    } else {
      // i_x == 0: Tokenizing (Section 6).
      if (!options.allow_tokenizing) {
        throw SynthesisError(
            "term " + term.to_string(sys.names()) + " in d" + sys.name(eq_x) +
            "/dt has i_x = 0 and Tokenizing is disabled (system is not "
            "restricted polynomial)");
      }
      // Choose w: the lexicographically smallest variable with i_w >= 1.
      std::optional<std::size_t> w;
      for (std::size_t var : sys.lexicographic_order()) {
        if (term.exponent(var) >= 1) {
          w = var;
          break;
        }
      }
      if (!w) {
        throw SynthesisError("internal: constant term survived rewriting");
      }
      TokenizingAction a;
      a.executor_state = *w;
      a.token_state = eq_x;
      a.to_state = to_state;
      a.same_state_samples = term.exponent(*w) - 1;
      a.target_states = lexicographic_targets(sys, term, *w);
      a.rate_constant = c;
      a.coin_bias = c;
      a.provenance = pair.negative;
      const double ff =
          failure_factor(term.variable_occurrences(), options.failure_rate);
      pending.push_back({machine.actions().size(), c, ff});
      machine.add_action(a);
      note << "Tokenizing executed by state " << sys.name(*w)
           << ", token moves a " << sys.name(eq_x) << " process to "
           << sys.name(to_state);
    }
    result.notes.push_back(note.str());
  }

  // --- Choose the normalizing constant p ------------------------------------
  double max_rate = 0.0;
  for (const PendingCoin& coin : pending) {
    max_rate = std::max(max_rate, coin.rate_constant * coin.failure_factor);
  }
  double p = 1.0;
  if (options.p) {
    p = *options.p;
    if (!(p > 0.0 && p <= 1.0)) {
      throw SynthesisError("normalizing p must lie in (0, 1]");
    }
    if (p * max_rate > 1.0 + 1e-12) {
      throw SynthesisError(
          "normalizing p too large: p * c * ff exceeds 1 for some term");
    }
  } else if (max_rate > 1.0) {
    p = 1.0 / max_rate;
  }
  result.p = p;
  machine.set_normalizing_p(p);
  {
    std::ostringstream note;
    note << "normalizing constant p = " << p
         << " (largest coin rate constant " << max_rate << ")";
    result.notes.push_back(note.str());
  }

  // Re-build the machine with final biases (actions are value types; adjust
  // in a copy since ProtocolStateMachine exposes actions immutably).
  ProtocolStateMachine final_machine(sys.names(), p);
  std::vector<Action> actions = machine.actions();
  for (const PendingCoin& coin : pending) {
    Action& a = actions[coin.action_index];
    const double bias = p * coin.rate_constant * coin.failure_factor;
    std::visit([bias](auto& act) { act.coin_bias = bias; }, a);
  }
  for (Action& a : actions) final_machine.add_action(std::move(a));

  result.machine = std::move(final_machine);
  return result;
}

}  // namespace deproto::core
