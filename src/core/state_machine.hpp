#pragma once

// The synthesized artifact: a probabilistic protocol state machine. States
// mirror the variables of the source equation system; behaviour is the set
// of periodic actions attached to each state.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/action.hpp"

namespace deproto::core {

class ProtocolStateMachine {
 public:
  ProtocolStateMachine() = default;
  explicit ProtocolStateMachine(std::vector<std::string> state_names,
                                double normalizing_p = 1.0);

  [[nodiscard]] std::size_t num_states() const noexcept {
    return states_.size();
  }
  [[nodiscard]] const std::vector<std::string>& state_names() const noexcept {
    return states_;
  }
  [[nodiscard]] const std::string& state_name(std::size_t id) const;
  [[nodiscard]] std::optional<std::size_t> state_index(
      const std::string& name) const;

  /// The system-wide normalizing constant p chosen by synthesis. The mean
  /// field of the machine equals p * (source system): the protocol runs the
  /// source dynamics with time dilated by 1/p periods per time unit.
  [[nodiscard]] double normalizing_p() const noexcept { return p_; }
  void set_normalizing_p(double p) { p_ = p; }

  void add_action(Action action);

  /// All actions, in insertion order.
  [[nodiscard]] const std::vector<Action>& actions() const noexcept {
    return actions_;
  }

  /// Indices into actions() of the actions executed by `state`'s members.
  [[nodiscard]] const std::vector<std::size_t>& actions_of(
      std::size_t state) const;

  /// Sampling messages sent per period by one process in `state`
  /// (Section 3's message-complexity bound).
  [[nodiscard]] std::size_t messages_per_period(std::size_t state) const;

  /// Largest per-period message count over all states.
  [[nodiscard]] std::size_t max_messages_per_period() const;

  /// Multi-line rendering in the style of the paper's Figure 3.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> states_;
  std::vector<Action> actions_;
  std::vector<std::vector<std::size_t>> by_state_;
  double p_ = 1.0;
};

}  // namespace deproto::core
