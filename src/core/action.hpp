#pragma once

// The action vocabulary of the synthesized state machines (Sections 3, 6 and
// the Section 4.1.2 push optimization). Every action is executed once per
// protocol period by each process whose current state matches the action's
// executor state. Each action carries provenance: the equation term that
// produced it.

#include <cstddef>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "ode/taxonomy.hpp"

namespace deproto::core {

/// Flipping (Section 3.1): a process in `from_state` tosses a coin with
/// heads probability `coin_bias` (= p * c); on heads it moves to `to_state`.
/// Maps a term -c*x on the rhs of x-dot. Sends no messages.
struct FlippingAction {
  std::size_t from_state = 0;
  std::size_t to_state = 0;
  double coin_bias = 0.0;      // p * c (after any failure compensation)
  double rate_constant = 0.0;  // c of the source term
  ode::TermRef provenance;
};

/// One-Time-Sampling (Section 3.1): a process in `from_state` samples
/// (i_x - 1 + Sum_{y != x} i_y) processes uniformly at random and flips a
/// coin with heads probability `coin_bias`. It moves to `to_state` iff
///  (a) the first (i_x - 1) samples are in `from_state`,
///  (b) for each j, the j-th further sample matches `target_states[j]`
///      (the lexicographic expansion of prod_{y != x} y^{i_y}), and
///  (c) the coin lands heads.
struct SamplingAction {
  std::size_t from_state = 0;
  std::size_t to_state = 0;
  std::size_t same_state_samples = 0;        // i_x - 1
  std::vector<std::size_t> target_states;    // lexicographic, one per sample
  double coin_bias = 0.0;
  double rate_constant = 0.0;
  ode::TermRef provenance;
};

/// Tokenizing (Section 6): maps a negative term -c*T on the rhs of x-dot
/// with i_x = 0. A process in `executor_state` (the chosen variable w with
/// i_w >= 1) runs the flipping/sampling conditions; when they all hold it
/// does NOT transition, but creates a token and forwards it to a process in
/// `token_state` (= x), which transitions to `to_state` upon receipt. When
/// no process is in `token_state`, the token is dropped.
struct TokenizingAction {
  std::size_t executor_state = 0;            // w
  std::size_t token_state = 0;               // x, the state losing a process
  std::size_t to_state = 0;                  // state with the paired +T term
  std::size_t same_state_samples = 0;        // i_w - 1
  std::vector<std::size_t> target_states;    // other variables of T, lex.
  double coin_bias = 0.0;
  double rate_constant = 0.0;
  ode::TermRef provenance;
};

/// Push (Section 4.1.2, action (iv) of the endemic protocol): a process in
/// `executor_state` samples `fanout` processes uniformly at random; every
/// sampled process currently in `target_state` immediately transitions to
/// `to_state`. With the paired pull action at fanout b, the effective
/// contact rate is N(1-(1-b/N)^2) ~= 2b. This is the paper's protocol
/// *variant* (see errata), not an output of the pure mapping rules.
struct PushAction {
  std::size_t executor_state = 0;
  std::size_t target_state = 0;
  std::size_t to_state = 0;
  unsigned fanout = 1;
  double coin_bias = 1.0;  // applied per converted target
  ode::TermRef provenance;
};

/// A pull variant of SamplingAction used by the endemic optimization: sample
/// `fanout` targets and transition if ANY of them is in `match_state`
/// (instead of requiring an exact per-sample pattern).
struct AnyOfSamplingAction {
  std::size_t from_state = 0;
  std::size_t match_state = 0;
  std::size_t to_state = 0;
  unsigned fanout = 1;
  double coin_bias = 1.0;
  ode::TermRef provenance;
};

using Action = std::variant<FlippingAction, SamplingAction, TokenizingAction,
                            PushAction, AnyOfSamplingAction>;

/// The state whose members execute this action each period.
[[nodiscard]] std::size_t executor_state(const Action& action);

/// Number of sampling messages this action sends per period per executor
/// (Section 3's message-complexity accounting; Flipping sends none).
[[nodiscard]] std::size_t messages_per_period(const Action& action);

/// |T|: total variable occurrences of the source term (failure factor input).
[[nodiscard]] unsigned term_occurrences(const Action& action);

/// Human-readable one-line description given state names.
[[nodiscard]] std::string to_string(const Action& action,
                                    std::span<const std::string> states);

}  // namespace deproto::core
