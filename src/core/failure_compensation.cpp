#include "core/failure_compensation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deproto::core {

double failure_factor(unsigned term_occurrences, double f) {
  if (!(f >= 0.0 && f < 1.0)) {
    throw std::invalid_argument("failure_factor: f must lie in [0, 1)");
  }
  if (term_occurrences <= 1) return 1.0;
  return std::pow(1.0 / (1.0 - f),
                  static_cast<double>(term_occurrences - 1));
}

ProtocolStateMachine compensate_for_failures(
    const ProtocolStateMachine& machine, double f) {
  std::vector<Action> actions = machine.actions();

  // Multiply sampling-type biases by the failure factor.
  for (Action& action : actions) {
    const double ff = failure_factor(term_occurrences(action), f);
    std::visit(
        [ff](auto& a) {
          using T = std::decay_t<decltype(a)>;
          if constexpr (!std::is_same_v<T, FlippingAction>) {
            a.coin_bias *= ff;
          }
        },
        action);
  }

  // Renormalize if any bias exceeds 1.
  double max_bias = 0.0;
  for (const Action& action : actions) {
    std::visit([&](const auto& a) { max_bias = std::max(max_bias, a.coin_bias); },
               action);
  }
  double scale = 1.0;
  if (max_bias > 1.0) scale = 1.0 / max_bias;

  ProtocolStateMachine out(machine.state_names(),
                           machine.normalizing_p() * scale);
  for (Action& action : actions) {
    std::visit([scale](auto& a) { a.coin_bias *= scale; }, action);
    out.add_action(std::move(action));
  }
  return out;
}

}  // namespace deproto::core
