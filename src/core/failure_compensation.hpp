#pragma once

// Section 3, "The Effect of Failures": with a group-wide failure rate f per
// connection attempt, every one-time-sampling term T picks up a
// multiplicative factor (1/(1-f))^{|T|-1} relative to the modeled equation.
// Compensating multiplies the corresponding coin bias by the same factor
// (shrinking the system-wide p if any bias would exceed 1).

#include "core/state_machine.hpp"

namespace deproto::core {

/// (1/(1-f))^{occurrences - 1}. Flipping terms (|T| = 1) get factor 1.
[[nodiscard]] double failure_factor(unsigned term_occurrences, double f);

/// Return a machine whose sampling-type coin biases are multiplied by the
/// failure factor for `f`. If any bias would exceed 1, *all* coin biases
/// (and the machine's p) are scaled down so the largest equals 1 -- the
/// paper's "the normalizing constant p may need to be reduced".
[[nodiscard]] ProtocolStateMachine compensate_for_failures(
    const ProtocolStateMachine& machine, double f);

}  // namespace deproto::core
