#pragma once

// The translation framework of Sections 3 and 6: map a polynomial,
// completely partitionable equation system onto a protocol state machine
// via Flipping, One-Time-Sampling and Tokenizing, choosing the system-wide
// normalizing constant p. Implements Theorems 1 and 5 (errata form:
// Tokenizing also requires complete partitionability).

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/state_machine.hpp"
#include "ode/equation_system.hpp"
#include "ode/taxonomy.hpp"

namespace deproto::core {

/// Thrown when a system is outside the mappable subclass and auto_rewrite
/// cannot (or may not) bring it in.
class SynthesisError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Request the Section 4.1.2 optimization for one bilinear infection-style
/// term: the negative term -beta * x * y on the rhs of x-dot is implemented
/// as a pull (x samples b = beta/2 targets, any in y converts) plus a push
/// (y samples b targets, converting sampled x's). beta must be a small even
/// positive integer; the effective contact rate is N(1-(1-b/N)^2) ~= 2b.
struct PushPullSpec {
  std::string state_x;  // the susceptible/receptive side (loses members)
  std::string state_y;  // the infective/stash side (is matched against)

  friend bool operator==(const PushPullSpec&, const PushPullSpec&) = default;
};

struct SynthesisOptions {
  /// Normalizing constant p; when unset the largest feasible p <= 1 with
  /// p * c * ff <= 1 over all coin constants is chosen.
  std::optional<double> p;
  /// Known group-wide failure rate per connection attempt. Sampling-type
  /// coins are compensated by (1/(1-f))^{|T|-1} (Section 3, "The Effect of
  /// Failures"); p shrinks if compensation would push a bias above 1.
  double failure_rate = 0.0;
  /// Permit Tokenizing actions (Section 6) for non-restricted systems.
  bool allow_tokenizing = true;
  /// Apply rewriting automatically: complete() when not complete,
  /// expand_constants() when bare-constant terms block Tokenizing.
  bool auto_rewrite = false;
  /// Name used for the slack variable when auto-completing.
  std::string slack_name = "z";
  /// Bilinear terms to implement as push+pull (endemic optimization).
  std::vector<PushPullSpec> push_pull;

  friend bool operator==(const SynthesisOptions&,
                         const SynthesisOptions&) = default;
};

struct SynthesisResult {
  ProtocolStateMachine machine;
  ode::TaxonomyReport taxonomy;
  /// The (possibly rewritten) system the machine actually implements.
  ode::EquationSystem source;
  double p = 1.0;
  /// Human-readable record of every mapping decision.
  std::vector<std::string> notes;
};

/// Translate `sys` into a protocol state machine.
///
/// Requirements (after optional auto-rewriting):
///   * polynomial (guaranteed by the representation),
///   * complete and completely partitionable;
/// restricted-polynomial systems map with Flipping + One-Time-Sampling only
/// (Theorem 1); others additionally use Tokenizing (Theorem 5).
///
/// The mean field of the returned machine over protocol-period time equals
/// p * f(X) for the source system X-dot = f(X) -- i.e. the protocol runs the
/// source dynamics with time dilated by a factor 1/p (push-pull terms are
/// implemented at their full rate; see PushPullSpec).
[[nodiscard]] SynthesisResult synthesize(const ode::EquationSystem& sys,
                                         const SynthesisOptions& options = {});

}  // namespace deproto::core
