#pragma once

// Finite-group fluctuation analysis (the paper's open question (3): "Can
// one formalize the relation between protocol performance at infinite group
// size and finite group size, as in [15, 18]?"). Around a stable
// equilibrium, the per-period population counts of a synthesized protocol
// form a density-dependent Markov chain; by the Kurtz / van Kampen linear
// noise approximation their stationary fluctuations are Gaussian with
// covariance solving a discrete Lyapunov equation:
//
//   Sigma = (I + A) Sigma (I + A)^T + B / N,
//
// where A is the (simplex-reduced) Jacobian of the mean field at the
// equilibrium and B accumulates rate * (jump)(jump)^T over the machine's
// actions. Population-count variances are then N * Sigma_frac.

#include <stdexcept>

#include "core/state_machine.hpp"
#include "numerics/matrix.hpp"
#include "ode/equation_system.hpp"

namespace deproto::core {

struct FluctuationReport {
  /// Reduced (m-1 dim) stationary covariance of the *fraction* vector,
  /// already divided by N.
  num::Matrix covariance;
  /// Predicted standard deviation of each state's population count at
  /// group size N (all m states; the last is reconstructed from the
  /// conservation law).
  num::Vec count_stddev;
};

/// Linear-noise prediction for `machine` at the equilibrium `point`
/// (fractions, all m states) and group size `n`. The equilibrium must be
/// asymptotically stable on the simplex (spectral radius of I + A below 1),
/// otherwise std::runtime_error.
[[nodiscard]] FluctuationReport stationary_fluctuations(
    const ProtocolStateMachine& machine, const num::Vec& point,
    double n, double message_loss = 0.0);

/// The per-period diffusion matrix B in reduced coordinates: sum over
/// actions of rate(x) * d d^T, with d the jump vector (e_to - e_from)
/// restricted to the first m-1 states.
[[nodiscard]] num::Matrix diffusion_matrix(const ProtocolStateMachine& machine,
                                           const num::Vec& point,
                                           double message_loss = 0.0);

}  // namespace deproto::core
