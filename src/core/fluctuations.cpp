#include "core/fluctuations.hpp"

#include <cmath>
#include <stdexcept>

#include "core/mean_field.hpp"
#include "core/transition_model.hpp"
#include "numerics/eigen.hpp"
#include "numerics/jacobian.hpp"
#include "numerics/lyapunov.hpp"

namespace deproto::core {

num::Matrix diffusion_matrix(const ProtocolStateMachine& machine,
                             const num::Vec& point, double message_loss) {
  const std::size_t m = machine.num_states();
  if (point.size() != m) {
    throw std::invalid_argument("diffusion_matrix: point size mismatch");
  }
  if (m < 2) {
    throw std::invalid_argument("diffusion_matrix: need >= 2 states");
  }
  const std::size_t r = m - 1;
  num::Matrix b(r, r);
  // The shared transition model carries each action's expected firing rate
  // at `point` (gated Tokenizing channels come back with rate 0, which
  // contributes nothing, matching the old explicit skip).
  for (const core::TransitionChannel& ch :
       transition_channels(machine, point, message_loss)) {
    if (ch.from == ch.to) continue;
    // Jump vector in reduced coordinates (last state dropped).
    num::Vec d(r, 0.0);
    if (ch.from < r) d[ch.from] -= 1.0;
    if (ch.to < r) d[ch.to] += 1.0;
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < r; ++j) {
        b(i, j) += ch.rate * d[i] * d[j];
      }
    }
  }
  return b;
}

FluctuationReport stationary_fluctuations(const ProtocolStateMachine& machine,
                                          const num::Vec& point, double n,
                                          double message_loss) {
  const std::size_t m = machine.num_states();
  if (!(n > 1.0)) {
    throw std::invalid_argument("stationary_fluctuations: n must be > 1");
  }
  const ode::EquationSystem field = mean_field(machine, message_loss);
  const num::Matrix a = num::reduced_jacobian_at(field, point);
  const std::size_t r = m - 1;

  // One-period linear map M = I + A must be a strict contraction.
  num::Matrix map = num::Matrix::identity(r) + a;
  double radius = 0.0;
  for (const auto& lambda : num::eigenvalues(map)) {
    radius = std::max(radius, std::abs(lambda));
  }
  if (radius >= 1.0) {
    throw std::runtime_error(
        "stationary_fluctuations: equilibrium not stable over one period "
        "(spectral radius " +
        std::to_string(radius) + ")");
  }

  const num::Matrix b = diffusion_matrix(machine, point, message_loss);
  const num::Matrix sigma =
      num::solve_discrete_lyapunov(map, b.scaled(1.0 / n));

  FluctuationReport report;
  report.covariance = sigma;
  report.count_stddev.resize(m);
  double last_var = 0.0;  // Var of the dropped state = 1^T Sigma 1.
  for (std::size_t i = 0; i < r; ++i) {
    report.count_stddev[i] = n * std::sqrt(std::max(0.0, sigma(i, i)));
    for (std::size_t j = 0; j < r; ++j) last_var += sigma(i, j);
  }
  report.count_stddev[r] = n * std::sqrt(std::max(0.0, last_var));
  return report;
}

}  // namespace deproto::core
