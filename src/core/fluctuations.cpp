#include "core/fluctuations.hpp"

#include <cmath>
#include <stdexcept>

#include "core/mean_field.hpp"
#include "numerics/eigen.hpp"
#include "numerics/jacobian.hpp"
#include "numerics/lyapunov.hpp"

namespace deproto::core {

namespace {

/// Per-action expected firing rate (transitions per period, as a fraction
/// of N) at the point x, mirroring exact_drift's semantics, along with the
/// (from, to) states of the move it causes.
struct ActionRate {
  std::size_t from;
  std::size_t to;
  double rate;
};

std::vector<ActionRate> action_rates(const ProtocolStateMachine& machine,
                                     const num::Vec& x, double f) {
  std::vector<ActionRate> rates;
  for (const Action& action : machine.actions()) {
    std::visit(
        [&](const auto& a) {
          using T = std::decay_t<decltype(a)>;
          if constexpr (std::is_same_v<T, FlippingAction>) {
            rates.push_back(
                {a.from_state, a.to_state, a.coin_bias * x[a.from_state]});
          } else if constexpr (std::is_same_v<T, SamplingAction>) {
            double prob = a.coin_bias;
            for (std::size_t k = 0; k < a.same_state_samples; ++k) {
              prob *= (1.0 - f) * x[a.from_state];
            }
            for (std::size_t s : a.target_states) prob *= (1.0 - f) * x[s];
            rates.push_back(
                {a.from_state, a.to_state, prob * x[a.from_state]});
          } else if constexpr (std::is_same_v<T, TokenizingAction>) {
            double prob = a.coin_bias;
            for (std::size_t k = 0; k < a.same_state_samples; ++k) {
              prob *= (1.0 - f) * x[a.executor_state];
            }
            for (std::size_t s : a.target_states) prob *= (1.0 - f) * x[s];
            if (x[a.token_state] > 0.0) {
              rates.push_back(
                  {a.token_state, a.to_state, prob * x[a.executor_state]});
            }
          } else if constexpr (std::is_same_v<T, PushAction>) {
            rates.push_back({a.target_state, a.to_state,
                             static_cast<double>(a.fanout) * a.coin_bias *
                                 (1.0 - f) * x[a.executor_state] *
                                 x[a.target_state]});
          } else if constexpr (std::is_same_v<T, AnyOfSamplingAction>) {
            const double hit = (1.0 - f) * x[a.match_state];
            const double prob =
                1.0 - std::pow(1.0 - hit, static_cast<double>(a.fanout));
            rates.push_back({a.from_state, a.to_state,
                             a.coin_bias * prob * x[a.from_state]});
          }
        },
        action);
  }
  return rates;
}

}  // namespace

num::Matrix diffusion_matrix(const ProtocolStateMachine& machine,
                             const num::Vec& point, double message_loss) {
  const std::size_t m = machine.num_states();
  if (point.size() != m) {
    throw std::invalid_argument("diffusion_matrix: point size mismatch");
  }
  if (m < 2) {
    throw std::invalid_argument("diffusion_matrix: need >= 2 states");
  }
  const std::size_t r = m - 1;
  num::Matrix b(r, r);
  for (const ActionRate& ar : action_rates(machine, point, message_loss)) {
    if (ar.from == ar.to) continue;
    // Jump vector in reduced coordinates (last state dropped).
    num::Vec d(r, 0.0);
    if (ar.from < r) d[ar.from] -= 1.0;
    if (ar.to < r) d[ar.to] += 1.0;
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < r; ++j) {
        b(i, j) += ar.rate * d[i] * d[j];
      }
    }
  }
  return b;
}

FluctuationReport stationary_fluctuations(const ProtocolStateMachine& machine,
                                          const num::Vec& point, double n,
                                          double message_loss) {
  const std::size_t m = machine.num_states();
  if (!(n > 1.0)) {
    throw std::invalid_argument("stationary_fluctuations: n must be > 1");
  }
  const ode::EquationSystem field = mean_field(machine, message_loss);
  const num::Matrix a = num::reduced_jacobian_at(field, point);
  const std::size_t r = m - 1;

  // One-period linear map M = I + A must be a strict contraction.
  num::Matrix map = num::Matrix::identity(r) + a;
  double radius = 0.0;
  for (const auto& lambda : num::eigenvalues(map)) {
    radius = std::max(radius, std::abs(lambda));
  }
  if (radius >= 1.0) {
    throw std::runtime_error(
        "stationary_fluctuations: equilibrium not stable over one period "
        "(spectral radius " +
        std::to_string(radius) + ")");
  }

  const num::Matrix b = diffusion_matrix(machine, point, message_loss);
  const num::Matrix sigma =
      num::solve_discrete_lyapunov(map, b.scaled(1.0 / n));

  FluctuationReport report;
  report.covariance = sigma;
  report.count_stddev.resize(m);
  double last_var = 0.0;  // Var of the dropped state = 1^T Sigma 1.
  for (std::size_t i = 0; i < r; ++i) {
    report.count_stddev[i] = n * std::sqrt(std::max(0.0, sigma(i, i)));
    for (std::size_t j = 0; j < r; ++j) last_var += sigma(i, j);
  }
  report.count_stddev[r] = n * std::sqrt(std::max(0.0, last_var));
  return report;
}

}  // namespace deproto::core
