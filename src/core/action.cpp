#include "core/action.hpp"

#include <sstream>

namespace deproto::core {

namespace {

const std::string& state_name(std::span<const std::string> states,
                              std::size_t id) {
  static const std::string kUnknown = "?";
  return id < states.size() ? states[id] : kUnknown;
}

}  // namespace

std::size_t executor_state(const Action& action) {
  return std::visit(
      [](const auto& a) -> std::size_t {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, FlippingAction> ||
                      std::is_same_v<T, SamplingAction> ||
                      std::is_same_v<T, AnyOfSamplingAction>) {
          return a.from_state;
        } else if constexpr (std::is_same_v<T, TokenizingAction> ||
                             std::is_same_v<T, PushAction>) {
          return a.executor_state;
        }
      },
      action);
}

std::size_t messages_per_period(const Action& action) {
  return std::visit(
      [](const auto& a) -> std::size_t {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, FlippingAction>) {
          return 0;
        } else if constexpr (std::is_same_v<T, SamplingAction>) {
          return a.same_state_samples + a.target_states.size();
        } else if constexpr (std::is_same_v<T, TokenizingAction>) {
          // Sampling probes plus the token hand-off message itself.
          return a.same_state_samples + a.target_states.size() + 1;
        } else if constexpr (std::is_same_v<T, PushAction> ||
                             std::is_same_v<T, AnyOfSamplingAction>) {
          return a.fanout;
        }
      },
      action);
}

unsigned term_occurrences(const Action& action) {
  return std::visit(
      [](const auto& a) -> unsigned {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, FlippingAction>) {
          return 1;
        } else if constexpr (std::is_same_v<T, SamplingAction>) {
          return static_cast<unsigned>(1 + a.same_state_samples +
                                       a.target_states.size());
        } else if constexpr (std::is_same_v<T, TokenizingAction>) {
          return static_cast<unsigned>(1 + a.same_state_samples +
                                       a.target_states.size());
        } else if constexpr (std::is_same_v<T, PushAction> ||
                             std::is_same_v<T, AnyOfSamplingAction>) {
          return 2;  // the bilinear contact term x*y
        }
      },
      action);
}

std::string to_string(const Action& action,
                      std::span<const std::string> states) {
  std::ostringstream out;
  std::visit(
      [&](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, FlippingAction>) {
          out << "[" << state_name(states, a.from_state)
              << "] flip coin(p=" << a.coin_bias << "); heads -> "
              << state_name(states, a.to_state);
        } else if constexpr (std::is_same_v<T, SamplingAction>) {
          out << "[" << state_name(states, a.from_state) << "] sample "
              << (a.same_state_samples + a.target_states.size())
              << " target(s): " << a.same_state_samples << "x own-state";
          for (std::size_t s : a.target_states) {
            out << ", " << state_name(states, s);
          }
          out << "; coin(p=" << a.coin_bias << "); all match + heads -> "
              << state_name(states, a.to_state);
        } else if constexpr (std::is_same_v<T, TokenizingAction>) {
          out << "[" << state_name(states, a.executor_state) << "] sample "
              << (a.same_state_samples + a.target_states.size())
              << " target(s)";
          for (std::size_t s : a.target_states) {
            out << ", " << state_name(states, s);
          }
          out << "; coin(p=" << a.coin_bias
              << "); on success send token to a process in "
              << state_name(states, a.token_state) << ", moving it to "
              << state_name(states, a.to_state);
        } else if constexpr (std::is_same_v<T, PushAction>) {
          out << "[" << state_name(states, a.executor_state) << "] push: "
              << "sample " << a.fanout << " target(s); any in "
              << state_name(states, a.target_state) << " -> "
              << state_name(states, a.to_state) << " (coin " << a.coin_bias
              << ")";
        } else if constexpr (std::is_same_v<T, AnyOfSamplingAction>) {
          out << "[" << state_name(states, a.from_state) << "] pull: sample "
              << a.fanout << " target(s); if any in "
              << state_name(states, a.match_state) << " -> "
              << state_name(states, a.to_state) << " (coin " << a.coin_bias
              << ")";
        }
      },
      action);
  return out.str();
}

}  // namespace deproto::core
