#include "numerics/newton.hpp"

#include <algorithm>
#include <cmath>

#include "numerics/jacobian.hpp"
#include "numerics/matrix.hpp"

namespace deproto::num {

std::optional<Vec> newton_solve(const ode::EquationSystem& sys, Vec x0,
                                const NewtonOptions& opts) {
  const std::size_t m = sys.num_vars();
  if (x0.size() != m) return std::nullopt;

  Vec fx(m);
  for (int it = 0; it < opts.max_iter; ++it) {
    sys.evaluate(x0, fx);
    if (norm_inf(fx) < opts.tol) return x0;

    Matrix j = jacobian_at(sys, x0);
    Vec step;
    try {
      step = j.solve(fx);
    } catch (const std::runtime_error&) {
      // Singular Jacobian: tiny Tikhonov perturbation, then retry once.
      for (std::size_t d = 0; d < m; ++d) j(d, d) += 1e-10;
      try {
        step = j.solve(fx);
      } catch (const std::runtime_error&) {
        return std::nullopt;
      }
    }

    // Damped update: halve until the residual decreases (or give up).
    const double f0 = norm_inf(fx);
    double damping = 1.0;
    Vec candidate(m), fc(m);
    bool improved = false;
    while (damping >= opts.min_damping) {
      for (std::size_t d = 0; d < m; ++d) {
        candidate[d] = x0[d] - damping * step[d];
      }
      sys.evaluate(candidate, fc);
      if (norm_inf(fc) < f0 || norm_inf(fc) < opts.tol) {
        improved = true;
        break;
      }
      damping /= 2.0;
    }
    if (!improved) return std::nullopt;
    x0 = candidate;
  }
  sys.evaluate(x0, fx);
  if (norm_inf(fx) < opts.tol) return x0;
  return std::nullopt;
}

std::vector<Vec> find_equilibria(const ode::EquationSystem& sys,
                                 const EquilibriumSearchOptions& opts) {
  const std::size_t m = sys.num_vars();
  std::vector<Vec> found;

  auto consider = [&](Vec start) {
    auto root = newton_solve(sys, std::move(start), opts.newton);
    if (!root) return;
    for (const Vec& r : found) {
      if (distance(r, *root) < opts.dedupe_radius) return;
    }
    found.push_back(std::move(*root));
  };

  // Regular grid over [lo, hi]^m.
  const int g = std::max(opts.grid, 2);
  std::vector<int> idx(m, 0);
  const auto total = static_cast<std::size_t>(std::pow(g, m));
  // Guard against combinatorial blow-up for larger systems.
  if (total <= 1'000'000) {
    for (std::size_t flat = 0; flat < total; ++flat) {
      std::size_t rem = flat;
      Vec start(m);
      for (std::size_t d = 0; d < m; ++d) {
        const int k = static_cast<int>(rem % g);
        rem /= g;
        start[d] =
            opts.lo + (opts.hi - opts.lo) * static_cast<double>(k) / (g - 1);
      }
      consider(std::move(start));
    }
  }
  // Simplex corners and centroid (frequent equilibria in complete systems).
  for (std::size_t d = 0; d < m; ++d) {
    Vec corner(m, 0.0);
    corner[d] = 1.0;
    consider(std::move(corner));
  }
  consider(Vec(m, 1.0 / static_cast<double>(m)));

  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace deproto::num
