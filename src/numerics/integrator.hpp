#pragma once

// ODE integrators (odeint-style): explicit Euler, classic RK4, and the
// adaptive Runge-Kutta-Fehlberg 4(5) and Dormand-Prince 5(4) pairs, plus an
// event-detection helper used by "time to converge" measurements.

#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>

#include "numerics/vector.hpp"

namespace deproto::ode {
class EquationSystem;  // fwd
}

namespace deproto::num {

/// dxdt = f(x, t). Autonomous systems simply ignore t.
using OdeFunction =
    std::function<void(const Vec& x, Vec& dxdt, double t)>;

/// Called after every accepted step with the current state and time.
using Observer = std::function<void(const Vec& x, double t)>;

/// Adapt an EquationSystem into an OdeFunction.
[[nodiscard]] OdeFunction ode_function(const ode::EquationSystem& sys);

/// One explicit Euler step (in place).
void euler_step(const OdeFunction& f, Vec& x, double t, double dt);

/// One classic fourth-order Runge-Kutta step (in place).
void rk4_step(const OdeFunction& f, Vec& x, double t, double dt);

/// Fixed-step integration from t0 to t1 with RK4 (default) or Euler.
/// The observer (if any) fires at t0 and after every step.
enum class FixedStepper { Euler, Rk4 };
void integrate_fixed(const OdeFunction& f, Vec& x, double t0, double t1,
                     double dt, const Observer& observe = nullptr,
                     FixedStepper stepper = FixedStepper::Rk4);

struct AdaptiveOptions {
  double abs_tol = 1e-9;
  double rel_tol = 1e-9;
  double dt_initial = 1e-3;
  double dt_min = 1e-12;
  double dt_max = 1.0;
  std::size_t max_steps = 10'000'000;
};

enum class AdaptiveStepper { Rkf45, Dopri5 };

/// Adaptive integration from t0 to t1; returns the number of accepted steps.
/// Throws std::runtime_error if the step size underflows dt_min.
std::size_t integrate_adaptive(const OdeFunction& f, Vec& x, double t0,
                               double t1, const AdaptiveOptions& opts = {},
                               const Observer& observe = nullptr,
                               AdaptiveStepper stepper =
                                   AdaptiveStepper::Dopri5);

/// Integrate with fixed step dt until `stop(x, t)` first returns true or
/// t exceeds t_max. Returns the first time at which `stop` held, refined by
/// linear interpolation between the bracketing steps; nullopt on timeout.
[[nodiscard]] std::optional<double> integrate_until(
    const OdeFunction& f, Vec& x, double t0, double dt, double t_max,
    const std::function<bool(const Vec&, double)>& stop);

}  // namespace deproto::num
