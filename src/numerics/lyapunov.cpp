#include "numerics/lyapunov.hpp"

#include <stdexcept>

namespace deproto::num {

Matrix kronecker(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ar = 0; ar < a.rows(); ++ar) {
    for (std::size_t ac = 0; ac < a.cols(); ++ac) {
      const double v = a(ar, ac);
      if (v == 0.0) continue;
      for (std::size_t br = 0; br < b.rows(); ++br) {
        for (std::size_t bc = 0; bc < b.cols(); ++bc) {
          out(ar * b.rows() + br, ac * b.cols() + bc) = v * b(br, bc);
        }
      }
    }
  }
  return out;
}

namespace {

Vec vectorize(const Matrix& m) {
  // Column-stacking convention: vec(M)[c*rows + r] = M(r, c).
  Vec v(m.rows() * m.cols());
  for (std::size_t c = 0; c < m.cols(); ++c) {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      v[c * m.rows() + r] = m(r, c);
    }
  }
  return v;
}

Matrix devectorize(const Vec& v, std::size_t n) {
  Matrix m(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t r = 0; r < n; ++r) {
      m(r, c) = v[c * n + r];
    }
  }
  return m;
}

}  // namespace

Matrix solve_continuous_lyapunov(const Matrix& a, const Matrix& q) {
  if (!a.square() || !q.square() || a.rows() != q.rows()) {
    throw std::invalid_argument("solve_continuous_lyapunov: shape mismatch");
  }
  const std::size_t n = a.rows();
  // vec(A X) = (I (x) A) vec X; vec(X A^T) = (A (x) I) vec X.
  const Matrix system =
      kronecker(Matrix::identity(n), a) + kronecker(a, Matrix::identity(n));
  Vec rhs = vectorize(q);
  for (double& v : rhs) v = -v;
  return devectorize(system.solve(rhs), n);
}

Matrix solve_discrete_lyapunov(const Matrix& m, const Matrix& q) {
  if (!m.square() || !q.square() || m.rows() != q.rows()) {
    throw std::invalid_argument("solve_discrete_lyapunov: shape mismatch");
  }
  const std::size_t n = m.rows();
  // X - M X M^T = Q  =>  (I - M (x) M) vec X = vec Q.
  const Matrix system =
      Matrix::identity(n * n) - kronecker(m, m);
  return devectorize(system.solve(vectorize(q)), n);
}

}  // namespace deproto::num
