#pragma once

// Lyapunov equation solvers for the linear-noise (finite-N fluctuation)
// analysis. Sizes are tiny (reduced protocol dimensions), so the Kronecker
// vectorization route through the dense LU solver is the clear choice.

#include <stdexcept>

#include "numerics/matrix.hpp"

namespace deproto::num {

/// Kronecker product A (x) B.
[[nodiscard]] Matrix kronecker(const Matrix& a, const Matrix& b);

/// Solve the continuous-time Lyapunov equation  A X + X A^T + Q = 0.
/// Requires A to have no eigenvalue pair summing to zero (guaranteed for
/// Hurwitz A). Throws std::runtime_error otherwise.
[[nodiscard]] Matrix solve_continuous_lyapunov(const Matrix& a,
                                               const Matrix& q);

/// Solve the discrete-time Lyapunov (Stein) equation  X = M X M^T + Q.
/// Requires the spectral radius of M to be < 1.
[[nodiscard]] Matrix solve_discrete_lyapunov(const Matrix& m,
                                             const Matrix& q);

}  // namespace deproto::num
