#include "numerics/eigen.hpp"

#include <cmath>
#include <stdexcept>

namespace deproto::num {

std::pair<Complex, Complex> eigenvalues_2x2(const Matrix& a) {
  if (a.rows() != 2 || a.cols() != 2) {
    throw std::invalid_argument("eigenvalues_2x2: matrix is not 2x2");
  }
  const double tau = a.trace();
  const double delta = a.determinant();
  const double disc = tau * tau - 4.0 * delta;
  if (disc >= 0.0) {
    const double s = std::sqrt(disc);
    return {Complex((tau + s) / 2.0, 0.0), Complex((tau - s) / 2.0, 0.0)};
  }
  const double s = std::sqrt(-disc);
  return {Complex(tau / 2.0, s / 2.0), Complex(tau / 2.0, -s / 2.0)};
}

std::vector<double> characteristic_polynomial(const Matrix& a) {
  if (!a.square()) {
    throw std::invalid_argument("characteristic_polynomial: not square");
  }
  const std::size_t n = a.rows();
  // Faddeev-LeVerrier: M_0 = 0, c_0 = 1;
  // M_k = A M_{k-1} + c_{k-1} I;  c_k = -trace(A M_k) / k.
  std::vector<double> c(n + 1, 0.0);
  c[0] = 1.0;
  Matrix m(n, n, 0.0);
  for (std::size_t k = 1; k <= n; ++k) {
    Matrix am = a * m;
    for (std::size_t i = 0; i < n; ++i) am(i, i) += c[k - 1];
    m = am;
    c[k] = -(a * m).trace() / static_cast<double>(k);
  }
  return c;
}

std::vector<Complex> polynomial_roots(const std::vector<double>& coeffs) {
  if (coeffs.empty() || coeffs[0] != 1.0) {
    throw std::invalid_argument("polynomial_roots: polynomial must be monic");
  }
  const std::size_t degree = coeffs.size() - 1;
  if (degree == 0) return {};
  if (degree == 1) return {Complex(-coeffs[1], 0.0)};

  auto eval = [&](Complex z) {
    Complex v(coeffs[0], 0.0);
    for (std::size_t i = 1; i < coeffs.size(); ++i) v = v * z + coeffs[i];
    return v;
  };

  // Durand-Kerner from staggered points on a circle of radius r, where r
  // bounds the root magnitudes (Cauchy bound).
  double r = 0.0;
  for (std::size_t i = 1; i < coeffs.size(); ++i) {
    r = std::max(r, std::abs(coeffs[i]));
  }
  r = 1.0 + r;
  std::vector<Complex> roots(degree);
  for (std::size_t i = 0; i < degree; ++i) {
    const double angle =
        2.0 * M_PI * static_cast<double>(i) / static_cast<double>(degree) +
        0.4;  // offset avoids symmetry stalls
    roots[i] = r * Complex(std::cos(angle), std::sin(angle));
  }

  constexpr int kMaxIter = 2000;
  constexpr double kTol = 1e-13;
  for (int iter = 0; iter < kMaxIter; ++iter) {
    double moved = 0.0;
    for (std::size_t i = 0; i < degree; ++i) {
      Complex denom(1.0, 0.0);
      for (std::size_t j = 0; j < degree; ++j) {
        if (j != i) denom *= roots[i] - roots[j];
      }
      if (std::abs(denom) < 1e-300) {
        roots[i] += Complex(1e-8, 1e-8);  // nudge off a collision
        continue;
      }
      const Complex delta = eval(roots[i]) / denom;
      roots[i] -= delta;
      moved = std::max(moved, std::abs(delta));
    }
    if (moved < kTol * std::max(1.0, r)) break;
  }
  // Snap tiny imaginary parts (real roots) to the axis.
  for (Complex& z : roots) {
    if (std::abs(z.imag()) < 1e-8 * std::max(1.0, std::abs(z.real()))) {
      z = Complex(z.real(), 0.0);
    }
  }
  return roots;
}

std::vector<Complex> eigenvalues(const Matrix& a) {
  if (!a.square()) throw std::invalid_argument("eigenvalues: not square");
  const std::size_t n = a.rows();
  if (n == 0) return {};
  if (n == 1) return {Complex(a(0, 0), 0.0)};
  if (n == 2) {
    auto [l1, l2] = eigenvalues_2x2(a);
    return {l1, l2};
  }
  return polynomial_roots(characteristic_polynomial(a));
}

Vec eigenvector(const Matrix& a, double lambda, int max_iter) {
  if (!a.square()) throw std::invalid_argument("eigenvector: not square");
  const std::size_t n = a.rows();
  // Inverse iteration on (A - (lambda + eps) I).
  Matrix shifted = a;
  const double eps = 1e-9 * std::max(1.0, std::abs(lambda));
  for (std::size_t i = 0; i < n; ++i) shifted(i, i) -= lambda + eps;

  Vec v(n, 1.0);
  v[0] = 1.3;  // break symmetry
  double nrm = norm2(v);
  for (double& x : v) x /= nrm;

  for (int it = 0; it < max_iter; ++it) {
    Vec w;
    try {
      w = shifted.solve(v);
    } catch (const std::runtime_error&) {
      // Singular shift: we are exactly on the eigenvalue; perturb further.
      for (std::size_t i = 0; i < n; ++i) shifted(i, i) -= 10 * eps;
      continue;
    }
    nrm = norm2(w);
    if (nrm == 0.0) throw std::runtime_error("eigenvector: zero iterate");
    for (double& x : w) x /= nrm;
    const double delta = std::min(distance(w, v), distance(scale(w, -1.0), v));
    v = std::move(w);
    if (delta < 1e-12) break;
  }
  // Residual check.
  Vec av = a * v;
  axpy(-lambda, v, av);
  if (norm_inf(av) > 1e-5 * std::max(1.0, std::abs(lambda))) {
    throw std::runtime_error("eigenvector: inverse iteration did not converge");
  }
  return v;
}

double spectral_abscissa(const Matrix& a) {
  double m = -1e300;
  for (const Complex& l : eigenvalues(a)) m = std::max(m, l.real());
  return m;
}

}  // namespace deproto::num
