#include "numerics/matrix.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace deproto::num {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix index");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix index");
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix: bad multiply");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += a * rhs(k, c);
      }
    }
  }
  return out;
}

Vec Matrix::operator*(const Vec& v) const {
  if (cols_ != v.size()) throw std::invalid_argument("Matrix: bad vec size");
  Vec out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * v[c];
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::scaled(double k) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= k;
  return out;
}

double Matrix::trace() const {
  if (!square()) throw std::invalid_argument("Matrix::trace: not square");
  double s = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) s += (*this)(i, i);
  return s;
}

namespace {

// LU with partial pivoting. Returns false for (numerically) singular input.
// On success, lu holds L (unit diagonal, below) and U (on/above diagonal);
// perm is the row permutation; sign is the permutation parity.
bool lu_decompose(const Matrix& a, Matrix& lu, std::vector<std::size_t>& perm,
                  double& sign) {
  const std::size_t n = a.rows();
  lu = a;
  perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  sign = 1.0;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(lu(r, col)) > best) {
        best = std::abs(lu(r, col));
        pivot = r;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu(pivot, c), lu(col, c));
      }
      std::swap(perm[pivot], perm[col]);
      sign = -sign;
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = lu(r, col) / lu(col, col);
      lu(r, col) = f;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu(r, c) -= f * lu(col, c);
      }
    }
  }
  return true;
}

}  // namespace

double Matrix::determinant() const {
  if (!square()) {
    throw std::invalid_argument("Matrix::determinant: not square");
  }
  const std::size_t n = rows_;
  if (n == 0) return 1.0;
  if (n == 1) return (*this)(0, 0);
  if (n == 2) {
    return (*this)(0, 0) * (*this)(1, 1) - (*this)(0, 1) * (*this)(1, 0);
  }
  if (n == 3) {
    const Matrix& m = *this;
    return m(0, 0) * (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1)) -
           m(0, 1) * (m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0)) +
           m(0, 2) * (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0));
  }
  Matrix lu;
  std::vector<std::size_t> perm;
  double sign = 1.0;
  if (!lu_decompose(*this, lu, perm, sign)) return 0.0;
  double det = sign;
  for (std::size_t i = 0; i < n; ++i) det *= lu(i, i);
  return det;
}

Vec Matrix::solve(const Vec& b) const {
  if (!square() || b.size() != rows_) {
    throw std::invalid_argument("Matrix::solve: shape mismatch");
  }
  Matrix lu;
  std::vector<std::size_t> perm;
  double sign = 1.0;
  if (!lu_decompose(*this, lu, perm, sign)) {
    throw std::runtime_error("Matrix::solve: singular matrix");
  }
  const std::size_t n = rows_;
  Vec y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double s = b[perm[r]];
    for (std::size_t c = 0; c < r; ++c) s -= lu(r, c) * y[c];
    y[r] = s;
  }
  Vec x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= lu(ri, c) * x[c];
    x[ri] = s / lu(ri, ri);
  }
  return x;
}

double Matrix::norm_max() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::string Matrix::to_string() const {
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_; ++r) {
    out << '[';
    for (std::size_t c = 0; c < cols_; ++c) {
      out << (*this)(r, c) << (c + 1 < cols_ ? ", " : "");
    }
    out << "]\n";
  }
  return out.str();
}

}  // namespace deproto::num
