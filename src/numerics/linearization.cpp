#include "numerics/linearization.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/eigen.hpp"

namespace deproto::num {

Linearization linearize(const ode::EquationSystem& sys,
                        const Vec& equilibrium) {
  Linearization lin;
  lin.equilibrium = equilibrium;
  lin.jacobian = jacobian_at(sys, equilibrium);
  if (sys.num_vars() >= 2) {
    lin.reduced_jacobian = reduced_jacobian_at(sys, equilibrium);
    lin.stability = classify_matrix(lin.reduced_jacobian);
  } else {
    lin.reduced_jacobian = lin.jacobian;
    lin.stability = classify_matrix(lin.jacobian);
  }
  return lin;
}

Matrix endemic_matrix_A(double sigma, double alpha, double gamma) {
  return Matrix{{-(sigma + alpha), -sigma * (gamma + alpha)}, {1.0, 0.0}};
}

double endemic_sigma(double beta, double gamma, double alpha) {
  if (alpha <= 0.0) {
    throw std::invalid_argument("endemic_sigma: alpha must be positive");
  }
  return (beta - gamma) / (1.0 + gamma / alpha);
}

PerturbationSolution endemic_perturbation(double sigma, double alpha,
                                          double gamma, double u0,
                                          double udot0) {
  const Matrix a = endemic_matrix_A(sigma, alpha, gamma);
  const double tau = a.trace();
  const double delta = a.determinant();
  const double disc = tau * tau - 4.0 * delta;

  PerturbationSolution sol;
  constexpr double kZero = 1e-12;
  if (disc < -kZero) {
    sol.kase = EigenCase::ComplexConjugate;
    const double decay = (sigma + alpha) / 2.0;
    const double omega =
        std::sqrt(sigma * gamma - (sigma - alpha) * (sigma - alpha) / 4.0);
    sol.lambda1 = sol.lambda2 = -decay;
    sol.omega = omega;
    sol.u = [u0, decay, omega](double t) {
      return u0 * std::exp(-decay * t) * std::cos(omega * t);
    };
  } else if (disc > kZero) {
    sol.kase = EigenCase::RealDistinct;
    const double s = std::sqrt(disc);
    const double l1 = (tau + s) / 2.0;
    const double l2 = (tau - s) / 2.0;
    sol.lambda1 = l1;
    sol.lambda2 = l2;
    sol.u = [u0, udot0, l1, l2](double t) {
      return (udot0 - l2 * u0) / (l1 - l2) * std::exp(l1 * t) +
             (udot0 - l1 * u0) / (l2 - l1) * std::exp(l2 * t);
    };
  } else {
    sol.kase = EigenCase::RealEqual;
    const double decay = (sigma + alpha) / 2.0;
    sol.lambda1 = sol.lambda2 = -decay;
    sol.u = [u0, decay](double t) { return u0 * std::exp(-decay * t); };
  }
  return sol;
}

}  // namespace deproto::num
