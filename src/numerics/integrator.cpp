#include "numerics/integrator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ode/equation_system.hpp"

namespace deproto::num {

OdeFunction ode_function(const ode::EquationSystem& sys) {
  // The system is copied into the closure so the function outlives its
  // source (catalog factories return temporaries).
  return [sys](const Vec& x, Vec& dxdt, double /*t*/) {
    dxdt.resize(x.size());
    sys.evaluate(x, dxdt);
  };
}

void euler_step(const OdeFunction& f, Vec& x, double t, double dt) {
  Vec k(x.size());
  f(x, k, t);
  axpy(dt, k, x);
}

void rk4_step(const OdeFunction& f, Vec& x, double t, double dt) {
  const std::size_t n = x.size();
  Vec k1(n), k2(n), k3(n), k4(n), tmp(n);

  f(x, k1, t);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * dt * k1[i];
  f(tmp, k2, t + 0.5 * dt);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * dt * k2[i];
  f(tmp, k3, t + 0.5 * dt);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + dt * k3[i];
  f(tmp, k4, t + dt);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

void integrate_fixed(const OdeFunction& f, Vec& x, double t0, double t1,
                     double dt, const Observer& observe,
                     FixedStepper stepper) {
  if (!(dt > 0)) throw std::invalid_argument("integrate_fixed: dt <= 0");
  double t = t0;
  if (observe) observe(x, t);
  while (t < t1 - 1e-15) {
    const double h = std::min(dt, t1 - t);
    if (stepper == FixedStepper::Rk4) {
      rk4_step(f, x, t, h);
    } else {
      euler_step(f, x, t, h);
    }
    t += h;
    if (observe) observe(x, t);
  }
}

namespace {

// Butcher tableau for RKF45.
struct Rkf45Result {
  Vec x5;       // 5th-order solution
  double error; // max-norm of the embedded 4th/5th difference
};

Rkf45Result rkf45_attempt(const OdeFunction& f, const Vec& x, double t,
                          double h) {
  const std::size_t n = x.size();
  Vec k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), tmp(n);

  f(x, k1, t);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + h * (k1[i] / 4.0);
  f(tmp, k2, t + h / 4.0);
  for (std::size_t i = 0; i < n; ++i) {
    tmp[i] = x[i] + h * (3.0 / 32.0 * k1[i] + 9.0 / 32.0 * k2[i]);
  }
  f(tmp, k3, t + 3.0 * h / 8.0);
  for (std::size_t i = 0; i < n; ++i) {
    tmp[i] = x[i] + h * (1932.0 / 2197.0 * k1[i] - 7200.0 / 2197.0 * k2[i] +
                         7296.0 / 2197.0 * k3[i]);
  }
  f(tmp, k4, t + 12.0 * h / 13.0);
  for (std::size_t i = 0; i < n; ++i) {
    tmp[i] = x[i] + h * (439.0 / 216.0 * k1[i] - 8.0 * k2[i] +
                         3680.0 / 513.0 * k3[i] - 845.0 / 4104.0 * k4[i]);
  }
  f(tmp, k5, t + h);
  for (std::size_t i = 0; i < n; ++i) {
    tmp[i] = x[i] + h * (-8.0 / 27.0 * k1[i] + 2.0 * k2[i] -
                         3544.0 / 2565.0 * k3[i] + 1859.0 / 4104.0 * k4[i] -
                         11.0 / 40.0 * k5[i]);
  }
  f(tmp, k6, t + h / 2.0);

  Rkf45Result out;
  out.x5.resize(n);
  out.error = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x4 = x[i] + h * (25.0 / 216.0 * k1[i] +
                                  1408.0 / 2565.0 * k3[i] +
                                  2197.0 / 4104.0 * k4[i] - k5[i] / 5.0);
    const double x5 = x[i] + h * (16.0 / 135.0 * k1[i] +
                                  6656.0 / 12825.0 * k3[i] +
                                  28561.0 / 56430.0 * k4[i] -
                                  9.0 / 50.0 * k5[i] + 2.0 / 55.0 * k6[i]);
    out.x5[i] = x5;
    out.error = std::max(out.error, std::abs(x5 - x4));
  }
  return out;
}

// Dormand-Prince 5(4): the odeint default stepper.
Rkf45Result dopri5_attempt(const OdeFunction& f, const Vec& x, double t,
                           double h) {
  const std::size_t n = x.size();
  Vec k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), k7(n), tmp(n);

  f(x, k1, t);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + h * (k1[i] / 5.0);
  f(tmp, k2, t + h / 5.0);
  for (std::size_t i = 0; i < n; ++i) {
    tmp[i] = x[i] + h * (3.0 / 40.0 * k1[i] + 9.0 / 40.0 * k2[i]);
  }
  f(tmp, k3, t + 3.0 * h / 10.0);
  for (std::size_t i = 0; i < n; ++i) {
    tmp[i] = x[i] + h * (44.0 / 45.0 * k1[i] - 56.0 / 15.0 * k2[i] +
                         32.0 / 9.0 * k3[i]);
  }
  f(tmp, k4, t + 4.0 * h / 5.0);
  for (std::size_t i = 0; i < n; ++i) {
    tmp[i] = x[i] + h * (19372.0 / 6561.0 * k1[i] - 25360.0 / 2187.0 * k2[i] +
                         64448.0 / 6561.0 * k3[i] - 212.0 / 729.0 * k4[i]);
  }
  f(tmp, k5, t + 8.0 * h / 9.0);
  for (std::size_t i = 0; i < n; ++i) {
    tmp[i] = x[i] + h * (9017.0 / 3168.0 * k1[i] - 355.0 / 33.0 * k2[i] +
                         46732.0 / 5247.0 * k3[i] + 49.0 / 176.0 * k4[i] -
                         5103.0 / 18656.0 * k5[i]);
  }
  f(tmp, k6, t + h);
  for (std::size_t i = 0; i < n; ++i) {
    tmp[i] = x[i] + h * (35.0 / 384.0 * k1[i] + 500.0 / 1113.0 * k3[i] +
                         125.0 / 192.0 * k4[i] - 2187.0 / 6784.0 * k5[i] +
                         11.0 / 84.0 * k6[i]);
  }
  f(tmp, k7, t + h);  // FSAL stage

  Rkf45Result out;
  out.x5 = tmp;  // the 5th-order solution is the k7 evaluation point
  out.error = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double err_i =
        h * (71.0 / 57600.0 * k1[i] - 71.0 / 16695.0 * k3[i] +
             71.0 / 1920.0 * k4[i] - 17253.0 / 339200.0 * k5[i] +
             22.0 / 525.0 * k6[i] - 1.0 / 40.0 * k7[i]);
    out.error = std::max(out.error, std::abs(err_i));
  }
  return out;
}

}  // namespace

std::size_t integrate_adaptive(const OdeFunction& f, Vec& x, double t0,
                               double t1, const AdaptiveOptions& opts,
                               const Observer& observe,
                               AdaptiveStepper stepper) {
  double t = t0;
  double h = std::clamp(opts.dt_initial, opts.dt_min, opts.dt_max);
  std::size_t accepted = 0;
  if (observe) observe(x, t);

  std::size_t steps = 0;
  while (t < t1 - 1e-15) {
    if (++steps > opts.max_steps) {
      throw std::runtime_error("integrate_adaptive: max_steps exceeded");
    }
    h = std::min(h, t1 - t);
    const Rkf45Result r = (stepper == AdaptiveStepper::Dopri5)
                              ? dopri5_attempt(f, x, t, h)
                              : rkf45_attempt(f, x, t, h);
    const double tol =
        opts.abs_tol + opts.rel_tol * std::max(norm_inf(x), norm_inf(r.x5));
    if (r.error <= tol || h <= opts.dt_min * 1.0000001) {
      t += h;
      x = r.x5;
      ++accepted;
      if (observe) observe(x, t);
    }
    // PI-free classic step-size update with safety factor.
    const double scale =
        (r.error > 0.0)
            ? 0.9 * std::pow(tol / r.error, 0.2)
            : 5.0;
    h = std::clamp(h * std::clamp(scale, 0.2, 5.0), opts.dt_min, opts.dt_max);
    if (h < opts.dt_min) {
      throw std::runtime_error("integrate_adaptive: step size underflow");
    }
  }
  return accepted;
}

std::optional<double> integrate_until(
    const OdeFunction& f, Vec& x, double t0, double dt, double t_max,
    const std::function<bool(const Vec&, double)>& stop) {
  if (stop(x, t0)) return t0;
  double t = t0;
  Vec prev = x;
  while (t < t_max - 1e-15) {
    const double h = std::min(dt, t_max - t);
    prev = x;
    rk4_step(f, x, t, h);
    t += h;
    if (stop(x, t)) {
      // Bisection refinement between (t-h, prev) and (t, x).
      double lo = t - h, hi = t;
      Vec xlo = prev;
      for (int i = 0; i < 30 && (hi - lo) > 1e-12 * std::max(1.0, hi); ++i) {
        const double mid = 0.5 * (lo + hi);
        Vec xm = xlo;
        rk4_step(f, xm, lo, mid - lo);
        if (stop(xm, mid)) {
          hi = mid;
        } else {
          lo = mid;
          xlo = std::move(xm);
        }
      }
      return hi;
    }
  }
  return std::nullopt;
}

}  // namespace deproto::num
