#pragma once

// Small dense row-major matrix with the operations the dynamics analysis
// needs: LU solve, determinant, trace, multiply. Sizes here are tiny (the
// Jacobians of protocol equation systems), so clarity wins over blocking.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "numerics/vector.hpp"

namespace deproto::num {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Row-major brace construction: Matrix{{a,b},{c,d}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const;

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Vec operator*(const Vec& v) const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  [[nodiscard]] Matrix scaled(double k) const;

  [[nodiscard]] double trace() const;
  /// Determinant via closed form (n <= 3) or LU decomposition.
  [[nodiscard]] double determinant() const;
  /// Solve A x = b via LU with partial pivoting. Throws on singular A.
  [[nodiscard]] Vec solve(const Vec& b) const;
  /// Max absolute entry.
  [[nodiscard]] double norm_max() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace deproto::num
