#include "numerics/phase_portrait.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace deproto::num {

PhasePortrait compute_phase_portrait(const ode::EquationSystem& sys,
                                     const std::vector<Vec>& initial_points,
                                     const PhasePortraitOptions& opts) {
  PhasePortrait portrait;
  const OdeFunction f = ode_function(sys);
  for (const Vec& start : initial_points) {
    Trajectory traj;
    traj.initial = start;
    Vec x = start;
    double next_sample = 0.0;
    const Observer observe = [&](const Vec& state, double t) {
      if (t + 1e-12 >= next_sample) {
        traj.times.push_back(t);
        traj.points.push_back(state);
        next_sample += opts.observe_dt;
      }
    };
    AdaptiveOptions in = opts.integrate;
    in.dt_max = std::min(in.dt_max, opts.observe_dt);
    integrate_adaptive(f, x, 0.0, opts.t_end, in, observe);
    portrait.trajectories.push_back(std::move(traj));
  }
  return portrait;
}

std::string render_ascii(const PhasePortrait& portrait,
                         std::pair<std::size_t, std::size_t> dims,
                         double scale, int width, int height) {
  static constexpr char kMarkers[] = "ox*+#@%&";
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  std::size_t idx = 0;
  for (const Trajectory& traj : portrait.trajectories) {
    const char mark = kMarkers[idx++ % (sizeof(kMarkers) - 1)];
    for (const Vec& p : traj.points) {
      if (dims.first >= p.size() || dims.second >= p.size()) continue;
      const double px = p[dims.first] / scale;
      const double py = p[dims.second] / scale;
      if (px < 0 || px > 1 || py < 0 || py > 1) continue;
      const int col = std::min(width - 1, static_cast<int>(px * (width - 1)));
      const int row =
          std::min(height - 1, static_cast<int>((1.0 - py) * (height - 1)));
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          mark;
    }
  }
  std::string out;
  for (const std::string& row : grid) {
    out += '|';
    out += row;
    out += "|\n";
  }
  return out;
}

void write_gnuplot(const PhasePortrait& portrait, std::ostream& out,
                   std::pair<std::size_t, std::size_t> dims, double scale) {
  for (const Trajectory& traj : portrait.trajectories) {
    out << "# initial:";
    for (double v : traj.initial) out << ' ' << v * scale;
    out << '\n';
    for (const Vec& p : traj.points) {
      if (dims.first >= p.size() || dims.second >= p.size()) continue;
      out << p[dims.first] * scale << ' ' << p[dims.second] * scale << '\n';
    }
    out << '\n';
  }
}

}  // namespace deproto::num
