#include "numerics/jacobian.hpp"

#include <stdexcept>

namespace deproto::num {

SymbolicJacobian symbolic_jacobian(const ode::EquationSystem& sys) {
  const std::size_t m = sys.num_vars();
  SymbolicJacobian jac(m, std::vector<ode::Polynomial>(m));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      jac[i][j] = ode::derivative(sys.rhs(i), j);
    }
  }
  return jac;
}

Matrix jacobian_at(const ode::EquationSystem& sys, const Vec& x) {
  const std::size_t m = sys.num_vars();
  if (x.size() < m) {
    throw std::invalid_argument("jacobian_at: point has too few coordinates");
  }
  Matrix j(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t c = 0; c < m; ++c) {
      j(i, c) = ode::evaluate(ode::derivative(sys.rhs(i), c), x);
    }
  }
  return j;
}

Matrix reduced_jacobian_at(const ode::EquationSystem& sys, const Vec& x) {
  const std::size_t m = sys.num_vars();
  if (m < 2) {
    throw std::invalid_argument("reduced_jacobian_at: need >= 2 variables");
  }
  const Matrix full = jacobian_at(sys, x);
  Matrix r(m - 1, m - 1);
  for (std::size_t i = 0; i + 1 < m; ++i) {
    for (std::size_t j = 0; j + 1 < m; ++j) {
      r(i, j) = full(i, j) - full(i, m - 1);
    }
  }
  return r;
}

}  // namespace deproto::num
