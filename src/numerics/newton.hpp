#pragma once

// Equilibrium finding: damped Newton on f(x) = 0 with the exact polynomial
// Jacobian, and a multi-start search over the probability simplex that
// recovers all equilibria of the paper's systems (endemic eq.(2), the four
// LV fixed points).

#include <optional>
#include <vector>

#include "numerics/vector.hpp"
#include "ode/equation_system.hpp"

namespace deproto::num {

struct NewtonOptions {
  int max_iter = 200;
  double tol = 1e-12;       // convergence on ||f||_inf
  double min_damping = 1e-6;  // smallest step fraction in the line search
};

/// Solve f(x) = 0 from initial guess x0. Returns nullopt when Newton fails
/// (singular Jacobian with no useful perturbation, or no convergence).
[[nodiscard]] std::optional<Vec> newton_solve(const ode::EquationSystem& sys,
                                              Vec x0,
                                              const NewtonOptions& opts = {});

struct EquilibriumSearchOptions {
  /// Grid resolution per dimension over [lo, hi]^m (plus simplex corners).
  int grid = 5;
  double lo = 0.0;
  double hi = 1.0;
  /// Two roots closer than this (2-norm) are considered the same.
  double dedupe_radius = 1e-6;
  NewtonOptions newton;
};

/// All distinct equilibria found by multi-start Newton. Points are returned
/// in deterministic (lexicographically sorted) order.
[[nodiscard]] std::vector<Vec> find_equilibria(
    const ode::EquationSystem& sys,
    const EquilibriumSearchOptions& opts = {});

}  // namespace deproto::num
