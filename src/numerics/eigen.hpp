#pragma once

// Eigenvalues for the small dense matrices arising as Jacobians of protocol
// equation systems. 2x2 uses the closed form; the general case computes the
// characteristic polynomial by Faddeev-LeVerrier and finds its roots with
// the Durand-Kerner iteration (robust and simple at these sizes).

#include <complex>
#include <utility>
#include <vector>

#include "numerics/matrix.hpp"

namespace deproto::num {

using Complex = std::complex<double>;

/// Both eigenvalues of a 2x2 matrix, via trace/determinant closed form:
/// lambda = (tau +/- sqrt(tau^2 - 4*delta)) / 2.
[[nodiscard]] std::pair<Complex, Complex> eigenvalues_2x2(const Matrix& a);

/// All eigenvalues of a square matrix (any order), unordered.
[[nodiscard]] std::vector<Complex> eigenvalues(const Matrix& a);

/// Coefficients c of the characteristic polynomial
/// det(lambda I - A) = lambda^n + c[1] lambda^{n-1} + ... + c[n],
/// with c[0] == 1 (Faddeev-LeVerrier).
[[nodiscard]] std::vector<double> characteristic_polynomial(const Matrix& a);

/// All complex roots of the monic polynomial with the given coefficients
/// (coeffs[0] == 1, degree == coeffs.size()-1), via Durand-Kerner.
[[nodiscard]] std::vector<Complex> polynomial_roots(
    const std::vector<double>& coeffs);

/// Eigenvector for a (nearly) real eigenvalue via inverse iteration.
/// Returned vector has unit 2-norm. Throws if iteration fails to converge.
[[nodiscard]] Vec eigenvector(const Matrix& a, double lambda,
                              int max_iter = 200);

/// Largest real part among the eigenvalues (the spectral abscissa, which
/// decides asymptotic stability of a linear system).
[[nodiscard]] double spectral_abscissa(const Matrix& a);

}  // namespace deproto::num
