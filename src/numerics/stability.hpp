#pragma once

// Equilibrium classification in the style the paper borrows from Strogatz:
// for planar systems the trace/determinant test (Theorem 3's argument), for
// higher dimensions the spectral abscissa. Complete systems are classified
// on the invariant simplex via the reduced Jacobian.

#include <complex>
#include <string>
#include <vector>

#include "numerics/jacobian.hpp"
#include "numerics/matrix.hpp"

namespace deproto::num {

enum class EquilibriumType {
  StableNode,
  StableSpiral,
  StableDegenerate,  // repeated real negative eigenvalue (LV's (0,1)/(1,0))
  UnstableNode,
  UnstableSpiral,
  UnstableDegenerate,
  Saddle,
  Center,
  NonIsolated,  // zero eigenvalue: a line/plane of equilibria
};

[[nodiscard]] std::string to_string(EquilibriumType t);

struct StabilityReport {
  EquilibriumType type = EquilibriumType::NonIsolated;
  bool stable = false;          // asymptotically stable
  double trace = 0.0;           // tau (planar analysis)
  double determinant = 0.0;     // Delta
  double discriminant = 0.0;    // tau^2 - 4 Delta
  std::vector<std::complex<double>> eigenvalues;
};

/// Classify a linear system x-dot = A x at the origin.
[[nodiscard]] StabilityReport classify_matrix(const Matrix& a);

/// Classify an equilibrium of `sys` via the Jacobian at `point`.
[[nodiscard]] StabilityReport classify_equilibrium(
    const ode::EquationSystem& sys, const Vec& point);

/// Classify on the invariant simplex of a complete system (reduced
/// Jacobian): this is the physically meaningful notion for the protocol
/// systems, whose full Jacobians always carry one neutral direction.
[[nodiscard]] StabilityReport classify_on_simplex(
    const ode::EquationSystem& sys, const Vec& point);

}  // namespace deproto::num
