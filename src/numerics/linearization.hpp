#pragma once

// Perturbation analysis around an equilibrium (Section 4.1.3): linearize,
// classify, and produce the closed-form displacement solution u(t) for
// planar linearizations -- the paper's three eigenvalue cases.

#include <functional>

#include "numerics/stability.hpp"

namespace deproto::num {

struct Linearization {
  Vec equilibrium;
  Matrix jacobian;           // full Jacobian at the equilibrium
  Matrix reduced_jacobian;   // simplex-reduced (valid for complete systems)
  StabilityReport stability; // classification of the reduced Jacobian
};

[[nodiscard]] Linearization linearize(const ode::EquationSystem& sys,
                                      const Vec& equilibrium);

/// The matrix A of the paper's eq. (4):
///   A = [ -(sigma+alpha)   -sigma*(gamma+alpha) ]
///       [       1                    0          ]
/// where sigma = (beta*N - gamma) / (1 + gamma/alpha) in numbers notation
/// (equivalently sigma = beta*y_inf in fractions).
[[nodiscard]] Matrix endemic_matrix_A(double sigma, double alpha,
                                      double gamma);

/// sigma for the endemic system in *fraction* notation (N == 1):
/// sigma = (beta - gamma) / (1 + gamma/alpha).
[[nodiscard]] double endemic_sigma(double beta, double gamma, double alpha);

enum class EigenCase {
  ComplexConjugate,  // tau^2 - 4 Delta < 0: damped oscillation (spiral)
  RealDistinct,      // tau^2 - 4 Delta > 0: two-exponential decay
  RealEqual,         // tau^2 - 4 Delta = 0: critically damped
};

/// Closed-form displacement u(t) of the number of susceptibles around the
/// second endemic equilibrium, per Section 4.1.3:
///   complex:  u = u0 e^{-t(sigma+alpha)/2} cos(t sqrt(sigma*gamma -
///             (sigma-alpha)^2/4))
///   distinct: u = (udot0 - l2 u0)/(l1 - l2) e^{t l1}
///             + (udot0 - l1 u0)/(l2 - l1) e^{t l2}
///   equal:    u = u0 e^{-t (sigma+alpha)/2}
struct PerturbationSolution {
  EigenCase kase = EigenCase::ComplexConjugate;
  double lambda1 = 0.0;  // real parts (or the two real eigenvalues)
  double lambda2 = 0.0;
  double omega = 0.0;    // oscillation frequency when complex
  std::function<double(double)> u;  // u(t)
};

[[nodiscard]] PerturbationSolution endemic_perturbation(double sigma,
                                                        double alpha,
                                                        double gamma,
                                                        double u0,
                                                        double udot0 = 0.0);

}  // namespace deproto::num
