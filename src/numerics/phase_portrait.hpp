#pragma once

// Phase portraits (Figures 2 and 4): integrate a bundle of trajectories from
// a set of initial points and render them, either as gnuplot-ready data or
// as a coarse ASCII plot for terminal output.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "numerics/integrator.hpp"
#include "ode/equation_system.hpp"

namespace deproto::num {

struct Trajectory {
  Vec initial;
  std::vector<double> times;
  std::vector<Vec> points;
};

struct PhasePortrait {
  std::vector<Trajectory> trajectories;
};

struct PhasePortraitOptions {
  double t_end = 50.0;
  double observe_dt = 0.05;  // sampling interval for stored points
  AdaptiveOptions integrate;
};

/// Integrate `sys` from each initial point and record sampled states.
[[nodiscard]] PhasePortrait compute_phase_portrait(
    const ode::EquationSystem& sys, const std::vector<Vec>& initial_points,
    const PhasePortraitOptions& opts = {});

/// Project onto (dims.first, dims.second) and render as an ASCII grid of
/// `width` x `height` characters covering [0, scale] on both axes. Each
/// trajectory uses its own marker character (cycled from a fixed set).
[[nodiscard]] std::string render_ascii(const PhasePortrait& portrait,
                                       std::pair<std::size_t, std::size_t> dims,
                                       double scale, int width = 70,
                                       int height = 30);

/// Write "x y" rows per trajectory, blank-line separated (gnuplot format),
/// scaled by `scale` (use N to reproduce the paper's axes in process counts).
void write_gnuplot(const PhasePortrait& portrait, std::ostream& out,
                   std::pair<std::size_t, std::size_t> dims,
                   double scale = 1.0);

}  // namespace deproto::num
