#pragma once

// Small dense vector helpers used across the numerics layer. A state vector
// is just std::vector<double>; these free functions keep call sites terse.

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace deproto::num {

using Vec = std::vector<double>;

inline void check_same_size(std::span<const double> a,
                            std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("vector size mismatch");
  }
}

[[nodiscard]] inline Vec add(std::span<const double> a,
                             std::span<const double> b) {
  check_same_size(a, b);
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

[[nodiscard]] inline Vec sub(std::span<const double> a,
                             std::span<const double> b) {
  check_same_size(a, b);
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

[[nodiscard]] inline Vec scale(std::span<const double> a, double k) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = k * a[i];
  return out;
}

/// y += k * x
inline void axpy(double k, std::span<const double> x, std::span<double> y) {
  check_same_size(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += k * x[i];
}

[[nodiscard]] inline double dot(std::span<const double> a,
                                std::span<const double> b) {
  check_same_size(a, b);
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

[[nodiscard]] inline double norm2(std::span<const double> a) {
  return std::sqrt(dot(a, a));
}

[[nodiscard]] inline double norm_inf(std::span<const double> a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

[[nodiscard]] inline double distance(std::span<const double> a,
                                     std::span<const double> b) {
  check_same_size(a, b);
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace deproto::num
