#include "numerics/stability.hpp"

#include <cmath>

#include "numerics/eigen.hpp"

namespace deproto::num {

std::string to_string(EquilibriumType t) {
  switch (t) {
    case EquilibriumType::StableNode: return "stable node";
    case EquilibriumType::StableSpiral: return "stable spiral";
    case EquilibriumType::StableDegenerate: return "stable degenerate node";
    case EquilibriumType::UnstableNode: return "unstable node";
    case EquilibriumType::UnstableSpiral: return "unstable spiral";
    case EquilibriumType::UnstableDegenerate:
      return "unstable degenerate node";
    case EquilibriumType::Saddle: return "saddle point";
    case EquilibriumType::Center: return "center";
    case EquilibriumType::NonIsolated: return "non-isolated equilibrium";
  }
  return "?";
}

StabilityReport classify_matrix(const Matrix& a) {
  StabilityReport report;
  report.eigenvalues = eigenvalues(a);
  if (a.square() && a.rows() == 2) {
    // Strogatz's trace/determinant chart, as used in the proof of Theorem 3.
    const double tau = a.trace();
    const double delta = a.determinant();
    const double disc = tau * tau - 4.0 * delta;
    report.trace = tau;
    report.determinant = delta;
    report.discriminant = disc;
    constexpr double kZero = 1e-12;
    if (std::abs(delta) < kZero) {
      report.type = EquilibriumType::NonIsolated;
      report.stable = false;
      return report;
    }
    if (delta < 0) {
      report.type = EquilibriumType::Saddle;
      report.stable = false;
      return report;
    }
    // delta > 0.
    if (std::abs(tau) < kZero) {
      report.type = EquilibriumType::Center;
      report.stable = false;  // marginally stable, not asymptotically
      return report;
    }
    const bool is_stable = tau < 0;
    report.stable = is_stable;
    if (disc > kZero) {
      report.type = is_stable ? EquilibriumType::StableNode
                              : EquilibriumType::UnstableNode;
    } else if (disc < -kZero) {
      report.type = is_stable ? EquilibriumType::StableSpiral
                              : EquilibriumType::UnstableSpiral;
    } else {
      report.type = is_stable ? EquilibriumType::StableDegenerate
                              : EquilibriumType::UnstableDegenerate;
    }
    return report;
  }

  // General dimension: look at eigenvalue real parts.
  report.trace = a.trace();
  report.determinant = a.determinant();
  constexpr double kZero = 1e-9;
  int positive = 0, negative = 0, zero = 0;
  bool any_complex = false;
  for (const auto& l : report.eigenvalues) {
    if (l.real() > kZero) {
      ++positive;
    } else if (l.real() < -kZero) {
      ++negative;
    } else {
      ++zero;
    }
    if (std::abs(l.imag()) > kZero) any_complex = true;
  }
  if (zero > 0) {
    report.type = EquilibriumType::NonIsolated;
    report.stable = false;
  } else if (positive > 0 && negative > 0) {
    report.type = EquilibriumType::Saddle;
    report.stable = false;
  } else if (positive == 0) {
    report.type = any_complex ? EquilibriumType::StableSpiral
                              : EquilibriumType::StableNode;
    report.stable = true;
  } else {
    report.type = any_complex ? EquilibriumType::UnstableSpiral
                              : EquilibriumType::UnstableNode;
    report.stable = false;
  }
  return report;
}

StabilityReport classify_equilibrium(const ode::EquationSystem& sys,
                                     const Vec& point) {
  return classify_matrix(jacobian_at(sys, point));
}

StabilityReport classify_on_simplex(const ode::EquationSystem& sys,
                                    const Vec& point) {
  return classify_matrix(reduced_jacobian_at(sys, point));
}

}  // namespace deproto::num
