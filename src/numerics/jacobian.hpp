#pragma once

// Exact (symbolic) Jacobians of polynomial equation systems, plus numeric
// evaluation at a point. Polynomial right-hand sides differentiate exactly,
// so no finite differencing is needed anywhere in the analysis pipeline.

#include <vector>

#include "numerics/matrix.hpp"
#include "ode/equation_system.hpp"

namespace deproto::num {

/// Grid of polynomials J[i][j] = d f_i / d x_j.
using SymbolicJacobian = std::vector<std::vector<ode::Polynomial>>;

[[nodiscard]] SymbolicJacobian symbolic_jacobian(
    const ode::EquationSystem& sys);

/// Evaluate the Jacobian of `sys` at point `x`.
[[nodiscard]] Matrix jacobian_at(const ode::EquationSystem& sys,
                                 const Vec& x);

/// Jacobian of a *complete* system restricted to the invariant simplex
/// Sum x = const: eliminate the last variable (x_m = S - Sum_{i<m} x_i),
/// giving the (m-1)x(m-1) reduced Jacobian
///   Jr[i][j] = J[i][j] - J[i][m-1].
/// Stability on the simplex is decided by this matrix; the full Jacobian
/// always carries a spurious neutral direction along (1,...,1).
[[nodiscard]] Matrix reduced_jacobian_at(const ode::EquationSystem& sys,
                                         const Vec& x);

}  // namespace deproto::num
