#pragma once

// Case Study II (Section 4.2): the LV protocol for probabilistic majority
// selection, the Figure 3 state machine synthesized from the rewritten
// Lotka-Volterra competition system (eq. 7). Every process proposes 0
// (state x) or 1 (state y); the group converges w.h.p. to the initial
// majority, with state z (undecided) as the intermediate.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/protocol.hpp"

namespace deproto::proto {

struct LvParams {
  double p = 0.01;  // normalizing constant; coin bias is 3p (must be <= 1/3)
};

class LvMajority final : public sim::PeriodicProtocol {
 public:
  static constexpr std::size_t kX = 0;  // proposing/decided 0
  static constexpr std::size_t kY = 1;  // proposing/decided 1
  static constexpr std::size_t kZ = 2;  // undecided

  explicit LvMajority(LvParams params);

  [[nodiscard]] std::size_t num_states() const override { return 3; }
  [[nodiscard]] std::size_t rejoin_state() const override { return kZ; }

  void execute_period(sim::Group& group, sim::Rng& rng,
                      sim::MetricsCollector& metrics) override;

  [[nodiscard]] const LvParams& params() const noexcept { return params_; }

  /// Running decision variable of one process: 0, 1 or undecided.
  enum class Decision : std::uint8_t { Zero, One, Undecided };
  [[nodiscard]] static Decision decision_of(const sim::Group& group,
                                            sim::ProcessId pid);

  /// True when every alive process holds the same decided value.
  [[nodiscard]] static bool converged(const sim::Group& group);

  /// The winning value if converged (0 or 1); -1 otherwise.
  [[nodiscard]] static int winner(const sim::Group& group);

 private:
  LvParams params_;
  std::vector<sim::ProcessId> scratch_;
};

}  // namespace deproto::proto
