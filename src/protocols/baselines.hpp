#pragma once

// Baselines for the migratory-replication comparison:
//
//  * HandoffMigration -- the "simple solution" of Section 4.1.1: a holder
//    hands the object to another process and deletes it immediately. A
//    crash of a holder destroys a replica; without refresh the replica
//    population is a martingale-with-deaths and goes extinct.
//
//  * StaticReplication -- the static/reactive placement strategy the paper
//    argues against (Section 4.1): k replicas at fixed hosts, with reactive
//    repair after a detection delay. Repair needs a surviving copy, so a
//    burst that destroys all k replicas (massive failure or a targeted
//    attack) is unrecoverable; replicas also never migrate (no fairness,
//    fully traceable).

#include <cstddef>
#include <vector>

#include "sim/protocol.hpp"

namespace deproto::proto {

struct HandoffParams {
  double handoff_prob = 0.1;  // per-period probability a holder hands off
};

class HandoffMigration final : public sim::PeriodicProtocol {
 public:
  static constexpr std::size_t kIdle = 0;
  static constexpr std::size_t kHolder = 1;

  explicit HandoffMigration(HandoffParams params);

  [[nodiscard]] std::size_t num_states() const override { return 2; }

  void execute_period(sim::Group& group, sim::Rng& rng,
                      sim::MetricsCollector& metrics) override;

  /// Replicas destroyed because a holder crashed or the hand-off target was
  /// unreachable (crash-stop during transfer).
  [[nodiscard]] std::size_t replicas_lost() const noexcept { return lost_; }

 private:
  HandoffParams params_;
  std::size_t lost_ = 0;
  std::vector<sim::ProcessId> scratch_;
};

struct StaticReplicationParams {
  std::size_t replicas = 8;        // target replica count k
  std::size_t detection_delay = 5; // periods until a crash is detected
};

class StaticReplication final : public sim::PeriodicProtocol {
 public:
  static constexpr std::size_t kIdle = 0;
  static constexpr std::size_t kHolder = 1;

  explicit StaticReplication(StaticReplicationParams params);

  [[nodiscard]] std::size_t num_states() const override { return 2; }

  void execute_period(sim::Group& group, sim::Rng& rng,
                      sim::MetricsCollector& metrics) override;

  void on_crash(sim::ProcessId pid) override;

  /// True once every replica has been destroyed (repair impossible).
  [[nodiscard]] bool extinct(const sim::Group& group) const {
    return group.count(kHolder) == 0;
  }

  [[nodiscard]] std::size_t repairs_done() const noexcept { return repairs_; }

 private:
  StaticReplicationParams params_;
  std::size_t repairs_ = 0;
  std::size_t period_ = 0;
  std::vector<std::size_t> pending_repairs_;  // due periods
};

}  // namespace deproto::proto
