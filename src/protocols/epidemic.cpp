#include "protocols/epidemic.hpp"

#include <stdexcept>

#include "sim/sync_sim.hpp"

namespace deproto::proto {

PullEpidemic::PullEpidemic(EpidemicParams params) : params_(params) {
  if (params_.fanout == 0) {
    throw std::invalid_argument("PullEpidemic: fanout must be positive");
  }
}

void PullEpidemic::execute_period(sim::Group& group, sim::Rng& rng,
                                  sim::MetricsCollector& /*metrics*/) {
  scratch_ = group.members(kSusceptible);
  for (sim::ProcessId pid : scratch_) {
    if (!group.alive(pid) || group.state_of(pid) != kSusceptible) continue;
    for (unsigned k = 0; k < params_.fanout; ++k) {
      const sim::ProcessId target = group.random_target(pid, rng);
      if (group.alive(target) && group.state_of(target) == kInfected) {
        group.transition(pid, kInfected);
        break;
      }
    }
  }
}

std::size_t epidemic_rounds_to_full_infection(std::size_t n,
                                              std::uint64_t seed,
                                              unsigned fanout) {
  PullEpidemic protocol(EpidemicParams{fanout});
  sim::SyncSimulator simulator(n, protocol, seed);
  simulator.seed_states({n - 1, 1});  // one initial infective
  std::size_t rounds = 0;
  while (simulator.group().count(PullEpidemic::kInfected) <
         simulator.group().total_alive()) {
    simulator.run(1);
    ++rounds;
    if (rounds > 100 * (n + 1)) {
      throw std::runtime_error("epidemic failed to converge");
    }
  }
  return rounds;
}

}  // namespace deproto::proto
