#pragma once

// The motivating example (Section 1): the canonical pull epidemic derived
// from eq. (0). Susceptible processes periodically contact one random
// process; infected contacts transmit the multicast. Infection is
// absorbing; x(t) -> 0 in O(log N) rounds.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/protocol.hpp"

namespace deproto::proto {

struct EpidemicParams {
  unsigned fanout = 1;  // contacts per period (1 = canonical pull epidemic)
};

class PullEpidemic final : public sim::PeriodicProtocol {
 public:
  static constexpr std::size_t kSusceptible = 0;
  static constexpr std::size_t kInfected = 1;

  explicit PullEpidemic(EpidemicParams params = {});

  [[nodiscard]] std::size_t num_states() const override { return 2; }

  void execute_period(sim::Group& group, sim::Rng& rng,
                      sim::MetricsCollector& metrics) override;

 private:
  EpidemicParams params_;
  std::vector<sim::ProcessId> scratch_;
};

/// Rounds until every alive process is infected, starting from a single
/// infected process in a group of n (one full simulation run).
[[nodiscard]] std::size_t epidemic_rounds_to_full_infection(
    std::size_t n, std::uint64_t seed, unsigned fanout = 1);

}  // namespace deproto::proto
