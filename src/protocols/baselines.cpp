#include "protocols/baselines.hpp"

#include <algorithm>
#include <stdexcept>

namespace deproto::proto {

HandoffMigration::HandoffMigration(HandoffParams params) : params_(params) {
  if (!(params_.handoff_prob > 0.0 && params_.handoff_prob <= 1.0)) {
    throw std::invalid_argument("HandoffMigration: bad handoff probability");
  }
}

void HandoffMigration::execute_period(sim::Group& group, sim::Rng& rng,
                                      sim::MetricsCollector& /*metrics*/) {
  scratch_ = group.members(kHolder);
  for (sim::ProcessId pid : scratch_) {
    if (!group.alive(pid) || group.state_of(pid) != kHolder) continue;
    if (!rng.bernoulli(params_.handoff_prob)) continue;
    // Hand the object to a random target and delete the local copy
    // immediately (the flawed step: no overlap between copies).
    const sim::ProcessId target = group.random_target(pid, rng);
    group.transition(pid, kIdle);
    if (!group.alive(target)) {
      ++lost_;  // transfer to a crashed host: the replica is gone
    } else if (group.state_of(target) == kHolder) {
      ++lost_;  // two copies merged into one holder
    } else {
      group.transition(target, kHolder);
    }
  }
}

StaticReplication::StaticReplication(StaticReplicationParams params)
    : params_(params) {
  if (params_.replicas == 0) {
    throw std::invalid_argument("StaticReplication: need >= 1 replica");
  }
}

void StaticReplication::on_crash(sim::ProcessId /*pid*/) {
  // The crash of a holder is noticed `detection_delay` periods later; the
  // pending repair clones from any surviving replica.
  pending_repairs_.push_back(period_ + params_.detection_delay);
}

void StaticReplication::execute_period(sim::Group& group, sim::Rng& rng,
                                       sim::MetricsCollector& /*metrics*/) {
  ++period_;
  // Note: on_crash fires for *any* crash, holder or not; over-counting is
  // resolved here by only repairing up to the target count.
  auto due = std::partition(pending_repairs_.begin(), pending_repairs_.end(),
                            [&](std::size_t t) { return t > period_; });
  const auto n_due = static_cast<std::size_t>(
      std::distance(due, pending_repairs_.end()));
  pending_repairs_.erase(due, pending_repairs_.end());

  if (group.count(kHolder) == 0) return;  // extinct: nothing left to clone

  for (std::size_t k = 0; k < n_due; ++k) {
    if (group.count(kHolder) >= params_.replicas) break;
    if (group.count(kIdle) == 0) break;
    group.transition(group.random_member(kIdle, rng), kHolder);
    ++repairs_;
  }
}

}  // namespace deproto::proto
