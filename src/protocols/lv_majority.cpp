#include "protocols/lv_majority.hpp"

#include <stdexcept>

namespace deproto::proto {

LvMajority::LvMajority(LvParams params) : params_(params) {
  if (!(params_.p > 0.0 && 3.0 * params_.p <= 1.0)) {
    throw std::invalid_argument("LvMajority: need 0 < 3p <= 1");
  }
}

void LvMajority::execute_period(sim::Group& group, sim::Rng& rng,
                                sim::MetricsCollector& /*metrics*/) {
  const double bias = 3.0 * params_.p;

  // State x: sample one target; if it is in y and the coin lands heads,
  // move to z (term -3xy in x-dot; the paired +3xy lives in z-dot).
  scratch_ = group.members(kX);
  for (sim::ProcessId pid : scratch_) {
    if (!group.alive(pid) || group.state_of(pid) != kX) continue;
    const sim::ProcessId target = group.random_target(pid, rng);
    if (group.alive(target) && group.state_of(target) == kY &&
        rng.bernoulli(bias)) {
      group.transition(pid, kZ);
    }
  }

  // State y: sample one target; if it is in x and heads, move to z.
  scratch_ = group.members(kY);
  for (sim::ProcessId pid : scratch_) {
    if (!group.alive(pid) || group.state_of(pid) != kY) continue;
    const sim::ProcessId target = group.random_target(pid, rng);
    if (group.alive(target) && group.state_of(target) == kX &&
        rng.bernoulli(bias)) {
      group.transition(pid, kZ);
    }
  }

  // State z: two actions in order. First: sample; if target in x and heads,
  // move to x (-3xz). Second: sample; if target in y and heads, move to y
  // (-3yz). A process fires at most one action per period.
  scratch_ = group.members(kZ);
  for (sim::ProcessId pid : scratch_) {
    if (!group.alive(pid) || group.state_of(pid) != kZ) continue;
    const sim::ProcessId first = group.random_target(pid, rng);
    if (group.alive(first) && group.state_of(first) == kX &&
        rng.bernoulli(bias)) {
      group.transition(pid, kX);
      continue;
    }
    const sim::ProcessId second = group.random_target(pid, rng);
    if (group.alive(second) && group.state_of(second) == kY &&
        rng.bernoulli(bias)) {
      group.transition(pid, kY);
    }
  }
}

LvMajority::Decision LvMajority::decision_of(const sim::Group& group,
                                             sim::ProcessId pid) {
  switch (group.state_of(pid)) {
    case kX: return Decision::Zero;
    case kY: return Decision::One;
    default: return Decision::Undecided;
  }
}

bool LvMajority::converged(const sim::Group& group) {
  const std::size_t alive = group.total_alive();
  return alive > 0 &&
         (group.count(kX) == alive || group.count(kY) == alive);
}

int LvMajority::winner(const sim::Group& group) {
  if (!converged(group)) return -1;
  return group.count(kY) == group.total_alive() ? 1 : 0;
}

}  // namespace deproto::proto
