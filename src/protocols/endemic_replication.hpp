#pragma once

// Case Study I (Section 4.1): the endemic protocol for probabilistic
// responsibility migration / migratory replication, as depicted in Figure 1
// (including the fourth push action with b = beta/2). This is the
// hand-optimized variant the paper's experiments ran; the pure synthesized
// machine is available via core::synthesize on ode::catalog::endemic.
//
// States: receptive (0) -- would store the file if asked;
//         stash     (1) -- currently stores a replica (responsible);
//         averse    (2) -- recently deleted, refuses to store for a while.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/protocol.hpp"

namespace deproto::proto {

struct EndemicParams {
  unsigned b = 2;          // contacts per period; beta = 2b with push enabled
  double gamma = 0.1;      // stash -> averse rate (replica deletion)
  double alpha = 0.001;    // averse -> receptive rate
  bool push_enabled = true;  // action (iv) of Section 4.1.2
};

class EndemicReplication final : public sim::PeriodicProtocol {
 public:
  static constexpr std::size_t kReceptive = 0;
  static constexpr std::size_t kStash = 1;
  static constexpr std::size_t kAverse = 2;

  explicit EndemicReplication(EndemicParams params);

  [[nodiscard]] std::size_t num_states() const override { return 3; }
  [[nodiscard]] std::size_t rejoin_state() const override {
    return kReceptive;  // rejoining hosts are receptive, no startup transfer
  }

  void execute_period(sim::Group& group, sim::Rng& rng,
                      sim::MetricsCollector& metrics) override;

  [[nodiscard]] const EndemicParams& params() const noexcept {
    return params_;
  }

  /// File transfers (receptive -> stash conversions) in the last period:
  /// the paper's "file flux rate" (Figure 6).
  [[nodiscard]] std::size_t transfers_last_period() const noexcept {
    return transfers_last_;
  }
  [[nodiscard]] std::uint64_t transfers_total() const noexcept {
    return transfers_total_;
  }

  /// Periods each host has spent in the stash state (fairness accounting).
  [[nodiscard]] const std::vector<std::uint64_t>& stash_periods()
      const noexcept {
    return stash_periods_;
  }

 private:
  EndemicParams params_;
  std::size_t transfers_last_ = 0;
  std::uint64_t transfers_total_ = 0;
  std::vector<std::uint64_t> stash_periods_;
  std::vector<sim::ProcessId> scratch_;
};

}  // namespace deproto::proto
