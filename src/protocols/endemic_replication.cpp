#include "protocols/endemic_replication.hpp"

#include <stdexcept>

namespace deproto::proto {

EndemicReplication::EndemicReplication(EndemicParams params)
    : params_(params) {
  if (params_.b == 0) {
    throw std::invalid_argument("EndemicReplication: b must be positive");
  }
  if (!(params_.gamma > 0.0 && params_.gamma <= 1.0) ||
      !(params_.alpha > 0.0 && params_.alpha <= 1.0)) {
    throw std::invalid_argument(
        "EndemicReplication: alpha, gamma must lie in (0, 1]");
  }
}

void EndemicReplication::execute_period(sim::Group& group, sim::Rng& rng,
                                        sim::MetricsCollector& /*metrics*/) {
  transfers_last_ = 0;
  if (stash_periods_.size() != group.size()) {
    stash_periods_.assign(group.size(), 0);
  }

  // Fairness accounting: every current stasher logs one stored period.
  for (sim::ProcessId pid : group.members(kStash)) {
    ++stash_periods_[pid];
  }

  // (i) gamma*y: stashers flip a gamma-coin; heads -> averse (delete the
  // replica). Aggregated: the number of heads among m independent coins is
  // Binomial(m, gamma), and the flippers are a uniform random subset.
  const std::size_t deletions =
      rng.binomial(group.count(kStash), params_.gamma);
  for (std::size_t k = 0; k < deletions; ++k) {
    group.transition(group.random_member(kStash, rng), kAverse);
  }

  // (ii) alpha*z: averse flip an alpha-coin; heads -> receptive.
  const std::size_t thaws = rng.binomial(group.count(kAverse), params_.alpha);
  for (std::size_t k = 0; k < thaws; ++k) {
    group.transition(group.random_member(kAverse, rng), kReceptive);
  }

  // (iii) beta*x*y pull: every receptive process contacts b uniformly
  // random targets (from the maximal membership: contacts to crashed hosts
  // are fruitless); if any target is an alive stasher, the process fetches
  // the file and turns stash.
  scratch_ = group.members(kReceptive);  // snapshot: transitions mutate it
  for (sim::ProcessId pid : scratch_) {
    if (!group.alive(pid) || group.state_of(pid) != kReceptive) continue;
    bool found = false;
    for (unsigned k = 0; !found && k < params_.b; ++k) {
      const sim::ProcessId target = group.random_target(pid, rng);
      found = group.alive(target) && group.state_of(target) == kStash;
    }
    if (found) {
      group.transition(pid, kStash);
      ++transfers_last_;
    }
  }

  // (iv) beta*x*y push: every stasher contacts b random targets; receptive
  // targets take a copy and turn stash. With (iii), the contact rate is
  // N(1 - (1 - b/N)^2) ~= 2b, so beta = 2b.
  if (params_.push_enabled) {
    scratch_ = group.members(kStash);
    for (sim::ProcessId pid : scratch_) {
      if (!group.alive(pid) || group.state_of(pid) != kStash) continue;
      for (unsigned k = 0; k < params_.b; ++k) {
        const sim::ProcessId target = group.random_target(pid, rng);
        if (group.alive(target) && group.state_of(target) == kReceptive) {
          group.transition(target, kStash);
          ++transfers_last_;
        }
      }
    }
  }

  transfers_total_ += transfers_last_;
}

}  // namespace deproto::proto
