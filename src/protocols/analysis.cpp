#include "protocols/analysis.hpp"

#include <cmath>
#include <stdexcept>

namespace deproto::proto {

namespace {
constexpr double kMinutesPerYear = 365.25 * 24.0 * 60.0;
}

double endemic_beta(const EndemicParams& params) {
  return params.push_enabled ? 2.0 * static_cast<double>(params.b)
                             : static_cast<double>(params.b);
}

EndemicEquilibrium endemic_equilibrium(const EndemicParams& params) {
  const double beta = endemic_beta(params);
  if (!(beta > params.gamma)) {
    throw std::invalid_argument(
        "endemic_equilibrium: requires beta > gamma (else the trivial "
        "equilibrium (1,0,0) is the only stable one)");
  }
  EndemicEquilibrium eq;
  eq.x = params.gamma / beta;
  eq.y = (1.0 - eq.x) / (1.0 + params.gamma / params.alpha);
  eq.z = (1.0 - eq.x) / (1.0 + params.alpha / params.gamma);
  return eq;
}

double endemic_sigma(const EndemicParams& params) {
  return (endemic_beta(params) - params.gamma) /
         (1.0 + params.gamma / params.alpha);
}

num::StabilityReport endemic_stability(const EndemicParams& params) {
  const double sigma = endemic_sigma(params);
  return num::classify_matrix(
      num::endemic_matrix_A(sigma, params.alpha, params.gamma));
}

num::EigenCase endemic_eigen_case(const EndemicParams& params) {
  const num::StabilityReport report = endemic_stability(params);
  constexpr double kZero = 1e-12;
  if (report.discriminant < -kZero) return num::EigenCase::ComplexConjugate;
  if (report.discriminant > kZero) return num::EigenCase::RealDistinct;
  return num::EigenCase::RealEqual;
}

EndemicExpectation endemic_expectation(std::size_t n,
                                       const EndemicParams& params) {
  const EndemicEquilibrium eq = endemic_equilibrium(params);
  const auto nn = static_cast<double>(n);
  return EndemicExpectation{eq.x * nn, eq.y * nn, eq.z * nn};
}

double extinction_probability(double stasher_count) {
  if (stasher_count < 0.0) {
    throw std::invalid_argument("extinction_probability: negative count");
  }
  return std::pow(0.5, stasher_count);
}

double longevity_years(double stasher_count, double period_minutes) {
  return period_minutes / extinction_probability(stasher_count) /
         kMinutesPerYear;
}

double stasher_creation_interval_seconds(std::size_t n,
                                         const EndemicParams& params,
                                         double period_seconds) {
  const EndemicEquilibrium eq = endemic_equilibrium(params);
  // At equilibrium, creations balance deletions: gamma * y_inf * N per
  // period (each stasher creates new stashers at rate beta * x_inf = gamma).
  const double creations_per_period =
      params.gamma * eq.y * static_cast<double>(n);
  if (creations_per_period <= 0.0) {
    throw std::invalid_argument("no stasher creation at these parameters");
  }
  return period_seconds / creations_per_period;
}

RealityCheck reality_check(std::size_t n, const EndemicParams& params,
                           double period_minutes, double file_kilobytes) {
  const EndemicEquilibrium eq = endemic_equilibrium(params);
  RealityCheck rc;
  rc.stash_fraction = eq.y;
  rc.spell_periods = 1.0 / params.gamma;
  rc.spell_hours = rc.spell_periods * period_minutes / 60.0;
  // A host stores the file for `spell` out of every `spell / y_inf`
  // periods on average.
  rc.interval_hours = rc.spell_hours / eq.y;
  rc.transfers_per_period = params.gamma * eq.y * static_cast<double>(n);
  const double bits = file_kilobytes * 1024.0 * 8.0;
  const double period_seconds = period_minutes * 60.0;
  // Each transfer occupies bandwidth at both endpoints (send + receive).
  rc.bandwidth_bps = 2.0 * rc.transfers_per_period * bits /
                     (static_cast<double>(n) * period_seconds);
  return rc;
}

double LvConvergence::x(double t) const {
  return u0 * std::exp(-3.0 * p * t);
}

double LvConvergence::y(double t) const {
  return 1.0 - (6.0 * p * u0 * t + v0) * std::exp(-3.0 * p * t);
}

double lv_periods_to_minority(double u0, double epsilon, double p) {
  if (!(u0 > 0.0) || !(epsilon > 0.0) || !(p > 0.0)) {
    throw std::invalid_argument("lv_periods_to_minority: bad arguments");
  }
  if (epsilon >= u0) return 0.0;
  return std::log(u0 / epsilon) / (3.0 * p);
}

double lv_periods_to_one_process(std::size_t n, double u0, double p) {
  return lv_periods_to_minority(u0, 1.0 / static_cast<double>(n), p);
}

}  // namespace deproto::proto
