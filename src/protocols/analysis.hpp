#pragma once

// Closed-form results from Sections 4.1.3, 4.2.2 and 5.1: endemic
// equilibria (eq. 2), the sigma/tau/Delta stability quantities (eq. 5), the
// three eigenvalue cases, replica-longevity and reality-check estimates,
// and the LV convergence complexity. All formulas are in *fraction*
// notation (variables are fractions of N; beta is the per-period contact
// rate, = 2b with the push action enabled).

#include <cstddef>

#include "numerics/linearization.hpp"
#include "protocols/endemic_replication.hpp"

namespace deproto::proto {

/// Effective contact rate beta of the endemic protocol: 2b with the push
/// action (Section 4.1.2: N(1-(1-b/N)^2) ~= 2b), b with pull only.
[[nodiscard]] double endemic_beta(const EndemicParams& params);

struct EndemicEquilibrium {
  double x = 0.0;  // receptive fraction  = gamma / beta
  double y = 0.0;  // stash fraction      = (1 - gamma/beta) / (1 + gamma/alpha)
  double z = 0.0;  // averse fraction     = (1 - gamma/beta) / (1 + alpha/gamma)
};

/// The second (non-trivial) equilibrium of eq. (2). Requires beta > gamma.
[[nodiscard]] EndemicEquilibrium endemic_equilibrium(
    const EndemicParams& params);

/// sigma = (beta - gamma) / (1 + gamma/alpha)  (eq. 4 quantities).
[[nodiscard]] double endemic_sigma(const EndemicParams& params);

/// Stability of the second equilibrium via matrix A (Theorem 3: always a
/// stable point when alpha, gamma > 0 and beta > gamma).
[[nodiscard]] num::StabilityReport endemic_stability(
    const EndemicParams& params);

/// Which of the three eigenvalue cases of Section 4.1.3 applies.
[[nodiscard]] num::EigenCase endemic_eigen_case(const EndemicParams& params);

/// Expected number of processes per state at equilibrium in a group of n.
struct EndemicExpectation {
  double receptives = 0.0;
  double stashers = 0.0;
  double averse = 0.0;
};
[[nodiscard]] EndemicExpectation endemic_expectation(
    std::size_t n, const EndemicParams& params);

/// Probability that all y_inf stashers die before creating a new stasher:
/// (1/2)^{y_inf} (Section 4.1.3, probabilistic safety).
[[nodiscard]] double extinction_probability(double stasher_count);

/// Expected object longevity in years: one extinction opportunity per
/// period => period / (1/2)^{y_inf}.
[[nodiscard]] double longevity_years(double stasher_count,
                                     double period_minutes);

/// Seconds between consecutive new-stasher creations at equilibrium:
/// creations per period = gamma * y_inf * n.
[[nodiscard]] double stasher_creation_interval_seconds(
    std::size_t n, const EndemicParams& params, double period_seconds);

/// Section 5.1 "Reality check" quantities for one file in a group of n.
struct RealityCheck {
  double stash_fraction = 0.0;    // fraction of time a host stores the file
  double spell_periods = 0.0;     // mean storage spell length = 1/gamma
  double spell_hours = 0.0;
  double interval_hours = 0.0;    // mean time between spells per host
  double transfers_per_period = 0.0;  // system-wide
  double bandwidth_bps = 0.0;     // per host per file; counts both endpoints
};
[[nodiscard]] RealityCheck reality_check(std::size_t n,
                                         const EndemicParams& params,
                                         double period_minutes,
                                         double file_kilobytes);

// --- LV protocol (Section 4.2.2) -------------------------------------------

/// Convergence complexity near the stable point (0, 1): with protocol
/// normalizer p, (x(t), y(t)) = (u0 e^{-3pt}, 1 - (6p*u0*t + v0) e^{-3pt}).
/// (The paper states the p = 1 form; protocol periods dilate time by 1/p.)
struct LvConvergence {
  double u0 = 0.0;
  double v0 = 0.0;
  double p = 1.0;
  [[nodiscard]] double x(double t) const;
  [[nodiscard]] double y(double t) const;
};

/// Periods until the minority population decays below `epsilon` starting
/// from displacement u0: solves u0 e^{-3pt} = epsilon.
[[nodiscard]] double lv_periods_to_minority(double u0, double epsilon,
                                            double p);

/// O(log N) scaling constant: periods for one minority process to remain
/// out of N, starting from fraction u0 (paper: O(log N) protocol periods).
[[nodiscard]] double lv_periods_to_one_process(std::size_t n, double u0,
                                               double p);

}  // namespace deproto::proto
