#pragma once

// Thin RAII wrapper over a non-blocking IPv4 UDP socket bound to the
// loopback interface, plus the poll() helper the NetSimulator's event
// loop drives all node sockets with. Nothing protocol-specific lives
// here: packet.hpp owns the bytes, net_sim.hpp owns the behavior.

#include <netinet/in.h>
#include <poll.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace deproto::net {

/// 127.0.0.1:port as a ready-to-use sendto() destination.
[[nodiscard]] sockaddr_in loopback_endpoint(std::uint16_t port);

/// Move-only owner of one bound UDP socket fd. A default-constructed
/// socket is closed; bind_loopback() produces an open one.
class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Bind a fresh non-blocking socket to 127.0.0.1:`port` (0 = let the
  /// kernel pick an ephemeral port). Throws std::system_error on any
  /// socket/bind failure -- fd exhaustion or a taken port, typically.
  [[nodiscard]] static UdpSocket bind_loopback(std::uint16_t port = 0);

  [[nodiscard]] bool open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// The bound port (0 when closed).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  void close() noexcept;

  /// One datagram to `dest`. True when the kernel accepted it; false on
  /// any send error (including a transient full buffer -- UDP loses it,
  /// exactly like the wire would).
  bool send_to(const sockaddr_in& dest, const char* data, std::size_t n);

  /// One datagram into `buf`; returns its length, or -1 when nothing is
  /// pending (EAGAIN) or the socket is closed. `from`, when non-null,
  /// receives the source address.
  long recv_from(char* buf, std::size_t n, sockaddr_in* from = nullptr);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// poll(2) over `fds` with a millisecond timeout (>= 0). Returns the
/// number of ready entries (revents filled in), 0 on timeout; EINTR is
/// retried internally, other errors surface as 0.
int poll_sockets(std::vector<pollfd>& fds, int timeout_ms);

}  // namespace deproto::net
