#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace deproto::net {

sockaddr_in loopback_endpoint(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

UdpSocket::~UdpSocket() { close(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

UdpSocket UdpSocket::bind_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    throw std::system_error(errno, std::generic_category(),
                            "UdpSocket: socket()");
  }
  UdpSocket sock;
  sock.fd_ = fd;  // owned from here; close on any failure below
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    throw std::system_error(saved, std::generic_category(),
                            "UdpSocket: fcntl(O_NONBLOCK)");
  }
  sockaddr_in addr = loopback_endpoint(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    throw std::system_error(saved, std::generic_category(),
                            "UdpSocket: bind(127.0.0.1:" +
                                std::to_string(port) + ")");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    throw std::system_error(saved, std::generic_category(),
                            "UdpSocket: getsockname()");
  }
  sock.port_ = ntohs(bound.sin_port);
  return sock;
}

void UdpSocket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    port_ = 0;
  }
}

bool UdpSocket::send_to(const sockaddr_in& dest, const char* data,
                        std::size_t n) {
  if (fd_ < 0) return false;
  const auto sent =
      ::sendto(fd_, data, n, 0, reinterpret_cast<const sockaddr*>(&dest),
               sizeof(dest));
  return sent == static_cast<long>(n);
}

long UdpSocket::recv_from(char* buf, std::size_t n, sockaddr_in* from) {
  if (fd_ < 0) return -1;
  sockaddr_in src{};
  socklen_t len = sizeof(src);
  const auto got = ::recvfrom(fd_, buf, n, 0,
                              reinterpret_cast<sockaddr*>(&src), &len);
  if (got < 0) return -1;
  if (from != nullptr) *from = src;
  return got;
}

int poll_sockets(std::vector<pollfd>& fds, int timeout_ms) {
  for (;;) {
    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (ready >= 0) return ready;
    if (errno != EINTR) return 0;
  }
}

}  // namespace deproto::net
