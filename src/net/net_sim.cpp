#include "net/net_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/action.hpp"
#include "sim/fault_plan.hpp"

namespace deproto::net {

namespace {

/// Peers a graceful Leave is gossiped to, and a Join handshake is offered
/// to, per attempt. Small: the handshake only needs one live responder.
constexpr unsigned kHandshakeFanout = 3;
/// Join attempts before a recovering node gives up on finding a live
/// peer and activates alone (everyone else may be crashed).
constexpr unsigned kJoinRetries = 3;
/// Poll slice cap so external watch_fd work and wall/sim drift stay
/// bounded even when the next sim event is far away.
constexpr int kMaxPollMs = 100;

}  // namespace

NetSimulator::NetSimulator(std::size_t n,
                           core::ProtocolStateMachine machine,
                           std::uint64_t seed, NetSimOptions options)
    : machine_(std::move(machine)),
      options_(options),
      rng_(seed),
      group_(n, machine_.num_states()),
      metrics_(machine_.num_states()) {
  if (n < 2 || n > kMaxNodes) {
    throw std::invalid_argument(
        "NetSimulator: n must lie in [2, " + std::to_string(kMaxNodes) +
        "] (socket per node; larger populations belong on the count "
        "backend)");
  }
  if (!(options_.period_ms > 0.0)) {
    throw std::invalid_argument("NetSimulator: period_ms must be positive");
  }
  if (!(options_.probe_timeout > 0.0)) {
    throw std::invalid_argument(
        "NetSimulator: probe_timeout must be positive");
  }
  if (!(options_.message_loss >= 0.0 && options_.message_loss < 1.0)) {
    throw std::invalid_argument(
        "NetSimulator: message_loss must lie in [0, 1)");
  }
  if (!(options_.clock_drift >= 0.0 && options_.clock_drift < 0.5)) {
    throw std::invalid_argument("NetSimulator: bad clock drift");
  }
  nodes_.resize(n);
  addr_.resize(n);
  for (sim::ProcessId pid = 0; pid < n; ++pid) {
    Node& node = nodes_[pid];
    node.socket = UdpSocket::bind_loopback();
    node.home_port = node.socket.port();
    addr_[pid] = loopback_endpoint(node.home_port);
    node.period =
        rng_.uniform(1.0 - options_.clock_drift, 1.0 + options_.clock_drift);
    // Arbitrary phase: the first tick falls anywhere in the first period.
    const std::uint64_t epoch = node.timer_epoch;
    const sim::ProcessId copy = pid;
    queue_.schedule(rng_.uniform01() * node.period,
                    [this, copy, epoch] { on_tick(copy, epoch); });
  }
}

void NetSimulator::seed_states(const std::vector<std::size_t>& counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (counts.size() > group_.num_states() || total > group_.size()) {
    throw std::invalid_argument("seed_states: bad counts");
  }
  sim::ProcessId pid = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    for (std::size_t k = 0; k < counts[s]; ++k, ++pid) {
      group_.transition(pid, s);
    }
  }
}

// ---------------------------------------------------------------------
// Wall clock <-> sim time. One protocol period == period_ms of real
// time; the anchors are reset at every run_until so sim time does not
// elapse between runs.

double NetSimulator::sim_of(Clock::time_point wall) const {
  const double ms = std::chrono::duration<double, std::milli>(
                        wall - anchor_wall_)
                        .count();
  return anchor_sim_ + ms / options_.period_ms;
}

NetSimulator::Clock::time_point NetSimulator::wall_of(
    double sim_time) const {
  return anchor_wall_ + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                (sim_time - anchor_sim_) *
                                options_.period_ms));
}

void NetSimulator::run_for(double periods) { run_until(now() + periods); }

void NetSimulator::run_until(double t_end) {
  anchor_wall_ = Clock::now();
  anchor_sim_ = queue_.now();
  while (next_sample_ <= t_end) {
    advance_to(next_sample_);
    sample_metrics();
    next_sample_ += 1.0;
  }
  advance_to(t_end);
}

void NetSimulator::advance_to(double t_end) {
  for (;;) {
    // Run everything the wall clock has made due, then either finish or
    // sleep in poll() until the next sim event (or a datagram) is ready.
    double reach = std::min(sim_of(Clock::now()), t_end);
    // Catch up one event batch at a time with a non-blocking drain in
    // between: after a scheduler stall, several periods of probes and
    // their timeouts can all be due at once while the probe replies sit
    // unread in the kernel buffers. Expiring those probes before reading
    // the buffers would turn a CPU hiccup into fake total loss.
    while (queue_.next_time() <= reach) {
      queue_.run_until(queue_.next_time());
      poll_and_drain(Clock::now());
      reach = std::min(sim_of(Clock::now()), t_end);
    }
    if (reach > queue_.now()) queue_.run_until(reach);
    if (reach >= t_end) {
      queue_.run_until(t_end);
      return;
    }
    const double next_t = std::min(queue_.next_time(), t_end);
    poll_and_drain(wall_of(next_t));
  }
}

void NetSimulator::poll_and_drain(Clock::time_point deadline) {
  const auto now_w = Clock::now();
  int timeout_ms = 0;
  if (deadline > now_w) {
    const double ms =
        std::chrono::duration<double, std::milli>(deadline - now_w).count();
    timeout_ms = std::min(kMaxPollMs, static_cast<int>(ms) + 1);
  }
  std::vector<pollfd> fds;
  std::vector<sim::ProcessId> owners;
  fds.reserve(nodes_.size() + watched_.size());
  for (sim::ProcessId pid = 0; pid < nodes_.size(); ++pid) {
    if (!nodes_[pid].socket.open()) continue;
    fds.push_back(pollfd{nodes_[pid].socket.fd(), POLLIN, 0});
    owners.push_back(pid);
  }
  const std::size_t watched_base = fds.size();
  for (const WatchedFd& w : watched_) {
    fds.push_back(pollfd{w.fd, POLLIN, 0});
  }
  if (fds.empty()) {
    // Everyone is crashed and nothing external is watched: just let the
    // wall clock reach the deadline.
    if (timeout_ms > 0) {
      std::vector<pollfd> none;
      poll_sockets(none, timeout_ms);
    }
    return;
  }
  if (poll_sockets(fds, timeout_ms) <= 0) return;
  for (std::size_t i = 0; i < watched_base; ++i) {
    if ((fds[i].revents & POLLIN) != 0) drain_node(owners[i]);
  }
  for (std::size_t i = watched_base; i < fds.size(); ++i) {
    if ((fds[i].revents & POLLIN) != 0) {
      watched_[i - watched_base].on_readable();
    }
  }
}

void NetSimulator::drain_node(sim::ProcessId pid) {
  char buf[kPacketSize * 2];
  for (;;) {
    Node& node = nodes_[pid];
    if (!node.socket.open()) return;  // crashed while draining
    sockaddr_in from{};
    const long got = node.socket.recv_from(buf, sizeof(buf), &from);
    if (got < 0) return;
    ++stats_.datagrams_received;
    Packet packet;
    const DecodeStatus status =
        decode_packet(buf, static_cast<std::size_t>(got), &packet);
    if (status != DecodeStatus::Ok) {
      ++stats_.decode_errors;
      continue;  // fail closed per datagram; boundaries are intact
    }
    if (node.tracker.observe(packet.sender, packet.seq) ==
        SequenceTracker::Arrival::Duplicate) {
      continue;  // counted by the tracker; never processed twice
    }
    handle_packet(pid, packet, from);
  }
}

void NetSimulator::handle_packet(sim::ProcessId pid, const Packet& packet,
                                 const sockaddr_in& from) {
  Node& node = nodes_[pid];
  switch (packet.type) {
    case PacketType::Probe: {
      if (!group_.alive(pid)) return;
      Packet reply;
      reply.type = PacketType::ProbeReply;
      reply.state = static_cast<std::uint8_t>(group_.state_of(pid));
      reply.tag = packet.tag;
      send_packet(pid, from, reply);
      return;
    }
    case PacketType::ProbeReply: {
      const auto it = node.pending.find(packet.tag);
      if (it == node.pending.end()) return;  // timed out or stale ack
      record_rtt(it->second.sent_at);
      const std::shared_ptr<ProbeContext> ctx = it->second.ctx;
      node.pending.erase(it);
      resolve_probe(ctx, static_cast<std::size_t>(packet.state));
      return;
    }
    case PacketType::Push: {
      if (group_.alive(pid) && group_.state_of(pid) == packet.arg0 &&
          rng_.bernoulli(q32_to_coin(packet.arg2))) {
        group_.transition(pid, packet.arg1);
      }
      return;
    }
    case PacketType::Token: {
      if (group_.alive(pid) && group_.state_of(pid) == packet.arg0) {
        group_.transition(pid, packet.arg1);
        ++tokens_.delivered;
        return;
      }
      if (packet.arg2 > 0) {
        // Random-walk routing: forward with one hop fewer.
        Packet forward = packet;
        forward.arg2 = packet.arg2 - 1;
        const auto target =
            static_cast<sim::ProcessId>(rng_.uniform_int(group_.size()));
        if (!send_packet(pid, addr_[target], forward)) ++tokens_.dropped;
        return;
      }
      ++tokens_.dropped;
      return;
    }
    case PacketType::Join: {
      if (!group_.alive(pid)) return;
      ++stats_.joins;
      Packet ack;
      ack.type = PacketType::JoinAck;
      ack.tag = packet.tag;
      send_packet(pid, from, ack);
      return;
    }
    case PacketType::JoinAck: {
      if (!group_.alive(pid) || node.active ||
          packet.tag != node.incarnation) {
        return;  // stale ack from an earlier incarnation
      }
      node.active = true;
      const std::uint64_t epoch = node.timer_epoch;
      queue_.schedule_in(rng_.uniform01() * node.period,
                         [this, pid, epoch] { on_tick(pid, epoch); });
      return;
    }
    case PacketType::Leave: {
      ++stats_.leaves;
      return;
    }
  }
}

bool NetSimulator::emulated_drop() {
  if (options_.message_loss > 0.0 && rng_.bernoulli(options_.message_loss)) {
    ++stats_.emulated_drops;
    return true;
  }
  return false;
}

bool NetSimulator::send_packet(sim::ProcessId from, const sockaddr_in& dest,
                               Packet packet) {
  Node& node = nodes_[from];
  if (!node.socket.open()) return false;
  if (emulated_drop()) return false;
  packet.sender = from;
  packet.seq = node.next_seq++;
  const std::string bytes = encode_packet(packet);
  if (!node.socket.send_to(dest, bytes.data(), bytes.size())) return false;
  ++stats_.datagrams_sent;
  return true;
}

void NetSimulator::record_rtt(Clock::time_point sent_at) {
  const double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                              sent_at)
                        .count();
  if (stats_.rtt_samples == 0 || ms < stats_.rtt_ms_min) {
    stats_.rtt_ms_min = ms;
  }
  if (ms > stats_.rtt_ms_max) stats_.rtt_ms_max = ms;
  stats_.rtt_ms_sum += ms;
  ++stats_.rtt_samples;
}

// ---------------------------------------------------------------------
// Protocol execution: one timer per node, the same action semantics as
// sim/event_sim.cpp, with probes as real request/response datagrams.

void NetSimulator::arm_timer(sim::ProcessId pid) {
  const std::uint64_t epoch = nodes_[pid].timer_epoch;
  queue_.schedule_in(nodes_[pid].period,
                     [this, pid, epoch] { on_tick(pid, epoch); });
}

void NetSimulator::on_tick(sim::ProcessId pid, std::uint64_t epoch) {
  if (epoch != nodes_[pid].timer_epoch || !group_.alive(pid)) return;
  const std::size_t state = group_.state_of(pid);
  for (std::size_t idx : machine_.actions_of(state)) {
    run_action(pid, idx);
  }
  arm_timer(pid);
}

void NetSimulator::probe_all(
    sim::ProcessId pid, std::size_t count,
    std::function<void(const std::vector<std::optional<std::size_t>>&)>
        done) {
  auto ctx = std::make_shared<ProbeContext>();
  ctx->remaining = count;
  ctx->done = std::move(done);
  ctx->states.reserve(count);
  if (count == 0) {
    ctx->done({});
    return;
  }
  Node& node = nodes_[pid];
  for (std::size_t k = 0; k < count; ++k) {
    const sim::ProcessId target = group_.random_target(pid, rng_);
    const std::uint64_t probe_id = next_probe_id_++;
    ++stats_.probes_sent;
    node.pending.emplace(probe_id, PendingProbe{ctx, Clock::now()});
    Packet probe;
    probe.type = PacketType::Probe;
    probe.state = static_cast<std::uint8_t>(group_.state_of(pid));
    probe.tag = probe_id;
    send_packet(pid, addr_[target], probe);
    // The loss surrogate: if no reply claimed this probe id by the
    // deadline, it resolves as lost -- whether the request leg, the
    // reply leg, a crashed target, or an emulated drop ate it.
    queue_.schedule_in(options_.probe_timeout, [this, pid, probe_id] {
      Node& owner = nodes_[pid];
      const auto it = owner.pending.find(probe_id);
      if (it == owner.pending.end()) return;
      const std::shared_ptr<ProbeContext> pending_ctx = it->second.ctx;
      owner.pending.erase(it);
      ++stats_.probe_timeouts;
      resolve_probe(pending_ctx, std::nullopt);
    });
  }
}

void NetSimulator::resolve_probe(const std::shared_ptr<ProbeContext>& ctx,
                                 std::optional<std::size_t> state) {
  ctx->states.push_back(state);
  if (--ctx->remaining == 0) ctx->done(ctx->states);
}

void NetSimulator::route_token(sim::ProcessId pid, std::size_t token_state,
                               std::size_t to_state) {
  ++tokens_.generated;
  Packet token;
  token.type = PacketType::Token;
  token.arg0 = static_cast<std::uint32_t>(token_state);
  token.arg1 = static_cast<std::uint32_t>(to_state);
  if (options_.tokens.mode == sim::TokenRouting::Mode::Directory) {
    if (group_.count(token_state) == 0) {
      ++tokens_.dropped;  // "If no processes are in state x, drop it"
      return;
    }
    const sim::ProcessId receiver =
        group_.random_member(token_state, rng_);
    token.arg2 = 0;  // directory handoff: no forwarding
    if (!send_packet(pid, addr_[receiver], token)) ++tokens_.dropped;
    return;
  }
  if (options_.tokens.ttl == 0) {
    ++tokens_.dropped;
    return;
  }
  const auto target =
      static_cast<sim::ProcessId>(rng_.uniform_int(group_.size()));
  token.arg2 = options_.tokens.ttl - 1;  // hops left after this one
  if (!send_packet(pid, addr_[target], token)) ++tokens_.dropped;
}

void NetSimulator::run_action(sim::ProcessId pid, std::size_t action_index) {
  const core::Action& action = machine_.actions()[action_index];
  std::visit(
      [&](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, core::FlippingAction>) {
          if (rng_.bernoulli(a.coin_bias)) {
            group_.transition(pid, a.to_state);
          }
        } else if constexpr (std::is_same_v<T, core::SamplingAction>) {
          const std::size_t count =
              a.same_state_samples + a.target_states.size();
          auto spec = a;
          probe_all(pid, count, [this, pid, spec](const auto& states) {
            if (!group_.alive(pid) ||
                group_.state_of(pid) != spec.from_state) {
              return;  // moved on or crashed while waiting
            }
            bool match = true;
            std::size_t at = 0;
            for (std::size_t k = 0; match && k < spec.same_state_samples;
                 ++k, ++at) {
              match = states[at].has_value() &&
                      *states[at] == spec.from_state;
            }
            for (std::size_t t : spec.target_states) {
              if (!match) break;
              match = states[at].has_value() && *states[at] == t;
              ++at;
            }
            if (match && rng_.bernoulli(spec.coin_bias)) {
              group_.transition(pid, spec.to_state);
            }
          });
        } else if constexpr (std::is_same_v<T, core::TokenizingAction>) {
          const std::size_t count =
              a.same_state_samples + a.target_states.size();
          auto spec = a;
          probe_all(pid, count, [this, pid, spec](const auto& states) {
            bool match = true;
            std::size_t at = 0;
            for (std::size_t k = 0; match && k < spec.same_state_samples;
                 ++k, ++at) {
              match = states[at].has_value() &&
                      *states[at] == spec.executor_state;
            }
            for (std::size_t t : spec.target_states) {
              if (!match) break;
              match = states[at].has_value() && *states[at] == t;
              ++at;
            }
            if (match && rng_.bernoulli(spec.coin_bias)) {
              route_token(pid, spec.token_state, spec.to_state);
            }
          });
        } else if constexpr (std::is_same_v<T, core::PushAction>) {
          for (unsigned k = 0; k < a.fanout; ++k) {
            const sim::ProcessId target = group_.random_target(pid, rng_);
            Packet push;
            push.type = PacketType::Push;
            push.state = static_cast<std::uint8_t>(group_.state_of(pid));
            push.arg0 = static_cast<std::uint32_t>(a.target_state);
            push.arg1 = static_cast<std::uint32_t>(a.to_state);
            push.arg2 = coin_to_q32(a.coin_bias);
            send_packet(pid, addr_[target], push);
          }
        } else if constexpr (std::is_same_v<T, core::AnyOfSamplingAction>) {
          auto spec = a;
          probe_all(pid, spec.fanout, [this, pid, spec](const auto& states) {
            if (!group_.alive(pid) ||
                group_.state_of(pid) != spec.from_state) {
              return;
            }
            bool any = false;
            for (const auto& s : states) {
              if (s.has_value() && *s == spec.match_state) any = true;
            }
            if (any && rng_.bernoulli(spec.coin_bias)) {
              group_.transition(pid, spec.to_state);
            }
          });
        }
      },
      action);
}

// ---------------------------------------------------------------------
// Fault surface: crashes close sockets, recoveries rebind and handshake.

void NetSimulator::crash_process(sim::ProcessId pid) {
  if (!group_.alive(pid)) return;
  group_.crash(pid);
  note_mass_crashed(pid);
}

void NetSimulator::note_mass_crashed(sim::ProcessId pid) {
  // Socket lifecycle for a victim Group::crash_random_alive (or
  // crash_process) already removed from the population: the port goes
  // silent mid-flight -- in-flight probes to it will simply time out.
  Node& node = nodes_[pid];
  ++node.timer_epoch;
  node.active = false;
  node.socket.close();
}

void NetSimulator::graceful_leave(sim::ProcessId pid) {
  if (!group_.alive(pid)) return;
  // Churn departures announce themselves before going dark; the Leave is
  // informational (peers already absorb silent exits via timeouts).
  for (unsigned k = 0; k < kHandshakeFanout; ++k) {
    const sim::ProcessId target = group_.random_target(pid, rng_);
    Packet leave;
    leave.type = PacketType::Leave;
    send_packet(pid, addr_[target], leave);
  }
  crash_process(pid);
}

void NetSimulator::recover_process(sim::ProcessId pid) {
  if (group_.alive(pid)) return;
  group_.recover(pid, 0);  // machine-mode rejoin state
  Node& node = nodes_[pid];
  // Rebind the home port if it is still free (peers cache endpoints);
  // otherwise take a fresh ephemeral port and republish the address.
  try {
    node.socket = UdpSocket::bind_loopback(node.home_port);
  } catch (const std::system_error&) {
    node.socket = UdpSocket::bind_loopback();
  }
  addr_[pid] = loopback_endpoint(node.socket.port());
  ++node.timer_epoch;
  ++node.incarnation;
  node.active = false;
  begin_join(pid, kJoinRetries);
}

void NetSimulator::begin_join(sim::ProcessId pid, unsigned tries_left) {
  Node& node = nodes_[pid];
  if (!group_.alive(pid) || node.active) return;
  if (tries_left == 0) {
    // No live peer answered (possibly none exists): activate alone, like
    // the first node of a bootstrapping group.
    node.active = true;
    const std::uint64_t epoch = node.timer_epoch;
    queue_.schedule_in(rng_.uniform01() * node.period,
                       [this, pid, epoch] { on_tick(pid, epoch); });
    return;
  }
  Packet join;
  join.type = PacketType::Join;
  join.tag = node.incarnation;
  for (unsigned k = 0; k < kHandshakeFanout; ++k) {
    const sim::ProcessId target = group_.random_target(pid, rng_);
    send_packet(pid, addr_[target], join);
  }
  const std::uint64_t incarnation = node.incarnation;
  queue_.schedule_in(options_.probe_timeout,
                     [this, pid, incarnation, tries_left] {
                       Node& joining = nodes_[pid];
                       if (joining.active ||
                           joining.incarnation != incarnation) {
                         return;  // acked, or superseded by a newer rejoin
                       }
                       begin_join(pid, tries_left - 1);
                     });
}

void NetSimulator::schedule_massive_failure(double time, double fraction) {
  sim::fault_plan::validate_failure_fraction(fraction);
  queue_.schedule(std::max(time, queue_.now()), [this, fraction] {
    const std::size_t victims = sim::fault_plan::failure_victims(
        fraction, group_.total_alive());
    for (sim::ProcessId pid : group_.crash_random_alive(victims, rng_)) {
      note_mass_crashed(pid);
    }
  });
}

void NetSimulator::schedule_crash(sim::ProcessId pid, double time,
                                  double recover_time) {
  if (pid >= group_.size()) return;  // ignored, like the other backends
  queue_.schedule(std::max(time, queue_.now()),
                  [this, pid] { crash_process(pid); });
  if (recover_time >= 0.0) {
    queue_.schedule(std::max(recover_time, queue_.now()),
                    [this, pid] { recover_process(pid); });
  }
}

void NetSimulator::set_crash_recovery(double crash_prob,
                                      double mean_downtime_periods) {
  sim::fault_plan::validate_crash_recovery(crash_prob,
                                           mean_downtime_periods);
  const std::uint64_t epoch = ++recovery_epoch_;
  crash_prob_ = crash_prob;
  mean_downtime_ = mean_downtime_periods;
  if (crash_prob_ > 0.0) {
    queue_.schedule_in(1.0, [this, epoch] { on_crash_recovery_tick(epoch); });
  }
}

void NetSimulator::on_crash_recovery_tick(std::uint64_t epoch) {
  if (epoch != recovery_epoch_) return;  // reconfigured; chain abandoned
  const std::size_t crashes =
      rng_.binomial(group_.total_alive(), crash_prob_);
  for (sim::ProcessId pid : group_.crash_random_alive(crashes, rng_)) {
    note_mass_crashed(pid);
    if (mean_downtime_ > 0.0) {
      const sim::ProcessId copy = pid;
      queue_.schedule_in(
          sim::fault_plan::recovery_delay(rng_, mean_downtime_),
          [this, copy] { recover_process(copy); });
    }
  }
  queue_.schedule_in(1.0, [this, epoch] { on_crash_recovery_tick(epoch); });
}

void NetSimulator::attach_churn(const sim::ChurnTrace& trace,
                                double periods_per_hour) {
  const std::uint64_t epoch = ++churn_epoch_;
  for (const sim::ChurnEvent& e : sim::fault_plan::trace_in_periods(
           trace, periods_per_hour, queue_.now())) {
    if (e.host >= group_.size()) continue;
    const double t = e.time_hours;  // already converted to periods
    const sim::ProcessId pid = e.host;
    if (e.up) {
      queue_.schedule(t, [this, pid, epoch] {
        if (epoch == churn_epoch_) recover_process(pid);
      });
    } else {
      queue_.schedule(t, [this, pid, epoch] {
        if (epoch == churn_epoch_) graceful_leave(pid);
      });
    }
  }
}

void NetSimulator::sample_metrics() {
  metrics_.begin_period(queue_.now());
  metrics_.end_period(group_);
}

NetStats NetSimulator::net_stats() const {
  NetStats stats = stats_;
  for (const Node& node : nodes_) {
    stats.reordered += node.tracker.reordered();
    stats.duplicates += node.tracker.duplicates();
  }
  return stats;
}

std::uint16_t NetSimulator::port_of(sim::ProcessId pid) const {
  return nodes_.at(pid).socket.port();
}

void NetSimulator::kill_node(sim::ProcessId pid) {
  if (pid >= group_.size() || !group_.alive(pid)) return;
  group_.crash(pid);
  note_mass_crashed(pid);
}

void NetSimulator::watch_fd(int fd, std::function<void()> on_readable) {
  watched_.push_back(WatchedFd{fd, std::move(on_readable)});
}

}  // namespace deproto::net
