#pragma once

// The real-network backend's datagram codec: an RFC-style fixed-layout,
// versioned packet carrying the gossip vocabulary of the synthesized
// machines (probe/reply sampling, pushes, tokens) plus the join/leave
// handshake, over UDP. Wire layout (all integers little-endian):
//
//    0  4 bytes  magic 'D' 'P' 'N' 'P'
//    4  u16      protocol version (kPacketVersion)
//    6  u8       packet type (PacketType)
//    7  u8       state -- the sender's machine state (ProbeReply: the
//                responder's state at reply time)
//    8  u32      sender node id
//   12  u64      seq -- per-sender datagram number, strictly increasing;
//                receivers run it through a SequenceTracker to measure
//                reordering and duplication
//   20  u64      tag -- probe id (Probe/ProbeReply echoes it back) or
//                join incarnation (Join/JoinAck); 0 when unused
//   28  u32      arg0 | per-type operands, see PacketType; 0 when unused
//   32  u32      arg1 |
//   36  u32      arg2 |
//   40 bytes total (kPacketSize)
//
// Decoding follows the fail-closed discipline of dist/wire: a datagram
// that violates any invariant (short, bad magic, unknown version or
// type, trailing bytes) is rejected whole with a diagnosis. Unlike the
// stream decoder there is no sticky corruption -- UDP preserves datagram
// boundaries, so one bad packet cannot desynchronize the next -- but
// every rejection is counted, never silently skipped.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

namespace deproto::net {

/// First 4 bytes of every datagram, in order: 'D' 'P' 'N' 'P'.
inline constexpr char kPacketMagic[4] = {'D', 'P', 'N', 'P'};

/// Bumped on any incompatible change to the layout, types, or operand
/// conventions. A node never interprets packets from another version.
inline constexpr std::uint16_t kPacketVersion = 1;

/// Fixed datagram size: header + operands (layout above).
inline constexpr std::size_t kPacketSize = 40;

enum class PacketType : std::uint8_t {
  /// Sampling probe: "what state are you in?". tag = probe id, echoed by
  /// the reply; the sender matches replies to pending probes by it.
  Probe = 1,
  /// Answer to a Probe: tag echoes the probe id, `state` carries the
  /// responder's machine state at reply time.
  ProbeReply = 2,
  /// Push conversion (PushAction): arg0 = target_state, arg1 = to_state,
  /// arg2 = coin bias in Q32 fixed point (see coin_to_q32). The receiver
  /// transitions iff it is alive, in target_state, and the coin hits.
  Push = 3,
  /// Token handoff (TokenizingAction): arg0 = token_state, arg1 =
  /// to_state, arg2 = hops left (random-walk routing forwards with
  /// arg2 - 1 on a miss; directory routing sends with arg2 = 0).
  Token = 4,
  /// Rejoin handshake: a recovering node announces itself. tag = its
  /// join incarnation, bumped on every rejoin so stale acks are ignored.
  Join = 5,
  /// Answer to Join: tag echoes the incarnation. Receipt of the first
  /// matching ack makes the joining node protocol-active.
  JoinAck = 6,
  /// Graceful departure (churn down-event): purely informational -- the
  /// peers' probe timeouts already treat the node as gone.
  Leave = 7,
};

/// True for the PacketType values this version defines.
[[nodiscard]] bool packet_type_known(std::uint8_t value);
[[nodiscard]] const char* packet_type_name(PacketType type);

/// Coin biases ride in 32-bit fixed point: q = round(p * 2^32 - 1)
/// clamped to [0, 2^32 - 1]; q32_to_coin inverts. Exact at 0 and 1.
[[nodiscard]] std::uint32_t coin_to_q32(double bias);
[[nodiscard]] double q32_to_coin(std::uint32_t q);

struct Packet {
  PacketType type = PacketType::Probe;
  std::uint8_t state = 0;
  std::uint32_t sender = 0;
  std::uint64_t seq = 0;
  std::uint64_t tag = 0;
  std::uint32_t arg0 = 0;
  std::uint32_t arg1 = 0;
  std::uint32_t arg2 = 0;

  friend bool operator==(const Packet&, const Packet&) = default;
};

/// Packet as wire bytes (always kPacketSize long).
[[nodiscard]] std::string encode_packet(const Packet& packet);

enum class DecodeStatus {
  Ok,
  Truncated,   ///< shorter than kPacketSize
  BadMagic,    ///< first 4 bytes are not kPacketMagic
  BadVersion,  ///< version field != kPacketVersion
  BadType,     ///< type byte outside PacketType
  BadLength,   ///< trailing bytes after the fixed layout
};

[[nodiscard]] const char* decode_status_name(DecodeStatus status);

/// Validate and decode one datagram. On any status but Ok, *out is left
/// untouched; the caller counts the rejection and drops the datagram.
[[nodiscard]] DecodeStatus decode_packet(const char* data, std::size_t n,
                                         Packet* out);

/// Classifies each received (sender, seq) pair against the per-sender
/// history, RFC 3550 style: the highest sequence seen plus a 64-wide
/// bitmap window below it distinguishes late (reordered) arrivals from
/// genuine duplicates; anything older than the window is Stale.
class SequenceTracker {
 public:
  enum class Arrival { InOrder, Reordered, Duplicate, Stale };

  Arrival observe(std::uint32_t sender, std::uint64_t seq);

  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }
  [[nodiscard]] std::uint64_t reordered() const noexcept { return reordered_; }
  [[nodiscard]] std::uint64_t duplicates() const noexcept {
    return duplicates_;
  }

 private:
  struct PeerSeq {
    std::uint64_t highest = 0;
    std::uint64_t window = 0;  // bit k set <=> (highest - k) was seen
    bool any = false;
  };

  std::unordered_map<std::uint32_t, PeerSeq> peers_;
  std::uint64_t received_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace deproto::net
